// Mediafailure: the availability story that motivated redundant disk
// arrays in the first place.  A workload fills the database, a drive
// suffers a fail-stop failure mid-flight — while an active transaction
// has uncommitted pages on disk — and the array rebuilds the replacement
// drive online from parity.  No committed data is lost, the in-flight
// transaction keeps running, and the twin-parity undo still works
// afterwards.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"repro/rda"
)

func main() {
	cfg := rda.Config{
		DataDisks:    6,
		NumPages:     600,
		PageSize:     512,
		BufferFrames: 24,
		Layout:       rda.DataStriping,
		Logging:      rda.PageLogging,
		EOT:          rda.Force,
		RDA:          true,
	}
	db, err := rda.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("array: %d disks, twin parity, %.1f%% of raw capacity is parity\n",
		db.NumDisks(), 100*2/float64(cfg.DataDisks+2))

	// Committed payload.
	r := rand.New(rand.NewSource(5))
	contents := make(map[rda.PageID][]byte)
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for p := rda.PageID(0); p < 200; p++ {
		img := make([]byte, cfg.PageSize)
		r.Read(img)
		if err := tx.WritePage(p, img); err != nil {
			log.Fatal(err)
		}
		contents[p] = img
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 200 pages of payload")

	// An in-flight transaction with pages stolen to disk (no UNDO
	// logging — its undo material is the twin parity itself).
	inflight, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for p := rda.PageID(200); p < 240; p++ {
		img := make([]byte, cfg.PageSize)
		r.Read(img)
		if err := inflight.WritePage(p, img); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("in-flight transaction holds 40 uncommitted pages")

	// Fail every disk in turn (repairing in between): the worst-case
	// single-failure tour.
	for d := 0; d < db.NumDisks(); d++ {
		if err := db.FailDisk(d); err != nil {
			log.Fatal(err)
		}
		if err := db.RepairDisk(d); err != nil {
			log.Fatalf("disk %d: %v", d, err)
		}
		fmt.Printf("disk %d failed and was rebuilt online\n", d)
	}

	// The in-flight transaction aborts AFTER the rebuilds: twin-parity
	// undo must still restore the old contents.
	if err := inflight.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-flight transaction aborted after the rebuilds")

	// Verify all committed data survived.
	check, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for p, want := range contents {
		got, err := check.ReadPage(p)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("page %d corrupted by media recovery", p)
		}
	}
	// The aborted transaction's pages must be back to zero (never
	// committed).
	for p := rda.PageID(200); p < 240; p++ {
		got, err := check.ReadPage(p)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, cfg.PageSize)) {
			log.Fatalf("aborted page %d not rolled back", p)
		}
	}
	if err := check.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("all committed pages intact, aborted pages rolled back, parity invariant OK")
}
