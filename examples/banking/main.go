// Banking: a concurrent OLTP transfer workload on the record-granularity
// engine — the workload class the paper's introduction motivates (large
// scale transaction processing needing rapid recovery).
//
// The transfers come from the workload plane's banking generator
// (internal/workload): eight interleaved teller streams are planned into
// a replayable trace whose funding prologue and transfer bodies carry
// literal balances, and the trace is replayed through rda/trace.  The
// generator keeps the book, so after the replay the on-disk balances
// must match it account for account; the system then crashes mid-flight
// with uncommitted riches in the buffer, and after recovery the books
// must still balance — the sum of all accounts is invariant, because
// every transfer is atomic.
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/rda"
	"repro/rda/trace"
)

const (
	numAccounts    = 400
	initialBalance = 1000
	tellers        = 8
	transfers      = 1200
	maxTransfer    = 200
)

func main() {
	// Plan the whole workload first: a funding prologue plus `transfers`
	// teller transactions interleaved over 8 streams, as a trace.
	prof := workload.Profile{
		Mode:         trace.ModeRecord,
		Streams:      tellers,
		Transactions: transfers,
		AbortProb:    0.01, // the occasional teller changes their mind
		NumPages:     512,
		PageSize:     512,
		RecordSize:   16,
		Seed:         7,
	}
	bank, err := workload.NewBanking(prof, numAccounts, initialBalance, maxTransfer)
	if err != nil {
		log.Fatal(err)
	}
	t, err := workload.Generate(prof, bank)
	if err != nil {
		log.Fatal(err)
	}
	want := bank.ExpectedTotal()
	fmt.Printf("planned %d transfers over %d teller streams (%d accounts x %d, total %d)\n",
		transfers, tellers, numAccounts, initialBalance, want)

	cfg := rda.DefaultConfig()
	cfg.DataDisks = 8
	cfg.BufferFrames = 64
	cfg.Layout = rda.ParityStriping // Gray's layout, as OLTP systems preferred
	cfg.EOT = rda.NoForce
	cfg.RDA = true
	db, err := rda.Open(t.Config(cfg))
	if err != nil {
		log.Fatal(err)
	}

	res, err := trace.Replay(db, t, trace.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d ops: %d committed, %d aborted, %d transfers\n",
		res.OpsApplied, res.Committed, res.Aborted, res.Transfers)

	// Take an action-consistent checkpoint so crash recovery only has to
	// replay work from here on.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("took an ACC checkpoint")

	// The generator's book is the oracle: every account, not just the sum.
	if got, err := bank.TotalIn(db); err != nil || got != want {
		log.Fatalf("books do not balance: %d != %d (%v)", got, want, err)
	}
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for a, wantBal := range bank.Balances() {
		got, err := bank.BalanceIn(tx, a)
		if err != nil {
			log.Fatal(err)
		}
		if got != wantBal {
			log.Fatalf("account %d: balance %d, book says %d", a, got, wantBal)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("books balance before the crash (all accounts match the plan)")

	// Pull the plug mid-flight: leave uncommitted riches in the buffer and
	// crash.
	hang, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 16)
	payload[0] = 0x42 // not a plausible balance; must vanish on recovery
	if err := hang.WriteRecord(0, 0, payload); err != nil {
		log.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: %d loser(s) rolled back (%d via twin parity, %d via log, %d redone)\n",
		rep.Losers, rep.UndoneViaParity, rep.UndoneViaLog, rep.Redone)

	if got, err := bank.TotalIn(db); err != nil || got != want {
		log.Fatalf("books do not balance after recovery: %d != %d (%v)", got, want, err)
	}
	fmt.Println("books balance after crash recovery")

	st := db.Stats()
	fmt.Printf("stats: %d committed, %d aborted, %d log records, %d disk transfers\n",
		st.TxCommitted, st.TxAborted, st.LogRecords, st.DiskReads+st.DiskWrites)
	if err := db.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parity invariant: OK")
}
