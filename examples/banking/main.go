// Banking: a concurrent OLTP transfer workload on the record-granularity
// engine — the workload class the paper's introduction motivates (large
// scale transaction processing needing rapid recovery).
//
// Many tellers move money between accounts concurrently under record
// locking (deadlock victims retry), the system crashes in the middle,
// and after recovery the books must balance: the sum of all accounts is
// invariant, because every transfer is atomic.
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/rda"
)

const (
	numAccounts    = 400
	initialBalance = 1000
	tellers        = 8
	transfersEach  = 150
)

// account i lives at (page, slot) = (i / perPage, i % perPage).
type bank struct {
	db      *rda.DB
	perPage int
}

func (b *bank) loc(acct int) (rda.PageID, int) {
	return rda.PageID(acct / b.perPage), acct % b.perPage
}

func (b *bank) read(tx *rda.Tx, acct int) (int64, error) {
	p, slot := b.loc(acct)
	raw, err := tx.ReadRecord(p, slot)
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(raw)), nil
}

func (b *bank) write(tx *rda.Tx, acct int, balance int64) error {
	p, slot := b.loc(acct)
	raw := make([]byte, 8)
	binary.LittleEndian.PutUint64(raw, uint64(balance))
	return tx.WriteRecord(p, slot, raw)
}

// transfer moves amount between two accounts atomically, retrying on
// deadlock.  Accounts are locked in id order to keep retries rare.
func (b *bank) transfer(from, to int, amount int64) error {
	for {
		tx, err := b.db.Begin()
		if err != nil {
			return err
		}
		err = func() error {
			lo, hi := from, to
			if lo > hi {
				lo, hi = hi, lo
			}
			balLo, err := b.read(tx, lo)
			if err != nil {
				return err
			}
			balHi, err := b.read(tx, hi)
			if err != nil {
				return err
			}
			fromBal, toBal := balLo, balHi
			if from != lo {
				fromBal, toBal = balHi, balLo
			}
			if fromBal < amount {
				return errInsufficient
			}
			if err := b.write(tx, from, fromBal-amount); err != nil {
				return err
			}
			return b.write(tx, to, toBal+amount)
		}()
		switch {
		case err == nil:
			if err := tx.Commit(); err != nil {
				return err
			}
			return nil
		case errors.Is(err, errInsufficient):
			return tx.Abort()
		case errors.Is(err, rda.ErrDeadlock):
			continue // victim already aborted; retry
		default:
			_ = tx.Abort()
			return err
		}
	}
}

var errInsufficient = errors.New("insufficient funds")

func (b *bank) totalBalance() int64 {
	var total int64
	tx, err := b.db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for a := 0; a < numAccounts; a++ {
		bal, err := b.read(tx, a)
		if err != nil {
			log.Fatal(err)
		}
		total += bal
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	return total
}

func main() {
	cfg := rda.Config{
		DataDisks:    8,
		NumPages:     512,
		PageSize:     512,
		BufferFrames: 64,
		Layout:       rda.ParityStriping, // Gray's layout, as OLTP systems preferred
		Logging:      rda.RecordLogging,
		EOT:          rda.NoForce,
		RDA:          true,
		RecordSize:   16,
	}
	db, err := rda.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	b := &bank{db: db, perPage: db.RecordsPerPage()}
	if numAccounts > db.NumPages()*b.perPage {
		log.Fatal("database too small for the accounts")
	}

	// Fund the accounts.
	setup, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for a := 0; a < numAccounts; a++ {
		if err := b.write(setup, a, initialBalance); err != nil {
			log.Fatal(err)
		}
	}
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}
	want := int64(numAccounts * initialBalance)
	fmt.Printf("funded %d accounts with %d each (total %d)\n", numAccounts, initialBalance, want)

	// Tellers hammer the bank concurrently.
	var wg sync.WaitGroup
	for tl := 0; tl < tellers; tl++ {
		wg.Add(1)
		go func(tl int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(tl) + 7))
			for i := 0; i < transfersEach; i++ {
				from, to := r.Intn(numAccounts), r.Intn(numAccounts)
				if from == to {
					continue
				}
				if err := b.transfer(from, to, int64(r.Intn(200)+1)); err != nil &&
					!errors.Is(err, rda.ErrCrashed) {
					log.Fatalf("teller %d: %v", tl, err)
				}
			}
		}(tl)
	}
	wg.Wait()
	fmt.Printf("%d tellers ran %d transfers each\n", tellers, transfersEach)

	// Take an action-consistent checkpoint so crash recovery only has to
	// replay work from here on.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("took an ACC checkpoint")
	if got := b.totalBalance(); got != want {
		log.Fatalf("books do not balance: %d != %d", got, want)
	}
	fmt.Println("books balance before the crash")

	// Pull the plug mid-flight: start some transfers and crash.
	hang, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := b.write(hang, 0, 1_000_000); err != nil { // uncommitted riches
		log.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: %d loser(s) rolled back (%d via twin parity, %d via log, %d redone)\n",
		rep.Losers, rep.UndoneViaParity, rep.UndoneViaLog, rep.Redone)

	if got := b.totalBalance(); got != want {
		log.Fatalf("books do not balance after recovery: %d != %d", got, want)
	}
	fmt.Println("books balance after crash recovery")

	st := db.Stats()
	fmt.Printf("stats: %d committed, %d aborted, %d log records, %d disk transfers\n",
		st.TxCommitted, st.TxAborted, st.LogRecords, st.DiskReads+st.DiskWrites)
	if err := db.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parity invariant: OK")
}
