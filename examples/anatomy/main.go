// Anatomy: watch the twin-page scheme work, state by state.
//
// This walks one parity group through the paper's Figures 3 and 8:
// clean → dirty (no-UNDO-logging steal, working parity) → committed
// (twin promotion) and clean → dirty → invalid (abort), printing the
// Dirty_Set entry and both parity twins' on-disk headers at every step,
// and finishing with a dump of the (tiny) log to show what was — and,
// more to the point, was NOT — logged.
package main

import (
	"fmt"
	"log"

	"repro/rda"
)

func show(db *rda.DB, what string, p rda.PageID) {
	info, err := db.InspectGroup(p)
	if err != nil {
		log.Fatal(err)
	}
	state := "CLEAN"
	if info.Dirty {
		state = fmt.Sprintf("DIRTY (page %d by txn %d)", info.DirtyPage, info.DirtyTxn)
	}
	fmt.Printf("%-34s group %d: %s\n", what, info.Group, state)
	for i := range info.TwinStates {
		cur := " "
		if i == info.CurrentTwin {
			cur = "*"
		}
		fmt.Printf("%34s twin %d%s: %-9s ts=%d\n", "", i, cur, info.TwinStates[i], info.TwinTimestamps[i])
	}
}

func main() {
	cfg := rda.Config{
		DataDisks:    4,
		NumPages:     64,
		PageSize:     128,
		BufferFrames: 2, // tiny buffer: every write is stolen immediately
		Logging:      rda.PageLogging,
		EOT:          rda.Force,
		RDA:          true,
	}
	db, err := rda.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	page0 := make([]byte, cfg.PageSize)
	copy(page0, "committed baseline")

	// Baseline commit.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx.WritePage(0, page0); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	show(db, "after baseline commit:", 0)

	// A transaction modifies page 0; with a 2-frame buffer the page is
	// stolen at the FORCE — but watch the intermediate state first.
	fmt.Println("\n--- lifecycle of a COMMITTING transaction ---")
	t1, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	v1 := make([]byte, cfg.PageSize)
	copy(v1, "version by txn A")
	if err := t1.WritePage(0, v1); err != nil {
		log.Fatal(err)
	}
	// Push the page out of the tiny buffer: a second page reference
	// evicts it through the STEAL policy — no UNDO logging, the working
	// parity absorbs the new state.
	if _, err := t1.ReadPage(8); err != nil {
		log.Fatal(err)
	}
	if _, err := t1.ReadPage(16); err != nil {
		log.Fatal(err)
	}
	show(db, "after the no-logging steal:", 0)
	if err := t1.Commit(); err != nil {
		log.Fatal(err)
	}
	show(db, "after commit (twin promoted):", 0)
	fmt.Println("  (commit costs no parity I/O: the bitmap flips and the on-disk")
	fmt.Println("   header stays 'working' until laundered — the log's EOT record")
	fmt.Println("   is what makes the higher-timestamp twin authoritative)")

	fmt.Println("\n--- lifecycle of an ABORTING transaction ---")
	t2, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	v2 := make([]byte, cfg.PageSize)
	copy(v2, "doomed version by txn B")
	if err := t2.WritePage(0, v2); err != nil {
		log.Fatal(err)
	}
	if _, err := t2.ReadPage(8); err != nil {
		log.Fatal(err)
	}
	if _, err := t2.ReadPage(16); err != nil {
		log.Fatal(err)
	}
	show(db, "after the no-logging steal:", 0)
	if err := t2.Abort(); err != nil {
		log.Fatal(err)
	}
	show(db, "after abort (twin invalidated):", 0)

	// Prove the restore: page 0 is back to txn A's committed version.
	check, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	got, err := check.ReadPage(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npage 0 now reads: %q\n", string(got[:16]))
	if err := check.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n--- the entire log (note: no before-images anywhere) ---")
	if err := db.DumpLog(func(line string) bool {
		fmt.Println(line)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nparity invariant: OK")
}
