// Tuning: use the paper's analytical model (Section 5) to choose a
// recovery configuration for a workload, then sanity-check the winner on
// the live engine.
//
// This walks exactly the decision the paper's conclusions describe: for
// page logging, FORCE/TOC + RDA recovery wins; for record logging,
// ¬FORCE/ACC + RDA wins, with the model also yielding the optimal
// checkpoint interval.
package main

import (
	"fmt"
	"log"

	"repro/internal/sim"
	"repro/rda"
	"repro/rda/model"
)

func main() {
	env := model.HighUpdate().WithCommunality(0.8)
	fmt.Println("workload: the paper's high-update environment at C=0.8")
	fmt.Printf("%-28s %-6s %14s %16s\n", "algorithm", "RDA", "throughput", "ckpt interval")

	type choice struct {
		algo model.Algorithm
		rda  bool
		res  model.Result
	}
	var best choice
	for _, algo := range []model.Algorithm{
		model.AlgoPageForceTOC, model.AlgoPageNoForceACC,
		model.AlgoRecordForceTOC, model.AlgoRecordNoForceACC,
	} {
		for _, useRDA := range []bool{false, true} {
			res := model.Evaluate(algo, env, useRDA)
			interval := "-"
			if res.Interval > 0 {
				interval = fmt.Sprintf("%14.0f", res.Interval)
			}
			fmt.Printf("%-28s %-6v %14.0f %16s\n", algo, useRDA, res.Throughput, interval)
			if res.Throughput > best.res.Throughput {
				best = choice{algo, useRDA, res}
			}
		}
	}
	fmt.Printf("\nmodel's pick: %s with RDA=%v (%.0f transactions/interval)\n",
		best.algo, best.rda, best.res.Throughput)

	// Sanity check the page-logging half of the ranking on the live
	// engine: FORCE/TOC with RDA must beat FORCE/TOC without.
	fmt.Println("\nlive engine check (page logging, FORCE/TOC):")
	for _, useRDA := range []bool{false, true} {
		cfg := rda.DefaultConfig()
		cfg.PageSize = 256
		cfg.EOT = rda.Force
		cfg.Logging = rda.PageLogging
		cfg.RDA = useRDA
		db, err := rda.Open(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(db, sim.Workload{
			Concurrency:    6,
			PagesPerTx:     10,
			UpdateFraction: 0.8,
			UpdateProb:     0.9,
			AbortProb:      0.01,
			Communality:    0.8,
			Seed:           3,
		}, sim.Options{Transfers: 120000, CrashAtEnd: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RDA=%-5v committed %5d transactions in the interval (%d log transfers)\n",
			useRDA, res.Committed, res.Stats.LogWriteTransfers)
	}
}
