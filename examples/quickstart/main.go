// Quickstart: open a database on a twin-parity redundant disk array,
// run transactions, abort one, crash the system and recover — then look
// at how much UNDO logging the RDA scheme avoided.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/rda"
)

func main() {
	// A small database: N=4 data pages per parity group, RAID-5-style
	// data striping with twin parity pages, page logging, FORCE at EOT,
	// and the paper's RDA recovery enabled.
	cfg := rda.Config{
		DataDisks:    4,
		NumPages:     256,
		PageSize:     512,
		BufferFrames: 16,
		Layout:       rda.DataStriping,
		Logging:      rda.PageLogging,
		EOT:          rda.Force,
		RDA:          true,
	}
	db, err := rda.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("opened: %d pages on %d disks (%d-wide parity groups, twin parity)\n",
		db.NumPages(), db.NumDisks(), cfg.DataDisks)

	// 1. A transaction that commits.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	hello := make([]byte, cfg.PageSize)
	copy(hello, "hello, redundant disk arrays")
	if err := tx.WritePage(0, hello); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("txn 1: wrote page 0 and committed")

	// 2. A transaction that writes and then aborts: the twin-parity undo
	// restores page 0 without ever having logged a before-image.
	tx2, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	scribble := make([]byte, cfg.PageSize)
	copy(scribble, "uncommitted scribble")
	if err := tx2.WritePage(0, scribble); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("txn 2: scribbled on page 0 and aborted")

	// 3. A transaction that is interrupted by a system crash.
	tx3, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if err := tx3.WritePage(1, scribble); err != nil {
		log.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash: recovery rolled back %d loser(s), %d page(s) restored from twin parity, %d from the log\n",
		rep.Losers, rep.UndoneViaParity, rep.UndoneViaLog)

	// Page 0 still holds txn 1's committed contents.
	check, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	got, err := check.ReadPage(0)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, hello) {
		log.Fatal("page 0 lost its committed contents!")
	}
	if err := check.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("page 0 intact after abort and crash")

	st := db.Stats()
	fmt.Printf("stats: %d disk reads, %d disk writes, %d log records, %d/%d transactions committed/aborted\n",
		st.DiskReads, st.DiskWrites, st.LogRecords, st.TxCommitted, st.TxAborted)
	if err := db.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("parity invariant: OK")
}
