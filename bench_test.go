// Package repro's top-level benchmarks regenerate every evaluation
// artifact of "Database Recovery Using Redundant Disk Arrays" (ICDE
// 1992) on the live engine, one benchmark per paper figure, plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Figures 9–12 sweep throughput against the communality C for the four
// algorithm families with and without RDA recovery; Figure 13 sweeps the
// RDA benefit against the transaction size s.  Each benchmark runs the
// paper's workload on the real engine for a fixed budget of page
// transfers (the model's availability interval, scaled down) and reports
//
//	tx/interval — committed transactions per interval (the paper's r_t)
//	logxfer/tx  — log transfers per committed transaction
//
// Absolute numbers differ from the paper's analytical values (the
// interval here is 10⁵ transfers, not 5·10⁶, and the substrate is a
// simulator); the orderings and relative gains are the reproduction
// target.  EXPERIMENTS.md records the comparison.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/rda"
	"repro/rda/model"
)

const benchInterval = 100000 // page transfers per measured interval

// benchConfig builds the engine configuration for one algorithm family.
func benchConfig(logging rda.LoggingMode, eot rda.EOTDiscipline, useRDA bool) rda.Config {
	cfg := rda.DefaultConfig() // paper geometry: N=10, S=5000, B=300
	cfg.PageSize = 256         // transfers are size independent; keep memory modest
	cfg.Logging = logging
	cfg.EOT = eot
	cfg.RDA = useRDA
	cfg.RecordSize = 32
	// The paper's record logging analysis packs log entries into shared
	// l_p-byte log pages (Section 5.3); charge the log the same way so
	// the record-mode figures compare on the model's terms.
	cfg.PackedLog = logging == rda.RecordLogging
	return cfg
}

// benchWorkload builds the paper's workload for one environment.
func benchWorkload(highUpdate bool, c float64) sim.Workload {
	if highUpdate {
		return sim.Workload{
			Concurrency: 6, PagesPerTx: 10,
			UpdateFraction: 0.8, UpdateProb: 0.9, AbortProb: 0.01,
			Communality: c, Seed: 17,
		}
	}
	return sim.Workload{
		Concurrency: 6, PagesPerTx: 40,
		UpdateFraction: 0.1, UpdateProb: 0.3, AbortProb: 0.01,
		Communality: c, Seed: 17,
	}
}

// runFigureBench measures one (algorithm, environment, C, RDA) point.
func runFigureBench(b *testing.B, logging rda.LoggingMode, eot rda.EOTDiscipline, useRDA, highUpdate bool, c float64) {
	b.Helper()
	opts := sim.Options{Transfers: benchInterval, CrashAtEnd: true}
	if eot == rda.NoForce {
		opts.CheckpointInterval = benchInterval / 4
	}
	var committed, logXfer int64
	for i := 0; i < b.N; i++ {
		db, err := rda.Open(benchConfig(logging, eot, useRDA))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(db, benchWorkload(highUpdate, c), opts)
		if err != nil {
			b.Fatal(err)
		}
		committed += res.Committed
		logXfer += res.Stats.LogWriteTransfers
	}
	b.ReportMetric(float64(committed)/float64(b.N), "tx/interval")
	if committed > 0 {
		b.ReportMetric(float64(logXfer)/float64(committed), "logxfer/tx")
	}
}

// figureBench runs the standard sub-benchmark grid of Figures 9–12.
func figureBench(b *testing.B, logging rda.LoggingMode, eot rda.EOTDiscipline) {
	for _, env := range []struct {
		name       string
		highUpdate bool
	}{{"high-update", true}, {"high-retrieval", false}} {
		for _, c := range []float64{0.0, 0.5, 0.9} {
			for _, useRDA := range []bool{false, true} {
				name := fmt.Sprintf("%s/C=%.1f/rda=%v", env.name, c, useRDA)
				b.Run(name, func(b *testing.B) {
					runFigureBench(b, logging, eot, useRDA, env.highUpdate, c)
				})
			}
		}
	}
}

// BenchmarkFigure9 regenerates Figure 9: page logging, FORCE/TOC.
func BenchmarkFigure9(b *testing.B) { figureBench(b, rda.PageLogging, rda.Force) }

// BenchmarkFigure10 regenerates Figure 10: page logging, ¬FORCE/ACC.
func BenchmarkFigure10(b *testing.B) { figureBench(b, rda.PageLogging, rda.NoForce) }

// BenchmarkFigure11 regenerates Figure 11: record logging, FORCE/TOC.
func BenchmarkFigure11(b *testing.B) { figureBench(b, rda.RecordLogging, rda.Force) }

// BenchmarkFigure12 regenerates Figure 12: record logging, ¬FORCE/ACC.
func BenchmarkFigure12(b *testing.B) { figureBench(b, rda.RecordLogging, rda.NoForce) }

// BenchmarkFigure13 regenerates Figure 13: the RDA benefit as a function
// of transaction size s (record logging, ¬FORCE/ACC, high update,
// C=0.9).  Gains appear via the tx/interval metric of the rda=true vs
// rda=false pairs at each s.
func BenchmarkFigure13(b *testing.B) {
	for _, s := range []int{5, 15, 30, 45} {
		for _, useRDA := range []bool{false, true} {
			b.Run(fmt.Sprintf("s=%d/rda=%v", s, useRDA), func(b *testing.B) {
				opts := sim.Options{Transfers: benchInterval, CrashAtEnd: true, CheckpointInterval: benchInterval / 4}
				w := benchWorkload(true, 0.9)
				w.PagesPerTx = s
				var committed int64
				for i := 0; i < b.N; i++ {
					db, err := rda.Open(benchConfig(rda.RecordLogging, rda.NoForce, useRDA))
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(db, w, opts)
					if err != nil {
						b.Fatal(err)
					}
					committed += res.Committed
				}
				b.ReportMetric(float64(committed)/float64(b.N), "tx/interval")
			})
		}
	}
}

// BenchmarkModelFigures evaluates the analytical model itself — the
// paper's actual evaluation method — for every figure.  This is cheap
// and exact; the series values land in EXPERIMENTS.md.
func BenchmarkModelFigures(b *testing.B) {
	figs := []struct {
		name string
		f    func()
	}{
		{"Figure9", func() { model.Figure9(model.DefaultCommunalities) }},
		{"Figure10", func() { model.Figure10(model.DefaultCommunalities) }},
		{"Figure11", func() { model.Figure11(model.DefaultCommunalities) }},
		{"Figure12", func() { model.Figure12(model.DefaultCommunalities) }},
		{"Figure13", func() { model.Figure13(model.DefaultSizes) }},
	}
	for _, fig := range figs {
		b.Run(fig.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fig.f()
			}
		})
	}
}

// --- Ablation benchmarks ---------------------------------------------------

// BenchmarkAblationStealPath isolates the paper's central mechanism: the
// cost of stealing one modified page with the RDA no-logging write
// versus classic UNDO logging.  The no-log path should cost ~3-4 disk
// transfers and no log traffic; the logged path adds the before-image.
func BenchmarkAblationStealPath(b *testing.B) {
	for _, useRDA := range []bool{false, true} {
		b.Run(fmt.Sprintf("rda=%v", useRDA), func(b *testing.B) {
			cfg := benchConfig(rda.PageLogging, rda.Force, useRDA)
			cfg.BufferFrames = 2 // every write is immediately stolen
			db, err := rda.Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			img := make([]byte, cfg.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx, err := db.Begin()
				if err != nil {
					b.Fatal(err)
				}
				p := rda.PageID(uint32(i*11) % uint32(db.NumPages()))
				if err := tx.WritePage(p, img); err != nil {
					b.Fatal(err)
				}
				if err := tx.WritePage((p+uint32(db.Config().DataDisks))%rda.PageID(db.NumPages()), img); err != nil {
					b.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
			st := db.Stats()
			b.ReportMetric(float64(st.TotalTransfers())/float64(b.N), "transfers/tx")
			b.ReportMetric(float64(st.LogWriteTransfers)/float64(b.N), "logxfer/tx")
		})
	}
}

// BenchmarkAblationCrashRecovery measures restart cost with losers of
// each kind: parity-undoable pages versus logged pages.
func BenchmarkAblationCrashRecovery(b *testing.B) {
	for _, useRDA := range []bool{false, true} {
		b.Run(fmt.Sprintf("rda=%v", useRDA), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(rda.PageLogging, rda.Force, useRDA)
				cfg.BufferFrames = 8
				db, err := rda.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				img := make([]byte, cfg.PageSize)
				tx, err := db.Begin()
				if err != nil {
					b.Fatal(err)
				}
				for p := rda.PageID(0); p < 40; p++ {
					if err := tx.WritePage(p*7%rda.PageID(db.NumPages()), img); err != nil {
						b.Fatal(err)
					}
				}
				db.Crash()
				b.StartTimer()
				if _, err := db.Recover(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMediaRecovery measures one full online disk rebuild
// for both array organizations.
func BenchmarkAblationMediaRecovery(b *testing.B) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		b.Run(layout.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := benchConfig(rda.PageLogging, rda.Force, true)
				cfg.Layout = layout
				cfg.NumPages = 1000
				db, err := rda.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := db.FailDisk(i % db.NumDisks()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := db.RepairDisk(i % db.NumDisks()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLayouts compares data striping and parity striping
// under the same workload — the paper treats them as interchangeable for
// random page traffic, and the transfer counts should confirm it.
func BenchmarkAblationLayouts(b *testing.B) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		b.Run(layout.String(), func(b *testing.B) {
			var committed int64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(rda.PageLogging, rda.Force, true)
				cfg.Layout = layout
				db, err := rda.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(db, benchWorkload(true, 0.5), sim.Options{Transfers: benchInterval / 2})
				if err != nil {
					b.Fatal(err)
				}
				committed += res.Committed
			}
			b.ReportMetric(float64(committed)/float64(b.N), "tx/interval")
		})
	}
}

// BenchmarkAblationGroupWidth sweeps the parity group width N on the
// live engine: N=1 is a mirrored pair (twin-page storage when RDA is
// on), the paper's N=10 is the design point, and wide groups trade gain
// for storage (see the model's SweepN).  tx/interval at rda=true vs
// rda=false per width shows the live tradeoff.
func BenchmarkAblationGroupWidth(b *testing.B) {
	for _, n := range []int{1, 2, 5, 10, 20} {
		for _, useRDA := range []bool{false, true} {
			b.Run(fmt.Sprintf("N=%d/rda=%v", n, useRDA), func(b *testing.B) {
				var committed int64
				for i := 0; i < b.N; i++ {
					cfg := benchConfig(rda.PageLogging, rda.Force, useRDA)
					cfg.DataDisks = n
					db, err := rda.Open(cfg)
					if err != nil {
						b.Fatal(err)
					}
					res, err := sim.Run(db, benchWorkload(true, 0.9), sim.Options{Transfers: benchInterval / 2})
					if err != nil {
						b.Fatal(err)
					}
					committed += res.Committed
				}
				b.ReportMetric(float64(committed)/float64(b.N), "tx/interval")
			})
		}
	}
}

// BenchmarkAblationBulkLoad compares loading a database with full-stripe
// writes versus transactional small writes.
func BenchmarkAblationBulkLoad(b *testing.B) {
	for _, bulk := range []bool{false, true} {
		name := "smallwrites"
		if bulk {
			name = "fullstripe"
		}
		b.Run(name, func(b *testing.B) {
			var transfers int64
			for i := 0; i < b.N; i++ {
				cfg := benchConfig(rda.PageLogging, rda.Force, true)
				cfg.NumPages = 1000
				db, err := rda.Open(cfg)
				if err != nil {
					b.Fatal(err)
				}
				pages := make([][]byte, 1000)
				for j := range pages {
					pages[j] = make([]byte, cfg.PageSize)
				}
				db.ResetStats()
				if bulk {
					if _, err := db.BulkLoad(0, pages); err != nil {
						b.Fatal(err)
					}
				} else {
					tx, err := db.Begin()
					if err != nil {
						b.Fatal(err)
					}
					for j := range pages {
						if err := tx.WritePage(rda.PageID(j), pages[j]); err != nil {
							b.Fatal(err)
						}
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				transfers += db.Stats().TotalTransfers()
			}
			b.ReportMetric(float64(transfers)/float64(b.N)/1000, "transfers/page")
		})
	}
}

// BenchmarkAblationScrub measures a full verification scrub of a clean
// database.
func BenchmarkAblationScrub(b *testing.B) {
	cfg := benchConfig(rda.PageLogging, rda.Force, true)
	cfg.NumPages = 2000
	db, err := rda.Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Scrub(); err != nil {
			b.Fatal(err)
		}
	}
}
