// Command rdasim runs one live-engine simulation with the paper's
// workload model and prints the measured throughput and I/O breakdown.
//
// Usage:
//
//	rdasim [-logging page|record] [-eot force|noforce] [-rda] [-layout data|parity]
//	       [-c communality] [-p concurrency] [-s pages-per-tx] [-fu f] [-pu f] [-pb f]
//	       [-budget transfers] [-crash] [-ckpt interval]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/rda"
)

func main() {
	logging := flag.String("logging", "page", "logging granularity: page or record")
	eot := flag.String("eot", "force", "EOT discipline: force (TOC) or noforce (ACC)")
	useRDA := flag.Bool("rda", false, "enable RDA recovery")
	layout := flag.String("layout", "data", "array layout: data (RAID5) or parity (parity striping)")
	c := flag.Float64("c", 0.5, "communality C")
	p := flag.Int("p", 6, "concurrent transactions P")
	s := flag.Int("s", 10, "page requests per transaction s")
	fu := flag.Float64("fu", 0.8, "update transaction fraction f_u")
	pu := flag.Float64("pu", 0.9, "page update probability p_u")
	pb := flag.Float64("pb", 0.01, "abort probability p_b")
	budget := flag.Int64("budget", 200000, "availability interval T in page transfers")
	crash := flag.Bool("crash", true, "inject a crash at the end of the interval")
	ckpt := flag.Int64("ckpt", 0, "ACC checkpoint interval in transfers (0 = none)")
	seed := flag.Int64("seed", 1, "workload seed")
	svcMs := flag.Float64("svc", 20, "disk service time per page transfer in ms (seek+rotate+transfer; 0 disables the time report)")
	flag.Parse()

	cfg := rda.DefaultConfig()
	cfg.RDA = *useRDA
	cfg.PageSize = 256
	switch *logging {
	case "page":
		cfg.Logging = rda.PageLogging
	case "record":
		cfg.Logging = rda.RecordLogging
	default:
		fail("unknown logging mode %q", *logging)
	}
	switch *eot {
	case "force":
		cfg.EOT = rda.Force
	case "noforce":
		cfg.EOT = rda.NoForce
	default:
		fail("unknown EOT discipline %q", *eot)
	}
	switch *layout {
	case "data":
		cfg.Layout = rda.DataStriping
	case "parity":
		cfg.Layout = rda.ParityStriping
	default:
		fail("unknown layout %q", *layout)
	}

	db, err := rda.Open(cfg)
	if err != nil {
		fail("%v", err)
	}
	res, err := sim.Run(db, sim.Workload{
		Concurrency:    *p,
		PagesPerTx:     *s,
		UpdateFraction: *fu,
		UpdateProb:     *pu,
		AbortProb:      *pb,
		Communality:    *c,
		Seed:           *seed,
	}, sim.Options{Transfers: *budget, CrashAtEnd: *crash, CheckpointInterval: *ckpt})
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("config: %v, %v, RDA=%v, %v, %d disks\n",
		cfg.Logging, cfg.EOT, cfg.RDA, cfg.Layout, db.NumDisks())
	fmt.Printf("workload: P=%d s=%d f_u=%.2f p_u=%.2f p_b=%.2f C=%.2f, T=%d transfers\n",
		*p, *s, *fu, *pu, *pb, *c, *budget)
	fmt.Printf("committed        : %d transactions (%.0f per T)\n", res.Committed, res.Throughput)
	fmt.Printf("aborted          : %d\n", res.Aborted)
	fmt.Printf("transfers        : %d total (%d recovery)\n", res.Transfers, res.RecoveryTransfers)
	st := res.Stats
	fmt.Printf("disk I/O         : %d reads, %d writes\n", st.DiskReads, st.DiskWrites)
	fmt.Printf("log              : %d records, %d write transfers, %d read transfers\n",
		st.LogRecords, st.LogWriteTransfers, st.LogReadTransfers)
	fmt.Printf("buffer           : %d hits, %d misses, %d steals (hit ratio %.2f)\n",
		st.BufferHits, st.BufferMisses, st.Steals,
		float64(st.BufferHits)/float64(st.BufferHits+st.BufferMisses))
	if *svcMs > 0 {
		// Elapsed time under a fixed per-transfer service time: with the
		// disks operating in parallel, the busiest disk is the clock.
		per := db.DiskTransfers()
		var sum, max int64
		for _, x := range per {
			sum += x
			if x > max {
				max = x
			}
		}
		elapsed := float64(max) * *svcMs / 1000
		fmt.Printf("service model    : %.0f ms/transfer → bottleneck disk busy %.1f s (mean %.1f s);"+
			" %.1f committed tx/s\n",
			*svcMs, elapsed, float64(sum)/float64(len(per))**svcMs/1000,
			float64(res.Committed)/elapsed)
	}
	if err := db.VerifyParity(); err != nil {
		fail("parity invariant violated after run: %v", err)
	}
	fmt.Println("parity invariant : OK")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdasim: "+format+"\n", args...)
	os.Exit(1)
}
