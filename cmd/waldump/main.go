// Command waldump runs a small demonstration workload against each
// recovery configuration and prints the resulting write-ahead log side
// by side, making the paper's central effect visible directly in the log
// stream: with RDA recovery the before-images disappear.
//
// Usage:
//
//	waldump [-logging page|record] [-eot force|noforce] [-txns n]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/rda"
)

func main() {
	logging := flag.String("logging", "page", "page or record")
	eot := flag.String("eot", "force", "force or noforce")
	txns := flag.Int("txns", 2, "number of update transactions to run")
	flag.Parse()

	var lm rda.LoggingMode
	switch *logging {
	case "page":
		lm = rda.PageLogging
	case "record":
		lm = rda.RecordLogging
	default:
		fmt.Fprintf(os.Stderr, "waldump: unknown logging mode %q\n", *logging)
		os.Exit(2)
	}
	var ed rda.EOTDiscipline
	switch *eot {
	case "force":
		ed = rda.Force
	case "noforce":
		ed = rda.NoForce
	default:
		fmt.Fprintf(os.Stderr, "waldump: unknown EOT discipline %q\n", *eot)
		os.Exit(2)
	}

	for _, useRDA := range []bool{false, true} {
		fmt.Printf("==== %s / %s / RDA=%v ====\n", lm, ed, useRDA)
		if err := run(lm, ed, useRDA, *txns); err != nil {
			fmt.Fprintf(os.Stderr, "waldump: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(lm rda.LoggingMode, ed rda.EOTDiscipline, useRDA bool, txns int) error {
	cfg := rda.Config{
		DataDisks:    4,
		NumPages:     64,
		PageSize:     128,
		BufferFrames: 2, // force steals so the UNDO decision is exercised
		Logging:      lm,
		EOT:          ed,
		RDA:          useRDA,
		RecordSize:   32,
	}
	db, err := rda.Open(cfg)
	if err != nil {
		return err
	}
	buf := make([]byte, cfg.PageSize)
	for i := 0; i < txns; i++ {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		for j := 0; j < 3; j++ {
			p := rda.PageID(uint32(i*16+j*4) % uint32(db.NumPages()))
			if lm == rda.PageLogging {
				copy(buf, fmt.Sprintf("txn %d page %d", i, p))
				if err := tx.WritePage(p, buf); err != nil {
					return err
				}
			} else if err := tx.WriteRecord(p, 0, []byte{byte(i), byte(j)}); err != nil {
				return err
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return db.DumpLog(func(line string) bool {
		fmt.Println(line)
		return true
	})
}
