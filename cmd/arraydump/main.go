// Command arraydump prints the physical layout of each redundant disk
// array organization, reproducing the paper's structural figures:
// Figure 1 (RAID-5 rotated parity), Figure 2 (parity striping), Figure 4
// (data striping with twin parity) and Figure 5 (parity striping with
// twin parity).
//
// Usage:
//
//	arraydump [-layout raid5|paritystripe|raid5twin|paritystripetwin] [-n dataDisks] [-groups g]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/diskarray"
	"repro/internal/page"
)

func main() {
	layout := flag.String("layout", "raid5", "raid5, paritystripe, raid5twin or paritystripetwin")
	n := flag.Int("n", 3, "data pages per parity group (N)")
	groups := flag.Int("groups", 8, "number of parity groups to show")
	flag.Parse()

	var kind diskarray.Kind
	var figure string
	switch *layout {
	case "raid5":
		kind, figure = diskarray.RAID5, "Figure 1: RAID with rotated parity"
	case "paritystripe":
		kind, figure = diskarray.ParityStripe, "Figure 2: parity striping"
	case "raid5twin":
		kind, figure = diskarray.RAID5Twin, "Figure 4: data striping with twin parity"
	case "paritystripetwin":
		kind, figure = diskarray.ParityStripeTwin, "Figure 5: parity striping with twin parity"
	default:
		fmt.Fprintf(os.Stderr, "arraydump: unknown layout %q\n", *layout)
		os.Exit(2)
	}

	arr, err := diskarray.New(diskarray.Config{
		Kind: kind, DataDisks: *n, NumPages: *groups * *n, PageSize: page.MinSize,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "arraydump: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("%s (N=%d, %d disks, %d groups)\n\n", figure, *n, arr.NumDisks(), arr.NumGroups())

	// Build the block → label map.
	labels := make(map[diskarray.Loc]string)
	for p := 0; p < arr.NumPages(); p++ {
		pid := page.PageID(p)
		labels[arr.DataLoc(pid)] = fmt.Sprintf("D%-3d", p)
	}
	for g := 0; g < arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		for twin := 0; twin < arr.ParityPages(); twin++ {
			name := fmt.Sprintf("P%d", g)
			if arr.ParityPages() == 2 {
				if twin == 0 {
					name = fmt.Sprintf("P%d", g)
				} else {
					name = fmt.Sprintf("P%d'", g)
				}
			}
			labels[arr.ParityLoc(gid, twin)] = fmt.Sprintf("%-4s", name)
		}
	}

	blocks := arr.Disk(0).NumBlocks()
	fmt.Print("block ")
	for d := 0; d < arr.NumDisks(); d++ {
		fmt.Printf(" disk%-2d", d)
	}
	fmt.Println()
	for b := 0; b < blocks; b++ {
		fmt.Printf("%5d ", b)
		for d := 0; d < arr.NumDisks(); d++ {
			lbl, ok := labels[diskarray.Loc{Disk: d, Block: b}]
			if !ok {
				lbl = " .  "
			}
			fmt.Printf(" %5s ", lbl)
		}
		fmt.Println()
	}
	fmt.Printf("\nstorage overhead: %.1f%% of raw capacity is parity\n", 100*arr.StorageOverhead())
}
