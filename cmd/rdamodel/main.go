// Command rdamodel evaluates the paper's analytical performance model
// (Section 5) for one algorithm family and environment, printing the
// full cost breakdown: per-transaction cost, logging, rollback,
// checkpoint and crash recovery costs, the derived probabilities
// (p_l, p_m, p_s) and the resulting throughput.
//
// Usage:
//
//	rdamodel [-algo page-force|page-noforce|record-force|record-noforce]
//	         [-env high-update|high-retrieval] [-c communality] [-rda]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/rda/model"
)

func main() {
	algoName := flag.String("algo", "page-force", "algorithm: page-force, page-noforce, record-force, record-noforce")
	envName := flag.String("env", "high-update", "environment: high-update or high-retrieval")
	c := flag.Float64("c", 0.5, "communality C in [0,1)")
	useRDA := flag.Bool("rda", false, "enable RDA recovery")
	flag.Parse()

	algo, err := model.ParseAlgorithm(*algoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdamodel: %v\n", err)
		os.Exit(2)
	}
	p, err := model.ParseEnvironment(*envName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rdamodel: %v\n", err)
		os.Exit(2)
	}
	if *c < 0 || *c >= 1 {
		fmt.Fprintln(os.Stderr, "rdamodel: communality must be in [0,1)")
		os.Exit(2)
	}
	res := model.Evaluate(algo, p.WithCommunality(*c), *useRDA)

	fmt.Printf("%s, %s environment, C=%.2f, RDA=%v\n", algo, *envName, *c, *useRDA)
	fmt.Printf("  throughput r_t : %12.0f transactions per interval (T=%.0f transfers)\n", res.Throughput, p.T)
	fmt.Printf("  c_t  (per txn) : %12.2f transfers\n", res.CT)
	fmt.Printf("  c_r / c_u      : %12.2f / %.2f\n", res.CR, res.CU)
	fmt.Printf("  c_l  (logging) : %12.2f\n", res.CL)
	fmt.Printf("  c_b  (rollback): %12.2f\n", res.CB)
	fmt.Printf("  c_s  (restart) : %12.2f\n", res.CS)
	if res.CC > 0 {
		fmt.Printf("  c_c  (ckpt)    : %12.2f  optimal interval I = %.0f\n", res.CC, res.Interval)
	}
	if *useRDA {
		fmt.Printf("  p_l (Eq 5)     : %12.5f\n", res.Pl)
	}
	if res.Pm > 0 || res.Ps > 0 {
		fmt.Printf("  p_m / p_s      : %12.5f / %.5f\n", res.Pm, res.Ps)
	}
}
