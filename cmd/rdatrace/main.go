// Command rdatrace records, inspects and replays workload traces — the
// workload plane's capture/replay driver.
//
// Record a trace (the spec names the generator; see internal/workload):
//
//	rdatrace -record -workload zipfian:theta=0.99 -o zipf.rdatrc \
//	         -mode record -txns 2000 -streams 6 -seed 42
//
// Inspect it:
//
//	rdatrace -info zipf.rdatrc
//
// Replay it against a chosen array geometry, twice, verifying the two
// runs produce identical digests (the determinism contract: a trace plus
// a configuration fully determines the commit history, the transfer
// counts and the final database image):
//
//	rdatrace -replay zipf.rdatrc -runs 2 -layout raid5 -disks 8 -rda
//
// Geometries: -layout raid5 (rotated parity), paritystripe (Gray's
// organization) or mirror (group width 1: the parity page of a
// single-page group is a copy, so the array is N pairs of mirrored
// blocks); -disks sets the group width for the striped layouts.
//
// Everything rdatrace does is deterministic: recording is a pure
// function of (spec, profile flags, seed), and replay of a given trace
// file on a given configuration always produces the same digest.  Two
// -runs that disagree exit nonzero — that is a bug, not noise.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
	"repro/rda"
	"repro/rda/trace"
)

func main() {
	record := flag.Bool("record", false, "record a trace from -workload into -o")
	spec := flag.String("workload", "uniform", "workload spec: uniform|zipfian|banking|scan[:k=v,...] (see internal/workload)")
	out := flag.String("o", "trace.rdatrc", "record: output trace path")
	mode := flag.String("mode", "page", "record: trace granularity, page or record")
	seed := flag.Int64("seed", 42, "record: generator seed; (workload, seed) names the trace exactly")
	txns := flag.Int("txns", 1000, "record: transactions to generate")
	streams := flag.Int("streams", 6, "record: concurrent transaction streams (1-255)")
	pages := flag.Int("pages", 480, "record: database size in pages the trace addresses")
	pageSize := flag.Int("pagesize", 256, "record: page size in bytes")
	recSize := flag.Int("recsize", 16, "record: record size in bytes (record mode)")
	hot := flag.Float64("hot", 0.6, "record: probability a page pick re-references the recency window (communality knob)")
	window := flag.Int("window", 64, "record: recency window size in pages")

	replay := flag.String("replay", "", "replay the trace file at this path")
	runs := flag.Int("runs", 1, "replay: repeat on a fresh database this many times and compare digests; any mismatch exits 1")
	layout := flag.String("layout", "raid5", "replay: array geometry, raid5|paritystripe|mirror")
	disks := flag.Int("disks", 8, "replay: data disks per parity group (ignored by mirror)")
	useRDA := flag.Bool("rda", true, "replay: enable RDA recovery (twin parity)")
	eot := flag.String("eot", "force", "replay: EOT discipline, force or noforce")
	frames := flag.Int("frames", 96, "replay: buffer frames")
	ckpt := flag.Int64("ckpt", 0, "replay: checkpoint every n transfers (noforce; 0 = none)")
	crash := flag.Bool("crash", false, "replay: crash and recover at end of trace instead of draining")
	packed := flag.Bool("packedlog", true, "replay: packed log accounting for record-mode traces")

	info := flag.String("info", "", "print the header and op summary of the trace file at this path")
	flag.Parse()

	switch {
	case *record:
		// The base mix is the paper's high-update environment (s=10,
		// f_u=0.8, p_u=0.9, p_b=0.01); spec keys (s=, fu=, pu=, pb=)
		// override it.
		prof := workload.Profile{
			Streams:        *streams,
			Transactions:   *txns,
			PagesPerTx:     10,
			UpdateFraction: 0.8,
			UpdateProb:     0.9,
			AbortProb:      0.01,
			Hot:            *hot,
			Window:         *window,
			NumPages:       *pages,
			PageSize:       *pageSize,
			Seed:           *seed,
		}
		switch *mode {
		case "page":
			prof.Mode = trace.ModePage
		case "record":
			prof.Mode = trace.ModeRecord
			prof.RecordSize = *recSize
		default:
			fatal(2, "unknown mode %q (want page or record)", *mode)
		}
		if err := doRecord(*spec, prof, *out); err != nil {
			fatal(1, "record: %v", err)
		}
	case *replay != "":
		t, err := load(*replay)
		if err != nil {
			fatal(1, "replay: %v", err)
		}
		cfg, err := engineConfig(t, *layout, *disks, *useRDA, *eot, *frames, *packed)
		if err != nil {
			fatal(2, "replay: %v", err)
		}
		if err := doReplay(t, cfg, *runs, *crash, *ckpt); err != nil {
			fatal(1, "replay: %v", err)
		}
	case *info != "":
		t, err := load(*info)
		if err != nil {
			fatal(1, "info: %v", err)
		}
		printInfo(*info, t)
	default:
		fatal(2, "nothing to do: pass -record, -replay or -info")
	}
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rdatrace: "+format+"\n", args...)
	os.Exit(code)
}

func load(path string) (*trace.Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return trace.Decode(b)
}

func doRecord(spec string, base workload.Profile, out string) error {
	prof, pl, err := workload.FromSpec(spec, base)
	if err != nil {
		return err
	}
	t, err := workload.Generate(prof, pl)
	if err != nil {
		return err
	}
	enc := t.Encode()
	if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %s, %d ops, %d tx, %d stream(s), %d bytes -> %s\n",
		t.Header.Spec, t.Header.Mode, len(t.Ops), countTx(t), t.Header.Streams, len(enc), out)
	return nil
}

func countTx(t *trace.Trace) int {
	n := 0
	for _, op := range t.Ops {
		if op.Kind.IsEOT() {
			n++
		}
	}
	return n
}

// engineConfig builds the replay configuration from the trace's shape
// fields plus the geometry flags.
func engineConfig(t *trace.Trace, layout string, disks int, useRDA bool, eot string, frames int, packed bool) (rda.Config, error) {
	cfg := rda.DefaultConfig()
	switch layout {
	case "raid5":
		cfg.Layout = rda.DataStriping
		cfg.DataDisks = disks
	case "paritystripe":
		cfg.Layout = rda.ParityStriping
		cfg.DataDisks = disks
	case "mirror":
		cfg.Layout = rda.DataStriping
		cfg.DataDisks = 1
	default:
		return cfg, fmt.Errorf("unknown layout %q (want raid5, paritystripe or mirror)", layout)
	}
	switch eot {
	case "force":
		cfg.EOT = rda.Force
	case "noforce":
		cfg.EOT = rda.NoForce
	default:
		return cfg, fmt.Errorf("unknown EOT discipline %q (want force or noforce)", eot)
	}
	cfg.RDA = useRDA
	cfg.BufferFrames = frames
	cfg.CheckpointEvery = 0 // replay drives checkpoints itself, via trace.Options
	cfg.PackedLog = packed && t.Header.Mode == trace.ModeRecord
	return t.Config(cfg), nil
}

func doReplay(t *trace.Trace, cfg rda.Config, runs int, crash bool, ckpt int64) error {
	if runs < 1 {
		runs = 1
	}
	opts := trace.Options{CheckpointEvery: ckpt, CrashAtEnd: crash}
	var first trace.Result
	for i := 0; i < runs; i++ {
		db, err := rda.Open(cfg)
		if err != nil {
			return err
		}
		res, err := trace.Replay(db, t, opts)
		if err != nil {
			return err
		}
		fmt.Printf("run %d: %d committed, %d aborted, %d ops, %d transfers (%d recovery), digest %s\n",
			i+1, res.Committed, res.Aborted, res.OpsApplied, res.Transfers, res.RecoveryTransfers, res.Digest[:16])
		if i == 0 {
			first = res
			continue
		}
		if res.Digest != first.Digest {
			return fmt.Errorf("determinism violation: run %d digest %s != run 1 digest %s", i+1, res.Digest[:16], first.Digest[:16])
		}
	}
	if runs > 1 {
		fmt.Printf("deterministic: %d runs, identical digests\n", runs)
	}
	return nil
}

func printInfo(path string, t *trace.Trace) {
	h := t.Header
	fmt.Printf("%s:\n", path)
	fmt.Printf("  format     : %s v%d\n", trace.Magic, h.Version)
	fmt.Printf("  spec       : %s (seed %d)\n", h.Spec, h.Seed)
	fmt.Printf("  mode       : %s\n", h.Mode)
	fmt.Printf("  streams    : %d\n", h.Streams)
	fmt.Printf("  database   : %d pages x %d bytes", h.NumPages, h.PageSize)
	if h.Mode == trace.ModeRecord {
		fmt.Printf(", %d-byte records", h.RecordSize)
	}
	fmt.Println()
	var reads, writes int
	for _, op := range t.Ops {
		switch op.Kind {
		case trace.OpReadPage, trace.OpReadRecord:
			reads++
		case trace.OpWritePage, trace.OpWriteRecord:
			writes++
		}
	}
	fmt.Printf("  ops        : %d (%d tx, %d reads, %d writes)\n", len(t.Ops), countTx(t), reads, writes)
}
