package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/rda"
)

// The P+Q bench: the same seeded workload measured over a single-parity
// array and a P+Q (RAID-6 style) array in the paper's cost unit — page
// transfers — so the small-write overhead of the second redundancy page
// is stated in the same currency as Figures 9-13.  A second section
// measures the rebuild cost of one- and two-drive losses: the workload
// runs with the death(s) injected mid-run, then the online rebuild is
// driven to completion and its transfer bill recorded.

// pqRun is one measured configuration of the steady-state comparison.
type pqRun struct {
	Config       string `json:"config"`
	Committed    int64  `json:"committed"`
	DiskReads    int64  `json:"disk_reads"`
	DiskWrites   int64  `json:"disk_writes"`
	LogTransfers int64  `json:"log_transfers"`
	// TransfersPerCommit is the total transfer bill (array + log) per
	// committed transaction.
	TransfersPerCommit float64 `json:"transfers_per_commit"`
	// WriteOverheadPct is the extra array writes per commit relative to
	// the single-parity run (0 for the baseline itself).
	WriteOverheadPct float64 `json:"write_overhead_pct"`
}

// pqRebuild is one measured rebuild: how many transfers restoring full
// redundancy cost after the given number of drive deaths.
type pqRebuild struct {
	Config         string `json:"config"`
	DeadDisks      int    `json:"dead_disks"`
	GroupsRestored int64  `json:"groups_restored"`
	Transfers      int64  `json:"transfers"`
	Steps          int    `json:"throttled_steps"`
}

// pqOutput is the BENCH_pq.json document.
type pqOutput struct {
	Bench    string `json:"bench"`
	Geometry struct {
		DataDisks int    `json:"data_disks"`
		NumPages  int    `json:"num_pages"`
		PageSize  int    `json:"page_size"`
		Logging   string `json:"logging"`
		EOT       string `json:"eot"`
		Budget    int64  `json:"transfer_budget"`
	} `json:"geometry"`
	Runs     []pqRun     `json:"runs"`
	Rebuilds []pqRebuild `json:"rebuilds"`
}

// pqConfig is the bench's fixed engine configuration; only QParity
// varies between runs.
func pqConfig(qparity bool) rda.Config {
	cfg := rda.DefaultConfig()
	cfg.Logging = rda.PageLogging
	cfg.EOT = rda.Force
	cfg.RDA = true
	cfg.QParity = qparity
	cfg.PageSize = 256
	return cfg
}

// benchQParity measures the P+Q overhead and the one- vs two-drive
// rebuild cost, prints both tables and writes the JSON artifact.
func benchQParity(budget, seed int64, outPath string) error {
	fmt.Println("== P+Q overhead: single parity vs two redundancy pages (page logging FORCE/TOC, RDA, C=0.9) ==")
	src := workload.NewSource(seed)
	workloadSeed, faultSeed := src.Stream("workload"), src.Stream("fault")

	out := pqOutput{Bench: "P+Q small-write overhead and two-drive rebuild cost"}
	g := pqConfig(false)
	out.Geometry.DataDisks = g.DataDisks
	out.Geometry.NumPages = g.NumPages
	out.Geometry.PageSize = g.PageSize
	out.Geometry.Logging = "page"
	out.Geometry.EOT = "force"
	out.Geometry.Budget = budget

	run := func(qparity bool, sched fault.Schedule) (sim.Result, *rda.DB, error) {
		db, err := rda.Open(pqConfig(qparity))
		if err != nil {
			return sim.Result{}, nil, err
		}
		if sched != nil {
			plane := fault.NewPlane(sched)
			plane.SetSeed(faultSeed)
			db.SetInjector(plane)
		}
		res, err := sim.Run(db, sim.Workload{
			Concurrency:    6,
			PagesPerTx:     10,
			UpdateFraction: 0.8,
			UpdateProb:     0.9,
			AbortProb:      0.01,
			Communality:    0.9,
			Seed:           workloadSeed,
		}, sim.Options{Transfers: budget})
		return res, db, err
	}

	fmt.Printf("%16s %10s %12s %12s %14s %18s %10s\n",
		"config", "committed", "array reads", "array writes", "log transfers", "transfers/commit", "overhead")
	var baseWrites float64
	for _, c := range []struct {
		name    string
		qparity bool
	}{{"single-parity", false}, {"p+q", true}} {
		res, _, err := run(c.qparity, nil)
		if err != nil {
			return fmt.Errorf("%s run: %w", c.name, err)
		}
		st := res.Stats
		r := pqRun{
			Config:       c.name,
			Committed:    res.Committed,
			DiskReads:    st.DiskReads,
			DiskWrites:   st.DiskWrites,
			LogTransfers: st.LogWriteTransfers + st.LogReadTransfers,
		}
		if res.Committed > 0 {
			r.TransfersPerCommit = float64(st.TotalTransfers()) / float64(res.Committed)
			wpc := float64(st.DiskWrites) / float64(res.Committed)
			if baseWrites == 0 {
				baseWrites = wpc
			} else if baseWrites > 0 {
				r.WriteOverheadPct = 100 * (wpc - baseWrites) / baseWrites
			}
		}
		fmt.Printf("%16s %10d %12d %12d %14d %18.1f %9.1f%%\n",
			r.Config, r.Committed, r.DiskReads, r.DiskWrites, r.LogTransfers,
			r.TransfersPerCommit, r.WriteOverheadPct)
		out.Runs = append(out.Runs, r)
	}

	fmt.Println("-- rebuild cost: drive death(s) mid-run, online rebuild driven to completion --")
	fmt.Printf("%16s %10s %16s %12s %10s\n", "config", "dead", "groups restored", "transfers", "steps")
	// The schedule counts block writes, not transfers; array writes run
	// well under a quarter of the transfer budget, so an eighth of it
	// lands the death(s) mid-workload with degraded traffic to follow.
	at := budget / 8
	for _, c := range []struct {
		name    string
		qparity bool
		dead    int
	}{{"single-parity", false, 1}, {"p+q", true, 1}, {"p+q", true, 2}} {
		sched := fault.Schedule{fault.FailDisk(0, at)}
		if c.dead == 2 {
			sched = append(sched, fault.FailDisk(1, at))
		}
		_, db, err := run(c.qparity, sched)
		if err != nil {
			return fmt.Errorf("%s rebuild run (%d dead): %w", c.name, c.dead, err)
		}
		pre := db.Stats()
		steps := 0
		for {
			done, err := db.RebuildStep(0)
			if err != nil {
				return fmt.Errorf("%s rebuild (%d dead): %w", c.name, c.dead, err)
			}
			if done {
				break
			}
			steps++
		}
		post := db.Stats()
		if err := db.VerifyParity(); err != nil {
			return fmt.Errorf("%s parity after rebuild (%d dead): %w", c.name, c.dead, err)
		}
		rb := pqRebuild{
			Config:         c.name,
			DeadDisks:      c.dead,
			GroupsRestored: post.RebuiltGroups - pre.RebuiltGroups,
			Transfers:      post.DiskReads + post.DiskWrites - pre.DiskReads - pre.DiskWrites,
			Steps:          steps,
		}
		if rb.GroupsRestored == 0 {
			return fmt.Errorf("%s rebuild (%d dead): death at write %d was never observed — raise -budget", c.name, c.dead, at)
		}
		fmt.Printf("%16s %10d %16d %12d %10d\n",
			rb.Config, rb.DeadDisks, rb.GroupsRestored, rb.Transfers, rb.Steps)
		out.Rebuilds = append(out.Rebuilds, rb)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n\n", outPath)
	return nil
}
