package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/rda"
)

// The group-striped concurrency benchmark: W goroutines run transactions
// over disjoint parity-group ranges against one engine, with a simulated
// per-transfer disk service time so wall-clock throughput measures how
// much array parallelism the engine's latching actually admits.  Under
// the old whole-engine mutex every configuration measured the same
// tx/second; with per-group latches, workers on disjoint groups overlap
// their I/O across the array's drives and throughput scales with W.

// pipelineKnobs selects the async-pipeline configuration of the
// measured curve: zero values mean the synchronous engine.
type pipelineKnobs struct {
	QueueDepth  int
	QueueWindow int
	GroupCommit time.Duration
}

// benchGeometry is the benchmark's fixed engine configuration.
func benchGeometry(workers int, ioDelay time.Duration, pipe pipelineKnobs) rda.Config {
	cfg := rda.DefaultConfig()
	cfg.DataDisks = 8
	cfg.NumPages = 512
	cfg.PageSize = 2048
	// More frames than pages: the working set stays resident, so the
	// measured I/O is the FORCE commit traffic, not eviction noise.
	cfg.BufferFrames = 600
	cfg.Logging = rda.PageLogging
	cfg.EOT = rda.Force
	cfg.RDA = true
	cfg.Workers = workers
	cfg.IODelay = ioDelay
	cfg.QueueDepth = pipe.QueueDepth
	cfg.QueueWindow = pipe.QueueWindow
	cfg.GroupCommitWindow = pipe.GroupCommit
	return cfg
}

const (
	benchTxnsPerWorker = 150
	benchPagesPerTxn   = 8
)

// benchRun is one measured concurrency level, as serialized into
// BENCH_concurrency.json.
type benchRun struct {
	Workers   int     `json:"workers"`
	Committed int64   `json:"committed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	TxPerSec  float64 `json:"tx_per_sec"`
	// Speedup is this run's TxPerSec over the workers=1 run's (1.0 when
	// no workers=1 level was measured).
	Speedup float64 `json:"speedup"`
}

// benchOutput is the BENCH_concurrency.json document.  Runs is the
// synchronous-drive baseline; PipelineRuns is the same workload with the
// async I/O pipeline (per-drive request queues plus group commit).  Both
// curves' Speedup is anchored to the BASELINE workers=1 throughput, so
// the pipeline numbers state the end-to-end gain over the unoptimized
// engine, not just its own scaling.
type benchOutput struct {
	Bench    string `json:"bench"`
	Geometry struct {
		DataDisks         int     `json:"data_disks"`
		NumPages          int     `json:"num_pages"`
		PageSize          int     `json:"page_size"`
		BufferFrames      int     `json:"buffer_frames"`
		EOT               string  `json:"eot"`
		IODelayMicros     float64 `json:"io_delay_us"`
		TxnsPerWorker     int     `json:"txns_per_worker"`
		PagesPerTxn       int     `json:"pages_per_txn"`
		DisjointGroups    bool    `json:"disjoint_groups"`
		QueueDepth        int     `json:"queue_depth"`
		QueueWindow       int     `json:"queue_window"`
		GroupCommitMicros float64 `json:"group_commit_us"`
	} `json:"geometry"`
	Runs         []benchRun `json:"runs"`
	PipelineRuns []benchRun `json:"pipeline_runs,omitempty"`
}

// benchConcurrency measures every requested concurrency level — first on
// the synchronous engine, then with the async pipeline — and writes the
// JSON artifact with both curves.
func benchConcurrency(levels []int, ioDelay time.Duration, seed int64, outPath string, pipe pipelineKnobs) error {
	fmt.Println("== Group-striped concurrency: wall-clock throughput vs transaction concurrency ==")
	fmt.Printf("   (disjoint-group workload, %d txns x %d pages per worker, %v per block transfer)\n",
		benchTxnsPerWorker, benchPagesPerTxn, ioDelay)

	out := benchOutput{Bench: "group-striped concurrency (disjoint parity groups)"}
	g := benchGeometry(1, ioDelay, pipe)
	out.Geometry.DataDisks = g.DataDisks
	out.Geometry.NumPages = g.NumPages
	out.Geometry.PageSize = g.PageSize
	out.Geometry.BufferFrames = g.BufferFrames
	out.Geometry.EOT = "force"
	out.Geometry.IODelayMicros = float64(ioDelay) / float64(time.Microsecond)
	out.Geometry.TxnsPerWorker = benchTxnsPerWorker
	out.Geometry.PagesPerTxn = benchPagesPerTxn
	out.Geometry.DisjointGroups = true
	out.Geometry.QueueDepth = pipe.QueueDepth
	out.Geometry.QueueWindow = pipe.QueueWindow
	out.Geometry.GroupCommitMicros = float64(pipe.GroupCommit) / float64(time.Microsecond)

	measure := func(title string, p pipelineKnobs, base *float64) ([]benchRun, error) {
		fmt.Printf("-- %s --\n", title)
		fmt.Printf("%8s %10s %12s %12s %9s\n", "workers", "committed", "elapsed", "tx/sec", "speedup")
		var runs []benchRun
		for _, w := range levels {
			run, err := benchOneLevel(w, ioDelay, seed, p)
			if err != nil {
				return nil, fmt.Errorf("workers=%d: %w", w, err)
			}
			if w == 1 && *base == 0 {
				*base = run.TxPerSec
			}
			if *base > 0 {
				run.Speedup = run.TxPerSec / *base
			} else {
				run.Speedup = 1
			}
			fmt.Printf("%8d %10d %11.0fms %12.1f %8.2fx\n",
				run.Workers, run.Committed, run.ElapsedMS, run.TxPerSec, run.Speedup)
			runs = append(runs, run)
		}
		return runs, nil
	}

	var base float64
	var err error
	out.Runs, err = measure("synchronous drives (baseline)", pipelineKnobs{}, &base)
	if err != nil {
		return err
	}
	if pipe.QueueDepth > 1 {
		out.PipelineRuns, err = measure(
			fmt.Sprintf("async pipeline (queue depth %d, window %d, group commit %v); speedup vs baseline workers=1",
				pipe.QueueDepth, pipe.QueueWindow, pipe.GroupCommit), pipe, &base)
		if err != nil {
			return err
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("   wrote %s\n\n", outPath)
	return nil
}

// benchOneLevel opens a fresh engine and runs `workers` goroutines of
// blind page writes over disjoint page ranges (each range an integral
// number of parity groups), returning the measured throughput.
func benchOneLevel(workers int, ioDelay time.Duration, seed int64, pipe pipelineKnobs) (benchRun, error) {
	cfg := benchGeometry(workers, ioDelay, pipe)
	db, err := rda.Open(cfg)
	if err != nil {
		return benchRun{}, err
	}
	per := cfg.NumPages / workers
	// Align each worker's range to whole parity groups so the workload is
	// group-disjoint, not merely page-disjoint.
	per -= per % cfg.DataDisks
	if per < cfg.DataDisks {
		return benchRun{}, fmt.Errorf("too many workers for %d pages", cfg.NumPages)
	}
	img := make([]byte, cfg.PageSize)
	for i := range img {
		img[i] = byte(i)
	}

	var (
		wg        sync.WaitGroup
		committed int64
		mu        sync.Mutex
		firstErr  error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			lo := w * per
			var done int64
			for n := 0; n < benchTxnsPerWorker; n++ {
				tx, err := db.Begin()
				if err == nil {
					for i := 0; i < benchPagesPerTxn && err == nil; i++ {
						p := rda.PageID(lo + rng.Intn(per))
						err = tx.WritePage(p, img)
					}
					if err == nil {
						err = tx.Commit()
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				done++
			}
			mu.Lock()
			committed += done
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return benchRun{}, firstErr
	}
	if err := db.VerifyParity(); err != nil {
		return benchRun{}, fmt.Errorf("parity after bench: %w", err)
	}
	return benchRun{
		Workers:   workers,
		Committed: committed,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		TxPerSec:  float64(committed) / elapsed.Seconds(),
	}, nil
}

// parseWorkersList parses the -workers flag ("1,8" etc).
func parseWorkersList(s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		n, err := strconv.Atoi(tok)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", tok)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -workers list")
	}
	return out, nil
}
