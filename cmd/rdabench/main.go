// Command rdabench regenerates every evaluation artifact of the paper —
// Figures 9 through 13 — from the analytical model, and optionally
// cross-checks the ordering on the live engine with a measured
// simulation.
//
// Usage:
//
//	rdabench [-fig 9|10|11|12|13|overhead|nsweep|reliability|all] [-live] [-budget N] [-seed N]
//
// The self-healing flags measure the live engine under injected faults —
// a background transient-error rate and/or a disk death mid-run —
// against a fault-free baseline of the same workload, and print the
// retry, degraded-serving and rebuild counters:
//
//	rdabench -fig 9 -transient-rate 50 -faildisk-at 2000
//
// The integrity flag measures the verified-read/scrub plane the same
// way: a background bit-flip rate on block writes, online scrubbing
// beside the workload, and the repair counters plus transfer overhead
// against the fault-free baseline:
//
//	rdabench -fig 9 -bitflip-rate 200
//
// The P+Q flag measures the dual-failure-tolerant array: the small-write
// transfer overhead of the second redundancy page against single parity,
// and the rebuild bill for one- and two-drive losses, written to
// BENCH_pq.json:
//
//	rdabench -qparity
//
// The output is a table per figure with one row per x value (communality
// C, or transaction size s for Figure 13), giving the throughput without
// and with RDA recovery and the percentage gain — the same series the
// paper plots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/rda"
	"repro/rda/model"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9, 10, 11, 12, 13, overhead, nsweep, reliability or all")
	live := flag.Bool("live", false, "also measure the live engine (slower)")
	budget := flag.Int64("budget", 150000, "transfer budget per live measurement point")
	seed := flag.Int64("seed", 42, "harness seed; one seed feeds named substreams (workload generation, fault placement) through a shared seeded source, so any run with the same flags and seed is bit-reproducible")
	workloadSpecs := flag.String("workload", "", "workload sweep: semicolon-separated workload specs (uniform|zipfian|banking|scan[:k=v,...]); replays each over -geometries under all four algorithm families, prints measured vs model throughput, writes -workload-out, then exits")
	geometries := flag.String("geometries", "raid5:8,paritystripe:8,mirror", "workload sweep: comma-separated array geometries name[:datadisks] (raid5, paritystripe, mirror)")
	workloadTxns := flag.Int("workload-txns", 1200, "workload sweep: transactions per generated trace")
	workloadOut := flag.String("workload-out", "BENCH_workloads.json", "workload sweep: output JSON path")
	transientRate := flag.Int64("transient-rate", 0, "self-healing run: fail every n-th disk access with a transient error (0 = off)")
	bitflipRate := flag.Int64("bitflip-rate", 0, "integrity run: silently flip one payload bit on every n-th block write (0 = off); measures the verified-read and scrub repair overhead (aggressive rates can exceed single-parity redundancy)")
	faildiskAt := flag.Int64("faildisk-at", -1, "self-healing run: fail-stop disk 0 after this many block writes (-1 = off)")
	workersList := flag.String("workers", "", "concurrency bench: comma-separated worker counts (e.g. 1,8); runs the group-striped throughput bench and exits")
	ioDelay := flag.Duration("iodelay", 150*time.Microsecond, "concurrency bench: simulated per-transfer disk service time")
	benchOut := flag.String("bench-out", "BENCH_concurrency.json", "concurrency bench: output JSON path")
	queueDepth := flag.Int("queue-depth", 8, "concurrency bench: per-drive request queue depth for the pipeline curve (<= 1 skips the pipeline curve)")
	queueWindow := flag.Int("queue-window", 8, "concurrency bench: elevator aging window for the pipeline curve")
	groupCommit := flag.Duration("group-commit", 200*time.Microsecond, "concurrency bench: group-commit window for the pipeline curve (0 disables batched EOT forces)")
	qparity := flag.Bool("qparity", false, "P+Q bench: measure the second redundancy page's small-write overhead vs single parity, and the one- vs two-drive rebuild cost; writes -pq-out and exits")
	pqOut := flag.String("pq-out", "BENCH_pq.json", "P+Q bench: output JSON path")
	flag.Parse()

	if *qparity {
		if err := benchQParity(*budget, *seed, *pqOut); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: p+q bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workloadSpecs != "" {
		geoms, err := parseGeometries(*geometries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: %v\n", err)
			os.Exit(2)
		}
		var specs []string
		for _, s := range strings.Split(*workloadSpecs, ";") {
			if s = strings.TrimSpace(s); s != "" {
				specs = append(specs, s)
			}
		}
		if err := benchWorkloads(specs, geoms, *workloadTxns, *seed, *workloadOut); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: workload sweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *workersList != "" {
		levels, err := parseWorkersList(*workersList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: %v\n", err)
			os.Exit(2)
		}
		pipe := pipelineKnobs{QueueDepth: *queueDepth, QueueWindow: *queueWindow, GroupCommit: *groupCommit}
		if err := benchConcurrency(levels, *ioDelay, *seed, *benchOut, pipe); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: concurrency bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *fig {
	case "9":
		printFigure("Figure 9: page logging, FORCE/TOC", model.Figure9(model.DefaultCommunalities))
	case "10":
		printFigure("Figure 10: page logging, NOFORCE/ACC", model.Figure10(model.DefaultCommunalities))
	case "11":
		printFigure("Figure 11: record logging, FORCE/TOC", model.Figure11(model.DefaultCommunalities))
	case "12":
		printFigure("Figure 12: record logging, NOFORCE/ACC", model.Figure12(model.DefaultCommunalities))
	case "13":
		printFigure13()
	case "overhead":
		printOverhead()
	case "nsweep":
		printNSweep()
	case "reliability":
		printReliability()
	case "all":
		printFigure("Figure 9: page logging, FORCE/TOC", model.Figure9(model.DefaultCommunalities))
		printFigure("Figure 10: page logging, NOFORCE/ACC", model.Figure10(model.DefaultCommunalities))
		printFigure("Figure 11: record logging, FORCE/TOC", model.Figure11(model.DefaultCommunalities))
		printFigure("Figure 12: record logging, NOFORCE/ACC", model.Figure12(model.DefaultCommunalities))
		printFigure13()
		printOverhead()
		printNSweep()
		printReliability()
	default:
		fmt.Fprintf(os.Stderr, "rdabench: unknown figure %q\n", *fig)
		os.Exit(2)
	}

	if *live {
		if err := liveCrossCheck(*budget, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: live measurement: %v\n", err)
			os.Exit(1)
		}
	}
	if *transientRate > 0 || *faildiskAt >= 0 {
		if err := selfHealBench(*transientRate, *faildiskAt, *budget, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: self-healing measurement: %v\n", err)
			os.Exit(1)
		}
	}
	if *bitflipRate > 0 {
		if err := integrityBench(*bitflipRate, *budget, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rdabench: integrity measurement: %v\n", err)
			os.Exit(1)
		}
	}
}

func printFigure(title string, series []model.Series) {
	fmt.Printf("== %s ==\n", title)
	for _, s := range series {
		fmt.Printf("-- %s environment --\n", s.Label)
		fmt.Printf("%6s %12s %12s %8s\n", "C", "no-RDA", "RDA", "gain")
		for _, pt := range s.Points {
			fmt.Printf("%6.2f %12.0f %12.0f %7.1f%%\n", pt.X, pt.NoRDA, pt.RDA, pt.GainPct)
		}
	}
	fmt.Println()
}

func printFigure13() {
	s := model.Figure13(model.DefaultSizes)
	fmt.Println("== Figure 13: RDA benefit vs transaction size (record logging, NOFORCE/ACC, high update, C=0.9) ==")
	fmt.Printf("%6s %12s %12s %8s\n", "s", "no-RDA", "RDA", "gain")
	for _, pt := range s.Points {
		fmt.Printf("%6.0f %12.0f %12.0f %7.1f%%\n", pt.X, pt.NoRDA, pt.RDA, pt.GainPct)
	}
	fmt.Println()
}

func printOverhead() {
	fmt.Println("== Storage overhead (Section 6: about (100/N)% per parity copy) ==")
	fmt.Printf("%4s %14s %14s\n", "N", "single parity", "twin parity")
	for _, n := range []int{5, 10, 20, 40} {
		// Overhead relative to the data: (100/N)% per parity copy.
		fmt.Printf("%4d %13.1f%% %13.1f%%\n", n, 100.0/float64(n), 200.0/float64(n))
	}
	fmt.Println()
}

func printNSweep() {
	fmt.Println("== Ablation: RDA gain vs parity group width N (page logging, FORCE/TOC, high update, C=0.9) ==")
	fmt.Printf("%5s %10s %14s %10s\n", "N", "gain", "twin overhead", "p_l")
	for _, pt := range model.SweepN(model.DefaultWidths, 0.9) {
		fmt.Printf("%5d %9.1f%% %13.1f%% %10.4f\n", pt.N, pt.GainPct, pt.OverheadPct, pt.Pl)
	}
	fmt.Println()
}

func printReliability() {
	fmt.Println("== Reliability (introduction; 30,000 h disk MTTF, 24 h repair, 50 data disks) ==")
	cmp := model.CompareReliability(model.PaperDiskMTTFHours, 24, 50, 10)
	days := func(h float64) float64 { return h / model.HoursPerDay }
	fmt.Printf("  unprotected farm     : MTTF %8.1f days (the paper's \"less than 25 days\")\n", days(cmp.Unprotected))
	fmt.Printf("  mirrored (100%% extra): MTTDL %7.0f days\n", days(cmp.Mirrored))
	fmt.Printf("  RDA single (N=10, %2.0f%%): MTTDL %6.0f days\n", cmp.RDASingleOverheadPct, days(cmp.RDASingle))
	fmt.Printf("  RDA twin   (N=10, %2.0f%%): MTTDL %6.0f days\n", cmp.RDATwinOverheadPct, days(cmp.RDATwin))
	fmt.Println()
}

// selfHealBench measures the live engine under injected faults against a
// fault-free baseline of the same seeded workload: a background
// transient-error rate (masked by the retry layer), a disk death mid-run
// (served degraded, then rebuilt online after the interval), or both.
// It prints the committed-transaction cost of the faults and the
// self-healing counters that explain it.
func selfHealBench(transientRate, faildiskAt, budget, seed int64) error {
	fmt.Println("== Self-healing: live engine under injected faults (page logging FORCE/TOC, RDA, C=0.9) ==")
	// One harness seed, two named substreams: the workload and the fault
	// placement derive from it independently, so the whole run — fault
	// positions included — is bit-reproducible from -seed.
	src := workload.NewSource(seed)
	workloadSeed, faultSeed := src.Stream("workload"), src.Stream("fault")
	run := func(inject bool) (sim.Result, *rda.DB, error) {
		cfg := rda.DefaultConfig()
		cfg.Logging = rda.PageLogging
		cfg.EOT = rda.Force
		cfg.RDA = true
		cfg.PageSize = 256
		db, err := rda.Open(cfg)
		if err != nil {
			return sim.Result{}, nil, err
		}
		if inject {
			var sched fault.Schedule
			if faildiskAt >= 0 {
				sched = fault.Schedule{fault.FailDisk(0, faildiskAt)}
			}
			plane := fault.NewPlane(sched)
			if transientRate > 0 {
				plane.SetTransientEvery(transientRate)
			}
			plane.SetSeed(faultSeed)
			db.SetInjector(plane)
		}
		res, err := sim.Run(db, sim.Workload{
			Concurrency:    6,
			PagesPerTx:     10,
			UpdateFraction: 0.8,
			UpdateProb:     0.9,
			AbortProb:      0.01,
			Communality:    0.9,
			Seed:           workloadSeed,
		}, sim.Options{Transfers: budget})
		return res, db, err
	}
	base, _, err := run(false)
	if err != nil {
		return err
	}
	faulted, db, err := run(true)
	if err != nil {
		return err
	}
	// Crash the faulted database while it is still degraded and recover
	// it with the dead member absent — the transient-error rate stays
	// live across recovery, so this also exercises retry masking inside
	// the recovery passes.
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		return fmt.Errorf("degraded recovery: %w", err)
	}
	// Finish any online rebuild the disk death left behind, and verify
	// the array came back whole.
	pre := db.Stats()
	steps := 0
	for {
		done, err := db.RebuildStep(0)
		if err != nil {
			return fmt.Errorf("online rebuild: %w", err)
		}
		if done {
			break
		}
		steps++
	}
	post := db.Stats()
	if err := db.VerifyParity(); err != nil {
		return fmt.Errorf("parity after rebuild: %w", err)
	}
	st := faulted.Stats
	fmt.Printf("  injected faults       : transient rate 1/%d, disk death at write %d\n", transientRate, faildiskAt)
	fmt.Printf("  committed             : %d faulted vs %d fault-free (%.1f%%)\n",
		faulted.Committed, base.Committed, 100*float64(faulted.Committed)/float64(base.Committed))
	fmt.Printf("  retries               : %d transient errors masked, %d backoff units, %d auto fail-stops\n",
		st.IORetries, st.RetryBackoffUnits, st.AutoFailStops)
	fmt.Printf("  degraded serving      : %d reads reconstructed, %d writes without the dead member\n",
		st.DegradedReads, st.DegradedWrites)
	fmt.Printf("  degraded recovery     : %d loser(s) (%d via parity, %d via log, %d via reconstruction), %d deferred parity group(s), %d lost page(s)\n",
		rep.Losers, rep.UndoneViaParity, rep.UndoneViaLog,
		rep.UndoneViaReconstruction, rep.DeferredParityGroups, len(rep.LostPages))
	fmt.Printf("  online rebuild        : %d groups restored (%d after the interval, %d throttled steps, %d transfers)\n",
		post.RebuiltGroups, post.RebuiltGroups-st.RebuiltGroups, steps,
		post.DiskReads+post.DiskWrites-pre.DiskReads-pre.DiskWrites)
	fmt.Printf("  final health          : %v\n", db.Health())
	fmt.Println()
	return nil
}

// integrityBench measures the live engine under a background silent-
// corruption rate against a fault-free baseline of the same seeded
// workload: every n-th block write has one payload bit flipped after it
// lands, the online scrubber cycles concurrently with the transactions,
// and every flipped block must be transparently repaired from parity —
// on the read path or by the scrubber — before any transaction sees it.
// It prints the committed-transaction cost of the verification and
// repair traffic and the integrity counters that explain it.
func integrityBench(rate, budget, seed int64) error {
	fmt.Println("== Integrity plane: live engine under background bit flips (page logging FORCE/TOC, RDA, C=0.9) ==")
	// Same shared-source discipline as selfHealBench: workload and fault
	// placement are independent substreams of the one harness seed.
	src := workload.NewSource(seed)
	workloadSeed, faultSeed := src.Stream("workload"), src.Stream("fault")
	run := func(inject bool) (sim.Result, *rda.DB, error) {
		cfg := rda.DefaultConfig()
		cfg.Logging = rda.PageLogging
		cfg.EOT = rda.Force
		cfg.RDA = true
		cfg.PageSize = 256
		db, err := rda.Open(cfg)
		if err != nil {
			return sim.Result{}, nil, err
		}
		if inject {
			plane := fault.NewPlane(nil)
			plane.SetBitFlipEvery(rate)
			plane.SetSeed(faultSeed)
			db.SetInjector(plane)
		}
		// The scrubber cycles continuously beside the workload, as it
		// would in production; the stop channel ends it with the run.
		stop := make(chan struct{})
		scrubDone := make(chan error, 1)
		go func() {
			for {
				res := <-db.StartScrub()
				if res.Err != nil {
					scrubDone <- res.Err
					return
				}
				select {
				case <-stop:
					scrubDone <- nil
					return
				default:
				}
			}
		}()
		res, err := sim.Run(db, sim.Workload{
			Concurrency:    6,
			PagesPerTx:     10,
			UpdateFraction: 0.8,
			UpdateProb:     0.9,
			AbortProb:      0.01,
			Communality:    0.9,
			Seed:           workloadSeed,
		}, sim.Options{Transfers: budget})
		close(stop)
		if serr := <-scrubDone; err == nil && serr != nil {
			err = fmt.Errorf("online scrub: %w", serr)
		}
		return res, db, err
	}
	base, _, err := run(false)
	if err != nil {
		return err
	}
	faulted, db, err := run(true)
	if err != nil {
		return err
	}
	// Stop the corruption, sweep the residue with one full scrub cycle,
	// and prove the array is whole again.
	db.SetInjector(nil)
	if res := <-db.StartScrub(); res.Err != nil {
		return fmt.Errorf("final scrub: %w", res.Err)
	}
	if err := db.VerifyParity(); err != nil {
		return fmt.Errorf("parity after repairs: %w", err)
	}
	st := db.Stats()
	fmt.Printf("  injected faults       : one payload bit flipped every %d block write(s)\n", rate)
	fmt.Printf("  committed             : %d faulted vs %d fault-free (%.1f%%)\n",
		faulted.Committed, base.Committed, 100*float64(faulted.Committed)/float64(base.Committed))
	fmt.Printf("  detection             : %d corrupt block(s) caught by verified reads and scrubbing\n",
		st.CorruptBlocksDetected)
	fmt.Printf("  repair                : %d read repair(s) on the hot path, %d parity repair(s), %d scrub repair(s), %d group(s) scrubbed\n",
		st.ReadRepairs, st.ParityRepairs, st.ScrubRepairs, st.ScrubbedGroups)
	fmt.Printf("  transfer overhead     : %d faulted vs %d fault-free array transfers (%.1f%%)\n",
		faulted.Stats.DiskReads+faulted.Stats.DiskWrites, base.Stats.DiskReads+base.Stats.DiskWrites,
		100*float64(faulted.Stats.DiskReads+faulted.Stats.DiskWrites)/float64(base.Stats.DiskReads+base.Stats.DiskWrites))
	fmt.Printf("  unrecoverable         : %d (double faults beyond single parity)\n", st.UnrecoverableCorruption)
	fmt.Println()
	return nil
}

// liveCrossCheck measures the paper's headline comparison — page logging
// FORCE/TOC with and without RDA — on the real engine over a sweep of C.
// Both sides of each comparison run the same seeded workload.
func liveCrossCheck(budget, seed int64) error {
	fmt.Println("== Live engine cross-check: page logging FORCE/TOC (cf. Figure 9) ==")
	fmt.Printf("%6s %12s %12s %8s %16s\n", "C", "no-RDA tx", "RDA tx", "gain", "log transfers Δ")
	for _, c := range []float64{0.0, 0.3, 0.6, 0.9} {
		run := func(useRDA bool) (sim.Result, error) {
			cfg := rda.DefaultConfig()
			cfg.Logging = rda.PageLogging
			cfg.EOT = rda.Force
			cfg.RDA = useRDA
			cfg.PageSize = 256 // keep memory modest; transfers are size independent
			db, err := rda.Open(cfg)
			if err != nil {
				return sim.Result{}, err
			}
			return sim.Run(db, sim.Workload{
				Concurrency:    6,
				PagesPerTx:     10,
				UpdateFraction: 0.8,
				UpdateProb:     0.9,
				AbortProb:      0.01,
				Communality:    c,
				Seed:           seed,
			}, sim.Options{Transfers: budget, CrashAtEnd: true})
		}
		no, err := run(false)
		if err != nil {
			return err
		}
		yes, err := run(true)
		if err != nil {
			return err
		}
		gain := 100 * (float64(yes.Committed) - float64(no.Committed)) / float64(no.Committed)
		fmt.Printf("%6.2f %12d %12d %7.1f%% %16d\n",
			c, no.Committed, yes.Committed, gain,
			no.Stats.LogWriteTransfers-yes.Stats.LogWriteTransfers)
	}
	return nil
}
