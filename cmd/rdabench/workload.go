package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/workload"
	"repro/rda"
	"repro/rda/model"
	"repro/rda/trace"
)

// The workload sweep is the Section 5 model validation harness: it
// generates one trace per (workload spec, logging mode), replays it on
// every requested array geometry under every algorithm family the paper
// analyzes, and writes measured and model-predicted throughput side by
// side — the model evaluated at the communality the engine actually
// measured, so the comparison isolates the model's cost equations from
// its locality assumption.

// geometry is one array organization under test.
type geometry struct {
	Name      string     `json:"name"`
	Layout    rda.Layout `json:"-"`
	DataDisks int        `json:"data_disks"`
}

// parseGeometries parses "raid5:8,paritystripe:8,mirror" — a comma list
// of name[:datadisks], where mirror is group width 1 (the parity page of
// a single-page group is a copy of it, so every block is mirrored).
func parseGeometries(s string) ([]geometry, error) {
	var out []geometry
	for _, tok := range strings.Split(s, ",") {
		name, arg, hasArg := strings.Cut(strings.TrimSpace(tok), ":")
		g := geometry{Name: strings.TrimSpace(tok), DataDisks: 8}
		if hasArg {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad geometry %q: want name[:datadisks]", tok)
			}
			g.DataDisks = n
		}
		switch name {
		case "raid5":
			g.Layout = rda.DataStriping
		case "paritystripe":
			g.Layout = rda.ParityStriping
		case "mirror":
			g.Layout, g.DataDisks = rda.DataStriping, 1
			if hasArg {
				return nil, fmt.Errorf("bad geometry %q: mirror takes no group width", tok)
			}
		default:
			return nil, fmt.Errorf("unknown geometry %q (want raid5, paritystripe or mirror)", name)
		}
		out = append(out, g)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no geometries")
	}
	return out, nil
}

// familyShape maps an algorithm family onto the engine knobs it names.
func familyShape(a model.Algorithm) (trace.Mode, rda.EOTDiscipline) {
	switch a {
	case model.AlgoPageForceTOC:
		return trace.ModePage, rda.Force
	case model.AlgoPageNoForceACC:
		return trace.ModePage, rda.NoForce
	case model.AlgoRecordForceTOC:
		return trace.ModeRecord, rda.Force
	default:
		return trace.ModeRecord, rda.NoForce
	}
}

// workloadCell is one (workload, geometry, algorithm family) measurement.
type workloadCell struct {
	Workload  string `json:"workload"`
	Algorithm string `json:"algorithm"`
	Geometry  string `json:"geometry"`
	DataDisks int    `json:"data_disks"`

	Committed int64 `json:"committed"`
	Aborted   int64 `json:"aborted"`
	Transfers int64 `json:"transfers"`
	// MeasuredC is the buffer hit rate the run saw; the model prediction
	// is evaluated at this communality.
	MeasuredC float64 `json:"measured_c"`
	// CheckpointEvery is the model-derived checkpoint interval the
	// replay used (¬FORCE families; 0 for FORCE/TOC).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`

	// Throughputs in transactions per availability interval of T page
	// transfers: measured = committed·T/transfers.
	MeasuredThroughput float64 `json:"measured_throughput"`
	ModelThroughput    float64 `json:"model_throughput"`
	// Ratio is measured/model — 1.0 would be a perfect prediction.
	Ratio float64 `json:"ratio"`
}

// workloadBenchOutput is the BENCH_workloads.json schema.
type workloadBenchOutput struct {
	Benchmark string  `json:"benchmark"`
	Seed      int64   `json:"seed"`
	TraceSeed int64   `json:"trace_seed"`
	Interval  float64 `json:"interval_transfers"`
	Streams   int     `json:"streams"`
	NumPages  int     `json:"num_pages"`
	PageSize  int     `json:"page_size"`
	Frames    int     `json:"buffer_frames"`
	Txns      int     `json:"transactions_per_trace"`

	Geometries []geometry     `json:"geometries"`
	Workloads  []string       `json:"workloads"`
	Cells      []workloadCell `json:"cells"`
}

// benchWorkloads runs the sweep: for every workload spec, one trace per
// logging mode, replayed under every geometry × algorithm family, with
// the model's prediction (at measured communality) beside each
// measurement.  The whole sweep is a pure function of its flags: the
// harness seed feeds the workload substream of a shared seeded source,
// traces are generated once and replayed deterministically.
func benchWorkloads(specs []string, geoms []geometry, txns int, seed int64, outPath string) error {
	const (
		numPages   = 480
		pageSize   = 256
		frames     = 96
		recordSize = 16
		streams    = 6
		intervalT  = 5e6
	)
	src := workload.NewSource(seed)
	traceSeed := src.Stream("workload")

	out := workloadBenchOutput{
		Benchmark:  "workload-sweep",
		Seed:       seed,
		TraceSeed:  traceSeed,
		Interval:   intervalT,
		Streams:    streams,
		NumPages:   numPages,
		PageSize:   pageSize,
		Frames:     frames,
		Txns:       txns,
		Geometries: geoms,
		Workloads:  specs,
	}

	base := workload.Profile{
		Streams:        streams,
		Transactions:   txns,
		PagesPerTx:     10,
		UpdateFraction: 0.8,
		UpdateProb:     0.9,
		AbortProb:      0.01,
		Hot:            0.6,
		Window:         frames,
		NumPages:       numPages,
		PageSize:       pageSize,
		Seed:           traceSeed,
	}

	for _, spec := range specs {
		fmt.Printf("== Workload %s: measured vs Section 5 model (RDA, %d tx, seed %d) ==\n", spec, txns, seed)
		fmt.Printf("%-14s %-22s %10s %10s %12s %12s %7s\n",
			"algorithm", "geometry", "committed", "C", "measured", "model", "ratio")

		// One trace per logging mode; both ¬FORCE and FORCE families of a
		// mode replay the same trace, so EOT discipline is the only
		// variable between them.
		traces := map[trace.Mode]*trace.Trace{}
		profiles := map[trace.Mode]workload.Profile{}
		for _, mode := range []trace.Mode{trace.ModePage, trace.ModeRecord} {
			p := base
			p.Mode = mode
			if mode == trace.ModeRecord {
				p.RecordSize = recordSize
			}
			prof, pl, err := workload.FromSpec(spec, p)
			if err != nil {
				return err
			}
			t, err := workload.Generate(prof, pl)
			if err != nil {
				return fmt.Errorf("generating %s (%s mode): %w", spec, mode, err)
			}
			traces[mode], profiles[mode] = t, prof
		}

		for _, algo := range model.Algorithms {
			mode, eot := familyShape(algo)
			t, prof := traces[mode], profiles[mode]
			shape := model.Shape{
				PagesPerTx:     float64(prof.PagesPerTx),
				UpdateFraction: prof.UpdateFraction,
				UpdateProb:     prof.UpdateProb,
				AbortProb:      prof.AbortProb,
			}
			for _, g := range geoms {
				sys := model.System{
					BufferFrames: frames,
					NumPages:     numPages,
					GroupWidth:   g.DataDisks,
					Concurrency:  streams,
					Interval:     intervalT,
				}

				// ¬FORCE replays checkpoint at the model's optimal interval,
				// pre-computed at the generator's locality knob (measured C
				// is only known after the run).
				var ckptEvery int64
				if eot == rda.NoForce {
					pre := model.Evaluate(algo, model.Compose(sys, model.Shape{
						PagesPerTx:     shape.PagesPerTx,
						UpdateFraction: shape.UpdateFraction,
						UpdateProb:     shape.UpdateProb,
						AbortProb:      shape.AbortProb,
						Communality:    prof.Hot,
					}), true)
					ckptEvery = int64(pre.Interval)
				}

				cfg := rda.DefaultConfig()
				cfg.Layout = g.Layout
				cfg.DataDisks = g.DataDisks
				cfg.EOT = eot
				cfg.RDA = true
				cfg.BufferFrames = frames
				cfg.PackedLog = mode == trace.ModeRecord
				cfg = t.Config(cfg)
				db, err := rda.Open(cfg)
				if err != nil {
					return err
				}
				res, err := trace.Replay(db, t, trace.Options{CheckpointEvery: ckptEvery})
				if err != nil {
					return fmt.Errorf("%s on %s: %w", algo.Key(), g.Name, err)
				}

				hits, misses := res.Stats.BufferHits, res.Stats.BufferMisses
				measuredC := 0.0
				if hits+misses > 0 {
					measuredC = float64(hits) / float64(hits+misses)
				}
				measured := float64(res.Committed) * intervalT / float64(res.Transfers)
				shape.Communality = measuredC
				pred := model.Evaluate(algo, model.Compose(sys, shape), true)

				cell := workloadCell{
					Workload:           spec,
					Algorithm:          algo.Key(),
					Geometry:           g.Name,
					DataDisks:          g.DataDisks,
					Committed:          res.Committed,
					Aborted:            res.Aborted,
					Transfers:          res.Transfers,
					MeasuredC:          measuredC,
					CheckpointEvery:    ckptEvery,
					MeasuredThroughput: measured,
					ModelThroughput:    pred.Throughput,
					Ratio:              measured / pred.Throughput,
				}
				out.Cells = append(out.Cells, cell)
				fmt.Printf("%-14s %-22s %10d %10.3f %12.0f %12.0f %7.2f\n",
					cell.Algorithm, cell.Geometry, cell.Committed, cell.MeasuredC,
					cell.MeasuredThroughput, cell.ModelThroughput, cell.Ratio)
			}
		}
		fmt.Println()
	}

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(outPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cells)\n", outPath, len(out.Cells))
	return nil
}
