// Command rdacrash explores crash points of the RDA engine.
//
// Exhaustive mode crashes a deterministic seeded workload at every block
// write index and verifies recovery each time, for both array layouts:
//
//	rdacrash -explore
//	rdacrash -explore -torn        # tear each write instead
//
// Soak mode runs randomized crash points over derived seeds:
//
//	rdacrash -soak -seed 7 -iters 200
//
// Mix mode is the self-healing soak: every run executes under a
// background transient-error rate (masked by the retry layer), and
// iterations alternate between random crash points and mid-run disk
// deaths served degraded and rebuilt online:
//
//	rdacrash -mix -seed 7 -iters 50 -transient 50
//
// Degraded mode is the exhaustive sweep with one disk down: it crashes
// the workload at every write index while a disk is dead from the start
// (covering crash points inside the restarted online rebuild, too), then
// sweeps schedules where the disk death *coincides* with the crash
// write:
//
//	rdacrash -degraded
//
// Double mode is the same sweep against a P+Q (RAID-6 style) array with
// TWO disks down: one family runs with both disks dead from the start
// (crash points spanning the double-degraded workload and the two-drive
// rebuild), the other kills the second disk at the crash write itself:
//
//	rdacrash -double
//
// Corrupt mode is the silent-corruption soak: every run plants a bit
// flip, lost write or misdirected write at a random write index (half
// the runs crash afterwards too) while online scrub steps interleave
// with the workload, and every read is held to the integrity plane's
// oracle — committed data is never served corrupt:
//
//	rdacrash -corrupt -seed 7 -iters 100
//
// Every failure prints its seed and schedule; replay one with:
//
//	rdacrash -seed <seed> -sched "crash@w12"
//	rdacrash -degraded -seed <seed> -sched "faildisk[0]@w0 crash@w13"
//	rdacrash -double -seed <seed> -sched "faildisk[0]@w0 faildisk[3]@w9 crash@w9"
//	rdacrash -corrupt -seed <seed> -sched "misdirected[21]@w6 crash@w9"
//
// The exit status is non-zero if any run violated a recovery invariant.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/rda"
	"repro/rda/crashcheck"
)

func main() {
	var (
		explore  = flag.Bool("explore", false, "exhaustively crash at every write index")
		degraded = flag.Bool("degraded", false, "exhaustive crash sweep with one disk down: crashes across the degraded workload, the online rebuild, and coinciding with the disk death itself")
		double   = flag.Bool("double", false, "exhaustive double-fault crash sweep on a P+Q array: two disks dead from the start, plus a second death coinciding with the crash write")
		soak     = flag.Bool("soak", false, "randomized crash points over derived seeds")
		corrupt  = flag.Bool("corrupt", false, "silent-corruption soak: random bit flips, lost and misdirected writes (half crashed on top) with online scrubbing interleaved")
		mix      = flag.Bool("mix", false, "self-healing soak: transient faults everywhere, alternating crashes and mid-run disk deaths")
		trans    = flag.Int64("transient", 50, "mix mode: fail every n-th disk access with a transient error (0 disables)")
		torn     = flag.Bool("torn", false, "tear the crashed write (half payload persists) instead of dropping it")
		seed     = flag.Int64("seed", 1, "workload seed (soak: master seed for derived runs)")
		iters    = flag.Int("iters", 100, "soak iterations")
		txns     = flag.Int("txns", 0, "transactions per workload (0 = default)")
		ops      = flag.Int("ops", 0, "page operations per transaction (0 = default)")
		sched    = flag.String("sched", "", `replay one schedule (e.g. "crash@w12" or "torn[head]@w3") and exit`)
		layouts  = flag.String("layout", "both", "array layout: data, parity, or both")
		workers  = flag.Int("workers", 0, "engine-internal parallelism for recovery/rebuild scans (0 = deterministic single worker)")
		qdepth   = flag.Int("queue-depth", 0, "per-drive request queue depth; > 1 enables the async I/O pipeline, so crash sweeps land at every queue-DEQUEUE index (0/1 = synchronous, byte-replayable)")
	)
	flag.Parse()

	var lays []rda.Layout
	switch *layouts {
	case "data":
		lays = []rda.Layout{rda.DataStriping}
	case "parity":
		lays = []rda.Layout{rda.ParityStriping}
	case "both":
		lays = []rda.Layout{rda.DataStriping, rda.ParityStriping}
	default:
		fmt.Fprintf(os.Stderr, "rdacrash: unknown -layout %q\n", *layouts)
		os.Exit(2)
	}

	opts := func(l rda.Layout) crashcheck.Options {
		return crashcheck.Options{Layout: l, Seed: *seed, Txns: *txns, OpsPerTx: *ops, Torn: *torn, Workers: *workers, QueueDepth: *qdepth}
	}

	failed := false
	switch {
	case *sched != "":
		s, err := fault.ParseSchedule(*sched)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
			os.Exit(2)
		}
		for _, l := range lays {
			// Mix- and degraded-mode replays (disk deaths, transient
			// rates) need their own harness; add -mix/-degraded (and the
			// original -transient rate) to the replay command line.
			var err error
			switch {
			case *corrupt:
				o := opts(l)
				o.Scrub = true
				_, err = crashcheck.RunCorruptSchedule(o, s)
			case *degraded, *double:
				o := opts(l)
				o.QParity = *double
				var rep *rda.RecoveryReport
				rep, err = crashcheck.RunDegradedSchedule(o, s)
				if rep != nil {
					fmt.Printf("%v: recovery report: losers=%d undoneViaParity=%d undoneViaLog=%d undoneViaReconstruction=%d deferredParityGroups=%d lostPages=%d\n",
						l, rep.Losers, rep.UndoneViaParity, rep.UndoneViaLog,
						rep.UndoneViaReconstruction, rep.DeferredParityGroups, len(rep.LostPages))
				}
			case *mix:
				err = crashcheck.RunMixSchedule(opts(l), s, *trans)
			default:
				err = crashcheck.RunSchedule(opts(l), s)
			}
			if err != nil {
				fmt.Printf("%v: FAIL seed=%d sched=%q: %v\n", l, *seed, s, err)
				failed = true
			} else {
				fmt.Printf("%v: ok seed=%d sched=%q\n", l, *seed, s)
			}
		}
	case *double:
		for _, l := range lays {
			res, err := crashcheck.ExploreDouble(opts(l), func(done, total int64) {
				if done%64 == 0 || done == total {
					fmt.Printf("\r%v: double-fault crash %d/%d", l, done, total)
				}
			})
			fmt.Println()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, "-double ")
			failed = failed || len(res.Violations) > 0
		}
	case *degraded:
		for _, l := range lays {
			res, err := crashcheck.ExploreDegraded(opts(l), func(done, total int64) {
				if done%64 == 0 || done == total {
					fmt.Printf("\r%v: degraded crash %d/%d", l, done, total)
				}
			})
			fmt.Println()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, "-degraded ")
			failed = failed || len(res.Violations) > 0
		}
	case *explore:
		for _, l := range lays {
			mode := "clean"
			if *torn {
				mode = "torn"
			}
			res, err := crashcheck.Explore(opts(l), func(done, total int64) {
				if done%64 == 0 || done == total {
					fmt.Printf("\r%v: %s crash %d/%d", l, mode, done, total)
				}
			})
			fmt.Println()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, "")
			failed = failed || len(res.Violations) > 0
		}
	case *corrupt:
		for _, l := range lays {
			res, err := crashcheck.CorruptSoak(opts(l), *iters)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, "-corrupt ")
			fmt.Printf("%v: integrity: %d corrupt block(s) detected, %d read repair(s), %d scrub repair(s), %d group(s) scrubbed, %d unrecoverable\n",
				l, res.CorruptBlocksDetected, res.ReadRepairs, res.ScrubRepairs, res.ScrubbedGroups, res.UnrecoverableCorruption)
			failed = failed || len(res.Violations) > 0
		}
	case *mix:
		for _, l := range lays {
			res, err := crashcheck.MixSoak(opts(l), *iters, *trans)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, fmt.Sprintf("-mix -transient %d ", *trans))
			failed = failed || len(res.Violations) > 0
		}
	case *soak:
		for _, l := range lays {
			res, err := crashcheck.Soak(opts(l), *iters)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rdacrash: %v\n", err)
				os.Exit(1)
			}
			report(l, res, "")
			failed = failed || len(res.Violations) > 0
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}

func report(l rda.Layout, res *crashcheck.Result, extra string) {
	fmt.Printf("%v: %d run(s), %d write(s) per workload, %d violation(s)\n",
		l, res.Runs, res.TotalWrites, len(res.Violations))
	if res.UndoneViaReconstruction+res.DeferredParityGroups+res.DataLossRuns > 0 {
		fmt.Printf("%v: degraded recovery: %d undo(s) via reconstruction, %d deferred parity group(s), %d run(s) with explicit loss (%d page(s))\n",
			l, res.UndoneViaReconstruction, res.DeferredParityGroups, res.DataLossRuns, res.LostPages)
	}
	for _, v := range res.Violations {
		fmt.Printf("  FAIL %s\n", v)
		fmt.Printf("       replay: rdacrash %s-layout %s -seed %d -sched %q\n", extra, layoutFlag(l), v.Seed, v.Schedule)
	}
}

func layoutFlag(l rda.Layout) string {
	if l == rda.ParityStriping {
		return "parity"
	}
	return "data"
}
