package rda

import (
	"bytes"
	"testing"
)

// mirrorConfig is a width-1 array: every parity "group" is a mirrored
// pair (single parity) or a Wu & Fuchs twin-page triple (RDA).
func mirrorConfig(useRDA bool) Config {
	cfg := smallConfig(PageLogging, Force, useRDA, DataStriping)
	cfg.DataDisks = 1
	cfg.NumPages = 32
	return cfg
}

// TestMirroredPairSemantics runs the standard commit/abort/crash/media
// battery on a mirrored (N=1) array — the introduction's comparator.
func TestMirroredPairSemantics(t *testing.T) {
	for _, useRDA := range []bool{false, true} {
		db, err := Open(mirrorConfig(useRDA))
		if err != nil {
			t.Fatal(err)
		}
		base := fillPage(db, 0x10)
		tx := mustBegin(t, db)
		if err := tx.WritePage(0, base); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Abort path.
		ab := mustBegin(t, db)
		if err := ab.WritePage(0, fillPage(db, 0x99)); err != nil {
			t.Fatal(err)
		}
		if err := ab.Abort(); err != nil {
			t.Fatal(err)
		}
		// Crash path.
		loser := mustBegin(t, db)
		for p := PageID(0); p < 12; p++ {
			if err := loser.WritePage(p, fillPage(db, 0x77)); err != nil {
				t.Fatal(err)
			}
		}
		db.Crash()
		if _, err := db.Recover(); err != nil {
			t.Fatal(err)
		}
		// Media path: every disk in turn.
		for d := 0; d < db.NumDisks(); d++ {
			if err := db.FailDisk(d); err != nil {
				t.Fatal(err)
			}
			if err := db.RepairDisk(d); err != nil {
				t.Fatalf("rda=%v disk %d: %v", useRDA, d, err)
			}
		}
		check := mustBegin(t, db)
		got, err := check.ReadPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("rda=%v: mirrored page lost its committed value", useRDA)
		}
		if err := check.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("rda=%v: %v", useRDA, err)
		}
	}
}

// TestMirrorWriteCost pins the mirroring cost model: a committed write
// to a width-1 group is exactly two transfers (both copies), with no
// read-modify-write — the 100%-overhead/cheap-write tradeoff the paper's
// introduction describes for Bitton & Gray mirroring.
func TestMirrorWriteCost(t *testing.T) {
	cfg := mirrorConfig(false)
	cfg.BufferFrames = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One committed page write, stolen via FlushPage at commit.
	db.ResetStats()
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	// Fetch (1 read) + mirrored write (2 writes).  Everything else is
	// log traffic, which is counted separately.
	if st.DiskReads != 1 || st.DiskWrites != 2 {
		t.Fatalf("mirror write cost: %d reads / %d writes, want 1/2", st.DiskReads, st.DiskWrites)
	}
}

// TestMirrorStorageOverhead pins the introduction's storage comparison:
// mirroring duplicates everything (50% of raw capacity is redundancy),
// versus 1/(N+1) for a parity array.
func TestMirrorStorageOverhead(t *testing.T) {
	mirror, err := Open(mirrorConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if mirror.NumDisks() != 2 {
		t.Fatalf("mirrored pair spans %d disks, want 2", mirror.NumDisks())
	}
	parity, err := Open(smallConfig(PageLogging, Force, false, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	// 4 data disks + 1 parity: 20% redundancy versus mirroring's 50%.
	if parity.NumDisks() != 5 {
		t.Fatalf("parity array spans %d disks, want 5", parity.NumDisks())
	}
}
