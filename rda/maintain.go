package rda

import (
	"errors"
	"fmt"

	"repro/internal/page"
	"repro/internal/wal"
)

// ScrubReport summarizes a parity scrub (see Scrub and ScrubStep).
type ScrubReport struct {
	// GroupsScanned is the number of parity groups examined.
	GroupsScanned int
	// GroupsSkipped is the number of groups left for a later cycle
	// because they were dirty or degraded (online scrubbing only; the
	// quiesced Scrub never skips).
	GroupsSkipped int
	// LatentErrors is the number of blocks that failed end-to-end
	// verification — checksum, location stamp or write ledger.
	LatentErrors int
	// Repaired is the number of blocks rebuilt from redundancy.
	Repaired int
	// ParityRewritten counts stale parity pages recomputed.
	ParityRewritten int
}

// ErrBusy reports a maintenance operation attempted while transactions
// hold uncommitted on-disk state.
var ErrBusy = errors.New("rda: operation requires a quiesced database")

// Scrub verifies every parity group against its data and repairs latent
// sector errors (silent corruption) from the array's redundancy — the
// background verification pass that keeps "media recovery will actually
// work" true on a long-lived array.  The database must be quiescent: no
// active transaction may have pages on disk awaiting undo.  For
// scrubbing a *live* database incrementally — without quiescing, under
// the shared gate — see ScrubStep and StartScrub.
func (db *DB) Scrub() (*ScrubReport, error) {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	if db.store.Degraded() && !db.arr.HasQ() {
		// Scrubbing compares parity against data it cannot fully read;
		// finish the rebuild first.  A Q-parity array has an equation to
		// spare, so its degraded groups still scrub (and repair) — see
		// core.Store.Scrub.
		return nil, fmt.Errorf("%w: scrub needs full redundancy", ErrDegraded)
	}
	// Flush so the scan verifies current contents, then require
	// cleanliness.
	if err := db.pool.FlushAll(nil); err != nil {
		return nil, fmt.Errorf("rda: scrub flush: %w", err)
	}
	if db.store.Dirty != nil && db.store.Dirty.Len() > 0 {
		return nil, fmt.Errorf("%w: %d parity groups dirty", ErrBusy, db.store.Dirty.Len())
	}
	rep, err := db.store.Scrub()
	if err != nil {
		return nil, fmt.Errorf("rda: scrub: %w", err)
	}
	// Invalidate exactly the frames whose platter blocks were rewritten;
	// everything else in the pool is still current (the flush above made
	// every frame clean, so DiscardClean always applies).
	for _, p := range rep.RepairedPages {
		db.pool.DiscardClean(p)
	}
	return &ScrubReport{
		GroupsScanned:   rep.GroupsScanned,
		GroupsSkipped:   rep.GroupsSkipped,
		LatentErrors:    rep.LatentErrors,
		Repaired:        rep.Repaired,
		ParityRewritten: rep.ParityRewritten,
	}, nil
}

// CorruptBlock flips bits in the stored copy of a data page without
// updating its checksum — a latent sector error injection for exercising
// Scrub.  Testing/fault-injection aid.
func (db *DB) CorruptBlock(p PageID) error {
	db.gate.Lock()
	defer db.gate.Unlock()
	loc := db.arr.DataLoc(page.PageID(p))
	return db.arr.Disk(loc.Disk).Corrupt(loc.Block)
}

// BulkLoad writes a run of consecutive pages as committed data, using
// full-stripe writes (one parity write per fully covered parity group —
// the "large accesses" of Section 3.1) instead of per-page small writes.
// Full stripes are written in parallel when Config.Workers > 1.  It
// requires a quiescent database and bypasses transactions; loaders
// re-run after a crash.  It returns the number of full-stripe writes.
func (db *DB) BulkLoad(start PageID, pages [][]byte) (int, error) {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return 0, ErrCrashed
	}
	if db.store.Degraded() {
		// Full-stripe writes need every member disk.
		return 0, fmt.Errorf("%w: bulk load needs full redundancy", ErrDegraded)
	}
	if db.tm.ActiveCount() > 0 {
		return 0, fmt.Errorf("%w: %d active transactions", ErrBusy, db.tm.ActiveCount())
	}
	if int(start)+len(pages) > db.NumPages() {
		return 0, fmt.Errorf("%w: load of %d pages at %d exceeds %d", ErrBadPage, len(pages), start, db.NumPages())
	}
	bufs := make([]page.Buf, len(pages))
	for i, b := range pages {
		bufs[i] = page.Buf(b)
	}
	// Loaded pages supersede any buffered copies.
	for i := range pages {
		db.pool.Discard(page.PageID(start) + page.PageID(i))
	}
	n, err := db.store.BulkLoad(page.PageID(start), bufs)
	if err != nil {
		return n, fmt.Errorf("rda: bulk load: %w", err)
	}
	// The load bypassed the log; a checkpoint record fences it off so a
	// later crash's REDO pass cannot replay pre-load after-images over
	// the loaded pages (and the now-dead log prefix is reclaimed).
	db.mu.Lock()
	db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot})
	db.truncateLogLocked()
	db.mu.Unlock()
	return n, nil
}

// maybeAutoCheckpoint takes an ACC checkpoint when the configured
// transfer interval has elapsed.  Called at EOT boundaries after the
// commit's shared-gate section ends: flushing the whole pool is a
// stop-the-world job, so the check runs gate-free first and only a due
// checkpoint pays for the exclusive gate (where the deadline is
// re-checked — a racing committer may have just taken it).
func (db *DB) maybeAutoCheckpoint() error {
	if db.cfg.CheckpointEvery <= 0 || db.cfg.EOT != NoForce {
		return nil
	}
	if !db.autoCheckpointDue() {
		return nil
	}
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		// The commit that triggered us already succeeded; the checkpoint
		// simply doesn't happen on a crashed engine.
		return nil
	}
	if !db.autoCheckpointDue() {
		return nil
	}
	if err := db.flushAllHealing(); err != nil {
		return fmt.Errorf("rda: auto checkpoint: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot, Active: db.tm.Active()})
	db.lastCkptTransfers = db.arr.Stats().Transfers() + db.log.Stats().TotalTransfers()
	db.truncateLogLocked()
	return nil
}

// autoCheckpointDue reports whether the transfer interval since the last
// automatic checkpoint has elapsed.
func (db *DB) autoCheckpointDue() bool {
	cur := db.arr.Stats().Transfers() + db.log.Stats().TotalTransfers()
	db.mu.Lock()
	defer db.mu.Unlock()
	return cur-db.lastCkptTransfers >= db.cfg.CheckpointEvery
}
