package rda

import (
	"errors"
	"fmt"

	"repro/internal/page"
	"repro/internal/wal"
)

// ScrubReport summarizes a parity scrub (see Scrub).
type ScrubReport struct {
	// GroupsScanned is the number of parity groups examined.
	GroupsScanned int
	// LatentErrors is the number of blocks found with checksum damage.
	LatentErrors int
	// Repaired is the number of blocks rebuilt from redundancy.
	Repaired int
	// ParityRewritten counts stale parity pages recomputed.
	ParityRewritten int
}

// ErrBusy reports a maintenance operation attempted while transactions
// hold uncommitted on-disk state.
var ErrBusy = errors.New("rda: operation requires a quiesced database")

// Scrub verifies every parity group against its data and repairs latent
// sector errors (silent corruption) from the array's redundancy — the
// background verification pass that keeps "media recovery will actually
// work" true on a long-lived array.  The database must be quiescent: no
// active transaction may have pages on disk awaiting undo.
func (db *DB) Scrub() (*ScrubReport, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	if db.store.Degraded() {
		// Scrubbing compares parity against data it cannot fully read;
		// finish the rebuild first.
		return nil, fmt.Errorf("%w: scrub needs full redundancy", ErrDegraded)
	}
	// Flush so the scan verifies current contents, then require
	// cleanliness.
	if err := db.pool.FlushAll(nil); err != nil {
		return nil, fmt.Errorf("rda: scrub flush: %w", err)
	}
	if db.store.Dirty != nil && db.store.Dirty.Len() > 0 {
		return nil, fmt.Errorf("%w: %d parity groups dirty", ErrBusy, db.store.Dirty.Len())
	}
	rep, err := db.store.Scrub()
	if err != nil {
		return nil, fmt.Errorf("rda: scrub: %w", err)
	}
	// Any buffered copies may now be stale relative to repaired blocks;
	// drop clean frames conservatively.
	db.pool.DropAll()
	return &ScrubReport{
		GroupsScanned:   rep.GroupsScanned,
		LatentErrors:    rep.LatentErrors,
		Repaired:        rep.Repaired,
		ParityRewritten: rep.ParityRewritten,
	}, nil
}

// CorruptBlock flips bits in the stored copy of a data page without
// updating its checksum — a latent sector error injection for exercising
// Scrub.  Testing/fault-injection aid.
func (db *DB) CorruptBlock(p PageID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	loc := db.arr.DataLoc(page.PageID(p))
	return db.arr.Disk(loc.Disk).Corrupt(loc.Block)
}

// BulkLoad writes a run of consecutive pages as committed data, using
// full-stripe writes (one parity write per fully covered parity group —
// the "large accesses" of Section 3.1) instead of per-page small writes.
// It requires a quiescent database and bypasses transactions; loaders
// re-run after a crash.  It returns the number of full-stripe writes.
func (db *DB) BulkLoad(start PageID, pages [][]byte) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.crashed {
		return 0, ErrCrashed
	}
	if db.store.Degraded() {
		// Full-stripe writes need every member disk.
		return 0, fmt.Errorf("%w: bulk load needs full redundancy", ErrDegraded)
	}
	if db.tm.ActiveCount() > 0 {
		return 0, fmt.Errorf("%w: %d active transactions", ErrBusy, db.tm.ActiveCount())
	}
	if int(start)+len(pages) > db.NumPages() {
		return 0, fmt.Errorf("%w: load of %d pages at %d exceeds %d", ErrBadPage, len(pages), start, db.NumPages())
	}
	bufs := make([]page.Buf, len(pages))
	for i, b := range pages {
		bufs[i] = page.Buf(b)
	}
	// Loaded pages supersede any buffered copies.
	for i := range pages {
		db.pool.Discard(page.PageID(start) + page.PageID(i))
	}
	n, err := db.store.BulkLoad(page.PageID(start), bufs)
	if err != nil {
		return n, fmt.Errorf("rda: bulk load: %w", err)
	}
	// The load bypassed the log; a checkpoint record fences it off so a
	// later crash's REDO pass cannot replay pre-load after-images over
	// the loaded pages (and the now-dead log prefix is reclaimed).
	db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot})
	db.truncateLog()
	return n, nil
}

// maybeAutoCheckpoint takes an ACC checkpoint when the configured
// transfer interval has elapsed.  Called with db.mu held at EOT
// boundaries.
func (db *DB) maybeAutoCheckpoint() error {
	if db.cfg.CheckpointEvery <= 0 || db.cfg.EOT != NoForce {
		return nil
	}
	cur := db.arr.Stats().Transfers() + db.log.Stats().TotalTransfers()
	if cur-db.lastCkptTransfers < db.cfg.CheckpointEvery {
		return nil
	}
	if err := db.pool.FlushAll(nil); err != nil {
		return fmt.Errorf("rda: auto checkpoint: %w", err)
	}
	db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot, Active: db.tm.Active()})
	db.lastCkptTransfers = db.arr.Stats().Transfers() + db.log.Stats().TotalTransfers()
	db.truncateLog()
	return nil
}

// truncateLog reclaims log space by dropping every record no recovery
// could need: records older than both the last checkpoint (¬FORCE REDO
// starts there; FORCE has nothing to redo) and the oldest active
// transaction's BOT (loser UNDO starts there).  Working parity twins
// whose writers' EOT records get dropped are handled by the
// unknown-means-committed rule in the recovery analysis — see
// recovery.Analysis.Committed.  Called with db.mu held.
func (db *DB) truncateLog() {
	var bound wal.LSN
	if db.cfg.EOT == Force {
		// TOC: every commit is a checkpoint, so only active
		// transactions pin the log.
		bound = wal.LSN(db.log.Len()) + 1
	} else {
		if db.lastCkptLSN == 0 {
			return // no checkpoint yet: the whole log feeds REDO
		}
		bound = db.lastCkptLSN
	}
	for _, st := range db.states {
		if st.botLSN != 0 && st.botLSN < bound {
			bound = st.botLSN
		}
	}
	db.log.Truncate(bound)
}
