package rda

import (
	"bytes"
	"testing"

	"repro/internal/diskarray"
	"repro/internal/fault"
	"repro/internal/page"
)

// catchCrash runs fn and captures the fault plane's crash sentinel if fn
// panics with one; any other panic propagates.
func catchCrash(fn func()) (crash *fault.Crash) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	fn()
	return nil
}

// TestRecoverDegradedOneDiskDown is the headline degraded-recovery
// scenario: commit work, lose a disk, commit more work degraded, crash,
// and recover with the disk still down.  Recover must succeed (not
// ErrDegraded), roll back the in-flight loser, serve every committed
// page through reconstruction, and hand the deferred parity groups to
// the restarted rebuild, which restores full redundancy.
func TestRecoverDegradedOneDiskDown(t *testing.T) {
	for _, layout := range []Layout{DataStriping, ParityStriping} {
		cfg := smallConfig(PageLogging, Force, true, layout)
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			imgs := loadAll(t, db)

			commit := func(p PageID, seed byte) {
				tx := mustBegin(t, db)
				img := fillPage(db, seed)
				if err := tx.WritePage(p, img); err != nil {
					t.Fatal(err)
				}
				if err := tx.Commit(); err != nil {
					t.Fatal(err)
				}
				imgs[p] = img
			}

			commit(PageID(3), 0xA1)
			if err := db.FailDisk(0); err != nil {
				t.Fatal(err)
			}
			commit(PageID(9), 0xB2) // degraded-mode commit
			// Leave a loser in flight across the crash.
			loser := mustBegin(t, db)
			if err := loser.WritePage(PageID(3), fillPage(db, 0xC3)); err != nil {
				t.Fatal(err)
			}

			db.Crash()
			rep, err := db.Recover()
			if err != nil {
				t.Fatalf("degraded recover: %v", err)
			}
			if h := db.Health(); h != diskarray.Degraded {
				t.Fatalf("health after degraded recover = %v, want Degraded", h)
			}
			if rep.Losers == 0 {
				t.Fatal("in-flight transaction not rolled back")
			}
			if len(rep.LostPages) != 0 {
				t.Fatalf("single-disk loss reported lost pages: %v", rep.LostPages)
			}
			if err := db.VerifyRecovered(); err != nil {
				t.Fatal(err)
			}
			// Committed pages on the dead disk must be served by
			// reconstruction before the rebuild has run.
			readAllTx(t, db, imgs, "degraded after recover")

			pumpRebuild(t, db)
			if h := db.Health(); h != diskarray.Healthy {
				t.Fatalf("health after rebuild = %v, want Healthy", h)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
			readAllTx(t, db, imgs, "healthy after rebuild")
		})
	}
}

// TestCrashDuringDemotionDiskIO crashes at every disk-write index of the
// eager demotion that syncHealth runs when a disk dies under a dirty
// group.  Because demoteNoLogSteal logs the owner's UNDO before-image
// before its first disk transfer, recovery from any of these crash
// points must roll the stolen page back to its committed image with the
// array still degraded.
func TestCrashDuringDemotionDiskIO(t *testing.T) {
	for k := int64(0); ; k++ {
		cfg := smallConfig(PageLogging, Force, true, DataStriping)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		imgs := loadAll(t, db)

		// Dirty a group: steal an active transaction's page through the
		// no-UNDO-logging path.
		const p = PageID(0)
		tx := mustBegin(t, db)
		if err := tx.WritePage(p, fillPage(db, 0x5C)); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		g := db.arr.GroupOf(page.PageID(p))
		e, dirty := db.store.Dirty.Lookup(g)
		if !dirty {
			t.Fatal("checkpoint flush did not take the no-log steal path")
		}
		dead := db.arr.ParityLoc(g, e.WorkingTwin).Disk

		// Fail the working twin's disk with a crash armed at demotion
		// write k.
		plane := fault.NewPlane(fault.Schedule{fault.CrashAfterNWrites(k)})
		db.SetInjector(plane)
		crash := catchCrash(func() {
			if err := db.FailDisk(dead); err != nil {
				t.Fatalf("faildisk: %v", err)
			}
		})
		if crash == nil {
			// Demotion finished before write k: the sweep has covered
			// every crash point inside it.
			if k == 0 {
				t.Fatal("demotion performed no disk I/O")
			}
			t.Logf("demotion sweep covered %d crash point(s)", k)
			return
		}

		db.CrashHard()
		db.SetInjector(nil)
		if _, err := db.Recover(); err != nil {
			t.Fatalf("recover after %v during demotion: %v", crash, err)
		}
		if h := db.Health(); h != diskarray.Degraded {
			t.Fatalf("crash@w%d: health after recover = %v, want Degraded", k, h)
		}
		if err := db.VerifyRecovered(); err != nil {
			t.Fatalf("crash@w%d: %v", k, err)
		}
		got, err := db.PeekPage(p)
		if err != nil {
			t.Fatalf("crash@w%d: peek: %v", k, err)
		}
		if !bytes.Equal(got, imgs[p]) {
			t.Fatalf("crash@w%d during demotion: stolen page not rolled back to committed image", k)
		}
		readAllTx(t, db, imgs, "after demotion crash")
	}
}

// TestCrashMidRebuildThenRecover crashes at every disk-write index of
// the online rebuild and recovers each time.  The restarted rebuild must
// reconstruct every group of the down disk from scratch — half-restored
// state is discarded, not trusted — and until it finishes, pages of the
// dead disk are served by reconstruction, never from a partially
// rebuilt replacement.
func TestCrashMidRebuildThenRecover(t *testing.T) {
	for k := int64(0); ; k++ {
		cfg := smallConfig(PageLogging, Force, true, DataStriping)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		imgs := loadAll(t, db)

		tx := mustBegin(t, db)
		img := fillPage(db, 0x7E)
		if err := tx.WritePage(PageID(5), img); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		imgs[PageID(5)] = img
		if err := db.FailDisk(0); err != nil {
			t.Fatal(err)
		}

		plane := fault.NewPlane(fault.Schedule{fault.CrashAfterNWrites(k)})
		db.SetInjector(plane)
		crash := catchCrash(func() {
			pumpRebuild(t, db)
		})
		if crash == nil {
			if k == 0 {
				t.Fatal("rebuild performed no disk writes")
			}
			t.Logf("rebuild sweep covered %d crash point(s)", k)
			return
		}

		db.CrashHard()
		db.SetInjector(nil)
		rep, err := db.Recover()
		if err != nil {
			t.Fatalf("recover after %v during rebuild: %v", crash, err)
		}
		if len(rep.LostPages) != 0 {
			t.Fatalf("crash@w%d mid-rebuild lost pages: %v", k, rep.LostPages)
		}
		if err := db.VerifyRecovered(); err != nil {
			t.Fatalf("crash@w%d: %v", k, err)
		}
		// The interlock discards partial progress: the restarted rebuild
		// starts from group zero.
		if pr := db.RebuildProgress(); pr.RestoredGroups != 0 {
			t.Fatalf("crash@w%d: restarted rebuild trusts %d half-restored group(s)", k, pr.RestoredGroups)
		}
		// Degraded serving must not read the partially rebuilt drive.
		readAllTx(t, db, imgs, "degraded after rebuild crash")

		pumpRebuild(t, db)
		if h := db.Health(); h != diskarray.Healthy {
			t.Fatalf("crash@w%d: health after restarted rebuild = %v, want Healthy", k, h)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("crash@w%d: restarted rebuild left bad parity: %v", k, err)
		}
		readAllTx(t, db, imgs, "healthy after restarted rebuild")
	}
}

// TestHealthyRecoverNoDegradedCounters locks in that the degraded
// recovery machinery is inert on a healthy array: a plain crash-recover
// cycle reports zero reconstruction undos, zero deferred parity groups,
// and no lost pages.
func TestHealthyRecoverNoDegradedCounters(t *testing.T) {
	for _, cfg := range []Config{
		smallConfig(PageLogging, Force, true, DataStriping),
		smallConfig(PageLogging, NoForce, true, ParityStriping),
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			imgs := loadAll(t, db)
			tx := mustBegin(t, db)
			img := fillPage(db, 0x42)
			if err := tx.WritePage(PageID(7), img); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			imgs[PageID(7)] = img
			loser := mustBegin(t, db)
			if err := loser.WritePage(PageID(7), fillPage(db, 0x99)); err != nil {
				t.Fatal(err)
			}

			db.Crash()
			rep, err := db.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rep.UndoneViaReconstruction != 0 || rep.DeferredParityGroups != 0 || len(rep.LostPages) != 0 {
				t.Fatalf("healthy recover reported degraded counters: %+v", rep)
			}
			if err := db.VerifyRecovered(); err != nil {
				t.Fatal(err)
			}
			readAllTx(t, db, imgs, "after healthy recover")
		})
	}
}
