package rda

import (
	"runtime"

	"repro/internal/core"
	"repro/internal/page"
)

// ScrubStep verifies up to maxGroups parity groups online (maxGroups
// ≤ 0 uses Config.ScrubBatchGroups), advancing a persistent cursor so
// successive steps walk the whole array.  It is the incremental,
// transaction-friendly counterpart of Scrub: the step runs under the
// *shared* recovery gate and takes each group's latch only while that
// group is verified, so live transactions on other groups proceed
// concurrently and a transaction touching the scrubbed group simply
// queues on its latch for one group's worth of I/O.
//
// A group that is dirty (a no-UNDO-logging steal is in flight) or
// degraded (its redundancy is consumed by a dead disk) is skipped and
// retried on a later cycle — the scrubber never blocks waiting for a
// group to become scrubable.  Silently corrupt blocks (checksum,
// location-stamp or write-ledger failures) are rebuilt from the group's
// redundancy, and exactly the buffer frames made stale by a repair are
// invalidated.  Two corrupt blocks in one group exceed single-parity
// redundancy and surface as ErrUnrecoverableCorruption.
//
// It returns the step's report and whether the cursor wrapped past the
// end of the array.  The wrap marks a cursor-aligned cycle, not full
// coverage since any particular step: a caller that needs every group
// visited at least once after it starts (so damage planted mid-cycle
// cannot hide behind the cursor) must count GroupsScanned+GroupsSkipped
// up to NumGroups, as StartScrub does.  Steps are resumable and may
// repeat after errors; any number of callers may interleave steps (the
// cursor is shared).
func (db *DB) ScrubStep(maxGroups int) (*ScrubReport, bool, error) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.crashed {
		return nil, false, ErrCrashed
	}
	if maxGroups <= 0 {
		maxGroups = db.cfg.ScrubBatchGroups
	}
	n := db.arr.NumGroups()
	if maxGroups > n {
		maxGroups = n
	}
	rep := &ScrubReport{}
	wrapped := false
	for i := 0; i < maxGroups && !wrapped; i++ {
		db.mu.Lock()
		g := page.GroupID(db.scrubCursor)
		db.scrubCursor++
		if db.scrubCursor >= n {
			db.scrubCursor = 0
			wrapped = true
		}
		db.mu.Unlock()
		res, err := db.scrubGroup(g)
		rep.merge(res)
		if err != nil {
			return rep, false, err
		}
	}
	return rep, wrapped, nil
}

// scrubGroup verifies one group under its latch and invalidates the
// buffer frames of any pages the repair rewrote on the platter.  Only
// clean frames are dropped: a dirty frame holds newer contents that
// will overwrite the repaired block anyway, and the latch held here
// excludes new modifications for the duration.
func (db *DB) scrubGroup(g page.GroupID) (core.GroupScrub, error) {
	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(g)
	res, err := db.store.ScrubGroup(g)
	for _, p := range res.RepairedPages {
		db.pool.DiscardClean(p)
	}
	return res, err
}

// merge folds one group's scrub outcome into the report.
func (rep *ScrubReport) merge(res core.GroupScrub) {
	if res.Skipped {
		rep.GroupsSkipped++
		return
	}
	rep.GroupsScanned++
	rep.LatentErrors += res.LatentErrors
	rep.Repaired += res.Repaired
	rep.ParityRewritten += res.ParityRewritten
}

// StartScrub launches a background worker that performs one full scrub
// cycle — NumGroups consecutive cursor slots, so every parity group is
// visited at least once after the call regardless of where the shared
// cursor stands — batch by batch, and delivers the cycle's report on
// the returned channel.  Groups skipped as dirty or degraded during the
// cycle are reported in GroupsSkipped, not retried within the same
// cycle — continuous scrubbing is a loop over StartScrub (or
// ScrubStep).
//
// Unlike StartRebuild the worker never takes the exclusive gate:
// batches run under the shared gate with per-group latches, so live
// transactions are delayed only by latch conflicts on the specific
// group being verified.
func (db *DB) StartScrub() <-chan ScrubResult {
	ch := make(chan ScrubResult, 1)
	n := db.NumGroups()
	go func() {
		total := &ScrubReport{}
		for total.GroupsScanned+total.GroupsSkipped < n {
			rep, _, err := db.ScrubStep(0)
			if rep != nil {
				total.add(rep)
			}
			if err != nil {
				ch <- ScrubResult{Report: total, Err: err}
				return
			}
			runtime.Gosched()
		}
		ch <- ScrubResult{Report: total}
	}()
	return ch
}

// ScrubResult is the outcome of a background scrub cycle.
type ScrubResult struct {
	Report *ScrubReport
	Err    error
}

// add accumulates another step's report.
func (rep *ScrubReport) add(o *ScrubReport) {
	rep.GroupsScanned += o.GroupsScanned
	rep.GroupsSkipped += o.GroupsSkipped
	rep.LatentErrors += o.LatentErrors
	rep.Repaired += o.Repaired
	rep.ParityRewritten += o.ParityRewritten
}
