package rda

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/dirtyset"
	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/record"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

// PageID addresses a logical database page: 0 ≤ p < DB.NumPages().
type PageID = uint32

// Errors returned by the engine.
var (
	// ErrCrashed reports an operation against a crashed database; call
	// Recover first.
	ErrCrashed = errors.New("rda: database has crashed; run Recover")
	// ErrTxDone reports use of a committed or aborted transaction handle.
	ErrTxDone = errors.New("rda: transaction already finished")
	// ErrDeadlock reports that the transaction was chosen as a deadlock
	// victim and has been aborted; start a new transaction to retry.
	ErrDeadlock = errors.New("rda: transaction aborted as deadlock victim")
	// ErrBadPage reports a page id outside the database.
	ErrBadPage = errors.New("rda: page id out of range")
	// ErrWrongMode reports a page operation on a record-mode database or
	// vice versa.
	ErrWrongMode = errors.New("rda: operation not available in this logging mode")
	// ErrDegraded reports an operation that needs the array's full
	// redundancy while a disk is down.  Finish the online rebuild
	// (RebuildStep/StartRebuild) or run media recovery (RepairDisk)
	// first.  Crash recovery is NOT such an operation: Recover runs with
	// a single member down (degraded restart) and only a double loss
	// (ErrArrayFailed) refuses it.
	ErrDegraded = errors.New("rda: array is degraded")
	// ErrArrayFailed reports that a second disk failed while the array
	// was already degraded: parity redundancy is exhausted and affected
	// groups cannot be served until RepairDisks runs.
	ErrArrayFailed = diskarray.ErrArrayFailed
	// ErrUnrecoverableCorruption reports that a block failed end-to-end
	// verification and the group's redundancy could not reconstruct it
	// (a second corrupt or dead block in the same group).  The engine
	// returns this typed error rather than ever serving corrupt bytes;
	// affected groups need media recovery (RepairDisks restores
	// redundancy, losing the unreconstructable pages).
	ErrUnrecoverableCorruption = core.ErrUnrecoverableCorruption
)

// txState is the engine-side volatile state of one active transaction.
type txState struct {
	t *txn.Txn
	// locks is the lock manager this transaction acquires from, captured
	// at Begin.  After a crash Recover installs a fresh manager; releases
	// against the old, closed one are harmless no-ops, so a stale handle
	// can always clean up against the manager it actually used.
	locks *lock.Manager

	// mu guards the fields below together with the cross-goroutine
	// Txn bookkeeping (StolenNoLog, LoggedUndo, ChainHeadLogged): those
	// are mutated not just by the owning goroutine but by any operation
	// that steals or demotes one of this transaction's dirty pages.  mu
	// is near the bottom of the lock order — hold nothing but leaf locks
	// (log, dirty set, transaction manager, disks) while holding it, and
	// in particular never the buffer pool's internal mutex.
	mu sync.Mutex
	// botLSN is the BOT record's LSN (0 until the lazy BOT is written).
	botLSN wal.LSN
	// beforePages holds first-modify page snapshots (page mode).
	beforePages map[page.PageID]page.Buf
	// beforeRecords holds first-modify record snapshots (record mode).
	beforeRecords map[page.RecordID]record.Image
	// loggedRecords marks record before-images already on the log.
	loggedRecords map[page.RecordID]bool
	// stolenBefore holds, per page stolen without UNDO logging, the
	// on-disk contents just before the first steal — the before-image
	// media recovery needs if the group's committed parity twin is lost
	// while this transaction is active.
	stolenBefore map[page.PageID]page.Buf
	// stolenLogged marks pages written to disk through the logging steal
	// path; abort must restore them on disk, not just in the buffer.
	stolenLogged map[page.PageID]bool
	// commitSeq is the transaction's position in the engine's commit
	// order (assigned inside the latched EOT section; 0 until commit).
	// Under strict 2PL the commit order is a valid serialization order,
	// which is what the concurrency oracle replays.
	commitSeq int64
	// eotLSN is the EOT record's LSN when it was appended unforced
	// (group commit); Commit waits for the batched force to cover it
	// before acknowledging.  0 when the EOT was forced inline.
	eotLSN wal.LSN
}

// DB is a database instance.  It is safe for concurrent use by multiple
// goroutines, each running its own transactions; transactions touching
// disjoint parity groups proceed in parallel.
//
// Synchronization is layered (see DESIGN.md "The latching hierarchy"):
//
//   - gate, a stop-the-world RWMutex: every transactional operation holds
//     it shared, while whole-engine transitions — Crash, Recover,
//     checkpoints, rebuild batches, disk repair, maintenance — hold it
//     exclusively.
//   - latches, one per parity group: the short-term physical locks that
//     serialize one protocol step on a group (read, small write, steal,
//     demotion, twin flip).  Blocking acquisition is group-ascending;
//     eviction try-acquires out of order.
//   - mu, a short-hold guard for the genuinely global leftovers: the
//     active-transaction table and checkpoint bookkeeping.  Never held
//     across I/O.
//   - each txState carries its own mutex for bookkeeping that other
//     operations mutate when they steal or demote the transaction's
//     pages.
type DB struct {
	cfg Config

	// gate is the recovery gate (see the type comment).
	gate sync.RWMutex
	// latches is the per-parity-group latch table.
	latches *latch.Table

	// mu guards states, lastCkptTransfers, lastCkptLSN, recoveries and
	// scrubCursor.
	mu sync.Mutex

	arr   *diskarray.Array
	store *core.Store
	log   *wal.Log
	// forcer batches EOT log forces; non-nil exactly when
	// Config.GroupCommitWindow > 0.  After-images and EOT records are
	// then appended unforced and Commit waits on the forcer before
	// acknowledging.  Undo-critical records (BOT, before-images,
	// checkpoints, aborts) are always forced inline regardless.
	forcer *wal.Forcer
	tm     *txn.Manager
	// locks and pool are replaced by Recover; operations read them under
	// the shared gate, Recover writes them under the exclusive gate.
	locks  *lock.Manager
	pool   *buffer.Pool
	states map[page.TxID]*txState
	// crashed is written under the exclusive gate and read under the
	// shared one.
	crashed bool
	// dirtyCrash marks a crash that interrupted a block I/O (CrashHard);
	// Recover then runs the torn-repair and parity-resync passes.
	dirtyCrash bool

	// commitSeq issues commit-order positions (see txState.commitSeq).
	commitSeq atomic.Int64

	// lastCkptTransfers is the transfer count at the last automatic
	// checkpoint (see Config.CheckpointEvery); lastCkptLSN is the log
	// position of the last checkpoint record, bounding log truncation.
	lastCkptTransfers int64
	lastCkptLSN       wal.LSN
	recoveries        int64

	// scrubCursor is the next parity group the online scrubber will
	// verify; it wraps at NumGroups, marking a completed scrub cycle.
	scrubCursor int
}

// Open creates (and formats) a database.
func Open(cfg Config) (*DB, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return nil, err
	}
	var kind diskarray.Kind
	switch {
	case cfg.Layout == DataStriping && cfg.RDA:
		kind = diskarray.RAID5Twin
	case cfg.Layout == DataStriping:
		kind = diskarray.RAID5
	case cfg.RDA:
		kind = diskarray.ParityStripeTwin
	default:
		kind = diskarray.ParityStripe
	}
	arr, err := diskarray.New(diskarray.Config{
		Kind: kind, DataDisks: cfg.DataDisks, NumPages: cfg.NumPages, PageSize: cfg.PageSize,
		RetryAttempts: cfg.RetryAttempts, FailStopAfter: cfg.FailStopAfter,
		QParity: cfg.QParity,
	})
	if err != nil {
		return nil, fmt.Errorf("rda: %w", err)
	}
	db := &DB{
		cfg:     cfg,
		arr:     arr,
		latches: latch.New(arr.NumGroups()),
		log:     wal.New(wal.Config{LogPageSize: cfg.LogPageSize, WriteCost: cfg.LogWriteCost, Packed: cfg.PackedLog}),
		tm:      txn.NewManager(),
		locks:   lock.New(),
		states:  make(map[page.TxID]*txState),
	}
	db.store = core.NewStore(arr, db.log, db.tm)
	db.store.Workers = cfg.Workers
	arr.SetLatency(cfg.IODelay)
	if cfg.QueueDepth > 1 {
		arr.StartQueues(cfg.QueueDepth, cfg.QueueWindow)
		db.store.Pipelined = true
	}
	if cfg.GroupCommitWindow > 0 {
		db.forcer = wal.NewForcer(db.log, cfg.GroupCommitWindow)
		// With batching on, each physical log force costs one device
		// service time; without it, log cost stays purely in the
		// transfer accounting, as the seed model had it.
		db.log.SetForceDelay(cfg.IODelay)
	}
	db.pool = db.newPool()
	if cfg.Logging == RecordLogging {
		if err := db.formatRecordPages(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// newPool builds a buffer pool wired to the engine's fetch and steal
// policies.  FORCE keeps disk versions in dirty frames (the paper's a=3
// small writes); ¬FORCE does not (a=4; Section 5.2.2).
func (db *DB) newPool() *buffer.Pool {
	p := buffer.New(db.cfg.BufferFrames, db.cfg.PageSize, db.fetch, db.writeBack)
	p.KeepDiskVersions = db.cfg.EOT == Force
	return p
}

// formatRecordPages initializes every data page with the fixed-slot
// record layout and recomputes parity.  Like array formatting this is
// factory work: it is not charged to the statistics.
func (db *DB) formatRecordPages() error {
	buf := page.NewBuf(db.cfg.PageSize)
	if err := record.Format(buf, db.cfg.RecordSize); err != nil {
		return fmt.Errorf("rda: %w", err)
	}
	for p := 0; p < db.arr.NumPages(); p++ {
		if err := db.arr.WriteData(page.PageID(p), buf, disk.Meta{}); err != nil {
			return fmt.Errorf("rda: format page %d: %w", p, err)
		}
	}
	for g := 0; g < db.arr.NumGroups(); g++ {
		for twin := 0; twin < db.arr.ParityPages(); twin++ {
			meta, err := db.arr.PeekParityMeta(page.GroupID(g), twin)
			if err != nil {
				return err
			}
			if twin < db.arr.QParityPages() {
				if err := db.arr.RecomputeQ(page.GroupID(g), twin, meta); err != nil {
					return err
				}
			}
			if err := db.arr.RecomputeParity(page.GroupID(g), twin, meta); err != nil {
				return err
			}
		}
	}
	db.arr.ResetStats()
	return nil
}

// Config returns the database's effective configuration (with defaults
// applied).
func (db *DB) Config() Config { return db.cfg }

// NumPages returns the number of addressable data pages (at least the
// configured NumPages; capacity rounds up to whole parity groups).
func (db *DB) NumPages() int { return db.arr.NumPages() }

// PageSize returns the page size in bytes.
func (db *DB) PageSize() int { return db.cfg.PageSize }

// NumGroups returns the number of parity groups in the array — the unit
// of redundancy, scrubbing and rebuild.
func (db *DB) NumGroups() int { return db.arr.NumGroups() }

// RecordsPerPage returns the record capacity of each page in record
// mode, and 0 in page mode.
func (db *DB) RecordsPerPage() int {
	if db.cfg.Logging != RecordLogging {
		return 0
	}
	return record.Capacity(db.cfg.PageSize, db.cfg.RecordSize)
}

// NumDisks returns the number of physical disks in the array.
func (db *DB) NumDisks() int { return db.arr.NumDisks() }

// getState looks up the engine-side state of an active transaction.
func (db *DB) getState(id page.TxID) *txState {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.states[id]
}

// underGroup runs fn holding the recovery gate shared and the latch of
// page p's parity group — the standard envelope of every single-page
// transactional step.  The latch set is passed to fn so nested work
// (buffer eviction) can try-extend it.
func (db *DB) underGroup(p page.PageID, fn func(h *latch.Held) error) error {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.crashed {
		return ErrCrashed
	}
	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(db.arr.GroupOf(p))
	return fn(h)
}

// evictGuard adapts an operation's held latch set into the buffer pool's
// eviction guard: a victim in an already-held group is admitted outright,
// any other group is try-latched for the duration of the steal, and a
// contended latch skips the victim (the pool then tries the next one).
func (db *DB) evictGuard(h *latch.Held) buffer.EvictGuard {
	return func(p page.PageID) (func(), bool) {
		g := db.arr.GroupOf(p)
		if h.Holds(g) {
			return func() {}, true
		}
		if h.TryAcquire(g) {
			return func() { h.Release(g) }, true
		}
		return nil, false
	}
}

// healWorld is the operation-level half of the self-healing retry
// discipline: after an I/O error escapes an operation, it takes the
// exclusive gate, aligns the engine with the array's health machine
// (entering degraded serving, demoting dirty groups on the lost disk),
// and reports whether the failed operation is worth exactly one retry —
// which will now be served from redundancy.  The caller must hold no
// gate or latches.
func (db *DB) healWorld() bool {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return false
	}
	return db.syncHealth()
}

// fetch loads a page from the array on a buffer miss, transparently
// repairing latent sector errors from the group's redundancy.  Errors
// surface to the operation, whose healWorld retry serves the reload from
// redundancy after a disk loss.
func (db *DB) fetch(p page.PageID) (page.Buf, error) {
	return db.store.ReadPageRepair(p)
}

// storeRead is ReadPage for engine paths that read outside the buffer
// pool (after-image capture, abort restores).  Same error discipline as
// fetch.
func (db *DB) storeRead(p page.PageID) (page.Buf, error) {
	return db.store.ReadPage(p)
}

// syncHealth aligns the engine's degraded-serving state with the array's
// health machine; called with the exclusive gate held after an operation
// failed (or on an explicit FailDisk).  When the array has just gone down
// to one disk, every dirty parity group keeping a block on that disk is
// demoted to logged UNDO — a degraded group's redundancy is consumed by
// the disk loss and cannot also fund transaction recovery — and the store
// enters degraded serving.  Returns true when degraded serving was just
// (re-)entered: the caller's failed operation is worth exactly one
// retry, which will now be served from redundancy.
//
// One degraded-to-degraded transition also lands here: a rebuild whose
// replacement drive dies falls back from Rebuilding to Degraded while
// some groups are already marked restored onto the now-dead replacement.
// Those blocks are gone again, so the restored flags are stale — left in
// place they would route reads of "restored" groups straight to the dead
// disk and make the next rebuild skip them, completing with all-zero
// blocks.  Re-entering degraded mode resets the flags (and re-demotes
// any dirty group that took a no-log steal while its group was
// restored), so every group on the down disk serves from redundancy
// again and the next rebuild reconstructs the drive from scratch.
func (db *DB) syncHealth() bool {
	h := db.arr.Health()
	if h != diskarray.Degraded && h != diskarray.Rebuilding && h != diskarray.DoubleDegraded {
		return false
	}
	downs := db.arr.DownDisks()
	if db.store.Degraded() {
		if len(downs) > len(db.store.DownDisks()) {
			// A further disk died while the array was already degraded
			// (Q-parity arrays survive two): fall through and re-enter
			// degraded serving with the grown down set.
		} else if h != diskarray.Degraded || db.store.DegradedCounters().RebuiltGroups == 0 {
			// Restored flags only accumulate while Rebuilding; seeing
			// them with the array back in Degraded means the replacement
			// died.
			return false
		}
	}
	if db.store.Dirty != nil {
		for g := 0; g < db.arr.NumGroups(); g++ {
			gid := page.GroupID(g)
			e, dirty := db.store.Dirty.Lookup(gid)
			if !dirty {
				continue
			}
			onDown := false
			for _, d := range downs {
				if db.store.GroupOnDisk(gid, d) {
					onDown = true
				}
			}
			if !onDown {
				continue
			}
			if err := db.demoteNoLogSteal(gid, e); err != nil {
				// The demotion itself hit the dead disk or a second
				// failure.  Continuing is safe only because
				// demoteNoLogSteal appends the owner's UNDO material to
				// the log *before* its first disk write (see the
				// ordering note there), so the steal already has a
				// log-based undo path even though the group stays
				// dirty.
				continue
			}
		}
	}
	db.store.EnterDegraded(downs...)
	return true
}

// writeBack is the STEAL policy (see DESIGN.md §5): it is invoked by the
// buffer pool for every dirty frame leaving the pool (replacement, EOT
// forcing, checkpoint flushing) and decides between the RDA no-logging
// path, the classic logging path and the committed write path.  The
// caller holds the frame's group latch (or the exclusive gate), which
// serializes the group's steal protocol; a failure that kills a disk
// surfaces to the operation, whose healWorld retry re-runs the write-back
// through the degraded protocol (the lazy log appends are idempotent).
func (db *DB) writeBack(f *buffer.Frame) error {
	old := f.DiskVersion // nil under ¬FORCE: the store re-reads (a=4)

	mods := f.ModifierList()

	if db.cfg.RDA && len(mods) == 1 && !f.Residue {
		st := db.getState(mods[0])
		if st != nil && db.store.CanStealNoLog(f.Page, st.t.ID) {
			db.ensureBOT(st)
			oldOnDisk := old
			if oldOnDisk == nil {
				var err error
				oldOnDisk, err = db.store.ReadPage(f.Page)
				if err != nil {
					return err
				}
			}
			// The chain bookkeeping (stolenBefore, StolenNoLog) is
			// shared across the owner's goroutines and serializes under
			// st.mu; the steal's disk transfers touch only per-group
			// state and run outside it, so a pipelined commit's
			// per-group flushes overlap.  Recovery identifies stolen
			// pages by header scan (ChainSet + Txn), never by walking
			// ChainPrev, so concurrent steals reading the same chain
			// head are harmless.
			st.mu.Lock()
			if _, ok := st.stolenBefore[f.Page]; !ok {
				st.stolenBefore[f.Page] = oldOnDisk.Clone()
			}
			chainPrev := st.t.ChainHead()
			st.mu.Unlock()
			if err := db.store.StealNoLogChained(f.Page, f.Data, oldOnDisk, st.t, chainPrev); err != nil {
				return err
			}
			st.mu.Lock()
			if !st.t.InChain(f.Page) {
				st.t.StolenNoLog = append(st.t.StolenNoLog, f.Page)
			}
			st.mu.Unlock()
			return nil
		}
	}

	// Any other write into a dirty group would have to XOR-update both
	// parity twins in place, and a crash between those two writes can
	// leave neither twin describing a recoverable view.  Demote the
	// group's no-logging steal to a logged one first: the write below
	// then lands in a clean group through the crash-safe single-twin
	// protocol.
	if db.cfg.RDA {
		g := db.arr.GroupOf(f.Page)
		if e, dirty := db.store.Dirty.Lookup(g); dirty {
			if err := db.demoteNoLogSteal(g, e); err != nil {
				return err
			}
		}
	}

	if len(mods) == 0 {
		return db.store.WriteCommitted(f.Page, f.Data, old)
	}

	// Logging path: make sure every active modifier's UNDO material for
	// this page is on the log, then write in place.
	for _, m := range mods {
		st := db.getState(m)
		if st == nil {
			continue
		}
		db.ensureBOT(st)
		db.ensureUndoLogged(st, f.Page)
		st.mu.Lock()
		st.stolenLogged[f.Page] = true
		st.mu.Unlock()
	}
	return db.store.WriteLogged(f.Page, f.Data, old)
}

// ensureBOT lazily writes the transaction's BOT record; the paper
// requires it on the log before any of the transaction's pages reaches
// the database (Section 4.3), and writing it lazily keeps retrieval-only
// transactions free of log traffic, as in the model.
func (db *DB) ensureBOT(st *txState) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.botLSN == 0 {
		st.botLSN = db.log.Append(wal.Record{Type: wal.TypeBOT, Txn: st.t.ID, Slot: wal.NoSlot})
	}
}

// ensureUndoLogged appends the retained before-image(s) for page p on
// behalf of st, if not already logged.
func (db *DB) ensureUndoLogged(st *txState, p page.PageID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if db.cfg.Logging == PageLogging {
		if _, done := st.t.LoggedUndo[p]; done {
			return
		}
		img, ok := st.beforePages[p]
		if !ok {
			return // the transaction never modified this page
		}
		db.log.Append(wal.Record{
			Type: wal.TypeBeforeImage, Txn: st.t.ID, Page: p, Slot: wal.NoSlot,
			Image: img.Clone(),
		})
		st.t.LoggedUndo[p] = struct{}{}
		return
	}
	rids := make([]page.RecordID, 0, len(st.beforeRecords))
	for rid := range st.beforeRecords {
		if rid.Page != p || st.loggedRecords[rid] {
			continue
		}
		rids = append(rids, rid)
	}
	sort.Slice(rids, func(i, j int) bool { return rids[i].Slot < rids[j].Slot })
	for _, rid := range rids {
		db.log.Append(wal.Record{
			Type: wal.TypeBeforeImage, Txn: st.t.ID, Page: rid.Page, Slot: int32(rid.Slot),
			Image: record.EncodeImage(st.beforeRecords[rid]),
		})
		st.loggedRecords[rid] = true
	}
	st.t.LoggedUndo[p] = struct{}{}
}

// ensureUndoUnforced appends p's before-image to the volatile log tail
// (page mode only) and returns its LSN, or 0 when the image is already
// logged or the transaction never modified p.  The caller MUST force the
// log past the returned LSN before any disk write the image covers —
// the full-stripe flush does, with a single force for the whole batch,
// which is what folds k before-image forces into one log write.
func (db *DB) ensureUndoUnforced(st *txState, p page.PageID) wal.LSN {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, done := st.t.LoggedUndo[p]; done {
		return 0
	}
	img, ok := st.beforePages[p]
	if !ok {
		return 0
	}
	lsn := db.log.AppendUnforced(wal.Record{
		Type: wal.TypeBeforeImage, Txn: st.t.ID, Page: p, Slot: wal.NoSlot,
		Image: img.Clone(),
	})
	st.t.LoggedUndo[p] = struct{}{}
	return lsn
}

// logRedo appends a REDO-side record (after-image or EOT): unforced
// under group commit — Commit's force-wait makes it durable before the
// acknowledgement — and forced inline otherwise.
func (db *DB) logRedo(r wal.Record) wal.LSN {
	if db.forcer != nil {
		return db.log.AppendUnforced(r)
	}
	return db.log.Append(r)
}

// demoteNoLogSteal converts a page's no-UNDO-logging steal into a logged
// one.  The owning transaction's retained before-image(s) go to the log,
// the working parity twin — which already describes the on-disk data —
// is committed on disk and promoted in the bitmap, and the group returns
// to the clean state.  From here on the group is shared and every
// recovery path for it is log-based.  Both the record-mode sharing path
// and any write-back into a dirty group use this.  Callers hold the
// group's latch (or the exclusive gate), which excludes the owner's
// commit and abort — the dirty page is in the owner's modified set, so
// its EOT holds this latch too.
//
// Ordering invariant: the log appends (BOT + before-images) happen
// before the first disk write, and log appends cannot fail.  A demotion
// interrupted by a disk failure therefore always leaves the steal with a
// complete log-based undo path; syncHealth relies on this when it
// swallows a demotion error on the way into degraded serving, and
// TestDemoteLogsUndoBeforeDisk locks the ordering in.
func (db *DB) demoteNoLogSteal(g page.GroupID, e dirtyset.Entry) error {
	owner := db.getState(e.Txn)
	if owner == nil {
		return fmt.Errorf("rda: dirty group %d owned by unknown txn %d", g, e.Txn)
	}
	db.ensureBOT(owner)
	db.ensureUndoLogged(owner, e.Page)
	owner.mu.Lock()
	owner.stolenLogged[e.Page] = true
	owner.mu.Unlock()
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: db.tm.NextTimestamp()}
	downSet := make(map[int]bool)
	for _, d := range db.arr.DownDisks() {
		downSet[d] = true
	}
	pAlive := func(t int) bool { return !downSet[db.arr.ParityLoc(g, t).Disk] }
	qAlive := func(t int) bool {
		return t < db.arr.QParityPages() && !downSet[db.arr.QLoc(g, t).Disk]
	}
	working := e.WorkingTwin
	switch other := 1 - working; {
	case pAlive(working):
		// The working index already describes the on-disk data: launder
		// it to committed in place, Q mirror first (lockstep).
		if qAlive(working) {
			if err := db.arr.WriteQMeta(g, working, meta); err != nil {
				return fmt.Errorf("rda: demote group %d: %w", g, err)
			}
		}
		if err := db.arr.WriteParityMeta(g, working, meta); err != nil {
			return fmt.Errorf("rda: demote group %d: %w", g, err)
		}
		db.store.Twins.Promote(g, working)
	case pAlive(other):
		// The working twin is the group's lost block.  Its data page is
		// reachable and already holds the stolen value, so the surviving
		// index is recomputed wholesale to describe the on-disk group and
		// committed in its place.
		if qAlive(other) {
			if err := db.arr.RecomputeQ(g, other, meta); err != nil {
				return fmt.Errorf("rda: demote group %d: %w", g, err)
			}
		}
		if err := db.arr.RecomputeParity(g, other, meta); err != nil {
			return fmt.Errorf("rda: demote group %d: %w", g, err)
		}
		db.store.Twins.Promote(g, other)
	case qAlive(working):
		// Both P slots are dead (double-degraded) but the working Q —
		// written in lockstep just before its P partner — survives and
		// describes the on-disk data: launder the Q header alone.
		if err := db.arr.WriteQMeta(g, working, meta); err != nil {
			return fmt.Errorf("rda: demote group %d: %w", g, err)
		}
		db.store.Twins.Promote(g, working)
	case qAlive(other):
		if err := db.arr.RecomputeQ(g, other, meta); err != nil {
			return fmt.Errorf("rda: demote group %d: %w", g, err)
		}
		db.store.Twins.Promote(g, other)
	default:
		// Unreachable within the loss budget: two down disks cannot take
		// all four redundancy blocks of one group.
		return fmt.Errorf("rda: demote group %d: no surviving redundancy index", g)
	}
	db.store.Dirty.Clean(g)
	// The page leaves the owner's no-logging chain.
	owner.mu.Lock()
	chain := owner.t.StolenNoLog[:0]
	for _, q := range owner.t.StolenNoLog {
		if q != e.Page {
			chain = append(chain, q)
		}
	}
	owner.t.StolenNoLog = chain
	owner.mu.Unlock()
	return nil
}

// flushAllHealing flushes every dirty frame, retrying once through
// degraded entry when the flush kills a disk.  Called with the exclusive
// gate held (checkpoints, scrub).
func (db *DB) flushAllHealing() error {
	err := db.pool.FlushAll(nil)
	if err != nil && db.syncHealth() {
		err = db.pool.FlushAll(nil)
	}
	return err
}

// truncateLogLocked discards the log prefix no recovery can need: under
// FORCE everything up to the oldest active transaction's BOT, under
// ¬FORCE everything below the last checkpoint (still bounded by open
// BOTs).  Called with db.mu held.
func (db *DB) truncateLogLocked() {
	var bound wal.LSN
	if db.cfg.EOT == Force {
		bound = wal.LSN(db.log.Len()) + 1
	} else {
		if db.lastCkptLSN == 0 {
			return
		}
		bound = db.lastCkptLSN
	}
	for _, st := range db.states {
		st.mu.Lock()
		bot := st.botLSN
		st.mu.Unlock()
		if bot != 0 && bot < bound {
			bound = bot
		}
	}
	db.log.Truncate(bound)
}

// groupsOf returns the distinct parity groups of a page set in ascending
// order — the blocking-acquisition order the latch table requires.
func (db *DB) groupsOf(set map[page.PageID]struct{}) []page.GroupID {
	seen := make(map[page.GroupID]struct{}, len(set))
	out := make([]page.GroupID, 0, len(set))
	for p := range set {
		g := db.arr.GroupOf(p)
		if _, ok := seen[g]; !ok {
			seen[g] = struct{}{}
			out = append(out, g)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Checkpoint takes a checkpoint.  Under ¬FORCE this is the paper's
// action-consistent checkpoint (ACC): all dirty buffer pages are written
// back (through the steal policy) and a checkpoint record listing the
// active transactions is logged.  Under FORCE checkpoints are
// transaction-oriented and implicit, so this simply flushes and logs a
// marker, which is harmless.
func (db *DB) Checkpoint() error {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return ErrCrashed
	}
	if err := db.flushAllHealing(); err != nil {
		return fmt.Errorf("rda: checkpoint flush: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot, Active: db.tm.Active()})
	db.truncateLogLocked()
	return nil
}

// Crash simulates a system crash: every main-memory structure — buffer,
// lock table, active transactions, Dirty_Set, current-parity bitmap — is
// lost.  The disks and the log survive.  All outstanding transaction
// handles become unusable.
//
// Crash may race in-flight transactions: it waits (via the exclusive
// gate) for operations inside the engine to finish their current step,
// and closing the lock manager wakes transactions blocked in 2PL waits
// — which happen outside the gate precisely so this cannot deadlock.
func (db *DB) Crash() {
	db.gate.Lock()
	defer db.gate.Unlock()
	db.crashLocked()
}

func (db *DB) crashLocked() {
	db.pool.DropAll()
	db.store.ResetVolatile()
	db.locks.Close()
	db.tm.Reset()
	// The unforced log tail is main memory: a crash loses it.  Commits
	// waiting on a batched force observe db.crashed afterwards and report
	// ErrCrashed instead of success.
	db.log.DropUnforced()
	// Clear per-drive queue poisoning so recovery's I/O is served; the
	// exclusive gate guarantees the queues are idle here (every submitted
	// request is awaited by its issuer before the gate is released).
	db.arr.ResetQueues()
	db.mu.Lock()
	db.states = make(map[page.TxID]*txState)
	db.mu.Unlock()
	db.crashed = true
}

// CrashHard simulates a power failure in the middle of a block I/O.  The
// fault plane's crash points panic out of a disk write; the harness
// recovers the sentinel and calls CrashHard.  Every lock on the panicking
// goroutine's path — the shared gate, group latches, the pool's internal
// mutex, per-disk mutexes — is released by defers during the unwind, so
// taking the exclusive gate here is sound even with other transactions in
// flight (they either finish their current step or are woken from lock
// waits with ErrClosed).  Recover afterwards runs the extra mid-I/O
// repair passes (torn blocks, parity resync) that Crash's quiescent
// restarts never need.
func (db *DB) CrashHard() {
	db.gate.Lock()
	defer db.gate.Unlock()
	db.crashLocked()
	db.dirtyCrash = true
}

// SetInjector installs (or, with nil, removes) a fault injector on every
// drive of the array.  Install after Open so formatting I/O is not
// observed; schedules then count only workload writes.
func (db *DB) SetInjector(inj disk.Injector) {
	db.gate.Lock()
	defer db.gate.Unlock()
	db.arr.SetInjector(inj)
}

// RecoveryReport summarizes a restart.
type RecoveryReport struct {
	// Losers are the transactions rolled back.
	Losers int
	// UndoneViaParity counts pages restored from twin parity (RDA).
	UndoneViaParity int
	// UndoneViaLog counts before-images written back.
	UndoneViaLog int
	// Redone counts after-images replayed (¬FORCE).
	Redone int
	// RepairedTorn counts torn blocks rebuilt from redundancy (mid-I/O
	// crashes only).
	RepairedTorn int
	// ResyncedGroups counts groups whose parity was resynchronized with
	// the on-disk data (mid-I/O crashes only).
	ResyncedGroups int
	// UndoneViaReconstruction counts loser pages undone by reconstruction
	// from surviving members because a group member sat on the dead disk
	// (degraded restarts only).
	UndoneViaReconstruction int
	// DeferredParityGroups counts groups whose parity member is on the
	// down disk: recovery re-established the surviving parity only, and
	// the restarted online rebuild recomputes the lost member (degraded
	// restarts only).
	DeferredParityGroups int
	// LostPages lists pages whose contents genuinely exceeded the
	// surviving redundancy — possible only when a disk death coincided
	// with the crash, so the demotion that would have logged the
	// before-image never ran.  The pages are zeroed and parity made
	// consistent: explicit, reported loss, never silent corruption.
	LostPages []PageID
}

// Recover restarts a crashed database: log analysis, UNDO of losers
// (twin-parity scan first, then logged before-images), current-parity
// bitmap rebuild, and REDO of winners under ¬FORCE.  See
// internal/recovery for the pass structure.
//
// Recovery runs with up to one member down — crashed while degraded,
// crashed in the same instant as the disk death, or crashed mid-rebuild.
// Every pass then works on surviving members only: a loser undo whose
// group lost its dirty page promotes the committed twin (the parity now
// defines the before-image, served by reconstruction); one whose group
// lost its *working* twin is found via the data page's transaction tag
// and rewound from the surviving committed twin; and when the committed
// twin needed for D_old = (P ⊕ P′) ⊕ D_new sat on the dead disk, the
// undo falls back to the logged before-image that the eager demotion's
// log-first ordering guarantees whenever the death was observed before
// the crash.  Groups whose parity member is lost are deferred to the
// restarted online rebuild, which always reconstructs the drive from
// scratch after a restart.  The database comes back up serving degraded.
// Only a double member loss refuses recovery, with ErrArrayFailed.
func (db *DB) Recover() (*RecoveryReport, error) {
	db.gate.Lock()
	defer db.gate.Unlock()
	if !db.crashed {
		return nil, errors.New("rda: Recover on a running database")
	}
	if db.dirtyCrash {
		// A mid-I/O crash can kill a drive in the same instant without
		// the health machine observing it (fail-stops latch on first
		// access).  Spin up every drive once so the passes plan against
		// the array's true health instead of hitting a surprise error
		// mid-pass.
		db.arr.ProbeDisks()
	}
	var rep *recovery.Report
	for attempt := 0; ; attempt++ {
		switch h := db.arr.Health(); h {
		case diskarray.Failed:
			return nil, fmt.Errorf("%w: crash recovery with the down members exceeding the array's redundancy; run RepairDisks first", ErrArrayFailed)
		case diskarray.Degraded, diskarray.Rebuilding, diskarray.DoubleDegraded:
			// Re-derive degraded serving from scratch: restored-group flags
			// are wiped even when the crash hit mid-rebuild, so the restarted
			// rebuild reconstructs every group on the lost members and can
			// never certify a deferred-parity group without recomputing it.
			db.store.EnterDegraded(db.arr.DownDisks()...)
			db.store.SetReplacementPresent(h == diskarray.Rebuilding)
		default:
			if db.store.Degraded() {
				db.store.LeaveDegraded()
			}
		}
		var err error
		rep, err = recovery.CrashRecover(db.store, db.cfg.EOT == NoForce, db.dirtyCrash)
		if err == nil {
			break
		}
		// A drive can fail-stop in the middle of recovery itself (it
		// survived the crash only to die under the recovery I/O).  The
		// passes are restartable — undo writes are idempotent, repairs
		// leave consistent groups, the bitmap pass recomputes from
		// headers — so observe the loss and run recovery again in
		// degraded mode.  The Failed case above bounds the loop: each
		// retry needs a fresh disk death, and the second overlapping
		// loss trips it.
		if errors.Is(err, disk.ErrFailed) && attempt < db.arr.NumDisks() {
			db.arr.ProbeDisks()
			continue
		}
		return nil, fmt.Errorf("rda: recovery: %w", err)
	}
	var lost []PageID
	for _, p := range rep.LostPages {
		lost = append(lost, PageID(p))
	}
	db.store.SetReplacementPresent(false)
	db.dirtyCrash = false
	db.mu.Lock()
	if db.cfg.EOT == NoForce {
		// A fresh empty checkpoint bounds the next restart's REDO pass.
		db.lastCkptLSN = db.log.Append(wal.Record{Type: wal.TypeCheckpoint, Slot: wal.NoSlot})
	}
	db.mu.Unlock()
	db.locks = lock.New()
	db.pool = db.newPool()
	db.crashed = false
	// Everything before the restart point is now dead weight.
	db.mu.Lock()
	db.truncateLogLocked()
	db.recoveries++
	db.mu.Unlock()
	return &RecoveryReport{
		Losers:                  len(rep.Losers),
		UndoneViaParity:         rep.UndoneViaParity,
		UndoneViaLog:            rep.UndoneViaLog,
		Redone:                  rep.Redone,
		RepairedTorn:            rep.RepairedTorn,
		ResyncedGroups:          rep.ResyncedGroups,
		UndoneViaReconstruction: rep.UndoneViaReconstruction,
		DeferredParityGroups:    rep.DeferredParityGroups,
		LostPages:               lost,
	}, nil
}

// FailDisk injects a fail-stop failure on the given disk (0 ≤ d <
// NumDisks).  The engine enters degraded serving immediately — reads
// reconstruct from redundancy, writes maintain parity without the dead
// member — until an online rebuild (RebuildStep/StartRebuild) or media
// recovery (RepairDisk) completes.
func (db *DB) FailDisk(d int) error {
	db.gate.Lock()
	defer db.gate.Unlock()
	if err := db.arr.FailDisk(d); err != nil {
		return err
	}
	db.syncHealth()
	return nil
}

// stolenBeforeFunc returns the media-recovery before-image closure:
// the on-disk contents a dirty group's page had before its no-log steal,
// retained by the owning transaction while it is active.
func (db *DB) stolenBeforeFunc() recovery.BeforeImageFunc {
	return func(g page.GroupID, e dirtyset.Entry) page.Buf {
		st := db.getState(e.Txn)
		if st == nil {
			return nil
		}
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.stolenBefore[e.Page]
	}
}

// RepairDisk replaces the failed disk with a fresh one and reconstructs
// its contents online from the surviving members of each parity group —
// the media recovery the array's redundancy exists for.  Dirty groups
// (pages of still-active transactions written without UNDO logging) are
// handled per DESIGN.md: the working twin and the data page rebuild each
// other, and a lost committed twin is recomputed with the before-image
// the engine retains while the owning transaction is active.
func (db *DB) RepairDisk(d int) error {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return ErrCrashed
	}
	if err := recovery.RecoverMedia(db.store, d, db.stolenBeforeFunc()); err != nil {
		return fmt.Errorf("rda: media recovery: %w", err)
	}
	db.leaveDegradedLocked()
	return nil
}

// leaveDegradedLocked returns the engine to normal serving after media
// recovery restored full redundancy.  Called with the exclusive gate
// held.
func (db *DB) leaveDegradedLocked() {
	db.arr.FinishRebuild() // no-op unless a rebuild was in flight
	if db.arr.Health() == diskarray.Healthy {
		db.store.LeaveDegraded()
	}
}

// RepairDisks replaces several simultaneously failed disks and
// reconstructs their contents together.  Twin parity lets some
// two-disk-failure patterns recover that single parity cannot: a group
// that lost both its parity twins, or a data page together with a twin
// that does not describe the on-disk state, rebuilds from the survivors.
// Groups whose loss genuinely exceeds the redundancy (two data pages; a
// data page plus its covering parity) suffer data loss: their lost pages
// come back zeroed, their parity is made consistent, and their group
// numbers are returned so the caller can restore them from an archive.
// A single-disk repair never loses data.
func (db *DB) RepairDisks(ds ...int) ([]uint32, error) {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	lost, err := recovery.RecoverMediaMulti(db.store, ds, db.stolenBeforeFunc())
	if err != nil {
		return nil, fmt.Errorf("rda: media recovery: %w", err)
	}
	db.leaveDegradedLocked()
	out := make([]uint32, len(lost))
	for i, g := range lost {
		out[i] = uint32(g)
		// Any buffered copies of a lost group's pages are stale.
		for _, p := range db.arr.GroupPages(g) {
			db.pool.Discard(p)
		}
	}
	return out, nil
}
