// Package trace defines the engine's replayable workload trace format
// and its deterministic replayer.
//
// A trace is a versioned, self-describing recording of a transactional
// workload: a header naming the workload that produced it (generator
// spec, seed, concurrency) and the database shape it was generated for
// (page count, page size, logging granularity), followed by a flat
// sequence of operations interleaved across up to 256 concurrent
// transaction streams.  The encoding is canonical — encoding a decoded
// trace reproduces the input byte for byte — and guarded by a CRC-32C
// trailer, so traces can be stored, diffed and shipped between harnesses
// as plain files.
//
// Replay executes a trace against a live engine single-threaded in
// trace order, which makes the replay itself deterministic: two replays
// of the same trace against the same configuration produce the same
// commit history, the same transfer counts and the same final database
// image.  Replay reports a digest over the commit history and the final
// on-disk state precisely so harnesses can assert that determinism.
// The same trace replays unchanged across array geometries (RAID-5
// rotated parity, parity striping, mirroring, any group width) and EOT
// disciplines, because operations address logical pages, not disks —
// that is what makes trace-driven geometry sweeps apples-to-apples.
//
// Payloads are not stored in the trace.  Each write op carries a 64-bit
// argument from which the replayer expands the full page or record
// image with a splitmix64 stream; the first 8 bytes of the image are
// the argument itself, little endian, so semantic workloads (the
// banking generator's account balances) can round-trip literal values
// while synthetic workloads get pseudorandom bytes — one rule, both
// uses, no image storage.
package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/rda"
)

// Magic identifies a trace file; Version is the current format version.
const (
	Magic   = "RDATRC"
	Version = 1
)

// Mode is the logging/locking granularity a trace was generated for.
// Page-mode traces address whole pages; record-mode traces address
// (page, slot) records.  A trace replays only on an engine opened in
// the matching mode.
type Mode uint8

// Trace modes.
const (
	ModePage Mode = iota
	ModeRecord
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModeRecord {
		return "record"
	}
	return "page"
}

// LoggingMode maps the trace mode onto the engine's configuration enum.
func (m Mode) LoggingMode() rda.LoggingMode {
	if m == ModeRecord {
		return rda.RecordLogging
	}
	return rda.PageLogging
}

// Kind is an operation type.
type Kind uint8

// Operation kinds.  Begin, Commit and Abort bracket one transaction on
// one stream; the page and record ops are the transaction body.
const (
	OpBegin Kind = iota
	OpCommit
	OpAbort
	OpReadPage
	OpWritePage
	OpReadRecord
	OpWriteRecord
	kindCount // sentinel for validation
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpReadPage:
		return "read"
	case OpWritePage:
		return "write"
	case OpReadRecord:
		return "readrec"
	case OpWriteRecord:
		return "writerec"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsEOT reports whether the op ends its stream's transaction.
func (k Kind) IsEOT() bool { return k == OpCommit || k == OpAbort }

// Op is one traced operation.
type Op struct {
	// Kind is the operation type.
	Kind Kind
	// Stream is the concurrent transaction stream (0 ≤ Stream < Streams)
	// the op belongs to; replay keeps one open transaction per stream.
	Stream uint8
	// Page is the logical page id (page and record ops).
	Page uint32
	// Slot is the record slot within the page (record ops).
	Slot uint16
	// Arg seeds the write payload: the replayer expands it to a full
	// page or record image (see Payload).  Unused by reads.
	Arg uint64
}

// Header describes the workload a trace records and the database shape
// it addresses.
type Header struct {
	// Version is the format version the trace was encoded with.
	Version uint16
	// Mode is the logging/locking granularity.
	Mode Mode
	// Streams is the number of concurrent transaction streams.
	Streams uint8
	// NumPages is the page count the generator addressed; the replaying
	// engine must have at least this many pages.
	NumPages uint32
	// PageSize is the page size in bytes (payload expansion depends on
	// it, so it must match the replaying engine exactly).
	PageSize uint32
	// RecordSize is the record length in bytes (record mode only).
	RecordSize uint32
	// Seed is the generator seed the trace was produced from.
	Seed int64
	// Spec is the human-readable generator spec (e.g.
	// "zipfian:theta=0.99"), carried for provenance.
	Spec string
}

// Trace is a decoded trace: header plus operation sequence.
type Trace struct {
	Header Header
	Ops    []Op
}

// Config applies the trace's database-shape fields onto a base engine
// configuration, leaving the base's geometry choices (layout, group
// width, RDA, EOT discipline, buffer size) in place.  This is the one
// place a harness derives an engine config from a trace, so every
// replayer agrees on what "compatible" means.
func (t *Trace) Config(base rda.Config) rda.Config {
	base.Logging = t.Header.Mode.LoggingMode()
	base.NumPages = int(t.Header.NumPages)
	base.PageSize = int(t.Header.PageSize)
	if t.Header.Mode == ModeRecord {
		base.RecordSize = int(t.Header.RecordSize)
	}
	return base
}

// Errors returned by Decode.
var (
	ErrBadMagic   = errors.New("trace: not a trace file")
	ErrBadVersion = errors.New("trace: unsupported format version")
	ErrCorrupt    = errors.New("trace: corrupt trace")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encode serializes the trace into its canonical byte form: magic,
// header, op count, varint-packed ops, CRC-32C trailer.  Encoding is a
// pure function of the trace value, so Encode(Decode(b)) == b.
func (t *Trace) Encode() []byte {
	var buf []byte
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = append(buf, byte(t.Header.Mode), t.Header.Streams)
	buf = binary.LittleEndian.AppendUint32(buf, t.Header.NumPages)
	buf = binary.LittleEndian.AppendUint32(buf, t.Header.PageSize)
	buf = binary.LittleEndian.AppendUint32(buf, t.Header.RecordSize)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.Header.Seed))
	buf = binary.AppendUvarint(buf, uint64(len(t.Header.Spec)))
	buf = append(buf, t.Header.Spec...)
	buf = binary.AppendUvarint(buf, uint64(len(t.Ops)))
	for _, op := range t.Ops {
		buf = append(buf, byte(op.Kind), op.Stream)
		switch op.Kind {
		case OpReadPage:
			buf = binary.AppendUvarint(buf, uint64(op.Page))
		case OpWritePage:
			buf = binary.AppendUvarint(buf, uint64(op.Page))
			buf = binary.AppendUvarint(buf, op.Arg)
		case OpReadRecord:
			buf = binary.AppendUvarint(buf, uint64(op.Page))
			buf = binary.AppendUvarint(buf, uint64(op.Slot))
		case OpWriteRecord:
			buf = binary.AppendUvarint(buf, uint64(op.Page))
			buf = binary.AppendUvarint(buf, uint64(op.Slot))
			buf = binary.AppendUvarint(buf, op.Arg)
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	return buf
}

// decoder walks the encoded bytes with bounds checking.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrCorrupt, d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.err = fmt.Errorf("%w: bad varint at offset %d", ErrCorrupt, d.off)
		return 0
	}
	d.off += n
	return v
}

// Decode parses an encoded trace, validating magic, version, structure
// and checksum.
func Decode(b []byte) (*Trace, error) {
	if len(b) < len(Magic)+4 {
		return nil, ErrBadMagic
	}
	if string(b[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{b: body, off: len(Magic)}
	var t Trace
	t.Header.Version = binary.LittleEndian.Uint16(d.take(2))
	if d.err == nil && t.Header.Version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrBadVersion, t.Header.Version, Version)
	}
	if mb := d.take(2); mb != nil {
		t.Header.Mode, t.Header.Streams = Mode(mb[0]), mb[1]
	}
	if t.Header.Mode > ModeRecord {
		return nil, fmt.Errorf("%w: unknown mode %d", ErrCorrupt, t.Header.Mode)
	}
	if v := d.take(4); v != nil {
		t.Header.NumPages = binary.LittleEndian.Uint32(v)
	}
	if v := d.take(4); v != nil {
		t.Header.PageSize = binary.LittleEndian.Uint32(v)
	}
	if v := d.take(4); v != nil {
		t.Header.RecordSize = binary.LittleEndian.Uint32(v)
	}
	if v := d.take(8); v != nil {
		t.Header.Seed = int64(binary.LittleEndian.Uint64(v))
	}
	if n := d.uvarint(); d.err == nil {
		t.Header.Spec = string(d.take(int(n)))
	}
	n := d.uvarint()
	if d.err == nil && n > uint64(len(body)) { // each op is ≥ 2 bytes
		return nil, fmt.Errorf("%w: impossible op count %d", ErrCorrupt, n)
	}
	t.Ops = make([]Op, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var op Op
		if kb := d.take(2); kb != nil {
			op.Kind, op.Stream = Kind(kb[0]), kb[1]
		}
		if op.Kind >= kindCount {
			return nil, fmt.Errorf("%w: unknown op kind %d at op %d", ErrCorrupt, op.Kind, i)
		}
		switch op.Kind {
		case OpReadPage:
			op.Page = uint32(d.uvarint())
		case OpWritePage:
			op.Page = uint32(d.uvarint())
			op.Arg = d.uvarint()
		case OpReadRecord:
			op.Page = uint32(d.uvarint())
			op.Slot = uint16(d.uvarint())
		case OpWriteRecord:
			op.Page = uint32(d.uvarint())
			op.Slot = uint16(d.uvarint())
			op.Arg = d.uvarint()
		}
		t.Ops = append(t.Ops, op)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return &t, nil
}

// Payload expands a write op's 64-bit argument into an n-byte image:
// the argument itself occupies the first 8 bytes little endian (fewer
// when n < 8) and a splitmix64 stream seeded by it fills the rest.
// Deterministic, so every replay writes identical bytes.
func Payload(arg uint64, n int) []byte {
	buf := make([]byte, n)
	var le [8]byte
	binary.LittleEndian.PutUint64(le[:], arg)
	copy(buf, le[:])
	state := arg
	for i := 8; i < n; i += 8 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(le[:], z)
		copy(buf[i:], le[:])
	}
	return buf
}
