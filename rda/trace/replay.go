package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/record"
	"repro/rda"
)

// Options controls a replay run.
type Options struct {
	// CheckpointEvery, when positive, takes an action-consistent
	// checkpoint whenever this many page transfers have elapsed since the
	// last one (¬FORCE families; the model's interval I).
	CheckpointEvery int64
	// CrashAtEnd crashes the engine after the last op and runs recovery,
	// charging its transfers to the run — the model's c_s term.  Open
	// transactions become losers instead of being aborted.
	CrashAtEnd bool
	// MaxTransfers, when positive, stops the replay early once this many
	// transfers have been consumed; remaining ops are dropped and open
	// transactions aborted (or crashed, with CrashAtEnd).
	MaxTransfers int64
}

// Result is a replay measurement.
type Result struct {
	// Committed and Aborted count transactions by outcome.  Aborted
	// includes only trace-scripted aborts, not crash losers.
	Committed int64
	Aborted   int64
	// OpsApplied is the number of trace ops executed (all of them unless
	// MaxTransfers cut the run short).
	OpsApplied int
	// Transfers is the page transfers consumed, including checkpoints
	// and, with CrashAtEnd, crash recovery.
	Transfers int64
	// RecoveryTransfers is the crash recovery share of Transfers.
	RecoveryTransfers int64
	// Digest commits to the replay's observable behaviour: a SHA-256
	// chain over every transaction outcome (op index, stream, kind) and
	// the final on-disk image of every page.  Two replays of one trace
	// on one configuration must produce equal digests — that is the
	// trace plane's determinism contract.
	Digest string
	// Stats is the engine's counter snapshot at the end of the run
	// (before the digest's uncharged verification reads).
	Stats rda.Stats
}

// Replay errors.
var (
	ErrIncompatible = errors.New("trace: trace incompatible with database")
)

// Compatible checks that a database can replay the trace: matching
// logging mode, page size (payload expansion is size-dependent), record
// size in record mode, and enough pages.
func Compatible(db *rda.DB, t *Trace) error {
	cfg := db.Config()
	if cfg.Logging != t.Header.Mode.LoggingMode() {
		return fmt.Errorf("%w: trace is %s-mode, database is %s", ErrIncompatible, t.Header.Mode, cfg.Logging)
	}
	if cfg.PageSize != int(t.Header.PageSize) {
		return fmt.Errorf("%w: trace page size %d, database %d", ErrIncompatible, t.Header.PageSize, cfg.PageSize)
	}
	if db.NumPages() < int(t.Header.NumPages) {
		return fmt.Errorf("%w: trace addresses %d pages, database has %d", ErrIncompatible, t.Header.NumPages, db.NumPages())
	}
	if t.Header.Mode == ModeRecord && cfg.RecordSize != int(t.Header.RecordSize) {
		return fmt.Errorf("%w: trace record size %d, database %d", ErrIncompatible, t.Header.RecordSize, cfg.RecordSize)
	}
	return nil
}

// Replay executes the trace against the database in trace order, one op
// at a time, keeping one open transaction per stream.  The driver is
// single-threaded, so the interleaving — and therefore the commit
// history, the transfer counts and the final database image — is fully
// determined by the trace; see Result.Digest.
func Replay(db *rda.DB, t *Trace, opts Options) (Result, error) {
	var res Result
	if err := Compatible(db, t); err != nil {
		return res, err
	}
	db.ResetStats()
	h := sha256.New()
	var ev [16]byte
	outcome := func(opIdx int, op Op) {
		binary.LittleEndian.PutUint64(ev[:8], uint64(opIdx))
		ev[8] = op.Stream
		ev[9] = byte(op.Kind)
		h.Write(ev[:10])
	}

	transfers := func() int64 { return db.Stats().TotalTransfers() }
	open := make([]*rda.Tx, int(t.Header.Streams)+1)
	var lastCkpt int64

	pageSize := int(t.Header.PageSize)
	recSize := int(t.Header.RecordSize)

	for i, op := range t.Ops {
		if opts.MaxTransfers > 0 && transfers() >= opts.MaxTransfers {
			break
		}
		if opts.CheckpointEvery > 0 && transfers()-lastCkpt >= opts.CheckpointEvery {
			if err := db.Checkpoint(); err != nil {
				return res, fmt.Errorf("trace: checkpoint at op %d: %w", i, err)
			}
			lastCkpt = transfers()
		}
		s := int(op.Stream)
		if s >= len(open) {
			return res, fmt.Errorf("trace: op %d stream %d out of range", i, s)
		}
		var err error
		switch op.Kind {
		case OpBegin:
			if open[s] != nil {
				return res, fmt.Errorf("trace: op %d begins stream %d with a transaction open", i, s)
			}
			open[s], err = db.Begin()
		case OpCommit, OpAbort:
			if open[s] == nil {
				return res, fmt.Errorf("trace: op %d ends stream %d with no transaction open", i, s)
			}
			if op.Kind == OpCommit {
				err = open[s].Commit()
				res.Committed++
			} else {
				err = open[s].Abort()
				res.Aborted++
			}
			open[s] = nil
			if err == nil {
				outcome(i, op)
			}
		case OpReadPage:
			if open[s] == nil {
				return res, fmt.Errorf("trace: op %d on stream %d with no transaction open", i, s)
			}
			_, err = open[s].ReadPage(rda.PageID(op.Page))
		case OpWritePage:
			if open[s] == nil {
				return res, fmt.Errorf("trace: op %d on stream %d with no transaction open", i, s)
			}
			err = open[s].WritePage(rda.PageID(op.Page), Payload(op.Arg, pageSize))
		case OpReadRecord:
			if open[s] == nil {
				return res, fmt.Errorf("trace: op %d on stream %d with no transaction open", i, s)
			}
			_, err = open[s].ReadRecord(rda.PageID(op.Page), int(op.Slot))
			if errors.Is(err, record.ErrEmptySlot) {
				err = nil // reading a never-written slot is benign
			}
		case OpWriteRecord:
			if open[s] == nil {
				return res, fmt.Errorf("trace: op %d on stream %d with no transaction open", i, s)
			}
			err = open[s].WriteRecord(rda.PageID(op.Page), int(op.Slot), Payload(op.Arg, recSize))
		default:
			return res, fmt.Errorf("trace: op %d has unknown kind %d", i, op.Kind)
		}
		if err != nil {
			return res, fmt.Errorf("trace: op %d (%s stream %d page %d): %w", i, op.Kind, s, op.Page, err)
		}
		res.OpsApplied++
	}

	// Close out the run: crash the open transactions into losers, or
	// abort them in stream order (deterministic either way).
	if opts.CrashAtEnd {
		before := transfers()
		db.Crash()
		if _, err := db.Recover(); err != nil {
			return res, fmt.Errorf("trace: end-of-run recovery: %w", err)
		}
		res.RecoveryTransfers = transfers() - before
		for s := range open {
			open[s] = nil
		}
	} else {
		for s, tx := range open {
			if tx == nil {
				continue
			}
			if err := tx.Abort(); err != nil {
				return res, fmt.Errorf("trace: draining stream %d: %w", s, err)
			}
			open[s] = nil
		}
	}

	res.Transfers = transfers()
	res.Stats = db.Stats()

	// Fold the final on-disk image into the digest.  PeekPage is
	// uncharged, so the verification scan does not perturb the counters
	// captured above.
	for p := 0; p < int(t.Header.NumPages); p++ {
		img, err := db.PeekPage(rda.PageID(p))
		if err != nil {
			return res, fmt.Errorf("trace: digesting page %d: %w", p, err)
		}
		h.Write(img)
	}
	res.Digest = hex.EncodeToString(h.Sum(nil))
	return res, nil
}
