package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/workload"
	"repro/rda"
	"repro/rda/trace"
)

func genTrace(t *testing.T, spec string, mode trace.Mode, seed int64) *trace.Trace {
	t.Helper()
	prof := workload.Profile{
		Mode:           mode,
		Streams:        4,
		Transactions:   200,
		PagesPerTx:     6,
		UpdateFraction: 0.8,
		UpdateProb:     0.9,
		AbortProb:      0.02,
		Hot:            0.5,
		Window:         32,
		NumPages:       128,
		PageSize:       128,
		Seed:           seed,
	}
	if mode == trace.ModeRecord {
		prof.RecordSize = 16
	}
	prof, pl, err := workload.FromSpec(spec, prof)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(prof, pl)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestEncodeDecodeRoundtrip: the encoding is canonical — decoding and
// re-encoding any trace reproduces the bytes exactly.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, spec := range []string{"uniform", "zipfian:theta=0.99", "banking:accounts=50", "scan"} {
		for _, mode := range []trace.Mode{trace.ModePage, trace.ModeRecord} {
			tr := genTrace(t, spec, mode, 9)
			enc := tr.Encode()
			dec, err := trace.Decode(enc)
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", spec, mode, err)
			}
			if dec.Header != tr.Header {
				t.Fatalf("%s/%s: header changed: %+v vs %+v", spec, mode, dec.Header, tr.Header)
			}
			if !bytes.Equal(dec.Encode(), enc) {
				t.Fatalf("%s/%s: encode(decode(b)) != b", spec, mode)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := genTrace(t, "uniform", trace.ModePage, 3).Encode()
	if _, err := trace.Decode(enc[:4]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := trace.Decode(append([]byte("NOTRC!"), enc[6:]...)); err == nil {
		t.Error("bad magic accepted")
	}
	flipped := bytes.Clone(enc)
	flipped[len(flipped)/2] ^= 0x40
	if _, err := trace.Decode(flipped); err == nil {
		t.Error("bit flip accepted")
	}
	truncated := bytes.Clone(enc[:len(enc)-9])
	if _, err := trace.Decode(truncated); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestPayload(t *testing.T) {
	a := trace.Payload(0x1122334455667788, 64)
	b := trace.Payload(0x1122334455667788, 64)
	if !bytes.Equal(a, b) {
		t.Fatal("payload not deterministic")
	}
	if a[0] != 0x88 || a[7] != 0x11 {
		t.Fatalf("argument not little-endian in prefix: % x", a[:8])
	}
	if bytes.Equal(a[8:16], a[16:24]) {
		t.Fatal("fill not pseudorandom")
	}
	if got := trace.Payload(7, 4); len(got) != 4 || got[0] != 7 {
		t.Fatalf("short payload wrong: % x", got)
	}
}

func replayCfg(layout rda.Layout, disks int, eot rda.EOTDiscipline) rda.Config {
	cfg := rda.DefaultConfig()
	cfg.Layout = layout
	cfg.DataDisks = disks
	cfg.EOT = eot
	cfg.BufferFrames = 24
	return cfg
}

// TestReplayDeterministic: two replays of one trace on fresh databases
// of the same configuration produce identical digests, transfer counts
// and commit histories — the determinism contract.
func TestReplayDeterministic(t *testing.T) {
	tr := genTrace(t, "zipfian:theta=0.99", trace.ModeRecord, 17)
	run := func(opts trace.Options) trace.Result {
		db, err := rda.Open(tr.Config(replayCfg(rda.DataStriping, 4, rda.NoForce)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := trace.Replay(db, tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, opts := range []trace.Options{
		{},
		{CheckpointEvery: 500},
		{CrashAtEnd: true},
		{MaxTransfers: 400},
	} {
		a, b := run(opts), run(opts)
		if a.Digest != b.Digest || a.Transfers != b.Transfers || a.Committed != b.Committed {
			t.Errorf("opts %+v: runs differ: %+v vs %+v", opts, a, b)
		}
	}
}

// TestReplayDigestGeometryIndependent: the digest covers logical pages
// and commit history only, so the same trace produces the same digest
// on every array geometry — what makes geometry sweeps apples-to-apples.
func TestReplayDigestGeometryIndependent(t *testing.T) {
	tr := genTrace(t, "uniform", trace.ModePage, 29)
	var digest string
	for i, cfg := range []rda.Config{
		replayCfg(rda.DataStriping, 8, rda.Force),
		replayCfg(rda.ParityStriping, 4, rda.Force),
		replayCfg(rda.DataStriping, 1, rda.Force), // mirror
	} {
		db, err := rda.Open(tr.Config(cfg))
		if err != nil {
			t.Fatal(err)
		}
		res, err := trace.Replay(db, tr, trace.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			digest = res.Digest
		} else if res.Digest != digest {
			t.Errorf("geometry %d: digest %s differs from %s", i, res.Digest[:16], digest[:16])
		}
	}
}

// TestReplayIncompatible: a trace must not replay on a mismatched
// configuration.
func TestReplayIncompatible(t *testing.T) {
	tr := genTrace(t, "uniform", trace.ModeRecord, 5)
	bad := []func(*rda.Config){
		func(c *rda.Config) { c.Logging = rda.PageLogging },
		func(c *rda.Config) { c.PageSize = 256 },
		func(c *rda.Config) { c.NumPages = 64 },
		func(c *rda.Config) { c.RecordSize = 32 },
	}
	for i, mutate := range bad {
		cfg := tr.Config(replayCfg(rda.DataStriping, 4, rda.Force))
		mutate(&cfg)
		db, err := rda.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.Replay(db, tr, trace.Options{}); err == nil {
			t.Errorf("mutation %d: incompatible replay accepted", i)
		}
	}
}
