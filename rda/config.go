// Package rda is a database storage engine that reproduces "Database
// Recovery Using Redundant Disk Arrays" (Mourad, Fuchs & Saab, ICDE
// 1992): transaction recovery built on the redundancy already present in
// a parity-protected disk array.
//
// The engine runs fixed-size-page transactions over a simulated
// redundant disk array and supports every algorithm family the paper
// analyzes:
//
//   - page logging or record logging (Sections 5.2 and 5.3), with page or
//     record locking respectively;
//   - FORCE EOT processing with transaction-oriented checkpoints (TOC) or
//     ¬FORCE with action-consistent checkpoints (ACC);
//   - classic log-only UNDO (the baseline) or RDA recovery (Section 4),
//     in which a large fraction of the pages modified by active
//     transactions is written back with no UNDO logging at all, undo
//     material being the array's twin parity pages;
//   - data striping (RAID-5 with rotated parity) or Gray's parity
//     striping underneath either scheme.
//
// Every disk and log access is accounted in page transfers — the unit of
// the paper's performance model — so benchmark harnesses can regenerate
// the paper's figures from live executions.
package rda

import (
	"errors"
	"fmt"
	"time"
)

// Layout selects the array organization (Section 3).
type Layout int

// Array layouts.
const (
	// DataStriping is RAID-5 with rotated parity (Figures 1 and 4).
	DataStriping Layout = iota
	// ParityStriping is Gray's organization (Figures 2 and 5).
	ParityStriping
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	if l == DataStriping {
		return "data-striping"
	}
	return "parity-striping"
}

// LoggingMode selects the logging and locking granularity.
type LoggingMode int

// Logging modes.
const (
	// PageLogging logs whole-page images and locks pages (Section 5.2).
	PageLogging LoggingMode = iota
	// RecordLogging logs record images and locks records (Section 5.3).
	RecordLogging
)

// String implements fmt.Stringer.
func (m LoggingMode) String() string {
	if m == PageLogging {
		return "page-logging"
	}
	return "record-logging"
}

// EOTDiscipline selects end-of-transaction processing.
type EOTDiscipline int

// EOT disciplines.
const (
	// Force writes all of a transaction's modified pages to the database
	// before EOT; checkpointing is transaction-oriented (TOC).
	Force EOTDiscipline = iota
	// NoForce leaves modified pages in the buffer at EOT; REDO recovery
	// replays after-images after a crash, and checkpoints are
	// action-consistent (ACC).
	NoForce
)

// String implements fmt.Stringer.
func (d EOTDiscipline) String() string {
	if d == Force {
		return "force-toc"
	}
	return "noforce-acc"
}

// Config describes a database.  The zero value is not valid; call
// DefaultConfig or fill in at least the geometry fields.  Defaults mirror
// the paper's model parameters where it states them.
type Config struct {
	// DataDisks is N, the data pages per parity group (paper: 10).  The
	// array uses N+1 disks without RDA recovery and N+2 with it.
	DataDisks int
	// NumPages is S, the database size in pages (paper: 5000).
	NumPages int
	// PageSize is the page size in bytes (paper's l_p ≈ 2020; default
	// 2048).
	PageSize int
	// BufferFrames is B, the buffer size in frames (paper: 300).
	BufferFrames int
	// Layout selects data striping or parity striping.
	Layout Layout
	// Logging selects page or record granularity (logging and locking).
	Logging LoggingMode
	// EOT selects FORCE/TOC or ¬FORCE/ACC.
	EOT EOTDiscipline
	// RDA enables the paper's recovery scheme (twin parity pages, the
	// Dirty_Set, no-UNDO-logging steals).  When false the engine is the
	// traditional log-only baseline on a single-parity array.
	RDA bool
	// QParity adds a second redundancy page (Q, a Reed-Solomon code over
	// GF(2^8)) beside each parity twin, RAID-6 style: the array then
	// survives two simultaneous disk deaths, and the scrubber can repair
	// a corrupt block even while a disk is down.  Every Q page twins in
	// lockstep with its P partner — same header, written just before it —
	// so the twin-parity recovery protocol is unchanged; small writes
	// cost two extra transfers (the Q read-modify-write).  Requires RDA.
	QParity bool
	// RecordSize is r, the record length for RecordLogging (paper: 100).
	RecordSize int
	// LogPageSize is the physical log page size (paper: 2020).
	LogPageSize int
	// LogWriteCost is the page transfers charged per log page forced
	// (paper's model: 4, a small array write).
	LogWriteCost int
	// PackedLog selects the buffered-log cost accounting of the paper's
	// record logging analysis (entries pack into l_p-byte log pages that
	// are charged once each) instead of charging every forced append.
	// Durability is unaffected; see wal.Config.Packed.
	PackedLog bool
	// CheckpointEvery, when positive and EOT is NoForce, takes an
	// action-consistent checkpoint automatically whenever this many page
	// transfers have elapsed since the last one.  The optimal value for
	// a workload is what the Section 5 model's interval optimization
	// computes (model.Result.Interval).  Zero disables automatic
	// checkpoints; Checkpoint can always be called manually.
	CheckpointEvery int64

	// --- Self-healing knobs (see DESIGN.md §"Self-healing I/O") ---

	// RetryAttempts bounds how many times one block I/O is issued before
	// a transient error is surfaced (default 4).  Backoff between
	// attempts is deterministic and charged in abstract units, never
	// slept.
	RetryAttempts int
	// FailStopAfter is K: after K consecutive errored attempts on one
	// disk the array fail-stops it automatically and serves degraded
	// (default 3).  The default keeps K < RetryAttempts so a persistently
	// erroring disk is declared dead within a single retried operation
	// instead of surfacing an error to the caller.
	FailStopAfter int
	// RebuildBatchGroups throttles the online rebuild worker: each
	// RebuildStep restores at most this many parity groups before
	// releasing the engine to live transactions (default 8).  Smaller
	// batches favour transaction latency, larger ones rebuild speed —
	// the classic rebuild-rate trade-off.
	RebuildBatchGroups int
	// ScrubBatchGroups throttles the online scrub worker the same way:
	// each ScrubStep verifies at most this many parity groups before
	// releasing its latches to live transactions (default 8).  Unlike the
	// rebuild the scrubber runs under the shared gate, so the batch size
	// only bounds how long individual group latches are cycled, not how
	// long transactions stall.
	ScrubBatchGroups int

	// Workers bounds the engine's internal parallelism for the
	// embarrassingly parallel disk loops: rebuild batches, recovery-time
	// torn-repair and parity-resync scans, and bulk-load stripe writes.
	// The default of 1 runs every loop inline in deterministic order —
	// required for replayable crash-point schedules — while larger
	// values fan the per-group work across a bounded worker pool.
	// Transaction concurrency itself is not limited by this knob; any
	// number of goroutines may run transactions against the engine, and
	// transactions on disjoint parity groups proceed in parallel under
	// the group latch table regardless of Workers.
	Workers int

	// IODelay, when non-zero, is the simulated service time of one block
	// transfer: each drive sleeps it per charged read or write, one
	// transfer at a time per drive, so wall-clock throughput reflects the
	// array parallelism actually achieved (transfers to distinct drives
	// overlap; queued transfers to one drive serialize).  Zero — the
	// default, and the right value for tests and the analytical
	// experiments — keeps all I/O instantaneous and costs measured purely
	// in transfer counts.  The concurrency benchmark (rdabench -workers)
	// sets it to make tx/second a meaningful measure of group-striped
	// scaling.
	IODelay time.Duration

	// --- Async I/O pipeline knobs (see DESIGN.md §"The async I/O
	// pipeline") ---

	// QueueDepth, when greater than 1, gives every drive a request queue
	// of that depth drained by a per-drive scheduler goroutine: transfers
	// to one drive are reordered elevator-style over block addresses and
	// overlap with transfers to other drives, and the engine issues the
	// independent transfers of one operation (the small-write RMW's two
	// reads, a full-stripe write's data writes) as concurrent batches.
	// The default of 1 keeps the synchronous drive model: every transfer
	// completes before the next is issued, in submission order — required
	// for byte-replayable crash schedules.
	QueueDepth int
	// QueueWindow bounds the elevator's reordering: a queued request is
	// passed over at most QueueWindow times before it is served next
	// regardless of head position (default 8).  Only meaningful with
	// QueueDepth > 1.
	QueueWindow int
	// GroupCommitWindow, when positive, batches EOT log forces: a
	// committing transaction appends its after-images and EOT record
	// without forcing, then waits — at most this window — for a shared
	// force that folds every EOT appended in the window into one log
	// write.  Commit still acknowledges only after the fold-in is
	// durable.  While group commit is on, each physical log force also
	// sleeps IODelay once, modelling the log device's service time.
	// Zero — the default — forces every append immediately, the
	// pre-group-commit behavior.
	GroupCommitWindow time.Duration
}

// DefaultConfig returns the paper's model parameters.
func DefaultConfig() Config {
	return Config{
		DataDisks:    10,
		NumPages:     5000,
		PageSize:     2048,
		BufferFrames: 300,
		Layout:       DataStriping,
		Logging:      PageLogging,
		EOT:          Force,
		RDA:          true,
		RecordSize:   100,
		LogPageSize:  2020,
		LogWriteCost: 4,

		RetryAttempts:      4,
		FailStopAfter:      3,
		RebuildBatchGroups: 8,
		ScrubBatchGroups:   8,
		Workers:            1,
	}
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("rda: invalid configuration")

// validate fills defaults for zero fields and checks consistency.
func (c Config) validate() (Config, error) {
	def := DefaultConfig()
	if c.DataDisks == 0 {
		c.DataDisks = def.DataDisks
	}
	if c.NumPages == 0 {
		c.NumPages = def.NumPages
	}
	if c.PageSize == 0 {
		c.PageSize = def.PageSize
	}
	if c.BufferFrames == 0 {
		c.BufferFrames = def.BufferFrames
	}
	if c.RecordSize == 0 {
		c.RecordSize = def.RecordSize
	}
	if c.LogPageSize == 0 {
		c.LogPageSize = def.LogPageSize
	}
	if c.LogWriteCost == 0 {
		c.LogWriteCost = def.LogWriteCost
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = def.RetryAttempts
	}
	if c.FailStopAfter == 0 {
		c.FailStopAfter = def.FailStopAfter
	}
	if c.RebuildBatchGroups == 0 {
		c.RebuildBatchGroups = def.RebuildBatchGroups
	}
	if c.ScrubBatchGroups == 0 {
		c.ScrubBatchGroups = def.ScrubBatchGroups
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.IODelay < 0 {
		c.IODelay = 0
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1
	}
	if c.QueueWindow <= 0 {
		c.QueueWindow = 8
	}
	if c.GroupCommitWindow < 0 {
		c.GroupCommitWindow = 0
	}
	if c.DataDisks < 1 {
		return c, fmt.Errorf("%w: DataDisks must be at least 1", ErrBadConfig)
	}
	if c.NumPages < c.DataDisks {
		return c, fmt.Errorf("%w: NumPages must be at least one group", ErrBadConfig)
	}
	if c.BufferFrames < 2 {
		return c, fmt.Errorf("%w: BufferFrames must be at least 2", ErrBadConfig)
	}
	if c.PageSize < 64 {
		return c, fmt.Errorf("%w: PageSize must be at least 64", ErrBadConfig)
	}
	if c.Logging == RecordLogging && c.RecordSize >= c.PageSize {
		return c, fmt.Errorf("%w: RecordSize must be smaller than PageSize", ErrBadConfig)
	}
	if c.QParity && !c.RDA {
		return c, fmt.Errorf("%w: QParity requires RDA (Q pages twin in lockstep with the parity twins)", ErrBadConfig)
	}
	return c, nil
}
