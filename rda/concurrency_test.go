package rda

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// TestDemotionSharedDirtyPage drives the engine through the subtle
// record-locking case DESIGN.md documents: transaction A's page is
// stolen without UNDO logging (dirty group), then transaction B modifies
// a DIFFERENT record of the SAME page.  The engine must demote A's steal
// to a logged one; afterwards A can abort (losing only its records) and
// B can commit, on the same page.
func TestDemotionSharedDirtyPage(t *testing.T) {
	cfg := smallConfig(RecordLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2 // steal immediately
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline.
	setup := mustBegin(t, db)
	if err := setup.WriteRecord(0, 0, []byte{0x0A}); err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteRecord(0, 1, []byte{0x0B}); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	// A modifies slot 0 and its page gets stolen without UNDO logging.
	a := mustBegin(t, db)
	if err := a.WriteRecord(0, 0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	// Force the steal by touching other pages.
	if _, err := a.ReadRecord(4, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	if _, err := a.ReadRecord(8, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Dirty || info.DirtyPage != 0 {
		t.Fatalf("setup failed: group not dirty via page 0 (%+v)", info)
	}
	logBefore := db.Stats().LogRecords

	// B writes slot 1 of the same page: demotion must fire.
	b := mustBegin(t, db)
	if err := b.WriteRecord(0, 1, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	info, err = db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dirty {
		t.Fatalf("group must be clean after demotion (%+v)", info)
	}
	if db.Stats().LogRecords <= logBefore {
		t.Fatalf("demotion must log A's before-images")
	}

	// A aborts; B commits.
	if err := a.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	check := mustBegin(t, db)
	got0, err := check.ReadRecord(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := check.ReadRecord(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got0[0] != 0x0A {
		t.Fatalf("A's record = %#x, want the pre-A value 0x0A", got0[0])
	}
	if got1[0] != 0xBB {
		t.Fatalf("B's record = %#x, want B's committed 0xBB", got1[0])
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestDemotionThenCrash is the same scenario interrupted by a crash
// instead of clean EOTs: both A and B are losers; recovery must restore
// both records from the log (the demoted steal forbids the whole-page
// parity undo).
func TestDemotionThenCrash(t *testing.T) {
	cfg := smallConfig(RecordLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup := mustBegin(t, db)
	if err := setup.WriteRecord(0, 0, []byte{0x0A}); err != nil {
		t.Fatal(err)
	}
	if err := setup.WriteRecord(0, 1, []byte{0x0B}); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	a := mustBegin(t, db)
	if err := a.WriteRecord(0, 0, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadRecord(4, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	if _, err := a.ReadRecord(8, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	b := mustBegin(t, db)
	if err := b.WriteRecord(0, 1, []byte{0xBB}); err != nil {
		t.Fatal(err)
	}
	// Push B's version to disk too, then crash.
	if _, err := b.ReadRecord(12, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	if _, err := b.ReadRecord(16, 0); err != nil && !isEmptySlot(err) {
		t.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Losers != 2 {
		t.Fatalf("losers = %d, want 2", rep.Losers)
	}
	check := mustBegin(t, db)
	got0, err := check.ReadRecord(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := check.ReadRecord(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got0[0] != 0x0A || got1[0] != 0x0B {
		t.Fatalf("records = %#x/%#x, want 0x0A/0x0B", got0[0], got1[0])
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentGoroutineStress runs many goroutines of page
// transactions with retries, then verifies the parity invariant and that
// every page holds one of the values some committed transaction wrote.
func TestConcurrentGoroutineStress(t *testing.T) {
	cfg := smallConfig(PageLogging, NoForce, true, DataStriping)
	cfg.NumPages = 64
	cfg.BufferFrames = 8
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers, txnsEach = 8, 40
	var mu sync.Mutex
	committed := make(map[PageID]map[byte]bool) // page -> set of committed seeds
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < txnsEach; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				seed := byte(w*txnsEach + i)
				pages := []PageID{PageID(r.Intn(64)), PageID(r.Intn(64))}
				ok := true
				for _, p := range pages {
					if err := tx.WritePage(p, fillPage(db, seed)); err != nil {
						if errors.Is(err, ErrDeadlock) {
							ok = false
							break
						}
						t.Error(err)
						return
					}
				}
				if !ok {
					continue // victim: already aborted
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, p := range pages {
					if committed[p] == nil {
						committed[p] = make(map[byte]bool)
					}
					committed[p][seed] = true
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	// Every written page must hold one of its committed values.
	check := mustBegin(t, db)
	for p, seeds := range committed {
		got, err := check.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for seed := range seeds {
			if bytes.Equal(got, fillPage(db, seed)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("page %d holds a value no committed transaction wrote", p)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInspectGroupAndDumpLog(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	// An older active transaction pins the log (its BOT bounds
	// truncation), so the committed transaction's records stay visible.
	pin := mustBegin(t, db)
	if err := pin.WritePage(20, fillPage(db, 9)); err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pages) != db.Config().DataDisks {
		t.Fatalf("group pages = %v", info.Pages)
	}
	if len(info.TwinStates) != 2 {
		t.Fatalf("twin states = %v, want two twins", info.TwinStates)
	}
	if info.Dirty {
		t.Fatalf("group must be clean after commit")
	}
	if _, err := db.InspectGroup(PageID(db.NumPages())); !errors.Is(err, ErrBadPage) {
		t.Fatalf("err = %v, want ErrBadPage", err)
	}

	var lines []string
	if err := db.DumpLog(func(l string) bool {
		lines = append(lines, l)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"BOT", "EOT", "AFTER"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("log dump missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "BEFORE") {
		t.Fatalf("RDA run must not log before-images:\n%s", joined)
	}
	// Early stop works.
	count := 0
	if err := db.DumpLog(func(string) bool { count++; return false }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early stop visited %d lines", count)
	}
}
