package rda

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// smallConfig returns a small geometry that forces buffer steals.
func smallConfig(logging LoggingMode, eot EOTDiscipline, useRDA bool, layout Layout) Config {
	return Config{
		DataDisks:    4,
		NumPages:     48,
		PageSize:     64,
		BufferFrames: 6,
		Layout:       layout,
		Logging:      logging,
		EOT:          eot,
		RDA:          useRDA,
		RecordSize:   16,
		LogPageSize:  256,
		LogWriteCost: 4,
	}
}

// allConfigs enumerates the eight algorithm combinations on data
// striping plus two parity-striping spot checks.
func allConfigs() []Config {
	var out []Config
	for _, logging := range []LoggingMode{PageLogging, RecordLogging} {
		for _, eot := range []EOTDiscipline{Force, NoForce} {
			for _, useRDA := range []bool{false, true} {
				out = append(out, smallConfig(logging, eot, useRDA, DataStriping))
			}
		}
	}
	out = append(out,
		smallConfig(PageLogging, Force, true, ParityStriping),
		smallConfig(PageLogging, NoForce, true, ParityStriping),
		smallConfig(RecordLogging, NoForce, true, ParityStriping),
	)
	// Width-1 groups: mirrored pairs (single parity) and twin-page
	// storage (RDA) take the same battery.
	for _, useRDA := range []bool{false, true} {
		mirror := smallConfig(PageLogging, Force, useRDA, DataStriping)
		mirror.DataDisks = 1
		mirror.NumPages = 32
		out = append(out, mirror)
	}
	return out
}

func cfgName(c Config) string {
	return fmt.Sprintf("%v/%v/rda=%v/%v/N=%d", c.Logging, c.EOT, c.RDA, c.Layout, c.DataDisks)
}

func fillPage(db *DB, seed byte) []byte {
	b := make([]byte, db.PageSize())
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

func mustBegin(t *testing.T, db *DB) *Tx {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestCommitDurableAcrossCrash(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[PageID][]byte)
			tx := mustBegin(t, db)
			if cfg.Logging == PageLogging {
				for p := PageID(0); p < 8; p++ {
					img := fillPage(db, byte(p+1))
					if err := tx.WritePage(p, img); err != nil {
						t.Fatal(err)
					}
					want[p] = img
				}
			} else {
				for p := PageID(0); p < 8; p++ {
					if err := tx.WriteRecord(p, 0, []byte{byte(p + 1)}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			check := mustBegin(t, db)
			if cfg.Logging == PageLogging {
				for p, img := range want {
					got, err := check.ReadPage(p)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, img) {
						t.Fatalf("page %d lost after crash", p)
					}
				}
			} else {
				for p := PageID(0); p < 8; p++ {
					got, err := check.ReadRecord(p, 0)
					if err != nil {
						t.Fatal(err)
					}
					if got[0] != byte(p+1) {
						t.Fatalf("record %d.0 lost after crash", p)
					}
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAbortRestores(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Establish committed baselines.
			setup := mustBegin(t, db)
			base := make(map[PageID][]byte)
			for p := PageID(0); p < 12; p++ {
				if cfg.Logging == PageLogging {
					img := fillPage(db, byte(p+0x30))
					if err := setup.WritePage(p, img); err != nil {
						t.Fatal(err)
					}
					base[p] = img
				} else if err := setup.WriteRecord(p, 1, []byte{0x30 + byte(p)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			// Modify many pages (more than the buffer holds, forcing
			// steals), then abort.
			tx := mustBegin(t, db)
			for p := PageID(0); p < 12; p++ {
				if cfg.Logging == PageLogging {
					if err := tx.WritePage(p, fillPage(db, byte(p+0x90))); err != nil {
						t.Fatal(err)
					}
				} else if err := tx.WriteRecord(p, 1, []byte{0x90 + byte(p)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}

			check := mustBegin(t, db)
			for p := PageID(0); p < 12; p++ {
				if cfg.Logging == PageLogging {
					got, err := check.ReadPage(p)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, base[p]) {
						t.Fatalf("page %d not restored by abort", p)
					}
				} else {
					got, err := check.ReadRecord(p, 1)
					if err != nil {
						t.Fatal(err)
					}
					if got[0] != 0x30+byte(p) {
						t.Fatalf("record %d.1 not restored by abort", p)
					}
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCrashUndoesLosers(t *testing.T) {
	for _, cfg := range allConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			setup := mustBegin(t, db)
			base := make(map[PageID][]byte)
			for p := PageID(0); p < 12; p++ {
				if cfg.Logging == PageLogging {
					img := fillPage(db, byte(p+0x11))
					if err := setup.WritePage(p, img); err != nil {
						t.Fatal(err)
					}
					base[p] = img
				} else if err := setup.WriteRecord(p, 0, []byte{0x11 + byte(p)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}

			// A winner and a loser interleave.
			winner := mustBegin(t, db)
			loser := mustBegin(t, db)
			for p := PageID(0); p < 6; p++ {
				if cfg.Logging == PageLogging {
					if err := winner.WritePage(p, fillPage(db, byte(p+0x50))); err != nil {
						t.Fatal(err)
					}
					if err := loser.WritePage(p+6, fillPage(db, byte(p+0xA0))); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := winner.WriteRecord(p, 0, []byte{0x50 + byte(p)}); err != nil {
						t.Fatal(err)
					}
					if err := loser.WriteRecord(p+6, 0, []byte{0xA0 + byte(p)}); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := winner.Commit(); err != nil {
				t.Fatal(err)
			}
			db.Crash()
			rep, err := db.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Losers != 1 {
				t.Fatalf("losers = %d, want 1", rep.Losers)
			}

			check := mustBegin(t, db)
			for p := PageID(0); p < 12; p++ {
				if cfg.Logging == PageLogging {
					got, err := check.ReadPage(p)
					if err != nil {
						t.Fatal(err)
					}
					if p < 6 {
						if !bytes.Equal(got, fillPage(db, byte(p+0x50))) {
							t.Fatalf("winner page %d lost", p)
						}
					} else if !bytes.Equal(got, base[p]) {
						t.Fatalf("loser page %d not undone", p)
					}
				} else {
					got, err := check.ReadRecord(p, 0)
					if err != nil {
						t.Fatal(err)
					}
					want := byte(0x11 + p)
					if p < 6 {
						want = byte(0x50 + p)
					}
					if got[0] != want {
						t.Fatalf("record %d.0 = %#x, want %#x", p, got[0], want)
					}
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRDAAvoidsUndoLogging(t *testing.T) {
	// The whole point of the paper: with RDA recovery, most steals write
	// no before-images.  Run the same single-transaction workload with
	// and without RDA and compare log volume.
	run := func(useRDA bool) Stats {
		cfg := smallConfig(PageLogging, Force, useRDA, DataStriping)
		db, err := Open(cfg)
		if err != nil {
			panic(err)
		}
		db.ResetStats()
		tx, err := db.Begin()
		if err != nil {
			panic(err)
		}
		// Touch pages in distinct parity groups: every steal is eligible
		// for the no-logging path.
		for p := PageID(0); p < 10; p++ {
			if err := tx.WritePage(p*4, fillPage(db, byte(p))); err != nil {
				panic(err)
			}
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
		return db.Stats()
	}
	with := run(true)
	without := run(false)
	if with.LogRecords >= without.LogRecords {
		t.Fatalf("RDA log records = %d, want fewer than baseline %d", with.LogRecords, without.LogRecords)
	}
	// Baseline logs 10 before-images that RDA avoids entirely here.
	if diff := without.LogRecords - with.LogRecords; diff != 10 {
		t.Fatalf("before-images avoided = %d, want 10", diff)
	}
}

func TestDeadlockVictimAutoAborts(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := mustBegin(t, db)
	t2 := mustBegin(t, db)
	if err := t1.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	if err := t2.WritePage(1, fillPage(db, 2)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.WritePage(1, fillPage(db, 3)) }()
	time.Sleep(30 * time.Millisecond) // let t1 enqueue behind t2's lock
	// t2 closing the cycle must get ErrDeadlock and be aborted.
	err2 := t2.WritePage(0, fillPage(db, 4))
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err2)
	}
	if err := t2.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("victim handle must be done; got %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor write failed: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestMediaRecoveryMidWorkload(t *testing.T) {
	for _, cfg := range []Config{
		smallConfig(PageLogging, Force, true, DataStriping),
		smallConfig(PageLogging, NoForce, false, DataStriping),
		smallConfig(PageLogging, Force, true, ParityStriping),
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			setup := mustBegin(t, db)
			imgs := make(map[PageID][]byte)
			for p := PageID(0); p < 16; p++ {
				img := fillPage(db, byte(p+3))
				if err := setup.WritePage(p, img); err != nil {
					t.Fatal(err)
				}
				imgs[p] = img
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}
			// An active transaction has stolen pages when the disk dies.
			active := mustBegin(t, db)
			activeImgs := make(map[PageID][]byte)
			for p := PageID(16); p < 24; p++ {
				img := fillPage(db, byte(p+0x77))
				if err := active.WritePage(p, img); err != nil {
					t.Fatal(err)
				}
				activeImgs[p] = img
			}

			for d := 0; d < db.NumDisks(); d++ {
				if err := db.FailDisk(d); err != nil {
					t.Fatal(err)
				}
				if err := db.RepairDisk(d); err != nil {
					t.Fatalf("disk %d: %v", d, err)
				}
			}
			// The active transaction can still commit, and everything
			// reads back.
			if err := active.Commit(); err != nil {
				t.Fatal(err)
			}
			for p, img := range activeImgs {
				imgs[p] = img
			}
			check := mustBegin(t, db)
			for p, img := range imgs {
				got, err := check.ReadPage(p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, img) {
					t.Fatalf("page %d corrupted by media recovery", p)
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMediaRecoveryThenAbort(t *testing.T) {
	// The hard case: a disk dies while a group is dirty, the array is
	// rebuilt, and THEN the owning transaction aborts — the twin-parity
	// undo must still restore the before-image, whichever block was lost.
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	for d := 0; d < 6; d++ {
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		setup := mustBegin(t, db)
		base := fillPage(db, 0x21)
		if err := setup.WritePage(0, base); err != nil {
			t.Fatal(err)
		}
		if err := setup.Commit(); err != nil {
			t.Fatal(err)
		}
		active := mustBegin(t, db)
		if err := active.WritePage(0, fillPage(db, 0xEF)); err != nil {
			t.Fatal(err)
		}
		// Force the page to disk so the group is dirty.
		for p := PageID(24); p < 32; p++ {
			filler := mustBegin(t, db)
			if err := filler.WritePage(p, fillPage(db, byte(p))); err != nil {
				t.Fatal(err)
			}
			if err := filler.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.FailDisk(d); err != nil {
			t.Fatal(err)
		}
		if err := db.RepairDisk(d); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		if err := active.Abort(); err != nil {
			t.Fatalf("disk %d: abort: %v", d, err)
		}
		check := mustBegin(t, db)
		got, err := check.ReadPage(0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("disk %d: abort after media recovery lost the before-image", d)
		}
		if err := check.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
	}
}

func TestCheckpointBoundsRedo(t *testing.T) {
	cfg := smallConfig(PageLogging, NoForce, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx2 := mustBegin(t, db)
	if err := tx2.WritePage(1, fillPage(db, 2)); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Only the post-checkpoint winner needs replaying.
	if rep.Redone != 1 {
		t.Fatalf("redone = %d, want 1", rep.Redone)
	}
	check := mustBegin(t, db)
	for p, seed := range map[PageID]byte{0: 1, 1: 2} {
		got, err := check.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, fillPage(db, seed)) {
			t.Fatalf("page %d wrong after recovery", p)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCrashDuringRecoveryWindow(t *testing.T) {
	// Crash, recover, crash again immediately: the second recovery must
	// be a no-op on state (idempotent passes).
	for _, cfg := range allConfigs() {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			setup := mustBegin(t, db)
			var base []byte
			if cfg.Logging == PageLogging {
				base = fillPage(db, 0x42)
				if err := setup.WritePage(3, base); err != nil {
					t.Fatal(err)
				}
			} else if err := setup.WriteRecord(3, 0, []byte{0x42}); err != nil {
				t.Fatal(err)
			}
			if err := setup.Commit(); err != nil {
				t.Fatal(err)
			}
			loser := mustBegin(t, db)
			for p := PageID(3); p < 12; p++ {
				if cfg.Logging == PageLogging {
					if err := loser.WritePage(p, fillPage(db, 0x99)); err != nil {
						t.Fatal(err)
					}
				} else if err := loser.WriteRecord(p, 0, []byte{0x99}); err != nil {
					t.Fatal(err)
				}
			}
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			check := mustBegin(t, db)
			if cfg.Logging == PageLogging {
				got, err := check.ReadPage(3)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, base) {
					t.Fatalf("page 3 wrong after double crash")
				}
			} else {
				got, err := check.ReadRecord(3, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got[0] != 0x42 {
					t.Fatalf("record 3.0 wrong after double crash")
				}
			}
			if err := check.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWrongModeRejected(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if _, err := tx.ReadRecord(0, 0); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("err = %v, want ErrWrongMode", err)
	}
	if err := tx.WritePage(9999, fillPage(db, 1)); !errors.Is(err, ErrBadPage) {
		t.Fatalf("err = %v, want ErrBadPage", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("err = %v, want ErrTxDone", err)
	}
}

func TestCrashInvalidatesHandles(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if err := tx.WritePage(1, fillPage(db, 2)); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if _, err := db.Begin(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Begin on crashed db: err = %v, want ErrCrashed", err)
	}
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err != nil {
		t.Fatalf("Begin after recovery: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.DataDisks = -1 },
		func(c *Config) { c.NumPages = 2 },
		func(c *Config) { c.BufferFrames = 1 },
		func(c *Config) { c.PageSize = 32 },
		func(c *Config) { c.Logging = RecordLogging; c.RecordSize = c.PageSize },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Open(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
	// Defaults fill zero fields.
	db, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Config().DataDisks != 10 || db.Config().NumPages != 5000 {
		t.Fatalf("defaults not applied: %+v", db.Config())
	}
}

func TestStringers(t *testing.T) {
	for v, want := range map[interface{ String() string }]string{
		DataStriping: "data-striping", ParityStriping: "parity-striping",
		PageLogging: "page-logging", RecordLogging: "record-logging",
		Force: "force-toc", NoForce: "noforce-acc",
	} {
		if got := v.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", v, got, want)
		}
	}
}

func TestRecordOpsDoneAndCrashChecks(t *testing.T) {
	db, err := Open(smallConfig(RecordLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if err := tx.WriteRecord(0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.DeleteRecord(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteRecord(0, 0, []byte{2}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("err = %v, want ErrTxDone", err)
	}
	if err := tx.DeleteRecord(0, 0); !errors.Is(err, ErrTxDone) {
		t.Fatalf("err = %v, want ErrTxDone", err)
	}
	tx2 := mustBegin(t, db)
	db.Crash()
	if err := tx2.WriteRecord(0, 0, []byte{3}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if _, err := db.RepairDisks(0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("RepairDisks on crashed db: err = %v, want ErrCrashed", err)
	}
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
}
