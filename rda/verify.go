package rda

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
)

// VerifyRecovered checks every invariant a freshly restarted database
// must satisfy, beyond the parity identity VerifyParity already covers.
// The crash-point explorer (rda/crashcheck) calls it after each
// crash-and-recover cycle:
//
//   - every group's current parity twin equals the XOR of its data pages;
//   - no working-state twin survived restart, every group's current twin
//     is committed on disk, and the other twin is in a state a legal
//     Figure 8 history can leave behind (committed-but-older, obsolete,
//     or invalid);
//   - the Dirty_Set is empty — no group is mid-steal;
//   - the in-memory current-parity bitmap matches an independent
//     Current_Parity (Figure 7) recomputation from the on-disk headers.
//
// After a degraded restart the checks cover the surviving members only:
// a group whose parity twin sits on the down disk must have its
// *surviving* twin current and committed (the dead slot is deferred to
// the rebuild), and a group whose data page is lost is checked against
// the twin that defines the lost page's value.
//
// All reads are uncharged verification I/O.
func (db *DB) VerifyRecovered() error {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return errors.New("rda: VerifyRecovered on a crashed database; run Recover first")
	}
	if err := db.store.VerifyParityInvariant(); err != nil {
		return err
	}
	if db.store.Dirty != nil {
		if n := db.store.Dirty.Len(); n != 0 {
			return fmt.Errorf("rda: %d dirty group(s) survived restart", n)
		}
	}
	if db.store.Twins == nil {
		return nil
	}
	for g := 0; g < db.arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		// Per-twin header, read through the best surviving slot: the P
		// header when its disk is up, else the Q partner's header — a
		// faithful proxy, since every Q page is written in lockstep with
		// its P partner under the same meta.  A twin whose slots are all
		// dead has no header; its reconstruction is the rebuild's job.
		var metas [2]disk.Meta
		var have [2]bool
		for twin := 0; twin < 2; twin++ {
			switch {
			case db.store.ParitySlotAlive(gid, twin):
				m, err := db.arr.PeekParityMeta(gid, twin)
				if err != nil {
					return err
				}
				metas[twin], have[twin] = m, true
			case db.arr.HasQ() && db.store.QSlotAlive(gid, twin):
				m, err := db.arr.PeekQMeta(gid, twin)
				if err != nil {
					return err
				}
				metas[twin], have[twin] = m, true
			}
		}
		cur := db.store.Twins.Current(gid)
		if !have[cur] {
			return fmt.Errorf("rda: degraded group %d bitmap points at dead twin %d", g, cur)
		}
		if metas[cur].State != disk.StateCommitted {
			return fmt.Errorf("rda: group %d current twin %d in state %s, want committed",
				g, cur, metas[cur].State)
		}
		if !have[1-cur] {
			// Degraded group whose other twin lost every slot: the
			// surviving current twin carried the whole check.
			continue
		}
		other := metas[1-cur]
		switch other.State {
		case disk.StateObsolete, disk.StateInvalid:
			// Legal Figure 8 leftovers.
		case disk.StateWorking:
			return fmt.Errorf("rda: group %d twin %d still in working state after restart", g, 1-cur)
		case disk.StateCommitted:
			// Both committed: the bitmap must have picked the Figure 7
			// winner — the larger timestamp, ties favouring twin 0.
			wins := metas[cur].Timestamp > other.Timestamp ||
				(metas[cur].Timestamp == other.Timestamp && cur == 0)
			if !wins {
				return fmt.Errorf("rda: group %d bitmap picked twin %d (ts %d) over twin %d (ts %d)",
					g, cur, metas[cur].Timestamp, 1-cur, other.Timestamp)
			}
		default:
			return fmt.Errorf("rda: group %d twin %d in illegal state %s", g, 1-cur, other.State)
		}
	}
	return nil
}
