package rda

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestScrubStepWalksWholeArray drives ScrubStep by hand: steps advance a
// cursor, the final step reports cycle completion, and planted latent
// errors anywhere in the array are repaired along the way.
func TestScrubStepWalksWholeArray(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.ScrubBatchGroups = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make(map[PageID][]byte)
	tx := mustBegin(t, db)
	for p := PageID(0); p < PageID(db.NumPages()); p++ {
		img := fillPage(db, byte(p+3))
		if err := tx.WritePage(p, img); err != nil {
			t.Fatal(err)
		}
		imgs[p] = img
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []PageID{2, 21, 44} {
		if err := db.CorruptBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	steps := 0
	total := &ScrubReport{}
	for {
		rep, done, err := db.ScrubStep(0)
		if err != nil {
			t.Fatal(err)
		}
		total.add(rep)
		steps++
		if done {
			break
		}
		if steps > 1000 {
			t.Fatal("scrub cycle never completed")
		}
	}
	groups := db.NumPages() / cfg.DataDisks
	if steps != (groups+cfg.ScrubBatchGroups-1)/cfg.ScrubBatchGroups {
		t.Fatalf("cycle took %d steps for %d groups at batch %d", steps, groups, cfg.ScrubBatchGroups)
	}
	if total.GroupsScanned != groups || total.GroupsSkipped != 0 {
		t.Fatalf("scanned %d skipped %d, want %d scanned", total.GroupsScanned, total.GroupsSkipped, groups)
	}
	if total.LatentErrors != 3 || total.Repaired != 3 {
		t.Fatalf("report %+v, want 3 latent / 3 repaired", total)
	}
	check := mustBegin(t, db)
	for p, want := range imgs {
		got, err := check.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d wrong after online scrub", p)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.ScrubbedGroups < int64(groups) || s.ScrubRepairs != 3 || s.CorruptBlocksDetected < 3 {
		t.Fatalf("integrity counters %+v, want ≥%d scrubbed / 3 repairs / ≥3 detected", s, groups)
	}
}

// TestScrubStepSkipsDirtyGroup checks the online scrubber's latching
// contract: a group holding an in-flight no-UNDO-logging steal is
// skipped (not an error, not blocked on) and picked up again once the
// transaction finishes.
func TestScrubStepSkipsDirtyGroup(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2 // steal immediately
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 0xAB)); err != nil {
		t.Fatal(err)
	}
	// Evict page 0 so its group goes dirty on disk.
	if _, err := tx.ReadPage(8); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.ReadPage(16); err != nil {
		t.Fatal(err)
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Dirty {
		t.Skip("setup failed to dirty group 0")
	}
	total := &ScrubReport{}
	for {
		rep, done, err := db.ScrubStep(0)
		if err != nil {
			t.Fatal(err)
		}
		total.add(rep)
		if done {
			break
		}
	}
	if total.GroupsSkipped == 0 {
		t.Fatalf("scrub cycle skipped nothing with a dirty group present: %+v", total)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	res := <-db.StartScrub()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Report.GroupsSkipped != 0 {
		t.Fatalf("post-abort cycle still skipped %d groups", res.Report.GroupsSkipped)
	}
}

// TestOnlineScrubConcurrentWithTransactions is the tentpole's liveness
// property: a background scrub cycle completes while transactions
// commit concurrently, repairs planted corruption, and no transaction
// ever observes corrupt or torn data.
func TestOnlineScrubConcurrentWithTransactions(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.Workers = 4
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed every page with a self-identifying pattern.
	tx := mustBegin(t, db)
	for p := PageID(0); p < PageID(db.NumPages()); p++ {
		if err := tx.WritePage(p, fillPage(db, byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []PageID{3, 18, 33} {
		if err := db.CorruptBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	// Writers bang on disjoint page ranges while the scrubber runs.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := PageID(w * 12)
			for round := 0; round < 20; round++ {
				tx, err := db.Begin()
				if err != nil {
					errs <- err
					return
				}
				p := base + PageID(round%12)
				if err := tx.WritePage(p, fillPage(db, byte(p)^0x40)); err != nil {
					tx.Abort()
					errs <- err
					return
				}
				if got, err := tx.ReadPage(p); err != nil || !bytes.Equal(got, fillPage(db, byte(p)^0x40)) {
					tx.Abort()
					errs <- errors.New("transaction read wrong contents during scrub")
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Scrub continuously until the writers finish: groups dirtied by
	// in-flight steals are skipped, so keep cycling.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	cycles := 0
scrubbing:
	for {
		res := <-db.StartScrub()
		if res.Err != nil {
			t.Error(res.Err)
			break
		}
		cycles++
		select {
		case <-done:
			break scrubbing
		default:
		}
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Fatal("no scrub cycle completed")
	}
	// One final quiesced pass: the planted corruption must be gone.
	rep, err := db.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentErrors != 0 {
		t.Fatalf("latent errors survived %d online scrub cycles: %+v", cycles, rep)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.ScrubRepairs == 0 || s.UnrecoverableCorruption != 0 {
		t.Fatalf("integrity counters %+v, want repairs > 0 and no unrecoverables", s)
	}
}

// TestUnrecoverableCorruptionDegraded plants a checksum failure on a
// surviving block of a group that already lost a member to a dead disk:
// the read must refuse with ErrUnrecoverableCorruption — never serve
// reconstructed-from-garbage bytes — and count the refusal.
func TestUnrecoverableCorruptionDegraded(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	for p := PageID(0); p < 8; p++ {
		if err := tx.WritePage(p, fillPage(db, byte(p+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Evict everything, kill the disk holding page 0, then corrupt a
	// surviving member of the same group.
	evict := mustBegin(t, db)
	for p := PageID(20); p < 24; p++ {
		if _, err := evict.ReadPage(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := evict.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.FailDisk(db.arr.DataLoc(0).Disk); err != nil {
		t.Fatal(err)
	}
	// Find a group member of page 0 stored on a healthy disk.
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	var survivor PageID = 1
	for _, q := range info.Pages {
		if q != 0 {
			survivor = q
			break
		}
	}
	if err := db.CorruptBlock(survivor); err != nil {
		t.Fatal(err)
	}
	check := mustBegin(t, db)
	if _, err := check.ReadPage(0); !errors.Is(err, ErrUnrecoverableCorruption) {
		t.Fatalf("degraded read of page 0 = %v, want ErrUnrecoverableCorruption", err)
	}
	check.Abort()
	if s := db.Stats(); s.UnrecoverableCorruption == 0 || s.CorruptBlocksDetected == 0 {
		t.Fatalf("integrity counters %+v, want unrecoverable and detected > 0", s)
	}
}
