package rda

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/diskarray"
)

// qparityConfig is smallConfig with the second redundancy equation on.
func qparityConfig() Config {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.QParity = true
	return cfg
}

// TestQParityDoubleFailureNoLoss sweeps every disk pair on a P+Q array:
// two simultaneous deaths stay within the redundancy budget, so the
// array serves double-degraded, media recovery loses nothing, and every
// page comes back bit exact.
func TestQParityDoubleFailureNoLoss(t *testing.T) {
	probe, err := Open(qparityConfig())
	if err != nil {
		t.Fatal(err)
	}
	nd := probe.NumDisks()
	for dA := 0; dA < nd; dA++ {
		for dB := dA + 1; dB < nd; dB++ {
			db, err := Open(qparityConfig())
			if err != nil {
				t.Fatal(err)
			}
			imgs := loadAll(t, db)
			if err := db.FailDisk(dA); err != nil {
				t.Fatalf("pair (%d,%d): first failure: %v", dA, dB, err)
			}
			if err := db.FailDisk(dB); err != nil {
				t.Fatalf("pair (%d,%d): second failure: %v", dA, dB, err)
			}
			if h := db.Health(); h != diskarray.DoubleDegraded {
				t.Fatalf("pair (%d,%d): health = %v, want DoubleDegraded", dA, dB, h)
			}
			// Double-degraded serving: every page is still readable
			// through the surviving redundancy before any repair runs.
			tx := mustBegin(t, db)
			for p, want := range imgs {
				got, err := tx.ReadPage(p)
				if err != nil {
					t.Fatalf("pair (%d,%d): double-degraded read of page %d: %v", dA, dB, p, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("pair (%d,%d): double-degraded read of page %d wrong", dA, dB, p)
				}
			}
			tx.Abort()
			lost, err := db.RepairDisks(dA, dB)
			if err != nil {
				t.Fatalf("pair (%d,%d): repair: %v", dA, dB, err)
			}
			if len(lost) != 0 {
				t.Fatalf("pair (%d,%d): P+Q repair lost groups %v", dA, dB, lost)
			}
			checkAfterDoubleFailure(t, db, imgs, nil)
		}
	}
}

// TestQParityTwoDriveOnlineRebuild recovers from two simultaneous deaths
// with the online rebuild (two replacement drives reconstructed batch by
// batch) instead of offline media recovery.
func TestQParityTwoDriveOnlineRebuild(t *testing.T) {
	db, err := Open(qparityConfig())
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	if err := db.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := db.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := db.RebuildStep(2)
		if err != nil {
			t.Fatalf("rebuild step %d: %v", steps, err)
		}
		steps++
		if done {
			break
		}
		if steps > 10*db.NumGroups() {
			t.Fatalf("rebuild did not converge after %d steps", steps)
		}
	}
	if h := db.Health(); h != diskarray.Healthy {
		t.Fatalf("health after rebuild = %v, want Healthy", h)
	}
	for p, want := range imgs {
		got, err := db.PeekPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d wrong after two-drive rebuild", p)
		}
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestQParityTripleLossFails exhausts the two-equation budget: the third
// death fails the array, reads of pages beyond the redundancy surface
// the typed ErrArrayFailed (never fabricated data), and maintenance
// entry points refuse with the same signal.
func TestQParityTripleLossFails(t *testing.T) {
	db, err := Open(qparityConfig())
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	for d := 0; d < 3; d++ {
		if err := db.FailDisk(d); err != nil {
			t.Fatal(err)
		}
	}
	if h := db.Health(); h != diskarray.Failed {
		t.Fatalf("health = %v, want Failed", h)
	}
	refused := 0
	for p, want := range imgs {
		tx := mustBegin(t, db)
		got, err := tx.ReadPage(p)
		switch {
		case err == nil:
			if !bytes.Equal(got, want) {
				t.Fatalf("page %d served fabricated data on a failed array", p)
			}
		case errors.Is(err, ErrArrayFailed):
			refused++
		default:
			t.Fatalf("page %d: err = %v, want ErrArrayFailed or success", p, err)
		}
		_ = tx.Abort()
	}
	if refused == 0 {
		t.Fatalf("three dead disks, yet every page was served")
	}
	if _, err := db.RebuildStep(0); !errors.Is(err, ErrArrayFailed) {
		t.Fatalf("rebuild on failed array: err = %v, want ErrArrayFailed", err)
	}
}

// TestQParityDegradedScrubRepairs is the dual-fault repair the second
// equation exists for: with one disk dead AND a silently corrupt block
// in the same group, a single-parity array can only refuse
// (ErrUnrecoverableCorruption) — the P+Q array scrubs the corruption
// away while still degraded and keeps serving.
func TestQParityDegradedScrubRepairs(t *testing.T) {
	cfg := qparityConfig()
	cfg.BufferFrames = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := make(map[PageID][]byte)
	tx := mustBegin(t, db)
	for p := PageID(0); p < 8; p++ {
		img := fillPage(db, byte(p+1))
		imgs[p] = img
		if err := tx.WritePage(p, img); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Evict the committed pages, then kill page 0's disk and corrupt a
	// surviving member of its group: the dual fault of the test name.
	evict := mustBegin(t, db)
	for p := PageID(20); p < 24; p++ {
		if _, err := evict.ReadPage(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := evict.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.FailDisk(db.arr.DataLoc(0).Disk); err != nil {
		t.Fatal(err)
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	var survivor PageID = 1
	for _, q := range info.Pages {
		if q != 0 {
			survivor = q
			break
		}
	}
	if err := db.CorruptBlock(survivor); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Scrub()
	if err != nil {
		t.Fatalf("degraded scrub on a P+Q array: %v", err)
	}
	if rep.LatentErrors == 0 || rep.Repaired == 0 {
		t.Fatalf("scrub report %+v, want the planted corruption found and repaired", rep)
	}
	// The dead member and the repaired survivor both read back exactly.
	check := mustBegin(t, db)
	for _, p := range []PageID{0, survivor} {
		got, err := check.ReadPage(p)
		if err != nil {
			t.Fatalf("page %d after degraded scrub: %v", p, err)
		}
		if !bytes.Equal(got, imgs[p]) {
			t.Fatalf("page %d wrong after degraded scrub repair", p)
		}
	}
	check.Abort()
	if s := db.Stats(); s.UnrecoverableCorruption != 0 {
		t.Fatalf("integrity counters %+v, want no unrecoverable refusals", s)
	}
}
