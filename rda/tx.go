package rda

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/buffer"
	"repro/internal/latch"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/record"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Tx is a transaction handle.  A Tx must be used from one goroutine at a
// time and is invalid after Commit, Abort, a deadlock abort, or a crash.
// Different transactions may run on different goroutines concurrently;
// the engine serializes them with two-phase locks (logical conflicts) and
// per-parity-group latches (physical protocol steps), so transactions on
// disjoint groups proceed in parallel.
type Tx struct {
	db   *DB
	st   *txState
	done bool
}

// Begin starts a transaction.
func (db *DB) Begin() (*Tx, error) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.crashed {
		return nil, ErrCrashed
	}
	t := db.tm.Begin()
	st := &txState{
		t:             t,
		locks:         db.locks,
		beforePages:   make(map[page.PageID]page.Buf),
		beforeRecords: make(map[page.RecordID]record.Image),
		loggedRecords: make(map[page.RecordID]bool),
		stolenBefore:  make(map[page.PageID]page.Buf),
		stolenLogged:  make(map[page.PageID]bool),
	}
	db.mu.Lock()
	db.states[t.ID] = st
	db.mu.Unlock()
	return &Tx{db: db, st: st}, nil
}

// ID returns the transaction's identifier.
func (tx *Tx) ID() uint64 { return uint64(tx.st.t.ID) }

// CommitSeq returns the transaction's position in the engine's commit
// order, or 0 if it has not committed.  Under strict two-phase locking
// the commit order is a valid serialization order: any two conflicting
// transactions hold their conflicting locks to EOT, so the one that
// commits first precedes the other in every conflict.  The concurrency
// oracle replays concurrent histories in this order on a single-threaded
// reference engine and diffs the results.
func (tx *Tx) CommitSeq() int64 { return tx.st.commitSeq }

// check validates the handle and page id.
func (tx *Tx) check(p PageID) error {
	if tx.done {
		return ErrTxDone
	}
	if int(p) >= tx.db.NumPages() {
		return fmt.Errorf("%w: %d of %d", ErrBadPage, p, tx.db.NumPages())
	}
	return nil
}

// acquire takes a two-phase lock, translating a deadlock-victim verdict
// into an automatic abort of this transaction.  Lock waits happen with
// no gate or latch held — a waiter blocks only other lock-table users,
// never recovery or disjoint-group transactions — and go against the
// manager captured at Begin, so a handle that outlives a crash cleans up
// against the (closed, no-op) manager it actually used.
func (tx *Tx) acquire(res lock.Resource, mode lock.Mode) error {
	err := tx.st.locks.Acquire(tx.st.t.ID, res, mode)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, lock.ErrDeadlock):
		if abortErr := tx.Abort(); abortErr != nil && !errors.Is(abortErr, ErrTxDone) {
			return fmt.Errorf("rda: deadlock abort failed: %w", abortErr)
		}
		return fmt.Errorf("%w: %v", ErrDeadlock, err)
	case errors.Is(err, lock.ErrClosed):
		tx.done = true
		return ErrCrashed
	default:
		return err
	}
}

// lockResource returns the resource to lock for a page/record access
// under the configured granularity.
func (tx *Tx) pageResource(p PageID) lock.Resource {
	return lock.PageResource(page.PageID(p))
}

// opLatched runs one page operation under the shared gate and the page's
// group latch, with the engine's self-healing retry: an I/O error that
// trips degraded-mode entry (healWorld) is retried, now served from
// redundancy.  One retry per health transition — a Q-parity array can
// lose a second disk during the first retry — and healWorld reports
// true only on a genuine transition, so the loop is bounded by the loss
// budget.
func (tx *Tx) opLatched(p page.PageID, fn func(h *latch.Held) error) error {
	err := tx.db.underGroup(p, fn)
	for err != nil && !errors.Is(err, ErrCrashed) && tx.db.healWorld() {
		err = tx.db.underGroup(p, fn)
	}
	if errors.Is(err, ErrCrashed) {
		tx.done = true
	}
	return err
}

// --- Page-granularity operations (PageLogging) ----------------------------

// ReadPage returns a copy of page p under a shared lock.
func (tx *Tx) ReadPage(p PageID) ([]byte, error) {
	if err := tx.check(p); err != nil {
		return nil, err
	}
	if tx.db.cfg.Logging != PageLogging {
		return nil, fmt.Errorf("%w: ReadPage requires PageLogging", ErrWrongMode)
	}
	if err := tx.acquire(tx.pageResource(p), lock.Shared); err != nil {
		return nil, err
	}
	pid := page.PageID(p)
	var out []byte
	err := tx.opLatched(pid, func(h *latch.Held) error {
		f, err := tx.db.pool.Get(pid, tx.db.evictGuard(h))
		if err != nil {
			return err
		}
		defer tx.db.pool.Unpin(pid)
		out = f.Data.Clone()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WritePage replaces page p's contents under an exclusive lock.  data
// must be exactly PageSize bytes.
func (tx *Tx) WritePage(p PageID, data []byte) error {
	if err := tx.check(p); err != nil {
		return err
	}
	if tx.db.cfg.Logging != PageLogging {
		return fmt.Errorf("%w: WritePage requires PageLogging", ErrWrongMode)
	}
	if len(data) != tx.db.cfg.PageSize {
		return fmt.Errorf("%w (%d bytes, want %d)", page.ErrBadSize, len(data), tx.db.cfg.PageSize)
	}
	if err := tx.acquire(tx.pageResource(p), lock.Exclusive); err != nil {
		return err
	}
	pid := page.PageID(p)
	return tx.opLatched(pid, func(h *latch.Held) error {
		f, err := tx.db.pool.Get(pid, tx.db.evictGuard(h))
		if err != nil {
			return err
		}
		defer tx.db.pool.Unpin(pid)
		tx.firstModifyPage(pid, f.Data)
		copy(f.Data, data)
		tx.db.pool.MarkDirty(pid, tx.st.t.ID)
		tx.st.t.Modified[pid] = struct{}{}
		return nil
	})
}

// firstModifyPage retains the page's current contents as the in-memory
// before-image the recovery schemes work from; without RDA recovery the
// before-image also goes to the log immediately (classic UNDO logging).
func (tx *Tx) firstModifyPage(p page.PageID, cur page.Buf) {
	st := tx.st
	st.mu.Lock()
	if _, ok := st.beforePages[p]; ok {
		st.mu.Unlock()
		return
	}
	st.beforePages[p] = cur.Clone()
	st.mu.Unlock()
	// Every update transaction brackets itself with BOT...EOT on the log
	// (the model charges these for all update transactions); RDA only
	// avoids the before-images.
	tx.db.ensureBOT(st)
	if !tx.db.cfg.RDA {
		tx.db.ensureUndoLogged(st, p)
	}
}

// --- Record-granularity operations (RecordLogging) ------------------------

// recordView pins page p and returns its record view; the caller must
// Unpin.
func (tx *Tx) recordView(p page.PageID, h *latch.Held) (*record.Page, error) {
	f, err := tx.db.pool.Get(p, tx.db.evictGuard(h))
	if err != nil {
		return nil, err
	}
	v, err := record.View(f.Data)
	if err != nil {
		tx.db.pool.Unpin(p)
		return nil, err
	}
	return v, nil
}

// ReadRecord returns a copy of the record at (p, slot) under a shared
// record lock, or record.ErrEmptySlot if the slot is free.
func (tx *Tx) ReadRecord(p PageID, slot int) ([]byte, error) {
	if err := tx.checkRecord(p); err != nil {
		return nil, err
	}
	if err := tx.acquire(lock.RecordResource(page.PageID(p), slot), lock.Shared); err != nil {
		return nil, err
	}
	pid := page.PageID(p)
	var out []byte
	err := tx.opLatched(pid, func(h *latch.Held) error {
		v, err := tx.recordView(pid, h)
		if err != nil {
			return err
		}
		defer tx.db.pool.Unpin(pid)
		out, err = v.Read(slot)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteRecord stores rec at (p, slot) under an exclusive record lock,
// inserting or overwriting.
func (tx *Tx) WriteRecord(p PageID, slot int, rec []byte) error {
	if err := tx.checkRecord(p); err != nil {
		return err
	}
	if err := tx.acquire(lock.RecordResource(page.PageID(p), slot), lock.Exclusive); err != nil {
		return err
	}
	pid := page.PageID(p)
	return tx.opLatched(pid, func(h *latch.Held) error {
		return tx.writeRecordLatched(h, pid, slot, rec, true)
	})
}

// InsertRecord stores rec in a free slot of page p and returns the slot
// index, or record.ErrFull if the page has no free slot.  The slot is
// chosen under its exclusive lock, so concurrent inserters never collide
// (a candidate that another transaction claims first is skipped; the
// probe locks are retained until EOT, as strict two-phase locking
// requires).  The lock wait itself happens with no latch held — only the
// re-check and the write run in the latched section.
func (tx *Tx) InsertRecord(p PageID, rec []byte) (int, error) {
	if err := tx.checkRecord(p); err != nil {
		return 0, err
	}
	pid := page.PageID(p)
	slots := tx.db.RecordsPerPage()
	for slot := 0; slot < slots; slot++ {
		// Peek (uncharged, unlocked) to skip obviously taken slots.
		var used bool
		err := tx.opLatched(pid, func(h *latch.Held) error {
			v, err := tx.recordView(pid, h)
			if err != nil {
				return err
			}
			defer tx.db.pool.Unpin(pid)
			used = v.Used(slot)
			return nil
		})
		if err != nil {
			return 0, err
		}
		if used {
			continue
		}
		// Lock the candidate, then re-check under the lock.
		if err := tx.acquire(lock.RecordResource(pid, slot), lock.Exclusive); err != nil {
			return 0, err
		}
		inserted := false
		err = tx.opLatched(pid, func(h *latch.Held) error {
			v, err := tx.recordView(pid, h)
			if err != nil {
				return err
			}
			stillFree := !v.Used(slot)
			tx.db.pool.Unpin(pid)
			if !stillFree {
				return nil // raced with a concurrent inserter
			}
			if err := tx.writeRecordLatched(h, pid, slot, rec, true); err != nil {
				return err
			}
			inserted = true
			return nil
		})
		if err != nil {
			return 0, err
		}
		if inserted {
			return slot, nil
		}
	}
	return 0, record.ErrFull
}

// DeleteRecord removes the record at (p, slot) under an exclusive lock.
func (tx *Tx) DeleteRecord(p PageID, slot int) error {
	if err := tx.checkRecord(p); err != nil {
		return err
	}
	if err := tx.acquire(lock.RecordResource(page.PageID(p), slot), lock.Exclusive); err != nil {
		return err
	}
	pid := page.PageID(p)
	return tx.opLatched(pid, func(h *latch.Held) error {
		return tx.writeRecordLatched(h, pid, slot, nil, false)
	})
}

// writeRecordLatched performs the write/delete with the page's group
// latch (h) and the record's two-phase lock held.
func (tx *Tx) writeRecordLatched(h *latch.Held, p page.PageID, slot int, rec []byte, present bool) error {
	// Before another transaction is allowed to touch a page that sits in
	// a parity group dirtied BY THAT PAGE, the no-UNDO-logging steal must
	// be demoted to a logged one; otherwise a later twin-parity undo of
	// the owning transaction would roll the whole page back past this
	// transaction's records.  See DB.demoteNoLogSteal.
	if tx.db.cfg.RDA {
		g := tx.db.arr.GroupOf(p)
		if e, dirty := tx.db.store.Dirty.Lookup(g); dirty && e.Page == p && e.Txn != tx.st.t.ID {
			if err := tx.db.demoteNoLogSteal(g, e); err != nil {
				return err
			}
		}
	}
	v, err := tx.recordView(p, h)
	if err != nil {
		return err
	}
	defer tx.db.pool.Unpin(p)
	st := tx.st
	rid := page.RecordID{Page: p, Slot: slot}
	st.mu.Lock()
	_, snapped := st.beforeRecords[rid]
	st.mu.Unlock()
	if !snapped {
		img, err := v.Snapshot(slot)
		if err != nil {
			return err
		}
		st.mu.Lock()
		st.beforeRecords[rid] = img
		st.mu.Unlock()
		tx.db.ensureBOT(st)
		if !tx.db.cfg.RDA {
			st.mu.Lock()
			tx.db.log.Append(wal.Record{
				Type: wal.TypeBeforeImage, Txn: st.t.ID, Page: p, Slot: int32(slot),
				Image: record.EncodeImage(img),
			})
			st.loggedRecords[rid] = true
			st.mu.Unlock()
		}
	}
	if present {
		if err := v.Write(slot, rec); err != nil {
			return err
		}
	} else if err := v.Delete(slot); err != nil {
		return err
	}
	tx.db.pool.MarkDirty(p, tx.st.t.ID)
	tx.st.t.Modified[p] = struct{}{}
	tx.st.t.ModifiedRecords[rid] = struct{}{}
	return nil
}

func (tx *Tx) checkRecord(p PageID) error {
	if err := tx.check(p); err != nil {
		return err
	}
	if tx.db.cfg.Logging != RecordLogging {
		return fmt.Errorf("%w: record operations require RecordLogging", ErrWrongMode)
	}
	return nil
}

// --- EOT -------------------------------------------------------------------

// Commit ends the transaction successfully.  Under FORCE all of its
// modified pages are written to the database first; after-images and the
// EOT record go to the log; RDA working parities become current.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	db := tx.db
	err := db.commitAttempt(tx)
	for err != nil && !errors.Is(err, ErrCrashed) && db.healWorld() {
		// A disk loss mid-commit trips degraded mode; the retry re-runs
		// EOT through the degraded protocol.  The lazy log appends are
		// idempotent and a duplicated after-image is harmless (REDO
		// replays images in order, so the last one wins).  One retry per
		// health transition: a second disk can die during the first
		// retry on a Q-parity array.
		err = db.commitAttempt(tx)
	}
	if errors.Is(err, ErrCrashed) {
		tx.done = true
		return ErrCrashed
	}
	if err != nil {
		return err
	}
	tx.done = true
	if db.forcer != nil && tx.st.eotLSN != 0 {
		// Group commit: wait (outside the gate and all latches, so other
		// transactions keep running) for a batched force to cover the
		// EOT.  If a crash slipped in between the latched EOT section and
		// the force, the unforced tail is gone and the transaction is a
		// loser — report ErrCrashed, never success, so no transaction is
		// acknowledged whose fold-in missed the platter.
		db.forcer.Force(tx.st.eotLSN)
		db.gate.RLock()
		crashed := db.crashed
		db.gate.RUnlock()
		if crashed {
			return ErrCrashed
		}
	}
	// The automatic action-consistent checkpoint flushes the whole pool,
	// which needs the exclusive gate — taken after the commit's shared
	// section ends.
	ckptErr := db.maybeAutoCheckpoint()
	tx.st.locks.ReleaseAll(tx.st.t.ID)
	return ckptErr
}

// commitAttempt is one pass of EOT processing under the shared gate.
// The transaction's modified groups are latched (all of them, ascending)
// for the whole of EOT: that freezes the group's steal state — every
// concurrent mutator of this transaction's bookkeeping (eviction steals,
// demotions by group-sharers) runs under one of these latches — and makes
// the flush + log + twin-flip sequence atomic with respect to every other
// transaction touching the same groups.
func (db *DB) commitAttempt(tx *Tx) error {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.crashed {
		return ErrCrashed
	}
	st := tx.st
	t := st.t
	updater := len(t.Modified) > 0

	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(db.groupsOf(t.Modified)...)

	if updater && db.cfg.EOT == Force {
		if err := db.flushForce(st); err != nil {
			return fmt.Errorf("rda: force at EOT: %w", err)
		}
	}
	if updater {
		db.ensureBOT(st)
		if err := db.appendAfterImages(st); err != nil {
			return err
		}
		eot := wal.Record{Type: wal.TypeEOT, Txn: t.ID, Slot: wal.NoSlot}
		if db.forcer != nil {
			// Group commit: the EOT lands in the volatile log tail and
			// Commit waits for a batched force to cover it before
			// acknowledging.  The commit point moves to that force — a
			// crash beforehand drops the record and the transaction is a
			// loser.
			st.eotLSN = db.log.AppendUnforced(eot)
			if db.store.Dirty != nil && len(db.store.Dirty.GroupsOf(t.ID)) > 0 {
				// The transaction owns parity-covered (no-UNDO-logging)
				// steals.  CommitGroups below promotes their working twins,
				// which surrenders the twin-pair undo path — and once the
				// group reads clean, a sharer's RMW may overwrite the old
				// committed twin.  If the crash then dropped the unforced
				// EOT, the demoted loser would have neither parity nor log
				// undo cover.  So this commit point must be durable before
				// promotion: force inline and skip the batched wait.  Only
				// clean-group commits — buffered ¬FORCE transactions and
				// full-stripe FORCE flushes, the common cases the window
				// targets — ride the batched force.
				db.log.Force(st.eotLSN)
				st.eotLSN = 0
			}
		} else {
			db.log.Append(eot)
		}
	}
	// The EOT record is the commit point; everything after is volatile
	// bookkeeping.  The serialization position is assigned while the
	// groups are still latched, so it agrees with the order in which
	// conflicting transactions passed their commit points.
	st.commitSeq = db.commitSeq.Add(1)
	func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		db.store.CommitGroups(t)
	}()
	db.clearModifiers(t)
	db.tm.Finish(t.ID, txn.Committed)
	db.mu.Lock()
	delete(db.states, t.ID)
	db.truncateLogLocked()
	db.mu.Unlock()
	return nil
}

// appendAfterImages writes the transaction's REDO material: page images
// (page mode) or record images (record mode) of everything it modified.
func (db *DB) appendAfterImages(st *txState) error {
	t := st.t
	if db.cfg.Logging == PageLogging {
		for _, p := range sortedPages(t.Modified) {
			img, err := db.currentImage(p)
			if err != nil {
				return err
			}
			db.logRedo(wal.Record{
				Type: wal.TypeAfterImage, Txn: t.ID, Page: p, Slot: wal.NoSlot, Image: img,
			})
		}
		return nil
	}
	for _, rid := range sortedRecordIDs(t.ModifiedRecords) {
		img, err := db.currentImage(rid.Page)
		if err != nil {
			return err
		}
		v, err := record.View(page.Buf(img))
		if err != nil {
			return err
		}
		snap, err := v.Snapshot(rid.Slot)
		if err != nil {
			return err
		}
		db.logRedo(wal.Record{
			Type: wal.TypeAfterImage, Txn: t.ID, Page: rid.Page, Slot: int32(rid.Slot),
			Image: record.EncodeImage(snap),
		})
	}
	return nil
}

// currentImage returns the latest contents of page p: the buffered frame
// when resident, the on-disk page otherwise (the page was stolen and not
// re-referenced; the read is charged, as any I/O).  The caller holds p's
// group latch, which keeps the frame from being evicted or mutated.
func (db *DB) currentImage(p page.PageID) (page.Buf, error) {
	if f := db.pool.Frame(p); f != nil {
		return f.Data.Clone(), nil
	}
	return db.storeRead(p)
}

// clearModifiers removes the finished transaction from every resident
// frame's modifier set; frames still dirty afterwards carry committed
// residue (see buffer.Frame.Residue).  The caller holds the latches of
// every modified group.
func (db *DB) clearModifiers(t *txn.Txn) {
	for p := range t.Modified {
		f := db.pool.Frame(p)
		if f == nil {
			continue
		}
		delete(f.Modifiers, t.ID)
		if f.Dirty {
			f.Residue = true
		}
	}
}

// Abort rolls the transaction back:
//
//   - pages written back without UNDO logging are restored from twin
//     parity (D_old = (P ⊕ P′) ⊕ D_new) and their working parities
//     invalidated;
//   - pages written back through the logging path are restored on disk
//     from the retained before-images (record mode restores only this
//     transaction's records);
//   - modified pages never stolen are repaired in the buffer alone.
//
// The paper's model charges a rollback with reading the log back to the
// BOT record; the engine charges that scan explicitly.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	db := tx.db
	err := db.abortAttempt(tx)
	for err != nil && !errors.Is(err, ErrCrashed) && db.healWorld() {
		// A disk loss mid-rollback trips degraded mode; the retry runs
		// the remaining undo through the degraded protocol (groups the
		// first pass finished are already clean, and the health sync
		// demoted any dirty group on the lost disk to the idempotent
		// logged-restore path).  One retry per health transition, as in
		// Commit.
		err = db.abortAttempt(tx)
	}
	if errors.Is(err, ErrCrashed) {
		tx.done = true
		return ErrCrashed
	}
	if err != nil {
		return fmt.Errorf("rda: abort txn %d: %w", tx.st.t.ID, err)
	}
	tx.done = true
	tx.st.locks.ReleaseAll(tx.st.t.ID)
	return nil
}

// abortAttempt is one pass of rollback under the shared gate, holding
// the latches of every modified group for the same atomicity reasons as
// commitAttempt.
func (db *DB) abortAttempt(tx *Tx) error {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if db.crashed {
		return ErrCrashed
	}
	st := tx.st
	t := st.t

	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(db.groupsOf(t.Modified)...)

	if err := db.rollback(st); err != nil {
		return err
	}
	st.mu.Lock()
	bot := st.botLSN
	st.mu.Unlock()
	if bot != 0 {
		// Charged backward read of the log to the BOT record (the
		// model's c_b component).
		db.log.ChargeScan(bot, wal.LSN(db.log.Len()))
		db.log.Append(wal.Record{Type: wal.TypeAbort, Txn: t.ID, Slot: wal.NoSlot})
	}
	db.tm.Finish(t.ID, txn.Aborted)
	db.mu.Lock()
	delete(db.states, t.ID)
	db.mu.Unlock()
	return nil
}

// rollback performs the disk- and buffer-level undo for an abort.  The
// caller holds the latches of every group the transaction modified, so
// the steal bookkeeping read here is frozen.
func (db *DB) rollback(st *txState) error {
	t := st.t

	// 1. Parity undo of groups this transaction dirtied.
	if db.store.Dirty != nil {
		for _, g := range db.store.Dirty.GroupsOf(t.ID) {
			p, _, err := db.store.UndoGroupViaParity(g)
			if err != nil {
				return err
			}
			// Drop any buffered copy; the restored version is on disk.
			db.pool.Discard(p)
		}
	}

	st.mu.Lock()
	stolenLogged := sortedBoolPages(st.stolenLogged)
	viaParity := make(map[page.PageID]bool, len(st.stolenBefore))
	for p := range st.stolenBefore {
		viaParity[p] = true
	}
	st.mu.Unlock()

	// 2. Write-through restore of pages stolen via the logging path, in
	// page order so abort I/O sequences are deterministic.
	for _, p := range stolenLogged {
		restored, err := db.restoreStolenLogged(st, p)
		if err != nil {
			return err
		}
		f := db.pool.Frame(p)
		if f == nil {
			continue
		}
		delete(f.Modifiers, t.ID)
		if len(f.Modifiers) == 0 {
			// Nobody else's uncommitted work lives here; the restored
			// disk copy is authoritative.
			db.pool.Discard(p)
			continue
		}
		// Other active transactions' changes are in this frame (record
		// locking).  Repair only this transaction's part in place and
		// refresh the disk version to the just-restored image so later
		// parity small-writes use the correct old contents.
		if err := db.repairFrameData(st, f); err != nil {
			return err
		}
		if f.DiskVersion != nil {
			f.DiskVersion = restored.Clone()
		}
	}

	// 3. In-buffer repair of modified pages never stolen.
	for p := range t.Modified {
		if viaParity[p] {
			continue
		}
		st.mu.Lock()
		logged := st.stolenLogged[p]
		st.mu.Unlock()
		if logged {
			continue
		}
		f := db.pool.Frame(p)
		if f == nil {
			continue // evicted clean, or never dirtied
		}
		if _, mine := f.Modifiers[t.ID]; !mine {
			continue
		}
		if err := db.repairFrame(st, f); err != nil {
			return err
		}
	}
	return nil
}

// sortedPages returns a page set's members in ascending order.  Engine
// loops that issue I/O iterate sets in sorted order so that identically
// seeded runs produce identical block-write sequences — what makes a
// crash-point schedule (crash at write k) replayable.
func sortedPages(set map[page.PageID]struct{}) []page.PageID {
	out := make([]page.PageID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedBoolPages(set map[page.PageID]bool) []page.PageID {
	out := make([]page.PageID, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedRecordIDs(set map[page.RecordID]struct{}) []page.RecordID {
	out := make([]page.RecordID, 0, len(set))
	for rid := range set {
		out = append(out, rid)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Page != out[j].Page {
			return out[i].Page < out[j].Page
		}
		return out[i].Slot < out[j].Slot
	})
	return out
}

// restoreStolenLogged writes page p's pre-transaction state back to disk
// and returns the restored disk image.
func (db *DB) restoreStolenLogged(st *txState, p page.PageID) (page.Buf, error) {
	if db.cfg.Logging == PageLogging {
		st.mu.Lock()
		img, ok := st.beforePages[p]
		st.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("rda: missing before-image for page %d", p)
		}
		restored := img.Clone()
		return restored, db.store.WriteLogged(p, restored, nil)
	}
	// Record mode: restore only this transaction's records on the
	// current disk page, preserving other transactions' records.
	cur, err := db.storeRead(p)
	if err != nil {
		return nil, err
	}
	v, err := record.View(cur)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for rid, img := range st.beforeRecords {
		if rid.Page != p {
			continue
		}
		if err := v.Apply(rid.Slot, img); err != nil {
			return nil, err
		}
	}
	return cur, db.store.WriteLogged(p, cur, nil)
}

// repairFrameData rewinds this transaction's changes in a frame's data:
// the whole page in page mode, only this transaction's records in record
// mode (other transactions' changes stay).
func (db *DB) repairFrameData(st *txState, f *buffer.Frame) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if db.cfg.Logging == PageLogging {
		img, ok := st.beforePages[f.Page]
		if !ok {
			return nil
		}
		copy(f.Data, img)
		return nil
	}
	v, err := record.View(f.Data)
	if err != nil {
		return err
	}
	for rid, img := range st.beforeRecords {
		if rid.Page != f.Page {
			continue
		}
		if err := v.Apply(rid.Slot, img); err != nil {
			return err
		}
	}
	return nil
}

// repairFrame rewinds a never-stolen frame to this transaction's
// before-images and updates the frame bookkeeping.
func (db *DB) repairFrame(st *txState, f *buffer.Frame) error {
	t := st.t
	if err := db.repairFrameData(st, f); err != nil {
		return err
	}
	delete(f.Modifiers, t.ID)
	if len(f.Modifiers) == 0 {
		if f.DiskVersion != nil && f.Data.Equal(f.DiskVersion) {
			f.Dirty = false
			f.Residue = false
		} else if f.Dirty {
			// Whatever delta remains belongs to finished transactions.
			f.Residue = true
		}
	}
	return nil
}
