package rda

import (
	"bytes"
	"errors"
	"testing"
)

func TestScrubRepairsLatentErrors(t *testing.T) {
	for _, useRDA := range []bool{false, true} {
		cfg := smallConfig(PageLogging, Force, useRDA, DataStriping)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		imgs := make(map[PageID][]byte)
		tx := mustBegin(t, db)
		for p := PageID(0); p < 16; p++ {
			img := fillPage(db, byte(p+5))
			if err := tx.WritePage(p, img); err != nil {
				t.Fatal(err)
			}
			imgs[p] = img
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Inject latent sector errors in three different groups.
		for _, p := range []PageID{1, 6, 11} {
			if err := db.CorruptBlock(p); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := db.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatentErrors != 3 || rep.Repaired != 3 {
			t.Fatalf("rda=%v: scrub report %+v, want 3 latent / 3 repaired", useRDA, rep)
		}
		// All contents restored bit exactly.
		check := mustBegin(t, db)
		for p, want := range imgs {
			got, err := check.ReadPage(p)
			if err != nil {
				t.Fatalf("rda=%v: page %d unreadable after scrub: %v", useRDA, p, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("rda=%v: page %d corrupted after scrub", useRDA, p)
			}
		}
		if err := check.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatal(err)
		}
		// A clean scrub finds nothing.
		rep, err = db.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if rep.LatentErrors != 0 || rep.Repaired != 0 || rep.ParityRewritten != 0 {
			t.Fatalf("rda=%v: second scrub found phantom damage: %+v", useRDA, rep)
		}
	}
}

func TestScrubRequiresQuiescence(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	tx := mustBegin(t, db)
	// Write enough to force a no-log steal (dirty group on disk).
	for p := PageID(0); p < 10; p++ {
		if err := tx.WritePage(p*4, fillPage(db, byte(p))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Scrub(); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy while groups are dirty", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scrub(); err != nil {
		t.Fatalf("scrub after quiesce: %v", err)
	}
}

func TestBulkLoadFullStripes(t *testing.T) {
	for _, layout := range []Layout{DataStriping, ParityStriping} {
		cfg := smallConfig(PageLogging, Force, true, layout)
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Data striping groups N *consecutive* logical pages, so a short
		// run covers whole stripes; parity striping scatters a group's
		// members across the disks' logical ranges (same (area, offset)
		// on each disk), so only a whole-database load covers full
		// groups.
		n := cfg.DataDisks
		count := 3*n + 2
		if layout == ParityStriping {
			count = db.NumPages()
		}
		pages := make([][]byte, count)
		for i := range pages {
			pages[i] = fillPage(db, byte(i+1))
		}
		db.ResetStats()
		stripes, err := db.BulkLoad(0, pages)
		if err != nil {
			t.Fatal(err)
		}
		switch layout {
		case DataStriping:
			if stripes != 3 {
				t.Fatalf("%v: %d full stripes, want 3", layout, stripes)
			}
		case ParityStriping:
			if stripes != db.NumPages()/n {
				t.Fatalf("%v: %d full stripes, want %d", layout, stripes, db.NumPages()/n)
			}
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		check := mustBegin(t, db)
		for i := range pages {
			got, err := check.ReadPage(PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pages[i]) {
				t.Fatalf("%v: page %d wrong after bulk load", layout, i)
			}
		}
		if err := check.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBulkLoadCheaperThanSmallWrites(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	load := func(bulk bool) int64 {
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := cfg.DataDisks
		pages := make([][]byte, 8*n)
		for i := range pages {
			pages[i] = fillPage(db, byte(i))
		}
		db.ResetStats()
		if bulk {
			if _, err := db.BulkLoad(0, pages); err != nil {
				t.Fatal(err)
			}
		} else {
			tx := mustBegin(t, db)
			for i := range pages {
				if err := tx.WritePage(PageID(i), pages[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return db.Stats().TotalTransfers()
	}
	bulk, small := load(true), load(false)
	if bulk*2 > small {
		t.Fatalf("bulk load used %d transfers, small writes %d: expected at least 2× saving", bulk, small)
	}
}

func TestBulkLoadRejections(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.BulkLoad(PageID(db.NumPages()-1), make([][]byte, 4)); !errors.Is(err, ErrBadPage) {
		t.Fatalf("err = %v, want ErrBadPage", err)
	}
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.BulkLoad(0, [][]byte{fillPage(db, 2)}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy with an active transaction", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestAutoCheckpoint(t *testing.T) {
	cfg := smallConfig(PageLogging, NoForce, true, DataStriping)
	cfg.CheckpointEvery = 500
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		tx := mustBegin(t, db)
		for p := PageID(0); p < 6; p++ {
			if err := tx.WritePage((p+PageID(round))%PageID(db.NumPages()), fillPage(db, byte(round))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: REDO must be bounded by the automatic checkpoints rather
	// than replaying all 30 transactions' after-images.
	db.Crash()
	rep, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redone >= 30*6 {
		t.Fatalf("redone %d images; automatic checkpoints did not bound REDO", rep.Redone)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncationBoundsLog checks that the log does not grow without
// bound under a steady commit workload (FORCE/TOC truncates at every
// EOT; ¬FORCE/ACC at every checkpoint).
func TestTruncationBoundsLog(t *testing.T) {
	for _, eot := range []EOTDiscipline{Force, NoForce} {
		cfg := smallConfig(PageLogging, eot, true, DataStriping)
		cfg.CheckpointEvery = 400
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var maxLive int
		for round := 0; round < 40; round++ {
			tx := mustBegin(t, db)
			for p := PageID(0); p < 4; p++ {
				if err := tx.WritePage((p+PageID(round*3))%PageID(db.NumPages()), fillPage(db, byte(round))); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			live := db.LiveLogRecords()
			if live > maxLive {
				maxLive = live
			}
		}
		// 40 rounds × (1 BOT + 4 after-images + 1 EOT) would be 240+
		// records without truncation; the live window must stay small.
		if maxLive > 60 {
			t.Fatalf("%v: live log grew to %d records; truncation not working", eot, maxLive)
		}
	}
}

// TestTruncatedEOTWorkingTwinSurvivesCrash is the safety property log
// truncation leans on: a committed transaction's working parity twin may
// outlive its (truncated) EOT record; after a crash, recovery must treat
// the unknown writer as committed, keep that twin current, and preserve
// the committed data.
func TestTruncatedEOTWorkingTwinSurvivesCrash(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2 // steal immediately: working twins on disk
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fillPage(db, 0x5D)
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, want); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// FORCE/TOC truncation after the commit leaves the log empty while
	// the group's current parity is a lazily committed working twin.
	if db.LiveLogRecords() != 0 {
		t.Fatalf("log not truncated: %d live records", db.LiveLogRecords())
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if info.TwinStates[info.CurrentTwin] != "working" {
		t.Skipf("current twin already laundered (%v); scenario not reachable", info.TwinStates)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	check := mustBegin(t, db)
	got, err := check.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed data lost after truncation + crash")
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestInlineReadRepair checks that a transactional read of a page with a
// latent sector error succeeds transparently: the engine rebuilds the
// block from the group's redundancy on the fly.
func TestInlineReadRepair(t *testing.T) {
	for _, useRDA := range []bool{false, true} {
		cfg := smallConfig(PageLogging, Force, useRDA, DataStriping)
		cfg.BufferFrames = 2 // the page must not stay resident
		db, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := fillPage(db, 0x6E)
		tx := mustBegin(t, db)
		if err := tx.WritePage(5, want); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		// Evict page 5, then corrupt its stored block.
		evict := mustBegin(t, db)
		for p := PageID(20); p < 24; p++ {
			if _, err := evict.ReadPage(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := evict.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := db.CorruptBlock(5); err != nil {
			t.Fatal(err)
		}
		check := mustBegin(t, db)
		got, err := check.ReadPage(5)
		if err != nil {
			t.Fatalf("rda=%v: read of corrupted page failed: %v", useRDA, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("rda=%v: read repair returned wrong contents", useRDA)
		}
		if err := check.Commit(); err != nil {
			t.Fatal(err)
		}
		// The repair is durable: a direct peek now passes too.
		if _, err := db.PeekPage(5); err != nil {
			t.Fatalf("rda=%v: block not repaired on disk: %v", useRDA, err)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInlineReadRepairDirtyGroup repairs the dirty page itself: the
// rebuilt block must carry the owner's crash-undo tag and the
// twin-parity undo must still work afterwards.
func TestInlineReadRepairDirtyGroup(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	cfg.BufferFrames = 2
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := fillPage(db, 0x31)
	setup := mustBegin(t, db)
	if err := setup.WritePage(0, base); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	active := mustBegin(t, db)
	if err := active.WritePage(0, fillPage(db, 0xD2)); err != nil {
		t.Fatal(err)
	}
	// Steal it (tiny buffer), then corrupt the on-disk copy.
	if _, err := active.ReadPage(8); err != nil {
		t.Fatal(err)
	}
	if _, err := active.ReadPage(16); err != nil {
		t.Fatal(err)
	}
	info, err := db.InspectGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Dirty {
		t.Fatalf("setup failed: group not dirty")
	}
	if err := db.CorruptBlock(0); err != nil {
		t.Fatal(err)
	}
	// The owner re-reads its own page: repaired from the WORKING twin.
	got, err := active.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fillPage(db, 0xD2)) {
		t.Fatalf("read repair of a dirty page returned wrong version")
	}
	// And the undo still works.
	if err := active.Abort(); err != nil {
		t.Fatal(err)
	}
	check := mustBegin(t, db)
	got, err = check.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatalf("abort after read repair lost the before-image")
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadFencesRedo guards the ¬FORCE interaction: after-images
// logged before a bulk load must not be replayed over the loaded pages
// by a later crash recovery.
func TestBulkLoadFencesRedo(t *testing.T) {
	cfg := smallConfig(PageLogging, NoForce, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A committed transaction leaves an after-image for page 0 in the log.
	tx := mustBegin(t, db)
	if err := tx.WritePage(0, fillPage(db, 0x11)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A bulk load then supersedes page 0.
	loaded := fillPage(db, 0x99)
	if _, err := db.BulkLoad(0, [][]byte{loaded}); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	check := mustBegin(t, db)
	got, err := check.ReadPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, loaded) {
		t.Fatalf("crash recovery replayed a pre-load after-image over the bulk load")
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}
