package rda

import (
	"fmt"

	"repro/internal/page"
	"repro/internal/wal"
)

// Stats is a snapshot of the engine's cost and activity counters.  All
// disk and log costs are in page transfers, the unit of the paper's
// performance model, so relative throughput between configurations is
// directly comparable with the analytical results.
type Stats struct {
	// DiskReads and DiskWrites count page transfers against the array
	// (data and parity pages, header reads included).
	DiskReads  int64
	DiskWrites int64
	// LogWriteTransfers counts transfers charged for forced log pages.
	LogWriteTransfers int64
	// LogReadTransfers counts transfers charged for recovery-time and
	// rollback-time log reads.
	LogReadTransfers int64
	// LogRecords and LogBytes describe log volume.
	LogRecords int64
	LogBytes   int64

	// BufferHits, BufferMisses and Steals describe buffer activity; a
	// steal is a dirty frame written back by replacement.
	BufferHits   int64
	BufferMisses int64
	Steals       int64

	// TxStarted, TxCommitted and TxAborted count transactions.
	TxStarted   int64
	TxCommitted int64
	TxAborted   int64

	// Recoveries counts completed restarts.
	Recoveries int64

	// Self-healing counters (see DESIGN.md §"Self-healing I/O").
	// IORetries counts transient I/O errors absorbed by the retry layer;
	// RetryBackoffUnits is the deterministic backoff charged before the
	// retries (abstract units, never slept); AutoFailStops counts disks
	// fail-stopped automatically after consecutive errors.
	IORetries         int64
	RetryBackoffUnits int64
	AutoFailStops     int64
	// DegradedReads and DegradedWrites count operations served around a
	// down disk (reads reconstructed from redundancy, writes maintaining
	// parity without the dead member); ParityRepairs counts parity pages
	// recomputed in place after latent checksum errors; RebuiltGroups
	// counts groups restored by the online rebuild worker since the last
	// disk loss.
	DegradedReads  int64
	DegradedWrites int64
	ParityRepairs  int64
	RebuiltGroups  int64

	// Integrity-plane counters (see DESIGN.md §"The integrity plane").
	// CorruptBlocksDetected counts blocks that failed end-to-end
	// verification (checksum, location stamp or write ledger) anywhere —
	// hot-path reads, scrubbing or recovery; ReadRepairs counts data
	// blocks transparently rebuilt from redundancy on the read path;
	// UnrecoverableCorruption counts reads refused with
	// ErrUnrecoverableCorruption because a second fault exhausted the
	// group's redundancy; ScrubbedGroups and ScrubRepairs count parity
	// groups fully verified and blocks rewritten by the scrubber.
	CorruptBlocksDetected   int64
	ReadRepairs             int64
	UnrecoverableCorruption int64
	ScrubbedGroups          int64
	ScrubRepairs            int64
}

// TotalTransfers returns the model's cost measure: every page transfer
// against the array plus every transfer charged for the log.
func (s Stats) TotalTransfers() int64 {
	return s.DiskReads + s.DiskWrites + s.LogWriteTransfers + s.LogReadTransfers
}

// Stats returns a snapshot of the counters.  Every component keeps its
// own synchronized counters, so the snapshot is assembled under the
// shared gate; with transactions in flight the counters are each exact
// but mutually approximate (a live operation may land between reads).
func (db *DB) Stats() Stats {
	db.gate.RLock()
	defer db.gate.RUnlock()
	as := db.arr.Stats()
	ls := db.log.Stats()
	bs := db.pool.Stats()
	hs := db.arr.Healing()
	ds := db.store.DegradedCounters()
	is := db.store.IntegrityCounters()
	started, committed, aborted := db.tm.Counts()
	db.mu.Lock()
	recoveries := db.recoveries
	db.mu.Unlock()
	return Stats{
		DiskReads:         as.Reads,
		DiskWrites:        as.Writes,
		LogWriteTransfers: ls.Transfers,
		LogReadTransfers:  ls.ReadTransfers,
		LogRecords:        ls.Records,
		LogBytes:          ls.Bytes,
		BufferHits:        bs.Hits,
		BufferMisses:      bs.Misses,
		Steals:            bs.Steals,
		TxStarted:         started,
		TxCommitted:       committed,
		TxAborted:         aborted,
		Recoveries:        recoveries,
		IORetries:         int64(hs.Retries),
		RetryBackoffUnits: int64(hs.BackoffUnits),
		AutoFailStops:     int64(hs.AutoFailStops),
		DegradedReads:     int64(ds.DegradedReads),
		DegradedWrites:    int64(ds.DegradedWrites),
		ParityRepairs:     int64(ds.ParityRepairs),
		RebuiltGroups:     int64(ds.RebuiltGroups),

		CorruptBlocksDetected:   int64(is.CorruptBlocksDetected),
		ReadRepairs:             int64(is.ReadRepairs),
		UnrecoverableCorruption: int64(is.UnrecoverableCorruption),
		ScrubbedGroups:          int64(is.ScrubbedGroups),
		ScrubRepairs:            int64(is.ScrubRepairs),
	}
}

// ResetStats zeroes the transfer and activity counters (transaction and
// recovery totals are cumulative and are not reset).
func (db *DB) ResetStats() {
	db.gate.RLock()
	defer db.gate.RUnlock()
	db.arr.ResetStats()
	db.log.ResetStats()
	db.pool.ResetStats()
}

// ResidentPages returns the ids of buffer-resident pages, most recently
// used first.  Workload generators use it to realize the paper's
// communality parameter C: with probability C a transaction re-references
// a page already in the buffer.
func (db *DB) ResidentPages() []PageID {
	db.gate.RLock()
	defer db.gate.RUnlock()
	res := db.pool.Resident()
	out := make([]PageID, len(res))
	for i, p := range res {
		out[i] = PageID(p)
	}
	return out
}

// VerifyParity checks the parity invariant of every group (see
// core.Store.VerifyParityInvariant).  It performs uncharged verification
// reads under the exclusive gate — a whole-array scan cannot tolerate
// concurrent writers — so it quiesces live transactions for its
// duration.  Intended for tests and examples.
func (db *DB) VerifyParity() error {
	db.gate.Lock()
	defer db.gate.Unlock()
	return db.store.VerifyParityInvariant()
}

// PeekPage returns the current on-disk contents of a page without
// charging transfers.  Verification aid for tests and examples; not part
// of the transactional interface.
func (db *DB) PeekPage(p PageID) ([]byte, error) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(db.arr.GroupOf(page.PageID(p)))
	return db.arr.PeekData(page.PageID(p))
}

// GroupInfo describes the recovery state of one parity group — the
// observable anatomy of the paper's twin-page scheme.  Introspection
// aid; all reads are uncharged.
type GroupInfo struct {
	// Group is the parity group number of the queried page.
	Group uint32
	// Pages are the logical pages sharing the group.
	Pages []PageID
	// Dirty reports whether the group is in the Figure 3 dirty state.
	Dirty bool
	// DirtyPage and DirtyTxn identify the no-UNDO-logging write that
	// dirtied the group (meaningful when Dirty).
	DirtyPage PageID
	DirtyTxn  uint64
	// CurrentTwin is the index of the current parity page per the
	// in-memory bitmap; single-parity arrays always use twin 0.
	CurrentTwin int
	// TwinStates are the on-disk header states of the parity page(s):
	// "committed", "obsolete", "working" or "invalid".
	TwinStates []string
	// TwinTimestamps are the Figure 7 timestamps of the parity page(s).
	TwinTimestamps []uint64
	// QStates and QTimestamps mirror TwinStates/TwinTimestamps for the
	// second redundancy page of each index on a P+Q array; empty
	// otherwise.  Q headers track their P partner in lockstep, so a
	// mismatch here is the fingerprint of a write cut in half.
	QStates     []string
	QTimestamps []uint64
}

// InspectGroup reports the recovery state of the parity group holding
// page p.
func (db *DB) InspectGroup(p PageID) (GroupInfo, error) {
	db.gate.RLock()
	defer db.gate.RUnlock()
	if int(p) >= db.NumPages() {
		return GroupInfo{}, ErrBadPage
	}
	g := db.arr.GroupOf(page.PageID(p))
	// The group latch freezes the group's steal protocol state, so the
	// snapshot is internally consistent even with live transactions on
	// other groups.
	h := db.latches.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(g)
	info := GroupInfo{Group: uint32(g)}
	for _, q := range db.arr.GroupPages(g) {
		info.Pages = append(info.Pages, PageID(q))
	}
	if db.store.Twins != nil {
		info.CurrentTwin = db.store.Twins.Current(g)
	}
	if db.store.Dirty != nil {
		if e, dirty := db.store.Dirty.Lookup(g); dirty {
			info.Dirty = true
			info.DirtyPage = PageID(e.Page)
			info.DirtyTxn = uint64(e.Txn)
		}
	}
	for twin := 0; twin < db.arr.ParityPages(); twin++ {
		meta, err := db.arr.PeekParityMeta(g, twin)
		if err != nil {
			return info, err
		}
		info.TwinStates = append(info.TwinStates, meta.State.String())
		info.TwinTimestamps = append(info.TwinTimestamps, uint64(meta.Timestamp))
	}
	if db.arr.HasQ() {
		for twin := 0; twin < db.arr.QParityPages(); twin++ {
			meta, err := db.arr.PeekQMeta(g, twin)
			if err != nil {
				return info, err
			}
			info.QStates = append(info.QStates, meta.State.String())
			info.QTimestamps = append(info.QTimestamps, uint64(meta.Timestamp))
		}
	}
	return info, nil
}

// DumpLog calls fn for every log record, oldest first, with a rendered
// one-line description.  Diagnostic aid (cmd/waldump); uncharged.
func (db *DB) DumpLog(fn func(line string) bool) error {
	// The log is internally synchronized and never replaced for the
	// lifetime of the DB, so the scan needs no engine lock.
	return db.log.Scan(1, func(r wal.Record) bool {
		return fn(renderLogRecord(r))
	})
}

// renderLogRecord formats one record for humans.
func renderLogRecord(r wal.Record) string {
	switch r.Type {
	case wal.TypeCheckpoint:
		return fmt.Sprintf("%6d  CKPT    active=%v", r.LSN, r.Active)
	case wal.TypeBOT, wal.TypeEOT, wal.TypeAbort:
		return fmt.Sprintf("%6d  %-6s  txn=%d", r.LSN, r.Type, r.Txn)
	case wal.TypeChainHead:
		return fmt.Sprintf("%6d  %-6s  txn=%d head=%d", r.LSN, r.Type, r.Txn, r.Page)
	default:
		gran := "page"
		slot := ""
		if r.Slot != wal.NoSlot {
			gran = "record"
			slot = fmt.Sprintf(".%d", r.Slot)
		}
		return fmt.Sprintf("%6d  %-6s  txn=%d %s %d%s (%d bytes)",
			r.LSN, r.Type, r.Txn, gran, r.Page, slot, len(r.Image))
	}
}

// DiskTransfers returns per-disk page transfer totals, indexed by disk
// number.  Rotated parity exists to keep these balanced (Section 3.1);
// tests and benchmarks use this to verify it.
func (db *DB) DiskTransfers() []int64 {
	db.gate.RLock()
	defer db.gate.RUnlock()
	per := db.arr.DiskStats()
	out := make([]int64, len(per))
	for i, s := range per {
		out[i] = s.Transfers()
	}
	return out
}

// LiveLogRecords returns the number of log records the log currently
// retains (older records are reclaimed by truncation once no recovery
// could need them).
func (db *DB) LiveLogRecords() int {
	db.gate.RLock()
	defer db.gate.RUnlock()
	return db.log.Len() - int(db.log.FirstLSN()) + 1
}
