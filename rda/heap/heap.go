// Package heap provides an unordered record collection — a classic heap
// file — on top of the rda engine's record-granularity transactions.
//
// It is the access layer a database built on the paper's storage engine
// would actually expose: records are addressed by stable RIDs
// (page, slot), inserts find free space automatically, and every
// operation runs inside a caller-supplied transaction, so heap updates
// inherit the engine's recovery guarantees — including the RDA
// no-UNDO-logging fast path underneath.
//
// The heap spans a fixed range of the database's pages.  Insert
// placement uses a rotating hint so that concurrent inserters spread
// over the range instead of convoying on the first page with space.
package heap

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/record"
	"repro/rda"
)

// RID is a record identifier: the stable address of a record in the
// heap.
type RID struct {
	Page rda.PageID
	Slot int
}

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// Errors returned by the heap.
var (
	// ErrHeapFull reports that no page in the heap's range has a free
	// slot.
	ErrHeapFull = errors.New("heap: no free slot in the heap's page range")
	// ErrNotFound reports a Get/Update/Delete of an RID holding no
	// record.
	ErrNotFound = errors.New("heap: no record at this RID")
	// ErrOutOfRange reports an RID outside the heap's page range.
	ErrOutOfRange = errors.New("heap: RID outside the heap's page range")
)

// Heap is a heap file over a page range of a record-mode database.  It
// is safe for concurrent use; all record state lives in the database,
// the Heap itself holds only the placement hint.
type Heap struct {
	db    *rda.DB
	first rda.PageID
	pages int
	hint  atomic.Uint32 // rotating insert start offset
}

// New creates a heap over pages [first, first+pages).  The database must
// use RecordLogging.
func New(db *rda.DB, first rda.PageID, pages int) (*Heap, error) {
	if db.Config().Logging != rda.RecordLogging {
		return nil, errors.New("heap: database must use RecordLogging")
	}
	if pages < 1 || int(first)+pages > db.NumPages() {
		return nil, fmt.Errorf("heap: page range [%d,%d) outside database of %d pages",
			first, int(first)+pages, db.NumPages())
	}
	return &Heap{db: db, first: first, pages: pages}, nil
}

// Pages returns the number of pages in the heap's range.
func (h *Heap) Pages() int { return h.pages }

// Capacity returns the maximum number of records the heap can hold.
func (h *Heap) Capacity() int { return h.pages * h.db.RecordsPerPage() }

// check validates an RID against the heap's range.
func (h *Heap) check(rid RID) error {
	if rid.Page < h.first || int(rid.Page-h.first) >= h.pages {
		return fmt.Errorf("%w: %v", ErrOutOfRange, rid)
	}
	if rid.Slot < 0 || rid.Slot >= h.db.RecordsPerPage() {
		return fmt.Errorf("%w: %v", ErrOutOfRange, rid)
	}
	return nil
}

// Insert stores rec in a free slot somewhere in the heap and returns its
// RID.  Placement starts at a rotating hint and wraps around the range;
// ErrHeapFull is returned when every page is full.
func (h *Heap) Insert(tx *rda.Tx, rec []byte) (RID, error) {
	start := int(h.hint.Add(1)) % h.pages
	for i := 0; i < h.pages; i++ {
		p := h.first + rda.PageID((start+i)%h.pages)
		slot, err := tx.InsertRecord(p, rec)
		switch {
		case err == nil:
			return RID{Page: p, Slot: slot}, nil
		case errors.Is(err, record.ErrFull):
			continue
		default:
			return RID{}, err
		}
	}
	return RID{}, ErrHeapFull
}

// Get returns a copy of the record at rid, or ErrNotFound.
func (h *Heap) Get(tx *rda.Tx, rid RID) ([]byte, error) {
	if err := h.check(rid); err != nil {
		return nil, err
	}
	rec, err := tx.ReadRecord(rid.Page, rid.Slot)
	if errors.Is(err, record.ErrEmptySlot) {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return rec, err
}

// Update overwrites the record at rid, which must exist.
func (h *Heap) Update(tx *rda.Tx, rid RID, rec []byte) error {
	if err := h.check(rid); err != nil {
		return err
	}
	// Existence check under the record's lock (the read S-lock upgrades
	// to X on the write).
	if _, err := tx.ReadRecord(rid.Page, rid.Slot); err != nil {
		if errors.Is(err, record.ErrEmptySlot) {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		return err
	}
	return tx.WriteRecord(rid.Page, rid.Slot, rec)
}

// Delete removes the record at rid, which must exist.
func (h *Heap) Delete(tx *rda.Tx, rid RID) error {
	if err := h.check(rid); err != nil {
		return err
	}
	if _, err := tx.ReadRecord(rid.Page, rid.Slot); err != nil {
		if errors.Is(err, record.ErrEmptySlot) {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		return err
	}
	return tx.DeleteRecord(rid.Page, rid.Slot)
}

// Scan calls fn for every record in the heap, in RID order, until fn
// returns false.  The scan locks each visited record in shared mode
// (repeatable read under strict 2PL).
func (h *Heap) Scan(tx *rda.Tx, fn func(RID, []byte) bool) error {
	slots := h.db.RecordsPerPage()
	for i := 0; i < h.pages; i++ {
		p := h.first + rda.PageID(i)
		for slot := 0; slot < slots; slot++ {
			rec, err := tx.ReadRecord(p, slot)
			if errors.Is(err, record.ErrEmptySlot) {
				continue
			}
			if err != nil {
				return err
			}
			if !fn(RID{Page: p, Slot: slot}, rec) {
				return nil
			}
		}
	}
	return nil
}

// Count returns the number of records in the heap.
func (h *Heap) Count(tx *rda.Tx) (int, error) {
	n := 0
	err := h.Scan(tx, func(RID, []byte) bool { n++; return true })
	return n, err
}
