package heap

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/rda"
)

func testDB(t *testing.T) *rda.DB {
	t.Helper()
	db, err := rda.Open(rda.Config{
		DataDisks:    4,
		NumPages:     48,
		PageSize:     128,
		BufferFrames: 8,
		Logging:      rda.RecordLogging,
		EOT:          rda.NoForce,
		RDA:          true,
		RecordSize:   24,
		LogPageSize:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func testHeap(t *testing.T, db *rda.DB) *Heap {
	t.Helper()
	h, err := New(db, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func begin(t *testing.T, db *rda.DB) *rda.Tx {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestInsertGetUpdateDelete(t *testing.T) {
	db := testDB(t)
	h := testHeap(t, db)
	tx := begin(t, db)
	rid, err := h.Insert(tx, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Get(tx, rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:5], []byte("hello")) {
		t.Fatalf("got %q", got)
	}
	if err := h.Update(tx, rid, []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, _ = h.Get(tx, rid)
	if !bytes.Equal(got[:5], []byte("world")) {
		t.Fatalf("update lost: %q", got)
	}
	if err := h.Delete(tx, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(tx, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := h.Update(tx, rid, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := h.Delete(tx, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestRIDsStableAndScanOrdered(t *testing.T) {
	db := testDB(t)
	h := testHeap(t, db)
	tx := begin(t, db)
	want := map[RID][]byte{}
	for i := 0; i < 20; i++ {
		rec := []byte{byte(i), 0xAB}
		rid, err := h.Insert(tx, rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, dup := want[rid]; dup {
			t.Fatalf("duplicate RID %v", rid)
		}
		want[rid] = rec
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	scan := begin(t, db)
	seen := 0
	var lastPage rda.PageID
	var lastSlot int
	first := true
	err := h.Scan(scan, func(rid RID, rec []byte) bool {
		w, ok := want[rid]
		if !ok {
			t.Fatalf("scan found unexpected RID %v", rid)
		}
		if !bytes.Equal(rec[:2], w) {
			t.Fatalf("RID %v holds wrong record", rid)
		}
		if !first && (rid.Page < lastPage || (rid.Page == lastPage && rid.Slot <= lastSlot)) {
			t.Fatalf("scan out of order at %v", rid)
		}
		first = false
		lastPage, lastSlot = rid.Page, rid.Slot
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Fatalf("scan saw %d records, want %d", seen, len(want))
	}
	n, err := h.Count(scan)
	if err != nil || n != len(want) {
		t.Fatalf("Count = %d err %v", n, err)
	}
	if err := scan.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapFull(t *testing.T) {
	db := testDB(t)
	h, err := New(db, 0, 1) // one page only
	if err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db)
	for i := 0; i < h.Capacity(); i++ {
		if _, err := h.Insert(tx, []byte{byte(i)}); err != nil {
			t.Fatalf("insert %d of %d: %v", i, h.Capacity(), err)
		}
	}
	if _, err := h.Insert(tx, []byte{0xFF}); !errors.Is(err, ErrHeapFull) {
		t.Fatalf("err = %v, want ErrHeapFull", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRollsBackHeapOps(t *testing.T) {
	db := testDB(t)
	h := testHeap(t, db)
	setup := begin(t, db)
	rid, err := h.Insert(setup, []byte("keep"))
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := begin(t, db)
	if err := h.Update(tx, rid, []byte("clobber")); err != nil {
		t.Fatal(err)
	}
	rid2, err := h.Insert(tx, []byte("phantom"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	check := begin(t, db)
	got, err := h.Get(check, rid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:4], []byte("keep")) {
		t.Fatalf("aborted update leaked: %q", got)
	}
	if _, err := h.Get(check, rid2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert leaked")
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryPreservesHeap(t *testing.T) {
	db := testDB(t)
	h := testHeap(t, db)
	tx := begin(t, db)
	var rids []RID
	for i := 0; i < 15; i++ {
		rid, err := h.Insert(tx, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// A loser inserts and deletes, then the system crashes.
	loser := begin(t, db)
	if _, err := h.Insert(loser, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(loser, rids[3]); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	if _, err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	check := begin(t, db)
	n, err := h.Count(check)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("heap has %d records after crash, want 15", n)
	}
	for i, rid := range rids {
		got, err := h.Get(check, rid)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertersDisjointRIDs(t *testing.T) {
	db := testDB(t)
	h := testHeap(t, db)
	var mu sync.Mutex
	all := make(map[RID]bool)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				tx, err := db.Begin()
				if err != nil {
					t.Error(err)
					return
				}
				rid, err := h.Insert(tx, []byte{byte(w), byte(i)})
				if err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if all[rid] {
					t.Errorf("RID %v assigned twice", rid)
				}
				all[rid] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	check := begin(t, db)
	n, err := h.Count(check)
	if err != nil {
		t.Fatal(err)
	}
	if n != 60 {
		t.Fatalf("heap holds %d records, want 60", n)
	}
	if err := check.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejections(t *testing.T) {
	db := testDB(t)
	if _, err := New(db, 0, db.NumPages()+1); err == nil {
		t.Fatalf("range past the database must be rejected")
	}
	if _, err := New(db, 0, 0); err == nil {
		t.Fatalf("empty range must be rejected")
	}
	pageDB, err := rda.Open(rda.Config{
		DataDisks: 4, NumPages: 48, PageSize: 128, BufferFrames: 8,
		Logging: rda.PageLogging,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(pageDB, 0, 4); err == nil {
		t.Fatalf("page-mode database must be rejected")
	}
	h := testHeap(t, db)
	tx := begin(t, db)
	if _, err := h.Get(tx, RID{Page: 40, Slot: 0}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := h.Get(tx, RID{Page: 0, Slot: 999}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}
