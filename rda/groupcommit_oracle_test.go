package rda

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

// Group-commit variants of the serializability and crash oracles.  Under
// GroupCommitWindow > 0 a committing transaction appends its after-images
// and EOT unforced and then waits for a batched force to cover the EOT;
// concurrent committers fold into one log write.  The oracle contracts:
//
//   - Serializability is untouched: the CommitSeq history produced under
//     batched forces, replayed on a fresh single-threaded engine with no
//     group commit and no queues, byte-compares equal.
//   - Durability acks are never early: a crash landing between a batched
//     force and the last ack may leave transactions whose fold-in reached
//     the platter but whose Commit reported ErrCrashed (failed-but-durable
//     is allowed), but no transaction whose Commit returned nil may lose
//     its effects (committed-but-lost is a violation).

// gcOracleConfig is the oracle geometry with the async pipeline and
// batched forces on top.
func gcOracleConfig(eot EOTDiscipline) Config {
	cfg := oracleConfig()
	cfg.EOT = eot
	cfg.GroupCommitWindow = time.Millisecond
	cfg.QueueDepth = 4
	return cfg
}

// TestSerializabilityOracleGroupCommit runs the overlapping soak — the
// max-conflict case — with batched forces and queued drives, then
// replays the CommitSeq history on a fresh default engine (synchronous
// drives, one force per commit) and byte-compares the final states.
func TestSerializabilityOracleGroupCommit(t *testing.T) {
	for _, eot := range []struct {
		name string
		mode EOTDiscipline
		// Random-page FORCE commits carry parity-covered steals, whose
		// EOT is forced inline (see commitAttempt), so only the ¬FORCE
		// soak is guaranteed to fold forces; the stripe test below
		// covers FORCE-mode batching.
		wantJoins bool
	}{{"NoForce", NoForce, true}, {"Force", Force, false}} {
		t.Run(eot.name, func(t *testing.T) {
			cfg := gcOracleConfig(eot.mode)
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			all := make([]PageID, cfg.NumPages)
			for i := range all {
				all[i] = PageID(i)
			}
			history := runOracleWorkload(t, db, func(int) []PageID { return all }, 6, 15, 4, 2024)
			if len(history) == 0 {
				t.Fatal("no transaction committed")
			}
			// The window must actually have folded concurrent forces —
			// otherwise this test degenerates to the plain oracle.
			if eot.wantJoins && db.forcer.Joins() == 0 {
				t.Errorf("no commit joined another's force batch (batches=%d); window too small for the workload",
					db.forcer.Batches())
			}
			ref := oracleConfig()
			ref.EOT = eot.mode
			diffStates(t, db, replayHistory(t, ref, history))
		})
	}
}

// TestSerializabilityOracleGroupCommitStripes drives the FORCE-mode fast
// path end to end: every transaction rewrites one whole stripe, so the
// commit flush coalesces into core.WriteStripeLogged and the EOT rides
// the batched force.  Workers own disjoint groups (no 2PL conflicts), so
// their commits overlap maximally inside the window; the history still
// replays byte-identically on a synchronous engine.
func TestSerializabilityOracleGroupCommitStripes(t *testing.T) {
	cfg := gcOracleConfig(Force)
	// Every worker pins a whole stripe at once; give the pool headroom.
	cfg.BufferFrames = 32
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Group the page space into stripes as the array lays them out.
	stripes := make(map[page.GroupID][]PageID)
	var order []page.GroupID
	for p := 0; p < cfg.NumPages; p++ {
		g := db.arr.GroupOf(page.PageID(p))
		if len(stripes[g]) == 0 {
			order = append(order, g)
		}
		stripes[g] = append(stripes[g], PageID(p))
	}
	const workers = 4
	pagesFor := func(w int) [][]PageID {
		var own [][]PageID
		for i := w; i < len(order); i += workers {
			own = append(own, stripes[order[i]])
		}
		return own
	}
	size := db.PageSize()
	var (
		mu      sync.Mutex
		history []oracleTxn
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(9000 + int64(w)))
			own := pagesFor(w)
			for n := 0; n < 20; n++ {
				stripe := own[rng.Intn(len(own))]
				ops := make([]oracleOp, len(stripe))
				for i, p := range stripe {
					ops[i] = oracleOp{page: p, delta: rng.Uint64() | 1}
				}
				tx, err := db.Begin()
				if err != nil {
					errs <- err
					return
				}
				if err := applyOps(tx, size, ops); err != nil {
					errs <- err
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				history = append(history, oracleTxn{seq: tx.CommitSeq(), ops: ops})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.forcer.Joins() == 0 {
		t.Errorf("no stripe commit joined another's force batch (batches=%d)", db.forcer.Batches())
	}
	sort.Slice(history, func(i, j int) bool { return history[i].seq < history[j].seq })
	ref := oracleConfig()
	ref.EOT = Force
	diffStates(t, db, replayHistory(t, ref, history))
}

// verifyGroupCommitCrashOracle holds the recovered state to the relaxed
// group-commit contract.  For every page the final image must be the
// last write (in CommitSeq order) of some durable transaction, where the
// durable set is: all recorded nil-return commits, plus any subset of
// the ambiguous ones (EOT appended, ack lost).  Blind writes plus 2PL
// give each page a linear writer chain, so the check reduces to: the
// page equals the last recorded image for it, or the image of an
// ambiguous transaction that out-sequences it.  A page showing anything
// older than its last recorded commit means an acknowledged fold-in
// never reached the platter — the violation this oracle exists to catch.
func verifyGroupCommitCrashOracle(t *testing.T, db *DB, hist *crashHistory) {
	t.Helper()
	hist.mu.Lock()
	txns := append([]oracleTxn(nil), hist.txns...)
	ambig := append([]oracleTxn(nil), hist.ambig...)
	hist.mu.Unlock()
	sort.Slice(txns, func(i, j int) bool { return txns[i].seq < txns[j].seq })

	type lastWrite struct {
		seq   int64
		delta uint64
	}
	lastRec := make(map[PageID]lastWrite)
	for _, h := range txns {
		for _, op := range h.ops {
			lastRec[op.page] = lastWrite{seq: h.seq, delta: op.delta}
		}
	}
	// Candidate counters per page: the last recorded commit, plus every
	// ambiguous transaction's last write to the page unless a recorded
	// commit out-sequences it.
	cand := make(map[PageID]map[uint64]bool)
	add := func(p PageID, d uint64) {
		if cand[p] == nil {
			cand[p] = make(map[uint64]bool)
		}
		cand[p][d] = true
	}
	for p, lw := range lastRec {
		add(p, lw.delta)
	}
	for _, h := range ambig {
		perPage := make(map[PageID]uint64)
		for _, op := range h.ops {
			perPage[op.page] = op.delta
		}
		for p, d := range perPage {
			if lw, ok := lastRec[p]; ok && h.seq < lw.seq {
				continue
			}
			add(p, d)
		}
	}

	size := db.PageSize()
	for p := 0; p < db.NumPages(); p++ {
		got, err := db.PeekPage(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		cs := cand[PageID(p)]
		if len(cs) == 0 {
			if !bytes.Equal(got, make([]byte, size)) {
				t.Errorf("page %d: written only by losers yet non-zero after recovery", p)
			}
			continue
		}
		ok := false
		for c := range cs {
			if bytes.Equal(got, pageFromCounter(size, c)) {
				ok = true
				break
			}
		}
		if !ok {
			_, recorded := lastRec[PageID(p)]
			if recorded {
				t.Errorf("page %d: acknowledged commit lost after crash recovery (counter %d not among %d candidate(s))",
					p, counterOf(got), len(cs))
			} else {
				t.Errorf("page %d: state matches no ambiguous candidate (counter %d)", p, counterOf(got))
			}
		}
	}
}

// TestGroupCommitCrashDurability crashes the engine while workers are
// parked inside Forcer.Force — between a batched force and its last ack —
// and checks that recovery honors every acknowledged commit.  The
// ambiguous transactions (ErrCrashed with an assigned CommitSeq) are the
// crash landing exactly in that gap; they may legitimately resolve
// either way.
func TestGroupCommitCrashDurability(t *testing.T) {
	for _, hard := range []bool{false, true} {
		name := "Crash"
		if hard {
			name = "CrashHard"
		}
		t.Run(name, func(t *testing.T) {
			cfg := gcOracleConfig(NoForce)
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hist := &crashHistory{}
			stop := make(chan struct{})
			wg := runCrashWorkload(db, 8, 4321, hist, stop)
			// Wait until the workload is deep in group-commit traffic —
			// with a 1ms window and eight workers there are always
			// commits parked in the force gap when the crash hits.
			for {
				hist.mu.Lock()
				n := len(hist.txns)
				hist.mu.Unlock()
				if n >= 60 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			runWithWatchdog(t, "crash under group commit", 30*time.Second, func() {
				if hard {
					db.CrashHard()
				} else {
					db.Crash()
				}
			})
			runWithWatchdog(t, "worker drain", 30*time.Second, wg.Wait)
			close(stop)
			if _, err := db.Begin(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Begin on crashed db: %v, want ErrCrashed", err)
			}
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyRecovered(); err != nil {
				t.Fatal(err)
			}
			verifyGroupCommitCrashOracle(t, db, hist)
			hist.mu.Lock()
			t.Logf("%d acknowledged commit(s), %d ambiguous (crash in the force-to-ack gap)",
				len(hist.txns), len(hist.ambig))
			hist.mu.Unlock()
			// The engine must be fully usable again.
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.WritePage(0, pageFromCounter(cfg.PageSize, 777)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
