package rda

import (
	"errors"

	"bytes"
	"fmt"
	"math/rand"
	"repro/internal/record"
	"testing"
)

// TestSoakOracle runs a long randomized interleaving of transactions,
// aborts, crashes, checkpoints and disk failures against every
// configuration, comparing the database's on-disk state against an
// in-memory oracle of committed effects after every resolution point.
// This is the repository's main end-to-end correctness check: after any
// sequence of events, the database equals the effects of committed
// transactions only, and the parity invariant holds.
func TestSoakOracle(t *testing.T) {
	seeds := []int64{1234, 99}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cfg := range allConfigs() {
		cfg := cfg
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", cfgName(cfg), seed), func(t *testing.T) {
				soak(t, cfg, seed+int64(cfg.Logging)*7+int64(cfg.EOT)*3)
			})
		}
	}
}

type soakTx struct {
	tx *Tx
	// pending effects, applied to the oracle at commit.
	pages   map[PageID][]byte
	records map[[2]uint32][]byte // (page, slot) -> value; nil = deleted
	// owned guards against self-deadlock in the single-goroutine driver:
	// whole pages under page locking, (page, slot) pairs under record
	// locking — so different transactions DO share pages in record mode,
	// exercising the shared-frame and demotion machinery.
	owned map[[2]uint32]bool
}

func soak(t *testing.T, cfg Config, seed int64) {
	t.Helper()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	n := db.NumPages()
	slots := db.RecordsPerPage()

	// Oracles of committed state.
	oraclePages := make(map[PageID][]byte)
	oracleRecords := make(map[[2]uint32][]byte)

	// ownedGlobal tracks resources claimed by open transactions so the
	// single-goroutine driver never blocks on a lock.  Page mode claims
	// whole pages (slot sentinel ^0); record mode claims (page, slot)
	// pairs, so pages ARE shared between transactions.
	ownedGlobal := make(map[[2]uint32]bool)
	pageKey := func(p PageID) [2]uint32 { return [2]uint32{uint32(p), ^uint32(0)} }
	recKey := func(p PageID, slot int) [2]uint32 { return [2]uint32{uint32(p), uint32(slot)} }
	var open []*soakTx
	nextSeq := uint64(1)

	verify := func(context string) {
		t.Helper()
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("%s: %v", context, err)
		}
		if cfg.Logging == PageLogging {
			for p, want := range oraclePages {
				// Only check pages not owned by an open transaction (their
				// on-disk state may legitimately be uncommitted).
				if ownedGlobal[pageKey(p)] {
					continue
				}
				got, err := db.PeekPage(p)
				if err != nil {
					t.Fatalf("%s: %v", context, err)
				}
				if !bytes.Equal(got, want) {
					// The committed value may still be sitting in the
					// buffer under ¬FORCE; read through a transaction.
					tx, err := db.Begin()
					if err != nil {
						t.Fatalf("%s: %v", context, err)
					}
					got2, err := tx.ReadPage(p)
					if err != nil {
						t.Fatalf("%s: read page %d: %v", context, p, err)
					}
					_ = tx.Abort()
					if !bytes.Equal(got2, want) {
						t.Fatalf("%s: page %d diverged from oracle", context, p)
					}
				}
			}
		} else {
			tx, err := db.Begin()
			if err != nil {
				t.Fatalf("%s: %v", context, err)
			}
			for key, want := range oracleRecords {
				if ownedGlobal[key] {
					continue
				}
				got, err := tx.ReadRecord(PageID(key[0]), int(key[1]))
				if want == nil {
					if err == nil {
						t.Fatalf("%s: record %d.%d should be deleted", context, key[0], key[1])
					}
					continue
				}
				if err != nil {
					t.Fatalf("%s: record %d.%d: %v", context, key[0], key[1], err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: record %d.%d diverged from oracle", context, key[0], key[1])
				}
			}
			_ = tx.Abort()
		}
	}

	openTx := func() *soakTx {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		s := &soakTx{
			tx:      tx,
			pages:   make(map[PageID][]byte),
			records: make(map[[2]uint32][]byte),
			owned:   make(map[[2]uint32]bool),
		}
		nextSeq++
		open = append(open, s)
		return s
	}

	dropOwned := func(s *soakTx) {
		for k := range s.owned {
			delete(ownedGlobal, k)
		}
	}

	for step := 0; step < 400; step++ {
		switch op := r.Intn(20); {
		case op < 8: // write in a (possibly new) transaction
			var s *soakTx
			if len(open) > 0 && r.Intn(2) == 0 {
				s = open[r.Intn(len(open))]
			} else if len(open) < 3 {
				s = openTx()
			} else {
				s = open[r.Intn(len(open))]
			}
			p := PageID(r.Intn(n))
			if cfg.Logging == PageLogging {
				k := pageKey(p)
				if ownedGlobal[k] && !s.owned[k] {
					continue // avoid single-goroutine lock waits
				}
				img := make([]byte, db.PageSize())
				r.Read(img)
				if err := s.tx.WritePage(p, img); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				s.pages[p] = img
				s.owned[k] = true
				ownedGlobal[k] = true
			} else {
				slot := r.Intn(slots)
				k := recKey(p, slot)
				if ownedGlobal[k] && !s.owned[k] {
					continue
				}
				if r.Intn(6) == 0 {
					if err := s.tx.DeleteRecord(p, slot); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					s.records[k] = nil
				} else {
					rec := make([]byte, cfg.RecordSize)
					r.Read(rec)
					if err := s.tx.WriteRecord(p, slot, rec); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					s.records[k] = rec
				}
				s.owned[k] = true
				ownedGlobal[k] = true
			}

		case op < 12 && len(open) > 0: // commit
			i := r.Intn(len(open))
			s := open[i]
			open = append(open[:i], open[i+1:]...)
			if err := s.tx.Commit(); err != nil {
				t.Fatalf("step %d commit: %v", step, err)
			}
			for p, img := range s.pages {
				oraclePages[p] = img
			}
			for k, v := range s.records {
				oracleRecords[k] = v
			}
			dropOwned(s)
			verify(fmt.Sprintf("step %d after commit", step))

		case op < 15 && len(open) > 0: // abort
			i := r.Intn(len(open))
			s := open[i]
			open = append(open[:i], open[i+1:]...)
			if err := s.tx.Abort(); err != nil {
				t.Fatalf("step %d abort: %v", step, err)
			}
			dropOwned(s)
			verify(fmt.Sprintf("step %d after abort", step))

		case op < 16 && cfg.EOT == NoForce: // checkpoint
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("step %d checkpoint: %v", step, err)
			}

		case op < 18: // crash + recover: all open transactions are losers
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatalf("step %d recover: %v", step, err)
			}
			for _, s := range open {
				dropOwned(s)
			}
			open = nil
			verify(fmt.Sprintf("step %d after crash recovery", step))

		case op < 19: // media failure on a random disk
			d := r.Intn(db.NumDisks())
			if err := db.FailDisk(d); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if err := db.RepairDisk(d); err != nil {
				t.Fatalf("step %d repair disk %d: %v", step, d, err)
			}
			verify(fmt.Sprintf("step %d after media recovery", step))

		default: // read something
			if len(open) == 0 {
				continue
			}
			s := open[r.Intn(len(open))]
			p := PageID(r.Intn(n))
			if cfg.Logging == PageLogging {
				k := pageKey(p)
				if ownedGlobal[k] && !s.owned[k] {
					continue
				}
				if _, err := s.tx.ReadPage(p); err != nil {
					t.Fatalf("step %d read: %v", step, err)
				}
				s.owned[k] = true // S lock held; other txns would block
				ownedGlobal[k] = true
			} else {
				slot := r.Intn(slots)
				k := recKey(p, slot)
				if ownedGlobal[k] && !s.owned[k] {
					continue
				}
				if _, err := s.tx.ReadRecord(p, slot); err != nil && !isEmptySlot(err) {
					t.Fatalf("step %d read: %v", step, err)
				}
				s.owned[k] = true
				ownedGlobal[k] = true
			}
		}
	}

	// Resolve everything and do a final full check.
	for _, s := range open {
		if err := s.tx.Abort(); err != nil {
			t.Fatal(err)
		}
		dropOwned(s)
	}
	open = nil
	verify("final")
}

func isEmptySlot(err error) bool {
	return errors.Is(err, record.ErrEmptySlot)
}
