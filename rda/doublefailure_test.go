package rda

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/page"
)

// loadAll fills the whole database with distinct committed pages and
// returns the images.
func loadAll(t *testing.T, db *DB) map[PageID][]byte {
	t.Helper()
	imgs := make(map[PageID][]byte)
	pages := make([][]byte, db.NumPages())
	for p := range pages {
		img := fillPage(db, byte(p*3+7))
		pages[p] = img
		imgs[PageID(p)] = img
	}
	if _, err := db.BulkLoad(0, pages); err != nil {
		t.Fatal(err)
	}
	return imgs
}

// checkAfterDoubleFailure verifies the post-repair contract: pages of
// lost groups read back zeroed, everything else is intact, and the
// parity invariant holds.
func checkAfterDoubleFailure(t *testing.T, db *DB, imgs map[PageID][]byte, lost []uint32) {
	t.Helper()
	lostPages := make(map[PageID]bool)
	for _, g := range lost {
		for _, p := range db.arr.GroupPages(page.GroupID(g)) {
			lostPages[PageID(p)] = true
		}
	}
	zero := make([]byte, db.PageSize())
	for p, want := range imgs {
		got, err := db.PeekPage(p)
		if err != nil {
			t.Fatalf("page %d unreadable after repair: %v", p, err)
		}
		if lostPages[p] {
			// Either zeroed (the page was on a failed disk) or intact
			// (the group lost other blocks beyond repair).
			if !bytes.Equal(got, zero) && !bytes.Equal(got, want) {
				t.Fatalf("lost-group page %d holds fabricated data", p)
			}
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d corrupted by double-failure repair (not in a lost group)", p)
		}
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestDoubleFailureBothTwinDisks fails the two disks carrying group 0's
// parity twins simultaneously.  Group 0 itself loses only parity and
// must come back perfectly; other groups may lose data (reported, not
// fabricated).
func TestDoubleFailureBothTwinDisks(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	g0 := db.arr.GroupOf(0)
	d0 := db.arr.ParityLoc(g0, 0).Disk
	d1 := db.arr.ParityLoc(g0, 1).Disk
	if err := db.FailDisk(d0); err != nil {
		t.Fatal(err)
	}
	if err := db.FailDisk(d1); err != nil {
		t.Fatal(err)
	}
	lost, err := db.RepairDisks(d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range lost {
		if g == uint32(g0) {
			t.Fatalf("group 0 lost only its twins; it must be recoverable")
		}
	}
	checkAfterDoubleFailure(t, db, imgs, lost)
	// Group 0's data is bit exact.
	for _, p := range db.arr.GroupPages(g0) {
		got, err := db.PeekPage(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, imgs[PageID(p)]) {
			t.Fatalf("group 0 page %d corrupted", p)
		}
	}
}

// TestDoubleFailureTwinAdvantage sweeps every disk pair on twin-parity
// and single-parity arrays of the same width: twin parity must recover
// strictly more groups in aggregate, and both must report rather than
// fabricate what they cannot recover.
func TestDoubleFailureTwinAdvantage(t *testing.T) {
	countLost := func(useRDA bool) float64 {
		total, pairs := 0, 0
		probe, err := Open(smallConfig(PageLogging, Force, useRDA, DataStriping))
		if err != nil {
			t.Fatal(err)
		}
		nd := probe.NumDisks()
		for dA := 0; dA < nd; dA++ {
			for dB := dA + 1; dB < nd; dB++ {
				db, err := Open(smallConfig(PageLogging, Force, useRDA, DataStriping))
				if err != nil {
					t.Fatal(err)
				}
				imgs := loadAll(t, db)
				if err := db.FailDisk(dA); err != nil {
					t.Fatal(err)
				}
				if err := db.FailDisk(dB); err != nil {
					t.Fatal(err)
				}
				lost, err := db.RepairDisks(dA, dB)
				if err != nil {
					t.Fatalf("rda=%v pair (%d,%d): %v", useRDA, dA, dB, err)
				}
				checkAfterDoubleFailure(t, db, imgs, lost)
				total += len(lost)
				pairs++
			}
		}
		return float64(total) / float64(pairs)
	}
	twinLost := countLost(true)
	singleLost := countLost(false)
	if twinLost >= singleLost {
		t.Fatalf("twin parity lost %.1f groups per failure pair, single parity %.1f: twins must help",
			twinLost, singleLost)
	}
	if twinLost == 0 {
		t.Fatalf("some two-disk patterns must still exceed the redundancy")
	}
}

// TestSecondFailureMidRebuild fails a second disk *during* the rebuild
// of the first, via a fault-plane rule that fail-stops the drive once
// the rebuild has written a few blocks.  The interrupted RepairDisk must
// surface the failure (not fabricate data), and the subsequent
// double-disk repair must report the groups that exceeded the
// redundancy while leaving every other page intact.
func TestSecondFailureMidRebuild(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	dA, dB := 0, 1
	if err := db.FailDisk(dA); err != nil {
		t.Fatal(err)
	}
	// Drive dB dies at its next access once the rebuild of dA has
	// written 4 blocks; the rebuild only reads dB, which is exactly why
	// the rule triggers on reads too.
	plane := fault.NewPlane(fault.Schedule{fault.FailDisk(dB, 4)})
	db.SetInjector(plane)
	if err := db.RepairDisk(dA); err == nil {
		t.Fatalf("rebuild of disk %d survived the mid-rebuild failure of disk %d", dA, dB)
	}
	db.SetInjector(nil)
	lost, err := db.RepairDisks(dA, dB)
	if err != nil {
		t.Fatalf("double repair: %v", err)
	}
	if len(lost) == 0 {
		t.Fatalf("two data disks failed; some groups must be reported lost")
	}
	checkAfterDoubleFailure(t, db, imgs, lost)
}

// TestSingleDiskRepairNeverLoses re-checks the single-failure contract
// through the multi-disk API.
func TestSingleDiskRepairNeverLoses(t *testing.T) {
	db, err := Open(smallConfig(PageLogging, Force, true, DataStriping))
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	for d := 0; d < db.NumDisks(); d++ {
		if err := db.FailDisk(d); err != nil {
			t.Fatal(err)
		}
		lost, err := db.RepairDisks(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(lost) != 0 {
			t.Fatalf("single-disk repair reported lost groups %v", lost)
		}
	}
	checkAfterDoubleFailure(t, db, imgs, nil)
}
