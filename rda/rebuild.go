package rda

import (
	"fmt"
	"runtime"

	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/page"
	"repro/internal/workpool"
)

// Health returns the array's availability state (see diskarray.Health):
// Healthy, Degraded (one disk down, serving from redundancy), Rebuilding
// (replacement drive being reconstructed online) or Failed (overlapping
// losses; RepairDisks is the only way out).
func (db *DB) Health() diskarray.Health {
	db.gate.RLock()
	defer db.gate.RUnlock()
	return db.arr.Health()
}

// RebuildProgress describes an online rebuild.
type RebuildProgress struct {
	// Health is the array state the snapshot was taken in.
	Health diskarray.Health
	// DownDisk is the disk being rebuilt (-1 when Healthy).
	DownDisk int
	// TotalGroups is the number of parity groups that keep a block on
	// the down disk; RestoredGroups of them have been reconstructed.
	TotalGroups    int
	RestoredGroups int
}

// Done reports whether nothing is left to rebuild.
func (p RebuildProgress) Done() bool { return p.Health == diskarray.Healthy }

// RebuildProgress returns a snapshot of the online rebuild's progress.
func (db *DB) RebuildProgress() RebuildProgress {
	db.gate.RLock()
	defer db.gate.RUnlock()
	pr := RebuildProgress{Health: db.arr.Health(), DownDisk: db.arr.DownDisk()}
	if !db.store.Degraded() {
		return pr
	}
	down := db.store.DownDisk()
	for g := 0; g < db.arr.NumGroups(); g++ {
		if db.store.GroupOnDisk(page.GroupID(g), down) {
			pr.TotalGroups++
		}
	}
	pr.RestoredGroups = int(db.store.DegradedCounters().RebuiltGroups)
	return pr
}

// RebuildStep reconstructs up to maxGroups parity groups of the down
// disk onto its replacement drive (maxGroups ≤ 0 uses
// Config.RebuildBatchGroups).  The first step swaps the fresh drive in;
// each step runs atomically under the exclusive recovery gate, so live
// transactions interleave between batches — the throttling knob trades
// transaction latency against rebuild time.  Within a batch the group
// reconstructions fan out across Config.Workers (they touch disjoint
// groups, so they are independent).  Restored groups leave degraded
// serving immediately; when the last one is restored the array returns
// to Healthy and (true, nil) is reported.  Resumable: steps may be
// interleaved with any transaction work and repeat after errors.
func (db *DB) RebuildStep(maxGroups int) (bool, error) {
	db.gate.Lock()
	defer db.gate.Unlock()
	if db.crashed {
		return false, ErrCrashed
	}
	return db.rebuildStepLocked(maxGroups)
}

func (db *DB) rebuildStepLocked(maxGroups int) (bool, error) {
	// Unconditional: besides entering degraded serving after a fresh
	// loss, syncHealth also resets stale restored-group state when a
	// rebuild's replacement drive died (Rebuilding fell back to
	// Degraded), so the BeginRebuild below starts over from scratch
	// instead of skipping groups whose blocks died with the replacement.
	//
	// The same from-scratch rule is the deferred-parity interlock after a
	// degraded restart: Recover re-enters degraded serving with ALL
	// restored-group flags wiped (rda/db.go), so a rebuild resumed after
	// a crash walks every group on the down disk again — it cannot
	// certify a group whose parity member recovery deferred without
	// recomputing that member here (restoreGroup), whatever the
	// pre-crash rebuild had already marked restored.
	db.syncHealth()
	if !db.store.Degraded() {
		return true, nil
	}
	downs := db.store.DownDisks()
	switch db.arr.Health() {
	case diskarray.Failed:
		return false, fmt.Errorf("%w: online rebuild impossible, run RepairDisks", ErrArrayFailed)
	case diskarray.Degraded, diskarray.DoubleDegraded:
		if err := db.arr.BeginRebuild(downs...); err != nil {
			return false, err
		}
	case diskarray.Rebuilding:
		// Resuming a rebuild already in flight.
	case diskarray.Healthy:
		// Media recovery got there first.
		db.store.LeaveDegraded()
		return true, nil
	}
	if maxGroups <= 0 {
		maxGroups = db.cfg.RebuildBatchGroups
	}
	batch := make([]page.GroupID, 0, maxGroups)
	remaining := false
	for g := 0; g < db.arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		if !db.store.GroupDegraded(gid) {
			continue
		}
		if len(batch) >= maxGroups {
			remaining = true
			break
		}
		batch = append(batch, gid)
	}
	// Groups are independent — each reconstruction reads its own members
	// and writes its own block on the replacement drive — so the batch
	// fans out.  Workers==1 keeps the exact sequential I/O order the
	// crash-point schedules replay.
	if err := workpool.Run(db.cfg.Workers, len(batch), func(i int) error {
		gid := batch[i]
		if err := db.restoreGroup(gid, downs); err != nil {
			return err
		}
		db.store.MarkRestored(gid)
		return nil
	}); err != nil {
		return false, err
	}
	if remaining {
		return false, nil
	}
	db.arr.FinishRebuild()
	db.store.LeaveDegraded()
	return true, nil
}

// restoreGroup reconstructs group g's blocks on the replacement
// drive(s): lost data pages are solved from the surviving redundancy
// first (one page from the current P or Q, two pages — possible only on
// a Q-parity array — from both equations together), then each lost
// parity twin and Q page is recomputed over the whole data.  Degraded
// groups are always clean (their steals were demoted when the disk went
// down), so the current index describes the on-disk data.
func (db *DB) restoreGroup(g page.GroupID, downs []int) error {
	downSet := make(map[int]bool, len(downs))
	for _, d := range downs {
		downSet[d] = true
	}
	cur := 0
	if db.store.Twins != nil {
		cur = db.store.Twins.Current(g)
	}
	pages := db.arr.GroupPages(g)
	lostData := 0
	for _, p := range pages {
		if downSet[db.arr.DataLoc(p).Disk] {
			lostData++
		}
	}
	if lostData > 0 {
		vals, err := db.store.SolveGroup(g, cur)
		if err != nil {
			return fmt.Errorf("rda: rebuild group %d: %w", g, err)
		}
		for i, p := range pages {
			if !downSet[db.arr.DataLoc(p).Disk] {
				continue
			}
			if err := db.arr.WriteData(p, vals[i], disk.Meta{}); err != nil {
				return fmt.Errorf("rda: rebuild page %d: %w", p, err)
			}
		}
	}
	for twin := 0; twin < db.arr.ParityPages(); twin++ {
		pLost := downSet[db.arr.ParityLoc(g, twin).Disk]
		qLost := twin < db.arr.QParityPages() && downSet[db.arr.QLoc(g, twin).Disk]
		if !pLost && !qLost {
			continue
		}
		var meta disk.Meta
		switch {
		case !pLost:
			// Only the Q page is lost: mirror the surviving P partner's
			// header (the lockstep invariant).
			m, err := db.arr.ReadParityMeta(g, twin)
			if err != nil {
				return fmt.Errorf("rda: rebuild Q of group %d: %w", g, err)
			}
			meta = m
		case db.store.Twins != nil && cur != twin:
			// The lost twin held history; its replacement starts over as
			// an obsolete copy of the current parity.
			meta = disk.Meta{State: disk.StateObsolete, Timestamp: 0}
		default:
			meta = disk.Meta{State: disk.StateCommitted, Timestamp: db.tm.NextTimestamp()}
		}
		if qLost {
			if err := db.arr.RecomputeQ(g, twin, meta); err != nil {
				return fmt.Errorf("rda: rebuild Q of group %d: %w", g, err)
			}
		}
		if pLost {
			if err := db.arr.RecomputeParity(g, twin, meta); err != nil {
				return fmt.Errorf("rda: rebuild parity of group %d: %w", g, err)
			}
		}
	}
	return nil
}

// StartRebuild launches the online rebuild worker in a goroutine.  It
// loops RebuildStep with the configured batch size, yielding between
// batches so live transactions interleave, and delivers the final result
// (nil on a completed rebuild) on the returned channel.
//
// Throttling: Config.RebuildBatchGroups is the only throttle.  The
// Gosched between batches lets other runnable goroutines in, but offers
// no fairness guarantee of its own — what keeps the worker from
// monopolizing the engine is that each batch re-acquires the exclusive
// recovery gate, and Go's RWMutex blocks new readers behind a waiting
// writer (and vice versa: a batch queued behind active readers lets them
// drain first), so transactions and rebuild batches alternate rather
// than starve each other.  Callers needing a stronger pacing policy
// (sleep between batches, external rate limit) should drive RebuildStep
// themselves.
func (db *DB) StartRebuild() <-chan error {
	ch := make(chan error, 1)
	go func() {
		for {
			done, err := db.RebuildStep(0)
			if err != nil {
				ch <- err
				return
			}
			if done {
				ch <- nil
				return
			}
			runtime.Gosched()
		}
	}()
	return ch
}
