package rda

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// This file is the serializability oracle: concurrent histories of the
// group-latched engine are recorded and replayed against a fresh
// single-goroutine engine in CommitSeq order, then the two final states
// are diffed byte-for-byte.  Strict 2PL promises that the concurrent
// execution is equivalent to SOME serial order; the engine's CommitSeq
// (assigned inside the latch-held EOT section) names that order, so a
// single-threaded replay in CommitSeq order must reproduce the exact
// final bytes.  The transformation each transaction applies is
// non-commutative (state' = state*PRIME + delta), so any latching bug
// that lets two committers interleave on a page produces a different
// byte sequence, not a coincidentally equal one.

// oraclePrime makes the per-page transformation order-sensitive.
const oraclePrime = 1099087573

// oracleOp is one page update: the page and the delta folded into its
// counter.  The written value is derived from the read value, so the op
// stream plus the serialization order fully determine the final state.
type oracleOp struct {
	page  PageID
	delta uint64
}

// oracleTxn is one committed transaction of the recorded history.
type oracleTxn struct {
	seq int64
	ops []oracleOp
}

// oracleConfig is the soak geometry: small pages and few frames so
// eviction steals and demotions fire constantly, many groups so disjoint
// workers really run in parallel.
func oracleConfig() Config {
	return Config{
		DataDisks:    4,
		NumPages:     64,
		PageSize:     64,
		BufferFrames: 8,
		Logging:      PageLogging,
		EOT:          NoForce,
		RDA:          true,
		LogPageSize:  256,
	}
}

// counterOf extracts the page's logical state from its bytes.
func counterOf(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// pageFromCounter renders the full deterministic page image for a
// logical state: the counter followed by a fill derived from it, so a
// byte-level diff checks more than the first eight bytes.
func pageFromCounter(size int, c uint64) []byte {
	out := make([]byte, size)
	binary.BigEndian.PutUint64(out, c)
	h := c ^ 0x9E3779B97F4A7C15
	for i := 8; i < size; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		out[i] = byte(h >> 56)
	}
	return out
}

// applyOps runs one transaction's ops on tx: read each page, fold the
// delta into its counter, write the derived image back.
func applyOps(tx *Tx, size int, ops []oracleOp) error {
	for _, op := range ops {
		b, err := tx.ReadPage(op.page)
		if err != nil {
			return err
		}
		next := counterOf(b)*oraclePrime + op.delta
		if err := tx.WritePage(op.page, pageFromCounter(size, next)); err != nil {
			return err
		}
	}
	return nil
}

// runOracleWorkload drives `workers` goroutines of `txnsEach`
// transactions against db, each transaction applying opsPer ops drawn by
// a per-worker deterministic rng from the worker's page set.  Deadlock
// victims retry the same ops.  It returns the committed history sorted
// by CommitSeq.
func runOracleWorkload(t *testing.T, db *DB, pagesFor func(worker int) []PageID, workers, txnsEach, opsPer int, seed int64) []oracleTxn {
	t.Helper()
	size := db.PageSize()
	var (
		mu      sync.Mutex
		history []oracleTxn
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			pages := pagesFor(w)
			for n := 0; n < txnsEach; n++ {
				ops := make([]oracleOp, opsPer)
				for i := range ops {
					ops[i] = oracleOp{
						page:  pages[rng.Intn(len(pages))],
						delta: rng.Uint64() | 1,
					}
				}
				// A sixth of the transactions abort on purpose: aborted
				// work must leave no trace in the final state.
				abort := rng.Intn(6) == 0
				// Deadlock victims retry the same ops; a transaction that
				// stays a victim is abandoned — it never committed, so
				// the history correctly omits it.
				const maxAttempts = 500
				for attempt := 0; attempt < maxAttempts; attempt++ {
					if attempt > 0 {
						time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
					}
					tx, err := db.Begin()
					if err != nil {
						errs <- fmt.Errorf("worker %d begin: %w", w, err)
						return
					}
					if err := applyOps(tx, size, ops); err != nil {
						if errors.Is(err, ErrDeadlock) {
							continue // already aborted; retry the same ops
						}
						errs <- fmt.Errorf("worker %d txn %d: %w", w, n, err)
						return
					}
					if abort {
						if err := tx.Abort(); err != nil {
							errs <- fmt.Errorf("worker %d abort: %w", w, err)
							return
						}
						break
					}
					if err := tx.Commit(); err != nil {
						if errors.Is(err, ErrDeadlock) {
							continue
						}
						errs <- fmt.Errorf("worker %d commit: %w", w, err)
						return
					}
					mu.Lock()
					history = append(history, oracleTxn{seq: tx.CommitSeq(), ops: ops})
					mu.Unlock()
					break
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sort.Slice(history, func(i, j int) bool { return history[i].seq < history[j].seq })
	for i := 1; i < len(history); i++ {
		if history[i].seq == history[i-1].seq {
			t.Fatalf("duplicate CommitSeq %d", history[i].seq)
		}
	}
	return history
}

// replayHistory re-executes the committed history on a fresh
// single-goroutine engine in CommitSeq order.
func replayHistory(t *testing.T, cfg Config, history []oracleTxn) *DB {
	t.Helper()
	ref, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	size := ref.PageSize()
	for _, h := range history {
		tx, err := ref.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := applyOps(tx, size, h.ops); err != nil {
			t.Fatalf("replay seq %d: %v", h.seq, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("replay commit seq %d: %v", h.seq, err)
		}
	}
	return ref
}

// diffStates compares the two engines byte-for-byte, checks both parity
// invariants, and requires every group's Dirty_Set entry cleared.
func diffStates(t *testing.T, got, want *DB) {
	t.Helper()
	// Flush buffered state so the platter comparison sees everything.
	if err := got.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := want.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < got.NumPages(); p++ {
		g, err := got.PeekPage(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		w, err := want.PeekPage(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(g, w) {
			t.Errorf("page %d: concurrent run diverges from CommitSeq-order replay (counter %d vs %d)",
				p, counterOf(g), counterOf(w))
		}
	}
	if err := got.VerifyParity(); err != nil {
		t.Errorf("concurrent engine parity: %v", err)
	}
	if err := want.VerifyParity(); err != nil {
		t.Errorf("replay engine parity: %v", err)
	}
	for p := 0; p < got.NumPages(); p++ {
		info, err := got.InspectGroup(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		if info.Dirty {
			t.Errorf("group %d still dirty after quiesce", info.Group)
		}
	}
}

// TestSerializabilityOracleDisjoint runs workers over disjoint page
// ranges — the embarrassingly parallel case the group latches exist for —
// and replays the history.
func TestSerializabilityOracleDisjoint(t *testing.T) {
	cfg := oracleConfig()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	per := cfg.NumPages / workers
	pagesFor := func(w int) []PageID {
		out := make([]PageID, per)
		for i := range out {
			out[i] = PageID(w*per + i)
		}
		return out
	}
	history := runOracleWorkload(t, db, pagesFor, workers, 25, 6, 42)
	ref := replayHistory(t, cfg, history)
	diffStates(t, db, ref)
}

// TestSerializabilityOracleOverlapping runs every worker over the whole
// page set, so 2PL conflicts and deadlock-victim retries are constant,
// and replays the history.
func TestSerializabilityOracleOverlapping(t *testing.T) {
	cfg := oracleConfig()
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]PageID, cfg.NumPages)
	for i := range all {
		all[i] = PageID(i)
	}
	pagesFor := func(int) []PageID { return all }
	history := runOracleWorkload(t, db, pagesFor, 6, 20, 4, 7)
	if len(history) == 0 {
		t.Fatal("no transaction committed")
	}
	ref := replayHistory(t, cfg, history)
	diffStates(t, db, ref)
}

// TestSerializabilityOracleForce repeats the overlapping soak under the
// FORCE discipline, whose commit path flushes every modified page under
// the transaction's latched group set.
func TestSerializabilityOracleForce(t *testing.T) {
	cfg := oracleConfig()
	cfg.EOT = Force
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]PageID, cfg.NumPages)
	for i := range all {
		all[i] = PageID(i)
	}
	history := runOracleWorkload(t, db, func(int) []PageID { return all }, 6, 15, 4, 99)
	ref := replayHistory(t, cfg, history)
	diffStates(t, db, ref)
}

// crashOracleWorkload is the concurrent workload the crash tests
// interrupt: workers loop blind writes of deterministic images and
// record what they committed; an ErrCrashed return stops the worker.
// Because a Commit in flight when Crash takes the exclusive gate
// completes before the gate is granted, a nil Commit return means
// durably committed and any error means not committed — there is no
// ambiguous outcome for the oracle (the fault-injection crash tests in
// rda/crashcheck cover mid-commit crashes).
//
// Group commit reintroduces one ambiguity, in the safe direction only:
// a transaction whose EOT reached the log tail (CommitSeq assigned) but
// whose Commit then returned ErrCrashed may or may not have been covered
// by a batched force before the crash.  Those transactions land in
// ambig; the group-commit oracle accepts either outcome for them while
// still holding every nil-return Commit to full durability.
type crashHistory struct {
	mu    sync.Mutex
	txns  []oracleTxn // delta reused as the image seed for blind writes
	ambig []oracleTxn // EOT appended, ack lost to the crash: may be durable
}

func runCrashWorkload(db *DB, workers int, seed int64, hist *crashHistory, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	size := db.PageSize()
	npages := db.NumPages()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				tx, err := db.Begin()
				if err != nil {
					return // ErrCrashed: done
				}
				ops := make([]oracleOp, 3)
				ok := true
				for i := range ops {
					ops[i] = oracleOp{page: PageID(rng.Intn(npages)), delta: rng.Uint64()}
					if err := tx.WritePage(ops[i].page, pageFromCounter(size, ops[i].delta)); err != nil {
						if errors.Is(err, ErrDeadlock) || errors.Is(err, ErrCrashed) || errors.Is(err, ErrTxDone) {
							ok = false
							break
						}
						return
					}
				}
				if !ok {
					continue
				}
				if err := tx.Commit(); err != nil {
					if tx.CommitSeq() > 0 {
						// The EOT was appended before the commit failed:
						// under group commit the fold-in races the crash,
						// so the transaction may silently be durable.
						hist.mu.Lock()
						hist.ambig = append(hist.ambig, oracleTxn{seq: tx.CommitSeq(), ops: ops})
						hist.mu.Unlock()
					}
					continue
				}
				hist.mu.Lock()
				hist.txns = append(hist.txns, oracleTxn{seq: tx.CommitSeq(), ops: ops})
				hist.mu.Unlock()
			}
		}(w)
	}
	return &wg
}

// verifyCrashOracle checks every page equals the image of the last
// committed write in CommitSeq order (or zero if never written).
func verifyCrashOracle(t *testing.T, db *DB, hist *crashHistory) {
	t.Helper()
	hist.mu.Lock()
	txns := append([]oracleTxn(nil), hist.txns...)
	hist.mu.Unlock()
	sort.Slice(txns, func(i, j int) bool { return txns[i].seq < txns[j].seq })
	want := make(map[PageID]uint64)
	for _, h := range txns {
		for _, op := range h.ops {
			want[op.page] = op.delta
		}
	}
	size := db.PageSize()
	for p := 0; p < db.NumPages(); p++ {
		got, err := db.PeekPage(PageID(p))
		if err != nil {
			t.Fatal(err)
		}
		exp := make([]byte, size)
		if c, ok := want[PageID(p)]; ok {
			exp = pageFromCounter(size, c)
		}
		if !bytes.Equal(got, exp) {
			t.Errorf("page %d diverges from committed history after crash recovery", p)
		}
	}
}

// runWithWatchdog fails the test if fn does not return within the
// deadline — the shape of failure a Crash/latch deadlock produces.
func runWithWatchdog(t *testing.T, name string, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not finish within %v: deadlock", name, d)
	}
}

// TestCrashDuringConcurrentTransactions is the regression test for the
// old CrashHard bug (it re-created the engine mutex out from under
// in-flight holders, a latent double-unlock/deadlock): a crash taken
// while transactions are in flight must quiesce them via the recovery
// gate — every worker unwinds promptly with ErrCrashed, Recover succeeds,
// and the committed history survives.
func TestCrashDuringConcurrentTransactions(t *testing.T) {
	for _, hard := range []bool{false, true} {
		name := "Crash"
		if hard {
			name = "CrashHard"
		}
		t.Run(name, func(t *testing.T) {
			cfg := oracleConfig()
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			hist := &crashHistory{}
			stop := make(chan struct{})
			wg := runCrashWorkload(db, 8, 1234, hist, stop)
			// Let the workload build up in-flight state, then crash
			// under it.
			for {
				hist.mu.Lock()
				n := len(hist.txns)
				hist.mu.Unlock()
				if n >= 50 {
					break
				}
				time.Sleep(time.Millisecond)
			}
			runWithWatchdog(t, "crash under load", 30*time.Second, func() {
				if hard {
					db.CrashHard()
				} else {
					db.Crash()
				}
			})
			runWithWatchdog(t, "worker drain", 30*time.Second, wg.Wait)
			close(stop)
			if _, err := db.Begin(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Begin on crashed db: %v, want ErrCrashed", err)
			}
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			if err := db.VerifyRecovered(); err != nil {
				t.Fatal(err)
			}
			verifyCrashOracle(t, db, hist)
			// The engine must be fully usable again.
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.WritePage(0, pageFromCounter(cfg.PageSize, 777)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRebuildRacesLiveTransactions fails a disk under a live concurrent
// workload, runs the online rebuild worker while the workload keeps
// going, and checks the restored array against the committed history —
// the rebuild's exclusive gate batches must interleave with live
// transactions without corrupting either side.
func TestRebuildRacesLiveTransactions(t *testing.T) {
	cfg := oracleConfig()
	cfg.Workers = 4 // parallel batch reconstruction under live load
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hist := &crashHistory{}
	stop := make(chan struct{})
	wg := runCrashWorkload(db, 6, 555, hist, stop)
	for {
		hist.mu.Lock()
		n := len(hist.txns)
		hist.mu.Unlock()
		if n >= 30 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	rebuilt := db.StartRebuild()
	runWithWatchdog(t, "online rebuild under load", 60*time.Second, func() {
		if err := <-rebuilt; err != nil {
			t.Errorf("rebuild: %v", err)
		}
	})
	close(stop)
	runWithWatchdog(t, "worker drain", 30*time.Second, wg.Wait)
	if got := db.Health(); got.String() != "healthy" {
		t.Fatalf("health after rebuild: %v", got)
	}
	// Quiesce buffered state, then hold the survivors to the history.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	verifyCrashOracle(t, db, hist)
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}
