package rda

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/diskarray"
	"repro/internal/page"
	"repro/internal/wal"
)

// FORCE-at-EOT flushing.  The synchronous path flushes the modified
// pages one at a time in page order — deterministic, required for
// byte-replayable crash schedules.  The pipelined path (QueueDepth > 1)
// fans the flush out by parity group: groups are independent (the caller
// holds every group's latch, and the store's group-striped protocol
// already allows concurrent commits on disjoint groups), so their disk
// work overlaps across drives.  Within a group, a flush that covers the
// whole stripe collapses into one parity write plus the data writes (see
// core.WriteStripeLogged); anything else falls back to per-page flushes.

// flushForce writes the transaction's modified pages to the array, as
// FORCE EOT processing requires.  Caller holds all modified groups'
// latches.
func (db *DB) flushForce(st *txState) error {
	pages := sortedPages(st.t.Modified)
	if !db.store.Pipelined {
		for _, p := range pages {
			if err := db.pool.FlushPage(p); err != nil {
				return err
			}
		}
		return nil
	}
	byGroup := make(map[page.GroupID][]page.PageID)
	for _, p := range pages {
		g := db.arr.GroupOf(p)
		byGroup[g] = append(byGroup[g], p)
	}
	groups := make([]page.GroupID, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i] < groups[j] })
	if len(groups) == 1 {
		return db.flushGroup(st, groups[0], byGroup[groups[0]])
	}
	ops := make([]func() error, len(groups))
	for i, g := range groups {
		g := g
		ops[i] = func() error { return db.flushGroup(st, g, byGroup[g]) }
	}
	// Batch joins every branch and surfaces the first error (or the
	// earliest crash panic) in group order, keeping failures
	// deterministic per-interleaving.
	return diskarray.Batch(ops...)
}

// flushGroup flushes one group's modified pages: the full-stripe
// coalesced write when eligible, per-page flushes otherwise.
func (db *DB) flushGroup(st *txState, g page.GroupID, pages []page.PageID) error {
	done, err := db.tryFlushStripe(st, g, pages)
	if done || err != nil {
		return err
	}
	for _, p := range pages {
		if err := db.pool.FlushPage(p); err != nil {
			return err
		}
	}
	return nil
}

// tryFlushStripe coalesces a whole-stripe flush into one parity update.
// Eligibility is deliberately narrow — see core.WriteStripeLogged for
// why anything less than a full stripe with complete logged undo cover
// must not coalesce:
//
//   - RDA with page logging (before-images are page images, so every
//     stripe member gets full undo cover from one record each);
//   - the page set is exactly the group's stripe;
//   - the array is healthy and the group clean;
//   - every stripe page is resident and dirty, so the combined write
//     sees all the data.
//
// The before-images of every stripe page are appended unforced and made
// durable with a single log force before the first disk write — the
// write-ahead rule at batch granularity.
func (db *DB) tryFlushStripe(st *txState, g page.GroupID, pages []page.PageID) (bool, error) {
	if !db.cfg.RDA || db.cfg.Logging != PageLogging || db.store.Degraded() {
		return false, nil
	}
	if _, dirty := db.store.Dirty.Lookup(g); dirty {
		return false, nil
	}
	stripe := db.arr.GroupPages(g)
	if len(pages) != len(stripe) {
		return false, nil
	}
	for i := range stripe {
		// Both slices are ascending.
		if pages[i] != stripe[i] {
			return false, nil
		}
	}
	for _, p := range pages {
		if f := db.pool.Frame(p); f == nil || !f.Dirty {
			return false, nil
		}
	}
	db.ensureBOT(st)
	var maxLSN wal.LSN
	for _, p := range pages {
		if lsn := db.ensureUndoUnforced(st, p); lsn > maxLSN {
			maxLSN = lsn
		}
	}
	if maxLSN > 0 {
		db.log.Force(maxLSN)
	}
	// The pages are about to be written to disk with log-based undo;
	// mark that before issuing the write so an abort after a partial
	// failure restores them on disk (same order as writeBack's logging
	// path).
	st.mu.Lock()
	for _, p := range pages {
		st.stolenLogged[p] = true
	}
	st.mu.Unlock()
	done, err := db.pool.FlushTogether(pages, func(datas []page.Buf) error {
		return db.store.WriteStripeLogged(g, pages, datas)
	})
	if err != nil {
		if errors.Is(err, core.ErrNotStripe) {
			return false, nil
		}
		return true, fmt.Errorf("rda: stripe flush of group %d: %w", g, err)
	}
	return done, nil
}
