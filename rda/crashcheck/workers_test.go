package crashcheck

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/rda"
)

// These tests re-run the fault sweeps with engine-internal parallelism
// enabled (Options.Workers > 1).  The workload is still single-threaded,
// so a schedule's crash index is still deterministic; what changes is
// that recovery's whole-array scans, the online rebuild's batches and
// bulk-load stripes fan out across goroutines — so a crash point can now
// land on a workpool worker and must still unwind into CrashHard
// cleanly, and the recovery invariants must hold whatever interleaving
// the scheduler picked.

// TestSoakWithWorkers is the randomized crash-and-recover soak with
// parallel recovery scans.
func TestSoakWithWorkers(t *testing.T) {
	opts := small(rda.DataStriping)
	opts.Workers = 4
	res, err := Soak(opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%v", v)
	}
}

// TestDegradedScheduleWithWorkers crashes inside the parallel online
// rebuild: the disk is down from the start, and the crash index sweeps
// into the rebuild that follows the workload, so crash sentinels fire on
// rebuild worker goroutines.
func TestDegradedScheduleWithWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("degraded sweep in -short mode")
	}
	opts := small(rda.DataStriping)
	opts.Workers = 4
	_, full, err := countDegraded(opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sample the write clock rather than sweeping exhaustively: the
	// parallel write order varies run to run anyway, so each index is a
	// fresh interleaving, not a replay.
	for k := int64(0); k < full; k += 3 {
		sched := fault.Schedule{fault.FailDisk(0, 0), fault.CrashAfterNWrites(k)}
		if _, err := RunDegradedSchedule(opts, sched); err != nil {
			t.Errorf("workers=4 %v: %v", sched, err)
		}
	}
}

// TestMixTransientWithWorkers combines a background transient-error
// rate, a mid-run disk death and a crash, all with parallel recovery
// and rebuild scans.
func TestMixTransientWithWorkers(t *testing.T) {
	opts := small(rda.DataStriping)
	opts.Workers = 4
	total, err := CountWrites(opts)
	if err != nil {
		t.Fatal(err)
	}
	if total < 3 {
		t.Fatalf("workload too small: %d writes", total)
	}
	// The crash index must stay inside the workload's write range
	// (crashes landing after the last workload write would fire inside
	// the probe, outside any recover harness).
	for _, k := range []int64{0, total / 2, total - 2} {
		sched := fault.Schedule{fault.FailDisk(1, k), fault.CrashAfterNWrites(k + 1)}
		if err := RunMixSchedule(opts, sched, 7); err != nil {
			t.Errorf("workers=4 %v: %v", sched, err)
		}
	}
}

// TestBulkLoadCrashParallel crashes a parallel bulk load at every write
// index.  Bulk loading is documented as non-atomic (loaders re-run after
// a crash), so the oracle here is the invariant set: recovery must
// succeed, the parity identity and twin legality must hold, and a probe
// transaction must commit durably — whichever stripes the crash cut.
func TestBulkLoadCrashParallel(t *testing.T) {
	cfg := dbConfig(Options{Layout: rda.DataStriping, Workers: 4})
	images := make([][]byte, cfg.NumPages)
	for i := range images {
		img := make([]byte, cfg.PageSize)
		for j := range img {
			img[j] = byte(i*31 + j)
		}
		images[i] = img
	}

	// Count the load's writes once, uncrashed.
	db, err := rda.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plane := fault.NewPlane(nil)
	db.SetInjector(plane)
	if _, err := db.BulkLoad(0, images); err != nil {
		t.Fatal(err)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	total := plane.Writes()
	if total == 0 {
		t.Fatal("bulk load issued no writes")
	}

	for k := int64(0); k < total; k++ {
		db, err := rda.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		db.SetInjector(fault.NewPlane(fault.Schedule{fault.CrashAfterNWrites(k)}))
		crashed := func() (crashed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := fault.AsCrash(r); !ok {
						panic(r)
					}
					crashed = true
				}
			}()
			_, err := db.BulkLoad(0, images)
			if err != nil {
				t.Fatalf("crash@w%d: bulk load error (want crash panic or success): %v", k, err)
			}
			return false
		}()
		if !crashed {
			t.Fatalf("crash@w%d did not fire within %d writes", k, total)
		}
		db.CrashHard()
		if _, err := db.Recover(); err != nil {
			t.Fatalf("crash@w%d: recover: %v", k, err)
		}
		if err := db.VerifyRecovered(); err != nil {
			t.Fatalf("crash@w%d: %v", k, err)
		}
		// The engine must still do transactional work on top of the
		// partial load.
		tx, err := db.Begin()
		if err != nil {
			t.Fatalf("crash@w%d: probe begin: %v", k, err)
		}
		probe := make([]byte, cfg.PageSize)
		for j := range probe {
			probe[j] = 0xA5
		}
		if err := tx.WritePage(0, probe); err != nil {
			t.Fatalf("crash@w%d: probe write: %v", k, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("crash@w%d: probe commit: %v", k, err)
		}
		got, err := db.PeekPage(0)
		if err != nil {
			t.Fatalf("crash@w%d: probe peek: %v", k, err)
		}
		if !bytes.Equal(got, probe) {
			t.Fatalf("crash@w%d: probe update not durable", k)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("crash@w%d: %v", k, err)
		}
	}
}
