// Package crashcheck is the crash-point explorer for the RDA engine.
//
// The paper's central claim (Section 4) is that twin-parity undo makes
// the database recoverable from a crash at *any* instant, without UNDO
// log writes for stolen pages.  This package turns that claim into a
// machine-checked property:
//
//  1. run a deterministic seeded workload once under a counting fault
//     plane and record W, the total number of block writes it issues;
//  2. for every write index k in [0, W), re-run the identical workload,
//     crash it at write k (cleanly, or tearing write k itself in torn
//     mode), run crash recovery, and verify the recovered state.
//
// The verified invariants after each crash:
//
//   - every page a committed transaction wrote holds its last committed
//     image (durability);
//   - no page shows data from an uncommitted transaction (no-UNDO steal
//     really undone);
//   - the single transaction whose Commit the crash may have interrupted
//     is atomic — all of its pages are new or all are old;
//   - each group's current parity twin equals the XOR of its data pages,
//     no working-state twin survives, the twin-state pair is one a legal
//     Figure 8 history can produce, the Current_Parity bitmap matches a
//     Figure 7 recomputation, and the Dirty_Set is empty
//     (DB.VerifyRecovered);
//   - the database still works: a probe transaction commits and its
//     update is durable and parity-consistent.
//
// The same property holds degraded: ExploreDegraded repeats the sweep
// with one disk already down, with the disk death coinciding with the
// crash, and with the crash landing inside the online rebuild — degraded
// crash recovery must preserve every invariant above on the surviving
// members, with explicit (zeroed, reported) data loss tolerated only
// when the death and the crash coincide.
//
// Because the workload, the buffer manager, and the fault plane are all
// deterministic, a failing run is identified completely by its seed and
// schedule, both of which print in a replayable syntax.
package crashcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/rda"
)

// Options configures an exploration.
type Options struct {
	// Layout selects the array organization (the explorer is run once
	// per layout: DataStriping exercises RAID5Twin, ParityStriping
	// exercises ParityStripeTwin).
	Layout rda.Layout
	// Seed drives the workload generator.
	Seed int64
	// Txns is the number of transactions in the workload (default 8).
	Txns int
	// OpsPerTx is the number of page operations per transaction.  The
	// default of 10 exceeds the buffer pool's 6 frames so transactions
	// dirty more pages than fit, forcing mid-transaction eviction steals
	// through the paper's no-UNDO-logging path — the state the crash
	// sweep most needs to interrupt.
	OpsPerTx int
	// Torn makes Explore tear write k itself (half the payload and the
	// full header persist) instead of dropping it cleanly.
	Torn bool
	// Workers sets the engine's internal parallelism (rda.Config.Workers:
	// rebuild batches, recovery scans, bulk loads).  The workload itself
	// stays single-threaded, so the crash index of a schedule still
	// addresses a deterministic write; with Workers > 1 the *recovery and
	// rebuild* write order is scheduler-dependent, so sweeps exercise the
	// invariants under many interleavings rather than replaying one.
	// 0 means the engine default (1, fully deterministic).
	Workers int
	// Scrub interleaves the online scrubber with the workload: one
	// ScrubStep after every transaction, so verification reads (and the
	// repair writes they trigger) mix with live commits and schedule
	// rules can land inside scrub I/O.  Used by the corruption soak.
	Scrub bool
	// QParity runs the sweep on a P+Q (RAID-6 style) array: two
	// redundancy equations per group, so two overlapping disk deaths
	// stay within budget.  ExploreDouble forces it on; the other modes
	// accept it to re-run their single-fault sweeps over the richer
	// geometry.
	QParity bool
	// QueueDepth sets the engine's per-drive request queue depth
	// (rda.Config.QueueDepth).  With a depth > 1 the async pipeline is
	// on: fault injectors observe transfers at queue-DEQUEUE time, so a
	// CrashAfterNWrites(k) schedule crashes at the k-th *dequeued* write
	// — the sweep then covers every dequeue index.  The pipeline's
	// intra-operation batches (overlapped RMW reads, full-stripe data
	// writes) make the dequeue interleaving scheduler-dependent, so as
	// with Workers > 1 the sweep exercises the recovery invariants under
	// many interleavings rather than replaying one byte-stable schedule.
	// 0 or 1 keeps the synchronous drive model (dequeue order == submit
	// order, byte-replayable).
	QueueDepth int
}

func (o *Options) fill() {
	if o.Txns <= 0 {
		o.Txns = 8
	}
	if o.OpsPerTx <= 0 {
		o.OpsPerTx = 10
	}
}

// dbConfig is the explorer's geometry: small enough that an exhaustive
// sweep stays cheap, with fewer buffer frames than the working set so
// eviction steals (the paper's no-UNDO-logging path) actually happen.
func dbConfig(opts Options) rda.Config {
	return rda.Config{
		DataDisks:    4,
		NumPages:     48,
		PageSize:     64,
		BufferFrames: 6,
		Layout:       opts.Layout,
		Logging:      rda.PageLogging,
		EOT:          rda.Force,
		RDA:          true,
		QParity:      opts.QParity,
		LogPageSize:  256,
		LogWriteCost: 4,
		Workers:      opts.Workers,
		QueueDepth:   opts.QueueDepth,
	}
}

// Violation is one failed crash-and-recover run, identified by the seed
// and schedule that reproduce it.
type Violation struct {
	Seed     int64
	Schedule fault.Schedule
	Err      error
}

// String renders the violation with its deterministic reproduction key.
func (v Violation) String() string {
	return fmt.Sprintf("seed=%d sched=%q: %v", v.Seed, v.Schedule, v.Err)
}

// Result summarizes an exploration.
type Result struct {
	// TotalWrites is W for the last counted workload (0 for Replay).
	TotalWrites int64
	// Runs is the number of crash-and-recover cycles performed.
	Runs int
	// Violations holds every failed run.
	Violations []Violation

	// Degraded-sweep aggregates (RunDegradedSchedule-based modes only),
	// summed over every recovery the sweep performed.
	UndoneViaReconstruction int
	DeferredParityGroups    int
	// DataLossRuns counts runs whose recovery reported lost pages — legal
	// only for schedules where the disk death coincides with the crash.
	DataLossRuns int
	// LostPages is the total number of pages those runs reported lost.
	LostPages int

	// Integrity-plane aggregates (CorruptSoak only): the engine's
	// corruption counters summed over every run, evidence that the soak's
	// planted faults were actually detected and repaired rather than
	// never touched.
	CorruptBlocksDetected   int64
	ReadRepairs             int64
	ScrubRepairs            int64
	ScrubbedGroups          int64
	UnrecoverableCorruption int64
}

// absorbStats folds one run's integrity counters into the aggregates.
func (r *Result) absorbStats(s rda.Stats) {
	r.CorruptBlocksDetected += s.CorruptBlocksDetected
	r.ReadRepairs += s.ReadRepairs
	r.ScrubRepairs += s.ScrubRepairs
	r.ScrubbedGroups += s.ScrubbedGroups
	r.UnrecoverableCorruption += s.UnrecoverableCorruption
}

// absorb folds one run's recovery report into the sweep aggregates.
func (r *Result) absorb(rep *rda.RecoveryReport) {
	if rep == nil {
		return
	}
	r.UndoneViaReconstruction += rep.UndoneViaReconstruction
	r.DeferredParityGroups += rep.DeferredParityGroups
	if len(rep.LostPages) > 0 {
		r.DataLossRuns++
		r.LostPages += len(rep.LostPages)
	}
}

// driver runs the deterministic workload and carries the oracle: the
// page images every committed transaction has durably written.
type driver struct {
	db   *rda.DB
	opts Options
	rng  *rand.Rand

	committed map[rda.PageID][]byte
	pending   map[rda.PageID][]byte // current transaction's writes
	inCommit  bool                  // crash may have interrupted an EOT
	// lost holds pages recovery reported as beyond the surviving
	// redundancy (coinciding crash + disk death only): the oracle expects
	// them zeroed — explicit loss, never silent corruption.
	lost map[rda.PageID]bool
}

func newDriver(db *rda.DB, opts Options) *driver {
	return &driver{
		db:        db,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		committed: make(map[rda.PageID][]byte),
	}
}

// noteLost records pages recovery declared lost; verify holds them to
// the explicit-loss contract (zeroed) instead of the committed oracle.
func (d *driver) noteLost(pages []rda.PageID) {
	if d.lost == nil {
		d.lost = make(map[rda.PageID]bool)
	}
	for _, p := range pages {
		d.lost[p] = true
	}
}

// pageImage is the deterministic content transaction txn writes to page
// p at operation op.  It depends only on (seed, txn, op, p), never on
// rng state, so the oracle can recompute it.
func (d *driver) pageImage(txn, op int, p rda.PageID) []byte {
	out := make([]byte, d.db.PageSize())
	h := uint64(d.opts.Seed)*0x9E3779B97F4A7C15 ^ uint64(txn)<<40 ^ uint64(op)<<20 ^ uint64(p)
	for i := range out {
		h = h*6364136223846793005 + 1442695040888963407
		out[i] = byte(h >> 56)
	}
	return out
}

// run executes the seeded workload.  It returns the crash sentinel if a
// schedule rule fired mid-run, nil if the workload completed.  All rng
// draws happen in a fixed order, so every run with the same seed issues
// the identical I/O sequence up to the crash point.
func (d *driver) run() (crash *fault.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	npages := d.db.NumPages()
	for t := 0; t < d.opts.Txns; t++ {
		tx, err := d.db.Begin()
		if err != nil {
			return nil, fmt.Errorf("txn %d begin: %w", t, err)
		}
		d.pending = make(map[rda.PageID][]byte)
		abort := d.rng.Intn(6) == 0
		for op := 0; op < d.opts.OpsPerTx; op++ {
			p := rda.PageID(d.rng.Intn(npages))
			if d.rng.Intn(4) == 0 {
				got, err := tx.ReadPage(p)
				if err != nil {
					return nil, fmt.Errorf("txn %d read page %d: %w", t, p, err)
				}
				// Per-read oracle: the workload is single-threaded, so
				// every successful read has exactly one legal value — the
				// transaction's own pending write, else the last committed
				// image, else the formatted zero page.  Serving anything
				// else (a stale lost-write ghost, a misdirected payload, a
				// rotted block) is the silent corruption the integrity
				// plane exists to make impossible.
				want, ok := d.pending[p]
				if !ok {
					want = d.expected(p)
				}
				if !bytes.Equal(got, want) {
					return nil, fmt.Errorf("txn %d read of page %d served corrupt data", t, p)
				}
				continue
			}
			img := d.pageImage(t, op, p)
			if err := tx.WritePage(p, img); err != nil {
				return nil, fmt.Errorf("txn %d write page %d: %w", t, p, err)
			}
			d.pending[p] = img
		}
		if abort {
			if err := tx.Abort(); err != nil {
				return nil, fmt.Errorf("txn %d abort: %w", t, err)
			}
			d.pending = nil
			continue
		}
		d.inCommit = true
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("txn %d commit: %w", t, err)
		}
		d.inCommit = false
		for p, img := range d.pending {
			d.committed[p] = img
		}
		d.pending = nil
		if d.opts.Scrub {
			if _, _, err := d.db.ScrubStep(1); err != nil {
				return nil, fmt.Errorf("scrub step after txn %d: %w", t, err)
			}
		}
	}
	return nil, nil
}

// expected returns the oracle image of page p: its last committed write,
// or the formatted zero page.
func (d *driver) expected(p rda.PageID) []byte {
	if img, ok := d.committed[p]; ok {
		return img
	}
	return make([]byte, d.db.PageSize())
}

// verify compares every on-disk page against the oracle.  If the crash
// unwound out of a Commit, that one transaction's outcome is ambiguous:
// its pages may all show the new images (the EOT record made it to the
// log) or all show the old ones (it did not) — but never a mix.
func (d *driver) verify() error {
	if d.inCommit && len(d.pending) > 0 {
		var newN, oldN int
		for p, img := range d.pending {
			if d.lost[p] {
				continue
			}
			got, err := d.db.PeekPage(p)
			if err != nil {
				return fmt.Errorf("peek page %d: %w", p, err)
			}
			old := d.expected(p)
			switch {
			case bytes.Equal(got, img) && bytes.Equal(got, old):
				// Rewrite of identical content: counts as either outcome.
			case bytes.Equal(got, img):
				newN++
			case bytes.Equal(got, old):
				oldN++
			default:
				return fmt.Errorf("page %d of interrupted commit matches neither old nor new image", p)
			}
		}
		if newN > 0 && oldN > 0 {
			return fmt.Errorf("interrupted commit is not atomic: %d page(s) new, %d page(s) old", newN, oldN)
		}
		if newN > 0 {
			// The EOT record survived: the transaction committed.
			for p, img := range d.pending {
				d.committed[p] = img
			}
		}
	}
	for p := 0; p < d.db.NumPages(); p++ {
		id := rda.PageID(p)
		got, err := d.db.PeekPage(id)
		if err != nil {
			return fmt.Errorf("peek page %d: %w", p, err)
		}
		if d.lost[id] {
			if !bytes.Equal(got, make([]byte, d.db.PageSize())) {
				return fmt.Errorf("lost page %d is not zeroed: explicit loss must never be silent corruption", p)
			}
			continue
		}
		if !bytes.Equal(got, d.expected(id)) {
			return fmt.Errorf("page %d diverges from last committed image", p)
		}
	}
	return nil
}

// probe checks that the recovered database still accepts and persists a
// transaction.
func (d *driver) probe() error {
	tx, err := d.db.Begin()
	if err != nil {
		return fmt.Errorf("probe begin: %w", err)
	}
	p := rda.PageID(0)
	img := d.pageImage(1<<20, 0, p)
	if err := tx.WritePage(p, img); err != nil {
		return fmt.Errorf("probe write: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("probe commit: %w", err)
	}
	// A disk can die during the probe itself (a late FailDisk rule): the
	// commit then lives only in parity, which the raw platter peek below
	// cannot see.  Rebuild first so redundancy-only state is
	// materialized; an instant no-op on a healthy array.
	for {
		done, err := d.db.RebuildStep(0)
		if err != nil {
			return fmt.Errorf("probe rebuild: %w", err)
		}
		if done {
			break
		}
	}
	got, err := d.db.PeekPage(p)
	if err != nil {
		return fmt.Errorf("probe peek: %w", err)
	}
	if !bytes.Equal(got, img) {
		return fmt.Errorf("probe update not durable")
	}
	return d.db.VerifyParity()
}

// CountWrites runs the workload once under a pure counting plane and
// returns W, the number of block writes it issues.  It also sanity-checks
// the final state against the oracle, so a broken workload is caught
// before any crash is injected.
func CountWrites(opts Options) (int64, error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return 0, err
	}
	plane := fault.NewPlane(nil)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	crash, err := d.run()
	if err != nil {
		return 0, fmt.Errorf("counting run: %w", err)
	}
	if crash != nil {
		return 0, fmt.Errorf("counting run crashed: %v", crash)
	}
	if err := d.verify(); err != nil {
		return 0, fmt.Errorf("counting run final state: %w", err)
	}
	return plane.Writes(), nil
}

// RunSchedule performs one crash-and-recover cycle: the seeded workload
// under the given fault schedule, then CrashHard + Recover + every
// invariant check.  A nil error means the run survived.  If no schedule
// rule fires the workload completes and only the final state is checked.
func RunSchedule(opts Options, sched fault.Schedule) error {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return err
	}
	plane := fault.NewPlane(sched)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	crash, err := d.run()
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if crash == nil {
		// Schedule never fired (e.g. a torn rule landed on a header-only
		// write, which cannot tear).  Vacuous crash, real final check.
		if err := d.verify(); err != nil {
			return fmt.Errorf("uncrashed final state: %w", err)
		}
		return nil
	}
	db.CrashHard()
	rep, err := db.Recover()
	if err != nil {
		return fmt.Errorf("recover after %v: %w", crash, err)
	}
	// Healthy-array regression guard: RunSchedule's schedules never kill
	// a disk, so the degraded recovery machinery must stay completely
	// cold — any non-zero counter means the degraded path leaked into
	// the common case.
	if rep.UndoneViaReconstruction != 0 || rep.DeferredParityGroups != 0 || len(rep.LostPages) != 0 {
		return fmt.Errorf("healthy restart took the degraded path after %v: reconstruction=%d deferred=%d lost=%v",
			crash, rep.UndoneViaReconstruction, rep.DeferredParityGroups, rep.LostPages)
	}
	if err := db.VerifyRecovered(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	if err := d.verify(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	if err := d.probe(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	return nil
}

// Explore is the exhaustive sweep: count W, then crash at every write
// index in [0, W).  progress, when non-nil, is called after each run.
func Explore(opts Options, progress func(done, total int64)) (*Result, error) {
	opts.fill()
	total, err := CountWrites(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{TotalWrites: total}
	for k := int64(0); k < total; k++ {
		var sched fault.Schedule
		if opts.Torn {
			// Alternate which half of the torn payload persists so both
			// torn shapes are covered across the sweep.
			sched = fault.Schedule{fault.TornWrite(k, k%2 == 0)}
		} else {
			sched = fault.Schedule{fault.CrashAfterNWrites(k)}
		}
		res.Runs++
		if err := RunSchedule(opts, sched); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: opts.Seed, Schedule: sched, Err: err})
		}
		if progress != nil {
			progress(k+1, total)
		}
	}
	return res, nil
}

// countDegraded measures the write clock of a degraded run: the seeded
// workload under a FailDisk(d, 0) schedule, then the online rebuild
// pumped to completion.  It returns the write count at workload end and
// at rebuild end — the two bounds the degraded sweep needs (crash
// indexes below the first interrupt the degraded workload; indexes
// between the two land inside the restarted rebuild).  The final state
// is sanity-checked against the oracle.
func countDegraded(opts Options, d int) (workload, full int64, err error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return 0, 0, err
	}
	plane := fault.NewPlane(fault.Schedule{fault.FailDisk(d, 0)})
	db.SetInjector(plane)
	drv := newDriver(db, opts)
	crash, err := drv.run()
	if err != nil {
		return 0, 0, fmt.Errorf("degraded counting run: %w", err)
	}
	if crash != nil {
		return 0, 0, fmt.Errorf("degraded counting run crashed: %v", crash)
	}
	workload = plane.Writes()
	crash, err = pumpRebuild(db)
	if err != nil {
		return 0, 0, fmt.Errorf("degraded counting rebuild: %w", err)
	}
	if crash != nil {
		return 0, 0, fmt.Errorf("degraded counting rebuild crashed: %v", crash)
	}
	full = plane.Writes()
	if err := drv.verify(); err != nil {
		return 0, 0, fmt.Errorf("degraded counting final state: %w", err)
	}
	return workload, full, nil
}

// ExploreDegraded is the degraded-restart sweep — the machine check that
// one redundancy mechanism really funds media AND transaction recovery
// at once.  Three schedule families, every run a RunDegradedSchedule
// cycle (degraded crash recovery, restarted rebuild, oracle + probe):
//
//   - disk already down: FailDisk(0, 0) plus a crash at every write
//     index of the degraded workload — restart with a member long dead;
//   - coinciding: FailDisk(k%D, k) plus a crash at write k, for every k
//     of the healthy workload — the death is unobserved before the
//     crash, recovery discovers it at restart (the only family where
//     explicit data loss is legal);
//   - crash mid-rebuild: FailDisk(0, 0) plus a crash at every write
//     index inside the online rebuild that follows the workload — the
//     restarted rebuild must reconstruct every group from scratch.
func ExploreDegraded(opts Options, progress func(done, total int64)) (*Result, error) {
	opts.fill()
	wDeg, wFull, err := countDegraded(opts, 0)
	if err != nil {
		return nil, err
	}
	wHealthy, err := CountWrites(opts)
	if err != nil {
		return nil, err
	}
	geom, err := rda.Open(dbConfig(opts))
	if err != nil {
		return nil, err
	}
	numDisks := geom.NumDisks()
	res := &Result{TotalWrites: wDeg}
	total := wFull + wHealthy
	var done int64
	run := func(sched fault.Schedule) {
		res.Runs++
		rep, err := RunDegradedSchedule(opts, sched)
		res.absorb(rep)
		if err != nil {
			res.Violations = append(res.Violations, Violation{Seed: opts.Seed, Schedule: sched, Err: err})
		}
		done++
		if progress != nil {
			progress(done, total)
		}
	}
	// Disk-down and crash-mid-rebuild families share one schedule shape;
	// the crash index decides which regime it lands in.
	for k := int64(0); k < wFull; k++ {
		run(fault.Schedule{fault.FailDisk(0, 0), fault.CrashAfterNWrites(k)})
	}
	for k := int64(0); k < wHealthy; k++ {
		run(fault.Schedule{fault.FailDisk(int(k)%numDisks, k), fault.CrashAfterNWrites(k)})
	}
	return res, nil
}

// countDouble measures the write clock of a double-degraded run: the
// seeded workload with two disks dead from the start (QParity budget),
// then the two-drive online rebuild pumped to completion.  It returns
// the write count at workload end and at rebuild end, the bounds the
// double-fault sweep needs.
func countDouble(opts Options, dA, dB int) (workload, full int64, err error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return 0, 0, err
	}
	plane := fault.NewPlane(fault.Schedule{fault.FailDisk(dA, 0), fault.FailDisk(dB, 0)})
	db.SetInjector(plane)
	drv := newDriver(db, opts)
	crash, err := drv.run()
	if err != nil {
		return 0, 0, fmt.Errorf("double-degraded counting run: %w", err)
	}
	if crash != nil {
		return 0, 0, fmt.Errorf("double-degraded counting run crashed: %v", crash)
	}
	workload = plane.Writes()
	crash, err = pumpRebuild(db)
	if err != nil {
		return 0, 0, fmt.Errorf("double-degraded counting rebuild: %w", err)
	}
	if crash != nil {
		return 0, 0, fmt.Errorf("double-degraded counting rebuild crashed: %v", crash)
	}
	full = plane.Writes()
	if err := drv.verify(); err != nil {
		return 0, 0, fmt.Errorf("double-degraded counting final state: %w", err)
	}
	return workload, full, nil
}

// ExploreDouble is the double-fault sweep — the machine check that the
// P+Q array's two redundancy equations really fund transaction recovery
// with TWO members gone.  It forces QParity on and runs two schedule
// families, every run a RunDegradedSchedule cycle (double-degraded
// crash recovery, restarted two-drive rebuild, oracle + probe):
//
//   - both disks down from the start: FailDisk(0,0) + FailDisk(1,0)
//     plus a crash at every write index of the double-degraded workload
//     AND of the two-drive rebuild that follows it — restart with two
//     members long dead, and crashes landing inside the rebuild;
//   - second death coinciding with the crash: FailDisk(0,0) plus a
//     second death at write k on a rotating other disk, plus a crash at
//     the same k, for every k of the single-degraded workload — the
//     second loss is unobserved before the crash, so recovery discovers
//     the double-degraded array at restart (the only family where
//     explicit data loss is legal).
func ExploreDouble(opts Options, progress func(done, total int64)) (*Result, error) {
	opts.fill()
	opts.QParity = true
	wDouble, wFull, err := countDouble(opts, 0, 1)
	if err != nil {
		return nil, err
	}
	wDeg, _, err := countDegraded(opts, 0)
	if err != nil {
		return nil, err
	}
	geom, err := rda.Open(dbConfig(opts))
	if err != nil {
		return nil, err
	}
	numDisks := geom.NumDisks()
	res := &Result{TotalWrites: wDouble}
	total := wFull + wDeg
	var done int64
	run := func(sched fault.Schedule) {
		res.Runs++
		rep, err := RunDegradedSchedule(opts, sched)
		res.absorb(rep)
		if err != nil {
			res.Violations = append(res.Violations, Violation{Seed: opts.Seed, Schedule: sched, Err: err})
		}
		done++
		if progress != nil {
			progress(done, total)
		}
	}
	// Both-down and crash-mid-two-drive-rebuild share one schedule shape;
	// the crash index decides which regime it lands in.
	for k := int64(0); k < wFull; k++ {
		run(fault.Schedule{fault.FailDisk(0, 0), fault.FailDisk(1, 0), fault.CrashAfterNWrites(k)})
	}
	// Second death coinciding with the crash, rotating over every disk
	// other than the one already down.
	for k := int64(0); k < wDeg; k++ {
		d2 := 1 + int(k)%(numDisks-1)
		run(fault.Schedule{fault.FailDisk(0, 0), fault.FailDisk(d2, k), fault.CrashAfterNWrites(k)})
	}
	return res, nil
}

// RunMixSchedule is RunSchedule with a background transient-error rate
// (every transientEvery-th access fails once; 0 disables) and support for
// mid-run disk deaths.  A FailDisk rule must complete the workload with
// no surfaced error — the retry layer masks the transients and degraded
// serving masks the dead disk — after which the online rebuild is pumped
// to completion and the oracle, parity invariant and probe checks run
// against the restored array.  Crash rules behave as in RunSchedule
// (recovery runs under the same transient rate).
//
// A schedule MAY combine a crash and a disk death: crash recovery runs
// degraded (rda.Recover with one member down), the restarted rebuild is
// pumped to completion — re-entering recovery if a crash rule fires
// mid-rebuild — and the same oracle applies.  A loser undo whose needed
// committed twin died with the disk falls back to the before-image the
// eager demotion logged; only when the death was never observed before
// the crash (the two coincide) can that image be missing, and recovery
// then reports the affected pages in RecoveryReport.LostPages — the one
// case the oracle excuses, requiring the pages zeroed rather than
// matching their committed images.  Loss under any schedule where the
// death does not coincide with the crash is a violation.
func RunMixSchedule(opts Options, sched fault.Schedule, transientEvery int64) error {
	_, err := runCombined(opts, sched, transientEvery)
	return err
}

// RunDegradedSchedule performs one combined-fault crash-and-recover
// cycle (see RunMixSchedule for the contract) and returns the recovery
// report — counters summed if a crash mid-rebuild forced a second
// restart; nil if no crash rule fired.  It is the single-run unit of
// ExploreDegraded and of the rdacrash -degraded -sched replay.
func RunDegradedSchedule(opts Options, sched fault.Schedule) (*rda.RecoveryReport, error) {
	return runCombined(opts, sched, 0)
}

// schedKillsDisk reports whether the schedule contains a FailDisk rule.
func schedKillsDisk(sched fault.Schedule) bool {
	for _, r := range sched {
		if r.Kind == fault.KindFailDisk {
			return true
		}
	}
	return false
}

// runCombined is the shared engine behind RunMixSchedule and
// RunDegradedSchedule: workload, crash recovery (possibly degraded),
// rebuild convergence, and the oracle/probe/transient checks.
func runCombined(opts Options, sched fault.Schedule, transientEvery int64) (*rda.RecoveryReport, error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return nil, err
	}
	plane := fault.NewPlane(sched)
	plane.SetTransientEvery(transientEvery)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	killsDisk := schedKillsDisk(sched)
	crash, err := d.run()
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	// Recover-and-rebuild convergence: a crash sends the run through
	// CrashHard + Recover; the rebuild pump afterwards can itself hit a
	// late crash rule (crash-mid-rebuild schedules) and loop back.  Each
	// round consumes at least one of the schedule's one-shot rules, so
	// the loop is bounded.
	var total *rda.RecoveryReport
	for round := 0; ; round++ {
		if crash != nil {
			if round > len(sched)+1 {
				return total, fmt.Errorf("crash recovery did not converge after %d rounds", round)
			}
			db.CrashHard()
			rep, err := db.Recover()
			if err != nil {
				return total, fmt.Errorf("recover after %v: %w", crash, err)
			}
			if total == nil {
				total = rep
			} else {
				total.Losers += rep.Losers
				total.UndoneViaParity += rep.UndoneViaParity
				total.UndoneViaLog += rep.UndoneViaLog
				total.Redone += rep.Redone
				total.RepairedTorn += rep.RepairedTorn
				total.ResyncedGroups += rep.ResyncedGroups
				total.UndoneViaReconstruction += rep.UndoneViaReconstruction
				total.DeferredParityGroups += rep.DeferredParityGroups
				total.LostPages = append(total.LostPages, rep.LostPages...)
			}
			if !killsDisk && (rep.UndoneViaReconstruction != 0 || rep.DeferredParityGroups != 0 || len(rep.LostPages) != 0) {
				return total, fmt.Errorf("healthy restart took the degraded path after %v: reconstruction=%d deferred=%d lost=%v",
					crash, rep.UndoneViaReconstruction, rep.DeferredParityGroups, rep.LostPages)
			}
			if len(rep.LostPages) > 0 {
				if !killsDisk {
					return total, fmt.Errorf("recovery after %v lost pages %v with no disk death in the schedule", crash, rep.LostPages)
				}
				d.noteLost(rep.LostPages)
			}
			if err := db.VerifyRecovered(); err != nil {
				return total, fmt.Errorf("after %v: %w", crash, err)
			}
		}
		// The workload completed or recovery did; if a disk is (still)
		// down the array serves degraded.  Rebuild it online — a no-op
		// when healthy — re-entering recovery if the pump crashes.
		crash, err = pumpRebuild(db)
		if err != nil {
			return total, fmt.Errorf("online rebuild: %w", err)
		}
		if crash == nil {
			break
		}
	}
	if err := d.verify(); err != nil {
		return total, fmt.Errorf("after %v: %w", sched, err)
	}
	if err := d.probe(); err != nil {
		return total, fmt.Errorf("after %v: %w", sched, err)
	}
	if transientEvery > 0 && plane.Reads()+plane.Writes() >= transientEvery && db.Stats().IORetries == 0 {
		return total, fmt.Errorf("transient rate 1/%d injected faults but the retry layer recorded none", transientEvery)
	}
	return total, nil
}

// pumpRebuild drives the online rebuild to completion, converting a
// crash-rule panic (a crash point landing inside a rebuild write) into a
// returned sentinel so the caller can run recovery and resume.
func pumpRebuild(db *rda.DB) (crash *fault.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	for {
		done, err := db.RebuildStep(0)
		if err != nil {
			return nil, err
		}
		if done {
			return nil, nil
		}
	}
}

// MixSoak performs iters randomized self-healing cycles under a constant
// background transient-error rate.  Iterations rotate between the crash
// discipline of Soak (crash or torn write at a random index, then
// recovery), a mid-run disk death (FailDisk at a random write index,
// then degraded serving and an online rebuild), and the combined case —
// a disk death AND a crash in one schedule, exercising degraded crash
// recovery, including coinciding death-and-crash indexes where explicit
// data loss is the legal outcome.  Every run must preserve the
// committed-state oracle; the transient faults must be invisible
// throughout.
func MixSoak(opts Options, iters int, transientEvery int64) (*Result, error) {
	opts.fill()
	probe, err := rda.Open(dbConfig(opts))
	if err != nil {
		return nil, err
	}
	numDisks := probe.NumDisks()
	meta := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for i := 0; i < iters; i++ {
		o := opts
		o.Seed = int64(meta.Uint64() >> 1)
		total, err := CountWrites(o)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			continue
		}
		res.TotalWrites = total
		k := meta.Int63n(total)
		disk := meta.Intn(numDisks)
		tornHead := meta.Intn(2) == 0
		wantTorn := meta.Intn(3) == 0
		coincide := meta.Intn(2) == 0
		k2 := meta.Int63n(total)
		var sched fault.Schedule
		switch i % 3 {
		case 0:
			sched = fault.Schedule{fault.FailDisk(disk, k)}
		case 1:
			if wantTorn {
				sched = fault.Schedule{fault.TornWrite(k, tornHead)}
			} else {
				sched = fault.Schedule{fault.CrashAfterNWrites(k)}
			}
		default:
			if coincide {
				k2 = k
			}
			sched = fault.Schedule{fault.FailDisk(disk, k), fault.CrashAfterNWrites(k2)}
		}
		res.Runs++
		if err := RunMixSchedule(o, sched, transientEvery); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: o.Seed, Schedule: sched, Err: err})
		}
	}
	return res, nil
}

// schedSilentFault reports whether the schedule plants silent corruption
// (a bitflip, lost write or misdirected write).
func schedSilentFault(sched fault.Schedule) bool {
	for _, r := range sched {
		switch r.Kind {
		case fault.KindBitFlip, fault.KindLostWrite, fault.KindMisdirected:
			return true
		}
	}
	return false
}

// schedHasMisdirected reports whether the schedule misdirects a write.
func schedHasMisdirected(sched fault.Schedule) bool {
	for _, r := range sched {
		if r.Kind == fault.KindMisdirected {
			return true
		}
	}
	return false
}

// pumpScrub drives one full online scrub cycle — NumGroups cursor
// slots, so every group is visited even when the workload's interleaved
// steps left the shared cursor mid-array — converting a crash-rule
// panic (a crash point landing inside a scrub repair write) into a
// returned sentinel, like pumpRebuild.
func pumpScrub(db *rda.DB) (crash *fault.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	for covered := 0; covered < db.NumGroups(); {
		rep, _, err := db.ScrubStep(0)
		if rep != nil {
			covered += rep.GroupsScanned + rep.GroupsSkipped
		}
		if err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// RunCorruptSchedule performs one silent-corruption crash-and-recover
// cycle: the seeded workload (with online scrub steps interleaved when
// opts.Scrub is set) under a schedule of bitflip/lostwrite/misdirected
// rules, optionally crashed; then recovery, a full online scrub cycle,
// and the oracle and probe checks.  The property verified is the
// integrity plane's contract: committed data is never *served* corrupt —
// every read returns the oracle image or a typed error, planted damage
// is repaired from redundancy on first contact (hot-path read, scrub or
// recovery), and damage beyond the redundancy surfaces as
// ErrUnrecoverableCorruption or explicit zeroed loss, never as garbage
// bytes.
//
// Two outcomes are legal only because the fault demands them: a
// misdirected write that lands in its target's own parity group damages
// two blocks of one group — beyond single parity — so
// ErrUnrecoverableCorruption anywhere in the run ends it as a pass; and
// a silent fault that destroys the only copy of a loser's before-image
// (e.g. the committed twin of a dirty group) may surface as explicit
// recovery-reported loss, which the oracle then requires to be zeroed.
func RunCorruptSchedule(opts Options, sched fault.Schedule) (*rda.RecoveryReport, error) {
	rep, _, err := runCorruptSchedule(opts, sched)
	return rep, err
}

// runCorruptSchedule is RunCorruptSchedule plus the engine's final stats
// snapshot, so the soak can aggregate the integrity-plane counters.
func runCorruptSchedule(opts Options, sched fault.Schedule) (*rda.RecoveryReport, rda.Stats, error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts))
	if err != nil {
		return nil, rda.Stats{}, err
	}
	rep, err := runCorruptOn(db, opts, sched)
	return rep, db.Stats(), err
}

func runCorruptOn(db *rda.DB, opts Options, sched fault.Schedule) (*rda.RecoveryReport, error) {
	plane := fault.NewPlane(sched)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	silent := schedSilentFault(sched)
	misdirected := schedHasMisdirected(sched)
	legalDoubleFault := func(err error) bool {
		return misdirected && errors.Is(err, rda.ErrUnrecoverableCorruption)
	}
	crash, err := d.run()
	if err != nil {
		if legalDoubleFault(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("workload: %w", err)
	}
	var total *rda.RecoveryReport
	for round := 0; ; round++ {
		if crash != nil {
			if round > len(sched)+1 {
				return total, fmt.Errorf("crash recovery did not converge after %d rounds", round)
			}
			db.CrashHard()
			rep, err := db.Recover()
			if err != nil {
				if legalDoubleFault(err) {
					return total, nil
				}
				return total, fmt.Errorf("recover after %v: %w", crash, err)
			}
			if total == nil {
				total = rep
			} else {
				total.LostPages = append(total.LostPages, rep.LostPages...)
			}
			if len(rep.LostPages) > 0 {
				if !silent {
					return total, fmt.Errorf("recovery after %v lost pages %v with no silent fault in the schedule", crash, rep.LostPages)
				}
				d.noteLost(rep.LostPages)
			}
			if err := db.VerifyRecovered(); err != nil {
				return total, fmt.Errorf("after %v: %w", crash, err)
			}
		}
		// A full scrub cycle repairs whatever latent damage recovery (or
		// an uncrashed workload) left on the platter, so the raw-peek
		// verification below sees only clean blocks.
		crash, err = pumpScrub(db)
		if err != nil {
			if legalDoubleFault(err) {
				return total, nil
			}
			return total, fmt.Errorf("online scrub: %w", err)
		}
		if crash == nil {
			break
		}
	}
	if err := d.verify(); err != nil {
		return total, fmt.Errorf("after %v: %w", sched, err)
	}
	if err := d.probe(); err != nil {
		return total, fmt.Errorf("after %v: %w", sched, err)
	}
	return total, nil
}

// CorruptSoak performs iters randomized silent-corruption cycles — the
// machine check behind the integrity plane.  Iterations rotate the
// planted fault among a bit flip, a lost write and a misdirected write
// at a random write index, half of them additionally crash at a random
// later index, and every run interleaves online scrub steps with the
// workload (opts.Scrub is forced on).  Each run must satisfy the
// RunCorruptSchedule contract; like the other soaks, a whole run is
// reproducible from one seed and any failure from its printed seed and
// schedule.
func CorruptSoak(opts Options, iters int) (*Result, error) {
	opts.fill()
	opts.Scrub = true
	cfg := dbConfig(opts)
	meta := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for i := 0; i < iters; i++ {
		o := opts
		o.Seed = int64(meta.Uint64() >> 1)
		total, err := CountWrites(o)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			continue
		}
		res.TotalWrites = total
		k := meta.Int63n(total)
		var rule fault.Rule
		switch i % 3 {
		case 0:
			rule = fault.BitFlip(k, meta.Intn(cfg.PageSize*8))
		case 1:
			rule = fault.LostWrite(k)
		default:
			rule = fault.Misdirected(k, meta.Intn(cfg.NumPages))
		}
		sched := fault.Schedule{rule}
		if meta.Intn(2) == 0 && total > k+1 {
			// Crash strictly after the silent fault, so the damage is on
			// the platter when recovery runs.  Strictly: the crash rule
			// fires on any write-class op while the silent rules wait for
			// a payload write at their exact clock, so a crash at the same
			// index can consume the clock on a header write and leave the
			// silent rule armed — it would then fire on recovery's own
			// repair I/O instead of the workload's.
			sched = append(sched, fault.CrashAfterNWrites(k+1+meta.Int63n(total-k-1)))
		}
		res.Runs++
		rep, stats, err := runCorruptSchedule(o, sched)
		res.absorb(rep)
		res.absorbStats(stats)
		if err != nil {
			res.Violations = append(res.Violations, Violation{Seed: o.Seed, Schedule: sched, Err: err})
		}
	}
	return res, nil
}

// Soak performs iters randomized crash-and-recover cycles.  Each
// iteration derives a fresh workload seed and a random crash point (and
// randomly chooses clean vs torn) from opts.Seed, so a whole soak run is
// reproducible from one number and any single failure is reproducible
// from its printed seed and schedule.
func Soak(opts Options, iters int) (*Result, error) {
	opts.fill()
	meta := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for i := 0; i < iters; i++ {
		o := opts
		o.Seed = int64(meta.Uint64() >> 1)
		total, err := CountWrites(o)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			continue
		}
		res.TotalWrites = total
		k := meta.Int63n(total)
		var sched fault.Schedule
		if meta.Intn(3) == 0 {
			sched = fault.Schedule{fault.TornWrite(k, meta.Intn(2) == 0)}
		} else {
			sched = fault.Schedule{fault.CrashAfterNWrites(k)}
		}
		res.Runs++
		if err := RunSchedule(o, sched); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: o.Seed, Schedule: sched, Err: err})
		}
	}
	return res, nil
}
