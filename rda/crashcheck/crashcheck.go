// Package crashcheck is the crash-point explorer for the RDA engine.
//
// The paper's central claim (Section 4) is that twin-parity undo makes
// the database recoverable from a crash at *any* instant, without UNDO
// log writes for stolen pages.  This package turns that claim into a
// machine-checked property:
//
//  1. run a deterministic seeded workload once under a counting fault
//     plane and record W, the total number of block writes it issues;
//  2. for every write index k in [0, W), re-run the identical workload,
//     crash it at write k (cleanly, or tearing write k itself in torn
//     mode), run crash recovery, and verify the recovered state.
//
// The verified invariants after each crash:
//
//   - every page a committed transaction wrote holds its last committed
//     image (durability);
//   - no page shows data from an uncommitted transaction (no-UNDO steal
//     really undone);
//   - the single transaction whose Commit the crash may have interrupted
//     is atomic — all of its pages are new or all are old;
//   - each group's current parity twin equals the XOR of its data pages,
//     no working-state twin survives, the twin-state pair is one a legal
//     Figure 8 history can produce, the Current_Parity bitmap matches a
//     Figure 7 recomputation, and the Dirty_Set is empty
//     (DB.VerifyRecovered);
//   - the database still works: a probe transaction commits and its
//     update is durable and parity-consistent.
//
// Because the workload, the buffer manager, and the fault plane are all
// deterministic, a failing run is identified completely by its seed and
// schedule, both of which print in a replayable syntax.
package crashcheck

import (
	"bytes"
	"fmt"
	"math/rand"

	"repro/internal/fault"
	"repro/rda"
)

// Options configures an exploration.
type Options struct {
	// Layout selects the array organization (the explorer is run once
	// per layout: DataStriping exercises RAID5Twin, ParityStriping
	// exercises ParityStripeTwin).
	Layout rda.Layout
	// Seed drives the workload generator.
	Seed int64
	// Txns is the number of transactions in the workload (default 8).
	Txns int
	// OpsPerTx is the number of page operations per transaction.  The
	// default of 10 exceeds the buffer pool's 6 frames so transactions
	// dirty more pages than fit, forcing mid-transaction eviction steals
	// through the paper's no-UNDO-logging path — the state the crash
	// sweep most needs to interrupt.
	OpsPerTx int
	// Torn makes Explore tear write k itself (half the payload and the
	// full header persist) instead of dropping it cleanly.
	Torn bool
}

func (o *Options) fill() {
	if o.Txns <= 0 {
		o.Txns = 8
	}
	if o.OpsPerTx <= 0 {
		o.OpsPerTx = 10
	}
}

// dbConfig is the explorer's geometry: small enough that an exhaustive
// sweep stays cheap, with fewer buffer frames than the working set so
// eviction steals (the paper's no-UNDO-logging path) actually happen.
func dbConfig(layout rda.Layout) rda.Config {
	return rda.Config{
		DataDisks:    4,
		NumPages:     48,
		PageSize:     64,
		BufferFrames: 6,
		Layout:       layout,
		Logging:      rda.PageLogging,
		EOT:          rda.Force,
		RDA:          true,
		LogPageSize:  256,
		LogWriteCost: 4,
	}
}

// Violation is one failed crash-and-recover run, identified by the seed
// and schedule that reproduce it.
type Violation struct {
	Seed     int64
	Schedule fault.Schedule
	Err      error
}

// String renders the violation with its deterministic reproduction key.
func (v Violation) String() string {
	return fmt.Sprintf("seed=%d sched=%q: %v", v.Seed, v.Schedule, v.Err)
}

// Result summarizes an exploration.
type Result struct {
	// TotalWrites is W for the last counted workload (0 for Replay).
	TotalWrites int64
	// Runs is the number of crash-and-recover cycles performed.
	Runs int
	// Violations holds every failed run.
	Violations []Violation
}

// driver runs the deterministic workload and carries the oracle: the
// page images every committed transaction has durably written.
type driver struct {
	db   *rda.DB
	opts Options
	rng  *rand.Rand

	committed map[rda.PageID][]byte
	pending   map[rda.PageID][]byte // current transaction's writes
	inCommit  bool                  // crash may have interrupted an EOT
}

func newDriver(db *rda.DB, opts Options) *driver {
	return &driver{
		db:        db,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		committed: make(map[rda.PageID][]byte),
	}
}

// pageImage is the deterministic content transaction txn writes to page
// p at operation op.  It depends only on (seed, txn, op, p), never on
// rng state, so the oracle can recompute it.
func (d *driver) pageImage(txn, op int, p rda.PageID) []byte {
	out := make([]byte, d.db.PageSize())
	h := uint64(d.opts.Seed)*0x9E3779B97F4A7C15 ^ uint64(txn)<<40 ^ uint64(op)<<20 ^ uint64(p)
	for i := range out {
		h = h*6364136223846793005 + 1442695040888963407
		out[i] = byte(h >> 56)
	}
	return out
}

// run executes the seeded workload.  It returns the crash sentinel if a
// schedule rule fired mid-run, nil if the workload completed.  All rng
// draws happen in a fixed order, so every run with the same seed issues
// the identical I/O sequence up to the crash point.
func (d *driver) run() (crash *fault.Crash, err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	npages := d.db.NumPages()
	for t := 0; t < d.opts.Txns; t++ {
		tx, err := d.db.Begin()
		if err != nil {
			return nil, fmt.Errorf("txn %d begin: %w", t, err)
		}
		d.pending = make(map[rda.PageID][]byte)
		abort := d.rng.Intn(6) == 0
		for op := 0; op < d.opts.OpsPerTx; op++ {
			p := rda.PageID(d.rng.Intn(npages))
			if d.rng.Intn(4) == 0 {
				if _, err := tx.ReadPage(p); err != nil {
					return nil, fmt.Errorf("txn %d read page %d: %w", t, p, err)
				}
				continue
			}
			img := d.pageImage(t, op, p)
			if err := tx.WritePage(p, img); err != nil {
				return nil, fmt.Errorf("txn %d write page %d: %w", t, p, err)
			}
			d.pending[p] = img
		}
		if abort {
			if err := tx.Abort(); err != nil {
				return nil, fmt.Errorf("txn %d abort: %w", t, err)
			}
			d.pending = nil
			continue
		}
		d.inCommit = true
		if err := tx.Commit(); err != nil {
			return nil, fmt.Errorf("txn %d commit: %w", t, err)
		}
		d.inCommit = false
		for p, img := range d.pending {
			d.committed[p] = img
		}
		d.pending = nil
	}
	return nil, nil
}

// expected returns the oracle image of page p: its last committed write,
// or the formatted zero page.
func (d *driver) expected(p rda.PageID) []byte {
	if img, ok := d.committed[p]; ok {
		return img
	}
	return make([]byte, d.db.PageSize())
}

// verify compares every on-disk page against the oracle.  If the crash
// unwound out of a Commit, that one transaction's outcome is ambiguous:
// its pages may all show the new images (the EOT record made it to the
// log) or all show the old ones (it did not) — but never a mix.
func (d *driver) verify() error {
	if d.inCommit && len(d.pending) > 0 {
		var newN, oldN int
		for p, img := range d.pending {
			got, err := d.db.PeekPage(p)
			if err != nil {
				return fmt.Errorf("peek page %d: %w", p, err)
			}
			old := d.expected(p)
			switch {
			case bytes.Equal(got, img) && bytes.Equal(got, old):
				// Rewrite of identical content: counts as either outcome.
			case bytes.Equal(got, img):
				newN++
			case bytes.Equal(got, old):
				oldN++
			default:
				return fmt.Errorf("page %d of interrupted commit matches neither old nor new image", p)
			}
		}
		if newN > 0 && oldN > 0 {
			return fmt.Errorf("interrupted commit is not atomic: %d page(s) new, %d page(s) old", newN, oldN)
		}
		if newN > 0 {
			// The EOT record survived: the transaction committed.
			for p, img := range d.pending {
				d.committed[p] = img
			}
		}
	}
	for p := 0; p < d.db.NumPages(); p++ {
		id := rda.PageID(p)
		got, err := d.db.PeekPage(id)
		if err != nil {
			return fmt.Errorf("peek page %d: %w", p, err)
		}
		if !bytes.Equal(got, d.expected(id)) {
			return fmt.Errorf("page %d diverges from last committed image", p)
		}
	}
	return nil
}

// probe checks that the recovered database still accepts and persists a
// transaction.
func (d *driver) probe() error {
	tx, err := d.db.Begin()
	if err != nil {
		return fmt.Errorf("probe begin: %w", err)
	}
	p := rda.PageID(0)
	img := d.pageImage(1<<20, 0, p)
	if err := tx.WritePage(p, img); err != nil {
		return fmt.Errorf("probe write: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("probe commit: %w", err)
	}
	// A disk can die during the probe itself (a late FailDisk rule): the
	// commit then lives only in parity, which the raw platter peek below
	// cannot see.  Rebuild first so redundancy-only state is
	// materialized; an instant no-op on a healthy array.
	for {
		done, err := d.db.RebuildStep(0)
		if err != nil {
			return fmt.Errorf("probe rebuild: %w", err)
		}
		if done {
			break
		}
	}
	got, err := d.db.PeekPage(p)
	if err != nil {
		return fmt.Errorf("probe peek: %w", err)
	}
	if !bytes.Equal(got, img) {
		return fmt.Errorf("probe update not durable")
	}
	return d.db.VerifyParity()
}

// CountWrites runs the workload once under a pure counting plane and
// returns W, the number of block writes it issues.  It also sanity-checks
// the final state against the oracle, so a broken workload is caught
// before any crash is injected.
func CountWrites(opts Options) (int64, error) {
	opts.fill()
	db, err := rda.Open(dbConfig(opts.Layout))
	if err != nil {
		return 0, err
	}
	plane := fault.NewPlane(nil)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	crash, err := d.run()
	if err != nil {
		return 0, fmt.Errorf("counting run: %w", err)
	}
	if crash != nil {
		return 0, fmt.Errorf("counting run crashed: %v", crash)
	}
	if err := d.verify(); err != nil {
		return 0, fmt.Errorf("counting run final state: %w", err)
	}
	return plane.Writes(), nil
}

// RunSchedule performs one crash-and-recover cycle: the seeded workload
// under the given fault schedule, then CrashHard + Recover + every
// invariant check.  A nil error means the run survived.  If no schedule
// rule fires the workload completes and only the final state is checked.
func RunSchedule(opts Options, sched fault.Schedule) error {
	opts.fill()
	db, err := rda.Open(dbConfig(opts.Layout))
	if err != nil {
		return err
	}
	plane := fault.NewPlane(sched)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	crash, err := d.run()
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if crash == nil {
		// Schedule never fired (e.g. a torn rule landed on a header-only
		// write, which cannot tear).  Vacuous crash, real final check.
		if err := d.verify(); err != nil {
			return fmt.Errorf("uncrashed final state: %w", err)
		}
		return nil
	}
	db.CrashHard()
	if _, err := db.Recover(); err != nil {
		return fmt.Errorf("recover after %v: %w", crash, err)
	}
	if err := db.VerifyRecovered(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	if err := d.verify(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	if err := d.probe(); err != nil {
		return fmt.Errorf("after %v: %w", crash, err)
	}
	return nil
}

// Explore is the exhaustive sweep: count W, then crash at every write
// index in [0, W).  progress, when non-nil, is called after each run.
func Explore(opts Options, progress func(done, total int64)) (*Result, error) {
	opts.fill()
	total, err := CountWrites(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{TotalWrites: total}
	for k := int64(0); k < total; k++ {
		var sched fault.Schedule
		if opts.Torn {
			// Alternate which half of the torn payload persists so both
			// torn shapes are covered across the sweep.
			sched = fault.Schedule{fault.TornWrite(k, k%2 == 0)}
		} else {
			sched = fault.Schedule{fault.CrashAfterNWrites(k)}
		}
		res.Runs++
		if err := RunSchedule(opts, sched); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: opts.Seed, Schedule: sched, Err: err})
		}
		if progress != nil {
			progress(k+1, total)
		}
	}
	return res, nil
}

// RunMixSchedule is RunSchedule with a background transient-error rate
// (every transientEvery-th access fails once; 0 disables) and support for
// mid-run disk deaths.  A FailDisk rule must complete the workload with
// no surfaced error — the retry layer masks the transients and degraded
// serving masks the dead disk — after which the online rebuild is pumped
// to completion and the oracle, parity invariant and probe checks run
// against the restored array.  Crash rules behave as in RunSchedule
// (recovery runs under the same transient rate).  A schedule must not
// combine a crash and a disk death: crash recovery on a degraded array
// is out of scope (rda.Recover returns ErrDegraded).
func RunMixSchedule(opts Options, sched fault.Schedule, transientEvery int64) error {
	opts.fill()
	db, err := rda.Open(dbConfig(opts.Layout))
	if err != nil {
		return err
	}
	plane := fault.NewPlane(sched)
	plane.SetTransientEvery(transientEvery)
	db.SetInjector(plane)
	d := newDriver(db, opts)
	crash, err := d.run()
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	if crash != nil {
		db.CrashHard()
		if _, err := db.Recover(); err != nil {
			return fmt.Errorf("recover after %v: %w", crash, err)
		}
		if err := db.VerifyRecovered(); err != nil {
			return fmt.Errorf("after %v: %w", crash, err)
		}
	} else {
		// The workload completed; if a FailDisk rule killed a drive
		// mid-run the array is degraded and every operation since was
		// served from redundancy.  Rebuild it online (a no-op when
		// healthy), then hold the run to the same oracle.
		for {
			done, rerr := db.RebuildStep(0)
			if rerr != nil {
				return fmt.Errorf("online rebuild: %w", rerr)
			}
			if done {
				break
			}
		}
	}
	if err := d.verify(); err != nil {
		return fmt.Errorf("after %v: %w", sched, err)
	}
	if err := d.probe(); err != nil {
		return fmt.Errorf("after %v: %w", sched, err)
	}
	if transientEvery > 0 && plane.Reads()+plane.Writes() >= transientEvery && db.Stats().IORetries == 0 {
		return fmt.Errorf("transient rate 1/%d injected faults but the retry layer recorded none", transientEvery)
	}
	return nil
}

// MixSoak performs iters randomized self-healing cycles under a constant
// background transient-error rate.  Iterations alternate between the
// crash discipline of Soak (crash or torn write at a random index, then
// recovery) and a mid-run disk death (FailDisk at a random write index,
// then degraded serving and an online rebuild) — never both in one
// schedule, since crash recovery requires a healthy array.  Every run
// must preserve the committed-state oracle; the transient faults must be
// invisible throughout.
func MixSoak(opts Options, iters int, transientEvery int64) (*Result, error) {
	opts.fill()
	probe, err := rda.Open(dbConfig(opts.Layout))
	if err != nil {
		return nil, err
	}
	numDisks := probe.NumDisks()
	meta := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for i := 0; i < iters; i++ {
		o := opts
		o.Seed = int64(meta.Uint64() >> 1)
		total, err := CountWrites(o)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			continue
		}
		res.TotalWrites = total
		k := meta.Int63n(total)
		disk := meta.Intn(numDisks)
		tornHead := meta.Intn(2) == 0
		wantTorn := meta.Intn(3) == 0
		var sched fault.Schedule
		switch {
		case i%2 == 0:
			sched = fault.Schedule{fault.FailDisk(disk, k)}
		case wantTorn:
			sched = fault.Schedule{fault.TornWrite(k, tornHead)}
		default:
			sched = fault.Schedule{fault.CrashAfterNWrites(k)}
		}
		res.Runs++
		if err := RunMixSchedule(o, sched, transientEvery); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: o.Seed, Schedule: sched, Err: err})
		}
	}
	return res, nil
}

// Soak performs iters randomized crash-and-recover cycles.  Each
// iteration derives a fresh workload seed and a random crash point (and
// randomly chooses clean vs torn) from opts.Seed, so a whole soak run is
// reproducible from one number and any single failure is reproducible
// from its printed seed and schedule.
func Soak(opts Options, iters int) (*Result, error) {
	opts.fill()
	meta := rand.New(rand.NewSource(opts.Seed))
	res := &Result{}
	for i := 0; i < iters; i++ {
		o := opts
		o.Seed = int64(meta.Uint64() >> 1)
		total, err := CountWrites(o)
		if err != nil {
			return nil, err
		}
		if total == 0 {
			continue
		}
		res.TotalWrites = total
		k := meta.Int63n(total)
		var sched fault.Schedule
		if meta.Intn(3) == 0 {
			sched = fault.Schedule{fault.TornWrite(k, meta.Intn(2) == 0)}
		} else {
			sched = fault.Schedule{fault.CrashAfterNWrites(k)}
		}
		res.Runs++
		if err := RunSchedule(o, sched); err != nil {
			res.Violations = append(res.Violations, Violation{Seed: o.Seed, Schedule: sched, Err: err})
		}
	}
	return res, nil
}
