package crashcheck

import (
	"testing"

	"repro/internal/fault"
	"repro/rda"
)

// small keeps the exhaustive in-test sweeps fast; the cmd/rdacrash CLI
// runs the full default workload.
func small(layout rda.Layout) Options {
	return Options{Layout: layout, Seed: 1, Txns: 4, OpsPerTx: 3}
}

func TestCountWritesDeterministic(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		w1, err := CountWrites(small(layout))
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		w2, err := CountWrites(small(layout))
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if w1 != w2 {
			t.Fatalf("%v: write count not deterministic: %d vs %d", layout, w1, w2)
		}
		if w1 == 0 {
			t.Fatalf("%v: workload issued no writes", layout)
		}
	}
}

func TestExploreClean(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		res, err := Explore(small(layout), nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: no crash points explored", layout)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

func TestExploreTorn(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		opts.Torn = true
		res, err := Explore(opts, nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

// TestWorkloadSteals proves the default workload exercises the paper's
// no-UNDO-logging steal path: transactions dirty more pages than the
// pool has frames, so replacement must steal mid-transaction.  Without
// this the crash sweep would never interrupt a working-state twin.
func TestWorkloadSteals(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := Options{Layout: layout, Seed: 1, Txns: 3}
		opts.fill()
		db, err := rda.Open(dbConfig(Options{Layout: layout}))
		if err != nil {
			t.Fatal(err)
		}
		d := newDriver(db, opts)
		if crash, err := d.run(); err != nil || crash != nil {
			t.Fatalf("%v: run: crash=%v err=%v", layout, crash, err)
		}
		if s := db.Stats().Steals; s == 0 {
			t.Fatalf("%v: default workload performed no dirty steals", layout)
		}
	}
}

// TestExploreWithSteals sweeps a workload big enough to steal; it is the
// in-tree version of `rdacrash -explore` at reduced transaction count.
func TestExploreWithSteals(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		res, err := Explore(Options{Layout: layout, Seed: 3, Txns: 2}, nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

func TestSoak(t *testing.T) {
	res, err := Soak(small(rda.DataStriping), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("soak performed no runs")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}

// TestCorruptSoak runs the silent-corruption soak in miniature: planted
// bit flips, lost writes and misdirected writes — half the runs crashed
// on top — with online scrub steps interleaved, all held to the
// never-serve-corrupt-data oracle.
func TestCorruptSoak(t *testing.T) {
	iters := 24
	if testing.Short() {
		iters = 9
	}
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		opts.Seed = 11
		res, err := CorruptSoak(opts, iters)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: soak ran nothing", layout)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

// TestCorruptScheduleReplay pins the replay contract for the silent
// fault syntax: every silent rule kind round-trips through the printed
// schedule and drives a passing run.
func TestCorruptScheduleReplay(t *testing.T) {
	opts := small(rda.DataStriping)
	opts.Scrub = true
	for _, s := range []string{
		"bitflip[37]@w4",
		"lostwrite@w9",
		"misdirected[21]@w6",
		"lostwrite@w3 crash@w12",
		"bitflip[100]@w5 crash@w7",
	} {
		sched, err := fault.ParseSchedule(s)
		if err != nil {
			t.Fatal(err)
		}
		if sched.String() != s {
			t.Fatalf("round trip %q -> %q", s, sched.String())
		}
		if _, err := RunCorruptSchedule(opts, sched); err != nil {
			t.Errorf("sched %q: %v", s, err)
		}
	}
}

// TestViolationReplay checks the failure-reproduction contract: a
// violation's printed schedule parses back into a schedule that drives
// the identical run.
func TestViolationReplay(t *testing.T) {
	sched := fault.Schedule{fault.CrashAfterNWrites(5)}
	parsed, err := fault.ParseSchedule(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSchedule(small(rda.DataStriping), parsed); err != nil {
		t.Fatalf("replayed schedule failed: %v", err)
	}
}

// TestMixSoak runs the self-healing soak in miniature: a background
// transient rate on every run, alternating crash recoveries and mid-run
// disk deaths with online rebuilds, all held to the committed-state
// oracle.
func TestMixSoak(t *testing.T) {
	iters := 20
	if testing.Short() {
		iters = 6
	}
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		opts.Seed = 7
		res, err := MixSoak(opts, iters, 50)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: soak ran nothing", layout)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

// TestExploreDegraded is the in-tree version of `rdacrash -degraded`:
// the exhaustive crash sweep with one disk down — crash points spanning
// the degraded workload and the online rebuild, plus the coinciding
// family where the disk dies at the crash write itself.  Every run must
// recover, serve the committed state, and rebuild full redundancy.
func TestExploreDegraded(t *testing.T) {
	layouts := []rda.Layout{rda.DataStriping, rda.ParityStriping}
	if testing.Short() {
		layouts = layouts[:1]
	}
	for _, layout := range layouts {
		res, err := ExploreDegraded(small(layout), nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: no degraded crash points explored", layout)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
		if res.DeferredParityGroups == 0 {
			t.Errorf("%v: sweep never deferred a parity group — dead-twin recovery untested", layout)
		}
	}
}

// TestExploreDouble is the in-tree version of `rdacrash -double`: the
// exhaustive double-fault sweep on a P+Q array.  Both families — two
// disks dead from the start with crashes spanning the workload and the
// two-drive rebuild, and a second death coinciding with the crash — must
// recover, serve the committed state, and rebuild full redundancy with
// zero violations.
func TestExploreDouble(t *testing.T) {
	opts := small(rda.DataStriping)
	if testing.Short() {
		opts.Txns = 2
	}
	res, err := ExploreDouble(opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == 0 {
		t.Fatal("no double-fault crash points explored")
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
	if res.DeferredParityGroups == 0 {
		t.Error("sweep never deferred a parity group — dead-slot recovery untested")
	}
}

// TestMixFailDiskEveryIndex kills each disk at every write index of a
// small workload — an exhaustive sweep of the degraded-serving and
// online-rebuild interlock.  The workload must complete with no surfaced
// error each time.
func TestMixFailDiskEveryIndex(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		total, err := CountWrites(opts)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		probe, err := rda.Open(dbConfig(Options{Layout: layout}))
		if err != nil {
			t.Fatal(err)
		}
		step := int64(1)
		if testing.Short() {
			step = 7
		}
		for d := 0; d < probe.NumDisks(); d++ {
			for k := int64(0); k < total; k += step {
				sched := fault.Schedule{fault.FailDisk(d, k)}
				if err := RunMixSchedule(opts, sched, 0); err != nil {
					t.Errorf("%v: seed=%d sched=%q: %v", layout, opts.Seed, sched, err)
				}
			}
		}
	}
}
