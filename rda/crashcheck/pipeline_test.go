package crashcheck

import (
	"testing"

	"repro/rda"
)

// The dequeue-index sweep: with QueueDepth > 1 every disk transfer
// passes through a per-drive request queue and the fault plane observes
// it at dequeue time, so Explore's crash-at-every-write-index sweep
// becomes a crash-at-every-DEQUEUE-index sweep.  The recovery oracle
// (durability, atomicity, parity, twin invariants) must hold at every
// index even though the pipeline's intra-operation batches make the
// interleaving scheduler-dependent.

func TestExploreQueueDepth(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		opts.QueueDepth = 4
		res, err := Explore(opts, nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		if res.Runs == 0 {
			t.Fatalf("%v: no crash points explored", layout)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

func TestExploreQueueDepthTorn(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := small(layout)
		opts.QueueDepth = 4
		opts.Torn = true
		res, err := Explore(opts, nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}

// A deeper workload than small(): more transactions dirtying more pages
// than the pool holds, so eviction steals, logged write-backs and
// occasional full-stripe commit flushes all pass through the queues.
func TestExploreQueueDepthSteals(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		opts := Options{Layout: layout, Seed: 3, Txns: 4, OpsPerTx: 8, QueueDepth: 4}
		res, err := Explore(opts, nil)
		if err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v: %s", layout, v)
		}
	}
}
