package crashcheck

import (
	"testing"

	"repro/internal/fault"
	"repro/rda"
)

// TestDegradedScheduleRegressions replays schedules that historically
// diverged from the committed-state oracle while the degraded
// crash-recovery path was being built.  Both are instances of the
// paired-flip window: a committed small-write flip's parity write lands,
// the crash cuts the paired data write, and the disk holding the data
// member is dead — so recovery cannot verify the winner twin by
// recomputation and must detect the broken pair via the timestamp echo
// and demote to the pre-flip twin.
func TestDegradedScheduleRegressions(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		sched string
	}{
		// Flip ran ahead of the crashed data write with the data disk
		// dead from the start; the pre-flip twin was left obsolete.
		{
			name:  "paired-flip-obsolete-fallback",
			opts:  Options{Layout: rda.DataStriping, Seed: 1, Txns: 4, OpsPerTx: 3},
			sched: "faildisk[0]@w0 crash@w13",
		},
		// Same window found first by the mix soak: the data disk died
		// mid-run just before the flip, and the fallback twin still
		// carried a committed writer's working header.
		{
			name:  "paired-flip-working-fallback",
			opts:  Options{Layout: rda.DataStriping, Seed: 1853314096802305477},
			sched: "faildisk[4]@w1 crash@w10",
		},
		// A page declared lost by the parity-undo pass (coinciding,
		// unobserved disk death) was later rewritten by a full-page
		// logged before-image — log-determined after all, and it must
		// leave LostPages instead of being reported as zeroed loss.
		{
			name:  "lost-page-redetermined-by-log",
			opts:  Options{Layout: rda.ParityStriping, Seed: 1},
			sched: "faildisk[0]@w84 crash@w84",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := fault.ParseSchedule(tc.sched)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunDegradedSchedule(tc.opts, s); err != nil {
				t.Fatalf("seed=%d sched=%q: %v", tc.opts.Seed, tc.sched, err)
			}
		})
	}
}
