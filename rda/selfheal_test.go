package rda

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/fault"
	"repro/internal/page"
	"repro/internal/wal"
)

// TestTransientRetryMasking runs a commit-heavy workload under a
// deterministic background transient-error rate and requires the retry
// layer to absorb every fault: no operation surfaces an error, no disk is
// fail-stopped, and the retry counters show the masking happened.
func TestTransientRetryMasking(t *testing.T) {
	for _, cfg := range []Config{
		smallConfig(PageLogging, Force, true, DataStriping),
		smallConfig(PageLogging, NoForce, true, DataStriping),
	} {
		t.Run(cfgName(cfg), func(t *testing.T) {
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plane := fault.NewPlane(nil)
			plane.SetTransientEvery(50)
			db.SetInjector(plane)

			r := rand.New(rand.NewSource(7))
			want := make(map[PageID][]byte)
			for i := 0; i < 80; i++ {
				tx := mustBegin(t, db)
				for k := 0; k < 2; k++ {
					p := PageID(r.Intn(db.NumPages()))
					img := fillPage(db, byte(i*5+k))
					if err := tx.WritePage(p, img); err != nil {
						t.Fatalf("tx %d write: %v", i, err)
					}
					want[p] = img
				}
				if err := tx.Commit(); err != nil {
					t.Fatalf("tx %d commit: %v", i, err)
				}
			}
			db.SetInjector(nil)

			st := db.Stats()
			if st.IORetries == 0 {
				t.Fatal("transient rate 1/50 but the retry layer saw nothing")
			}
			if st.RetryBackoffUnits == 0 {
				t.Fatal("retries charged no backoff")
			}
			if st.AutoFailStops != 0 {
				t.Fatalf("isolated transients must not fail-stop disks (got %d)", st.AutoFailStops)
			}
			if h := db.Health(); h != diskarray.Healthy {
				t.Fatalf("health = %v, want Healthy", h)
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
			// Committed effects survived the fault storm (crash replays
			// NoForce buffers onto disk first).
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			for p, img := range want {
				got, err := db.PeekPage(p)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, img) {
					t.Fatalf("page %d lost its committed image under transient faults", p)
				}
			}
		})
	}
}

// storm is an injector that persistently fails every access to one disk
// with transient errors — the "is it really transient?" case the
// auto-fail-stop heuristic exists for.
type storm struct{ disk int }

func (s storm) Observe(a disk.Access) disk.Decision {
	if a.Disk == s.disk {
		return disk.Decision{Err: disk.ErrTransient}
	}
	return disk.Decision{}
}

// TestAutoFailStopToDegraded subjects one disk to a persistent
// transient-error storm.  The retry layer must conclude the disk is gone
// (auto fail-stop), the health machine must move to Degraded, and the
// interrupted operations must still succeed — served from redundancy, no
// error surfaced to the transaction.  A manual rebuild then restores
// Healthy.
func TestAutoFailStopToDegraded(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	d := db.arr.DataLoc(0).Disk
	db.SetInjector(storm{disk: d})

	// A read of page 0 hits the stormed disk; retries exhaust, the disk
	// fail-stops, and the read is served by reconstruction.
	tx := mustBegin(t, db)
	got, err := tx.ReadPage(0)
	if err != nil {
		t.Fatalf("read through disk storm: %v", err)
	}
	if !bytes.Equal(got, imgs[0]) {
		t.Fatal("degraded read returned wrong image")
	}
	// A write of the now-unreachable page also succeeds degraded.
	newImg := fillPage(db, 0xA7)
	if err := tx.WritePage(0, newImg); err != nil {
		t.Fatalf("write through disk storm: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit through disk storm: %v", err)
	}

	st := db.Stats()
	if st.AutoFailStops == 0 {
		t.Fatal("persistent storm did not trip auto fail-stop")
	}
	if st.IORetries == 0 || st.RetryBackoffUnits == 0 {
		t.Fatalf("storm left no retry trace: %+v", st)
	}
	if h := db.Health(); h != diskarray.Degraded {
		t.Fatalf("health = %v, want Degraded", h)
	}
	if st.DegradedReads == 0 || st.DegradedWrites == 0 {
		t.Fatalf("degraded serving counters empty: %+v", st)
	}

	// Replace the drive (storm gone) and rebuild online.
	db.SetInjector(nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		done, err := db.RebuildStep(0)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild did not finish")
		}
	}
	if h := db.Health(); h != diskarray.Healthy {
		t.Fatalf("health after rebuild = %v, want Healthy", h)
	}
	if db.Stats().RebuiltGroups == 0 {
		t.Fatal("rebuild restored no groups")
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	got2, err := db.PeekPage(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, newImg) {
		t.Fatal("rebuild materialized a stale image of the degraded write")
	}
}

// TestSecondFailureTyped verifies the redundancy boundary: with two
// disks down the array cannot serve, and every affected operation
// surfaces the typed ErrArrayFailed — no panic, no fabricated data — and
// RepairDisks remains the documented way out.
func TestSecondFailureTyped(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	if err := db.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := db.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h != diskarray.Failed {
		t.Fatalf("health = %v, want Failed", h)
	}

	// Sweep every page: groups that kept enough redundancy may still
	// serve (the twin advantage), but at least one page must be beyond
	// reach, and anything unreachable fails typed — never any other
	// error, never fabricated data.
	typedFailures := 0
	for p := 0; p < db.NumPages(); p++ {
		tx := mustBegin(t, db)
		got, err := tx.ReadPage(PageID(p))
		switch {
		case err == nil:
			if !bytes.Equal(got, imgs[PageID(p)]) {
				t.Fatalf("page %d served fabricated data on a failed array", p)
			}
		case errors.Is(err, ErrArrayFailed):
			typedFailures++
		default:
			t.Fatalf("page %d: err = %v, want ErrArrayFailed or success", p, err)
		}
		_ = tx.Abort()
	}
	if typedFailures == 0 {
		t.Fatal("two dead disks but every page still served")
	}

	if _, err := db.RebuildStep(0); !errors.Is(err, ErrArrayFailed) {
		t.Fatalf("rebuild on failed array: err = %v, want ErrArrayFailed", err)
	}

	lost, err := db.RepairDisks(0, 1)
	if err != nil {
		t.Fatalf("RepairDisks: %v", err)
	}
	if h := db.Health(); h != diskarray.Healthy {
		t.Fatalf("health after RepairDisks = %v, want Healthy", h)
	}
	checkAfterDoubleFailure(t, db, imgs, lost)
}

// TestOnlineRebuildUnderTraffic is the marquee self-healing scenario: a
// disk dies in the middle of concurrent transaction traffic (with a
// background transient-error rate for good measure), the online rebuild
// worker restores it group by group while the workers keep committing,
// and at the end — across a crash — every committed update is present,
// the parity invariant holds and the twin bitmap is clean.
func TestOnlineRebuildUnderTraffic(t *testing.T) {
	for _, eot := range []EOTDiscipline{Force, NoForce} {
		t.Run(fmt.Sprintf("%v", eot), func(t *testing.T) {
			cfg := smallConfig(PageLogging, eot, true, DataStriping)
			cfg.RebuildBatchGroups = 1 // maximum interleaving with traffic
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plane := fault.NewPlane(nil)
			plane.SetTransientEvery(113)
			db.SetInjector(plane)

			const workers = 4
			span := db.NumPages() / workers
			var (
				commits atomic.Int64
				stop    atomic.Bool
				wg      sync.WaitGroup
			)
			oracles := make([]map[PageID][]byte, workers)
			for w := 0; w < workers; w++ {
				w := w
				oracles[w] = make(map[PageID][]byte)
				wg.Add(1)
				go func() {
					defer wg.Done()
					r := rand.New(rand.NewSource(int64(1000 + w)))
					for iter := 0; !stop.Load(); iter++ {
						tx, err := db.Begin()
						if err != nil {
							t.Errorf("worker %d begin: %v", w, err)
							return
						}
						staged := make(map[PageID][]byte)
						for k := 0; k < 1+r.Intn(2); k++ {
							p := PageID(w*span + r.Intn(span))
							img := fillPage(db, byte(w*31+iter*7+k))
							if err := tx.WritePage(p, img); err != nil {
								t.Errorf("worker %d write page %d: %v", w, p, err)
								return
							}
							staged[p] = img
						}
						if r.Intn(8) == 0 {
							if err := tx.Abort(); err != nil {
								t.Errorf("worker %d abort: %v", w, err)
								return
							}
							continue
						}
						if err := tx.Commit(); err != nil {
							t.Errorf("worker %d commit: %v", w, err)
							return
						}
						for p, img := range staged {
							oracles[w][p] = img
						}
						commits.Add(1)
					}
				}()
			}

			waitCommits := func(n int64) {
				deadline := time.Now().Add(20 * time.Second)
				for commits.Load() < n {
					if time.Now().After(deadline) {
						stop.Store(true)
						wg.Wait()
						t.Fatalf("workers stalled at %d commits", commits.Load())
					}
					time.Sleep(time.Millisecond)
				}
			}

			// Let traffic build up, then kill a disk mid-flight and
			// rebuild online while the workers keep going.
			waitCommits(40)
			if err := db.FailDisk(2); err != nil {
				t.Fatal(err)
			}
			before := commits.Load()
			if err := <-db.StartRebuild(); err != nil {
				t.Fatalf("online rebuild: %v", err)
			}
			waitCommits(before + 40)
			stop.Store(true)
			wg.Wait()
			db.SetInjector(nil)
			if t.Failed() {
				return
			}

			if h := db.Health(); h != diskarray.Healthy {
				t.Fatalf("health after rebuild = %v, want Healthy", h)
			}
			st := db.Stats()
			if st.RebuiltGroups == 0 {
				t.Fatal("rebuild restored no groups")
			}
			if st.IORetries == 0 {
				t.Fatal("background transient rate left no retry trace")
			}

			// Zero lost committed updates, durably: crash, recover,
			// compare the platters against the workers' oracles.
			db.Crash()
			if _, err := db.Recover(); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < workers; w++ {
				for p, img := range oracles[w] {
					got, err := db.PeekPage(p)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, img) {
						t.Fatalf("worker %d page %d lost its committed image", w, p)
					}
				}
			}
			if err := db.VerifyParity(); err != nil {
				t.Fatal(err)
			}
			// Twin bitmap clean: no dirty groups, no working twins.
			for p := 0; p < db.NumPages(); p++ {
				info, err := db.InspectGroup(PageID(p))
				if err != nil {
					t.Fatal(err)
				}
				if info.Dirty {
					t.Fatalf("group %d still dirty after rebuild + recovery", info.Group)
				}
				for twin, state := range info.TwinStates {
					if state == "working" {
						t.Fatalf("group %d twin %d left in working state", info.Group, twin)
					}
				}
			}
		})
	}
}

// pumpRebuild drives RebuildStep to completion with a deadline.
func pumpRebuild(t *testing.T, db *DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		done, err := db.RebuildStep(0)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
		if done {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rebuild did not finish")
		}
	}
}

// readAllTx reads every page through the transactional path and compares
// it against the oracle — exercising degraded serving when a disk is
// down, and failing on any surfaced error or stale image.
func readAllTx(t *testing.T, db *DB, imgs map[PageID][]byte, when string) {
	t.Helper()
	tx := mustBegin(t, db)
	for p := 0; p < db.NumPages(); p++ {
		got, err := tx.ReadPage(PageID(p))
		if err != nil {
			t.Fatalf("%s: read page %d: %v", when, p, err)
		}
		if !bytes.Equal(got, imgs[PageID(p)]) {
			t.Fatalf("%s: page %d served a stale image", when, p)
		}
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestReplacementFailureMidRebuild kills the replacement drive after the
// rebuild has restored some groups onto it.  The restored-group flags
// must be invalidated: the blocks restored onto the dead replacement are
// gone again, so their groups must return to degraded serving (not
// surface errors) and the next rebuild must reconstruct them from
// scratch (not skip them and complete with all-zero blocks).
func TestReplacementFailureMidRebuild(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	const d = 0
	if err := db.FailDisk(d); err != nil {
		t.Fatal(err)
	}

	// One batch of the rebuild: the replacement is swapped in and one
	// group is restored onto it.
	done, err := db.RebuildStep(1)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("one group cannot be the whole disk in this geometry")
	}
	if pr := db.RebuildProgress(); pr.RestoredGroups != 1 {
		t.Fatalf("RestoredGroups = %d after one single-group step", pr.RestoredGroups)
	}

	// The replacement dies too.  The restored group's block died with
	// it: its restored flag must be reset so it serves degraded again.
	if err := db.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	if h := db.Health(); h != diskarray.Degraded {
		t.Fatalf("health = %v, want Degraded after replacement loss", h)
	}
	if pr := db.RebuildProgress(); pr.RestoredGroups != 0 {
		t.Fatalf("RestoredGroups = %d, want 0 after replacement loss", pr.RestoredGroups)
	}
	readAllTx(t, db, imgs, "between failures")

	// A fresh rebuild must restore the whole disk, including the group
	// the aborted rebuild had already marked restored.
	pumpRebuild(t, db)
	if h := db.Health(); h != diskarray.Healthy {
		t.Fatalf("health = %v, want Healthy", h)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	for p, want := range imgs {
		got, err := db.PeekPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d lost its committed image across the replacement failure", p)
		}
	}
}

// TestReplacementAutoFailStopMidRebuild is the organic variant: the
// replacement drive dies via the auto-fail-stop heuristic (persistent
// transient errors) instead of an explicit FailDisk, so the stale
// restored-group state is only discovered lazily, when a failed read
// routes through syncHealth.  The reads must still be served from
// redundancy and the re-run rebuild must restore every block.
func TestReplacementAutoFailStopMidRebuild(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)
	// Page 0's disk: group 0 is then both the first group restored by the
	// single-group step below and one whose data the sweep reads through
	// the replacement, guaranteeing the storm is hit.
	d := db.arr.DataLoc(0).Disk
	if err := db.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	if _, err := db.RebuildStep(1); err != nil {
		t.Fatal(err)
	}
	if pr := db.RebuildProgress(); pr.RestoredGroups != 1 {
		t.Fatalf("RestoredGroups = %d after one single-group step", pr.RestoredGroups)
	}

	// The replacement starts erroring on every access; the first read
	// that touches it must trip the auto fail-stop and be served
	// degraded, with the stale restored flags reset along the way.
	db.SetInjector(storm{disk: d})
	readAllTx(t, db, imgs, "under replacement storm")
	if h := db.Health(); h != diskarray.Degraded {
		t.Fatalf("health = %v, want Degraded after auto fail-stop", h)
	}
	if pr := db.RebuildProgress(); pr.RestoredGroups != 0 {
		t.Fatalf("RestoredGroups = %d, want 0 after auto fail-stop of the replacement", pr.RestoredGroups)
	}
	db.SetInjector(nil)

	pumpRebuild(t, db)
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
	for p, want := range imgs {
		got, err := db.PeekPage(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d lost its committed image across the replacement fail-stop", p)
		}
	}
}

// undoProbe observes the disk access stream and records, at the first
// access it sees, whether a before-image for the probed page was already
// on the log.
type undoProbe struct {
	log    *wal.Log
	page   page.PageID
	sawIO  bool
	logged bool
}

func (u *undoProbe) Observe(a disk.Access) disk.Decision {
	if !u.sawIO {
		u.sawIO = true
		_ = u.log.Scan(1, func(r wal.Record) bool {
			if r.Type == wal.TypeBeforeImage && r.Page == u.page {
				u.logged = true
				return false
			}
			return true
		})
	}
	return disk.Decision{}
}

// TestDemoteLogsUndoBeforeDisk locks in the ordering invariant of
// demoteNoLogSteal that syncHealth relies on when it swallows a demotion
// error during a disk loss: the owner's UNDO before-image reaches the
// log before the demotion's first disk I/O, so a demotion interrupted by
// a second failure always leaves a log-based undo path.
func TestDemoteLogsUndoBeforeDisk(t *testing.T) {
	cfg := smallConfig(PageLogging, Force, true, DataStriping)
	db, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	imgs := loadAll(t, db)

	// Dirty a group: an active transaction's page is stolen through the
	// no-UNDO-logging path by the checkpoint flush.
	const p = PageID(0)
	tx := mustBegin(t, db)
	if err := tx.WritePage(p, fillPage(db, 0x5C)); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	g := db.arr.GroupOf(page.PageID(p))
	e, dirty := db.store.Dirty.Lookup(g)
	if !dirty {
		t.Fatal("checkpoint flush did not take the no-log steal path")
	}

	// Fail the disk holding the group's working twin: syncHealth must
	// demote the steal, and the demotion's log appends must precede its
	// disk I/O.
	probe := &undoProbe{log: db.log, page: page.PageID(p)}
	db.SetInjector(probe)
	if err := db.FailDisk(db.arr.ParityLoc(g, e.WorkingTwin).Disk); err != nil {
		t.Fatal(err)
	}
	db.SetInjector(nil)
	if !probe.sawIO {
		t.Fatal("demotion performed no disk I/O")
	}
	if !probe.logged {
		t.Fatal("demotion touched disk before the owner's UNDO before-image was logged")
	}
	if _, still := db.store.Dirty.Lookup(g); still {
		t.Fatal("group still dirty after demotion")
	}

	// The logged undo path works: abort restores the committed image.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := db.PeekPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, imgs[p]) {
		t.Fatal("abort after demotion did not restore the committed image")
	}
}
