package model

// This file models the reliability arithmetic behind the paper's
// introduction: large databases need many disks, an unprotected farm of
// D disks fails every MTTF/D hours (the paper's footnote: with a 30,000
// hour per-disk MTTF, a large organization's farm is down to "less than
// 25 days" between media failures), mirroring fixes that at 100% storage
// overhead, and redundant disk arrays fix it at roughly (100/N)% — which
// is the premise the recovery scheme builds on.
//
// The mean-time-to-data-loss formulas are the standard exponential
// failure / repair model of Patterson, Gibson & Katz [3]: data is lost
// when a second disk of a group fails while the first is still being
// repaired.

// HoursPerDay converts MTTF hours to days.
const HoursPerDay = 24

// PaperDiskMTTFHours is the per-disk MTTF the paper's footnote assumes.
const PaperDiskMTTFHours = 30000

// SystemMTTF returns the mean time to the first disk failure of a farm
// of `disks` drives, in hours: MTTF/D.
func SystemMTTF(diskMTTFHours float64, disks int) float64 {
	if disks <= 0 {
		return 0
	}
	return diskMTTFHours / float64(disks)
}

// GroupMTTDL returns the mean time to data loss of one redundancy group
// of `groupSize` disks that tolerates a single failure and repairs a
// failed drive in mttrHours:
//
//	MTTDL = MTTF² / (G·(G−1)·MTTR)
func GroupMTTDL(diskMTTFHours, mttrHours float64, groupSize int) float64 {
	if groupSize < 2 {
		return diskMTTFHours
	}
	g := float64(groupSize)
	return diskMTTFHours * diskMTTFHours / (g * (g - 1) * mttrHours)
}

// ArrayMTTDL returns the mean time to data loss of an array of
// `numGroups` independent single-failure-tolerant groups.
func ArrayMTTDL(diskMTTFHours, mttrHours float64, groupSize, numGroups int) float64 {
	if numGroups <= 0 {
		return 0
	}
	return GroupMTTDL(diskMTTFHours, mttrHours, groupSize) / float64(numGroups)
}

// ReliabilityComparison summarizes the introduction's three options for
// a database of `dataDisks` disks of data.
type ReliabilityComparison struct {
	// Unprotected is the farm's MTTF in hours with no redundancy.
	Unprotected float64
	// Mirrored is the MTTDL with disk mirroring (100% overhead).
	Mirrored float64
	// MirroredOverheadPct is always 100.
	MirroredOverheadPct float64
	// RDASingle is the MTTDL with single-parity groups of N+1 disks.
	RDASingle float64
	// RDATwin is the MTTDL with the twin-parity organization (N+2 disk
	// groups; still single-failure tolerant — the twin exists for
	// transaction recovery, not double-failure tolerance).
	RDATwin float64
	// RDASingleOverheadPct and RDATwinOverheadPct are the parity storage
	// overheads relative to the data: 100/N and 200/N.
	RDASingleOverheadPct float64
	RDATwinOverheadPct   float64
}

// CompareReliability evaluates the introduction's comparison for a farm
// of dataDisks data disks organized in parity groups of width n.
func CompareReliability(diskMTTFHours, mttrHours float64, dataDisks, n int) ReliabilityComparison {
	groups := (dataDisks + n - 1) / n
	return ReliabilityComparison{
		Unprotected:          SystemMTTF(diskMTTFHours, dataDisks),
		Mirrored:             ArrayMTTDL(diskMTTFHours, mttrHours, 2, dataDisks),
		MirroredOverheadPct:  100,
		RDASingle:            ArrayMTTDL(diskMTTFHours, mttrHours, n+1, groups),
		RDATwin:              ArrayMTTDL(diskMTTFHours, mttrHours, n+2, groups),
		RDASingleOverheadPct: 100 / float64(n),
		RDATwinOverheadPct:   200 / float64(n),
	}
}
