package model

import (
	"fmt"
	"strings"
)

// Algorithms lists the four families in their Section 5 order — the
// iteration set for sweeps that cover the whole design space.
var Algorithms = []Algorithm{
	AlgoPageForceTOC,
	AlgoPageNoForceACC,
	AlgoRecordForceTOC,
	AlgoRecordNoForceACC,
}

// Key is the short machine-readable name of the family, as accepted by
// ParseAlgorithm and used in artifact JSON.
func (a Algorithm) Key() string {
	switch a {
	case AlgoPageForceTOC:
		return "page-force"
	case AlgoPageNoForceACC:
		return "page-noforce"
	case AlgoRecordForceTOC:
		return "record-force"
	case AlgoRecordNoForceACC:
		return "record-noforce"
	default:
		return "unknown"
	}
}

// ParseAlgorithm maps a family key to its Algorithm.  It is the single
// name table shared by rdamodel and the rdabench sweeps.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms {
		if name == a.Key() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("model: unknown algorithm %q (want %s)", name, strings.Join(AlgorithmKeys(), ", "))
}

// AlgorithmKeys returns the accepted family keys in order.
func AlgorithmKeys() []string {
	keys := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		keys[i] = a.Key()
	}
	return keys
}

// ParseEnvironment maps an environment name to its parameter set:
// "high-update" or "high-retrieval" (Section 5.2.1).
func ParseEnvironment(name string) (Params, error) {
	switch name {
	case "high-update":
		return HighUpdate(), nil
	case "high-retrieval":
		return HighRetrieval(), nil
	default:
		return Params{}, fmt.Errorf("model: unknown environment %q (want high-update or high-retrieval)", name)
	}
}

// System describes a concrete engine configuration in the model's
// system terms — the fields a measured run fixes independently of the
// workload.
type System struct {
	// BufferFrames is B, NumPages is S, GroupWidth is N.
	BufferFrames int
	NumPages     int
	GroupWidth   int
	// Concurrency is P, the concurrent transaction streams.
	Concurrency int
	// Interval is T, the availability interval in page transfers; zero
	// means the paper's 5·10⁶.
	Interval float64
}

// Shape describes a workload's mix in the model's terms — the fields a
// generator spec fixes.
type Shape struct {
	// PagesPerTx is s, UpdateFraction f_u, UpdateProb p_u, AbortProb p_b.
	PagesPerTx     float64
	UpdateFraction float64
	UpdateProb     float64
	AbortProb      float64
	// Communality is C.  For model-vs-measured comparisons this is the
	// *measured* buffer hit rate of the run being predicted, so the model
	// is evaluated at the locality the engine actually saw.
	Communality float64
}

// Compose builds the model parameters for a (system, shape) pair on the
// record-logging length constants of the paper's environments (l_bc,
// l_p, l_h, e and d scale with s as in HighUpdate/HighRetrieval).
func Compose(sys System, shape Shape) Params {
	p := HighUpdate()
	if sys.BufferFrames > 0 {
		p.B = sys.BufferFrames
	}
	if sys.NumPages > 0 {
		p.S = sys.NumPages
	}
	if sys.GroupWidth > 0 {
		p.N = sys.GroupWidth
	}
	if sys.Concurrency > 0 {
		p.P = sys.Concurrency
	}
	if sys.Interval > 0 {
		p.T = sys.Interval
	}
	if shape.PagesPerTx > 0 {
		p.PagesPerTx = shape.PagesPerTx
	}
	p.UpdateFraction = shape.UpdateFraction
	p.UpdateProb = shape.UpdateProb
	p.AbortProb = shape.AbortProb
	p.Communality = shape.Communality
	// d, the update statements per transaction, scales with s in the
	// paper's environments (3 of 10, 8 of 40); use the high-update
	// ratio, which only affects record-logging log volume mildly.
	p.UpdateStatements = 0.3 * p.PagesPerTx
	if p.UpdateStatements < 1 {
		p.UpdateStatements = 1
	}
	return p
}
