package model

// This file regenerates the paper's evaluation artifacts (Figures 9–13)
// from the analytical model.  Each figure is returned as a table of
// series points so that cmd/rdabench and the benchmarks can print the
// same rows the paper plots.

// Point is one x position of a figure, with the RDA and non-RDA
// throughputs.
type Point struct {
	X       float64 // communality C (Figs 9–12) or transaction size s (Fig 13)
	NoRDA   float64 // throughput without RDA recovery
	RDA     float64 // throughput with RDA recovery
	GainPct float64 // 100·(RDA−NoRDA)/NoRDA
}

// Series is one environment's curve set.
type Series struct {
	Label  string
	Points []Point
}

// DefaultCommunalities is the C sweep used by Figures 9–12.
var DefaultCommunalities = []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// figure runs one algorithm over both environments for a C sweep.
func figure(algo Algorithm, cs []float64) []Series {
	envs := []struct {
		label string
		p     Params
	}{
		{"high-update", HighUpdate()},
		{"high-retrieval", HighRetrieval()},
	}
	out := make([]Series, 0, len(envs))
	for _, env := range envs {
		s := Series{Label: env.label}
		for _, c := range cs {
			p := env.p.WithCommunality(c)
			no := Evaluate(algo, p, false).Throughput
			yes := Evaluate(algo, p, true).Throughput
			s.Points = append(s.Points, Point{
				X: c, NoRDA: no, RDA: yes, GainPct: 100 * (yes - no) / no,
			})
		}
		out = append(out, s)
	}
	return out
}

// Figure9 is throughput vs communality for page logging FORCE/TOC, with
// and without RDA, in both environments (paper Figure 9).
func Figure9(cs []float64) []Series { return figure(AlgoPageForceTOC, cs) }

// Figure10 is the same sweep for page logging ¬FORCE/ACC (Figure 10).
func Figure10(cs []float64) []Series { return figure(AlgoPageNoForceACC, cs) }

// Figure11 is the sweep for record logging FORCE/TOC (Figure 11).
func Figure11(cs []float64) []Series { return figure(AlgoRecordForceTOC, cs) }

// Figure12 is the sweep for record logging ¬FORCE/ACC (Figure 12).
func Figure12(cs []float64) []Series { return figure(AlgoRecordNoForceACC, cs) }

// Figure13 is the percentage throughput benefit of RDA recovery as a
// function of the number of pages accessed per transaction s, for record
// logging ¬FORCE/ACC in the high update environment at C=0.9 (paper
// Figure 13: ≈6% at s=5 rising to ≈70% at s=45).
func Figure13(sizes []float64) Series {
	out := Series{Label: "record NOFORCE/ACC, high-update, C=0.9"}
	for _, s := range sizes {
		p := HighUpdate().WithCommunality(0.9)
		p.PagesPerTx = s
		no := Evaluate(AlgoRecordNoForceACC, p, false).Throughput
		yes := Evaluate(AlgoRecordNoForceACC, p, true).Throughput
		out.Points = append(out.Points, Point{
			X: s, NoRDA: no, RDA: yes, GainPct: 100 * (yes - no) / no,
		})
	}
	return out
}

// DefaultSizes is the s sweep of Figure 13.
var DefaultSizes = []float64{5, 10, 15, 20, 25, 30, 35, 40, 45}

// NSweepPoint is one group width of the storage/performance tradeoff
// sweep (an ablation this reproduction adds: the paper fixes N=10 and
// only remarks that the parity overhead is (100/N)%).
type NSweepPoint struct {
	// N is the parity group width; N=1 is mirroring / twin-page storage.
	N int
	// GainPct is the RDA throughput gain for page logging FORCE/TOC in
	// the high-update environment.
	GainPct float64
	// OverheadPct is the twin-parity storage overhead, 2·(100/N)%.
	OverheadPct float64
	// Pl is Equation 5's logging probability at this width.
	Pl float64
}

// SweepN evaluates the RDA gain and storage overhead across group
// widths.  Wider groups cost less storage but raise p_l (more collisions
// of uncommitted pages inside a group), eroding the gain — the design
// tradeoff behind the paper's choice of N=10.
func SweepN(widths []int, c float64) []NSweepPoint {
	out := make([]NSweepPoint, 0, len(widths))
	for _, n := range widths {
		p := HighUpdate().WithCommunality(c)
		p.N = n
		no := PageForceTOC(p, false)
		yes := PageForceTOC(p, true)
		out = append(out, NSweepPoint{
			N:           n,
			GainPct:     100 * (yes.Throughput - no.Throughput) / no.Throughput,
			OverheadPct: 200 / float64(n),
			Pl:          yes.Pl,
		})
	}
	return out
}

// DefaultWidths is the N sweep.
var DefaultWidths = []int{1, 2, 5, 10, 20, 50, 100}
