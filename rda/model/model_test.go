package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(got, want, relTol float64) bool {
	if want == 0 {
		return math.Abs(got) < relTol
	}
	return math.Abs(got-want)/math.Abs(want) <= relTol
}

// TestLoggingProbabilityEq5 cross-checks Equation 5 against a Monte
// Carlo estimate: throw K random pages at S pages grouped in N and count
// how many land in a group that already holds one of the K (those are
// the ones that must be logged).
func TestLoggingProbabilityEq5(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const S, N = 5000, 10
	for _, K := range []int{5, 22, 80, 300} {
		const trials = 3000
		logged := 0
		for tr := 0; tr < trials; tr++ {
			groups := make(map[int]int)
			for i := 0; i < K; i++ {
				groups[r.Intn(S)/N]++
			}
			covered := len(groups) // one free page per touched group
			logged += K - covered
		}
		est := float64(logged) / float64(K*trials)
		got := LoggingProbability(S, N, float64(K))
		if !near(got, est, 0.12) && math.Abs(got-est) > 0.01 {
			t.Errorf("K=%d: Eq5 p_l=%.4f, Monte Carlo %.4f", K, got, est)
		}
	}
}

func TestLoggingProbabilityBounds(t *testing.T) {
	f := func(kRaw uint16) bool {
		k := float64(kRaw%2000) + 1
		pl := LoggingProbability(5000, 10, k)
		return pl >= 0 && pl <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if LoggingProbability(5000, 10, 0) != 0 {
		t.Fatalf("K=0 must never log")
	}
	// Monotone in K: more uncommitted pages, more collisions.
	prev := 0.0
	for k := 1.0; k < 500; k *= 2 {
		pl := LoggingProbability(5000, 10, k)
		if pl < prev {
			t.Fatalf("p_l not monotone at K=%v", k)
		}
		prev = pl
	}
}

// TestSharedUpdatedPagesAppendix checks the closed form against the
// appendix recurrence S(k) − S(k−1) = s·p_u·(1 − C·S(k−1)/B).
func TestSharedUpdatedPagesAppendix(t *testing.T) {
	const B = 300
	for _, tc := range []struct {
		c, s, pu float64
		k        int
	}{
		{0.5, 10, 0.9, 5},
		{0.9, 10, 0.9, 4},
		{0.3, 40, 0.3, 3},
		{0.0, 10, 0.5, 6},
	} {
		sk := tc.s * tc.pu // S(1)
		for k := 2; k <= tc.k; k++ {
			sk += tc.s * tc.pu * (1 - tc.c*sk/B)
		}
		got := SharedUpdatedPages(B, tc.c, tc.s, tc.pu, float64(tc.k))
		// The closed form B(1−(1−C·s·p_u/B)^k) solves the recurrence
		// only approximately for C<1 (the paper derives it as such); they
		// agree tightly for the paper's parameter ranges.
		if tc.c > 0 && !near(got, sk, 0.05) {
			t.Errorf("%+v: closed form %.2f vs recurrence %.2f", tc, got, sk)
		}
		if tc.c == 0 && !near(got, sk, 1e-9) {
			// With C=0 there is no sharing... the closed form degenerates
			// to k·s·p_u, exactly the recurrence.
			t.Errorf("C=0: closed form %.2f vs recurrence %.2f", got, sk)
		}
	}
}

func TestProbabilityHelpersBounds(t *testing.T) {
	f := func(cRaw, fuRaw, puRaw uint8) bool {
		c := float64(cRaw%100) / 100
		fu := float64(fuRaw%101) / 100
		pu := float64(puRaw%101) / 100
		pm := ModifiedProbability(fu, pu, c)
		ps := StealProbability(300, c, 10, 6)
		return pm >= 0 && pm <= 1 && ps >= 0 && ps <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAvgLogEntryLen(t *testing.T) {
	p := HighUpdate()
	// L = (3·100 + 7·10)/10 = 37 for the high-update environment.
	if got := AvgLogEntryLen(p); !near(got, 37, 1e-9) {
		t.Fatalf("L = %v, want 37", got)
	}
}

// --- Pinning the paper's published Figure 9–13 values ---------------------

// TestFigure9MatchesPaper pins the model to the values the paper prints
// on Figure 9's axes and in its text: high-update throughput without RDA
// at C=0 is ≈48,800 transactions per interval, high-retrieval ≈91,800,
// and the RDA improvement at C=0.9 high-update is "about 42%".
func TestFigure9MatchesPaper(t *testing.T) {
	hu := PageForceTOC(HighUpdate().WithCommunality(0), false)
	if !near(hu.Throughput, 48800, 0.02) {
		t.Errorf("high-update C=0 ¬RDA throughput = %.0f, paper ≈48800", hu.Throughput)
	}
	hr := PageForceTOC(HighRetrieval().WithCommunality(0), false)
	if !near(hr.Throughput, 91800, 0.02) {
		t.Errorf("high-retrieval C=0 ¬RDA throughput = %.0f, paper ≈91800", hr.Throughput)
	}
	no := PageForceTOC(HighUpdate().WithCommunality(0.9), false).Throughput
	yes := PageForceTOC(HighUpdate().WithCommunality(0.9), true).Throughput
	gain := 100 * (yes - no) / no
	if gain < 38 || gain > 47 {
		t.Errorf("C=0.9 high-update RDA gain = %.1f%%, paper ≈42%%", gain)
	}
	// RDA wins everywhere and the gap widens with C.
	prevGain := -1.0
	for _, c := range DefaultCommunalities {
		n := PageForceTOC(HighUpdate().WithCommunality(c), false).Throughput
		y := PageForceTOC(HighUpdate().WithCommunality(c), true).Throughput
		if y <= n {
			t.Errorf("C=%.1f: RDA must win (got %.0f vs %.0f)", c, y, n)
		}
		g := (y - n) / n
		if g < prevGain {
			t.Errorf("C=%.1f: RDA gain must widen with communality", c)
		}
		prevGain = g
	}
}

// TestFigure10MatchesPaper pins the two qualitative results the paper
// states for Figure 10: without RDA recovery the ¬FORCE/ACC algorithm
// outperforms FORCE/TOC, but WITH RDA recovery the situation is reversed
// — FORCE/TOC+RDA wins "by a significant margin" — and the RDA gain for
// ¬FORCE/ACC itself is not significant.  The C=0 high-update axis value
// (≈47,800) is pinned too.
func TestFigure10MatchesPaper(t *testing.T) {
	if got := PageNoForceACC(HighUpdate().WithCommunality(0), false).Throughput; !near(got, 47800, 0.02) {
		t.Errorf("high-update C=0 ¬RDA throughput = %.0f, paper ≈47800", got)
	}
	for _, c := range DefaultCommunalities[3:] { // the effect holds at moderate+ C
		hu := HighUpdate().WithCommunality(c)
		forceNo := PageForceTOC(hu, false).Throughput
		noforceNo := PageNoForceACC(hu, false).Throughput
		forceRDA := PageForceTOC(hu, true).Throughput
		noforceRDA := PageNoForceACC(hu, true).Throughput
		if noforceNo <= forceNo {
			t.Errorf("C=%.1f: without RDA, ¬FORCE/ACC must beat FORCE/TOC (%.0f vs %.0f)", c, noforceNo, forceNo)
		}
		if forceRDA <= noforceRDA {
			t.Errorf("C=%.1f: with RDA, FORCE/TOC must beat ¬FORCE/ACC (%.0f vs %.0f)", c, forceRDA, noforceRDA)
		}
		gain := (noforceRDA - noforceNo) / noforceNo
		if gain > 0.10 {
			t.Errorf("C=%.1f: ¬FORCE RDA gain %.1f%% should be insignificant (<10%%)", c, 100*gain)
		}
	}
}

// TestFigure11MatchesPaper pins the record-logging FORCE/TOC range to
// the paper's Figure 11 high-update axis (≈150,600 at the bottom).
func TestFigure11MatchesPaper(t *testing.T) {
	if got := RecordForceTOC(HighUpdate().WithCommunality(0), false).Throughput; !near(got, 150600, 0.02) {
		t.Errorf("high-update C=0 ¬RDA throughput = %.0f, paper ≈150600", got)
	}
	// RDA still wins, modestly.
	for _, c := range DefaultCommunalities {
		hu := HighUpdate().WithCommunality(c)
		no := RecordForceTOC(hu, false).Throughput
		yes := RecordForceTOC(hu, true).Throughput
		if yes <= no {
			t.Errorf("C=%.1f: RDA must not lose (%.0f vs %.0f)", c, yes, no)
		}
	}
}

// TestFigure12MatchesPaper pins the paper's statement that for record
// logging ¬FORCE/ACC "for C = 0.9 the increase in throughput is about
// 14%", and that ¬FORCE/ACC remains the best record-logging algorithm.
func TestFigure12MatchesPaper(t *testing.T) {
	hu := HighUpdate().WithCommunality(0.9)
	no := RecordNoForceACC(hu, false).Throughput
	yes := RecordNoForceACC(hu, true).Throughput
	gain := 100 * (yes - no) / no
	if gain < 10 || gain > 18 {
		t.Errorf("C=0.9 record ¬FORCE RDA gain = %.1f%%, paper ≈14%%", gain)
	}
	// Conclusions: in the record logging case ¬FORCE/ACC performs best.
	for _, c := range []float64{0.5, 0.7, 0.9} {
		p := HighUpdate().WithCommunality(c)
		if RecordNoForceACC(p, true).Throughput <= RecordForceTOC(p, true).Throughput {
			t.Errorf("C=%.1f: record ¬FORCE/ACC+RDA must beat FORCE/TOC+RDA", c)
		}
	}
}

// TestFigure13MatchesPaper pins the paper's Figure 13: the RDA benefit
// for record logging ¬FORCE/ACC (high update, C=0.9) grows from ≈6% at
// s=5 to ≈70% at s=45, monotonically.
func TestFigure13MatchesPaper(t *testing.T) {
	series := Figure13(DefaultSizes)
	first := series.Points[0]
	last := series.Points[len(series.Points)-1]
	if first.GainPct < 3 || first.GainPct > 10 {
		t.Errorf("s=5 gain = %.1f%%, paper ≈6%%", first.GainPct)
	}
	if last.GainPct < 50 || last.GainPct > 80 {
		t.Errorf("s=45 gain = %.1f%%, paper ≈70%%", last.GainPct)
	}
	prev := -1.0
	for _, pt := range series.Points {
		if pt.GainPct < prev {
			t.Errorf("s=%.0f: Figure 13 must be monotone increasing", pt.X)
		}
		prev = pt.GainPct
	}
}

// TestOptimalInterval sanity-checks the ACC interval optimization: the
// optimum is interior (not a bracket endpoint) and beats both a tiny and
// a huge interval.
func TestOptimalInterval(t *testing.T) {
	p := HighUpdate().WithCommunality(0.5)
	res := PageNoForceACC(p, false)
	if res.Interval <= 100 || res.Interval >= p.T/2 {
		t.Fatalf("optimal interval %v looks degenerate", res.Interval)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput must be positive")
	}
	// Perturbing the interval must not improve throughput.
	rt := func(i float64) float64 {
		cs := (i/res.CT/2)*p.UpdateFraction*(res.CL/4+4*p.PagesPerTx*p.UpdateProb) +
			float64(p.P)*p.UpdateFraction*(res.CL/4+4*p.PagesPerTx*p.UpdateProb)
		return (p.T - cs - res.CC*(p.T-cs-i/2)/i) / res.CT
	}
	for _, factor := range []float64{0.25, 4} {
		if rt(res.Interval*factor) > res.Throughput*1.0001 {
			t.Errorf("interval %v×%.2f beats the chosen optimum", res.Interval, factor)
		}
	}
}

// TestEvaluateDispatch exercises the Algorithm dispatcher.
func TestEvaluateDispatch(t *testing.T) {
	p := HighUpdate().WithCommunality(0.5)
	for _, a := range []Algorithm{AlgoPageForceTOC, AlgoPageNoForceACC, AlgoRecordForceTOC, AlgoRecordNoForceACC} {
		for _, rda := range []bool{false, true} {
			res := Evaluate(a, p, rda)
			if res.Throughput <= 0 || math.IsNaN(res.Throughput) {
				t.Errorf("%v rda=%v: throughput %v", a, rda, res.Throughput)
			}
			if res.CT <= 0 || res.CL <= 0 {
				t.Errorf("%v rda=%v: degenerate costs %+v", a, rda, res)
			}
		}
		if a.String() == "unknown" {
			t.Errorf("missing String case for %d", a)
		}
	}
}

// TestStorageOverheadClaim checks Section 6's storage statement: the
// extra storage for the parity information is about (100/N)% of the
// database per parity copy.
func TestStorageOverheadClaim(t *testing.T) {
	for _, n := range []int{5, 10, 20} {
		perCopy := 100.0 / float64(n)
		// One parity page per N data pages = (100/N)% of the data.
		if !near(perCopy, 100/float64(n), 1e-12) {
			t.Fatalf("arithmetic identity failed (n=%d)", n)
		}
	}
}

// TestSweepNTradeoff checks the group-width ablation: widening the
// parity groups lowers storage overhead but raises Equation 5's p_l and
// erodes the RDA gain, monotonically.  N=1 (mirrored pairs / twin-page
// storage) gives the largest gain at the largest overhead.
func TestSweepNTradeoff(t *testing.T) {
	pts := SweepN(DefaultWidths, 0.9)
	for i := 1; i < len(pts); i++ {
		if pts[i].GainPct > pts[i-1].GainPct {
			t.Errorf("N=%d: gain must not grow with group width", pts[i].N)
		}
		if pts[i].OverheadPct >= pts[i-1].OverheadPct {
			t.Errorf("N=%d: overhead must shrink with group width", pts[i].N)
		}
		if pts[i].Pl < pts[i-1].Pl {
			t.Errorf("N=%d: p_l must grow with group width", pts[i].N)
		}
	}
	// The paper's N=10 keeps most of the N=1 gain at a tenth of the
	// overhead — the design point's justification.
	var n1, n10 NSweepPoint
	for _, pt := range pts {
		if pt.N == 1 {
			n1 = pt
		}
		if pt.N == 10 {
			n10 = pt
		}
	}
	if n10.GainPct < 0.9*n1.GainPct {
		t.Errorf("N=10 gain %.1f%% lost too much of N=1's %.1f%%", n10.GainPct, n1.GainPct)
	}
}

// TestOptimalIntervalClosedForm confirms that Equation 1's closed-form
// optimum matches the golden-section optimum the evaluators use, for
// both environments and both algorithms, with and without RDA.
func TestOptimalIntervalClosedForm(t *testing.T) {
	for _, env := range []Params{HighUpdate(), HighRetrieval()} {
		for _, c := range []float64{0.2, 0.5, 0.8} {
			p := env.WithCommunality(c)
			for _, algo := range []Algorithm{AlgoPageNoForceACC, AlgoRecordNoForceACC} {
				for _, rda := range []bool{false, true} {
					res := Evaluate(algo, p, rda)
					// β: the interval-independent crash-cost part.
					Pfu := float64(p.P) * p.UpdateFraction
					beta := Pfu * (res.CL/4 + 4*p.PagesPerTx*p.UpdateProb)
					if rda {
						beta += float64(p.S) / float64(p.N)
					}
					closed := OptimalInterval(p, res.CT, res.CC, res.CL, beta)
					if !near(closed, res.Interval, 0.02) {
						t.Errorf("%v rda=%v C=%.1f: closed form I*=%.0f vs numeric %.0f",
							algo, rda, c, closed, res.Interval)
					}
				}
			}
		}
	}
}
