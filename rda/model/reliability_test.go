package model

import "testing"

// TestIntroductionFootnote reproduces the paper's footnote 1: assuming a
// 30,000-hour MTTF per disk, the mean time between media failures of a
// 50-disk farm is "less than 25 days".
func TestIntroductionFootnote(t *testing.T) {
	days := SystemMTTF(PaperDiskMTTFHours, 50) / HoursPerDay
	if days > 25 {
		t.Fatalf("50-disk farm MTTF = %.1f days, paper says less than 25", days)
	}
	if days < 24 {
		t.Fatalf("50-disk farm MTTF = %.1f days; 30000h/50 should be 25 days", days)
	}
}

func TestGroupMTTDLShape(t *testing.T) {
	// Redundancy buys orders of magnitude: a 10+1 group with a 24 hour
	// repair must survive far longer than the same 11 disks unprotected
	// (MTTF/11), and longer than a single disk.
	mttdl := GroupMTTDL(PaperDiskMTTFHours, 24, 11)
	if mttdl < 50*SystemMTTF(PaperDiskMTTFHours, 11) {
		t.Fatalf("RAID group MTTDL %.0f hours is not much better than the unprotected farm", mttdl)
	}
	if mttdl < PaperDiskMTTFHours {
		t.Fatalf("RAID group MTTDL %.0f hours is worse than one disk", mttdl)
	}
	// MTTDL shrinks with group size (more disks to pair-fail) and with
	// repair time.
	if GroupMTTDL(PaperDiskMTTFHours, 24, 21) >= GroupMTTDL(PaperDiskMTTFHours, 24, 11) {
		t.Fatalf("wider groups must lose data sooner")
	}
	if GroupMTTDL(PaperDiskMTTFHours, 48, 11) >= GroupMTTDL(PaperDiskMTTFHours, 24, 11) {
		t.Fatalf("slower repair must lose data sooner")
	}
	if GroupMTTDL(PaperDiskMTTFHours, 24, 1) != PaperDiskMTTFHours {
		t.Fatalf("a single-disk 'group' is just the disk")
	}
}

func TestArrayMTTDLScales(t *testing.T) {
	one := ArrayMTTDL(PaperDiskMTTFHours, 24, 11, 1)
	five := ArrayMTTDL(PaperDiskMTTFHours, 24, 11, 5)
	if five*5 < one*0.999 || five*5 > one*1.001 {
		t.Fatalf("independent groups must divide the MTTDL: %v vs %v", one, five)
	}
	if ArrayMTTDL(PaperDiskMTTFHours, 24, 11, 0) != 0 {
		t.Fatalf("no groups, no data, no loss")
	}
}

// TestIntroductionComparison checks the introduction's storyline: for a
// 50-disk database, the unprotected farm fails within weeks; mirroring
// and RDAs both push the MTTDL out by orders of magnitude, but mirroring
// costs 100% extra storage while the array costs (100/N)% per parity
// copy.
func TestIntroductionComparison(t *testing.T) {
	cmp := CompareReliability(PaperDiskMTTFHours, 24, 50, 10)
	if cmp.Unprotected/HoursPerDay > 25 {
		t.Fatalf("unprotected farm should fail within 25 days")
	}
	if cmp.Mirrored < 500*cmp.Unprotected {
		t.Fatalf("mirroring should improve MTTDL by orders of magnitude")
	}
	if cmp.RDASingle < 50*cmp.Unprotected || cmp.RDATwin < 50*cmp.Unprotected {
		t.Fatalf("arrays should improve MTTDL by orders of magnitude")
	}
	if cmp.MirroredOverheadPct != 100 {
		t.Fatalf("mirroring overhead must be 100%%")
	}
	if cmp.RDASingleOverheadPct != 10 || cmp.RDATwinOverheadPct != 20 {
		t.Fatalf("RDA overheads = %.0f%%/%.0f%%, want 10%%/20%% at N=10",
			cmp.RDASingleOverheadPct, cmp.RDATwinOverheadPct)
	}
	// The twin organization's slightly wider groups cost a little MTTDL
	// relative to single parity, never more than the mirror loses in
	// storage.
	if cmp.RDATwin >= cmp.RDASingle {
		t.Fatalf("N+2 groups cannot out-survive N+1 groups")
	}
}
