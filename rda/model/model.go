// Package model implements the paper's analytical performance model
// (Section 5 and the Appendix), which extends Reuter's 1984 recovery
// performance model [14].
//
// The model measures every cost in page transfers and evaluates, for a
// set of P concurrently executing transactions, the throughput
//
//	r_t = (T − c_s − c_c·(T − c_s − I/2)/I) / c_t
//
// in transactions per availability interval of T page transfers, where
// c_t is the expected cost of one transaction, c_s the cost of crash
// recovery, c_c the cost of taking a checkpoint and I the checkpointing
// interval (FORCE/TOC algorithms have c_c = 0 and no interval).
//
// Four algorithm families are modelled, each with and without RDA
// recovery:
//
//	PageForceTOC      — Section 5.2.1 (¬ATOMIC, STEAL, FORCE, TOC)
//	PageNoForceACC    — Section 5.2.2 (¬ATOMIC, STEAL, ¬FORCE, ACC)
//	RecordForceTOC    — Section 5.3.1 (record logging/locking, FORCE)
//	RecordNoForceACC  — Section 5.3.2 (record logging/locking, ¬FORCE)
//
// # Fidelity notes
//
// The only machine-readable copy of the paper available to this
// reproduction is an OCR scan whose equations are damaged in places.
// Every formula below is annotated with its provenance:
//
//   - "verbatim" — recovered cleanly from the text;
//   - "reconstructed" — rebuilt from the paper's verbal description of
//     the terms, and validated against the printed results: the
//     PageForceTOC evaluator reproduces the paper's published axis
//     values for Figure 9 (≈48.8k tx/interval at C=0 high-update without
//     RDA; ≈42% RDA gain at C=0.9) to within a fraction of a percent.
//
// EXPERIMENTS.md records the full paper-vs-model comparison.
package model

import (
	"math"
)

// Params are the model's workload and system parameters (Section 5,
// "Performance Analysis"; values from [14] where the paper says so).
type Params struct {
	// B is the database buffer size in pages.
	B int
	// S is the database size in pages.
	S int
	// N is the parity group width (data pages per parity page).
	N int
	// P is the number of concurrently executing transactions.
	P int
	// T is the availability interval in page transfers.
	T float64
	// PagesPerTx is s: database calls (page requests) per transaction.
	PagesPerTx float64
	// UpdateFraction is f_u: the fraction of update transactions.
	UpdateFraction float64
	// UpdateProb is p_u: the probability an accessed page is modified
	// (update transactions only).
	UpdateProb float64
	// AbortProb is p_b: the probability a transaction aborts.
	AbortProb float64
	// Communality is C: the probability a requested page is found in the
	// buffer.
	Communality float64

	// Record-logging parameters (Section 5.3).
	// UpdateStatements is d: update statements per transaction.
	UpdateStatements float64
	// RecordLen is r: average record length in bytes.
	RecordLen float64
	// ShortEntryLen is e: average length of a short log entry.
	ShortEntryLen float64
	// BOTLen is l_bc: the length of a BOT or EOT record.
	BOTLen float64
	// LogPageLen is l_p: the physical log page length.
	LogPageLen float64
	// ChainHeaderLen is l_h: the log chain header length.
	ChainHeaderLen float64
}

// HighUpdate returns the paper's high update frequency environment
// (Section 5.2.1: B=300, S=5000, N=10, P=6, p_b=0.01, T=5·10⁶;
// s=10, f_u=0.8, p_u=0.9; record logging d=3, r=100, e=10, l_bc=16,
// l_p=2020, l_h=4).
func HighUpdate() Params {
	return Params{
		B: 300, S: 5000, N: 10, P: 6, T: 5e6,
		PagesPerTx: 10, UpdateFraction: 0.8, UpdateProb: 0.9, AbortProb: 0.01,
		UpdateStatements: 3, RecordLen: 100, ShortEntryLen: 10,
		BOTLen: 16, LogPageLen: 2020, ChainHeaderLen: 4,
	}
}

// HighRetrieval returns the paper's high retrieval frequency environment
// (s=40, f_u=0.1, p_u=0.3; record logging d=8).
func HighRetrieval() Params {
	p := HighUpdate()
	p.PagesPerTx = 40
	p.UpdateFraction = 0.1
	p.UpdateProb = 0.3
	p.UpdateStatements = 8
	return p
}

// WithCommunality returns a copy with C set.
func (p Params) WithCommunality(c float64) Params {
	p.Communality = c
	return p
}

// LoggingProbability is Equation 5 (verbatim): the probability that one
// of K uncommitted modified pages, randomly spread over a database of S
// pages in groups of N, must be UNDO-logged when written back — because
// only one page per parity group may rely on twin-parity undo:
//
//	E[X] = (S/N)·(1 − (1 − N/S)^K)
//	p_l  = 1 − E[X]/K
func LoggingProbability(S, N int, K float64) float64 {
	if K <= 0 {
		return 0
	}
	groups := float64(S) / float64(N)
	ex := groups * (1 - math.Pow(1-float64(N)/float64(S), K))
	pl := 1 - ex/K
	if pl < 0 {
		return 0
	}
	if pl > 1 {
		return 1
	}
	return pl
}

// ModifiedProbability is p_m (Section 5.2.2, verbatim): the probability
// that a page being replaced from the buffer is modified, given that a
// page's buffer residence sees a geometric number of re-references with
// parameter C:
//
//	p_m = 1 − (1 − f_u·p_u)^{1/(1−C)}
func ModifiedProbability(fu, pu, c float64) float64 {
	if c >= 1 {
		return 1
	}
	return 1 - math.Pow(1-fu*pu, 1/(1-c))
}

// StealProbability is p_s (Section 5.2.2, verbatim): the probability
// that a given modified page is stolen from the buffer before EOT, under
// pressure from the other P−1 transactions' (1−C)·s replacement-causing
// references:
//
//	p_s = 1 − (1 − 1/(B − C·s))^{(1−C)·s·(P−1)}
func StealProbability(B int, c, s float64, P int) float64 {
	denom := float64(B) - c*s
	if denom <= 1 {
		return 1
	}
	return 1 - math.Pow(1-1/denom, (1-c)*s*float64(P-1))
}

// SharedUpdatedPages is s_u (Appendix): the expected number of distinct
// pages in the buffer updated by a set of `concurrent` update
// transactions, each modifying s·p_u pages, with sharing driven by the
// communality C.  It is the exact solution of the appendix recurrence
// S(k) − S(k−1) = s·p_u·(1 − C·S(k−1)/B), S(0)=0:
//
//	s_u = (B/C)·(1 − (1 − C·s·p_u/B)^{concurrent})
//
// which degenerates to concurrent·s·p_u as C→0 (no sharing) and is
// capped at the buffer size.
func SharedUpdatedPages(B int, c, s, pu float64, concurrent float64) float64 {
	a := s * pu
	if c <= 0 {
		return math.Min(a*concurrent, float64(B))
	}
	su := (float64(B) / c) * (1 - math.Pow(1-c*a/float64(B), concurrent))
	return math.Min(su, float64(B))
}

// AvgLogEntryLen is L (Section 5.3, verbatim): the average log entry
// length when each of the d update statements writes one long entry and
// the other s−d statements write short ones:
//
//	L = (d·r + (s−d)·e)/s
func AvgLogEntryLen(p Params) float64 {
	s := p.PagesPerTx
	return (p.UpdateStatements*p.RecordLen + (s-p.UpdateStatements)*p.ShortEntryLen) / s
}

// Result carries a model evaluation.
type Result struct {
	// Throughput is r_t: transactions per availability interval.
	Throughput float64
	// Cost components, in page transfers.
	CT float64 // expected cost per transaction
	CR float64 // retrieval transaction cost
	CU float64 // update transaction cost
	CL float64 // logging cost per update transaction
	CB float64 // rollback cost
	CC float64 // checkpoint cost (¬FORCE only)
	CS float64 // crash recovery cost
	// Derived probabilities.
	Pl float64 // logging probability (Eq 5); 0 without RDA
	Pm float64 // probability a replaced page is modified
	Ps float64 // probability a modified page is stolen before EOT
	// Interval is the optimal checkpointing interval in page transfers
	// (¬FORCE only).
	Interval float64
}

// throughputTOC is r_t for FORCE/TOC: no checkpoints (c_c = 0).
func throughputTOC(p Params, ct, cs float64) float64 {
	return (p.T - cs) / ct
}

// OptimalInterval is the closed-form solution of the paper's Equation 1
// for the ¬FORCE/ACC algorithms, where the crash recovery cost is linear
// in the interval, c_s(I) = α·I + β with α = f_u·(c_l/4 + 4·s·p_u)/(2·c_t)
// (the r_c/2 redo term) and β the interval-independent part:
//
//	d r_t/dI = 0  ⇒  I* = sqrt( c_c·(T − β) / α )
//
// The evaluators use the numeric optimum (exact for any c_s shape);
// TestOptimalIntervalClosedForm confirms the two agree.
func OptimalInterval(p Params, ct, cc, cl, beta float64) float64 {
	alpha := p.UpdateFraction * (cl/4 + 4*p.PagesPerTx*p.UpdateProb) / (2 * ct)
	if alpha <= 0 || p.T <= beta {
		return p.T
	}
	return math.Sqrt(cc * (p.T - beta) / alpha)
}

// throughputACC maximizes r_t over the checkpoint interval I
// numerically (the paper derives the optimum from Equation 1; the
// numeric optimum is used here because it is exact for any c_s(I)
// shape).  csOf maps the interval to the crash recovery cost through
// r_c = I/c_t.
func throughputACC(p Params, ct, cc float64, csOf func(rc float64) float64) (rt, bestI, cs float64) {
	eval := func(i float64) (float64, float64) {
		c := csOf(i / ct)
		r := (p.T - c - cc*(p.T-c-i/2)/i) / ct
		return r, c
	}
	// Golden-section search on a log-spaced bracket.
	lo, hi := 10.0, p.T
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, _ := eval(x1)
	f2, _ := eval(x2)
	for i := 0; i < 200 && b-a > 1; i++ {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2, _ = eval(x2)
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1, _ = eval(x1)
		}
	}
	bestI = (a + b) / 2
	rt, cs = eval(bestI)
	return rt, bestI, cs
}

// --- Section 5.2.1: page logging, ¬ATOMIC, STEAL, FORCE, TOC --------------

// PageForceTOC evaluates the page logging FORCE/TOC algorithm
// (Section 5.2.1), with or without RDA recovery.
//
// Without RDA (reconstructed; validated against Figure 9's printed
// values):
//
//	c_l = 3·s·p_u + 4·(2·s·p_u) + 4·4
//
// (write modified pages back at a=3; before- and after-images to the
// UNDO and REDO logs at 4 per page; BOT and EOT to each log file).
//
// With RDA (verbatim):
//
//	c_l′ = (3 + 2p_l)·s·p_u + 4·(s·p_u + s·p_u·p_l + 4) + 4·(p_l − p_l^{s·p_u})
//
// with K = P·f_u·s·p_u/2 in Equation 5.
func PageForceTOC(p Params, rda bool) Result {
	s, fu, pu, pb := p.PagesPerTx, p.UpdateFraction, p.UpdateProb, p.AbortProb
	c := p.Communality
	Pfu := float64(p.P) * fu
	var res Result

	cr := s * (1 - c) // p_m = 0: all write-back cost is in c_l

	var cl, cb, cs float64
	if !rda {
		cl = 3*s*pu + 4*(2*s*pu) + 16
		// c_b (reconstructed from the verbal term list): read the log
		// back to the BOT — the concurrent update transactions are
		// halfway done — then write the before-images back and log the
		// rollback record.
		cb = (s*pu/2)*Pfu + Pfu + 4*(s*pu/2) + 4
		// c_s (reconstructed): redo/undo the P·f_u interrupted update
		// transactions: read their log records plus brackets, write back
		// half their pages.
		cs = Pfu*(s*pu+2) + 4*(Pfu*pu*s/2)
	} else {
		K := Pfu * s * pu / 2
		pl := LoggingProbability(p.S, p.N, K)
		res.Pl = pl
		chain := pl - math.Pow(pl, s*pu)
		cl = (3+2*pl)*s*pu + 4*(s*pu+s*pu*pl+4) + 4*chain
		// c_b′ (verbatim up to OCR noise): read the logged fraction of
		// the concurrent transactions' records and the chain headers,
		// then undo: 6 transfers for a logged page in a dirty group, 5
		// for a twin-parity recovery.
		cb = (pu*pl*s/2)*Pfu + chain*Pfu + Pfu + (pu*s/2)*(6*pl+5*(1-pl)) + 4
		// c_s′ (verbatim): as c_b′ over the interrupted transactions,
		// plus S/N transfers to rebuild the current-parity bitmap.
		cs = Pfu*(s*pu*pl+2*chain+2) + Pfu*(pu*s/2)*(4*pl+5*(1-pl)) + float64(p.S)/float64(p.N)
	}
	cu := s*(1-c) + cl + pb*cb
	ct := (1-fu)*cr + fu*cu

	res.CR, res.CU, res.CL, res.CB, res.CS, res.CT = cr, cu, cl, cb, cs, ct
	res.Throughput = throughputTOC(p, ct, cs)
	return res
}

// --- Section 5.2.2: page logging, ¬ATOMIC, STEAL, ¬FORCE, ACC -------------

// PageNoForceACC evaluates the page logging ¬FORCE/ACC algorithm
// (Section 5.2.2), with or without RDA recovery.
//
// Pages are not forced at EOT; before- and after-images go to the log
// (c_l = 4·(2·s·p_u + 2), verbatim) and replaced modified pages are
// written back at a=4 (the old version is no longer buffered).  The
// checkpoint writes every modified buffer page (c_c = 4·B·p_m + 4,
// reconstructed) and the optimal interval maximizes r_t.
//
// With RDA, a stolen page is logged only with probability p_s·p_l
// (verbatim: K = P·s·f_u·p_u·p_s/2), write-backs to dirty groups pay the
// extra two twin updates, and recovery adds the S/N bitmap scan.
func PageNoForceACC(p Params, rda bool) Result {
	s, fu, pu, pb := p.PagesPerTx, p.UpdateFraction, p.UpdateProb, p.AbortProb
	c := p.Communality
	Pfu := float64(p.P) * fu
	pm := ModifiedProbability(fu, pu, c)
	ps := StealProbability(p.B, c, s, p.P)
	var res Result
	res.Pm, res.Ps = pm, ps

	var pl, chain float64
	if rda {
		K := float64(p.P) * s * fu * pu * ps / 2
		pl = LoggingProbability(p.S, p.N, K)
		chain = pl - math.Pow(pl, s*pu)
		res.Pl = pl
	}

	// Write-back cost of a replaced modified page: a=4, plus 2·p_l twin
	// updates for dirty groups under RDA.
	aEff := 4.0
	if rda {
		aEff = 4 + 2*pl
	}
	cr := s*(1-c) + aEff*s*(1-c)*pm

	var cl, cb float64
	if !rda {
		cl = 4 * (2*s*pu + 2)
		// c_b (reconstructed): the log holds both before- and
		// after-images, all read back to the BOT; before-images of the
		// stolen fraction are written through to disk.
		cb = 2*(pu*s/2)*Pfu + Pfu + 4*pu*(s/2)*ps + 4
	} else {
		// A before-image is avoided only for a page that is stolen AND
		// whose group supports the twin-parity undo — probability
		// p_s·(1−p_l) — mirroring the record-logging equation's verbatim
		// factor L·(2 − p_s(1−p_l)) in Section 5.3.2.  Everything else
		// keeps Reuter's before+after logging.
		cl = 4*(s*pu*(2-ps*(1-pl))+2) + 4*chain
		// c_b′ (verbatim fragment): unstolen replaced pages are written
		// back at (4+2p_l); stolen pages cost 6 (logged, dirty group) or
		// 5 (twin-parity undo).
		cb = Pfu*(pu*ps*pl*s/2) + Pfu + pu*(s/2)*((4+2*pl)*(1-c)*(1-ps)+6*ps*pl+5*ps*(1-pl)) + 4
	}
	cu := s*(1-c) + aEff*s*(1-c)*pm + cl + pb*cb
	ct := (1-fu)*cr + fu*cu

	// Checkpoint cost: write back every modified buffer page.
	cc := aEff*float64(p.B)*pm + 4

	// Crash recovery cost: redo the r_c/2 transactions since the middle
	// of the last checkpoint interval (read their log records, write
	// their pages back) and undo the P·f_u interrupted ones; RDA adds
	// the S/N bitmap scan.
	bitmap := 0.0
	if rda {
		bitmap = float64(p.S) / float64(p.N)
	}
	csOf := func(rc float64) float64 {
		return (rc/2)*fu*(cl/4+4*s*pu) + Pfu*(cl/4+4*s*pu) + bitmap
	}
	rt, bestI, cs := throughputACC(p, ct, cc, csOf)

	res.CR, res.CU, res.CL, res.CB, res.CC, res.CS, res.CT = cr, cu, cl, cb, cc, cs, ct
	res.Interval = bestI
	res.Throughput = rt
	return res
}

// --- Section 5.3.1: record logging, FORCE, TOC ----------------------------

// RecordForceTOC evaluates the record logging FORCE/TOC algorithm
// (Section 5.3.1), with or without RDA recovery.  Log volume is measured
// in log pages of length l_p holding entries of average length L; record
// locking lets transactions share pages, so Equation 5's K becomes
// s_u/2 with s_u from the Appendix recurrence.  The cost equations are
// verbatim from the paper.
func RecordForceTOC(p Params, rda bool) Result {
	s, fu, pu, pb := p.PagesPerTx, p.UpdateFraction, p.UpdateProb, p.AbortProb
	c := p.Communality
	Pfu := float64(p.P) * fu
	L := AvgLogEntryLen(p)
	lbc, lp, lh := p.BOTLen, p.LogPageLen, p.ChainHeaderLen
	var res Result

	cr := s * (1 - c)

	var cl, cb, cs float64
	if !rda {
		cl = 3*s*pu + 4*2*(2*lbc+s*pu*(lbc+L))/lp
		cb = Pfu*(lbc+s*pu*(lbc+L)/2)/lp + 4*(pu*s/2) + 4
		cs = Pfu*(2*lbc+s*pu*(lbc+L))/lp + 4*Pfu*(pu*s/2)
	} else {
		su := SharedUpdatedPages(p.B, c, s, pu, Pfu)
		pl := LoggingProbability(p.S, p.N, su/2)
		res.Pl = pl
		chain := pl - math.Pow(pl, s*pu)
		cl = (3+2*pl)*s*pu + 4*(2*lbc+s*pu*(lbc+L))/lp +
			4*(2*lbc+s*pu*(lbc+L)*pl+(lbc+lh)*chain)/lp
		cb = Pfu*(lbc+s*pu*(lbc+L)*pl/2+(lbc+lh)*chain)/lp +
			(pu*s/2)*(6*pl+5*(1-pl)) + 4
		cs = Pfu*(2*lbc+s*pu*(lbc+L)*pl+2*(lbc+lh)*chain)/lp +
			(Pfu*pu*s/2)*(4*pl+5*(1-pl)) + float64(p.S)/float64(p.N)
	}
	cu := s*(1-c) + cl + pb*cb
	ct := (1-fu)*cr + fu*cu

	res.CR, res.CU, res.CL, res.CB, res.CS, res.CT = cr, cu, cl, cb, cs, ct
	res.Throughput = throughputTOC(p, ct, cs)
	return res
}

// --- Section 5.3.2: record logging, ¬FORCE, ACC ---------------------------

// RecordNoForceACC evaluates the record logging ¬FORCE/ACC algorithm
// (Section 5.3.2), with or without RDA recovery.  It combines the
// Section 5.2.2 structure with the record-granularity log volume of
// Section 5.3.1 (the paper derives it exactly that way).  The c_l, c_b,
// c_r and c_u equations are verbatim; K in Equation 5 is s_u·p_s/2, and
// the page-sharing surcharge p_i uses s_u computed over the other P−1
// transactions.
func RecordNoForceACC(p Params, rda bool) Result {
	s, fu, pu, pb := p.PagesPerTx, p.UpdateFraction, p.UpdateProb, p.AbortProb
	c := p.Communality
	Pfu := float64(p.P) * fu
	L := AvgLogEntryLen(p)
	lbc, lp, lh := p.BOTLen, p.LogPageLen, p.ChainHeaderLen
	pm := ModifiedProbability(fu, pu, c)
	ps := StealProbability(p.B, c, s, p.P)
	var res Result
	res.Pm, res.Ps = pm, ps

	// p_i: the proportion of replaced buffer pages modified by the other
	// concurrently executing transactions (verbatim: p_i = s_u/(B−C·s)
	// with s_u over P−1 transactions).
	suOthers := SharedUpdatedPages(p.B, c, s, pu, float64(p.P-1)*fu)
	pi := suOthers / (float64(p.B) - c*s)

	var pl, chain float64
	if rda {
		su := SharedUpdatedPages(p.B, c, s, pu, Pfu)
		pl = LoggingProbability(p.S, p.N, su*ps/2)
		chain = pl - math.Pow(pl, s*pu)
		res.Pl = pl
	}
	aEff := 4.0
	if rda {
		aEff = 4 + 2*pl
	}

	var cl, cb, cr, cu float64
	if !rda {
		cl = 4 * (2*lbc + s*pu*(lbc+2*L)) / lp
		cb = Pfu*(cl/8) + 4*pu*(s/2)*(1-c) + 4
		cr = s*(1-c) + 4*s*(1-c)*(pm+2*pi)
		cu = cr + cl + pb*cb
	} else {
		cl = 4 * (2*lbc + s*pu*(lbc+L*(2-ps*(1-pl))) + (lbc+lh)*chain) / lp
		cb = Pfu*(cl/8) + pu*(s/2)*((4+2*pl)*(1-c)*(1-ps)+6*ps*pl+5*ps*(1-pl)) + 4
		cr = s*(1-c) + aEff*s*(1-c)*(pm+2*pi*pl)
		cu = cr + cl + pb*cb
	}
	ct := (1-fu)*cr + fu*cu

	cc := aEff*float64(p.B)*pm + 4
	bitmap := 0.0
	if rda {
		bitmap = float64(p.S) / float64(p.N)
	}
	csOf := func(rc float64) float64 {
		return (rc/2)*fu*(cl/4+4*s*pu) + Pfu*(cl/4+4*s*pu) + bitmap
	}
	rt, bestI, cs := throughputACC(p, ct, cc, csOf)

	res.CR, res.CU, res.CL, res.CB, res.CC, res.CS, res.CT = cr, cu, cl, cb, cc, cs, ct
	res.Interval = bestI
	res.Throughput = rt
	return res
}

// Algorithm selects a model evaluator.
type Algorithm int

// The four algorithm families of Section 5.
const (
	AlgoPageForceTOC Algorithm = iota
	AlgoPageNoForceACC
	AlgoRecordForceTOC
	AlgoRecordNoForceACC
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoPageForceTOC:
		return "page-logging FORCE/TOC"
	case AlgoPageNoForceACC:
		return "page-logging NOFORCE/ACC"
	case AlgoRecordForceTOC:
		return "record-logging FORCE/TOC"
	case AlgoRecordNoForceACC:
		return "record-logging NOFORCE/ACC"
	default:
		return "unknown"
	}
}

// Evaluate runs the selected evaluator.
func Evaluate(a Algorithm, p Params, rda bool) Result {
	switch a {
	case AlgoPageForceTOC:
		return PageForceTOC(p, rda)
	case AlgoPageNoForceACC:
		return PageNoForceACC(p, rda)
	case AlgoRecordForceTOC:
		return RecordForceTOC(p, rda)
	case AlgoRecordNoForceACC:
		return RecordNoForceACC(p, rda)
	default:
		panic("model: unknown algorithm")
	}
}
