package buffer

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/page"
)

// fakeStore is a trivial page store for exercising the pool.
type fakeStore struct {
	pages      map[page.PageID]page.Buf
	fetches    int
	writeBacks []page.PageID
	failWrites bool
}

func newFakeStore(n, size int) *fakeStore {
	s := &fakeStore{pages: make(map[page.PageID]page.Buf)}
	for i := 0; i < n; i++ {
		b := page.NewBuf(size)
		b[0] = byte(i)
		s.pages[page.PageID(i)] = b
	}
	return s
}

func (s *fakeStore) fetch(p page.PageID) (page.Buf, error) {
	s.fetches++
	b, ok := s.pages[p]
	if !ok {
		return nil, fmt.Errorf("no page %d", p)
	}
	return b.Clone(), nil
}

func (s *fakeStore) writeBack(f *Frame) error {
	if s.failWrites {
		return errors.New("injected write failure")
	}
	s.pages[f.Page] = f.Data.Clone()
	s.writeBacks = append(s.writeBacks, f.Page)
	return nil
}

func newPool(s *fakeStore, capacity int) *Pool {
	return New(capacity, 64, s.fetch, s.writeBack)
}

func TestGetHitMiss(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	f, err := bp.Get(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Data[0] != 3 {
		t.Fatalf("wrong page contents")
	}
	bp.Unpin(3)
	if _, err := bp.Get(3, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(3)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if s.fetches != 1 {
		t.Fatalf("fetches = %d, want 1", s.fetches)
	}
}

func TestLRUEviction(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 3)
	for _, p := range []page.PageID{0, 1, 2} {
		if _, err := bp.Get(p, nil); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p)
	}
	// Touch 0 so 1 becomes LRU.
	if _, err := bp.Get(0, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(0)
	if _, err := bp.Get(3, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(3)
	if bp.Contains(1) {
		t.Fatalf("page 1 (LRU) should have been evicted")
	}
	for _, p := range []page.PageID{0, 2, 3} {
		if !bp.Contains(p) {
			t.Fatalf("page %d should be resident", p)
		}
	}
}

func TestStealWritesBackDirtyVictim(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 2)
	f, err := bp.Get(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[1] = 0xEE
	bp.MarkDirty(0, 7)
	bp.Unpin(0)
	if _, err := bp.Get(1, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(1)
	// Fill the pool: page 0 is LRU and dirty, so it must be stolen.
	if _, err := bp.Get(2, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(2)
	if len(s.writeBacks) != 1 || s.writeBacks[0] != 0 {
		t.Fatalf("writeBacks = %v, want [0]", s.writeBacks)
	}
	if s.pages[0][1] != 0xEE {
		t.Fatalf("stolen page not persisted")
	}
	if st := bp.Stats(); st.Steals != 1 {
		t.Fatalf("steals = %d, want 1", st.Steals)
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 2)
	if _, err := bp.Get(0, nil); err != nil { // stays pinned
		t.Fatal(err)
	}
	if _, err := bp.Get(1, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(1)
	if _, err := bp.Get(2, nil); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(2)
	if !bp.Contains(0) {
		t.Fatalf("pinned page 0 must not be evicted")
	}
	if bp.Contains(1) {
		t.Fatalf("unpinned page 1 should have been the victim")
	}
	// With every frame pinned, Get must fail rather than evict.
	if _, err := bp.Get(2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Get(3, nil); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
}

func TestDiskVersionTracking(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	f, err := bp.Get(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.DiskVersion == nil || f.DiskVersion[0] != 5 {
		t.Fatalf("disk version not captured on fetch")
	}
	f.Data[0] = 99
	bp.MarkDirty(5, 1)
	if f.DiskVersion[0] != 5 {
		t.Fatalf("disk version must keep the on-disk contents")
	}
	bp.Unpin(5)
	if err := bp.FlushPage(5); err != nil {
		t.Fatal(err)
	}
	if f.Dirty || f.DiskVersion[0] != 99 {
		t.Fatalf("flush must clean the frame and refresh the disk version")
	}
}

func TestKeepDiskVersionsOff(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	bp.KeepDiskVersions = false
	f, err := bp.Get(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.DiskVersion != nil {
		t.Fatalf("disk versions must not be kept when disabled")
	}
	bp.Unpin(1)
}

func TestRestoreDiskVersion(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	f, err := bp.Get(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 77
	bp.MarkDirty(2, 3)
	bp.Unpin(2)
	if !bp.RestoreDiskVersion(2) {
		t.Fatalf("RestoreDiskVersion should succeed")
	}
	f = bp.Frame(2)
	if f.Dirty || f.Data[0] != 2 {
		t.Fatalf("restore did not rewind the frame")
	}
	if bp.RestoreDiskVersion(42) {
		t.Fatalf("restore of non-resident page must report false")
	}
}

func TestFlushAllWithFilter(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 5)
	for _, p := range []page.PageID{0, 1, 2} {
		f, err := bp.Get(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		f.Data[2] = 0xAB
		bp.MarkDirty(p, page.TxID(p+1))
		bp.Unpin(p)
	}
	err := bp.FlushAll(func(f *Frame) bool {
		_, ok := f.Modifiers[2]
		return ok // only txn 2's page (page 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.writeBacks) != 1 || s.writeBacks[0] != 1 {
		t.Fatalf("writeBacks = %v, want [1]", s.writeBacks)
	}
	if err := bp.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.writeBacks) != 3 {
		t.Fatalf("writeBacks = %v, want all three pages", s.writeBacks)
	}
	if len(bp.DirtyPages()) != 0 {
		t.Fatalf("dirty pages remain after FlushAll")
	}
}

func TestDiscardAndDropAll(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	f, err := bp.Get(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 111
	bp.MarkDirty(0, 1)
	bp.Unpin(0)
	bp.Discard(0)
	if bp.Contains(0) {
		t.Fatalf("discarded page still resident")
	}
	if len(s.writeBacks) != 0 {
		t.Fatalf("discard must not write back")
	}
	for _, p := range []page.PageID{1, 2} {
		if _, err := bp.Get(p, nil); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p)
	}
	bp.DropAll()
	if bp.Len() != 0 {
		t.Fatalf("DropAll left %d resident pages", bp.Len())
	}
}

func TestWriteBackFailurePropagates(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 1)
	f, err := bp.Get(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 9
	bp.MarkDirty(0, 1)
	bp.Unpin(0)
	s.failWrites = true
	if _, err := bp.Get(1, nil); err == nil {
		t.Fatalf("steal failure must propagate from Get")
	}
	if err := bp.FlushPage(0); err == nil {
		t.Fatalf("flush failure must propagate")
	}
}

func TestResidentOrder(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	for _, p := range []page.PageID{4, 5, 6} {
		if _, err := bp.Get(p, nil); err != nil {
			t.Fatal(err)
		}
		bp.Unpin(p)
	}
	got := bp.Resident()
	want := []page.PageID{6, 5, 4} // MRU first
	if len(got) != len(want) {
		t.Fatalf("resident = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resident = %v, want %v", got, want)
		}
	}
}

func TestModifiersAccumulateAndClearOnWriteBack(t *testing.T) {
	s := newFakeStore(10, 64)
	bp := newPool(s, 4)
	if _, err := bp.Get(0, nil); err != nil {
		t.Fatal(err)
	}
	bp.MarkDirty(0, 1)
	bp.MarkDirty(0, 2)
	bp.Unpin(0)
	f := bp.Frame(0)
	if len(f.Modifiers) != 2 {
		t.Fatalf("modifiers = %v, want two", f.ModifierList())
	}
	if err := bp.FlushPage(0); err != nil {
		t.Fatal(err)
	}
	if len(f.Modifiers) != 0 {
		t.Fatalf("modifiers must clear after write back")
	}
}
