// Package buffer implements the database buffer manager.
//
// The paper's algorithms all assume a STEAL policy (Section 4: "A STEAL
// policy is used"): a page modified by an uncommitted transaction may be
// written back to the database when the replacement policy selects it.
// The pool therefore never refuses to evict a dirty frame — instead it
// hands the frame to a WriteBack callback supplied by the engine, and it
// is that callback which decides between classic UNDO logging and the
// paper's RDA no-logging write (Section 4.1).
//
// Each dirty frame optionally retains its *disk version*: a copy of the
// page as currently stored on the array.  Keeping it corresponds to the
// paper's a=3 small-write cost (the old data needed for the parity
// read-modify-write is already in memory); dropping it forces the steal
// path to re-read the old page from the array, the paper's a=4 case used
// in the ¬FORCE analysis (Section 5.2.2).
//
// The pool uses LRU replacement.  It is not internally synchronized; the
// engine serializes access (page-level consistency is the lock manager's
// job, and all cost accounting is deterministic under a single mutex).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"

	"repro/internal/page"
)

// Frame is one buffer slot.  Fields are exported for the engine's steal
// policy and for tests; outside packages must treat them as read-only
// except through the pool's methods.
type Frame struct {
	Page page.PageID
	// Data is the current (possibly uncommitted) page contents.
	Data page.Buf
	// DiskVersion is a copy of the page as it exists on the array, or nil
	// if unknown.  See the package comment for the a=3/a=4 connection.
	DiskVersion page.Buf
	// Dirty reports whether Data differs from the array contents.
	Dirty bool
	// Modifiers is the set of transactions that modified the frame since
	// it was last written back.  Under page locking it has at most one
	// member; under record locking several transactions may share a page
	// (the paper's s_u analysis, Appendix).
	Modifiers map[page.TxID]struct{}
	// Residue marks a frame that still carries committed-but-unflushed
	// changes (¬FORCE: a modifier committed while the frame was dirty).
	// A frame with residue must not take the RDA no-UNDO-logging steal
	// path, because the twin-parity undo would roll the whole page back
	// past the committed changes; the engine routes such steals through
	// classic logging instead.
	Residue bool

	pins int
	elem *list.Element
}

// Pinned reports whether the frame is currently pinned.
func (f *Frame) Pinned() bool { return f.pins > 0 }

// ModifierList returns the frame's modifiers in ascending id order.  The
// order is deterministic so that identically seeded runs issue identical
// I/O sequences (crash-point schedules replay by write index).
func (f *Frame) ModifierList() []page.TxID {
	out := make([]page.TxID, 0, len(f.Modifiers))
	for tx := range f.Modifiers {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteBack is the engine's steal policy: persist the frame to the array,
// performing whatever logging or parity work its recovery scheme
// requires.  On success the pool marks the frame clean and refreshes its
// DiskVersion.
type WriteBack func(f *Frame) error

// Fetch loads a page image from the array on a buffer miss.
type Fetch func(p page.PageID) (page.Buf, error)

// Stats counts buffer activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64 // frames evicted (clean or dirty)
	Steals    int64 // dirty frames written back by replacement
}

// Errors returned by the pool.
var (
	ErrNoFrames = errors.New("buffer: all frames pinned")
	ErrNotHeld  = errors.New("buffer: page not resident")
)

// Pool is the buffer pool.
type Pool struct {
	capacity int
	pageSize int
	// KeepDiskVersions controls whether clean fetches retain a disk
	// version copy alongside Data (see package comment).
	KeepDiskVersions bool

	frames map[page.PageID]*Frame
	lru    *list.List // front = most recently used; values are *Frame

	writeBack WriteBack
	fetch     Fetch
	stats     Stats
}

// New creates a pool of `capacity` frames (the paper's B) over pages of
// the given size.
func New(capacity, pageSize int, fetch Fetch, writeBack WriteBack) *Pool {
	if capacity < 1 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		capacity:         capacity,
		pageSize:         pageSize,
		KeepDiskVersions: true,
		frames:           make(map[page.PageID]*Frame, capacity),
		lru:              list.New(),
		fetch:            fetch,
		writeBack:        writeBack,
	}
}

// Capacity returns B, the number of frames.
func (bp *Pool) Capacity() int { return bp.capacity }

// Len returns the number of resident pages.
func (bp *Pool) Len() int { return len(bp.frames) }

// Stats returns a snapshot of the activity counters.
func (bp *Pool) Stats() Stats { return bp.stats }

// ResetStats zeroes the activity counters.
func (bp *Pool) ResetStats() { bp.stats = Stats{} }

// Contains reports whether page p is resident.
func (bp *Pool) Contains(p page.PageID) bool {
	_, ok := bp.frames[p]
	return ok
}

// Frame returns the resident frame for p, or nil.
func (bp *Pool) Frame(p page.PageID) *Frame { return bp.frames[p] }

// Resident returns the resident page ids in LRU order (most recent
// first).  The workload generator uses it to realize the paper's
// communality parameter C by re-referencing buffer-resident pages.
func (bp *Pool) Resident() []page.PageID {
	out := make([]page.PageID, 0, len(bp.frames))
	for e := bp.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Frame).Page)
	}
	return out
}

// DirtyPages returns the ids of all dirty resident pages in ascending
// order, so checkpoint and EOT flush sequences are deterministic (a
// requirement for replayable crash-point schedules).
func (bp *Pool) DirtyPages() []page.PageID {
	var out []page.PageID
	for p, f := range bp.frames {
		if f.Dirty {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get pins page p, fetching it on a miss (evicting the LRU unpinned frame
// if the pool is full).  Callers must Unpin when done.
func (bp *Pool) Get(p page.PageID) (*Frame, error) {
	if f, ok := bp.frames[p]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(f.elem)
		f.pins++
		return f, nil
	}
	bp.stats.Misses++
	if err := bp.makeRoom(); err != nil {
		return nil, err
	}
	data, err := bp.fetch(p)
	if err != nil {
		return nil, fmt.Errorf("buffer: fetch page %d: %w", p, err)
	}
	f := &Frame{
		Page:      p,
		Data:      data,
		Modifiers: make(map[page.TxID]struct{}),
		pins:      1,
	}
	if bp.KeepDiskVersions {
		f.DiskVersion = data.Clone()
	}
	f.elem = bp.lru.PushFront(f)
	bp.frames[p] = f
	return f, nil
}

// Unpin releases one pin on page p.
func (bp *Pool) Unpin(p page.PageID) {
	f, ok := bp.frames[p]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("buffer: unpin of page %d not pinned", p))
	}
	f.pins--
}

// MarkDirty records that tx modified the (pinned) frame of page p.  The
// first modification snapshots the disk version if the pool keeps them
// and none is held yet.
func (bp *Pool) MarkDirty(p page.PageID, tx page.TxID) {
	f, ok := bp.frames[p]
	if !ok {
		panic(fmt.Sprintf("buffer: MarkDirty of non-resident page %d", p))
	}
	f.Dirty = true
	f.Modifiers[tx] = struct{}{}
}

// makeRoom evicts the least recently used unpinned frame if the pool is
// full, stealing it (via WriteBack) when dirty.
func (bp *Pool) makeRoom() error {
	if len(bp.frames) < bp.capacity {
		return nil
	}
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.Pinned() {
			continue
		}
		if f.Dirty {
			bp.stats.Steals++
			if err := bp.writeBack(f); err != nil {
				return fmt.Errorf("buffer: steal page %d: %w", f.Page, err)
			}
			bp.markClean(f)
		}
		bp.remove(f)
		bp.stats.Evictions++
		return nil
	}
	return ErrNoFrames
}

// markClean resets the frame's dirty bookkeeping after a successful write
// back and refreshes the disk version.
func (bp *Pool) markClean(f *Frame) {
	f.Dirty = false
	f.Residue = false
	f.Modifiers = make(map[page.TxID]struct{})
	if bp.KeepDiskVersions {
		f.DiskVersion = f.Data.Clone()
	} else {
		f.DiskVersion = nil
	}
}

func (bp *Pool) remove(f *Frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.Page)
}

// FlushPage writes page p back if resident and dirty, leaving it resident
// and clean.  Used by FORCE at EOT and by checkpointing.
func (bp *Pool) FlushPage(p page.PageID) error {
	f, ok := bp.frames[p]
	if !ok {
		return nil
	}
	if !f.Dirty {
		return nil
	}
	if err := bp.writeBack(f); err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", p, err)
	}
	bp.markClean(f)
	return nil
}

// FlushAll writes back every dirty frame accepted by filter (nil = all).
func (bp *Pool) FlushAll(filter func(*Frame) bool) error {
	for _, p := range bp.DirtyPages() {
		f := bp.frames[p]
		if f == nil || !f.Dirty {
			continue
		}
		if filter != nil && !filter(f) {
			continue
		}
		if err := bp.FlushPage(p); err != nil {
			return err
		}
	}
	return nil
}

// Discard drops page p from the pool without writing it back.  Used when
// an abort invalidates a never-stolen modified page.
func (bp *Pool) Discard(p page.PageID) {
	if f, ok := bp.frames[p]; ok {
		bp.remove(f)
	}
}

// RestoreDiskVersion rewinds the frame of page p to its disk version and
// marks it clean.  It returns true if the frame was resident and had a
// disk version to restore.  Used by abort for modified-but-never-stolen
// pages when the disk version is retained.
func (bp *Pool) RestoreDiskVersion(p page.PageID) bool {
	f, ok := bp.frames[p]
	if !ok || f.DiskVersion == nil {
		return false
	}
	f.Data = f.DiskVersion.Clone()
	f.Dirty = false
	f.Residue = false
	f.Modifiers = make(map[page.TxID]struct{})
	return true
}

// DropAll empties the pool without writing anything — the buffer is
// volatile and this is what a system crash does to it.
func (bp *Pool) DropAll() {
	bp.frames = make(map[page.PageID]*Frame, bp.capacity)
	bp.lru.Init()
}

// DropDiskVersions forgets every frame's disk version (entering the
// paper's a=4 regime, e.g. at EOT under ¬FORCE).
func (bp *Pool) DropDiskVersions(pages []page.PageID) {
	for _, p := range pages {
		if f, ok := bp.frames[p]; ok && !f.Dirty {
			f.DiskVersion = nil
		}
	}
}
