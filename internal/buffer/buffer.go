// Package buffer implements the database buffer manager.
//
// The paper's algorithms all assume a STEAL policy (Section 4: "A STEAL
// policy is used"): a page modified by an uncommitted transaction may be
// written back to the database when the replacement policy selects it.
// The pool therefore never refuses to evict a dirty frame — instead it
// hands the frame to a WriteBack callback supplied by the engine, and it
// is that callback which decides between classic UNDO logging and the
// paper's RDA no-logging write (Section 4.1).
//
// Each dirty frame optionally retains its *disk version*: a copy of the
// page as currently stored on the array.  Keeping it corresponds to the
// paper's a=3 small-write cost (the old data needed for the parity
// read-modify-write is already in memory); dropping it forces the steal
// path to re-read the old page from the array, the paper's a=4 case used
// in the ¬FORCE analysis (Section 5.2.2).
//
// The pool uses a single LRU list and is internally synchronized: an
// internal mutex guards the frame map, the LRU list, pin counts and the
// stats, so concurrent operations on disjoint parity groups share the
// pool safely.  Frame *contents* (Data, DiskVersion, Dirty, Modifiers,
// Residue) are not guarded here — the engine serializes them with its
// per-group latches (a frame's group latch is held whenever its content
// or steal bookkeeping is read or written).  Eviction bridges the two
// worlds: a victim frame may belong to a group whose latch the evicting
// operation does not hold, so Get threads an EvictGuard through which the
// engine try-acquires the victim's group latch; an unguardable victim is
// skipped, and if every candidate is merely guard-blocked (never the case
// single-threaded) Get yields and retries rather than failing.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/page"
)

// Frame is one buffer slot.  Fields are exported for the engine's steal
// policy and for tests; outside packages must treat them as read-only
// except through the pool's methods, and must hold the frame's group
// latch (or otherwise exclude concurrency) when touching the content
// fields.
type Frame struct {
	Page page.PageID
	// Data is the current (possibly uncommitted) page contents.
	Data page.Buf
	// DiskVersion is a copy of the page as it exists on the array, or nil
	// if unknown.  See the package comment for the a=3/a=4 connection.
	DiskVersion page.Buf
	// Dirty reports whether Data differs from the array contents.
	Dirty bool
	// Modifiers is the set of transactions that modified the frame since
	// it was last written back.  Under page locking it has at most one
	// member; under record locking several transactions may share a page
	// (the paper's s_u analysis, Appendix).
	Modifiers map[page.TxID]struct{}
	// Residue marks a frame that still carries committed-but-unflushed
	// changes (¬FORCE: a modifier committed while the frame was dirty).
	// A frame with residue must not take the RDA no-UNDO-logging steal
	// path, because the twin-parity undo would roll the whole page back
	// past the committed changes; the engine routes such steals through
	// classic logging instead.
	Residue bool

	pins int // guarded by the pool mutex
	elem *list.Element
}

// Pinned reports whether the frame is currently pinned.  Snapshot only;
// meaningful to concurrent callers only while they hold the pool's
// internal invariants another way (tests, single-threaded use).
func (f *Frame) Pinned() bool { return f.pins > 0 }

// ModifierList returns the frame's modifiers in ascending id order.  The
// order is deterministic so that identically seeded runs issue identical
// I/O sequences (crash-point schedules replay by write index).
func (f *Frame) ModifierList() []page.TxID {
	out := make([]page.TxID, 0, len(f.Modifiers))
	for tx := range f.Modifiers {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteBack is the engine's steal policy: persist the frame to the array,
// performing whatever logging or parity work its recovery scheme
// requires.  On success the pool marks the frame clean and refreshes its
// DiskVersion.  The callback must not call back into the pool (it may run
// with the pool's internal mutex held).
type WriteBack func(f *Frame) error

// Fetch loads a page image from the array on a buffer miss.
type Fetch func(p page.PageID) (page.Buf, error)

// EvictGuard lets the engine interpose its per-group latches on eviction:
// called with a prospective victim's page id, it either returns a release
// function and true (the victim's group is latched — or was already held
// by the calling operation — and the eviction may proceed), or false (the
// latch is contended; the pool skips this victim).  It must never block.
// A nil guard admits every victim, which is only safe when the caller
// excludes concurrency (stop-the-world sections, tests).
type EvictGuard func(p page.PageID) (release func(), ok bool)

// Stats counts buffer activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64 // frames evicted (clean or dirty)
	Steals    int64 // dirty frames written back by replacement
}

// Errors returned by the pool.
var (
	ErrNoFrames = errors.New("buffer: all frames pinned")
	ErrNotHeld  = errors.New("buffer: page not resident")
)

// Pool is the buffer pool.
type Pool struct {
	capacity int
	pageSize int
	// KeepDiskVersions controls whether clean fetches retain a disk
	// version copy alongside Data (see package comment).  Set once at
	// construction time, before the pool is shared.
	KeepDiskVersions bool

	// mu guards frames, lru, pin counts and stats.  It is held across
	// miss fetches and eviction write-backs (both leaf disk work), but
	// never across the FlushPage write-back, so concurrent commits
	// force-flushing disjoint groups overlap their I/O.
	mu     sync.Mutex
	frames map[page.PageID]*Frame
	lru    *list.List // front = most recently used; values are *Frame
	stats  Stats

	writeBack WriteBack
	fetch     Fetch
}

// New creates a pool of `capacity` frames (the paper's B) over pages of
// the given size.
func New(capacity, pageSize int, fetch Fetch, writeBack WriteBack) *Pool {
	if capacity < 1 {
		panic("buffer: capacity must be positive")
	}
	return &Pool{
		capacity:         capacity,
		pageSize:         pageSize,
		KeepDiskVersions: true,
		frames:           make(map[page.PageID]*Frame, capacity),
		lru:              list.New(),
		fetch:            fetch,
		writeBack:        writeBack,
	}
}

// Capacity returns B, the number of frames.
func (bp *Pool) Capacity() int { return bp.capacity }

// Len returns the number of resident pages.
func (bp *Pool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}

// Stats returns a snapshot of the activity counters.
func (bp *Pool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the activity counters.
func (bp *Pool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// Contains reports whether page p is resident.
func (bp *Pool) Contains(p page.PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	_, ok := bp.frames[p]
	return ok
}

// Frame returns the resident frame for p, or nil.  The caller must hold
// p's group latch (or exclude concurrency) while using the frame, which
// also keeps it from being evicted under the caller's feet — eviction
// try-acquires the same latch.
func (bp *Pool) Frame(p page.PageID) *Frame {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.frames[p]
}

// Resident returns the resident page ids in LRU order (most recent
// first).  The workload generator uses it to realize the paper's
// communality parameter C by re-referencing buffer-resident pages.
func (bp *Pool) Resident() []page.PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]page.PageID, 0, len(bp.frames))
	for e := bp.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*Frame).Page)
	}
	return out
}

// DirtyPages returns the ids of all dirty resident pages in ascending
// order, so checkpoint and EOT flush sequences are deterministic (a
// requirement for replayable crash-point schedules).
func (bp *Pool) DirtyPages() []page.PageID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	var out []page.PageID
	for p, f := range bp.frames {
		if f.Dirty {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get pins page p, fetching it on a miss (evicting the LRU unpinned frame
// admitted by guard if the pool is full).  Callers must Unpin when done.
// When every eviction candidate is blocked by the guard, Get yields and
// retries — the latch holders blocking it cannot in turn be waiting on
// this Get, so progress is guaranteed.
func (bp *Pool) Get(p page.PageID, guard EvictGuard) (*Frame, error) {
	// The mutex is released by defer, never explicitly: the write-back
	// and fetch callbacks below can panic (fault-injection crash points
	// fire inside disk I/O), and the crash harness then needs to take the
	// mutex again to drop the pool.
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for {
		if f, ok := bp.frames[p]; ok {
			bp.stats.Hits++
			bp.lru.MoveToFront(f.elem)
			f.pins++
			return f, nil
		}
		if len(bp.frames) < bp.capacity {
			break
		}
		blocked, err := bp.evictOne(guard)
		if err != nil {
			return nil, err
		}
		if blocked {
			bp.mu.Unlock()
			runtime.Gosched()
			bp.mu.Lock()
		}
	}
	bp.stats.Misses++
	data, err := bp.fetch(p)
	if err != nil {
		return nil, fmt.Errorf("buffer: fetch page %d: %w", p, err)
	}
	f := &Frame{
		Page:      p,
		Data:      data,
		Modifiers: make(map[page.TxID]struct{}),
		pins:      1,
	}
	if bp.KeepDiskVersions {
		f.DiskVersion = data.Clone()
	}
	f.elem = bp.lru.PushFront(f)
	bp.frames[p] = f
	return f, nil
}

// evictOne (pool mutex held) evicts the least recently used unpinned
// frame the guard admits, stealing it (via WriteBack) when dirty.  It
// returns blocked=true when at least one candidate was refused by the
// guard and none could be evicted — the caller should yield and retry.
// ErrNoFrames means every frame is pinned regardless of the guard.
func (bp *Pool) evictOne(guard EvictGuard) (blocked bool, err error) {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		release := func() {}
		if guard != nil {
			rel, ok := guard(f.Page)
			if !ok {
				blocked = true
				continue
			}
			release = rel
		}
		if f.Dirty {
			bp.stats.Steals++
			if err := bp.writeBack(f); err != nil {
				release()
				return false, fmt.Errorf("buffer: steal page %d: %w", f.Page, err)
			}
			bp.markClean(f)
		}
		bp.remove(f)
		bp.stats.Evictions++
		release()
		return false, nil
	}
	if blocked {
		return true, nil
	}
	return false, ErrNoFrames
}

// Unpin releases one pin on page p.
func (bp *Pool) Unpin(p page.PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[p]
	if !ok || f.pins == 0 {
		panic(fmt.Sprintf("buffer: unpin of page %d not pinned", p))
	}
	f.pins--
}

// MarkDirty records that tx modified the (pinned) frame of page p.
func (bp *Pool) MarkDirty(p page.PageID, tx page.TxID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[p]
	if !ok {
		panic(fmt.Sprintf("buffer: MarkDirty of non-resident page %d", p))
	}
	f.Dirty = true
	f.Modifiers[tx] = struct{}{}
}

// markClean resets the frame's dirty bookkeeping after a successful write
// back and refreshes the disk version.
func (bp *Pool) markClean(f *Frame) {
	f.Dirty = false
	f.Residue = false
	f.Modifiers = make(map[page.TxID]struct{})
	if bp.KeepDiskVersions {
		f.DiskVersion = f.Data.Clone()
	} else {
		f.DiskVersion = nil
	}
}

func (bp *Pool) remove(f *Frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.Page)
}

// FlushPage writes page p back if resident and dirty, leaving it resident
// and clean.  Used by FORCE at EOT and by checkpointing.  The write-back
// runs outside the pool mutex — the frame is pinned for its duration and
// the caller's group latch (or stop-the-world exclusivity) keeps its
// content stable — so concurrent commits flushing disjoint groups
// overlap their disk work.
func (bp *Pool) FlushPage(p page.PageID) error {
	bp.mu.Lock()
	f, ok := bp.frames[p]
	if !ok || !f.Dirty {
		bp.mu.Unlock()
		return nil
	}
	f.pins++
	bp.mu.Unlock()
	err := bp.writeBack(f)
	bp.mu.Lock()
	f.pins--
	if err == nil {
		bp.markClean(f)
	}
	bp.mu.Unlock()
	if err != nil {
		return fmt.Errorf("buffer: flush page %d: %w", p, err)
	}
	return nil
}

// FlushTogether writes a set of pages back as one combined unit,
// bypassing the per-frame WriteBack callback: the caller's write
// function receives every frame's contents (aligned with ps) and issues
// whatever disk protocol covers them jointly — the engine's full-stripe
// write uses this to fold a group's page flushes into a single parity
// update.  Like FlushPage, the write runs outside the pool mutex with
// every frame pinned; the caller must hold the pages' group latch so the
// contents stay stable.
//
// The combined write only makes sense when the caller can see all the
// data: if any page is not resident or not dirty, FlushTogether does
// nothing and returns false so the caller falls back to per-page
// flushing.  On success every frame is marked clean.
func (bp *Pool) FlushTogether(ps []page.PageID, write func(datas []page.Buf) error) (bool, error) {
	bp.mu.Lock()
	frames := make([]*Frame, len(ps))
	for i, p := range ps {
		f, ok := bp.frames[p]
		if !ok || !f.Dirty {
			bp.mu.Unlock()
			return false, nil
		}
		frames[i] = f
	}
	datas := make([]page.Buf, len(frames))
	for i, f := range frames {
		f.pins++
		datas[i] = f.Data
	}
	bp.mu.Unlock()
	err := write(datas)
	bp.mu.Lock()
	for _, f := range frames {
		f.pins--
		if err == nil {
			bp.markClean(f)
		}
	}
	bp.mu.Unlock()
	if err != nil {
		return true, fmt.Errorf("buffer: flush pages %v: %w", ps, err)
	}
	return true, nil
}

// FlushAll writes back every dirty frame accepted by filter (nil = all).
func (bp *Pool) FlushAll(filter func(*Frame) bool) error {
	for _, p := range bp.DirtyPages() {
		if filter != nil {
			f := bp.Frame(p)
			if f == nil || !f.Dirty {
				continue
			}
			if !filter(f) {
				continue
			}
		}
		if err := bp.FlushPage(p); err != nil {
			return err
		}
	}
	return nil
}

// Discard drops page p from the pool without writing it back.  Used when
// an abort invalidates a never-stolen modified page.
func (bp *Pool) Discard(p page.PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[p]; ok {
		bp.remove(f)
	}
}

// DiscardClean drops page p from the pool only if its frame is clean and
// unpinned.  The scrubber uses it after rewriting a block on the platter:
// a clean frame may predate the repair and must be refetched, while a
// dirty frame holds newer contents that will overwrite the platter on
// steal anyway, and a pinned frame is in active use under a group latch
// that excludes the scrubber in the first place.  Returns true if the
// frame was dropped.
func (bp *Pool) DiscardClean(p page.PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if f, ok := bp.frames[p]; ok && !f.Dirty && f.pins == 0 {
		bp.remove(f)
		return true
	}
	return false
}

// RestoreDiskVersion rewinds the frame of page p to its disk version and
// marks it clean.  It returns true if the frame was resident and had a
// disk version to restore.  Used by abort for modified-but-never-stolen
// pages when the disk version is retained.
func (bp *Pool) RestoreDiskVersion(p page.PageID) bool {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	f, ok := bp.frames[p]
	if !ok || f.DiskVersion == nil {
		return false
	}
	f.Data = f.DiskVersion.Clone()
	f.Dirty = false
	f.Residue = false
	f.Modifiers = make(map[page.TxID]struct{})
	return true
}

// DropAll empties the pool without writing anything — the buffer is
// volatile and this is what a system crash does to it.
func (bp *Pool) DropAll() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.frames = make(map[page.PageID]*Frame, bp.capacity)
	bp.lru.Init()
}

// DropDiskVersions forgets every frame's disk version (entering the
// paper's a=4 regime, e.g. at EOT under ¬FORCE).
func (bp *Pool) DropDiskVersions(pages []page.PageID) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, p := range pages {
		if f, ok := bp.frames[p]; ok && !f.Dirty {
			f.DiskVersion = nil
		}
	}
}
