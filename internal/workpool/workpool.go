// Package workpool runs the engine's embarrassingly parallel disk loops
// — rebuild batches, recovery-time torn-repair and parity-resync scans,
// bulk-load stripe writes — across a bounded set of workers.
//
// The contract is shaped by the fault-injection plane:
//
//   - workers <= 1 runs the loop inline in index order, byte-identical to
//     the plain for-loop it replaces, so single-threaded crashcheck
//     schedules stay deterministic.
//   - a worker panic (a crash point firing inside disk I/O) is re-thrown
//     in the caller's goroutine after the other workers drain, so
//     fault.AsCrash sentinels keep propagating to the CrashHard harness
//     exactly as in the sequential loop.
//   - on error the pool stops handing out new indices; among the errors
//     observed, the one with the lowest index is returned, matching the
//     first-error semantics of the sequential loop as closely as an
//     unordered execution can.
package workpool

import "sync"

// Run executes fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines.  See the package comment for the sequential,
// panic and error contracts.
func Run(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		mu       sync.Mutex
		next     int
		firstErr error
		errIdx   int
		panicVal any
		panicked bool
		wg       sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for {
			mu.Lock()
			if panicked || firstErr != nil || next >= n {
				mu.Unlock()
				return
			}
			i := next
			next++
			mu.Unlock()
			func() {
				defer func() {
					if r := recover(); r != nil {
						mu.Lock()
						if !panicked {
							panicked, panicVal = true, r
						}
						mu.Unlock()
					}
				}()
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < errIdx {
						firstErr, errIdx = err, i
					}
					mu.Unlock()
				}
			}()
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go worker()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return firstErr
}
