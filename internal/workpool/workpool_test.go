package workpool

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestSequentialOrder(t *testing.T) {
	var got []int
	err := Run(1, 5, func(i int) error {
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential mode out of order: %v", got)
		}
	}
}

func TestSequentialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	err := Run(1, 10, func(i int) error {
		calls++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 4 {
		t.Fatalf("err=%v calls=%d, want boom after 4 calls", err, calls)
	}
}

func TestParallelRunsAll(t *testing.T) {
	var count atomic.Int64
	seen := make([]atomic.Bool, 100)
	if err := Run(8, 100, func(i int) error {
		count.Add(1)
		if seen[i].Swap(true) {
			t.Errorf("index %d ran twice", i)
		}
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count.Load() != 100 {
		t.Fatalf("ran %d of 100", count.Load())
	}
}

func TestParallelErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := Run(4, 10000, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if calls.Load() == 10000 {
		t.Fatalf("error did not cancel remaining work")
	}
}

func TestPanicPropagates(t *testing.T) {
	sentinel := "crash point"
	defer func() {
		if r := recover(); r != sentinel {
			t.Fatalf("recovered %v, want sentinel", r)
		}
	}()
	Run(4, 50, func(i int) error {
		if i == 7 {
			panic(sentinel)
		}
		return nil
	})
	t.Fatalf("panic swallowed")
}
