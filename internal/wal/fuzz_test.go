package wal

import (
	"bytes"
	"testing"

	"repro/internal/page"
)

// FuzzDecode throws arbitrary bytes at the record frame decoder: it must
// either fail cleanly or return a record that re-encodes into the same
// frame (no panics, no silent corruption).
func FuzzDecode(f *testing.F) {
	// Seed with real frames.
	seed := encode(nil, &Record{Type: TypeBOT, Txn: 7, Slot: NoSlot})
	f.Add(seed)
	seed2 := encode(nil, &Record{
		Type: TypeBeforeImage, Txn: 1, Page: 42, Slot: 3, Image: []byte{1, 2, 3},
	})
	f.Add(seed2)
	seed3 := encode(nil, &Record{Type: TypeCheckpoint, Slot: NoSlot, Active: []page.TxID{1, 2}})
	f.Add(seed3)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, next, err := decode(data, 0)
		if err != nil {
			return // clean rejection is fine
		}
		if next <= 0 || next > len(data) {
			t.Fatalf("decode returned bad next offset %d for %d bytes", next, len(data))
		}
		re := encode(nil, &r)
		if !bytes.Equal(re, data[:next]) {
			t.Fatalf("decode/encode not a round trip:\n in %x\nout %x", data[:next], re)
		}
	})
}
