package wal

import (
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

func TestUnforcedAppendChargesOnForceOnce(t *testing.T) {
	// Several unforced records packing into one log page must cost one
	// page write when forced together — that is the group-commit fold-in.
	l := New(Config{LogPageSize: 10000, WriteCost: 4})
	for i := 0; i < 5; i++ {
		l.AppendUnforced(Record{Type: TypeEOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	if got := l.Stats().Transfers; got != 0 {
		t.Fatalf("unforced appends charged %d transfers, want 0", got)
	}
	if got := l.ForcedLSN(); got != 0 {
		t.Fatalf("watermark = %d before any force, want 0", got)
	}
	charged := l.Force(5)
	if charged != 4 {
		t.Fatalf("folded force charged %d transfers, want 4 (one page)", charged)
	}
	if got := l.ForcedLSN(); got != 5 {
		t.Fatalf("watermark = %d after Force(5), want 5", got)
	}
	// Compare with the always-forced policy: same records, 5 separate
	// page writes.
	lf := New(Config{LogPageSize: 10000, WriteCost: 4})
	for i := 0; i < 5; i++ {
		lf.Append(Record{Type: TypeEOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	if got := lf.Stats().Transfers; got != 20 {
		t.Fatalf("forced appends charged %d, want 20", got)
	}
}

func TestForceIsIdempotentAndPartial(t *testing.T) {
	l := New(Config{LogPageSize: 100, WriteCost: 1})
	for i := 0; i < 6; i++ {
		l.AppendUnforced(Record{Type: TypeAfterImage, Txn: 1, Page: page.PageID(i), Slot: NoSlot, Image: make([]byte, 60)})
	}
	first := l.Force(3)
	if first <= 0 {
		t.Fatalf("partial force charged nothing")
	}
	if got := l.ForcedLSN(); got != 3 {
		t.Fatalf("watermark = %d, want 3", got)
	}
	if re := l.Force(3); re != 0 {
		t.Fatalf("re-forcing a covered LSN charged %d", re)
	}
	if re := l.Force(1); re != 0 {
		t.Fatalf("forcing below the watermark charged %d", re)
	}
	rest := l.Force(100) // clamps to the tail
	if rest <= 0 {
		t.Fatalf("forcing the remainder charged nothing")
	}
	if got := l.ForcedLSN(); got != 6 {
		t.Fatalf("watermark = %d, want tail 6", got)
	}
	// Splitting the force costs at most one extra page over forcing the
	// stream in one go: the partially filled boundary page is rewritten
	// when the second force covers the records appended into it.
	whole := New(Config{LogPageSize: 100, WriteCost: 1})
	for i := 0; i < 6; i++ {
		whole.AppendUnforced(Record{Type: TypeAfterImage, Txn: 1, Page: page.PageID(i), Slot: NoSlot, Image: make([]byte, 60)})
	}
	wholeCharge := whole.Force(6)
	if split := first + rest; split < wholeCharge || split > wholeCharge+1 {
		t.Fatalf("split forces charged %d+%d, one force charges %d", first, rest, wholeCharge)
	}
}

func TestForcedAppendDragsUnforcedPredecessors(t *testing.T) {
	// The log is sequential: forcing record N writes everything below it.
	l := New(DefaultConfig())
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 1, Slot: NoSlot})
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 2, Slot: NoSlot})
	lsn := l.Append(Record{Type: TypeBOT, Txn: 3, Slot: NoSlot})
	if got := l.ForcedLSN(); got != lsn {
		t.Fatalf("watermark = %d after forced append, want %d", got, lsn)
	}
	if dropped := l.DropUnforced(); dropped != 0 {
		t.Fatalf("DropUnforced dropped %d records covered by a forced append", dropped)
	}
}

func TestDropUnforcedLosesOnlyTheTail(t *testing.T) {
	l := New(DefaultConfig())
	for i := 1; i <= 4; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i), Slot: NoSlot})
	}
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 1, Slot: NoSlot}) // LSN 5
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 2, Slot: NoSlot}) // LSN 6
	if dropped := l.DropUnforced(); dropped != 2 {
		t.Fatalf("dropped %d records, want 2", dropped)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d after drop, want 4", l.Len())
	}
	if _, err := l.Read(5); err == nil {
		t.Fatalf("dropped record must be unreadable")
	}
	if r, err := l.Read(4); err != nil || r.Txn != 4 {
		t.Fatalf("forced record lost: %+v, %v", r, err)
	}
	// Appends resume at the watermark, reusing the dropped LSNs.
	if got := l.Append(Record{Type: TypeEOT, Txn: 9, Slot: NoSlot}); got != 5 {
		t.Fatalf("next LSN = %d after drop, want 5", got)
	}
}

func TestTruncateClampsWatermark(t *testing.T) {
	// Truncating past unforced records discards them for good;
	// DropUnforced must not resurrect or double-drop anything.
	l := New(DefaultConfig())
	l.Append(Record{Type: TypeBOT, Txn: 1, Slot: NoSlot})
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 1, Slot: NoSlot})
	l.AppendUnforced(Record{Type: TypeEOT, Txn: 2, Slot: NoSlot})
	l.Truncate(3) // keeps only LSN 3, which is unforced
	if dropped := l.DropUnforced(); dropped != 1 {
		t.Fatalf("dropped %d, want 1 (the surviving unforced record)", dropped)
	}
	if l.FirstLSN() != 3 {
		t.Fatalf("first LSN = %d, want 3", l.FirstLSN())
	}
	if dropped := l.DropUnforced(); dropped != 0 {
		t.Fatalf("second drop removed %d records", dropped)
	}
}

func TestForcerBatchesConcurrentForces(t *testing.T) {
	l := New(Config{LogPageSize: 10000, WriteCost: 4})
	f := NewForcer(l, 2*time.Millisecond)
	const n = 16
	lsns := make([]LSN, n)
	for i := range lsns {
		lsns[i] = l.AppendUnforced(Record{Type: TypeEOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Force(lsns[i])
			// Durability must hold at the moment Force returns.
			if got := l.ForcedLSN(); got < lsns[i] {
				t.Errorf("Force(%d) returned with watermark %d", lsns[i], got)
			}
		}(i)
	}
	wg.Wait()
	if f.Joins() != n {
		t.Fatalf("joins = %d, want %d", f.Joins(), n)
	}
	if b := f.Batches(); b < 1 || b > n {
		t.Fatalf("batches = %d, want within [1,%d]", b, n)
	}
	// All records shared one log page: however the cohorts formed, total
	// transfers stay a single page per physical force at most.
	if tr := l.Stats().Transfers; tr > f.Batches()*4 {
		t.Fatalf("transfers = %d exceed one page per batch (%d batches)", tr, f.Batches())
	}
}

func TestForcerZeroWindow(t *testing.T) {
	l := New(DefaultConfig())
	f := NewForcer(l, 0)
	lsn := l.AppendUnforced(Record{Type: TypeEOT, Txn: 1, Slot: NoSlot})
	f.Force(lsn)
	if got := l.ForcedLSN(); got != lsn {
		t.Fatalf("watermark = %d, want %d", got, lsn)
	}
}

func TestForceDelaySleepsOncePerForce(t *testing.T) {
	l := New(DefaultConfig())
	l.SetForceDelay(5 * time.Millisecond)
	for i := 0; i < 8; i++ {
		l.AppendUnforced(Record{Type: TypeEOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	start := time.Now()
	l.Force(8)
	if took := time.Since(start); took < 5*time.Millisecond {
		t.Fatalf("force returned in %v, want >= 5ms", took)
	}
	// Covered LSNs return without sleeping.
	start = time.Now()
	l.Force(8)
	if took := time.Since(start); took > 4*time.Millisecond {
		t.Fatalf("idempotent force slept (%v)", took)
	}
}
