// Package wal implements the write-ahead log used by every recovery
// scheme in the repository.
//
// The paper's algorithms log before-images for UNDO, after-images for
// REDO (in the ¬FORCE case), BOT/EOT/abort transaction brackets,
// checkpoint records, and — specific to RDA recovery — the *log chain
// head* record that anchors the TWIST-style chain of pages a transaction
// wrote back without UNDO logging (Section 4.3).  Record logging
// (Section 5.3) additionally logs record-granularity images addressed by
// (page, slot).
//
// The log models stable storage: its contents survive DB.Crash().  By
// default every append is forced, honouring the write-ahead rule at the
// granularity the engine needs (a before-image is appended, and therefore
// durable, before the corresponding page write reaches the array).  Group
// commit relaxes this for the records that do not carry undo material:
// AppendUnforced leaves a record in the volatile log tail, Force makes
// everything up to an LSN durable (charging the covered log pages once,
// however many records they hold — the fold-in that makes concurrent
// commits share one log write), and DropUnforced models a crash by
// discarding the unforced tail.  The Forcer batches concurrent Force
// calls within a configurable window.
//
// Cost accounting follows the paper's model, which charges every log
// write like a small write to the disk array (4 page transfers: read old
// data, read old parity, write data, write parity).  Appending a record
// charges WriteCost transfers for the forced tail page plus WriteCost for
// each additional log page the record spills into.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/page"
)

// Type identifies a log record type.
type Type uint8

// Log record types.
const (
	// TypeBOT brackets the start of a transaction.  The paper requires a
	// BOT record to be written before a transaction's first modified page
	// can be stolen (Section 4.3).
	TypeBOT Type = iota + 1
	// TypeEOT marks a successful commit.
	TypeEOT
	// TypeAbort marks a completed rollback.
	TypeAbort
	// TypeBeforeImage carries a page (Slot < 0) or record (Slot >= 0)
	// before-image for UNDO.
	TypeBeforeImage
	// TypeAfterImage carries a page or record after-image for REDO
	// (¬FORCE algorithms).
	TypeAfterImage
	// TypeChainHead anchors a transaction's log chain: Page is the most
	// recently stolen no-UNDO-logging page, from which recovery walks the
	// chain of header pointers backwards (Section 4.3).
	TypeChainHead
	// TypeCheckpoint records a checkpoint; Active lists the transactions
	// alive when it was taken.
	TypeCheckpoint
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBOT:
		return "BOT"
	case TypeEOT:
		return "EOT"
	case TypeAbort:
		return "ABORT"
	case TypeBeforeImage:
		return "BEFORE"
	case TypeAfterImage:
		return "AFTER"
	case TypeChainHead:
		return "CHAIN"
	case TypeCheckpoint:
		return "CKPT"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// LSN is a log sequence number: the 1-based index of a record in the log.
type LSN uint64

// NoSlot marks a page-granularity image.
const NoSlot int32 = -1

// Record is one log record.
type Record struct {
	LSN    LSN       // assigned by Append
	Type   Type      //
	Txn    page.TxID // owning transaction (0 for checkpoints)
	Page   page.PageID
	Slot   int32       // record slot for record-granularity images, NoSlot otherwise
	Image  []byte      // before/after image payload
	Active []page.TxID // checkpoint only: active transactions
}

// Stats reports the log's I/O cost in the paper's units.
type Stats struct {
	Records   int64 // records appended
	Bytes     int64 // payload bytes appended
	LogPages  int64 // distinct log pages the encoded stream occupies
	Transfers int64 // page transfers charged for writes (the model's cost unit)
	// ReadTransfers counts page transfers charged for recovery-time log
	// reads (ChargeScan); one transfer per log page read.
	ReadTransfers int64
}

// TotalTransfers returns write plus read transfers.
func (s Stats) TotalTransfers() int64 { return s.Transfers + s.ReadTransfers }

// Config parameterizes the log.
type Config struct {
	// LogPageSize is l_p, the physical log page size in bytes
	// (paper: 2020 for the record logging analysis).
	LogPageSize int
	// WriteCost is the page transfers charged per log page written; the
	// paper's model uses 4 (a small array write).
	WriteCost int
	// Packed selects the buffered-log cost model the paper's analysis
	// assumes (Section 5.3: log entries of length L pack into physical
	// pages of length l_p): a log page is charged once, when the stream
	// crosses into it, instead of re-charging the forced tail page on
	// every append.  Contents are durable either way — this is purely a
	// cost-accounting policy.
	Packed bool
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config { return Config{LogPageSize: 2020, WriteCost: 4} }

// Log is an append-only, always-forced log on stable storage.  It is safe
// for concurrent use.
//
// The log supports truncation: records before a safe point (bounded by
// the oldest active transaction's BOT and the last checkpoint) can be
// discarded to reclaim space.  LSNs are stable across truncation.
type Log struct {
	mu      sync.Mutex
	cfg     Config
	buf     []byte // encoded record frames, starting at firstLSN
	offsets []int  // frame start offsets within buf, indexed by LSN-firstLSN
	// firstLSN is the LSN of the oldest retained record (1 when nothing
	// has been truncated).
	firstLSN LSN
	// baseOff is the absolute byte position of buf[0] in the log stream
	// (bytes dropped by truncation so far).
	baseOff int
	// forcedLSN is the durability watermark: every record with LSN <=
	// forcedLSN has reached stable storage.  Forced appends advance it
	// past themselves (dragging any unforced predecessors along — a log
	// force is sequential); AppendUnforced leaves it behind.
	forcedLSN LSN
	// forcedOff is the absolute byte offset charged so far; the span
	// [forcedOff, end of the forced record) is charged at force time,
	// which is what lets records folded into one force share log pages.
	forcedOff int
	// forceDelay, when non-zero, is slept once per Force call — the
	// simulated service time of the physical log write.  Zero (the
	// default) keeps forces instantaneous, matching the pre-group-commit
	// engine where log cost lives purely in the transfer accounting.
	forceDelay time.Duration
	stats      Stats
}

// New creates an empty log.
func New(cfg Config) *Log {
	if cfg.LogPageSize <= 0 {
		cfg.LogPageSize = DefaultConfig().LogPageSize
	}
	if cfg.WriteCost <= 0 {
		cfg.WriteCost = DefaultConfig().WriteCost
	}
	return &Log{cfg: cfg, firstLSN: 1}
}

// SetForceDelay sets the simulated wall-clock service time of one
// physical log force (0 disables, the default).
func (l *Log) SetForceDelay(d time.Duration) {
	l.mu.Lock()
	l.forceDelay = d
	l.mu.Unlock()
}

// ErrCorrupt reports a malformed record frame during decoding.
var ErrCorrupt = errors.New("wal: corrupt record frame")

// encode appends the frame for r to dst and returns the result.
func encode(dst []byte, r *Record) []byte {
	// Frame: u32 payloadLen | u8 type | u64 txn | u32 page | i32 slot |
	//        u32 imageLen | image | u32 activeLen | active txns.
	var hdr [25]byte
	binary.LittleEndian.PutUint32(hdr[4:], uint32(0)) // placeholder
	hdr[4] = byte(r.Type)
	binary.LittleEndian.PutUint64(hdr[5:], uint64(r.Txn))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(r.Page))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(r.Slot))
	binary.LittleEndian.PutUint32(hdr[21:], uint32(len(r.Image)))
	payload := 21 + len(r.Image) + 4 + 8*len(r.Active)
	binary.LittleEndian.PutUint32(hdr[0:], uint32(payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.Image...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(r.Active)))
	dst = append(dst, n[:]...)
	for _, tx := range r.Active {
		var t [8]byte
		binary.LittleEndian.PutUint64(t[:], uint64(tx))
		dst = append(dst, t[:]...)
	}
	return dst
}

// decode parses one frame starting at off, returning the record and the
// offset of the next frame.
func decode(buf []byte, off int) (Record, int, error) {
	if off+4 > len(buf) {
		return Record{}, 0, ErrCorrupt
	}
	payload := int(binary.LittleEndian.Uint32(buf[off:]))
	start := off + 4
	end := start + payload
	if payload < 21 || end > len(buf) {
		return Record{}, 0, ErrCorrupt
	}
	var r Record
	r.Type = Type(buf[start])
	r.Txn = page.TxID(binary.LittleEndian.Uint64(buf[start+1:]))
	r.Page = page.PageID(binary.LittleEndian.Uint32(buf[start+9:]))
	r.Slot = int32(binary.LittleEndian.Uint32(buf[start+13:]))
	imgLen := int(binary.LittleEndian.Uint32(buf[start+17:]))
	p := start + 21
	if p+imgLen+4 > end {
		return Record{}, 0, ErrCorrupt
	}
	if imgLen > 0 {
		r.Image = append([]byte(nil), buf[p:p+imgLen]...)
	}
	p += imgLen
	nActive := int(binary.LittleEndian.Uint32(buf[p:]))
	p += 4
	if p+8*nActive != end {
		return Record{}, 0, ErrCorrupt
	}
	for i := 0; i < nActive; i++ {
		r.Active = append(r.Active, page.TxID(binary.LittleEndian.Uint64(buf[p+8*i:])))
	}
	return r, end, nil
}

// Append writes r to stable storage, assigns its LSN, and charges page
// transfers for the forced log page(s).  A forced append also forces any
// unforced predecessors — a log force is sequential — so the watermark
// always ends up at this record's LSN.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn := l.appendLocked(&r)
	l.forceLocked(lsn)
	return lsn
}

// AppendUnforced appends r to the volatile log tail without forcing it.
// The record is readable immediately (the engine reads its own log
// buffer) but does not survive a crash until Force covers its LSN; no
// transfers are charged until then.  Undo-critical records (BOT,
// before-images, checkpoints) must use Append — the write-ahead rule
// requires them durable before the disk writes they cover.
func (l *Log) AppendUnforced(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(&r)
}

// appendLocked encodes r into the tail and assigns its LSN.
func (l *Log) appendLocked(r *Record) LSN {
	r.LSN = l.firstLSN + LSN(len(l.offsets))
	startOff := len(l.buf)
	l.offsets = append(l.offsets, startOff)
	l.buf = encode(l.buf, r)
	l.stats.Records++
	l.stats.Bytes += int64(len(l.buf) - startOff)
	l.stats.LogPages = int64((l.baseOff+len(l.buf)-1)/l.cfg.LogPageSize + 1)
	return r.LSN
}

// Force makes every record with LSN <= upTo durable, charging the log
// pages between the previous watermark and the end of the covered span
// once — however many records folded into them.  It returns the number
// of page transfers charged.  When a force delay is configured the call
// sleeps it once, modelling the physical log write; already-covered
// LSNs return immediately without sleeping.
func (l *Log) Force(upTo LSN) int64 {
	l.mu.Lock()
	if upTo <= l.forcedLSN {
		l.mu.Unlock()
		return 0
	}
	before := l.stats.Transfers
	l.forceLocked(upTo)
	charged := l.stats.Transfers - before
	delay := l.forceDelay
	l.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return charged
}

// ForcedLSN returns the durability watermark.
func (l *Log) ForcedLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forcedLSN
}

// forceLocked advances the watermark to min(upTo, tail) and charges the
// newly forced span.  Charging by absolute byte span keeps the cost
// accounting identical to the always-forced model when there is no
// unforced backlog: the span then starts exactly at the appended frame.
// Under the Packed policy only newly entered pages are charged.
func (l *Log) forceLocked(upTo LSN) {
	tail := l.firstLSN + LSN(len(l.offsets)) - 1
	if upTo > tail {
		upTo = tail
	}
	if upTo <= l.forcedLSN {
		return
	}
	endOff := l.baseOff + len(l.buf)
	if upTo < tail {
		endOff = l.baseOff + l.offsets[upTo-l.firstLSN+1]
	}
	if endOff > l.forcedOff {
		firstPage := l.forcedOff / l.cfg.LogPageSize
		lastPage := (endOff - 1) / l.cfg.LogPageSize
		pagesTouched := int64(lastPage - firstPage + 1)
		if l.cfg.Packed {
			pagesTouched = int64(lastPage - firstPage)
		}
		l.stats.Transfers += pagesTouched * int64(l.cfg.WriteCost)
		l.forcedOff = endOff
	}
	l.forcedLSN = upTo
}

// DropUnforced models the crash loss of the volatile log tail: every
// record above the durability watermark is discarded.  It returns the
// number of records dropped.  With no unforced appends outstanding it is
// a no-op, which is why pre-group-commit configurations are unaffected.
func (l *Log) DropUnforced() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.firstLSN + LSN(len(l.offsets)) - 1
	if l.forcedLSN >= tail {
		return 0
	}
	keep := 0
	if l.forcedLSN >= l.firstLSN {
		keep = int(l.forcedLSN - l.firstLSN + 1)
	}
	dropped := len(l.offsets) - keep
	if dropped <= 0 {
		return 0
	}
	cut := l.offsets[keep]
	l.buf = l.buf[:cut]
	l.offsets = l.offsets[:keep]
	return dropped
}

// Truncate discards every record with an LSN below keep, reclaiming
// space.  LSNs are stable: surviving records keep their numbers, and the
// next Append continues the sequence.  It returns the number of records
// dropped.  Callers are responsible for choosing a safe keep point (no
// earlier than the oldest active transaction's BOT and the last
// checkpoint).
func (l *Log) Truncate(keep LSN) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.firstLSN + LSN(len(l.offsets))
	if keep <= l.firstLSN {
		return 0
	}
	if keep > tail {
		keep = tail
	}
	drop := int(keep - l.firstLSN)
	var cut int
	if drop < len(l.offsets) {
		cut = l.offsets[drop]
	} else {
		cut = len(l.buf)
	}
	l.buf = append([]byte(nil), l.buf[cut:]...)
	newOffsets := make([]int, len(l.offsets)-drop)
	for i := range newOffsets {
		newOffsets[i] = l.offsets[drop+i] - cut
	}
	l.offsets = newOffsets
	l.baseOff += cut
	l.firstLSN = keep
	// Records dropped by truncation are gone whether or not they were
	// ever forced; keep the watermark consistent so DropUnforced never
	// resurrects a truncated range (and never charges discarded bytes).
	if l.forcedLSN < l.firstLSN-1 {
		l.forcedLSN = l.firstLSN - 1
	}
	if l.forcedOff < l.baseOff {
		l.forcedOff = l.baseOff
	}
	return drop
}

// FirstLSN returns the LSN of the oldest retained record (one past the
// tail when the log is empty).
func (l *Log) FirstLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Len returns the tail LSN: the number of records ever appended
// (truncated records keep counting, since LSNs are stable).
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int(l.firstLSN) - 1 + len(l.offsets)
}

// Read returns the record at the given LSN.
func (l *Log) Read(n LSN) (Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.readLocked(n)
}

func (l *Log) readLocked(n LSN) (Record, error) {
	idx := int(n) - int(l.firstLSN)
	if n < l.firstLSN || idx >= len(l.offsets) {
		return Record{}, fmt.Errorf("wal: LSN %d out of range [%d,%d]", n, l.firstLSN, int(l.firstLSN)-1+len(l.offsets))
	}
	r, _, err := decode(l.buf, l.offsets[idx])
	if err != nil {
		return Record{}, err
	}
	r.LSN = n
	return r, nil
}

// Scan calls fn for every record with LSN >= from, in LSN order, until fn
// returns false or the log is exhausted.
func (l *Log) Scan(from LSN, fn func(Record) bool) error {
	l.mu.Lock()
	if from < l.firstLSN {
		from = l.firstLSN
	}
	l.mu.Unlock()
	for n := from; ; n++ {
		l.mu.Lock()
		if int(n) > int(l.firstLSN)-1+len(l.offsets) {
			l.mu.Unlock()
			return nil
		}
		r, err := l.readLocked(n)
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if !fn(r) {
			return nil
		}
	}
}

// ScanBackward calls fn for every record from the log tail down to (and
// including) LSN 1, until fn returns false.
func (l *Log) ScanBackward(fn func(Record) bool) error {
	l.mu.Lock()
	top := int(l.firstLSN) - 1 + len(l.offsets)
	bottom := int(l.firstLSN)
	l.mu.Unlock()
	for n := top; n >= bottom; n-- {
		l.mu.Lock()
		r, err := l.readLocked(LSN(n))
		l.mu.Unlock()
		if err != nil {
			return err
		}
		if !fn(r) {
			return nil
		}
	}
	return nil
}

// LastCheckpoint returns the most recent checkpoint record, or ok=false
// if none exists.
func (l *Log) LastCheckpoint() (Record, bool) {
	var found Record
	ok := false
	_ = l.ScanBackward(func(r Record) bool {
		if r.Type == TypeCheckpoint {
			found, ok = r, true
			return false
		}
		return true
	})
	return found, ok
}

// ChargeScan charges read transfers (one per log page) for scanning the
// records in [from, to] and returns the number charged.  Recovery calls
// it after its analysis and undo passes so that restart cost appears in
// the measured page-transfer totals, as in the paper's c_s terms.
func (l *Log) ChargeScan(from, to LSN) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.firstLSN + LSN(len(l.offsets)) - 1
	if len(l.offsets) == 0 || from > to || to < l.firstLSN {
		return 0
	}
	if from < l.firstLSN {
		from = l.firstLSN
	}
	if to > tail {
		to = tail
	}
	startOff := l.baseOff + l.offsets[from-l.firstLSN]
	endOff := l.baseOff + len(l.buf)
	if to < tail {
		endOff = l.baseOff + l.offsets[to-l.firstLSN+1]
	}
	pages := int64((endOff-1)/l.cfg.LogPageSize - startOff/l.cfg.LogPageSize + 1)
	l.stats.ReadTransfers += pages
	return pages
}

// Stats returns the accumulated I/O cost counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// ResetStats zeroes the transfer counters (record/byte history is kept:
// it is the log contents, not a statistic).
func (l *Log) ResetStats() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Transfers = 0
	l.stats.ReadTransfers = 0
}
