package wal

import (
	"sync"
	"time"
)

// Forcer batches concurrent log forces.  Callers that need a record
// durable call Force(lsn); the first caller in an idle window becomes
// the leader, sleeps the group-commit window so concurrent committers
// can join, then issues one physical Log.Force covering the highest LSN
// any member asked for.  Followers just wait for the leader's force to
// complete — the log is sequential, so one force covers everyone below
// its watermark.  No caller ever blocks on another transaction's force
// longer than one window plus one log write.
type Forcer struct {
	log    *Log
	window time.Duration

	mu      sync.Mutex
	leader  bool
	maxLSN  LSN
	batch   chan struct{}
	batches int64
	joins   int64
}

// NewForcer wraps l with a group-commit window.  A zero window still
// batches whatever arrives while the leader is between its snapshot and
// the physical force, it just doesn't wait for company.
func NewForcer(l *Log, window time.Duration) *Forcer {
	return &Forcer{log: l, window: window, batch: make(chan struct{})}
}

// Force blocks until every record with LSN <= upTo is durable.
func (f *Forcer) Force(upTo LSN) {
	f.mu.Lock()
	f.joins++
	if upTo > f.maxLSN {
		f.maxLSN = upTo
	}
	if f.leader {
		// A leader is collecting; our LSN is in its snapshot-to-be.
		// Wait for its force.
		ch := f.batch
		f.mu.Unlock()
		<-ch
		return
	}
	f.leader = true
	ch := f.batch
	f.mu.Unlock()

	if f.window > 0 {
		time.Sleep(f.window)
	}

	f.mu.Lock()
	lsn := f.maxLSN
	f.maxLSN = 0
	f.leader = false
	f.batch = make(chan struct{})
	f.batches++
	f.mu.Unlock()

	// Followers that joined before the snapshot are covered by lsn;
	// anyone arriving after the reset starts a fresh batch on the new
	// channel, so closing ch wakes exactly this cohort.
	f.log.Force(lsn)
	close(ch)
}

// Batches returns the number of physical forces issued.
func (f *Forcer) Batches() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.batches
}

// Joins returns the number of Force calls served (batched or not).
func (f *Forcer) Joins() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.joins
}
