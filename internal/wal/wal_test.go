package wal

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/page"
)

func TestAppendReadRoundTrip(t *testing.T) {
	l := New(DefaultConfig())
	recs := []Record{
		{Type: TypeBOT, Txn: 1, Slot: NoSlot},
		{Type: TypeBeforeImage, Txn: 1, Page: 42, Slot: NoSlot, Image: []byte{1, 2, 3}},
		{Type: TypeBeforeImage, Txn: 1, Page: 43, Slot: 5, Image: []byte("record image")},
		{Type: TypeChainHead, Txn: 1, Page: 44, Slot: NoSlot},
		{Type: TypeCheckpoint, Slot: NoSlot, Active: []page.TxID{1, 7, 9}},
		{Type: TypeEOT, Txn: 1, Slot: NoSlot},
	}
	for i, r := range recs {
		if got := l.Append(r); got != LSN(i+1) {
			t.Fatalf("Append #%d returned LSN %d, want %d", i, got, i+1)
		}
	}
	for i, want := range recs {
		got, err := l.Read(LSN(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		want.LSN = LSN(i + 1)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: got %+v, want %+v", i+1, got, want)
		}
	}
}

func TestReadOutOfRange(t *testing.T) {
	l := New(DefaultConfig())
	if _, err := l.Read(1); err == nil {
		t.Fatalf("reading an empty log must fail")
	}
	l.Append(Record{Type: TypeBOT, Txn: 1, Slot: NoSlot})
	if _, err := l.Read(0); err == nil {
		t.Fatalf("LSN 0 must be rejected")
	}
	if _, err := l.Read(2); err == nil {
		t.Fatalf("LSN beyond tail must be rejected")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	l := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	var seen []page.TxID
	if err := l.Scan(3, func(r Record) bool {
		seen = append(seen, r.Txn)
		return len(seen) < 4
	}); err != nil {
		t.Fatal(err)
	}
	want := []page.TxID{3, 4, 5, 6}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("scan saw %v, want %v", seen, want)
	}
}

func TestScanBackward(t *testing.T) {
	l := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	var seen []page.TxID
	if err := l.ScanBackward(func(r Record) bool {
		seen = append(seen, r.Txn)
		return r.Txn != 2 // stop once we've seen txn 2
	}); err != nil {
		t.Fatal(err)
	}
	want := []page.TxID{5, 4, 3, 2}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("backward scan saw %v, want %v", seen, want)
	}
}

func TestLastCheckpoint(t *testing.T) {
	l := New(DefaultConfig())
	if _, ok := l.LastCheckpoint(); ok {
		t.Fatalf("empty log has no checkpoint")
	}
	l.Append(Record{Type: TypeCheckpoint, Slot: NoSlot, Active: []page.TxID{1}})
	l.Append(Record{Type: TypeBOT, Txn: 2, Slot: NoSlot})
	l.Append(Record{Type: TypeCheckpoint, Slot: NoSlot, Active: []page.TxID{2}})
	l.Append(Record{Type: TypeEOT, Txn: 2, Slot: NoSlot})
	ck, ok := l.LastCheckpoint()
	if !ok || ck.LSN != 3 || len(ck.Active) != 1 || ck.Active[0] != 2 {
		t.Fatalf("LastCheckpoint = %+v ok=%v, want the LSN-3 checkpoint", ck, ok)
	}
}

func TestTransferAccounting(t *testing.T) {
	// With WriteCost=4 and a large log page, small records pack into the
	// same tail page but each forced append still costs 4 transfers.
	l := New(Config{LogPageSize: 10000, WriteCost: 4})
	for i := 0; i < 5; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i + 1), Slot: NoSlot})
	}
	if got := l.Stats().Transfers; got != 5*4 {
		t.Fatalf("transfers = %d, want 20", got)
	}
	// A record spanning multiple log pages charges once per page touched.
	l2 := New(Config{LogPageSize: 100, WriteCost: 4})
	l2.Append(Record{Type: TypeAfterImage, Txn: 1, Page: 1, Slot: NoSlot, Image: make([]byte, 450)})
	s := l2.Stats()
	if s.Transfers < 4*4 {
		t.Fatalf("multi-page record charged %d transfers, want at least 16", s.Transfers)
	}
	if s.LogPages < 4 {
		t.Fatalf("LogPages = %d, want at least 4", s.LogPages)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	l := New(DefaultConfig())
	l.Append(Record{Type: TypeBOT, Txn: 1, Slot: NoSlot})
	l.ResetStats()
	if l.Stats().Transfers != 0 {
		t.Fatalf("transfers not reset")
	}
	if l.Len() != 1 {
		t.Fatalf("ResetStats must not drop records")
	}
	if _, err := l.Read(1); err != nil {
		t.Fatalf("record unreadable after ResetStats: %v", err)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	// Property: any record round-trips through the frame codec, even when
	// packed between other records.
	f := func(txn uint64, pg uint32, slot int32, img []byte, active []uint64) bool {
		l := New(DefaultConfig())
		l.Append(Record{Type: TypeBOT, Txn: 9, Slot: NoSlot})
		want := Record{
			Type: TypeBeforeImage,
			Txn:  page.TxID(txn),
			Page: page.PageID(pg),
			Slot: slot,
		}
		if len(img) > 0 {
			want.Image = img
		}
		for _, a := range active {
			want.Active = append(want.Active, page.TxID(a))
		}
		n := l.Append(want)
		l.Append(Record{Type: TypeEOT, Txn: 9, Slot: NoSlot})
		got, err := l.Read(n)
		if err != nil {
			return false
		}
		want.LSN = n
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(DefaultConfig())
	var wg sync.WaitGroup
	const goroutines, per = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				img := make([]byte, r.Intn(64))
				r.Read(img)
				l.Append(Record{Type: TypeAfterImage, Txn: page.TxID(g + 1), Page: page.PageID(i), Slot: NoSlot, Image: img})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != goroutines*per {
		t.Fatalf("len = %d, want %d", l.Len(), goroutines*per)
	}
	// Every record must decode cleanly.
	count := 0
	if err := l.Scan(1, func(r Record) bool {
		if r.Type != TypeAfterImage {
			t.Errorf("unexpected record type %v", r.Type)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != goroutines*per {
		t.Fatalf("scanned %d records, want %d", count, goroutines*per)
	}
}

func TestTruncate(t *testing.T) {
	l := New(DefaultConfig())
	for i := 1; i <= 10; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i), Slot: NoSlot})
	}
	if got := l.Truncate(5); got != 4 {
		t.Fatalf("dropped %d records, want 4", got)
	}
	if l.FirstLSN() != 5 {
		t.Fatalf("first LSN = %d, want 5", l.FirstLSN())
	}
	// LSNs are stable: record 5 is still txn 5.
	r, err := l.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Txn != 5 || r.LSN != 5 {
		t.Fatalf("record 5 = %+v", r)
	}
	if _, err := l.Read(4); err == nil {
		t.Fatalf("truncated record must be unreadable")
	}
	// Appends continue the sequence.
	if got := l.Append(Record{Type: TypeEOT, Txn: 99, Slot: NoSlot}); got != 11 {
		t.Fatalf("next LSN = %d, want 11", got)
	}
	if l.Len() != 11 {
		t.Fatalf("Len = %d, want 11 (tail LSN)", l.Len())
	}
	// Scans skip the truncated prefix.
	var seen []LSN
	if err := l.Scan(1, func(r Record) bool {
		seen = append(seen, r.LSN)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 || seen[0] != 5 || seen[6] != 11 {
		t.Fatalf("scan saw %v", seen)
	}
	// Backward scan stops at the truncation point.
	count := 0
	if err := l.ScanBackward(func(Record) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("backward scan saw %d records, want 7", count)
	}
}

func TestTruncateEdgeCases(t *testing.T) {
	l := New(DefaultConfig())
	if l.Truncate(10) != 0 {
		t.Fatalf("truncating an empty log drops nothing")
	}
	for i := 1; i <= 3; i++ {
		l.Append(Record{Type: TypeBOT, Txn: page.TxID(i), Slot: NoSlot})
	}
	// Truncate past the tail clamps to "drop everything".
	if got := l.Truncate(100); got != 3 {
		t.Fatalf("dropped %d, want 3", got)
	}
	if l.FirstLSN() != 4 {
		t.Fatalf("first LSN = %d, want 4 (one past tail)", l.FirstLSN())
	}
	// A truncate below the current first LSN is a no-op.
	if l.Truncate(2) != 0 {
		t.Fatalf("no-op truncate dropped records")
	}
	// ChargeScan over a fully truncated range charges nothing.
	if l.ChargeScan(1, 3) != 0 {
		t.Fatalf("charged reads for truncated records")
	}
}

func TestTruncateChargeScan(t *testing.T) {
	l := New(Config{LogPageSize: 100, WriteCost: 4})
	for i := 1; i <= 20; i++ {
		l.Append(Record{Type: TypeAfterImage, Txn: 1, Page: page.PageID(i), Slot: NoSlot, Image: make([]byte, 40)})
	}
	l.Truncate(10)
	before := l.Stats().ReadTransfers
	if l.ChargeScan(1, 20) <= 0 {
		t.Fatalf("surviving records must charge reads")
	}
	if l.Stats().ReadTransfers <= before {
		t.Fatalf("ReadTransfers not accumulated")
	}
}

func TestPackedCharging(t *testing.T) {
	// Packed: a log page is charged once, when first entered, no matter
	// how many appends it absorbs.
	l := New(Config{LogPageSize: 100, WriteCost: 4, Packed: true})
	small := Record{Type: TypeBOT, Txn: 1, Slot: NoSlot}
	l.Append(small) // stays in page 0: no crossing yet
	first := l.Stats().Transfers
	if first != 0 {
		t.Fatalf("first packed append charged %d transfers, want 0 until a page fills", first)
	}
	// Keep appending until the stream crosses into page 1.
	for i := 0; i < 10; i++ {
		l.Append(Record{Type: TypeBeforeImage, Txn: 1, Page: 1, Slot: NoSlot, Image: make([]byte, 30)})
	}
	s := l.Stats()
	if s.Transfers == 0 {
		t.Fatalf("crossing log pages must charge")
	}
	// Total charged pages ≈ pages filled (well below one charge per append).
	if s.Transfers >= s.Records*4 {
		t.Fatalf("packed charging (%d) should be far below per-append forcing (%d)", s.Transfers, s.Records*4)
	}
	// The forced policy charges every append.
	lf := New(Config{LogPageSize: 100, WriteCost: 4})
	lf.Append(small)
	if lf.Stats().Transfers != 4 {
		t.Fatalf("forced append charged %d, want 4", lf.Stats().Transfers)
	}
}
