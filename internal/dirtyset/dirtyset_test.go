package dirtyset

import (
	"testing"
	"testing/quick"

	"repro/internal/page"
)

// TestDirtySetStateDiagramFigure3 walks the exact transitions of the
// paper's Figure 3 state diagram for a page parity group.
func TestDirtySetStateDiagramFigure3(t *testing.T) {
	tbl := New()
	const (
		g  = page.GroupID(4)
		di = page.PageID(42) // the paper's D_i
		dj = page.PageID(43) // another page of the same group
		tx = page.TxID(1)    // the paper's transaction T
		t2 = page.TxID(2)
	)

	// Clean state: any steal may skip UNDO logging.
	if !tbl.CanStealWithoutLogging(g, di, tx) {
		t.Fatalf("clean group must allow a no-logging steal")
	}

	// "Transaction T modifies page D_i and D_i is written back to the
	// database before EOT" — clean → dirty.
	tbl.MarkDirty(g, di, tx, 1)
	if !tbl.IsDirty(g) {
		t.Fatalf("group must be dirty after the first no-logging steal")
	}
	e, _ := tbl.Lookup(g)
	if e.Page != di || e.Txn != tx || e.WorkingTwin != 1 {
		t.Fatalf("entry = %+v", e)
	}

	// "T rereferences D_i, modifies it and D_i is written back to the
	// database before EOT" — dirty → dirty (self loop, still no logging).
	if !tbl.CanStealWithoutLogging(g, di, tx) {
		t.Fatalf("re-steal of the same page by the same transaction must stay log-free")
	}
	tbl.MarkDirty(g, di, tx, 1)

	// A different page of the dirty group, or the same page on behalf of
	// a different transaction, must be UNDO logged.
	if tbl.CanStealWithoutLogging(g, dj, tx) {
		t.Fatalf("second page of a dirty group must require logging")
	}
	if tbl.CanStealWithoutLogging(g, di, t2) {
		t.Fatalf("same page under a different transaction must require logging")
	}

	// "Transaction T commits" — dirty → clean.
	tbl.Clean(g)
	if tbl.IsDirty(g) {
		t.Fatalf("group must be clean after commit")
	}
	if !tbl.CanStealWithoutLogging(g, dj, t2) {
		t.Fatalf("clean group must allow any no-logging steal again")
	}
}

func TestMarkDirtyConflictPanics(t *testing.T) {
	tbl := New()
	tbl.MarkDirty(1, 10, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("MarkDirty under a different owner must panic")
		}
	}()
	tbl.MarkDirty(1, 11, 1, 0)
}

func TestGroupsOfAndCleanAllOf(t *testing.T) {
	tbl := New()
	tbl.MarkDirty(3, 30, 7, 0)
	tbl.MarkDirty(1, 10, 7, 1)
	tbl.MarkDirty(2, 20, 8, 0)
	got := tbl.GroupsOf(7)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("GroupsOf(7) = %v, want [1 3] sorted", got)
	}
	tbl.CleanAllOf(7)
	if len(tbl.GroupsOf(7)) != 0 {
		t.Fatalf("txn 7 still owns groups after CleanAllOf")
	}
	if !tbl.IsDirty(2) {
		t.Fatalf("txn 8's group must survive txn 7's commit")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
}

func TestResetModelsCrash(t *testing.T) {
	tbl := New()
	tbl.MarkDirty(1, 10, 1, 0)
	tbl.MarkDirty(2, 20, 2, 1)
	tbl.Reset()
	if tbl.Len() != 0 {
		t.Fatalf("Reset must empty the table")
	}
	if len(tbl.GroupsOf(1)) != 0 {
		t.Fatalf("per-txn index must be dropped too")
	}
}

func TestQuickAtMostOneDirtyPagePerGroup(t *testing.T) {
	// Property: however ops interleave (always consulting
	// CanStealWithoutLogging first, as the engine does), every dirty
	// group has exactly one owning (page, txn) pair, and cleaning is
	// idempotent.
	type op struct {
		G     uint8
		P     uint8
		T     uint8
		Clean bool
	}
	f := func(ops []op) bool {
		tbl := New()
		for _, o := range ops {
			g := page.GroupID(o.G % 8)
			p := page.PageID(o.P % 64)
			tx := page.TxID(o.T%4 + 1)
			if o.Clean {
				tbl.Clean(g)
				tbl.Clean(g) // idempotent
				if tbl.IsDirty(g) {
					return false
				}
				continue
			}
			if tbl.CanStealWithoutLogging(g, p, tx) {
				tbl.MarkDirty(g, p, tx, int(o.T%2))
				e, ok := tbl.Lookup(g)
				if !ok || e.Page != p || e.Txn != tx {
					return false
				}
			} else if e, ok := tbl.Lookup(g); !ok || (e.Page == p && e.Txn == tx) {
				return false // CanSteal lied
			}
		}
		// Cross-check the per-txn index against the main map.
		total := 0
		for tx := page.TxID(1); tx <= 4; tx++ {
			for _, g := range tbl.GroupsOf(tx) {
				e, ok := tbl.Lookup(g)
				if !ok || e.Txn != tx {
					return false
				}
				total++
			}
		}
		return total == tbl.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
