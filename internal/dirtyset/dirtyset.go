// Package dirtyset implements the paper's Dirty_Set table (Section 4.1,
// Figure 3).
//
// A parity group is *dirty* when one of its data pages has been written
// back to the database by a still-active transaction without UNDO
// logging, and *clean* otherwise.  The table records, for every dirty
// group, which page caused the transition, which transaction wrote it,
// and which twin parity page holds the working parity ("Only log N bits
// need to be used to store the page number ... and one bit for the parity
// page number").
//
// The table answers the central policy question of RDA recovery: may this
// steal proceed WITHOUT UNDO logging?  Per Figure 3 the answer is yes
// exactly when the group is clean, or when it is dirty and the write is a
// re-steal of the very same page by the very same transaction (the page
// was stolen, re-referenced, modified and stolen again before EOT).
//
// The table lives in main memory only — it is lost in a system crash and
// crash recovery reconstructs what it needs from the log chains
// (Section 4.3).  Use Reset to model that loss.
package dirtyset

import (
	"sort"
	"sync"

	"repro/internal/page"
)

// Entry describes one dirty parity group.
type Entry struct {
	// Page is the data page whose no-UNDO-logging write made the group
	// dirty.
	Page page.PageID
	// Txn is the active transaction that wrote it.
	Txn page.TxID
	// WorkingTwin is the twin parity page (0 or 1) holding the working
	// parity for this group.
	WorkingTwin int
}

// Table is the Dirty_Set.  It is safe for concurrent use.
type Table struct {
	mu sync.Mutex
	m  map[page.GroupID]Entry
	// byTxn indexes dirty groups by owning transaction for O(1) commit
	// and abort processing.
	byTxn map[page.TxID]map[page.GroupID]struct{}
}

// New creates an empty table (every group clean).
func New() *Table {
	return &Table{
		m:     make(map[page.GroupID]Entry),
		byTxn: make(map[page.TxID]map[page.GroupID]struct{}),
	}
}

// Lookup returns the entry for group g and whether the group is dirty.
func (t *Table) Lookup(g page.GroupID) (Entry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[g]
	return e, ok
}

// IsDirty reports whether group g is dirty.
func (t *Table) IsDirty(g page.GroupID) bool {
	_, ok := t.Lookup(g)
	return ok
}

// CanStealWithoutLogging implements the Figure 3 policy: a modified page
// p of group g, stolen on behalf of transaction tx, may be written back
// without UNDO logging iff the group is clean, or it is dirty because of
// this very (page, transaction) pair.
func (t *Table) CanStealWithoutLogging(g page.GroupID, p page.PageID, tx page.TxID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, dirty := t.m[g]
	if !dirty {
		return true
	}
	return e.Page == p && e.Txn == tx
}

// MarkDirty records that tx's write of page p (working parity on the
// given twin) moved group g into the dirty state, or refreshes the entry
// on a re-steal.  It panics if the group is already dirty under a
// different (page, transaction) pair, because that would corrupt the undo
// guarantee — callers must consult CanStealWithoutLogging first.
func (t *Table) MarkDirty(g page.GroupID, p page.PageID, tx page.TxID, workingTwin int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, dirty := t.m[g]; dirty && (e.Page != p || e.Txn != tx) {
		panic("dirtyset: group already dirty under a different page/transaction")
	}
	t.m[g] = Entry{Page: p, Txn: tx, WorkingTwin: workingTwin}
	set := t.byTxn[tx]
	if set == nil {
		set = make(map[page.GroupID]struct{})
		t.byTxn[tx] = set
	}
	set[g] = struct{}{}
}

// Clean returns group g to the clean state (Figure 3's commit
// transition, and the end of an abort's undo).
func (t *Table) Clean(g page.GroupID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[g]; ok {
		delete(t.m, g)
		if set := t.byTxn[e.Txn]; set != nil {
			delete(set, g)
			if len(set) == 0 {
				delete(t.byTxn, e.Txn)
			}
		}
	}
}

// GroupsOf returns the groups currently dirty on behalf of tx, in
// ascending order (deterministic for tests and recovery).
func (t *Table) GroupsOf(tx page.TxID) []page.GroupID {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := t.byTxn[tx]
	out := make([]page.GroupID, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CleanAllOf removes every entry owned by tx (commit: all of its dirty
// groups become clean at once).
func (t *Table) CleanAllOf(tx page.TxID) {
	for _, g := range t.GroupsOf(tx) {
		t.Clean(g)
	}
}

// Len returns the number of dirty groups.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Reset drops the whole table — the main-memory table does not survive a
// system crash.
func (t *Table) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[page.GroupID]Entry)
	t.byTxn = make(map[page.TxID]map[page.GroupID]struct{})
}
