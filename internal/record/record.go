// Package record implements the fixed-slot record layout inside pages,
// used by the record-granularity algorithms of Section 5.3.
//
// The paper's record logging analysis assumes records of average length r
// (100 bytes) packed into pages of length l_p (2020 bytes), with record
// locking underneath so that concurrent transactions may update different
// records of the same page.  This package provides a deterministic page
// layout for that model: a small header followed by a presence bitmap and
// fixed-size slots.
//
// Layout (little endian):
//
//	[0:2)  uint16 record size
//	[2:4)  uint16 slot count
//	[4:4+ceil(slots/8)) presence bitmap
//	slots  slot i at base + i*recordSize
//
// Pages are self-describing, so crash recovery can reapply record images
// to a page without external schema knowledge.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/page"
)

// Errors returned by the layout.
var (
	ErrNotFormatted = errors.New("record: page is not record-formatted")
	ErrBadSlot      = errors.New("record: slot out of range")
	ErrEmptySlot    = errors.New("record: slot is empty")
	ErrFull         = errors.New("record: page is full")
	ErrBadLength    = errors.New("record: record length does not match slot size")
)

const headerSize = 4

// Capacity returns how many records of the given size fit in a page of
// the given size, accounting for the header and presence bitmap.
func Capacity(pageSize, recordSize int) int {
	if recordSize <= 0 || pageSize <= headerSize {
		return 0
	}
	// Solve slots*(recordSize) + ceil(slots/8) + headerSize <= pageSize.
	slots := (pageSize - headerSize) / recordSize
	for slots > 0 && headerSize+(slots+7)/8+slots*recordSize > pageSize {
		slots--
	}
	return slots
}

// Format initializes buf as an empty record page with fixed-size slots.
func Format(buf page.Buf, recordSize int) error {
	slots := Capacity(len(buf), recordSize)
	if slots < 1 {
		return fmt.Errorf("record: page of %d bytes cannot hold %d-byte records", len(buf), recordSize)
	}
	buf.Zero()
	binary.LittleEndian.PutUint16(buf[0:], uint16(recordSize))
	binary.LittleEndian.PutUint16(buf[2:], uint16(slots))
	return nil
}

// Page is a view over a record-formatted page image.  It aliases the
// underlying buffer: mutations write through.
type Page struct {
	buf        page.Buf
	recordSize int
	slots      int
}

// View interprets buf as a record page.
func View(buf page.Buf) (*Page, error) {
	if len(buf) < headerSize {
		return nil, ErrNotFormatted
	}
	rs := int(binary.LittleEndian.Uint16(buf[0:]))
	slots := int(binary.LittleEndian.Uint16(buf[2:]))
	if rs == 0 || slots == 0 || slots != Capacity(len(buf), rs) {
		return nil, ErrNotFormatted
	}
	return &Page{buf: buf, recordSize: rs, slots: slots}, nil
}

// RecordSize returns the fixed record size.
func (p *Page) RecordSize() int { return p.recordSize }

// Slots returns the slot count.
func (p *Page) Slots() int { return p.slots }

func (p *Page) bitmap() page.Buf { return p.buf[headerSize : headerSize+(p.slots+7)/8] }

func (p *Page) slotBase(i int) int {
	return headerSize + (p.slots+7)/8 + i*p.recordSize
}

// Used reports whether slot i holds a record.
func (p *Page) Used(i int) bool {
	if i < 0 || i >= p.slots {
		return false
	}
	return p.bitmap()[i/8]&(1<<(i%8)) != 0
}

// Count returns the number of occupied slots.
func (p *Page) Count() int {
	n := 0
	for i := 0; i < p.slots; i++ {
		if p.Used(i) {
			n++
		}
	}
	return n
}

// Read returns a copy of the record in slot i.
func (p *Page) Read(i int) ([]byte, error) {
	if i < 0 || i >= p.slots {
		return nil, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slots)
	}
	if !p.Used(i) {
		return nil, fmt.Errorf("%w: %d", ErrEmptySlot, i)
	}
	base := p.slotBase(i)
	out := make([]byte, p.recordSize)
	copy(out, p.buf[base:base+p.recordSize])
	return out, nil
}

// Write stores rec into slot i (insert or overwrite).  rec must be at
// most the slot size; shorter records are zero padded.
func (p *Page) Write(i int, rec []byte) error {
	if i < 0 || i >= p.slots {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slots)
	}
	if len(rec) > p.recordSize {
		return fmt.Errorf("%w: %d > %d", ErrBadLength, len(rec), p.recordSize)
	}
	base := p.slotBase(i)
	copy(p.buf[base:base+p.recordSize], rec)
	for j := base + len(rec); j < base+p.recordSize; j++ {
		p.buf[j] = 0
	}
	p.bitmap()[i/8] |= 1 << (i % 8)
	return nil
}

// Delete clears slot i.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.slots {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slots)
	}
	base := p.slotBase(i)
	for j := base; j < base+p.recordSize; j++ {
		p.buf[j] = 0
	}
	p.bitmap()[i/8] &^= 1 << (i % 8)
	return nil
}

// Insert stores rec in the first free slot and returns its index.
func (p *Page) Insert(rec []byte) (int, error) {
	for i := 0; i < p.slots; i++ {
		if !p.Used(i) {
			return i, p.Write(i, rec)
		}
	}
	return 0, ErrFull
}

// Image is a record-granularity image for logging: slot plus a presence
// flag so that UNDO can restore a deleted record's absence and vice
// versa.
type Image struct {
	Present bool
	Data    []byte
}

// Snapshot captures slot i's image for the log (before- or after-image).
func (p *Page) Snapshot(i int) (Image, error) {
	if i < 0 || i >= p.slots {
		return Image{}, fmt.Errorf("%w: %d of %d", ErrBadSlot, i, p.slots)
	}
	if !p.Used(i) {
		return Image{Present: false}, nil
	}
	data, err := p.Read(i)
	if err != nil {
		return Image{}, err
	}
	return Image{Present: true, Data: data}, nil
}

// Apply restores slot i from a logged image (the record-level UNDO/REDO
// primitive).
func (p *Page) Apply(i int, img Image) error {
	if !img.Present {
		return p.Delete(i)
	}
	return p.Write(i, img.Data)
}

// EncodeImage serializes an image for a log record payload.
func EncodeImage(img Image) []byte {
	out := make([]byte, 1+len(img.Data))
	if img.Present {
		out[0] = 1
	}
	copy(out[1:], img.Data)
	return out
}

// DecodeImage parses a payload produced by EncodeImage.
func DecodeImage(b []byte) (Image, error) {
	if len(b) < 1 {
		return Image{}, errors.New("record: empty image payload")
	}
	img := Image{Present: b[0] == 1}
	if img.Present {
		img.Data = append([]byte(nil), b[1:]...)
	}
	return img, nil
}
