package record

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/page"
)

func formatted(t *testing.T, pageSize, recSize int) (*Page, page.Buf) {
	t.Helper()
	buf := page.NewBuf(pageSize)
	if err := Format(buf, recSize); err != nil {
		t.Fatal(err)
	}
	p, err := View(buf)
	if err != nil {
		t.Fatal(err)
	}
	return p, buf
}

func TestCapacityPaperParameters(t *testing.T) {
	// The paper's record logging analysis: l_p = 2020, r = 100.
	got := Capacity(2020, 100)
	if got < 19 || got > 20 {
		t.Fatalf("Capacity(2020,100) = %d, want ~20 records per page", got)
	}
	if Capacity(64, 1000) != 0 {
		t.Fatalf("oversized records must yield zero capacity")
	}
}

func TestFormatViewRoundTrip(t *testing.T) {
	p, _ := formatted(t, 512, 100)
	if p.RecordSize() != 100 {
		t.Fatalf("record size = %d", p.RecordSize())
	}
	if p.Slots() != Capacity(512, 100) {
		t.Fatalf("slots = %d", p.Slots())
	}
	if p.Count() != 0 {
		t.Fatalf("fresh page not empty")
	}
}

func TestViewRejectsUnformatted(t *testing.T) {
	if _, err := View(page.NewBuf(128)); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("err = %v, want ErrNotFormatted", err)
	}
	if _, err := View(page.NewBuf(2)); !errors.Is(err, ErrNotFormatted) {
		t.Fatalf("short buffer: err = %v, want ErrNotFormatted", err)
	}
}

func TestWriteReadDelete(t *testing.T) {
	p, _ := formatted(t, 512, 64)
	rec := bytes.Repeat([]byte{0x5A}, 40) // shorter than slot: zero padded
	if err := p.Write(2, rec); err != nil {
		t.Fatal(err)
	}
	if !p.Used(2) || p.Count() != 1 {
		t.Fatalf("slot 2 should be used")
	}
	got, err := p.Read(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:40], rec) || !bytes.Equal(got[40:], make([]byte, 24)) {
		t.Fatalf("read back mismatch")
	}
	if _, err := p.Read(3); !errors.Is(err, ErrEmptySlot) {
		t.Fatalf("err = %v, want ErrEmptySlot", err)
	}
	if err := p.Delete(2); err != nil {
		t.Fatal(err)
	}
	if p.Used(2) || p.Count() != 0 {
		t.Fatalf("slot 2 should be free after delete")
	}
}

func TestInsertFindsFreeSlots(t *testing.T) {
	p, _ := formatted(t, 256, 64)
	slots := p.Slots()
	for i := 0; i < slots; i++ {
		got, err := p.Insert([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Fatalf("insert %d landed in slot %d", i, got)
		}
	}
	if _, err := p.Insert([]byte{0xFF}); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if err := p.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got, err := p.Insert([]byte{0xAA}); err != nil || got != 1 {
		t.Fatalf("insert after delete: slot %d err %v, want slot 1", got, err)
	}
}

func TestBounds(t *testing.T) {
	p, _ := formatted(t, 256, 64)
	if err := p.Write(-1, nil); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
	if err := p.Write(p.Slots(), nil); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v, want ErrBadSlot", err)
	}
	if err := p.Write(0, make([]byte, 65)); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

func TestSnapshotApplyUndoRedo(t *testing.T) {
	p, _ := formatted(t, 512, 32)
	// UNDO of an update: snapshot before, overwrite, apply the snapshot.
	if err := p.Write(0, []byte("old-value")); err != nil {
		t.Fatal(err)
	}
	before, err := p.Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(0, []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(0, before); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(0)
	if !bytes.Equal(got[:9], []byte("old-value")) {
		t.Fatalf("undo did not restore the record")
	}
	// UNDO of an insert: the before-image of an empty slot deletes it.
	empty, err := p.Snapshot(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(5, []byte("inserted")); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(5, empty); err != nil {
		t.Fatal(err)
	}
	if p.Used(5) {
		t.Fatalf("undo of insert must delete the record")
	}
}

func TestImageCodecRoundTrip(t *testing.T) {
	f := func(present bool, data []byte) bool {
		img := Image{Present: present}
		if present {
			img.Data = data
		}
		got, err := DecodeImage(EncodeImage(img))
		if err != nil {
			return false
		}
		if got.Present != img.Present {
			return false
		}
		return bytes.Equal(got.Data, img.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeImage(nil); err == nil {
		t.Fatalf("empty payload must fail to decode")
	}
}

func TestWriteThroughAliasing(t *testing.T) {
	// A Page view writes through to the underlying buffer, so buffer
	// copies (e.g. into the WAL) see record updates.
	p, buf := formatted(t, 256, 64)
	if err := p.Write(0, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	p2, err := View(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xEE {
		t.Fatalf("view does not alias the buffer")
	}
}
