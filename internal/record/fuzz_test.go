package record

import (
	"testing"

	"repro/internal/page"
)

// FuzzView interprets arbitrary bytes as a record page: View must either
// reject them or return a view whose every accessor stays in bounds.
func FuzzView(f *testing.F) {
	good := page.NewBuf(256)
	_ = Format(good, 32)
	f.Add([]byte(good))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 200, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := page.Buf(data)
		v, err := View(buf)
		if err != nil {
			return
		}
		for slot := -1; slot <= v.Slots(); slot++ {
			v.Used(slot)
			_, _ = v.Read(slot)
			_, _ = v.Snapshot(slot)
		}
		// A write into a valid slot must round trip.
		if v.Slots() > 0 {
			rec := make([]byte, v.RecordSize())
			rec[0] = 0x5A
			if err := v.Write(0, rec); err != nil {
				t.Fatalf("write to slot 0 of a valid view: %v", err)
			}
			got, err := v.Read(0)
			if err != nil || got[0] != 0x5A {
				t.Fatalf("read back: %v %v", got, err)
			}
		}
	})
}

// FuzzImageCodec round-trips arbitrary image payloads.
func FuzzImageCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeImage(data)
		if err != nil {
			return
		}
		re := EncodeImage(img)
		img2, err := DecodeImage(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if img2.Present != img.Present || string(img2.Data) != string(img.Data) {
			t.Fatalf("image codec not stable")
		}
	})
}
