package sim

import (
	"testing"

	"repro/rda"
)

// TestParityRotationBalancesDisks checks the point of rotated parity
// (Section 3.1: "the parity is rotated over the set of disks in order to
// avoid contention on the parity disk"): under a random update workload
// no disk serves wildly more transfers than the average, for both array
// organizations.
func TestParityRotationBalancesDisks(t *testing.T) {
	for _, layout := range []rda.Layout{rda.DataStriping, rda.ParityStriping} {
		cfg := rda.Config{
			DataDisks:    5,
			NumPages:     500,
			PageSize:     128,
			BufferFrames: 30,
			Layout:       layout,
			Logging:      rda.PageLogging,
			EOT:          rda.Force,
			RDA:          true,
		}
		db, err := rda.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(db, Workload{
			Concurrency:    4,
			PagesPerTx:     6,
			UpdateFraction: 1.0,
			UpdateProb:     1.0,
			AbortProb:      0,
			Communality:    0.1,
			Seed:           3,
		}, Options{Transfers: 30000})
		if err != nil {
			t.Fatal(err)
		}
		per := db.DiskTransfers()
		var total, max int64
		for _, x := range per {
			total += x
			if x > max {
				max = x
			}
		}
		mean := float64(total) / float64(len(per))
		if float64(max) > 1.6*mean {
			t.Fatalf("%v: hottest disk served %d transfers vs mean %.0f — parity not balanced: %v",
				layout, max, mean, per)
		}
	}
}
