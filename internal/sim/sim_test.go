package sim

import (
	"testing"

	"repro/rda"
)

func simConfig(logging rda.LoggingMode, eot rda.EOTDiscipline, useRDA bool) rda.Config {
	return rda.Config{
		DataDisks:    5,
		NumPages:     500,
		PageSize:     128,
		BufferFrames: 40,
		Layout:       rda.DataStriping,
		Logging:      logging,
		EOT:          eot,
		RDA:          useRDA,
		RecordSize:   32,
		LogPageSize:  512,
		LogWriteCost: 4,
	}
}

func defaultWorkload() Workload {
	return Workload{
		Concurrency:    4,
		PagesPerTx:     6,
		UpdateFraction: 0.8,
		UpdateProb:     0.9,
		AbortProb:      0.02,
		Communality:    0.5,
		Seed:           11,
	}
}

func TestRunCompletesAndCounts(t *testing.T) {
	for _, logging := range []rda.LoggingMode{rda.PageLogging, rda.RecordLogging} {
		db, err := rda.Open(simConfig(logging, rda.Force, true))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(db, defaultWorkload(), Options{Transfers: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed == 0 {
			t.Fatalf("%v: no transactions committed", logging)
		}
		if res.Transfers < 20000 {
			t.Fatalf("%v: run stopped before the budget: %d", logging, res.Transfers)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%v: throughput %v", logging, res.Throughput)
		}
		if err := db.VerifyParity(); err != nil {
			t.Fatalf("%v: %v", logging, err)
		}
	}
}

func TestRunWithCrashAtEnd(t *testing.T) {
	db, err := rda.Open(simConfig(rda.PageLogging, rda.NoForce, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(db, defaultWorkload(), Options{
		Transfers:          15000,
		CheckpointInterval: 4000,
		CrashAtEnd:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryTransfers <= 0 {
		t.Fatalf("crash recovery should cost transfers, got %d", res.RecoveryTransfers)
	}
	if res.Stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Stats.Recoveries)
	}
	if err := db.VerifyParity(); err != nil {
		t.Fatal(err)
	}
}

// TestCommunalityRealized checks that the C knob really controls the
// buffer hit ratio: a high-C run must observe a much higher hit rate
// than a low-C run.
func TestCommunalityRealized(t *testing.T) {
	hit := func(c float64) float64 {
		db, err := rda.Open(simConfig(rda.PageLogging, rda.Force, true))
		if err != nil {
			t.Fatal(err)
		}
		w := defaultWorkload()
		w.Communality = c
		res, err := Run(db, w, Options{Transfers: 15000})
		if err != nil {
			t.Fatal(err)
		}
		total := res.Stats.BufferHits + res.Stats.BufferMisses
		return float64(res.Stats.BufferHits) / float64(total)
	}
	low, high := hit(0.05), hit(0.9)
	if high < low+0.3 {
		t.Fatalf("hit ratios: C=0.05 → %.2f, C=0.9 → %.2f; communality not realized", low, high)
	}
}

// TestRDAReducesLogTrafficUnderLoad is the paper's headline effect on
// the live engine: with page logging and FORCE/TOC, enabling RDA must
// reduce log transfers and improve throughput for an identical workload.
func TestRDAReducesLogTrafficUnderLoad(t *testing.T) {
	run := func(useRDA bool) Result {
		db, err := rda.Open(simConfig(rda.PageLogging, rda.Force, useRDA))
		if err != nil {
			t.Fatal(err)
		}
		w := defaultWorkload()
		w.AbortProb = 0 // isolate the logging effect
		res, err := Run(db, w, Options{Transfers: 30000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	if with.Stats.LogWriteTransfers >= without.Stats.LogWriteTransfers {
		t.Fatalf("RDA log transfers %d, baseline %d: RDA must log less",
			with.Stats.LogWriteTransfers, without.Stats.LogWriteTransfers)
	}
	if with.Committed <= without.Committed {
		t.Fatalf("RDA committed %d, baseline %d: RDA must process more transactions per budget",
			with.Committed, without.Committed)
	}
}

func TestBadArgs(t *testing.T) {
	db, err := rda.Open(simConfig(rda.PageLogging, rda.Force, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, Workload{}, Options{Transfers: 100}); err == nil {
		t.Fatalf("zero workload must be rejected")
	}
	if _, err := Run(db, defaultWorkload(), Options{}); err == nil {
		t.Fatalf("zero budget must be rejected")
	}
}
