// Package sim drives the live engine with the synthetic workload of the
// paper's performance model (Section 5) and measures throughput in the
// model's own unit: transactions completed per availability interval of
// T page transfers.
//
// The workload is the model's: P concurrent transactions, each making s
// page requests; a fraction f_u are update transactions which modify
// each requested page with probability p_u; a request finds its page in
// the buffer with probability C (the communality, realized by actually
// re-referencing a buffer-resident page); a transaction aborts with
// probability p_b.  Optionally, action-consistent checkpoints are taken
// every CheckpointInterval transfers, and a system crash is injected at
// the end of the run so that recovery cost is part of the measured
// interval, exactly as the model's c_s term is.
//
// The driver is single-threaded and interleaves the P transactions round
// robin, which realizes the model's concurrency (page steals of
// uncommitted data, shared pages under record locking) without lock
// waits: a request that would block on another in-flight transaction is
// re-drawn, matching the model's assumption that the P transactions'
// working sets are effectively independent.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/record"
	"repro/rda"
)

// Workload mirrors the model's workload parameters.
type Workload struct {
	// Concurrency is P.
	Concurrency int
	// PagesPerTx is s.
	PagesPerTx int
	// UpdateFraction is f_u.
	UpdateFraction float64
	// UpdateProb is p_u.
	UpdateProb float64
	// AbortProb is p_b.
	AbortProb float64
	// Communality is C.
	Communality float64
	// Seed makes runs reproducible.
	Seed int64
}

// Options controls a measurement run.
type Options struct {
	// Transfers is the availability interval T: the run processes
	// transactions until this many page transfers have been consumed.
	Transfers int64
	// CheckpointInterval, when positive, takes an ACC checkpoint every
	// so many transfers (¬FORCE algorithms).
	CheckpointInterval int64
	// CrashAtEnd injects a crash when the budget is exhausted and runs
	// recovery, charging its transfers to the interval (the model's c_s).
	CrashAtEnd bool
}

// Result is a measurement.
type Result struct {
	// Committed is the number of transactions that committed within the
	// interval.
	Committed int64
	// Aborted counts aborted transactions (p_b rolls plus deadlocks).
	Aborted int64
	// Transfers is the page transfers consumed, including checkpoints
	// and, when requested, crash recovery.
	Transfers int64
	// RecoveryTransfers is the crash recovery share of Transfers.
	RecoveryTransfers int64
	// Throughput is Committed normalized to transactions per Transfers
	// of budget (directly comparable with the model's r_t when the run
	// used T transfers).
	Throughput float64
	// Stats is the engine's counter snapshot at the end of the run.
	Stats rda.Stats
}

// slot is one of the P concurrent transaction streams.
type slot struct {
	tx       *rda.Tx
	isUpdate bool
	refs     int // page requests made so far
	pages    map[rda.PageID]bool
}

// Run drives the workload until the transfer budget is exhausted.
func Run(db *rda.DB, w Workload, opts Options) (Result, error) {
	if w.Concurrency < 1 || w.PagesPerTx < 1 {
		return Result{}, fmt.Errorf("sim: bad workload %+v", w)
	}
	if opts.Transfers <= 0 {
		return Result{}, fmt.Errorf("sim: transfer budget must be positive")
	}
	r := rand.New(rand.NewSource(w.Seed))
	db.ResetStats()

	slots := make([]*slot, w.Concurrency)
	// inUse tracks pages referenced by open transactions so the single
	// threaded driver never blocks on a lock.
	inUse := make(map[rda.PageID]int)
	var res Result
	var lastCkpt int64

	transfers := func() int64 {
		s := db.Stats()
		return s.TotalTransfers()
	}

	newTx := func(s *slot) error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		s.tx = tx
		s.isUpdate = r.Float64() < w.UpdateFraction
		s.refs = 0
		s.pages = make(map[rda.PageID]bool)
		return nil
	}

	releaseSlot := func(s *slot) {
		for p := range s.pages {
			if inUse[p] > 0 {
				inUse[p]--
				if inUse[p] == 0 {
					delete(inUse, p)
				}
			}
		}
		s.tx = nil
	}

	pickPage := func(s *slot) (rda.PageID, bool) {
		// With probability C re-reference a buffer resident page; the
		// paper's communality is exactly the buffer hit probability.
		for attempt := 0; attempt < 32; attempt++ {
			var p rda.PageID
			if r.Float64() < w.Communality {
				resident := db.ResidentPages()
				if len(resident) == 0 {
					p = rda.PageID(r.Intn(db.NumPages()))
				} else {
					p = resident[r.Intn(len(resident))]
				}
			} else {
				p = rda.PageID(r.Intn(db.NumPages()))
			}
			if inUse[p] == 0 || s.pages[p] {
				return p, true
			}
		}
		return 0, false // everything contended; skip this step
	}

	for i := range slots {
		slots[i] = &slot{}
		if err := newTx(slots[i]); err != nil {
			return res, err
		}
	}

	buf := make([]byte, db.PageSize())
	recBuf := make([]byte, db.Config().RecordSize)
	recordMode := db.Config().Logging == rda.RecordLogging
	slotsPerPage := db.RecordsPerPage()

	for transfers() < opts.Transfers {
		if opts.CheckpointInterval > 0 && transfers()-lastCkpt >= opts.CheckpointInterval {
			if err := db.Checkpoint(); err != nil {
				return res, err
			}
			lastCkpt = transfers()
		}
		s := slots[r.Intn(len(slots))]
		if s.refs >= w.PagesPerTx {
			// EOT: abort with probability p_b, else commit.
			var err error
			if s.isUpdate && r.Float64() < w.AbortProb {
				err = s.tx.Abort()
				res.Aborted++
			} else {
				err = s.tx.Commit()
				res.Committed++
			}
			releaseSlot(s)
			if err != nil {
				return res, err
			}
			if err := newTx(s); err != nil {
				return res, err
			}
			continue
		}
		p, ok := pickPage(s)
		if !ok {
			continue
		}
		if !s.pages[p] {
			s.pages[p] = true
			inUse[p]++
		}
		s.refs++
		update := s.isUpdate && r.Float64() < w.UpdateProb
		var err error
		if recordMode {
			slotIdx := r.Intn(slotsPerPage)
			if update {
				r.Read(recBuf)
				err = s.tx.WriteRecord(p, slotIdx, recBuf)
			} else {
				_, err = s.tx.ReadRecord(p, slotIdx)
				if err != nil && isEmptySlotErr(err) {
					err = nil
				}
			}
		} else {
			if update {
				r.Read(buf)
				err = s.tx.WritePage(p, buf)
			} else {
				_, err = s.tx.ReadPage(p)
			}
		}
		if err != nil {
			return res, fmt.Errorf("sim: txn step: %w", err)
		}
	}

	// Close out the interval: abort nothing explicitly — a crash (if
	// requested) turns the open transactions into losers, exactly like
	// the model's interrupted transactions.
	if opts.CrashAtEnd {
		// The crash discards the buffer pool (and its counters); keep the
		// pre-crash buffer statistics for the report.
		preCrash := db.Stats()
		before := transfers()
		db.Crash()
		if _, err := db.Recover(); err != nil {
			return res, err
		}
		res.RecoveryTransfers = transfers() - before
		res.Stats = db.Stats()
		res.Stats.BufferHits = preCrash.BufferHits
		res.Stats.BufferMisses = preCrash.BufferMisses
		res.Stats.Steals = preCrash.Steals
		res.Transfers = transfers()
		res.Throughput = float64(res.Committed) * float64(opts.Transfers) / float64(res.Transfers)
		return res, nil
	} else {
		for _, s := range slots {
			if s.tx != nil {
				if err := s.tx.Abort(); err != nil {
					return res, err
				}
				releaseSlot(s)
			}
		}
	}

	res.Transfers = transfers()
	res.Stats = db.Stats()
	res.Throughput = float64(res.Committed) * float64(opts.Transfers) / float64(res.Transfers)
	return res, nil
}

func isEmptySlotErr(err error) bool {
	return errors.Is(err, record.ErrEmptySlot)
}
