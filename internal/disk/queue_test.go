package disk

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

const (
	qtBlocks    = 64
	qtBlockSize = 64
)

func queueDisk() *Disk { return New(0, qtBlocks, qtBlockSize) }

func payload(b byte) page.Buf {
	buf := make(page.Buf, qtBlockSize)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

// recorder is an injector that records the dequeue order of accesses.
type recorder struct {
	mu   sync.Mutex
	seen []Access
	// panicAt, when non-nil, panics with panicVal on the first matching
	// access (a crash point firing at dequeue time).
	panicAt  func(Access) bool
	panicVal any
}

func (r *recorder) Observe(a Access) Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.panicAt != nil && r.panicAt(a) {
		r.panicAt = nil
		return Decision{Panic: r.panicVal}
	}
	r.seen = append(r.seen, a)
	return Decision{}
}

func (r *recorder) indexOf(op Op, block int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, a := range r.seen {
		if a.Op == op && a.Block == block {
			return i
		}
	}
	return -1
}

// TestQueueStarvationBound floods the queue from several goroutines with
// random-block writes and asserts the aging rule's bound: no request is
// bypassed more than window+depth times before being served.
func TestQueueStarvationBound(t *testing.T) {
	const (
		depth   = 32
		window  = 8
		workers = 4
		perW    = 500
	)
	d := queueDisk()
	d.StartQueue(depth, window)
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		max int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				p := d.Submit(Request{Op: OpWrite, Block: rng.Intn(qtBlocks), Data: payload(byte(i)), Meta: Meta{}})
				if err := p.Err(); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if s := p.Skips(); s > 0 {
					mu.Lock()
					if s > max {
						max = s
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if max > window+depth {
		t.Fatalf("request bypassed %d times; starvation bound is window+depth = %d", max, window+depth)
	}
	d.StopQueue()
}

// TestQueueExactlyOnceCompletions submits a mixed concurrent load and
// asserts every request completes exactly once: completion count equals
// submissions, and the drive's charged transfer counters match.
func TestQueueExactlyOnceCompletions(t *testing.T) {
	const (
		depth   = 16
		workers = 8
		perW    = 250
	)
	d := queueDisk()
	d.StartQueue(depth, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perW; i++ {
				block := rng.Intn(qtBlocks)
				var p *Pending
				if rng.Intn(2) == 0 {
					p = d.Submit(Request{Op: OpWrite, Block: block, Data: payload(byte(i)), Meta: Meta{}})
				} else {
					p = d.Submit(Request{Op: OpRead, Block: block})
				}
				if err := p.Err(); err != nil {
					t.Errorf("io: %v", err)
					return
				}
				// A second Wait must observe the same completed result,
				// not a second execution.
				if err := p.Err(); err != nil {
					t.Errorf("re-wait: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(workers * perW)
	if got := d.Completions(); got != total {
		t.Fatalf("completions = %d, want %d", got, total)
	}
	st := d.Stats()
	if st.Reads+st.Writes != total {
		t.Fatalf("charged transfers = %d, want %d (each request exactly once)", st.Reads+st.Writes, total)
	}
	d.StopQueue()
}

// TestQueueDepthLimit holds the queue full with gated requests and
// asserts that the depth+1-th submission blocks until a slot frees.
func TestQueueDepthLimit(t *testing.T) {
	const depth = 4
	d := queueDisk()
	d.StartQueue(depth, 8)
	gate := make(chan struct{})
	var held []*Pending
	for i := 0; i < depth; i++ {
		held = append(held, d.Submit(Request{Op: OpWrite, Block: i, Data: payload(1), Meta: Meta{}, Gate: gate}))
	}
	if got := d.QueueLen(); got != depth {
		t.Fatalf("queue length = %d, want %d", got, depth)
	}
	extra := make(chan *Pending, 1)
	go func() {
		extra <- d.Submit(Request{Op: OpWrite, Block: depth, Data: payload(2), Meta: Meta{}})
	}()
	select {
	case <-extra:
		t.Fatal("submission beyond the depth limit did not block")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	p := <-extra
	if err := p.Err(); err != nil {
		t.Fatalf("unblocked write: %v", err)
	}
	for _, h := range held {
		if err := h.Err(); err != nil {
			t.Fatalf("gated write: %v", err)
		}
	}
	d.StopQueue()
}

// TestQueueFuzzDeterministic stages seeded random batches with dispatch
// frozen, thaws, and asserts two identical runs dispatch in the same
// order and leave identical platter contents.  Run under -race this is
// the Workers=1 determinism contract: a single submitting goroutine and
// a frozen-staged batch make the elevator's choices a pure function of
// the request set.
func TestQueueFuzzDeterministic(t *testing.T) {
	run := func(seed int64) ([]int64, []page.Buf) {
		d := queueDisk()
		d.StartQueue(128, 6)
		rng := rand.New(rand.NewSource(seed))
		var order []int64
		for batch := 0; batch < 20; batch++ {
			d.Freeze()
			n := 1 + rng.Intn(32)
			pending := make([]*Pending, 0, n)
			for i := 0; i < n; i++ {
				block := rng.Intn(qtBlocks)
				if rng.Intn(4) == 0 {
					pending = append(pending, d.Submit(Request{Op: OpRead, Block: block}))
				} else {
					pending = append(pending, d.Submit(Request{Op: OpWrite, Block: block, Data: payload(byte(rng.Intn(256))), Meta: Meta{}}))
				}
			}
			d.Thaw()
			for _, p := range pending {
				if err := p.Err(); err != nil {
					t.Fatalf("fuzz io: %v", err)
				}
				order = append(order, p.CompletionSeq())
			}
		}
		d.StopQueue()
		var blocks []page.Buf
		for b := 0; b < qtBlocks; b++ {
			buf, err := d.PeekData(b)
			if err != nil {
				t.Fatalf("peek: %v", err)
			}
			blocks = append(blocks, buf)
		}
		return order, blocks
	}
	for _, seed := range []int64{1, 7, 42} {
		o1, b1 := run(seed)
		o2, b2 := run(seed)
		if len(o1) != len(o2) {
			t.Fatalf("seed %d: run lengths differ: %d vs %d", seed, len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("seed %d: dispatch order diverged at request %d: seq %d vs %d", seed, i, o1[i], o2[i])
			}
		}
		for b := range b1 {
			if !b1[b].Equal(b2[b]) {
				t.Fatalf("seed %d: block %d contents diverged between identical runs", seed, b)
			}
		}
	}
}

// TestQueueGateOrdersWriteAfterForce is the write-ahead regression test:
// a data write gated on its log record's force must not be dequeued
// before the force completes, no matter how the elevator would otherwise
// order it.
func TestQueueGateOrdersWriteAfterForce(t *testing.T) {
	rec := &recorder{}
	d := queueDisk()
	d.SetInjector(rec)
	d.StartQueue(8, 8)
	force := make(chan struct{}) // closed when the "log force" completes
	d.Freeze()
	// The gated data write targets block 0 — the elevator's favourite
	// position from the initial head — so only the gate holds it back.
	gated := d.Submit(Request{Op: OpWrite, Block: 0, Data: payload(0xAA), Meta: Meta{}, Gate: force})
	others := []*Pending{
		d.Submit(Request{Op: OpWrite, Block: 9, Data: payload(1), Meta: Meta{}}),
		d.Submit(Request{Op: OpWrite, Block: 3, Data: payload(2), Meta: Meta{}}),
	}
	d.Thaw()
	for _, p := range others {
		if err := p.Err(); err != nil {
			t.Fatalf("ungated write: %v", err)
		}
	}
	if got := rec.indexOf(OpWrite, 0); got != -1 {
		t.Fatalf("gated data write was dequeued before its log force completed (observe index %d)", got)
	}
	close(force)
	if err := gated.Err(); err != nil {
		t.Fatalf("gated write: %v", err)
	}
	i0 := rec.indexOf(OpWrite, 0)
	if i0 < 0 {
		t.Fatal("gated write never observed")
	}
	for _, b := range []int{9, 3} {
		if ib := rec.indexOf(OpWrite, b); ib > i0 {
			t.Fatalf("gated write observed at %d before ungated write to block %d at %d", i0, b, ib)
		}
	}
	d.StopQueue()
}

// TestQueueBarrier asserts a barrier completes only after everything
// queued before it, and nothing queued after it is dispatched earlier.
func TestQueueBarrier(t *testing.T) {
	rec := &recorder{}
	d := queueDisk()
	d.SetInjector(rec)
	d.StartQueue(16, 8)
	d.Freeze()
	before := []*Pending{
		d.Submit(Request{Op: OpWrite, Block: 20, Data: payload(1), Meta: Meta{}}),
		d.Submit(Request{Op: OpWrite, Block: 10, Data: payload(2), Meta: Meta{}}),
	}
	bar := d.Barrier()
	after := []*Pending{
		// Block 11 sits between the pre-barrier blocks: without the
		// barrier the elevator would dispatch it among them.
		d.Submit(Request{Op: OpWrite, Block: 11, Data: payload(3), Meta: Meta{}}),
		d.Submit(Request{Op: OpWrite, Block: 1, Data: payload(4), Meta: Meta{}}),
	}
	d.Thaw()
	for _, p := range append(append([]*Pending{}, before...), after...) {
		if err := p.Err(); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if _, _, err := bar.Wait(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	barSeq := bar.CompletionSeq()
	for _, p := range before {
		if p.CompletionSeq() > barSeq {
			t.Fatalf("pre-barrier write completed after the barrier")
		}
	}
	for _, p := range after {
		if p.CompletionSeq() < barSeq {
			t.Fatalf("post-barrier write dispatched before the barrier")
		}
	}
	d.StopQueue()
}

// TestQueueCrashDrain injects a crash panic at dequeue time and asserts
// the sentinel reaches the submitter's Wait, the backlog completes with
// the same value without touching the platter, and ResetQueue restores
// service.
func TestQueueCrashDrain(t *testing.T) {
	sentinel := fmt.Errorf("crash sentinel")
	rec := &recorder{
		panicAt:  func(a Access) bool { return a.Op == OpWrite && a.Block == 5 },
		panicVal: sentinel,
	}
	d := queueDisk()
	d.SetInjector(rec)
	d.StartQueue(8, 8)
	d.Freeze()
	crash := d.Submit(Request{Op: OpWrite, Block: 5, Data: payload(1), Meta: Meta{}})
	// Backlog staged behind the crash point: higher blocks so the
	// elevator dispatches block 5 first from head position 0.
	backlog := []*Pending{
		d.Submit(Request{Op: OpWrite, Block: 30, Data: payload(2), Meta: Meta{}}),
		d.Submit(Request{Op: OpWrite, Block: 40, Data: payload(3), Meta: Meta{}}),
	}
	d.Thaw()
	waitPanic := func(p *Pending) (v any) {
		defer func() { v = recover() }()
		_, _, _ = p.Wait()
		return nil
	}
	if got := waitPanic(crash); got != sentinel {
		t.Fatalf("crash request: recovered %v, want the sentinel", got)
	}
	for i, p := range backlog {
		if got := waitPanic(p); got != sentinel {
			t.Fatalf("backlog request %d: recovered %v, want the crash sentinel", i, got)
		}
	}
	// No post-crash write reached the platter.
	for _, b := range []int{30, 40} {
		if rec.indexOf(OpWrite, b) != -1 {
			t.Fatalf("write to block %d executed after the crash", b)
		}
	}
	// A submission while crashed is poisoned too.
	if got := waitPanic(d.Submit(Request{Op: OpWrite, Block: 7, Data: payload(4), Meta: Meta{}})); got != sentinel {
		t.Fatalf("post-crash submit: recovered %v, want the crash sentinel", got)
	}
	d.ResetQueue()
	if err := d.Submit(Request{Op: OpWrite, Block: 7, Data: payload(5), Meta: Meta{}}).Err(); err != nil {
		t.Fatalf("write after ResetQueue: %v", err)
	}
	d.StopQueue()
}
