package disk

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/page"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(0, 8, 32)
	data := page.NewBuf(32)
	for i := range data {
		data[i] = byte(i)
	}
	meta := Meta{State: StateWorking, Timestamp: 7, Txn: 3, ChainPrev: 12, ChainSet: true}
	if err := d.Write(5, data, meta); err != nil {
		t.Fatal(err)
	}
	got, gotMeta, err := d.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(data) {
		t.Fatalf("data round trip failed")
	}
	if gotMeta != meta {
		t.Fatalf("meta round trip failed: got %+v want %+v", gotMeta, meta)
	}
}

func TestWriteCopiesBuffer(t *testing.T) {
	d := New(0, 2, 16)
	data := page.NewBuf(16)
	data[0] = 1
	if err := d.Write(0, data, Meta{}); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutating the caller's buffer must not affect the disk
	got, _, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("disk aliased caller buffer")
	}
}

func TestTransferAccounting(t *testing.T) {
	d := New(0, 4, 16)
	buf := page.NewBuf(16)
	for i := 0; i < 3; i++ {
		if err := d.Write(i, buf, Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, _, err := d.Read(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.WriteMeta(1, Meta{State: StateCommitted}); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Reads != 5 || s.Writes != 4 {
		t.Fatalf("stats = %+v, want 5 reads / 4 writes", s)
	}
	if s.Transfers() != 9 {
		t.Fatalf("Transfers() = %d, want 9", s.Transfers())
	}
	d.ResetStats()
	if d.Stats().Transfers() != 0 {
		t.Fatalf("ResetStats did not clear counters")
	}
}

func TestFailStop(t *testing.T) {
	d := New(3, 4, 16)
	if err := d.Write(0, page.NewBuf(16), Meta{}); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if !d.Failed() {
		t.Fatalf("disk should report failed")
	}
	if _, _, err := d.Read(0); !errors.Is(err, ErrFailed) {
		t.Fatalf("read after failure: err = %v, want ErrFailed", err)
	}
	if err := d.Write(0, page.NewBuf(16), Meta{}); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after failure: err = %v, want ErrFailed", err)
	}
	d.Repair()
	got, meta, err := d.Read(0)
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	if !got.IsZero() || meta != (Meta{}) {
		t.Fatalf("repaired disk must come back zeroed")
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(0, 2, 16)
	if _, _, err := d.Read(2); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := d.Write(-1, page.NewBuf(16), Meta{}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestBadSize(t *testing.T) {
	d := New(0, 2, 16)
	if err := d.Write(0, page.NewBuf(15), Meta{}); !errors.Is(err, page.ErrBadSize) {
		t.Fatalf("err = %v, want ErrBadSize", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	d := New(0, 2, 16)
	buf := page.NewBuf(16)
	buf[0] = 0x42
	if err := d.Write(0, buf, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Corrupt(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(0); !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	// A rewrite heals the block.
	if err := d.Write(0, buf, Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Read(0); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

func TestPeekDoesNotCharge(t *testing.T) {
	d := New(0, 2, 16)
	if _, err := d.PeekData(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PeekMeta(0); err != nil {
		t.Fatal(err)
	}
	if d.Stats().Transfers() != 0 {
		t.Fatalf("Peek must not charge transfers")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(0, 16, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := page.NewBuf(32)
			buf[0] = byte(g)
			for i := 0; i < 100; i++ {
				if err := d.Write(g%16, buf, Meta{Txn: page.TxID(g)}); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := d.Read(g % 16); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := d.Stats().Transfers(); got != 8*100*2 {
		t.Fatalf("transfers = %d, want %d", got, 8*100*2)
	}
}

func TestReadMeta(t *testing.T) {
	d := New(0, 4, 16)
	meta := Meta{State: StateWorking, Timestamp: 9, Txn: 2, DirtyPage: 7}
	if err := d.Write(1, page.NewBuf(16), meta); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadMeta(1)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("ReadMeta = %+v, want %+v", got, meta)
	}
	// Header reads are charged like block reads.
	if d.Stats().Reads != 1 {
		t.Fatalf("reads = %d, want 1", d.Stats().Reads)
	}
	if _, err := d.ReadMeta(99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	d.Fail()
	if _, err := d.ReadMeta(1); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestWriteMetaAndCorruptBounds(t *testing.T) {
	d := New(0, 2, 16)
	if err := d.WriteMeta(5, Meta{}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := d.Corrupt(5); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	d.Fail()
	if err := d.WriteMeta(0, Meta{}); !errors.Is(err, ErrFailed) {
		t.Fatalf("err = %v, want ErrFailed", err)
	}
}

func TestParityStateString(t *testing.T) {
	for s, want := range map[ParityState]string{
		StateNone: "none", StateCommitted: "committed", StateObsolete: "obsolete",
		StateWorking: "working", StateInvalid: "invalid", ParityState(99): "ParityState(99)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
