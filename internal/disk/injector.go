package disk

import "fmt"

// Op classifies a block I/O for fault injection.
type Op uint8

// The four charged block operations a disk serves.
const (
	// OpRead is a full block read (payload + header).
	OpRead Op = iota
	// OpWrite is a full block write (payload + header).
	OpWrite
	// OpReadMeta is a header-only read.
	OpReadMeta
	// OpWriteMeta is a header-only write.
	OpWriteMeta
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpReadMeta:
		return "readmeta"
	case OpWriteMeta:
		return "writemeta"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// IsWrite reports whether the operation persists state (OpWrite or
// OpWriteMeta) — the events a crash-point schedule counts.
func (o Op) IsWrite() bool { return o == OpWrite || o == OpWriteMeta }

// Access identifies one block I/O about to be performed.
type Access struct {
	// Disk is the drive's identifier within its array.
	Disk int
	// Block is the block number on that drive.
	Block int
	// Op is the operation class.
	Op Op
}

// String implements fmt.Stringer.
func (a Access) String() string {
	return fmt.Sprintf("%s disk %d block %d", a.Op, a.Disk, a.Block)
}

// Decision tells the disk how to carry out — or subvert — one block I/O.
// The zero value means "proceed normally".
type Decision struct {
	// Err, when non-nil, aborts the operation with this error before any
	// state changes (a transient I/O error: the block is untouched).
	Err error
	// FailDisk fail-stops the drive before the operation, which then
	// returns ErrFailed like every subsequent I/O until Repair.
	FailDisk bool
	// Torn applies to OpWrite only: the out-of-band header persists but
	// only half of the payload does (TornHead selects which half), and the
	// stored checksum is left stale so subsequent reads return
	// ErrChecksum.  Models a power failure in the middle of the sector
	// transfer; Panic is normally set alongside it.
	Torn     bool
	TornHead bool
	// FlipBit, on OpWrite, flips payload bit FlipBitOffset (byte
	// FlipBitOffset/8, bit FlipBitOffset%8, modulo the block size) after
	// the write completes, without updating the checksum — silent
	// corruption for scrub tests.
	FlipBit       bool
	FlipBitOffset int
	// LostWrite, on OpWrite, acknowledges the write without persisting
	// anything: the old block contents survive, internally consistent.
	// The transfer is still charged (the drive believes it happened).
	LostWrite bool
	// Redirect, on OpWrite, lands the whole sector — payload, header and
	// location stamp — at block RedirectBlock (modulo the disk size) on
	// the same drive instead of the addressed block.  The stamp keeps the
	// intended position, so reads of the victim surface ErrStamp.
	Redirect      bool
	RedirectBlock int
	// Panic, when non-nil, is panicked with: before the operation applies
	// (a clean crash between block writes), or after the torn mutation
	// when Torn is set.  The harness recovers the sentinel.
	Panic any
}

// Injector observes every charged block I/O of a disk and returns a
// Decision.  It is invoked with the disk's mutex held, so implementations
// must not call back into the disk; panicking is safe (the disk's
// deferred unlock runs).
type Injector interface {
	Observe(a Access) Decision
}

// SetInjector installs (or, with nil, removes) the disk's fault injector.
func (d *Disk) SetInjector(inj Injector) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inj = inj
}

// observe consults the injector, applying a fail-stop decision
// immediately.  Must be called with d.mu held.
func (d *Disk) observe(blockNum int, op Op) Decision {
	if d.inj == nil {
		return Decision{}
	}
	dec := d.inj.Observe(Access{Disk: d.id, Block: blockNum, Op: op})
	if dec.FailDisk {
		d.failed = true
	}
	return dec
}
