// Per-drive request queue and elevator scheduler.
//
// By default every Disk I/O executes synchronously on the caller's
// goroutine — the deterministic mode that replayable crash-point
// schedules require.  StartQueue switches the drive to pipelined mode:
// up to `depth` requests sit in a queue that a per-drive scheduler
// goroutine drains in elevator (LOOK) order over block addresses, the
// NCQ-style reordering real drives perform.  The configured service time
// (SetLatency) is charged per dequeued transfer, exactly as in
// synchronous mode, and the fault injector observes each transfer at
// dequeue time — so crash schedules count *dequeued* writes, the order
// the platter actually sees.
//
// Correctness properties the scheduler maintains:
//
//   - Starvation bound: a request bypassed more than `window` times is
//     served next (FIFO among the overdue).  window=0 degenerates to
//     strict FIFO — no reordering at all.
//   - Same-block FIFO: two queued requests for one block complete in
//     submission order (the engine's group latches already prevent such
//     conflicts; the queue preserves the property anyway).
//   - Barriers: a Barrier request completes only after everything queued
//     before it, and nothing queued after it is dispatched earlier.
//   - Gates: a Request with a Gate channel stays in the queue, ineligible
//     for dispatch, until the channel closes.  The engine gates data and
//     parity writes on the force of the WAL records that cover them, so
//     the write-ahead rule survives reordering.
//   - Crash drain: when a fault-injection crash panics out of a dequeued
//     request, the machine is off — the backlog and all later submissions
//     complete immediately with the same panic value, never touching the
//     platter, until ResetQueue (called from the engine's crash entry
//     point) clears the state for recovery.
//
// The scheduler goroutine is lazy: it starts on the first queued request
// and exits when the queue drains, so an idle engine holds no goroutines
// (the DB type has no Close and must not leak).
package disk

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/page"
)

// Request describes one block I/O handed to a drive's queue.
type Request struct {
	Op    Op
	Block int
	// Data is the payload for OpWrite.
	Data page.Buf
	// Meta is the header for OpWrite and OpWriteMeta.
	Meta Meta
	// Gate, when non-nil, holds the request in the queue, ineligible for
	// dispatch, until the channel is closed (the queue's write-ahead
	// barrier: a data write gated on its log force cannot be reordered in
	// front of it).  The channel must eventually close; the gate's closer
	// must not itself wait on this drive's queue capacity.
	Gate <-chan struct{}
}

// Pending is the completion handle of a submitted request.
type Pending struct {
	op    Op
	block int
	data  page.Buf
	meta  Meta

	// Scheduler bookkeeping, guarded by the queue mutex until done.
	gateOpen bool
	barrier  bool
	skips    int

	done     chan struct{}
	seq      int64 // drive-local completion sequence number
	resData  page.Buf
	resMeta  Meta
	err      error
	panicked any
}

// Wait blocks until the request completes and returns its results.  If
// execution panicked inside the scheduler goroutine (fault-injection
// crash points fire at dequeue time), Wait re-panics with the same value
// on the caller's goroutine, so crash harnesses recover it exactly as
// they would from a synchronous disk call.
func (p *Pending) Wait() (page.Buf, Meta, error) {
	<-p.done
	if p.panicked != nil {
		panic(p.panicked)
	}
	return p.resData, p.resMeta, p.err
}

// Err waits for completion and returns only the error (the write-shaped
// half of Wait).
func (p *Pending) Err() error {
	_, _, err := p.Wait()
	return err
}

// Skips returns how many times the scheduler bypassed this request
// before serving it.  Valid once the request has completed; the property
// tests assert the starvation bound with it.
func (p *Pending) Skips() int {
	<-p.done
	return p.skips
}

// CompletionSeq returns the drive-local completion sequence number,
// assigned in dispatch-completion order.  Valid once the request has
// completed.
func (p *Pending) CompletionSeq() int64 {
	<-p.done
	return p.seq
}

// queue is the per-drive scheduler state, embedded in Disk.
type queue struct {
	// on is the synchronous/pipelined mode switch, read lock-free on the
	// I/O fast path.
	on atomic.Bool

	mu   sync.Mutex
	cond *sync.Cond
	// depth bounds the number of queued requests; Submit blocks when the
	// queue is full.
	depth int
	// window is the starvation bound: a request bypassed more than this
	// many times is served next.
	window int
	// items holds queued requests in submission (FIFO) order.
	items   []*Pending
	running bool // scheduler goroutine live
	pos     int  // elevator head position (last dispatched block)
	dir     int  // elevator direction: +1 ascending, -1 descending
	// crashed, when non-nil, is the panic value that escaped a dequeued
	// request; the queue completes everything with it until ResetQueue.
	crashed any
	// frozen pauses dispatch (requests still enqueue) so a batch can be
	// staged atomically; Thaw releases the scheduler over the full set.
	frozen      bool
	seq         int64 // next completion sequence number
	completions int64 // total completions (exactly-once accounting)
}

// StartQueue switches the drive to pipelined mode with the given queue
// depth and reordering window.  depth < 1 is clamped to 1; window < 0 to
// 0 (strict FIFO).  Safe to call on an idle drive only.
func (d *Disk) StartQueue(depth, window int) {
	if depth < 1 {
		depth = 1
	}
	if window < 0 {
		window = 0
	}
	q := &d.q
	q.mu.Lock()
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
	q.depth = depth
	q.window = window
	if q.dir == 0 {
		q.dir = 1
	}
	q.mu.Unlock()
	q.on.Store(true)
}

// StopQueue drains the queue and returns the drive to synchronous mode.
func (d *Disk) StopQueue() {
	q := &d.q
	q.on.Store(false)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cond == nil {
		return
	}
	for q.running || len(q.items) > 0 {
		q.cond.Wait()
	}
	q.depth = 0
}

// QueueEnabled reports whether the drive is in pipelined mode.
func (d *Disk) QueueEnabled() bool { return d.q.on.Load() }

// ResetQueue clears the crash-drain state after the engine's crash entry
// point has quiesced all I/O, so recovery can use the drive again.
func (d *Disk) ResetQueue() {
	q := &d.q
	q.mu.Lock()
	q.crashed = nil
	if q.cond != nil {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// Freeze pauses dispatch: queued and newly submitted requests are held
// until Thaw, which releases the scheduler over the whole staged set at
// once.  With a single submitting goroutine this makes the dispatch
// sequence a pure function of the staged requests — the determinism
// contract the seeded scheduler fuzz asserts.
func (d *Disk) Freeze() {
	d.q.mu.Lock()
	d.q.frozen = true
	d.q.mu.Unlock()
}

// Thaw resumes dispatch after Freeze.
func (d *Disk) Thaw() {
	q := &d.q
	q.mu.Lock()
	q.frozen = false
	if q.cond != nil {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// QueueLen returns the number of requests currently queued (excluding
// the one being executed).  Test instrumentation.
func (d *Disk) QueueLen() int {
	d.q.mu.Lock()
	defer d.q.mu.Unlock()
	return len(d.q.items)
}

// Completions returns how many queued requests have completed, poisoned
// ones included.  Test instrumentation for the exactly-once property.
func (d *Disk) Completions() int64 {
	d.q.mu.Lock()
	defer d.q.mu.Unlock()
	return d.q.completions
}

// Submit hands a request to the drive.  In synchronous mode it executes
// inline on the caller's goroutine (after waiting on the gate, if any)
// and the returned handle is already complete.  In pipelined mode it
// enqueues, blocking while the queue is at its depth limit, and the
// request executes on the scheduler goroutine.
func (d *Disk) Submit(r Request) *Pending {
	p := &Pending{op: r.Op, block: r.Block, data: r.Data, meta: r.Meta, done: make(chan struct{})}
	if !d.q.on.Load() {
		if r.Gate != nil {
			<-r.Gate
		}
		d.execInto(p) // panics propagate on the caller's goroutine
		close(p.done)
		return p
	}
	q := &d.q
	q.mu.Lock()
	for q.crashed == nil && q.depth > 0 && len(q.items) >= q.depth {
		q.cond.Wait()
	}
	if q.crashed != nil {
		d.completeLocked(p, q.crashed)
		q.mu.Unlock()
		return p
	}
	if q.depth == 0 {
		// The queue was stopped while we waited for a slot: run inline.
		q.mu.Unlock()
		if r.Gate != nil {
			<-r.Gate
		}
		d.execInto(p)
		close(p.done)
		return p
	}
	p.gateOpen = r.Gate == nil
	q.items = append(q.items, p)
	if !q.running {
		q.running = true
		go d.schedule()
	}
	if r.Gate != nil {
		gate := r.Gate
		go func() {
			<-gate
			q.mu.Lock()
			p.gateOpen = true
			q.cond.Broadcast()
			q.mu.Unlock()
		}()
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	return p
}

// Barrier submits a marker that completes only after every request
// queued before it has completed, and that no later request may be
// dispatched ahead of.  It carries no I/O, charges no transfer, and does
// not count against the depth limit.  In synchronous mode the returned
// handle is already complete (the caller's program order is the
// barrier).
func (d *Disk) Barrier() *Pending {
	p := &Pending{barrier: true, gateOpen: true, done: make(chan struct{})}
	if !d.q.on.Load() {
		close(p.done)
		return p
	}
	q := &d.q
	q.mu.Lock()
	if q.crashed != nil {
		d.completeLocked(p, q.crashed)
		q.mu.Unlock()
		return p
	}
	q.items = append(q.items, p)
	if !q.running {
		q.running = true
		go d.schedule()
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	return p
}

// completeLocked finishes p with the given panic value.  Queue mutex
// held.
func (d *Disk) completeLocked(p *Pending, panicked any) {
	q := &d.q
	p.panicked = panicked
	p.seq = q.seq
	q.seq++
	q.completions++
	close(p.done)
}

// schedule is the per-drive scheduler goroutine.  It exits when the
// queue drains; a later Submit restarts it.
func (d *Disk) schedule() {
	q := &d.q
	q.mu.Lock()
	for {
		if q.crashed != nil && len(q.items) > 0 {
			// A crash panic escaped a dequeued request: the machine is
			// off.  The backlog completes with the same panic value
			// without touching the platter.
			for _, p := range q.items {
				d.completeLocked(p, q.crashed)
			}
			q.items = q.items[:0]
			q.cond.Broadcast()
		}
		if len(q.items) == 0 {
			q.running = false
			q.cond.Broadcast()
			q.mu.Unlock()
			return
		}
		if q.frozen {
			q.cond.Wait()
			continue
		}
		idx := q.pick()
		if idx < 0 {
			// Every candidate is gated; wait for a gate to open, a new
			// arrival, or a crash.
			q.cond.Wait()
			continue
		}
		p := q.items[idx]
		for i := 0; i < idx; i++ {
			q.items[i].skips++
		}
		q.items = append(q.items[:idx], q.items[idx+1:]...)
		q.cond.Broadcast() // a depth slot freed
		if p.barrier {
			p.seq = q.seq
			q.seq++
			q.completions++
			close(p.done)
			continue
		}
		q.pos = p.block
		q.mu.Unlock()
		d.execRecover(p)
		q.mu.Lock()
		if p.panicked != nil && q.crashed == nil {
			q.crashed = p.panicked
		}
		p.seq = q.seq
		q.seq++
		q.completions++
		close(p.done)
	}
}

// pick selects the queue index to dispatch next, or -1 when every
// candidate is gated.  Priority order: a barrier at the head; then the
// oldest request bypassed more than the window allows (FIFO among the
// overdue); then LOOK elevator order over block addresses, continuing in
// the current direction and reversing only when nothing remains ahead.
// Requests behind the first barrier are not candidates.  Queue mutex
// held; len(q.items) > 0.
func (q *queue) pick() int {
	if q.items[0].barrier {
		return 0
	}
	end := len(q.items)
	for i, p := range q.items {
		if p.barrier {
			end = i
			break
		}
	}
	for i := 0; i < end; i++ {
		p := q.items[i]
		if p.gateOpen && p.skips >= q.window {
			return i
		}
	}
	best := -1
	dir := q.dir
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < end; i++ {
			p := q.items[i]
			if !p.gateOpen {
				continue
			}
			if dir > 0 {
				if p.block < q.pos {
					continue
				}
				if best < 0 || p.block < q.items[best].block {
					best = i
				}
			} else {
				if p.block > q.pos {
					continue
				}
				if best < 0 || p.block > q.items[best].block {
					best = i
				}
			}
		}
		if best >= 0 {
			q.dir = dir
			return best
		}
		dir = -dir
	}
	return -1
}

// execInto runs the request synchronously, filling in its results.
// Panics (fault-injection crash points) propagate to the caller.
func (d *Disk) execInto(p *Pending) {
	switch p.op {
	case OpRead:
		p.resData, p.resMeta, p.err = d.execRead(p.block)
	case OpWrite:
		p.err = d.execWrite(p.block, p.data, p.meta)
	case OpReadMeta:
		p.resMeta, p.err = d.execReadMeta(p.block)
	case OpWriteMeta:
		p.err = d.execWriteMeta(p.block, p.meta)
	default:
		p.err = fmt.Errorf("disk %d: unknown op %v", d.id, p.op)
	}
}

// execRecover runs the request on the scheduler goroutine, capturing a
// panic into the handle so Wait can re-raise it on the submitter's
// goroutine.
func (d *Disk) execRecover(p *Pending) {
	defer func() {
		if r := recover(); r != nil {
			p.panicked = r
		}
	}()
	d.execInto(p)
}
