// Package disk simulates the individual drives of a redundant disk array.
//
// Each simulated disk is an array of fixed-size blocks.  A block carries a
// small out-of-band header (Meta) in addition to its data payload,
// modelling the per-sector header area that storage systems of the paper's
// era used for exactly the bookkeeping the paper requires: the twin parity
// pages store a timestamp and a state in their header (Section 4.2), and
// pages written back without UNDO logging carry a log-chain pointer in
// their header (Section 4.3, after TWIST [13]).  Keeping the header out of
// band keeps the XOR parity algebra over the data payload exact.
//
// The disk counts every block read and write.  The paper's performance
// model measures all costs in units of page transfers, so these counters
// are the ground truth for every measured experiment in the repository.
//
// Disks support fail-stop failure injection (Fail/Repair) for the media
// recovery experiments, plus optional corruption injection for checksum
// tests.  Writes of a single block are atomic, matching the standard
// assumption of the recovery literature the paper builds on.
package disk

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// Common error values returned by the simulated disk.
var (
	// ErrFailed reports an I/O against a disk that has suffered a
	// fail-stop failure.
	ErrFailed = errors.New("disk: drive has failed")
	// ErrOutOfRange reports a block number beyond the end of the disk.
	ErrOutOfRange = errors.New("disk: block number out of range")
	// ErrChecksum reports that a block's stored checksum does not match
	// its contents (injected corruption).
	ErrChecksum = errors.New("disk: block checksum mismatch")
	// ErrTransient reports a transient I/O error: the block is untouched
	// and an immediate retry may succeed.  The fault plane injects it;
	// the array's retry layer is responsible for masking it.
	ErrTransient = errors.New("disk: transient I/O error")
	// ErrStamp reports that a block's self-describing location stamp
	// names a different array position than the one read: the sector was
	// written for another LBA (a misdirected write landed here).
	ErrStamp = errors.New("disk: block location stamp mismatch")
	// ErrLostWrite reports that a block's contents differ from the last
	// write the drive acknowledged for it.  The disk itself cannot tell —
	// the stored checksum is self-consistent — so this error is produced
	// by the array's NVRAM write ledger (see diskarray).
	ErrLostWrite = errors.New("disk: block does not match last acknowledged write")
)

// IsTransient reports whether err is a transient, retryable I/O error.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsCorrupt reports whether err is one of the silent-corruption classes a
// verified read detects: a checksum mismatch (bit rot, torn write), a
// location stamp mismatch (misdirected write) or a write-ledger mismatch
// (lost or misdirected write).  Every one of them means the block's
// stored bytes must not be trusted and the page should be reconstructed
// from group redundancy.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrChecksum) || errors.Is(err, ErrStamp) || errors.Is(err, ErrLostWrite)
}

// ParityState is the lifecycle state of a twin parity page, stored in the
// block header (Figure 8 of the paper).  Data blocks leave it at
// StateNone.
type ParityState uint8

// Parity page states from Figure 8, plus StateNone for data blocks.
const (
	StateNone      ParityState = iota // not a parity page
	StateCommitted                    // holds the last committed parity
	StateObsolete                     // holds out-of-date parity
	StateWorking                      // updated by a still-active transaction
	StateInvalid                      // updated by a transaction that aborted
)

// String implements fmt.Stringer.
func (s ParityState) String() string {
	switch s {
	case StateNone:
		return "none"
	case StateCommitted:
		return "committed"
	case StateObsolete:
		return "obsolete"
	case StateWorking:
		return "working"
	case StateInvalid:
		return "invalid"
	default:
		return fmt.Sprintf("ParityState(%d)", uint8(s))
	}
}

// Meta is the out-of-band block header.
//
// For twin parity blocks it stores the Figure 8 state, the timestamp that
// the Current_Parity algorithm (Figure 7) compares, and the transaction
// that last wrote the block.  For data blocks written back without UNDO
// logging it stores the log-chain pointer: the previous page stolen by the
// same transaction (Section 4.3).
type Meta struct {
	// State is the twin parity lifecycle state; StateNone on data blocks.
	State ParityState
	// Timestamp orders parity versions (Figure 7).  Zero means "never
	// written" and always loses the Current_Parity comparison.
	Timestamp page.Timestamp
	// Txn is the transaction that last wrote this block.
	Txn page.TxID
	// ChainPrev is the page previously stolen without UNDO logging by the
	// same transaction, or page.InvalidPage at the head of the chain.
	ChainPrev page.PageID
	// ChainSet marks whether this block currently participates in a log
	// chain.
	ChainSet bool
	// DirtyPage, on a working parity page, is the data page whose
	// no-UNDO-logging write the working parity covers.  The paper keeps
	// this "log N bits" page number in the main-memory Dirty_Set
	// (Section 4.1); mirroring it into the parity header — written in the
	// same transfer anyway — lets crash recovery locate the page to undo
	// with the same header scan that rebuilds the current-parity bitmap.
	DirtyPage page.PageID
	// PairedSet, on a committed parity twin, marks that DirtyPage names
	// the data page whose small-write flip produced this parity version
	// and that the paired data write carries this header's Timestamp —
	// the same log-N-bits trick as above, reused so a *degraded* restart
	// (one data page unreadable, parity unverifiable by recomputation)
	// can tell whether the flip's data write reached disk before the
	// crash.  A broken pair means the parity ran ahead of the data and
	// the other twin still describes the on-disk contents.
	PairedSet bool
}

// Stats counts the I/O traffic a disk has served.
type Stats struct {
	Reads  int64 // block reads
	Writes int64 // block writes
}

// Transfers returns total page transfers (reads + writes), the unit of
// the paper's cost model.
func (s Stats) Transfers() int64 { return s.Reads + s.Writes }

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
}

type block struct {
	data []byte
	meta Meta
	sum  uint32
	// stamp is the self-describing location stamp, written out of band
	// with the header: the array position the sector was intended for.
	// A read whose stamp does not match the addressed position surfaces
	// ErrStamp — the signature of a misdirected write.
	stamp page.Stamp
	bad   bool // corruption injected
}

// Disk is one simulated drive.  It is safe for concurrent use.
type Disk struct {
	mu        sync.Mutex
	id        int
	blockSize int
	blocks    []block
	failed    bool
	stats     Stats
	// inj, when non-nil, observes every charged I/O and may subvert it
	// (see Injector).
	inj Injector
	// latency (ns), when non-zero, is the simulated service time of one
	// charged block transfer, slept while the drive's mutex is held — a
	// single-spindle drive serves one transfer at a time, so queued
	// requests to the same disk serialize while transfers on OTHER disks
	// of the array overlap in wall-clock time.  That makes wall-clock
	// throughput reflect how much array parallelism the caller actually
	// achieves (zero for tests; benchmarks opt in).  In pipelined mode
	// the sleep happens when the scheduler dequeues the transfer.
	latency atomic.Int64
	// q is the drive's request queue (see queue.go); disabled by default.
	q queue
}

// New creates a disk with the given identifier, number of blocks and block
// size.  All blocks start zeroed with empty metadata.
func New(id, numBlocks, blockSize int) *Disk {
	if numBlocks <= 0 || blockSize <= 0 {
		panic("disk: non-positive geometry")
	}
	d := &Disk{id: id, blockSize: blockSize, blocks: make([]block, numBlocks)}
	for i := range d.blocks {
		d.blocks[i].data = make([]byte, blockSize)
		d.blocks[i].sum = page.Buf(d.blocks[i].data).Checksum()
		d.blocks[i].stamp = page.MakeStamp(id, i)
	}
	return d
}

// ID returns the disk's identifier within its array.
func (d *Disk) ID() int { return d.id }

// NumBlocks returns the number of blocks on the disk.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// BlockSize returns the size in bytes of each block.
func (d *Disk) BlockSize() int { return d.blockSize }

// SetLatency sets the simulated service time of one block transfer (0
// disables, the default).  Concurrency-safe; takes effect on the next
// transfer.
func (d *Disk) SetLatency(lat time.Duration) { d.latency.Store(int64(lat)) }

// serviceTime sleeps the configured per-transfer latency.  Called with
// d.mu held (see the latency field).
func (d *Disk) serviceTime() {
	if lat := d.latency.Load(); lat > 0 {
		time.Sleep(time.Duration(lat))
	}
}

// Read returns a copy of the block's data and its metadata, charging one
// page transfer.  In pipelined mode (StartQueue) the request goes
// through the drive's queue; otherwise it executes synchronously.
func (d *Disk) Read(blockNum int) (page.Buf, Meta, error) {
	if d.q.on.Load() {
		return d.Submit(Request{Op: OpRead, Block: blockNum}).Wait()
	}
	return d.execRead(blockNum)
}

func (d *Disk) execRead(blockNum int) (page.Buf, Meta, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.serviceTime()
	dec := d.observe(blockNum, OpRead)
	if d.failed {
		return nil, Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrFailed)
	}
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return nil, Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	if dec.Err != nil {
		return nil, Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, dec.Err)
	}
	if dec.Panic != nil {
		panic(dec.Panic)
	}
	d.stats.Reads++
	b := &d.blocks[blockNum]
	if b.bad || page.Buf(b.data).Checksum() != b.sum {
		return nil, Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrChecksum)
	}
	if !b.stamp.Matches(d.id, blockNum) {
		return nil, Meta{}, fmt.Errorf("disk %d block %d: carries %v: %w", d.id, blockNum, b.stamp, ErrStamp)
	}
	return page.Buf(b.data).Clone(), b.meta, nil
}

// Write atomically replaces the block's data and metadata, charging one
// page transfer.  In pipelined mode the request goes through the drive's
// queue; otherwise it executes synchronously.
func (d *Disk) Write(blockNum int, data page.Buf, meta Meta) error {
	if d.q.on.Load() {
		return d.Submit(Request{Op: OpWrite, Block: blockNum, Data: data, Meta: meta}).Err()
	}
	return d.execWrite(blockNum, data, meta)
}

func (d *Disk) execWrite(blockNum int, data page.Buf, meta Meta) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.serviceTime()
	dec := d.observe(blockNum, OpWrite)
	if d.failed {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrFailed)
	}
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	if len(data) != d.blockSize {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, page.ErrBadSize)
	}
	if dec.Err != nil {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, dec.Err)
	}
	if dec.Panic != nil && !dec.Torn {
		// Power fails before the sector reaches the platter: the old
		// contents survive intact.
		panic(dec.Panic)
	}
	d.stats.Writes++
	if dec.LostWrite {
		// The drive acknowledges the write but the sector never reaches
		// the platter: the old contents — payload, header and stamp —
		// survive untouched and remain internally consistent, so the
		// disk's own checksum cannot tell.  Only the array's write ledger
		// exposes the loss.
		return nil
	}
	b := &d.blocks[blockNum]
	if dec.Redirect {
		// The whole sector lands at the wrong LBA on the same drive:
		// payload, header and stamp all overwrite the victim block, while
		// the intended block keeps its stale contents.  The stamp still
		// names the *intended* position, which is what makes the
		// misdirection detectable when the victim is read; the stale
		// intended block is the write ledger's job.
		victim := dec.RedirectBlock % len(d.blocks)
		if victim < 0 {
			victim += len(d.blocks)
		}
		b = &d.blocks[victim]
	}
	if dec.Torn {
		// The header travels out of band and persists; only half of the
		// payload does.  The stored checksum stays stale, so reads return
		// ErrChecksum until the block is repaired from redundancy.
		b.meta = meta
		half := d.blockSize / 2
		if dec.TornHead {
			copy(b.data[:half], data[:half])
		} else {
			copy(b.data[half:], data[half:])
		}
		b.bad = true
		if dec.Panic != nil {
			panic(dec.Panic)
		}
		return nil
	}
	copy(b.data, data)
	b.meta = meta
	b.sum = page.Buf(b.data).Checksum()
	b.stamp = page.MakeStamp(d.id, blockNum)
	b.bad = false
	if dec.FlipBit {
		bit := dec.FlipBitOffset % (d.blockSize * 8)
		if bit < 0 {
			bit += d.blockSize * 8
		}
		b.data[bit/8] ^= 1 << (bit % 8)
		b.bad = true
	}
	return nil
}

// ReadMeta reads only the block's out-of-band metadata, charging one page
// transfer (on the paper's hardware the header travels with the sector,
// so a header read costs a full rotation just like a block read).
func (d *Disk) ReadMeta(blockNum int) (Meta, error) {
	if d.q.on.Load() {
		_, meta, err := d.Submit(Request{Op: OpReadMeta, Block: blockNum}).Wait()
		return meta, err
	}
	return d.execReadMeta(blockNum)
}

func (d *Disk) execReadMeta(blockNum int) (Meta, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.serviceTime()
	dec := d.observe(blockNum, OpReadMeta)
	if d.failed {
		return Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrFailed)
	}
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	if dec.Err != nil {
		return Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, dec.Err)
	}
	if dec.Panic != nil {
		panic(dec.Panic)
	}
	d.stats.Reads++
	return d.blocks[blockNum].meta, nil
}

// WriteMeta rewrites only the block's out-of-band metadata (used to commit
// or invalidate a twin parity page without rewriting its payload).  It
// still charges one page transfer: on the paper's hardware the header
// travels with the sector.
func (d *Disk) WriteMeta(blockNum int, meta Meta) error {
	if d.q.on.Load() {
		return d.Submit(Request{Op: OpWriteMeta, Block: blockNum, Meta: meta}).Err()
	}
	return d.execWriteMeta(blockNum, meta)
}

func (d *Disk) execWriteMeta(blockNum int, meta Meta) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.serviceTime()
	dec := d.observe(blockNum, OpWriteMeta)
	if d.failed {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrFailed)
	}
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	if dec.Err != nil {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, dec.Err)
	}
	if dec.Panic != nil {
		// A header write is a single out-of-band transfer: a crash before
		// it leaves the old header intact.
		panic(dec.Panic)
	}
	d.stats.Writes++
	d.blocks[blockNum].meta = meta
	return nil
}

// Fail injects a fail-stop failure: every subsequent I/O returns ErrFailed
// and, as on a real head crash, the stored contents become unavailable.
func (d *Disk) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Repair replaces the failed drive with a fresh, zeroed one (contents are
// NOT restored; that is the array's media recovery job).
func (d *Disk) Repair() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.blocks {
		d.blocks[i].data = make([]byte, d.blockSize)
		d.blocks[i].meta = Meta{}
		d.blocks[i].sum = page.Buf(d.blocks[i].data).Checksum()
		d.blocks[i].stamp = page.MakeStamp(d.id, i)
		d.blocks[i].bad = false
	}
	d.failed = false
}

// Failed reports whether the disk is currently failed.
func (d *Disk) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Corrupt flips a bit in the stored block without updating its checksum,
// modelling a latent sector error for checksum-path tests.
func (d *Disk) Corrupt(blockNum int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	d.blocks[blockNum].data[0] ^= 0x80
	d.blocks[blockNum].bad = true
	return nil
}

// Stats returns a snapshot of the disk's I/O counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters (used between measurement phases).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// PeekMeta returns the block metadata without charging a transfer.  It is
// a debugging/verification aid for tests and the array-layout dumper and
// must not be used on any measured code path.
func (d *Disk) PeekMeta(blockNum int) (Meta, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return Meta{}, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	return d.blocks[blockNum].meta, nil
}

// PeekData returns a copy of the block payload without charging a
// transfer.  Verification aid only, as PeekMeta.
func (d *Disk) PeekData(blockNum int) (page.Buf, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if blockNum < 0 || blockNum >= len(d.blocks) {
		return nil, fmt.Errorf("disk %d block %d: %w", d.id, blockNum, ErrOutOfRange)
	}
	return page.Buf(d.blocks[blockNum].data).Clone(), nil
}
