// Package lock implements a strict two-phase locking manager with shared
// and exclusive modes, page or record granularity, lock upgrades and
// waits-for deadlock detection.
//
// The paper assumes conventional locking underneath both granularities it
// analyzes — page locking for the page logging algorithms (Section 5.2,
// footnote 9: "the use of page locking along with UNDO logging implies
// that the sets of pages modified by concurrent transactions are
// disjoint") and record locking for the record logging algorithms
// (Section 5.3, where concurrent transactions may share pages, the
// appendix's s_u analysis).  RDA recovery itself "does not affect the
// degree of concurrency or interfere with the locking policy used in the
// system" (Section 4.1), which this package preserves: it knows nothing
// about parity groups.
package lock

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/page"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// Resource names a lockable object: a whole page (Slot == PageGranule) or
// one record within a page.
type Resource struct {
	Page page.PageID
	Slot int32
}

// PageGranule is the Slot value that addresses the whole page.
const PageGranule int32 = -1

// PageResource returns the page-granularity resource for p.
func PageResource(p page.PageID) Resource { return Resource{Page: p, Slot: PageGranule} }

// RecordResource returns the record-granularity resource for (p, slot).
func RecordResource(p page.PageID, slot int) Resource {
	return Resource{Page: p, Slot: int32(slot)}
}

// String implements fmt.Stringer.
func (r Resource) String() string {
	if r.Slot == PageGranule {
		return fmt.Sprintf("page %d", r.Page)
	}
	return fmt.Sprintf("record %d.%d", r.Page, r.Slot)
}

// ErrDeadlock is returned to a requester chosen as deadlock victim.  The
// engine reacts by aborting the transaction, which the paper's model
// folds into the abort probability p_b.
var ErrDeadlock = errors.New("lock: deadlock detected")

// ErrClosed is returned when the manager has been shut down (system
// crash); waiters must abandon their requests.
var ErrClosed = errors.New("lock: manager closed")

type lockState struct {
	holders map[page.TxID]Mode
	// waiters in FIFO order.
	queue []*waiter
}

type waiter struct {
	tx   page.TxID
	mode Mode
	// granted or aborted is signalled through ch.
	ch chan error
}

// Manager is the lock manager.  It is safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	locks map[Resource]*lockState
	// waitsFor[a] = set of transactions a is waiting on.
	waitsFor map[page.TxID]map[page.TxID]struct{}
	closed   bool
}

// New creates an empty lock manager.
func New() *Manager {
	return &Manager{
		locks:    make(map[Resource]*lockState),
		waitsFor: make(map[page.TxID]map[page.TxID]struct{}),
	}
}

// compatible reports whether a new request of mode m by tx can be granted
// given the current holders.
func compatible(st *lockState, tx page.TxID, m Mode) bool {
	for holder, hm := range st.holders {
		if holder == tx {
			continue // own lock: upgrade handled by caller
		}
		if m == Exclusive || hm == Exclusive {
			return false
		}
	}
	return true
}

// Acquire blocks until tx holds res in at least the requested mode.  A
// Shared request by a transaction already holding Exclusive is a no-op; a
// request for a mode already held is a no-op; Exclusive over an own
// Shared lock is an upgrade.  Returns ErrDeadlock if granting would be
// deadlock-prone and tx is chosen as the victim, or ErrClosed if the
// manager shuts down while waiting.
func (m *Manager) Acquire(tx page.TxID, res Resource, mode Mode) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	st := m.locks[res]
	if st == nil {
		st = &lockState{holders: make(map[page.TxID]Mode)}
		m.locks[res] = st
	}
	if held, ok := st.holders[tx]; ok && (held == Exclusive || held == mode) {
		m.mu.Unlock()
		return nil
	}
	// Grant immediately when compatible and no earlier waiter would be
	// starved by a conflicting grant (upgrades jump the queue, as usual).
	_, upgrading := st.holders[tx]
	if compatible(st, tx, mode) && (upgrading || len(st.queue) == 0) {
		st.holders[tx] = mode
		m.mu.Unlock()
		return nil
	}
	// Must wait: record the waits-for edges and check for a cycle.
	w := &waiter{tx: tx, mode: mode, ch: make(chan error, 1)}
	blockers := make(map[page.TxID]struct{})
	for holder := range st.holders {
		if holder != tx {
			blockers[holder] = struct{}{}
		}
	}
	for _, qw := range st.queue {
		if qw.tx != tx {
			blockers[qw.tx] = struct{}{}
		}
	}
	m.waitsFor[tx] = blockers
	if m.cycleFrom(tx) {
		delete(m.waitsFor, tx)
		m.mu.Unlock()
		return fmt.Errorf("%w: txn %d on %s", ErrDeadlock, tx, res)
	}
	st.queue = append(st.queue, w)
	m.mu.Unlock()

	err := <-w.ch
	return err
}

// cycleFrom reports whether the waits-for graph contains a cycle
// reachable from start.
func (m *Manager) cycleFrom(start page.TxID) bool {
	seen := make(map[page.TxID]bool)
	var visit func(tx page.TxID) bool
	visit = func(tx page.TxID) bool {
		if tx == start && len(seen) > 0 {
			return true
		}
		if seen[tx] {
			return false
		}
		seen[tx] = true
		for next := range m.waitsFor[tx] {
			if visit(next) {
				return true
			}
		}
		return false
	}
	for next := range m.waitsFor[start] {
		seen[start] = true
		if visit(next) {
			return true
		}
	}
	return false
}

// ReleaseAll releases every lock held or requested by tx and wakes any
// waiters that become grantable.  Strict 2PL: the engine calls this only
// at EOT (commit or completed abort).
func (m *Manager) ReleaseAll(tx page.TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitsFor, tx)
	for res, st := range m.locks {
		delete(st.holders, tx)
		for i := 0; i < len(st.queue); {
			if st.queue[i].tx == tx {
				w := st.queue[i]
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				w.ch <- ErrClosed // cancelled; the txn is going away anyway
				continue
			}
			i++
		}
		m.wake(res, st)
		if len(st.holders) == 0 && len(st.queue) == 0 {
			delete(m.locks, res)
		}
	}
}

// wake grants queued requests in FIFO order while they remain compatible.
func (m *Manager) wake(res Resource, st *lockState) {
	for len(st.queue) > 0 {
		w := st.queue[0]
		if !compatible(st, w.tx, w.mode) {
			return
		}
		st.queue = st.queue[1:]
		st.holders[w.tx] = w.mode
		// The waiter no longer waits on anyone.
		delete(m.waitsFor, w.tx)
		// Other waiters' blocker sets may reference w.tx as a waiter; the
		// sets are rebuilt lazily on each Acquire, and cycle checks only
		// ever over-approximate briefly, which is safe (spurious victim
		// at worst).
		w.ch <- nil
	}
}

// Close shuts the manager down (system crash): all waiters receive
// ErrClosed and all state is dropped.
func (m *Manager) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for _, st := range m.locks {
		for _, w := range st.queue {
			w.ch <- ErrClosed
		}
		st.queue = nil
	}
	m.locks = make(map[Resource]*lockState)
	m.waitsFor = make(map[page.TxID]map[page.TxID]struct{})
}

// Holds reports whether tx currently holds res in at least the given
// mode.
func (m *Manager) Holds(tx page.TxID, res Resource, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.locks[res]
	if st == nil {
		return false
	}
	held, ok := st.holders[tx]
	if !ok {
		return false
	}
	return held == Exclusive || held == mode
}

// HeldResources returns every resource tx holds (unspecified order);
// testing and debugging aid.
func (m *Manager) HeldResources(tx page.TxID) []Resource {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Resource
	for res, st := range m.locks {
		if _, ok := st.holders[tx]; ok {
			out = append(out, res)
		}
	}
	return out
}
