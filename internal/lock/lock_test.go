package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

func TestSharedCompatibility(t *testing.T) {
	m := New()
	res := PageResource(1)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, res, Shared) || !m.Holds(2, res, Shared) {
		t.Fatalf("both readers should hold the lock")
	}
}

func TestExclusiveBlocksAndWakes(t *testing.T) {
	m := New()
	res := PageResource(1)
	if err := m.Acquire(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, res, Exclusive) }()
	select {
	case <-done:
		t.Fatalf("conflicting X request must block")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("woken waiter got error: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatalf("waiter never woke up")
	}
	if !m.Holds(2, res, Exclusive) {
		t.Fatalf("txn 2 should now hold X")
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := New()
	res := PageResource(3)
	for i := 0; i < 3; i++ {
		if err := m.Acquire(1, res, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	// Shared request under an own X lock is also a no-op.
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, res, Exclusive) {
		t.Fatalf("X lock lost")
	}
}

func TestUpgrade(t *testing.T) {
	m := New()
	res := PageResource(4)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, res, Exclusive) {
		t.Fatalf("upgrade failed")
	}
}

func TestUpgradeDeadlockDetected(t *testing.T) {
	// The classic upgrade deadlock: two readers both request X.  One of
	// them must be told ErrDeadlock rather than waiting forever.
	m := New()
	res := PageResource(5)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, res, Shared); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- m.Acquire(1, res, Exclusive) }()
	time.Sleep(20 * time.Millisecond) // let txn 1 enqueue
	err := m.Acquire(2, res, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second upgrader: err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(2)
	if err := <-first; err != nil {
		t.Fatalf("surviving upgrader got %v", err)
	}
}

func TestTwoResourceDeadlock(t *testing.T) {
	m := New()
	a, b := PageResource(10), PageResource(11)
	if err := m.Acquire(1, a, Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, b, Exclusive); err != nil {
		t.Fatal(err)
	}
	block := make(chan error, 1)
	go func() { block <- m.Acquire(1, b, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(2, a, Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim aborts; survivor proceeds.
	m.ReleaseAll(2)
	if err := <-block; err != nil {
		t.Fatalf("survivor got %v", err)
	}
}

func TestRecordGranularityIndependent(t *testing.T) {
	m := New()
	// Two records of the same page lock independently.
	if err := m.Acquire(1, RecordResource(7, 0), Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, RecordResource(7, 1), Exclusive); err != nil {
		t.Fatal(err)
	}
	// But the same record conflicts.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, RecordResource(7, 0), Shared) }()
	select {
	case <-done:
		t.Fatalf("conflicting record lock must block")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFIFONoStarvation(t *testing.T) {
	// A shared request arriving after a queued exclusive request must not
	// jump the queue.
	m := New()
	res := PageResource(20)
	if err := m.Acquire(1, res, Shared); err != nil {
		t.Fatal(err)
	}
	xDone := make(chan error, 1)
	go func() { xDone <- m.Acquire(2, res, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	sDone := make(chan error, 1)
	go func() { sDone <- m.Acquire(3, res, Shared) }()
	select {
	case <-sDone:
		t.Fatalf("late shared request must queue behind the exclusive waiter")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-xDone; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-sDone; err != nil {
		t.Fatal(err)
	}
}

func TestCloseWakesWaiters(t *testing.T) {
	m := New()
	res := PageResource(30)
	if err := m.Acquire(1, res, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, res, Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	m.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := m.Acquire(3, res, Shared); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: err = %v, want ErrClosed", err)
	}
}

func TestHeldResources(t *testing.T) {
	m := New()
	if err := m.Acquire(1, PageResource(1), Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, RecordResource(2, 3), Exclusive); err != nil {
		t.Fatal(err)
	}
	if got := len(m.HeldResources(1)); got != 2 {
		t.Fatalf("held %d resources, want 2", got)
	}
	m.ReleaseAll(1)
	if got := len(m.HeldResources(1)); got != 0 {
		t.Fatalf("held %d resources after release, want 0", got)
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines acquire two random page locks in order (no
	// deadlock possible) and release; everything must terminate.
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tx := page.TxID(g + 1)
			for i := 0; i < 50; i++ {
				a := page.PageID((g + i) % 5)
				b := a + 1
				if err := m.Acquire(tx, PageResource(a), Shared); err != nil {
					t.Error(err)
					return
				}
				if err := m.Acquire(tx, PageResource(b), Exclusive); err != nil && !errors.Is(err, ErrDeadlock) {
					t.Error(err)
					return
				}
				m.ReleaseAll(tx)
			}
		}(g)
	}
	wg.Wait()
}
