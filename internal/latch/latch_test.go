package latch

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/page"
)

func TestAscendingOrderEnforced(t *testing.T) {
	tab := New(8)
	h := tab.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(3)
	defer func() {
		if recover() == nil {
			t.Fatalf("blocking acquire of a lower group while holding a higher one must panic")
		}
	}()
	h.Acquire(1)
}

func TestReacquireHeldGroupIsNoop(t *testing.T) {
	tab := New(4)
	h := tab.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(2)
	h.Acquire(2) // held set filters it: no self-deadlock, no panic
	if got := h.Groups(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("held set after re-acquire: %v, want [2]", got)
	}
	h.Acquire(2, 3) // mixed request: 2 skipped, 3 taken in order
	if !h.Holds(3) {
		t.Fatalf("mixed re-acquire dropped the new group")
	}
}

func TestMultiAcquireSortsAndDedups(t *testing.T) {
	tab := New(16)
	h := tab.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(7, 2, 11, 2, 7)
	want := []page.GroupID{2, 7, 11}
	got := h.Groups()
	if len(got) != len(want) {
		t.Fatalf("held %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("held %v, want %v", got, want)
		}
	}
	// Acquiring a superset skips the held ones and stays ordered.
	h.Acquire(12, 11, 15)
	if !h.Holds(12) || !h.Holds(15) || !h.Holds(2) {
		t.Fatalf("superset acquire lost groups: %v", h.Groups())
	}
}

func TestTryAcquireOutOfOrder(t *testing.T) {
	tab := New(8)
	h := tab.NewHeld()
	defer h.ReleaseAll()
	h.Acquire(5)
	if !h.TryAcquire(1) {
		t.Fatalf("TryAcquire of a free lower group must succeed")
	}
	if !h.Holds(1) || !h.Holds(5) {
		t.Fatalf("held set wrong: %v", h.Groups())
	}
	if h.TryAcquire(5) {
		t.Fatalf("TryAcquire of an already-held group must fail, not self-deadlock")
	}
	h.Release(1)
	if h.Holds(1) {
		t.Fatalf("Release(1) did not remove the group")
	}
	// Another operation can now take group 1 without blocking.
	h2 := tab.NewHeld()
	defer h2.ReleaseAll()
	if !h2.TryAcquire(1) {
		t.Fatalf("released latch still held")
	}
}

func TestTryAcquireContended(t *testing.T) {
	tab := New(4)
	h1 := tab.NewHeld()
	h1.Acquire(2)
	h2 := tab.NewHeld()
	if h2.TryAcquire(2) {
		t.Fatalf("TryAcquire of a latch held by another operation must fail")
	}
	h1.ReleaseAll()
	if !h2.TryAcquire(2) {
		t.Fatalf("TryAcquire after release must succeed")
	}
	h2.ReleaseAll()
}

// TestNoLeakAfterPanic models a fault-injection crash point firing while
// an operation holds latches: the deferred ReleaseAll must leave the
// table fully unlocked.
func TestNoLeakAfterPanic(t *testing.T) {
	tab := New(8)
	func() {
		defer func() { recover() }()
		h := tab.NewHeld()
		defer h.ReleaseAll()
		h.Acquire(1, 3, 6)
		h.TryAcquire(0)
		panic("injected crash point")
	}()
	// Every latch must be free again: a fresh operation can block-acquire
	// the whole table.
	done := make(chan struct{})
	go func() {
		h := tab.NewHeld()
		h.Acquire(0, 1, 2, 3, 4, 5, 6, 7)
		h.ReleaseAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("latch leaked after panic: table not fully acquirable")
	}
}

// TestReleaseAllIdempotent: double release must not unlock latches the
// operation no longer holds (which would corrupt another holder).
func TestReleaseAllIdempotent(t *testing.T) {
	tab := New(4)
	h := tab.NewHeld()
	h.Acquire(1)
	h.ReleaseAll()
	h.ReleaseAll() // must be a no-op
	h.Release(1)   // ditto
	h2 := tab.NewHeld()
	h2.Acquire(1) // must not find a poisoned mutex
	// If the double release had unlocked an unheld mutex, h3 could now
	// acquire group 1 concurrently with h2.
	h3 := tab.NewHeld()
	if h3.TryAcquire(1) {
		t.Fatalf("double release broke mutual exclusion")
	}
	h2.ReleaseAll()
}

// TestConcurrentStress drives many goroutines through random latch
// protocols and checks mutual exclusion (at most one holder per group)
// and progress (no lost wakeups: every goroutine finishes).
func TestConcurrentStress(t *testing.T) {
	const (
		goroutines = 8
		iterations = 3000
		numGroups  = 12
	)
	tab := New(numGroups)
	inCrit := make([]int32, numGroups) // guarded by the latch under test
	var wg sync.WaitGroup
	var violations atomic.Int64
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				h := tab.NewHeld()
				n := 1 + rng.Intn(3)
				set := make([]page.GroupID, n)
				for j := range set {
					set[j] = page.GroupID(rng.Intn(numGroups))
				}
				h.Acquire(set...)
				// Occasionally grab an out-of-order extra via TryAcquire.
				if rng.Intn(4) == 0 {
					h.TryAcquire(page.GroupID(rng.Intn(numGroups)))
				}
				for _, g := range h.Groups() {
					inCrit[g]++
					if inCrit[g] != 1 {
						violations.Add(1)
					}
				}
				for _, g := range h.Groups() {
					inCrit[g]--
				}
				h.ReleaseAll()
			}
		}(int64(w) * 7919)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stress did not finish: deadlock or lost wakeup")
	}
	if n := violations.Load(); n != 0 {
		t.Fatalf("mutual exclusion violated %d times", n)
	}
}
