// Package latch implements the engine's per-parity-group latch table.
//
// The paper's array organizations make parity groups independent units of
// both serving and recovery: a small write touches one data block and one
// parity twin of a single group, a no-log steal consumes one group's
// redundancy, and a group's twin flip at commit involves no other group.
// The latch table turns that independence into concurrency — operations
// on disjoint groups run truly in parallel, while operations on the same
// group serialize for the duration of one protocol step (read, small
// write, steal, demotion, flip).
//
// Latches are short-term physical locks, distinct from the lock manager's
// transaction-duration 2PL locks and from the engine's stop-the-world
// recovery gate; see DESIGN.md ("The latching hierarchy").
//
// Deadlock freedom is by ordering: an operation that blocks for several
// latches must acquire them in ascending group order, and the table
// enforces this with an always-on assertion (the latches are the
// innermost blocking locks in the engine, so the check is cheap relative
// to the protected work).  The one consumer that cannot respect the
// order — buffer eviction, which runs while a latch of the *fetching*
// page's group is already held and targets an arbitrary victim group —
// uses TryAcquire, which never blocks and is therefore exempt.
package latch

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/page"
)

// Table is a fixed-size table of per-group latches.
type Table struct {
	mus []sync.Mutex
}

// New creates a table with one latch per parity group.
func New(numGroups int) *Table {
	if numGroups <= 0 {
		panic("latch: table needs at least one group")
	}
	return &Table{mus: make([]sync.Mutex, numGroups)}
}

// NumGroups returns the number of latches in the table.
func (t *Table) NumGroups() int { return len(t.mus) }

func (t *Table) check(g page.GroupID) {
	if int(g) < 0 || int(g) >= len(t.mus) {
		panic(fmt.Sprintf("latch: group %d out of range [0,%d)", g, len(t.mus)))
	}
}

// Held tracks the set of group latches one operation currently holds.
// It is used by a single goroutine; releasing is idempotent so a deferred
// ReleaseAll unwinds cleanly even when a fault-injection panic cuts the
// operation mid-protocol.
type Held struct {
	t *Table
	// groups is the held set in ascending order.
	groups []page.GroupID
}

// NewHeld returns an empty held-set for one operation.
func (t *Table) NewHeld() *Held { return &Held{t: t} }

// Holds reports whether group g's latch is in the held set.
func (h *Held) Holds(g page.GroupID) bool {
	i := sort.Search(len(h.groups), func(i int) bool { return h.groups[i] >= g })
	return i < len(h.groups) && h.groups[i] == g
}

// Groups returns the held set in ascending order (shared slice; callers
// must not modify it).
func (h *Held) Groups() []page.GroupID { return h.groups }

func (h *Held) insert(g page.GroupID) {
	i := sort.Search(len(h.groups), func(i int) bool { return h.groups[i] >= g })
	h.groups = append(h.groups, 0)
	copy(h.groups[i+1:], h.groups[i:])
	h.groups[i] = g
}

// Acquire blocks until every listed group's latch is held.  Groups
// already in the held set are skipped.  The new groups are taken in
// ascending order, and — the lock-order assertion — every one of them
// must be greater than the maximum group already held: a blocking
// acquisition below or equal to a held latch could form a cycle with
// another operation doing the same in the opposite order.  Out-of-order
// acquisition must use TryAcquire instead.
func (h *Held) Acquire(groups ...page.GroupID) {
	want := make([]page.GroupID, 0, len(groups))
	for _, g := range groups {
		h.t.check(g)
		if !h.Holds(g) {
			want = append(want, g)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i, g := range want {
		if i > 0 && want[i-1] == g {
			continue // duplicate in the request
		}
		if n := len(h.groups); n > 0 && g <= h.groups[n-1] {
			panic(fmt.Sprintf("latch: out-of-order blocking acquire of group %d while holding %v", g, h.groups))
		}
		h.t.mus[g].Lock()
		h.insert(g)
	}
}

// TryAcquire attempts to latch group g without blocking and reports
// whether it succeeded.  It is exempt from the ascending-order rule —
// a failed attempt leaves nothing held, so it cannot participate in a
// deadlock cycle — and fails (rather than self-deadlocking) when g is
// already in the held set.
func (h *Held) TryAcquire(g page.GroupID) bool {
	h.t.check(g)
	if h.Holds(g) {
		return false
	}
	if !h.t.mus[g].TryLock() {
		return false
	}
	h.insert(g)
	return true
}

// Release unlatches group g.  Releasing a group that is not held is a
// no-op, so deferred cleanup composes with explicit early release.
func (h *Held) Release(g page.GroupID) {
	i := sort.Search(len(h.groups), func(i int) bool { return h.groups[i] >= g })
	if i >= len(h.groups) || h.groups[i] != g {
		return
	}
	h.groups = append(h.groups[:i], h.groups[i+1:]...)
	h.t.mus[g].Unlock()
}

// ReleaseAll unlatches every held group.  Idempotent; meant to be
// deferred at operation entry so fault-injection panics unwind cleanly.
func (h *Held) ReleaseAll() {
	for _, g := range h.groups {
		h.t.mus[g].Unlock()
	}
	h.groups = h.groups[:0]
}
