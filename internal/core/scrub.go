package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// ScrubReport summarizes a parity scrub pass.
type ScrubReport struct {
	// GroupsScanned is the number of parity groups examined.
	GroupsScanned int
	// GroupsSkipped is the number of groups left for a later pass because
	// they were dirty or degraded at the time (online scrubbing only).
	GroupsSkipped int
	// LatentErrors is the number of blocks whose stored contents no
	// longer passed verification (checksum, location stamp or write
	// ledger) — latent silent corruption.
	LatentErrors int
	// Repaired is the number of blocks rebuilt from group redundancy.
	Repaired int
	// ParityRewritten counts parity pages recomputed because they no
	// longer matched their group's data.
	ParityRewritten int
	// RepairedPages lists the data pages whose platter contents were
	// rewritten, so callers can invalidate exactly the buffer frames that
	// went stale (parity rewrites are invisible to the buffer pool).
	RepairedPages []page.PageID
}

// GroupScrub is the outcome of scrubbing a single parity group.
type GroupScrub struct {
	// Skipped reports that the group was not verified: it was dirty (a
	// no-log steal is in flight and the twin views are in motion) or
	// degraded (its redundancy is already consumed by a dead disk).  The
	// online scrubber retries it on the next cycle.
	Skipped bool
	// LatentErrors, Repaired and ParityRewritten are as in ScrubReport.
	LatentErrors    int
	Repaired        int
	ParityRewritten int
	// RepairedPages lists data pages rewritten on the platter.
	RepairedPages []page.PageID
}

// Scrub walks every parity group, verifying that each valid parity page
// equals the XOR of its data pages and that every block still passes
// end-to-end verification.  Latent silent corruption — checksum rot,
// misdirected writes, lost writes — is repaired from the group's
// surviving redundancy; mismatched parity is recomputed.
//
// Scrub requires a quiesced store: no parity group may be dirty
// (scrubbing would not know which twin view to repair toward).  Online,
// incremental scrubbing of a live store goes through ScrubGroup, which
// skips in-motion groups instead.  This is the paper's "background
// process that runs during the idle periods of the system" (Section 4.2)
// extended from bitmap reconstruction to full redundancy verification.
func (s *Store) Scrub() (*ScrubReport, error) {
	if s.Dirty != nil && s.Dirty.Len() > 0 {
		return nil, fmt.Errorf("core: scrub requires a quiesced store (%d dirty groups)", s.Dirty.Len())
	}
	rep := &ScrubReport{}
	for g := 0; g < s.Arr.NumGroups(); g++ {
		res, err := s.ScrubGroup(page.GroupID(g))
		rep.merge(res)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// merge folds one group's scrub outcome into the pass report.
func (rep *ScrubReport) merge(res GroupScrub) {
	if res.Skipped {
		rep.GroupsSkipped++
		return
	}
	rep.GroupsScanned++
	rep.LatentErrors += res.LatentErrors
	rep.Repaired += res.Repaired
	rep.ParityRewritten += res.ParityRewritten
	rep.RepairedPages = append(rep.RepairedPages, res.RepairedPages...)
}

// ScrubGroup verifies and repairs one parity group, the unit of work of
// the online scrubber.  A dirty or degraded group is skipped (not an
// error — it is retried on the next scrub cycle); everything else is
// verified end to end and silently corrupt blocks are rewritten from the
// group's redundancy.  Two corrupt blocks in one group exceed
// single-parity XOR and return ErrUnrecoverableCorruption.
//
// Repairs restore block headers: a rebuilt data page named by the
// parity's committed-flip pairing gets the pairing timestamp back (so a
// later degraded restart does not mistake the completed flip for a
// broken one), and a repaired current parity twin keeps its persisted
// header when only the payload rotted (checksum failure) or gets a fresh
// committed header when the header itself is untrustworthy (misdirected
// or lost write).
func (s *Store) ScrubGroup(g page.GroupID) (GroupScrub, error) {
	var res GroupScrub
	if s.GroupDegraded(g) {
		res.Skipped = true
		return res, nil
	}
	if s.Dirty != nil {
		if _, dirty := s.Dirty.Lookup(g); dirty {
			res.Skipped = true
			return res, nil
		}
	}

	pages := s.Arr.GroupPages(g)
	data := make([]page.Buf, len(pages))
	bad := -1
	for i, p := range pages {
		b, _, err := s.Arr.ReadData(p)
		switch {
		case err == nil:
			data[i] = b
		case disk.IsCorrupt(err):
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			if bad >= 0 {
				s.deg.unrecoverable.Add(1)
				return res, fmt.Errorf("core: group %d has two corrupt data blocks (%v): %w", g, err, ErrUnrecoverableCorruption)
			}
			bad = i
		default:
			return res, fmt.Errorf("core: scrub group %d: %w", g, err)
		}
	}

	twin := s.currentTwin(g)
	parity, pMeta, perr := s.Arr.ReadParity(g, twin)
	if perr != nil {
		if !disk.IsCorrupt(perr) {
			return res, fmt.Errorf("core: scrub group %d parity: %w", g, perr)
		}
		res.LatentErrors++
		s.deg.corruptDetected.Add(1)
	}

	switch {
	case bad >= 0 && perr != nil:
		s.deg.unrecoverable.Add(1)
		return res, fmt.Errorf("core: group %d lost both a data block and its parity (%v): %w", g, perr, ErrUnrecoverableCorruption)
	case bad >= 0:
		// Rebuild the corrupt data block from parity + survivors,
		// restoring a flip-pairing header if the parity names this page.
		survivors := [][]byte{parity}
		for i, b := range data {
			if i != bad {
				survivors = append(survivors, b)
			}
		}
		meta := disk.Meta{}
		if pMeta.PairedSet && pMeta.DirtyPage == pages[bad] {
			meta = disk.Meta{Timestamp: pMeta.Timestamp}
		}
		rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
		if err := s.Arr.WriteData(pages[bad], rebuilt, meta); err != nil {
			return res, fmt.Errorf("core: scrub repair page %d: %w", pages[bad], err)
		}
		res.Repaired++
		res.RepairedPages = append(res.RepairedPages, pages[bad])
		s.deg.scrubRepairs.Add(1)
		data[bad] = rebuilt
	case perr != nil:
		// Rebuild the corrupt parity page from the data.  The persisted
		// header survives a payload-only checksum failure; a misdirected
		// or lost write leaves an untrustworthy header, so synthesize a
		// fresh committed one (the group is clean here).
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if errors.Is(perr, disk.ErrChecksum) {
			if m, merr := s.Arr.PeekParityMeta(g, twin); merr == nil {
				meta = m
			}
		}
		if err := s.recomputeParityFrom(g, twin, data, meta); err != nil {
			return res, err
		}
		res.Repaired++
		s.deg.scrubRepairs.Add(1)
		s.deg.scrubbedGroups.Add(1)
		return res, nil
	}

	// Verify parity correctness and rewrite if stale.
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	if !xorparity.Verify(parity, raw...) {
		if err := s.recomputeParityFrom(g, twin, data, pMeta); err != nil {
			return res, err
		}
		res.ParityRewritten++
	}

	// The obsolete twin of a twinned array is also checked for latent
	// errors; its contents are free to rewrite (it is obsolete).
	if s.Twins != nil {
		other := 1 - twin
		if _, _, err := s.Arr.ReadParity(g, other); disk.IsCorrupt(err) {
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			meta := disk.Meta{State: disk.StateObsolete, Timestamp: 0}
			if err := s.recomputeParityFrom(g, other, data, meta); err != nil {
				return res, err
			}
			res.Repaired++
			s.deg.scrubRepairs.Add(1)
		}
	}
	s.deg.scrubbedGroups.Add(1)
	return res, nil
}

func (s *Store) recomputeParityFrom(g page.GroupID, twin int, data []page.Buf, meta disk.Meta) error {
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	parity := xorparity.Compute(s.Arr.PageSize(), raw...)
	if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
		return fmt.Errorf("core: scrub rewrite parity of group %d: %w", g, err)
	}
	return nil
}
