package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// ScrubReport summarizes a parity scrub pass.
type ScrubReport struct {
	// GroupsScanned is the number of parity groups examined.
	GroupsScanned int
	// GroupsSkipped is the number of groups left for a later pass because
	// they were dirty or degraded at the time (online scrubbing only).
	GroupsSkipped int
	// LatentErrors is the number of blocks whose stored contents no
	// longer passed verification (checksum, location stamp or write
	// ledger) — latent silent corruption.
	LatentErrors int
	// Repaired is the number of blocks rebuilt from group redundancy.
	Repaired int
	// ParityRewritten counts parity pages recomputed because they no
	// longer matched their group's data.
	ParityRewritten int
	// RepairedPages lists the data pages whose platter contents were
	// rewritten, so callers can invalidate exactly the buffer frames that
	// went stale (parity rewrites are invisible to the buffer pool).
	RepairedPages []page.PageID
}

// GroupScrub is the outcome of scrubbing a single parity group.
type GroupScrub struct {
	// Skipped reports that the group was not verified: it was dirty (a
	// no-log steal is in flight and the twin views are in motion) or
	// degraded beyond what its spare redundancy can still check.  A
	// degraded group on a QParity array is NOT skipped wholesale — its
	// spare equation can still repair latent corruption on the readable
	// members (scrubGroupDegraded).  The online scrubber retries skipped
	// groups on the next cycle.
	Skipped bool
	// LatentErrors, Repaired and ParityRewritten are as in ScrubReport.
	LatentErrors    int
	Repaired        int
	ParityRewritten int
	// RepairedPages lists data pages rewritten on the platter.
	RepairedPages []page.PageID
}

// Scrub walks every parity group, verifying that each valid parity page
// equals the XOR of its data pages and that every block still passes
// end-to-end verification.  Latent silent corruption — checksum rot,
// misdirected writes, lost writes — is repaired from the group's
// surviving redundancy; mismatched parity is recomputed.
//
// Scrub requires a quiesced store: no parity group may be dirty
// (scrubbing would not know which twin view to repair toward).  Online,
// incremental scrubbing of a live store goes through ScrubGroup, which
// skips in-motion groups instead.  This is the paper's "background
// process that runs during the idle periods of the system" (Section 4.2)
// extended from bitmap reconstruction to full redundancy verification.
func (s *Store) Scrub() (*ScrubReport, error) {
	if s.Dirty != nil && s.Dirty.Len() > 0 {
		return nil, fmt.Errorf("core: scrub requires a quiesced store (%d dirty groups)", s.Dirty.Len())
	}
	rep := &ScrubReport{}
	for g := 0; g < s.Arr.NumGroups(); g++ {
		res, err := s.ScrubGroup(page.GroupID(g))
		rep.merge(res)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// merge folds one group's scrub outcome into the pass report.
func (rep *ScrubReport) merge(res GroupScrub) {
	if res.Skipped {
		rep.GroupsSkipped++
		return
	}
	rep.GroupsScanned++
	rep.LatentErrors += res.LatentErrors
	rep.Repaired += res.Repaired
	rep.ParityRewritten += res.ParityRewritten
	rep.RepairedPages = append(rep.RepairedPages, res.RepairedPages...)
}

// ScrubGroup verifies and repairs one parity group, the unit of work of
// the online scrubber.  A dirty group is skipped (not an error — it is
// retried on the next scrub cycle); so is a degraded group on a
// single-redundancy array, whose only equation is already consumed by
// the dead disk.  A degraded group on a QParity array is instead handed
// to scrubGroupDegraded: as long as the down disks leave a spare
// equation, latent corruption on the readable members is still
// repairable.  Everything else is verified end to end and silently
// corrupt blocks are rewritten from the group's redundancy.  Corrupt
// blocks beyond what the redundancy equations can solve return
// ErrUnrecoverableCorruption.
//
// Repairs restore block headers: a rebuilt data page named by the
// parity's committed-flip pairing gets the pairing timestamp back (so a
// later degraded restart does not mistake the completed flip for a
// broken one), and a repaired current parity twin keeps its persisted
// header when only the payload rotted (checksum failure) or gets a fresh
// committed header when the header itself is untrustworthy (misdirected
// or lost write).  Q pages mirror their P partner's header (the
// lockstep invariant).
func (s *Store) ScrubGroup(g page.GroupID) (GroupScrub, error) {
	var res GroupScrub
	if s.GroupDegraded(g) {
		if s.Arr.HasQ() {
			return s.scrubGroupDegraded(g)
		}
		res.Skipped = true
		return res, nil
	}
	if s.Dirty != nil {
		if _, dirty := s.Dirty.Lookup(g); dirty {
			res.Skipped = true
			return res, nil
		}
	}

	pages := s.Arr.GroupPages(g)
	data := make([]page.Buf, len(pages))
	bad := -1
	for i, p := range pages {
		b, _, err := s.Arr.ReadData(p)
		switch {
		case err == nil:
			data[i] = b
		case disk.IsCorrupt(err):
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			if bad >= 0 {
				s.deg.unrecoverable.Add(1)
				return res, fmt.Errorf("core: group %d has two corrupt data blocks (%v): %w", g, err, ErrUnrecoverableCorruption)
			}
			bad = i
		default:
			return res, fmt.Errorf("core: scrub group %d: %w", g, err)
		}
	}

	twin := s.currentTwin(g)
	parity, pMeta, perr := s.Arr.ReadParity(g, twin)
	if perr != nil {
		if !disk.IsCorrupt(perr) {
			return res, fmt.Errorf("core: scrub group %d parity: %w", g, perr)
		}
		res.LatentErrors++
		s.deg.corruptDetected.Add(1)
	}

	switch {
	case bad >= 0 && perr != nil:
		// Both a data block and its P page rotted.  Single parity is out
		// of equations; with a Q partner the data block solves through
		// the Q equation, and P recomputes behind it under the Q header
		// (the lockstep mirror of the header P lost).
		if !s.Arr.HasQ() {
			s.deg.unrecoverable.Add(1)
			return res, fmt.Errorf("core: group %d lost both a data block and its parity (%v): %w", g, perr, ErrUnrecoverableCorruption)
		}
		qBuf, qMeta, qerr := s.Arr.ReadQ(g, twin)
		if qerr != nil {
			s.deg.unrecoverable.Add(1)
			return res, fmt.Errorf("core: group %d lost a data block, its parity (%v) and its Q page (%v): %w", g, perr, qerr, ErrUnrecoverableCorruption)
		}
		raw := make([][]byte, len(data))
		for i, b := range data {
			raw[i] = b
		}
		rebuilt := page.Buf(erasure.ReconstructOneQ(qBuf, raw, bad))
		meta := disk.Meta{}
		if qMeta.PairedSet && qMeta.DirtyPage == pages[bad] {
			meta = disk.Meta{Timestamp: qMeta.Timestamp}
		}
		if err := s.Arr.WriteData(pages[bad], rebuilt, meta); err != nil {
			return res, fmt.Errorf("core: scrub repair page %d: %w", pages[bad], err)
		}
		data[bad] = rebuilt
		pMeta = qMeta
		if errors.Is(perr, disk.ErrChecksum) {
			if m, merr := s.Arr.PeekParityMeta(g, twin); merr == nil {
				pMeta = m
			}
		}
		newP, err := s.recomputeParityFrom(g, twin, data, pMeta)
		if err != nil {
			return res, err
		}
		parity = newP
		res.Repaired += 2
		res.RepairedPages = append(res.RepairedPages, pages[bad])
		s.deg.scrubRepairs.Add(2)
	case bad >= 0:
		// Rebuild the corrupt data block from parity + survivors,
		// restoring a flip-pairing header if the parity names this page.
		survivors := [][]byte{parity}
		for i, b := range data {
			if i != bad {
				survivors = append(survivors, b)
			}
		}
		meta := disk.Meta{}
		if pMeta.PairedSet && pMeta.DirtyPage == pages[bad] {
			meta = disk.Meta{Timestamp: pMeta.Timestamp}
		}
		rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
		if err := s.Arr.WriteData(pages[bad], rebuilt, meta); err != nil {
			return res, fmt.Errorf("core: scrub repair page %d: %w", pages[bad], err)
		}
		res.Repaired++
		res.RepairedPages = append(res.RepairedPages, pages[bad])
		s.deg.scrubRepairs.Add(1)
		data[bad] = rebuilt
	case perr != nil:
		// Rebuild the corrupt parity page from the data.  The persisted
		// header survives a payload-only checksum failure; a misdirected
		// or lost write leaves an untrustworthy header, so synthesize a
		// fresh committed one (the group is clean here).
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if errors.Is(perr, disk.ErrChecksum) {
			if m, merr := s.Arr.PeekParityMeta(g, twin); merr == nil {
				meta = m
			}
		}
		newP, err := s.recomputeParityFrom(g, twin, data, meta)
		if err != nil {
			return res, err
		}
		res.Repaired++
		s.deg.scrubRepairs.Add(1)
		parity, pMeta = newP, meta
	}

	// Verify parity correctness and rewrite if stale.
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	if !xorparity.Verify(parity, raw...) {
		if _, err := s.recomputeParityFrom(g, twin, data, pMeta); err != nil {
			return res, err
		}
		res.ParityRewritten++
	}

	// The Q pages of a QParity array: the current index's Q must solve
	// the same data state as its P partner; latent corruption and stale
	// payloads are rewritten under the partner's header (lockstep).
	if s.Arr.HasQ() {
		qBuf, _, qerr := s.Arr.ReadQ(g, twin)
		switch {
		case qerr != nil && !disk.IsCorrupt(qerr):
			return res, fmt.Errorf("core: scrub group %d Q: %w", g, qerr)
		case qerr != nil:
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			if err := s.recomputeQFrom(g, twin, data, pMeta); err != nil {
				return res, err
			}
			res.Repaired++
			s.deg.scrubRepairs.Add(1)
		case !erasure.VerifyQ(qBuf, raw...):
			if err := s.recomputeQFrom(g, twin, data, pMeta); err != nil {
				return res, err
			}
			res.ParityRewritten++
		}
	}

	// The obsolete twin of a twinned array is also checked for latent
	// errors; its contents are free to rewrite (it is obsolete).
	if s.Twins != nil {
		other := 1 - twin
		if _, _, err := s.Arr.ReadParity(g, other); disk.IsCorrupt(err) {
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			meta := disk.Meta{State: disk.StateObsolete, Timestamp: 0}
			if _, err := s.recomputeParityFrom(g, other, data, meta); err != nil {
				return res, err
			}
			res.Repaired++
			s.deg.scrubRepairs.Add(1)
		}
		if other < s.Arr.QParityPages() {
			if _, _, err := s.Arr.ReadQ(g, other); disk.IsCorrupt(err) {
				res.LatentErrors++
				s.deg.corruptDetected.Add(1)
				meta := disk.Meta{State: disk.StateObsolete, Timestamp: 0}
				if err := s.recomputeQFrom(g, other, data, meta); err != nil {
					return res, err
				}
				res.Repaired++
				s.deg.scrubRepairs.Add(1)
			}
		}
	}
	s.deg.scrubbedGroups.Add(1)
	return res, nil
}

// scrubGroupDegraded scrubs a group that has blocks on down disks, on a
// QParity array.  Unreachable members are the rebuild's job and are not
// touched; the scrub's value while degraded is the spare equation: a
// READABLE member that rotted is still two erasures (the dead block plus
// the corrupt one) against the P and Q equations, which the solver
// handles — the repair that turns a would-be ErrUnrecoverableCorruption
// read into a served one.  Equation payloads of the current index are
// likewise repaired when corrupt and their slots are alive.  No
// consistency verification is attempted beyond what the solve itself
// proves: with members missing, a surviving equation cannot be checked
// against the data without consuming the other one.
func (s *Store) scrubGroupDegraded(g page.GroupID) (GroupScrub, error) {
	var res GroupScrub
	if s.Dirty != nil {
		if _, dirty := s.Dirty.Lookup(g); dirty {
			res.Skipped = true
			return res, nil
		}
	}
	twin := s.currentTwin(g)
	pages := s.Arr.GroupPages(g)

	// Probe the readable members and the current index's alive equation
	// slots for latent corruption.
	var corrupt []int
	for i, p := range pages {
		if s.pageUnavailable(p) {
			continue
		}
		if _, _, err := s.Arr.ReadData(p); err != nil {
			if !disk.IsCorrupt(err) {
				return res, fmt.Errorf("core: scrub group %d: %w", g, err)
			}
			res.LatentErrors++
			corrupt = append(corrupt, i)
		}
	}
	pCorrupt, qCorrupt := false, false
	var pErr, qErr error
	if s.paritySlotAlive(g, twin) {
		if _, _, err := s.Arr.ReadParity(g, twin); disk.IsCorrupt(err) {
			res.LatentErrors++
			pCorrupt, pErr = true, err
		}
	}
	if s.qSlotAlive(g, twin) {
		if _, _, err := s.Arr.ReadQ(g, twin); disk.IsCorrupt(err) {
			res.LatentErrors++
			s.deg.corruptDetected.Add(1)
			qCorrupt, qErr = true, err
		}
	}
	if len(corrupt) == 0 && !pCorrupt && !qCorrupt {
		return res, nil
	}

	// Solve the group through the current index.  SolveGroup treats the
	// unreachable members, the corrupt readable ones and a corrupt P as
	// erasures; if the count exceeds the reachable equations the typed
	// ErrUnrecoverableCorruption propagates.
	vals, err := s.SolveGroup(g, twin)
	if err != nil {
		return res, fmt.Errorf("core: scrub group %d: %w", g, err)
	}

	// Header for pairing restoration and equation rewrites: P's if its
	// slot is alive and its header survived the fault (a checksum failure
	// keeps the block's own header; a misdirected or lost write leaves a
	// foreign or stale one), else the Q mirror, else a fresh committed
	// header (the group is clean while degraded).
	var hdr disk.Meta
	haveHdr := false
	if s.paritySlotAlive(g, twin) && (!pCorrupt || errors.Is(pErr, disk.ErrChecksum)) {
		if m, merr := s.Arr.ReadParityMeta(g, twin); merr == nil {
			hdr, haveHdr = m, true
		}
	}
	if !haveHdr && s.qSlotAlive(g, twin) && (!qCorrupt || errors.Is(qErr, disk.ErrChecksum)) {
		if m, merr := s.Arr.ReadQMeta(g, twin); merr == nil {
			hdr, haveHdr = m, true
		}
	}
	if !haveHdr {
		hdr = disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
	}

	for _, i := range corrupt {
		meta := disk.Meta{}
		if hdr.PairedSet && hdr.DirtyPage == pages[i] {
			meta = disk.Meta{Timestamp: hdr.Timestamp}
		}
		if err := s.Arr.WriteData(pages[i], vals[i], meta); err != nil {
			return res, fmt.Errorf("core: scrub repair page %d: %w", pages[i], err)
		}
		res.Repaired++
		res.RepairedPages = append(res.RepairedPages, pages[i])
		s.deg.scrubRepairs.Add(1)
	}
	raw := make([][]byte, len(vals))
	for i, v := range vals {
		raw[i] = v
	}
	if pCorrupt {
		newP := xorparity.Compute(s.Arr.PageSize(), raw...)
		if err := s.Arr.WriteParity(g, twin, newP, hdr); err != nil {
			return res, fmt.Errorf("core: scrub rewrite parity of group %d: %w", g, err)
		}
		res.Repaired++
		s.deg.scrubRepairs.Add(1)
	}
	if qCorrupt {
		newQ := erasure.ComputeQ(s.Arr.PageSize(), raw...)
		if err := s.Arr.WriteQ(g, twin, newQ, hdr); err != nil {
			return res, fmt.Errorf("core: scrub rewrite Q of group %d: %w", g, err)
		}
		res.Repaired++
		s.deg.scrubRepairs.Add(1)
	}
	s.deg.scrubbedGroups.Add(1)
	return res, nil
}

// recomputeParityFrom rewrites parity twin `twin` of group g as the XOR
// of the given data values under the given header, returning the payload
// written.
func (s *Store) recomputeParityFrom(g page.GroupID, twin int, data []page.Buf, meta disk.Meta) (page.Buf, error) {
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	parity := page.Buf(xorparity.Compute(s.Arr.PageSize(), raw...))
	if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
		return nil, fmt.Errorf("core: scrub rewrite parity of group %d: %w", g, err)
	}
	return parity, nil
}

// recomputeQFrom rewrites Q page `twin` of group g over the given data
// values under the given header (normally the P partner's — lockstep).
func (s *Store) recomputeQFrom(g page.GroupID, twin int, data []page.Buf, meta disk.Meta) error {
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	q := erasure.ComputeQ(s.Arr.PageSize(), raw...)
	if err := s.Arr.WriteQ(g, twin, q, meta); err != nil {
		return fmt.Errorf("core: scrub rewrite Q of group %d: %w", g, err)
	}
	return nil
}
