package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// ScrubReport summarizes a parity scrub pass.
type ScrubReport struct {
	// GroupsScanned is the number of parity groups examined.
	GroupsScanned int
	// LatentErrors is the number of blocks whose stored checksum no
	// longer matched their contents (latent sector errors).
	LatentErrors int
	// Repaired is the number of blocks rebuilt from group redundancy.
	Repaired int
	// ParityRewritten counts parity pages recomputed because they no
	// longer matched their group's data.
	ParityRewritten int
}

// Scrub walks every parity group, verifying that each valid parity page
// equals the XOR of its data pages and that every block still passes its
// checksum.  Latent sector errors — the silent corruption that
// motivates periodic scrubbing of redundant arrays — are repaired from
// the group's surviving redundancy; mismatched parity is recomputed.
//
// Scrub must run on a quiesced store: no parity group may be dirty
// (scrubbing would not know which twin view to repair toward).  It is
// the paper's "background process that runs during the idle periods of
// the system" (Section 4.2) extended from bitmap reconstruction to full
// redundancy verification.
func (s *Store) Scrub() (*ScrubReport, error) {
	if s.Dirty != nil && s.Dirty.Len() > 0 {
		return nil, fmt.Errorf("core: scrub requires a quiesced store (%d dirty groups)", s.Dirty.Len())
	}
	rep := &ScrubReport{}
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		if err := s.scrubGroup(gid, rep); err != nil {
			return rep, err
		}
		rep.GroupsScanned++
	}
	return rep, nil
}

// scrubGroup verifies and repairs one group.
func (s *Store) scrubGroup(g page.GroupID, rep *ScrubReport) error {
	pages := s.Arr.GroupPages(g)
	data := make([]page.Buf, len(pages))
	metas := make([]disk.Meta, len(pages))
	bad := -1
	for i, p := range pages {
		b, m, err := s.Arr.ReadData(p)
		switch {
		case err == nil:
			data[i], metas[i] = b, m
		case errors.Is(err, disk.ErrChecksum):
			rep.LatentErrors++
			if bad >= 0 {
				return fmt.Errorf("core: group %d has two latent errors; unrecoverable", g)
			}
			bad = i
		default:
			return fmt.Errorf("core: scrub group %d: %w", g, err)
		}
	}

	twin := s.currentTwin(g)
	parity, pMeta, perr := s.Arr.ReadParity(g, twin)
	if perr != nil && !errors.Is(perr, disk.ErrChecksum) {
		return fmt.Errorf("core: scrub group %d parity: %w", g, perr)
	}

	switch {
	case bad >= 0 && perr != nil:
		return fmt.Errorf("core: group %d lost both a data block and its parity; unrecoverable", g)
	case bad >= 0:
		// Rebuild the corrupt data block from parity + survivors.
		survivors := [][]byte{parity}
		for i, b := range data {
			if i != bad {
				survivors = append(survivors, b)
			}
		}
		rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
		if err := s.Arr.WriteData(pages[bad], rebuilt, disk.Meta{}); err != nil {
			return fmt.Errorf("core: scrub repair page %d: %w", pages[bad], err)
		}
		rep.Repaired++
		data[bad] = rebuilt
	case perr != nil:
		// Rebuild the corrupt parity page from the data.
		rep.LatentErrors++
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if err := s.recomputeParityFrom(g, twin, data, meta); err != nil {
			return err
		}
		rep.Repaired++
		return nil
	}

	// Verify parity correctness and rewrite if stale.
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	if !xorparity.Verify(parity, raw...) {
		if err := s.recomputeParityFrom(g, twin, data, pMeta); err != nil {
			return err
		}
		rep.ParityRewritten++
	}

	// The obsolete twin of a twinned array is also checked for latent
	// errors; its contents are free to rewrite (it is obsolete).
	if s.Twins != nil {
		other := 1 - twin
		if _, _, err := s.Arr.ReadParity(g, other); errors.Is(err, disk.ErrChecksum) {
			rep.LatentErrors++
			meta := disk.Meta{State: disk.StateObsolete, Timestamp: 0}
			if err := s.recomputeParityFrom(g, other, data, meta); err != nil {
				return err
			}
			rep.Repaired++
		}
	}
	return nil
}

func (s *Store) recomputeParityFrom(g page.GroupID, twin int, data []page.Buf, meta disk.Meta) error {
	raw := make([][]byte, len(data))
	for i, b := range data {
		raw[i] = b
	}
	parity := xorparity.Compute(s.Arr.PageSize(), raw...)
	if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
		return fmt.Errorf("core: scrub rewrite parity of group %d: %w", g, err)
	}
	return nil
}
