// Package core implements the paper's primary contribution: RDA-based
// transaction recovery (Section 4), together with the traditional
// single-parity write path it is compared against.
//
// The Store owns every mutation of array state and encodes the paper's
// write-back policy:
//
//   - StealNoLog — the RDA fast path (Section 4.1): a page modified by a
//     single active transaction is written in place with NO UNDO logging;
//     the new parity goes to the group's obsolete twin in the working
//     state (Figure 8) and the group is entered into the Dirty_Set
//     (Figure 3).  Undo material is the pair of twin parity pages:
//     D_old = (P ⊕ P′) ⊕ D_new (Figure 6).
//   - WriteLogged — the classic STEAL path: the caller has put the
//     before-image(s) on the log; the page is written in place and the
//     parity is maintained by read-modify-write.  When the target group
//     is dirty, BOTH twins must be updated so each keeps describing its
//     view of the group — the paper's 2·p_l extra transfers
//     (Section 5.2.1).
//   - WriteCommitted — write-back of a page with no active modifiers
//     (FORCE at EOT, checkpoint flushes of committed data, REDO).
//
// plus the corresponding undo and commit primitives.  Buffer, lock and
// transaction orchestration live in the public engine package; crash and
// media recovery drivers live in internal/recovery.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/dirtyset"
	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/twinpage"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/workpool"
	"repro/internal/xorparity"
)

// Store mediates all disk-array state changes for one database.
type Store struct {
	Arr *diskarray.Array
	// Twins is non-nil exactly when the array is twinned.
	Twins *twinpage.Manager
	// Dirty is the Dirty_Set; non-nil exactly when RDA recovery is on.
	Dirty *dirtyset.Table
	Log   *wal.Log
	TM    *txn.Manager

	// Workers bounds the store's internal parallelism for whole-array
	// scans (parity resync, bulk load); <= 1 runs them inline in index
	// order.  Set once by the engine at Open, before the store is shared.
	Workers int

	// Pipelined enables intra-operation transfer overlap: the small-write
	// RMW issues its two reads (old data, old parity) concurrently — they
	// live on different drives — and full-stripe writes fan their data
	// transfers out across the group's drives.  Writes whose order the
	// recovery protocol relies on (parity before data) stay sequential.
	// Set once by the engine at Open, before the store is shared.
	Pipelined bool

	// Degraded-serving state (degraded.go).
	degraded bool
	// down is the set of down disks being served around, oldest loss
	// first; at most one entry on single-redundancy arrays, up to two
	// with QParity.
	down []int
	// restored[g] is set once the rebuild worker has reconstructed
	// group g's block on the down disk; nil outside degraded mode.
	restored []bool
	// replacement marks that the down disk's slot holds a fresh
	// (readable) replacement drive instead of the dead one; see
	// SetReplacementPresent in degraded.go.
	replacement bool
	deg         degCounters
}

// NewStore wires a store over the given array.  RDA recovery is enabled
// iff the array is twinned (the engine validates the combination).
func NewStore(arr *diskarray.Array, log *wal.Log, tm *txn.Manager) *Store {
	s := &Store{Arr: arr, Log: log, TM: tm}
	if arr.Twinned() {
		s.Twins = twinpage.New(arr)
		s.Dirty = dirtyset.New()
	}
	return s
}

// RDA reports whether RDA recovery is active.
func (s *Store) RDA() bool { return s.Twins != nil }

// ReadPage reads a data page, charging one transfer.  Every read is
// verified end to end: if the page's disk is down the read is served by
// on-the-fly reconstruction, and if the stored block fails verification
// (checksum, location stamp or write ledger) it is repaired in place from
// the group's redundancy before being returned — see ReadPageRepair.
func (s *Store) ReadPage(p page.PageID) (page.Buf, error) {
	return s.ReadPageRepair(p)
}

// oldOnDisk returns the page's current on-disk contents, using the
// caller-provided copy when available (the paper's a=3 case) and reading
// from the array otherwise (a=4), verified and repaired like every read.
func (s *Store) oldOnDisk(p page.PageID, cached page.Buf) (page.Buf, error) {
	if cached != nil {
		return cached, nil
	}
	return s.ReadPageRepair(p)
}

// currentTwin returns the index of the current parity twin for group g
// (always 0 on single-parity arrays).
func (s *Store) currentTwin(g page.GroupID) int {
	if s.Twins == nil {
		return 0
	}
	return s.Twins.Current(g)
}

// WriteCommitted writes a data page that carries no uncommitted state:
// EOT forcing, checkpoint flushes of committed pages, and REDO.
//
// On a clean group of a twinned array the new parity is written to the
// obsolete twin in the committed state with a fresh timestamp and the
// bitmap flips — the same crash-atomic two-version discipline the
// working path uses.  On a dirty group both twins are XOR-updated in
// place so that the undo identity P ⊕ P′ = D_old ⊕ D_new for the dirty
// page is preserved.  Single-parity arrays do the classic
// read-modify-write.
func (s *Store) WriteCommitted(p page.PageID, data, cachedOld page.Buf) error {
	g := s.Arr.GroupOf(p)
	if s.writeDegradedNeeded(g, p) {
		return s.writeDegraded(p, data)
	}
	if s.Dirty != nil && s.Dirty.IsDirty(g) {
		oldData, err := s.oldOnDisk(p, cachedOld)
		if err != nil {
			return err
		}
		if err := s.updateBothTwins(g, p, oldData, data); err != nil {
			return err
		}
		return s.writeData(p, data, disk.Meta{})
	}
	if s.Twins == nil {
		oldData, err := s.oldForSmallWrite(p, cachedOld)
		if err != nil {
			return err
		}
		return s.singleParityWrite(p, g, data, oldData, disk.Meta{})
	}
	return s.flipCommitted(g, p, data, cachedOld)
}

// flipCommitted performs the committed small-write on a clean group of a
// twinned array: the new parity goes to the obsolete twin in the
// committed state with a fresh timestamp, the bitmap flips, then the
// data page is written.  The parity header names the written page
// (DirtyPage + PairedSet) and the data header echoes the parity
// timestamp — the same pairing StealNoLog records — so a restart that
// cannot recompute parity (a sibling data page unreadable after a disk
// loss) can still tell whether the flip's data write reached disk: a
// broken pair means the parity ran ahead and the untouched other twin
// still describes the on-disk data.
//
// On a QParity array the target index's Q page is written first, with
// the SAME header: whenever a P twin describes data state S, its Q
// partner already holds ComputeQ(S) (the lockstep invariant, see
// DESIGN.md), so recovery's Figure 7 arbitration over P headers alone
// also selects a usable Q.
func (s *Store) flipCommitted(g page.GroupID, p page.PageID, data, cachedOld page.Buf) error {
	newParity, newQ, err := s.smallWriteParity(g, s.currentTwin(g), p, cachedOld, data)
	if err != nil {
		return err
	}
	obsolete := s.Twins.Obsolete(g)
	ts := s.TM.NextTimestamp()
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: ts, DirtyPage: p, PairedSet: true}
	if newQ != nil {
		if err := s.Arr.WriteQ(g, obsolete, newQ, meta); err != nil {
			return fmt.Errorf("core: write committed Q of group %d: %w", g, err)
		}
	}
	if err := s.Arr.WriteParity(g, obsolete, newParity, meta); err != nil {
		return fmt.Errorf("core: write committed parity of group %d: %w", g, err)
	}
	s.Twins.Promote(g, obsolete)
	return s.writeData(p, data, disk.Meta{Timestamp: ts})
}

// oldForSmallWrite fetches the page's on-disk contents when the
// small-write protocol needs them; width-1 (mirrored) groups never do.
func (s *Store) oldForSmallWrite(p page.PageID, cachedOld page.Buf) (page.Buf, error) {
	if s.Arr.GroupWidth() == 1 {
		return nil, nil
	}
	return s.oldOnDisk(p, cachedOld)
}

// smallWriteParity computes the redundancy images for writing `data`
// over page p from the given twin index: P_new = P ⊕ D_old ⊕ D_new and,
// on QParity arrays, Q_new = Q ⊕ g^i·(D_old ⊕ D_new) from the same
// index's Q page (nil otherwise).  Width-1 (mirrored) groups copy the
// data with no reads at all.  The reads all target different drives, so
// a pipelined store overlaps them.
func (s *Store) smallWriteParity(g page.GroupID, twin int, p page.PageID, cachedOld, data page.Buf) (page.Buf, page.Buf, error) {
	hasQ := s.Arr.HasQ()
	if s.Arr.GroupWidth() == 1 {
		if hasQ {
			return data.Clone(), data.Clone(), nil
		}
		return data.Clone(), nil, nil
	}
	var oldData, cur, curQ page.Buf
	reads := []func() error{
		func() error {
			var e error
			oldData, e = s.oldOnDisk(p, cachedOld)
			return e
		},
		func() error {
			var e error
			cur, _, e = s.ReadParityRepair(g, twin)
			if e != nil {
				return fmt.Errorf("core: read parity of group %d: %w", g, e)
			}
			return nil
		},
	}
	if hasQ {
		reads = append(reads, func() error {
			var e error
			curQ, _, e = s.Arr.ReadQ(g, twin)
			if e != nil {
				return fmt.Errorf("core: read Q of group %d: %w", g, e)
			}
			return nil
		})
	}
	if s.Pipelined && cachedOld == nil {
		// The a=4 case needs every read and they target different
		// drives: overlap them.  Reads commute, so this changes no
		// recovery-visible ordering.
		if err := diskarray.Batch(reads...); err != nil {
			return nil, nil, err
		}
	} else {
		for _, r := range reads {
			if err := r(); err != nil {
				return nil, nil, err
			}
		}
	}
	newP := page.Buf(xorparity.SmallWrite(cur, oldData, data))
	var newQ page.Buf
	if hasQ {
		newQ = page.Buf(erasure.QSmallWrite(curQ, oldData, data, s.groupIndexOf(g, p)))
	}
	return newP, newQ, nil
}

// ErrMustLog reports a StealNoLog attempt that the Dirty_Set forbids;
// callers fall back to the logging path.
var ErrMustLog = errors.New("core: parity group requires UNDO logging")

// CanStealNoLog reports whether (p, tx) may take the RDA fast path.  A
// degraded group always refuses: its parity redundancy is consumed by the
// disk loss and cannot simultaneously fund transaction recovery
// (Section 4's premise in reverse), so writers fall back to UNDO logging
// until the group is rebuilt.
func (s *Store) CanStealNoLog(p page.PageID, tx page.TxID) bool {
	if s.Dirty == nil {
		return false
	}
	g := s.Arr.GroupOf(p)
	if s.GroupDegraded(g) {
		return false
	}
	return s.Dirty.CanStealWithoutLogging(g, p, tx)
}

// StealNoLog writes page p, modified by active transaction tx, without
// UNDO logging (Section 4.1).  The data page header records the writing
// transaction and the log-chain pointer to tx's previously chained page
// (Section 4.3); the working parity header records tx, a fresh timestamp
// and the covered page.
func (s *Store) StealNoLog(p page.PageID, data, cachedOld page.Buf, t *txn.Txn) error {
	if err := s.StealNoLogChained(p, data, cachedOld, t, t.ChainHead()); err != nil {
		return err
	}
	if !t.InChain(p) {
		t.StolenNoLog = append(t.StolenNoLog, p)
	}
	return nil
}

// StealNoLogChained is StealNoLog with the transaction-chain bookkeeping
// hoisted to the caller: chainPrev is the log-chain pointer to record in
// the data header, and the caller appends p to t.StolenNoLog (under its
// own transaction mutex) once the steal succeeds.  The split lets a
// pipelined commit overlap one transaction's steals across parity groups
// — the disk transfers here touch only per-group state (twins, dirty
// set, the group's drives), each already safe under the group latch the
// caller holds — while the shared chain mutation stays serialized
// outside the I/O.
func (s *Store) StealNoLogChained(p page.PageID, data, cachedOld page.Buf, t *txn.Txn, chainPrev page.PageID) error {
	if s.Dirty == nil {
		return fmt.Errorf("core: StealNoLog without RDA recovery")
	}
	g := s.Arr.GroupOf(p)
	if s.GroupDegraded(g) {
		return fmt.Errorf("%w: group %d is degraded", ErrMustLog, g)
	}
	if !s.Dirty.CanStealWithoutLogging(g, p, t.ID) {
		return fmt.Errorf("%w: group %d page %d txn %d", ErrMustLog, g, p, t.ID)
	}
	ts := s.TM.NextTimestamp()
	entry, dirty := s.Dirty.Lookup(g)
	var twin int
	if dirty {
		// Re-steal of the same page by the same transaction: refresh the
		// working twin in place.  The committed twin is untouched, so
		// P ⊕ P′ keeps equalling D_committed ⊕ D_current.
		twin = entry.WorkingTwin
		newParity, newQ, err := s.smallWriteParity(g, twin, p, cachedOld, data)
		if err != nil {
			return err
		}
		if err := s.writeWorkingQ(g, twin, newQ, t.ID, ts, p); err != nil {
			return err
		}
		if err := s.Twins.RewriteWorking(g, twin, newParity, t.ID, ts, p); err != nil {
			return err
		}
	} else {
		newParity, newQ, err := s.smallWriteParity(g, s.Twins.Current(g), p, cachedOld, data)
		if err != nil {
			return err
		}
		// The steal lands on the obsolete index; its Q partner is written
		// first so the lockstep invariant holds the moment the P header
		// switches to working (Q before P before data).
		if err := s.writeWorkingQ(g, s.Twins.Obsolete(g), newQ, t.ID, ts, p); err != nil {
			return err
		}
		twin, err = s.Twins.WriteWorking(g, newParity, t.ID, ts, p)
		if err != nil {
			return err
		}
	}
	// The data header carries the same timestamp as the working parity
	// written above: after a crash the scan can tell whether this data
	// write made it to disk before re-stealing rewrote the twin.
	meta := disk.Meta{Txn: t.ID, Timestamp: ts, ChainPrev: chainPrev, ChainSet: true}
	if err := s.writeData(p, data, meta); err != nil {
		return err
	}
	s.Dirty.MarkDirty(g, p, t.ID, twin)
	return nil
}

// writeWorkingQ writes the Q partner of a working parity twin with the
// same header WriteWorking/RewriteWorking stamps on the P twin, keeping
// the lockstep invariant.  No-op on arrays without Q redundancy (nil
// newQ).
func (s *Store) writeWorkingQ(g page.GroupID, twin int, newQ page.Buf, tx page.TxID, ts page.Timestamp, dirtyPage page.PageID) error {
	if newQ == nil {
		return nil
	}
	meta := disk.Meta{State: disk.StateWorking, Timestamp: ts, Txn: tx, DirtyPage: dirtyPage}
	if err := s.Arr.WriteQ(g, twin, newQ, meta); err != nil {
		return fmt.Errorf("core: write working Q of group %d: %w", g, err)
	}
	return nil
}

// WriteLogged writes a page whose UNDO material is already on the log.
// On a dirty group of a twinned array both parity twins are updated (the
// paper's 2·p_l extra transfers); on a clean twinned group the write
// flips to the obsolete twin like WriteCommitted — the same four
// transfers as the classic read-modify-write, but the previous parity
// version survives the write, which is what lets a degraded restart fall
// back to it when a crash cuts a flip in half (see flipCommitted).
// Single-parity arrays do the classic in-place read-modify-write.
func (s *Store) WriteLogged(p page.PageID, data, cachedOld page.Buf) error {
	g := s.Arr.GroupOf(p)
	if s.writeDegradedNeeded(g, p) {
		return s.writeDegraded(p, data)
	}
	if s.Dirty != nil && s.Dirty.IsDirty(g) {
		oldData, err := s.oldOnDisk(p, cachedOld)
		if err != nil {
			return err
		}
		if err := s.updateBothTwins(g, p, oldData, data); err != nil {
			return err
		}
		return s.writeData(p, data, disk.Meta{})
	}
	if s.Twins != nil {
		return s.flipCommitted(g, p, data, cachedOld)
	}
	oldData, err := s.oldForSmallWrite(p, cachedOld)
	if err != nil {
		return err
	}
	return s.singleParityWrite(p, g, data, oldData, disk.Meta{})
}

// ErrNotStripe reports a WriteStripeLogged attempt outside its
// preconditions; callers fall back to per-page writes.
var ErrNotStripe = errors.New("core: group not eligible for a full-stripe write")

// WriteStripeLogged writes every data page of one clean, healthy group
// of a twinned array with a single parity update — the paper's
// large-write case, reached when a committing transaction's flush covers
// a whole stripe.  The new parity is the XOR of the new data alone, so
// the k-transfer read-modify-write per page collapses to one parity
// write plus k data writes and no reads.
//
// The caller must have the group's UNDO material durable on the log
// (before-images of every page in the stripe, forced) before calling:
// coalescing k deltas into one parity write destroys the per-page
// crash-atomicity of flipCommitted — a crash inside the batch leaves a
// mixed stripe that NO parity version describes, and a reconstruction
// from either twin can hand back garbage for a member page.  That is
// safe precisely because the stripe has no bystanders: every page a bad
// reconstruction could touch belongs to the batch, the batch's writer
// cannot have committed (its EOT is appended only after the flush
// returns), and logged undo rewrites every member from its forced
// before-image.  Partial-stripe batches have bystander pages with no
// such cover, so they must not coalesce — hence ErrNotStripe.
//
// Write ordering inside the batch follows flipCommitted: parity first
// (to the obsolete twin, committed state, naming the LAST page with the
// pairing echo), then the unnamed data pages — overlapped across their
// drives when the store is pipelined — and the named page physically
// last, stamped with the parity timestamp.  An intact echo therefore
// still proves the whole stripe landed.
func (s *Store) WriteStripeLogged(g page.GroupID, pages []page.PageID, datas []page.Buf) error {
	if s.Twins == nil || len(pages) == 0 || len(pages) != len(datas) {
		return ErrNotStripe
	}
	if s.GroupDegraded(g) || (s.Dirty != nil && s.Dirty.IsDirty(g)) {
		return ErrNotStripe
	}
	group := s.Arr.GroupPages(g)
	if len(pages) != len(group) {
		return ErrNotStripe
	}
	for i, p := range group {
		if pages[i] != p {
			return ErrNotStripe
		}
	}
	blocks := make([][]byte, len(datas))
	for i, d := range datas {
		blocks[i] = d
	}
	newParity := page.Buf(xorparity.Compute(s.Arr.PageSize(), blocks...))
	obsolete := s.Twins.Obsolete(g)
	ts := s.TM.NextTimestamp()
	last := len(pages) - 1
	pMeta := disk.Meta{State: disk.StateCommitted, Timestamp: ts, DirtyPage: pages[last], PairedSet: true}
	if s.Arr.HasQ() {
		newQ := page.Buf(erasure.ComputeQ(s.Arr.PageSize(), blocks...))
		if err := s.Arr.WriteQ(g, obsolete, newQ, pMeta); err != nil {
			return fmt.Errorf("core: write stripe Q of group %d: %w", g, err)
		}
	}
	if err := s.Arr.WriteParity(g, obsolete, newParity, pMeta); err != nil {
		return fmt.Errorf("core: write stripe parity of group %d: %w", g, err)
	}
	s.Twins.Promote(g, obsolete)
	if last > 0 {
		ops := make([]func() error, last)
		for i := 0; i < last; i++ {
			i := i
			ops[i] = func() error {
				return s.writeData(pages[i], datas[i], disk.Meta{Timestamp: ts})
			}
		}
		if s.Pipelined {
			if err := diskarray.Batch(ops...); err != nil {
				return err
			}
		} else {
			for _, op := range ops {
				if err := op(); err != nil {
					return err
				}
			}
		}
	}
	return s.writeData(pages[last], datas[last], disk.Meta{Timestamp: ts})
}

// singleParityWrite performs the classic small-write protocol against the
// group's current parity twin, in place.
//
// On width-1 groups — mirrored pairs — the "parity" of the single data
// page is the page itself, so the read-modify-write degenerates to
// writing both copies: two transfers, the mirroring cost of Bitton &
// Gray [1] that the paper's introduction compares against.
func (s *Store) singleParityWrite(p page.PageID, g page.GroupID, data, oldData page.Buf, meta disk.Meta) error {
	twin := s.currentTwin(g)
	if s.Arr.GroupWidth() == 1 {
		pMeta, err := s.Arr.PeekParityMeta(g, twin)
		if err != nil {
			return fmt.Errorf("core: mirror of group %d: %w", g, err)
		}
		if err := s.Arr.WriteParity(g, twin, data.Clone(), pMeta); err != nil {
			return fmt.Errorf("core: write mirror of group %d: %w", g, err)
		}
		return s.writeData(p, data, meta)
	}
	parity, pMeta, err := s.ReadParityRepair(g, twin)
	if err != nil {
		return fmt.Errorf("core: read parity of group %d: %w", g, err)
	}
	newParity := xorparity.SmallWrite(parity, oldData, data)
	if err := s.Arr.WriteParity(g, twin, newParity, pMeta); err != nil {
		return fmt.Errorf("core: write parity of group %d: %w", g, err)
	}
	return s.writeData(p, data, meta)
}

// updateBothTwins applies the delta of one data page write to both parity
// twins of a dirty group, preserving each twin's view.  On a QParity
// array the Q twins get the field-scaled delta g^i·(D_old ⊕ D_new), each
// written just before its P partner so the lockstep invariant holds at
// every header the crash can expose.
func (s *Store) updateBothTwins(g page.GroupID, p page.PageID, oldData, data page.Buf) error {
	delta := xorparity.Xor(oldData, data)
	var qDelta []byte
	if s.Arr.HasQ() {
		qDelta = make([]byte, len(delta))
		erasure.MulAddInto(qDelta, delta, erasure.Exp(s.groupIndexOf(g, p)))
	}
	for twin := 0; twin < 2; twin++ {
		if qDelta != nil {
			q, qMeta, err := s.Arr.ReadQ(g, twin)
			if err != nil {
				return fmt.Errorf("core: read twin %d Q of group %d: %w", twin, g, err)
			}
			xorparity.XorInto(q, qDelta)
			if err := s.Arr.WriteQ(g, twin, q, qMeta); err != nil {
				return fmt.Errorf("core: write twin %d Q of group %d: %w", twin, g, err)
			}
		}
		parity, meta, err := s.ReadParityRepair(g, twin)
		if err != nil {
			return fmt.Errorf("core: read twin %d parity of group %d: %w", twin, g, err)
		}
		xorparity.XorInto(parity, delta)
		if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
			return fmt.Errorf("core: write twin %d parity of group %d: %w", twin, g, err)
		}
	}
	return nil
}

func (s *Store) writeData(p page.PageID, data page.Buf, meta disk.Meta) error {
	if err := s.Arr.WriteData(p, data, meta); err != nil {
		return fmt.Errorf("core: write page %d: %w", p, err)
	}
	return nil
}

// --- Commit ---------------------------------------------------------------

// CommitGroups makes tx's working parities current (Figure 8: working →
// committed) and cleans its Dirty_Set entries.  Pure bookkeeping — the
// EOT log record is the commit point and the on-disk parity headers catch
// up lazily.
func (s *Store) CommitGroups(t *txn.Txn) {
	if s.Dirty == nil {
		return
	}
	for _, g := range s.Dirty.GroupsOf(t.ID) {
		e, ok := s.Dirty.Lookup(g)
		if !ok {
			continue
		}
		s.Twins.Promote(g, e.WorkingTwin)
		s.Dirty.Clean(g)
	}
	t.StolenNoLog = nil
}

// --- Undo -----------------------------------------------------------------

// UndoGroupViaParity restores the dirty page of group g from its twin
// parity pages — D_old = (P ⊕ P′) ⊕ D_new (Figure 6) — writes it back,
// invalidates the working twin, and cleans the group.  It returns the
// restored page and its contents.
//
// The write order makes a crash mid-undo safe: the data page is restored
// (with its header's transaction tag cleared) before the working twin is
// invalidated, and the crash scan skips groups whose tagged page no
// longer carries the writer's tag.
func (s *Store) UndoGroupViaParity(g page.GroupID) (page.PageID, page.Buf, error) {
	if s.Dirty == nil {
		return 0, nil, fmt.Errorf("core: parity undo without RDA recovery")
	}
	e, ok := s.Dirty.Lookup(g)
	if !ok {
		return 0, nil, fmt.Errorf("core: group %d is not dirty", g)
	}
	restored, err := s.undoViaTwins(g, e.Page, e.WorkingTwin)
	if err != nil {
		return 0, nil, err
	}
	s.Dirty.Clean(g)
	return e.Page, restored, nil
}

// undoViaTwins is the raw Figure 6 undo used by both the abort path
// (through UndoGroupViaParity) and crash recovery (which has no
// Dirty_Set and supplies the page and twin from the header scan).
func (s *Store) undoViaTwins(g page.GroupID, p page.PageID, workingTwin int) (page.Buf, error) {
	p0, _, err := s.ReadParityRepair(g, 0)
	if err != nil {
		return nil, fmt.Errorf("core: read twin 0 of group %d: %w", g, err)
	}
	p1, _, err := s.ReadParityRepair(g, 1)
	if err != nil {
		return nil, fmt.Errorf("core: read twin 1 of group %d: %w", g, err)
	}
	dNew, _, err := s.Arr.ReadData(p)
	if err != nil {
		if !disk.IsCorrupt(err) {
			return nil, fmt.Errorf("core: read page %d: %w", p, err)
		}
		// The dirty page's on-disk (new) version is corrupt, so the
		// Figure 6 identity has nothing to XOR against — but the committed
		// twin still describes the pre-transaction group, whose other
		// members are untouched, so the before-image comes out directly:
		// D_old = P_cmt ⊕ (other data pages).
		s.deg.corruptDetected.Add(1)
		dOld, rerr := s.ReconstructDataAny(g, p, 1-workingTwin)
		if rerr != nil {
			if disk.IsCorrupt(rerr) || errors.Is(rerr, disk.ErrFailed) {
				s.deg.unrecoverable.Add(1)
				return nil, fmt.Errorf("core: undo of corrupt page %d: %v: %w", p, rerr, ErrUnrecoverableCorruption)
			}
			return nil, fmt.Errorf("core: undo of corrupt page %d: %w", p, rerr)
		}
		if err := s.writeData(p, dOld, disk.Meta{}); err != nil {
			return nil, err
		}
		s.deg.readRepairs.Add(1)
		if err := s.InvalidateIndexAlive(g, workingTwin); err != nil {
			return nil, err
		}
		return dOld, nil
	}
	dOld := page.Buf(xorparity.UndoTwin(p0, p1, dNew))
	if err := s.writeData(p, dOld, disk.Meta{}); err != nil {
		return nil, err
	}
	if err := s.InvalidateIndexAlive(g, workingTwin); err != nil {
		return nil, err
	}
	return dOld, nil
}

// WorkingTwinInfo describes a working parity twin found by the crash-time
// header scan.
type WorkingTwinInfo struct {
	Group     page.GroupID
	Twin      int
	Txn       page.TxID
	Page      page.PageID // the covered data page (header's DirtyPage)
	Timestamp page.Timestamp
}

// ScanWorkingTwins reads every group's twin parity headers (two charged
// transfers per group — the paper's background bitmap scan, Section 4.2)
// and returns the twins found in the working state, sorted by group.
//
// On a degraded array twins on the down disk are skipped: the drive is
// gone (or, mid-rebuild, untrusted unless its header proves a
// post-swap write — a StateNone header is never working, so reading the
// replacement directly is sufficient there).  Recovery finds the steals
// such twins described through the data pages' transaction tags instead.
func (s *Store) ScanWorkingTwins() ([]WorkingTwinInfo, error) {
	if s.Twins == nil {
		return nil, nil
	}
	var out []WorkingTwinInfo
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		for twin := 0; twin < 2; twin++ {
			if s.degraded && !s.replacement &&
				(s.restored == nil || !s.restored[gid]) &&
				s.isDown(s.Arr.ParityLoc(gid, twin).Disk) {
				continue
			}
			meta, err := s.Arr.ReadParityMeta(gid, twin)
			if err != nil {
				return nil, fmt.Errorf("core: scan group %d twin %d: %w", g, twin, err)
			}
			if meta.State == disk.StateWorking {
				out = append(out, WorkingTwinInfo{
					Group: gid, Twin: twin, Txn: meta.Txn,
					Page: meta.DirtyPage, Timestamp: meta.Timestamp,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out, nil
}

// CrashUndoWorkingTwin undoes one working twin found by the crash scan,
// when its writer is a loser.  It is idempotent across repeated crashes:
// if the covered data page no longer carries the loser's transaction tag,
// the data restore already happened and only the twin invalidation is
// (re)applied.
func (s *Store) CrashUndoWorkingTwin(w WorkingTwinInfo) error {
	_, meta, err := s.Arr.ReadData(w.Page)
	if err != nil {
		if !disk.IsCorrupt(err) {
			return fmt.Errorf("core: read tagged page %d: %w", w.Page, err)
		}
		// The tagged page is corrupt, so its header cannot arbitrate.  The
		// loser's page must end up holding the before-image either way, and
		// the committed twin supplies it regardless of how far the steal
		// got: D_old = P_cmt ⊕ (other data pages).
		s.deg.corruptDetected.Add(1)
		dOld, rerr := s.ReconstructDataAny(w.Group, w.Page, 1-w.Twin)
		if rerr != nil {
			if disk.IsCorrupt(rerr) || errors.Is(rerr, disk.ErrFailed) {
				s.deg.unrecoverable.Add(1)
				return fmt.Errorf("core: undo of corrupt tagged page %d: %v: %w", w.Page, rerr, ErrUnrecoverableCorruption)
			}
			return fmt.Errorf("core: undo of corrupt tagged page %d: %w", w.Page, rerr)
		}
		if err := s.writeData(w.Page, dOld, disk.Meta{}); err != nil {
			return err
		}
		s.deg.readRepairs.Add(1)
		return s.InvalidateIndexAlive(w.Group, w.Twin)
	}
	if meta.Txn != w.Txn {
		// Already restored by a previous, interrupted recovery, or the
		// crash fell between the working-parity write and the data write:
		// either way the page holds no state of this writer.
		return s.InvalidateIndexAlive(w.Group, w.Twin)
	}
	if meta.Timestamp != w.Timestamp {
		// The crash fell inside a re-steal, between rewriting the working
		// twin and the data write: the twin describes a newer page version
		// than the one on disk, so P ⊕ P′ ⊕ D would yield garbage.  The
		// committed twin still describes the pre-transaction group, giving
		// the before-image directly: D_old = P_cmt ⊕ (other data pages).
		dOld, err := s.ReconstructDataAny(w.Group, w.Page, 1-w.Twin)
		if err != nil {
			return err
		}
		if err := s.writeData(w.Page, dOld, disk.Meta{}); err != nil {
			return err
		}
		return s.InvalidateIndexAlive(w.Group, w.Twin)
	}
	_, err = s.undoViaTwins(w.Group, w.Page, w.Twin)
	return err
}

// ReconstructData rebuilds data page p of group g from the given parity
// twin and the group's other data pages (charged reads): D = P ⊕ (other
// data).  Callers pick a twin whose parity is known to describe the
// wanted version of the group.
func (s *Store) ReconstructData(g page.GroupID, p page.PageID, twin int) (page.Buf, error) {
	parity, _, err := s.ReadParityRepair(g, twin)
	if err != nil {
		return nil, fmt.Errorf("core: read twin %d of group %d: %w", twin, g, err)
	}
	blocks := [][]byte{parity}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return nil, fmt.Errorf("core: read page %d: %w", q, err)
		}
		blocks = append(blocks, b)
	}
	return page.Buf(xorparity.Reconstruct(s.Arr.PageSize(), blocks...)), nil
}

// ReconstructDataAny rebuilds data page p of group g as described by
// redundancy index `twin`, preferring the cheap P (XOR) equation and
// falling back to the index's Q partner when the P slot is on a down
// disk — the route that lets crash undo recover a before-image even
// after the disk holding the committed parity twin died.
func (s *Store) ReconstructDataAny(g page.GroupID, p page.PageID, twin int) (page.Buf, error) {
	if s.paritySlotAlive(g, twin) {
		return s.ReconstructData(g, p, twin)
	}
	if s.qSlotAlive(g, twin) {
		return s.reconstructDataViaQ(g, p, twin)
	}
	return nil, fmt.Errorf("core: reconstruct page %d of group %d: redundancy index %d unreachable: %w",
		p, g, twin, disk.ErrFailed)
}

// reconstructDataViaQ solves data page p from the given index's Q page
// and the group's other data pages (charged reads):
// D_i = g^{-i}·(Q ⊕ Σ_{k≠i} g^k·D_k).
func (s *Store) reconstructDataViaQ(g page.GroupID, p page.PageID, twin int) (page.Buf, error) {
	q, _, err := s.Arr.ReadQ(g, twin)
	if err != nil {
		return nil, fmt.Errorf("core: read Q twin %d of group %d: %w", twin, g, err)
	}
	pages := s.Arr.GroupPages(g)
	raw := make([][]byte, len(pages))
	idx := -1
	for i, pg := range pages {
		if pg == p {
			idx = i
			continue
		}
		b, _, err := s.Arr.ReadData(pg)
		if err != nil {
			return nil, fmt.Errorf("core: read page %d: %w", pg, err)
		}
		raw[i] = b
	}
	return page.Buf(erasure.ReconstructOneQ(q, raw, idx)), nil
}

// DescribingTwin picks the parity twin a corrupt data page p must be
// reconstructed from, judged by headers alone.  The key is the *newest*
// valid twin — the group's latest acked parity write — NOT the Figure 7
// current twin: Figure 7 resolves ownership (a loser's working twin is
// never current), but a loser's parity still describes the platter once
// its steal's data write landed, and that is all reconstruction needs.
// What recovery then DOES with the group (undo, launder) is a separate
// question answered by the other passes.
//
// Both the flip and the steal protocols write parity BEFORE data, so the
// newest twin may describe a data write that never reached the platter.
// The pairing echo arbitrates — both protocols stamp the named data page
// with the parity's own timestamp:
//
//   - The newest twin names p itself.  Its payload is the only surviving
//     copy of the acked write to p — parity-as-redo — and it is the
//     reconstruction source precisely BECAUSE the platter disagrees: the
//     stale or missing on-disk image is the fault under repair.  (If the
//     writer is a known loser the write must instead be undone, so the
//     sibling is returned; the torn-repair pass normally handles that
//     case before calling here.)
//   - The newest twin names some other page q (p is a bystander).  A
//     matching header on q proves the twin's data write landed and its
//     payload matches the platter.  A broken echo means the twin ran
//     ahead; reconstructing p from it would XOR the phantom q-delta into
//     the repaired page, so the sibling — the parity the on-disk bytes
//     still satisfy — is used instead.
func (s *Store) DescribingTwin(g page.GroupID, p page.PageID, committed func(page.TxID) bool) (int, error) {
	if s.Twins == nil {
		return 0, nil
	}
	var metas [2]disk.Meta
	for twin := 0; twin < 2; twin++ {
		m, err := s.Arr.ReadParityMeta(g, twin)
		if err != nil {
			return 0, fmt.Errorf("core: describing twin of group %d: %w", g, err)
		}
		metas[twin] = m
	}
	valid := func(m disk.Meta) bool {
		switch m.State {
		case disk.StateCommitted, disk.StateObsolete, disk.StateWorking:
			return true
		}
		return false
	}
	newest := 0
	switch {
	case valid(metas[0]) && valid(metas[1]):
		if metas[1].Timestamp > metas[0].Timestamp {
			newest = 1
		}
	case valid(metas[1]):
		newest = 1
	case !valid(metas[0]):
		return 0, fmt.Errorf("core: describing twin of group %d: no valid parity twin", g)
	}
	m := metas[newest]
	if m.State != disk.StateWorking && !m.PairedSet {
		// Names no page (formatted or wholesale-recomputed parity):
		// nothing can have run ahead of the data.
		return newest, nil
	}
	if m.DirtyPage == p {
		if m.State == disk.StateWorking && committed != nil && !committed(m.Txn) && valid(metas[1-newest]) {
			return 1 - newest, nil // loser's steal: undo from the sibling
		}
		return newest, nil // parity-as-redo: the newest twin defines p
	}
	// Bystander repair: check the pairing echo on the named page.  The
	// raw header is deliberately used — arbitration is about which bytes
	// sit on the platter, not whether they verify.
	loc := s.Arr.DataLoc(m.DirtyPage)
	dm, err := s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
	if err == nil && dm.Timestamp == m.Timestamp {
		return newest, nil
	}
	// Broken echo: the newest twin's data write never landed.  Before
	// falling back to the sibling, make sure the sibling does not predate
	// a *landed* write to the named page: a re-steal refreshes the
	// working twin in place, so if its data write was then cut, the twin
	// version that described the platter (the first steal's) has been
	// destroyed by the rewrite.  The named page's on-disk timestamp sitting
	// above the sibling's betrays exactly that — neither twin matches the
	// platter and p's contents exceed the surviving redundancy.
	if err == nil && dm.Timestamp > metas[1-newest].Timestamp {
		s.deg.unrecoverable.Add(1)
		return 0, fmt.Errorf("core: repair page %d of group %d: %w: twin %d ran ahead of its data write and the platter-consistent parity version was overwritten in place", p, g, ErrUnrecoverableCorruption, newest)
	}
	if valid(metas[1-newest]) {
		return 1 - newest, nil
	}
	return newest, nil
}

// ResyncParity makes every group's current parity twin equal the XOR of
// its on-disk data pages again.  Crash recovery runs it — after loser
// working twins are invalidated and the bitmap is rebuilt, before logged
// undo — to close the window where an in-place parity read-modify-write
// ran ahead of its data write (or a committed twin flip ran ahead of the
// data write behind it).  Returns the number of groups repaired.
//
// If the other twin of a twinned group already matches the data, the
// group simply never finished switching: the matching twin is promoted
// and the stale one invalidated.  Otherwise the current twin's payload
// is recomputed in place, keeping its header.
// Groups are verified (and, when needed, repaired) independently, so the
// scan fans out across Workers; each worker touches only its own group's
// blocks and bitmap slot.  Workers <= 1 scans inline in group order.
func (s *Store) ResyncParity() (int, error) {
	var fixed atomic.Int64
	err := workpool.Run(s.Workers, s.Arr.NumGroups(), func(g int) error {
		did, err := s.resyncGroup(page.GroupID(g))
		if err != nil {
			return err
		}
		if did {
			fixed.Add(1)
		}
		return nil
	})
	return int(fixed.Load()), err
}

// resyncGroup verifies one group's current parity twin (and, with
// QParity, its Q partner) against its data pages and repairs mismatches,
// reporting whether a repair happened.
func (s *Store) resyncGroup(gid page.GroupID) (bool, error) {
	if s.GroupDegraded(gid) {
		// A degraded group cannot be verified against all its
		// members.  If its lost block is a twin, the crash-recovery
		// bitmap pass already re-established the surviving twin
		// against the data; if it is a data page, the current parity
		// *defines* the lost page's value and checkPairedFlip has
		// already demoted a flip whose data write the crash cut off.
		// Either way the restarted rebuild recomputes the group's
		// redundancy.
		return false, nil
	}
	didP, err := s.resyncGroupP(gid)
	if err != nil {
		return didP, err
	}
	didQ, err := s.resyncGroupQ(gid)
	return didP || didQ, err
}

// resyncGroupP is the P (XOR) half of resyncGroup.
func (s *Store) resyncGroupP(gid page.GroupID) (bool, error) {
	cur := s.currentTwin(gid)
	ok, err := s.Arr.VerifyGroup(gid, cur)
	if err != nil {
		return false, fmt.Errorf("core: resync group %d: %w", gid, err)
	}
	if ok {
		return false, nil
	}
	// Rule out silent corruption before interpreting the mismatch as an
	// interrupted read-modify-write.  A write the crash cut off was never
	// acknowledged, so every member still passes the verified read; a
	// lost, misdirected or rotted block trips a detector and must be
	// rebuilt from the current twin's redundancy first — demoting to the
	// twin that matches the stale block, or recomputing parity over it,
	// would launder a committed update away.
	fixed, err := s.repairSilentDamage(gid, cur)
	if err != nil {
		return false, err
	}
	if fixed {
		ok, err = s.Arr.VerifyGroup(gid, cur)
		if err != nil {
			return false, fmt.Errorf("core: resync group %d: %w", gid, err)
		}
		if ok {
			return true, nil
		}
	}
	if s.Twins != nil {
		other := 1 - cur
		okOther, err := s.Arr.VerifyGroup(gid, other)
		if err != nil {
			return false, fmt.Errorf("core: resync group %d: %w", gid, err)
		}
		if okOther {
			om, err := s.Arr.PeekParityMeta(gid, other)
			if err != nil {
				return false, err
			}
			if om.State == disk.StateCommitted {
				s.Twins.Promote(gid, other)
				if err := s.InvalidateIndexAlive(gid, cur); err != nil {
					return false, err
				}
				return true, nil
			}
		}
	}
	meta, err := s.Arr.PeekParityMeta(gid, cur)
	if err != nil {
		return false, err
	}
	if err := s.Arr.RecomputeParity(gid, cur, meta); err != nil {
		return false, fmt.Errorf("core: resync group %d: %w", gid, err)
	}
	return true, nil
}

// resyncGroupQ verifies the current index's Q page against the data and
// recomputes it in place on a mismatch — the Q half of resyncGroup.  A
// cut small write can leave Q ahead of P (Q is written first) or the
// pair ahead of the data write; a wholesale recompute from the platter
// restores the lockstep invariant either way.  The rewritten Q mirrors
// the P twin's (already resynced) header, as lockstep requires.
func (s *Store) resyncGroupQ(gid page.GroupID) (bool, error) {
	if !s.Arr.HasQ() {
		return false, nil
	}
	cur := s.currentTwin(gid)
	ok, err := s.Arr.VerifyGroupQ(gid, cur)
	if err != nil {
		return false, fmt.Errorf("core: resync Q of group %d: %w", gid, err)
	}
	if ok {
		return false, nil
	}
	meta, err := s.Arr.PeekParityMeta(gid, cur)
	if err != nil {
		return false, err
	}
	if err := s.Arr.RecomputeQ(gid, cur, meta); err != nil {
		return false, fmt.Errorf("core: resync Q of group %d: %w", gid, err)
	}
	return true, nil
}

// repairSilentDamage runs a verified scan of group g — every member
// checked against its checksum, location stamp and the write ledger —
// and rebuilds at most one silently corrupt block from the current
// twin's redundancy.  resyncGroup calls it when a group fails the XOR
// identity, because the ledger is what distinguishes a crash from a
// lie: a write the crash cut off was never acknowledged, so the ledger
// still matches the old contents and the scan finds nothing, whereas a
// lost or misdirected write WAS acknowledged — the transaction that
// issued it may have committed — and the stale block trips a detector.
// Reports whether anything was rewritten.
func (s *Store) repairSilentDamage(g page.GroupID, twin int) (bool, error) {
	pages := s.Arr.GroupPages(g)
	data := make([]page.Buf, len(pages))
	bad := -1
	for i, p := range pages {
		b, _, err := s.Arr.ReadData(p)
		switch {
		case err == nil:
			data[i] = b
		case disk.IsCorrupt(err):
			s.deg.corruptDetected.Add(1)
			if bad >= 0 {
				s.deg.unrecoverable.Add(1)
				return false, fmt.Errorf("core: resync group %d has two corrupt data blocks (%v): %w", g, err, ErrUnrecoverableCorruption)
			}
			bad = i
		default:
			return false, fmt.Errorf("core: resync group %d: %w", g, err)
		}
	}

	parity, pMeta, perr := s.Arr.ReadParity(g, twin)
	if perr != nil {
		if !disk.IsCorrupt(perr) {
			return false, fmt.Errorf("core: resync group %d parity: %w", g, perr)
		}
		s.deg.corruptDetected.Add(1)
		if bad >= 0 {
			s.deg.unrecoverable.Add(1)
			return false, fmt.Errorf("core: resync group %d lost both a data block and its parity (%v): %w", g, perr, ErrUnrecoverableCorruption)
		}
		// The parity itself is the lie.  Recompute it from the (all
		// verified) data; the persisted header survives a payload-only
		// checksum failure, otherwise synthesize a fresh committed one.
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if errors.Is(perr, disk.ErrChecksum) {
			if m, merr := s.Arr.PeekParityMeta(g, twin); merr == nil {
				meta = m
			}
		}
		if _, err := s.recomputeParityFrom(g, twin, data, meta); err != nil {
			return false, err
		}
		s.deg.readRepairs.Add(1)
		return true, nil
	}

	if bad < 0 {
		return false, nil
	}
	// Rebuild the flagged data block from parity + survivors, restoring
	// a flip-pairing header if the parity names this page.
	survivors := [][]byte{parity}
	for i, b := range data {
		if i != bad {
			survivors = append(survivors, b)
		}
	}
	meta := disk.Meta{}
	if pMeta.PairedSet && pMeta.DirtyPage == pages[bad] {
		meta = disk.Meta{Timestamp: pMeta.Timestamp}
	}
	rebuilt := xorparity.Reconstruct(s.Arr.PageSize(), survivors...)
	if err := s.Arr.WriteData(pages[bad], rebuilt, meta); err != nil {
		return false, fmt.Errorf("core: resync repair page %d: %w", pages[bad], err)
	}
	s.deg.readRepairs.Add(1)
	return true, nil
}

// SetInjector installs (or removes) a fault injector on every drive of
// the store's array.
func (s *Store) SetInjector(inj disk.Injector) { s.Arr.SetInjector(inj) }

// RebuildAfterCrash reconstructs the volatile twin bitmap using the
// Current_Parity scan (Figure 7), resolving working headers through the
// supplied outcome function.  Call after all loser working twins have
// been invalidated.
func (s *Store) RebuildAfterCrash(committed func(page.TxID) bool) error {
	if s.Twins == nil {
		return nil
	}
	return s.Twins.RebuildBitmap(committed)
}

// RebuildAfterCrashDegraded is the bitmap rebuild for a restart with one
// disk down.  Groups with both twins off the down disk run the normal
// Figure 7 comparison.  A group whose twin slot is positionally down
// gets its surviving twin established as the group's sole authoritative
// parity: verified against the on-disk data and, if it does not match
// (the dead slot held the only describing parity — e.g. a winner's
// un-laundered working twin died with the disk), recomputed wholesale in
// the committed state.  All its data pages are readable — the twin is
// the group's only block on the down disk — so the recompute always
// succeeds.  The dead slot itself is *deferred*: the restarted online
// rebuild recomputes it from scratch.  Returns the number of deferred
// parity groups.
func (s *Store) RebuildAfterCrashDegraded(committed func(page.TxID) bool) (int, error) {
	deferred := 0
	if s.Twins == nil {
		// Single parity keeps no bitmap; just count the groups whose
		// parity block is gone so the caller can report them deferred.
		for g := 0; g < s.Arr.NumGroups(); g++ {
			if s.degraded && s.isDown(s.Arr.ParityLoc(page.GroupID(g), 0).Disk) {
				deferred++
			}
		}
		return deferred, nil
	}
	hasQ := s.Arr.HasQ()
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		deadSlots := false
		for t := 0; t < 2; t++ {
			if !s.paritySlotAlive(gid, t) || (hasQ && !s.qSlotAlive(gid, t)) {
				deadSlots = true
			}
		}
		if !deadSlots {
			cur, err := s.Twins.CurrentParityFromDisk(gid, committed)
			if err != nil {
				return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
			}
			if s.GroupDegraded(gid) {
				// The group's lost block(s) are data pages, so the parity
				// cannot be verified by recomputation (ResyncParity skips
				// it); check the flip pairing instead and fall back to the
				// older twin when the Figure 7 winner's data write never
				// reached disk.
				cur, err = s.checkPairedFlip(gid, cur, committed)
				if err != nil {
					return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
				}
			}
			s.Twins.Promote(gid, cur)
			continue
		}
		deferred++
		lostData := false
		for _, p := range s.Arr.GroupPages(gid) {
			if s.pageUnavailable(p) {
				lostData = true
				break
			}
		}
		if !lostData {
			// Every data page is readable: establish the index with the
			// most surviving redundancy as the group's sole authority —
			// verified against the on-disk data and recomputed wholesale
			// in the committed state when it does not match (the dead
			// slot may have held the only describing parity).  The dead
			// slots themselves are deferred to the restarted rebuild.
			target := s.bestAliveIndex(gid)
			if err := s.establishIndex(gid, target); err != nil {
				return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
			}
			s.Twins.Promote(gid, target)
			if err := s.launderAliveWorking(gid, target, committed); err != nil {
				return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
			}
			continue
		}
		// Two overlapping losses hit both a data page and a redundancy
		// slot (QParity array): nothing can be recomputed, so arbitrate
		// the describing index from the surviving headers alone.
		cur, err := s.degradedCurrentIndex(gid, committed)
		if err != nil {
			return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
		}
		s.Twins.Promote(gid, cur)
		if err := s.launderAliveWorking(gid, cur, committed); err != nil {
			return deferred, fmt.Errorf("core: degraded bitmap rebuild of group %d: %w", g, err)
		}
	}
	return deferred, nil
}

// launderAliveWorking finishes Figure 8 for a dead-slot group after its
// describing index is settled: any alive slot still carrying a working
// header is laundered in place.  The normal post-bitmap laundering pass
// skips dead-slot groups (their re-establishment is wholesale), but a
// dead-slot group that kept its steal-era headers — arbitration in
// degradedCurrentIndex promotes a committed winner's working twin
// without rewriting it, and establishIndex only touches the one target
// index — would otherwise surface working state after restart.  The
// promoted index's header becomes committed under its own timestamp (its
// writer committed, or arbitration would not have picked it); any other
// index's working slot describes a superseded steal — a committed
// winner's older state or a loser already unwound by the undo passes —
// and is invalidated, the abort transition.
func (s *Store) launderAliveWorking(g page.GroupID, cur int, committed func(page.TxID) bool) error {
	hasQ := s.Arr.HasQ()
	for t := 0; t < 2; t++ {
		slots := []struct {
			alive bool
			read  func() (disk.Meta, error)
			write func(disk.Meta) error
		}{
			{s.paritySlotAlive(g, t),
				func() (disk.Meta, error) { return s.Arr.ReadParityMeta(g, t) },
				func(m disk.Meta) error { return s.Arr.WriteParityMeta(g, t, m) }},
			{hasQ && s.qSlotAlive(g, t),
				func() (disk.Meta, error) { return s.Arr.ReadQMeta(g, t) },
				func(m disk.Meta) error { return s.Arr.WriteQMeta(g, t, m) }},
		}
		for _, sl := range slots {
			if !sl.alive {
				continue
			}
			m, err := sl.read()
			if err != nil {
				return err
			}
			if m.State != disk.StateWorking {
				continue
			}
			out := disk.Meta{State: disk.StateInvalid, Timestamp: 0}
			if t == cur && committed != nil && committed(m.Txn) {
				out = disk.Meta{State: disk.StateCommitted, Timestamp: m.Timestamp, Txn: m.Txn}
			}
			if err := sl.write(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// bestAliveIndex returns the redundancy index with the most reachable
// slots, weighting a live P above a live Q (reads solve through the
// cheap XOR equation).  Ties favour index 0, matching the formatted
// state.
func (s *Store) bestAliveIndex(g page.GroupID) int {
	hasQ := s.Arr.HasQ()
	score := func(t int) int {
		n := 0
		if s.paritySlotAlive(g, t) {
			n += 2
		}
		if hasQ && s.qSlotAlive(g, t) {
			n++
		}
		return n
	}
	if score(1) > score(0) {
		return 1
	}
	return 0
}

// establishIndex makes index t's reachable slots describe the on-disk
// data: each alive slot is kept when its header is committed and its
// payload verifies, and recomputed committed with a fresh timestamp
// otherwise.  Every data page of the group must be readable.
func (s *Store) establishIndex(g page.GroupID, t int) error {
	var freshTS page.Timestamp
	fresh := func() disk.Meta {
		if freshTS == 0 {
			freshTS = s.TM.NextTimestamp()
		}
		return disk.Meta{State: disk.StateCommitted, Timestamp: freshTS}
	}
	if s.paritySlotAlive(g, t) {
		m, err := s.Arr.ReadParityMeta(g, t)
		if err != nil {
			return err
		}
		ok := false
		if m.State == disk.StateCommitted {
			ok, err = s.Arr.VerifyGroup(g, t)
			if err != nil {
				return err
			}
		}
		if !ok {
			if err := s.Arr.RecomputeParity(g, t, fresh()); err != nil {
				return fmt.Errorf("core: recompute surviving twin of group %d: %w", g, err)
			}
		}
	}
	if s.Arr.HasQ() && s.qSlotAlive(g, t) {
		m, err := s.Arr.ReadQMeta(g, t)
		if err != nil {
			return err
		}
		ok := false
		if m.State == disk.StateCommitted {
			ok, err = s.Arr.VerifyGroupQ(g, t)
			if err != nil {
				return err
			}
		}
		if !ok {
			// Mirror the P partner's committed header when it survived —
			// the lockstep invariant — else stamp fresh committed.
			meta := fresh()
			if s.paritySlotAlive(g, t) {
				if pm, perr := s.Arr.PeekParityMeta(g, t); perr == nil && pm.State == disk.StateCommitted {
					meta = pm
				}
			}
			if err := s.Arr.RecomputeQ(g, t, meta); err != nil {
				return fmt.Errorf("core: recompute surviving Q of group %d: %w", g, err)
			}
		}
	}
	return nil
}

// degradedCurrentIndex arbitrates the describing index of a group that
// lost both a data page and a redundancy slot (two overlapping losses
// on a QParity array).  Each index is judged by whatever header of it
// survives — its P twin's when alive, else its Q partner's, which
// mirrors it (the lockstep invariant).  The Figure 7 rules apply
// (committed/obsolete valid, working valid when the writer committed,
// larger timestamp wins), followed by the paired-flip echo check
// against the named data page when it is readable: a committed flip
// whose data write never landed must not define the lost page's value
// when the other index is usable, so a broken echo launders the other
// index to committed on its alive slots and demotes the winner.
func (s *Store) degradedCurrentIndex(g page.GroupID, committed func(page.TxID) bool) (int, error) {
	var metas [2]disk.Meta
	var have [2]bool
	for t := 0; t < 2; t++ {
		switch {
		case s.paritySlotAlive(g, t):
			m, err := s.Arr.ReadParityMeta(g, t)
			if err != nil {
				return 0, err
			}
			metas[t], have[t] = m, true
		case s.qSlotAlive(g, t):
			m, err := s.Arr.ReadQMeta(g, t)
			if err != nil {
				return 0, err
			}
			metas[t], have[t] = m, true
		}
	}
	valid := func(t int) bool {
		if !have[t] {
			return false
		}
		switch metas[t].State {
		case disk.StateCommitted, disk.StateObsolete:
			return true
		case disk.StateWorking:
			return committed != nil && committed(metas[t].Txn)
		}
		return false
	}
	var cur int
	switch {
	case valid(0) && valid(1):
		cur = 0
		if metas[1].Timestamp > metas[0].Timestamp {
			cur = 1
		}
	case valid(0):
		cur = 0
	case valid(1):
		cur = 1
	default:
		return 0, fmt.Errorf("core: group %d has no valid redundancy index", g)
	}
	m := metas[cur]
	if m.State != disk.StateCommitted || !m.PairedSet || s.pageUnavailable(m.DirtyPage) || !valid(1-cur) {
		return cur, nil
	}
	_, dm, err := s.Arr.ReadData(m.DirtyPage)
	if err != nil {
		// The named page cannot arbitrate; keep the winner rather than
		// promote on a guess.
		return cur, nil
	}
	if dm.Timestamp == m.Timestamp {
		return cur, nil
	}
	if metas[1-cur].State != disk.StateCommitted {
		lm := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if s.qSlotAlive(g, 1-cur) {
			if err := s.Arr.WriteQMeta(g, 1-cur, lm); err != nil {
				return cur, err
			}
		}
		if s.paritySlotAlive(g, 1-cur) {
			if err := s.Arr.WriteParityMeta(g, 1-cur, lm); err != nil {
				return cur, err
			}
		}
	}
	inv := disk.Meta{State: disk.StateInvalid, Timestamp: 0}
	if s.qSlotAlive(g, cur) {
		if err := s.Arr.WriteQMeta(g, cur, inv); err != nil {
			return cur, err
		}
	}
	if s.paritySlotAlive(g, cur) {
		if err := s.Arr.WriteParityMeta(g, cur, inv); err != nil {
			return cur, err
		}
	}
	return 1 - cur, nil
}

// checkPairedFlip validates the Figure 7 winner of a degraded group
// whose lost block is a data page.  A committed small-write flip records
// which data page it wrote (DirtyPage + PairedSet) and stamps that page
// with the parity's timestamp (flipCommitted); if the crash landed
// between the parity write and the data write, the pair is broken — the
// winner describes data that never reached disk, and through the parity
// equation it would assign the unreadable dead page a garbage value.
// The other twin, untouched by the flip, still describes the on-disk
// contents, so it is demoted back to current and the half-finished flip
// invalidated.  The interrupted write's own page is consistent either
// way: its transaction cannot have logged EOT past an unfinished flush,
// so the old on-disk contents are exactly what UNDO wants.
//
// A pair that names the dead page itself is unverifiable; the winner is
// kept (a degraded parity-only write carries no pairing, so this arises
// only for flips that completed before the disk died with the crash).
//
// The fallback twin is whatever the flip was computed from — the current
// twin of the clean pre-flip group — so its *payload* describes the
// on-disk data whatever its header says: committed, obsolete (an older
// flip's leftover, or the formatted state), or working with a committed
// writer (a winner's steal the laundering pass has not reached).  All
// three are accepted and laundered to committed; a working header whose
// writer did not commit cannot be current under a completed flip (the
// group would have been dirty and the flip never issued), so it is
// refused defensively.
func (s *Store) checkPairedFlip(g page.GroupID, cur int, committed func(page.TxID) bool) (int, error) {
	m, err := s.Arr.ReadParityMeta(g, cur)
	if err != nil {
		return cur, err
	}
	if m.State != disk.StateCommitted || !m.PairedSet || s.pageUnavailable(m.DirtyPage) {
		return cur, nil
	}
	_, dm, err := s.Arr.ReadData(m.DirtyPage)
	if err != nil {
		return cur, err
	}
	if dm.Timestamp == m.Timestamp {
		return cur, nil
	}
	om, err := s.Arr.ReadParityMeta(g, 1-cur)
	if err != nil {
		return cur, err
	}
	usable := om.State == disk.StateCommitted || om.State == disk.StateObsolete ||
		(om.State == disk.StateWorking && committed != nil && committed(om.Txn))
	if !usable {
		// No usable fallback — keep the winner rather than promote
		// garbage.
		return cur, nil
	}
	if om.State != disk.StateCommitted {
		m := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if s.Arr.HasQ() {
			if err := s.Arr.WriteQMeta(g, 1-cur, m); err != nil {
				return cur, err
			}
		}
		if err := s.Arr.WriteParityMeta(g, 1-cur, m); err != nil {
			return cur, err
		}
	}
	if err := s.InvalidateIndexAlive(g, cur); err != nil {
		return cur, err
	}
	return 1 - cur, nil
}

// ResetVolatile drops the store's main-memory state (Dirty_Set, twin
// bitmap) — the system crash.
func (s *Store) ResetVolatile() {
	if s.Dirty != nil {
		s.Dirty.Reset()
	}
	if s.Twins != nil {
		s.Twins.Reset()
	}
}

// VerifyParityInvariant checks, for every group, that the current twin's
// parity equals the XOR of the group's on-disk data pages (clean groups),
// or that the working twin does (dirty groups).  Free (Peek) I/O;
// verification aid for tests.
//
// On a degraded array only what redundancy still pins down is checked: a
// group whose lost block is a parity twin has its surviving twin
// verified against the (fully readable) data; a group whose lost block
// is a data page is skipped, since the current parity *defines* the lost
// page's value and the platter under the dead position holds stale bits
// the Peek I/O must not be compared against.
func (s *Store) VerifyParityInvariant() error {
	hasQ := s.Arr.HasQ()
	for g := 0; g < s.Arr.NumGroups(); g++ {
		gid := page.GroupID(g)
		if s.GroupDegraded(gid) {
			if s.Twins == nil {
				// A single-parity array lost its parity block or a data
				// page: nothing verifiable remains.
				continue
			}
			lostData := false
			for _, p := range s.Arr.GroupPages(gid) {
				if s.pageUnavailable(p) {
					lostData = true
					break
				}
			}
			if lostData {
				// The redundancy *defines* the lost pages' values and the
				// platter under the dead positions holds stale bits the
				// Peek I/O must not be compared against.
				continue
			}
			// Only redundancy slots are lost: the established index's
			// surviving slots must describe the (fully readable) data.
			t := s.currentTwin(gid)
			if s.paritySlotAlive(gid, t) {
				ok, err := s.Arr.VerifyGroup(gid, t)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("core: degraded group %d parity invariant violated (surviving twin %d)", g, t)
				}
			}
			if hasQ && s.qSlotAlive(gid, t) {
				ok, err := s.Arr.VerifyGroupQ(gid, t)
				if err != nil {
					return err
				}
				if !ok {
					return fmt.Errorf("core: degraded group %d Q invariant violated (surviving Q twin %d)", g, t)
				}
			}
			continue
		}
		twin := 0
		if s.Twins != nil {
			twin = s.Twins.Current(gid)
			if s.Dirty != nil {
				if e, dirty := s.Dirty.Lookup(gid); dirty {
					twin = e.WorkingTwin
				}
			}
		}
		ok, err := s.Arr.VerifyGroup(gid, twin)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: group %d parity invariant violated (twin %d)", g, twin)
		}
		if hasQ {
			ok, err = s.Arr.VerifyGroupQ(gid, twin)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("core: group %d Q invariant violated (twin %d)", g, twin)
			}
		}
	}
	return nil
}
