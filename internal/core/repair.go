package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// RebuildDataPage reconstructs one data page from its group's
// redundancy — the valid parity view plus the other members — writes it
// back, and returns the contents.  For a dirty group the working twin is
// the parity of the on-disk data; for a clean group the current twin is.
// The dirty page's crash-undo transaction tag is restored in its header.
func (s *Store) RebuildDataPage(p page.PageID) (page.Buf, error) {
	g := s.Arr.GroupOf(p)
	twin := 0
	meta := disk.Meta{}
	if s.Twins != nil {
		twin = s.Twins.Current(g)
		if s.Dirty != nil {
			if e, dirty := s.Dirty.Lookup(g); dirty {
				twin = e.WorkingTwin
				if e.Page == p {
					meta.Txn = e.Txn
				}
			}
		}
	}
	parity, _, err := s.ReadParityRepair(g, twin)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild page %d: read parity: %w", p, err)
	}
	survivors := [][]byte{parity}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return nil, fmt.Errorf("core: rebuild page %d: read survivor %d: %w", p, q, err)
		}
		survivors = append(survivors, b)
	}
	rebuilt := page.Buf(xorparity.Reconstruct(s.Arr.PageSize(), survivors...))
	if err := s.Arr.WriteData(p, rebuilt, meta); err != nil {
		return nil, fmt.Errorf("core: rebuild page %d: write: %w", p, err)
	}
	return rebuilt, nil
}

// ReadPageRepair reads a data page, transparently repairing a latent
// sector error (checksum mismatch) from the group's redundancy — the
// inline counterpart of the Scrub pass, so a single bad sector never
// surfaces as an application error on a redundant array.
func (s *Store) ReadPageRepair(p page.PageID) (page.Buf, error) {
	if s.pageUnavailable(p) {
		return s.readDegraded(p)
	}
	b, _, err := s.Arr.ReadData(p)
	if err == nil {
		return b, nil
	}
	if !errors.Is(err, disk.ErrChecksum) {
		return nil, fmt.Errorf("core: read page %d: %w", p, err)
	}
	rebuilt, rerr := s.RebuildDataPage(p)
	if rerr != nil {
		return nil, fmt.Errorf("core: read repair of page %d failed: %w (original: %v)", p, rerr, err)
	}
	return rebuilt, nil
}

// ReadParityRepair reads parity twin `twin` of group g, transparently
// repairing a latent checksum error by recomputing the parity from the
// group's data pages — but only when this twin is the one describing the
// on-disk data (the current twin of a clean group, or the working twin
// of a dirty one).  The other twin holds *history* — the committed
// pre-transaction parity of a dirty group, or an obsolete version — that
// the data cannot regenerate, so its errors surface to the caller.
func (s *Store) ReadParityRepair(g page.GroupID, twin int) (page.Buf, disk.Meta, error) {
	b, m, err := s.Arr.ReadParity(g, twin)
	if err == nil || !errors.Is(err, disk.ErrChecksum) {
		return b, m, err
	}
	if twin != s.describingTwin(g) {
		return nil, disk.Meta{}, fmt.Errorf("core: read twin %d of group %d: %w", twin, g, err)
	}
	meta, merr := s.Arr.PeekParityMeta(g, twin)
	if merr != nil {
		return nil, disk.Meta{}, fmt.Errorf("core: read twin %d of group %d: %w", twin, g, err)
	}
	if rerr := s.Arr.RecomputeParity(g, twin, meta); rerr != nil {
		return nil, disk.Meta{}, fmt.Errorf("core: parity repair of group %d twin %d failed: %w (original: %v)", g, twin, rerr, err)
	}
	s.deg.parityRepairs.Add(1)
	return s.Arr.ReadParity(g, twin)
}
