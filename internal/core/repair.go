package core

import (
	"errors"
	"fmt"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// RebuildDataPage reconstructs one data page from its group's
// redundancy — the valid parity view plus the other members — writes it
// back, and returns the contents.  For a dirty group the working twin is
// the parity of the on-disk data; for a clean group the current twin is.
// The rebuilt page's header is restored from what the parity header
// records: a dirty page gets its crash-undo transaction tag (and the
// working twin's timestamp, so the re-steal detection keeps working), and
// a page named by a committed flip pairing gets the pairing timestamp
// back (so a later degraded restart does not mistake the completed flip
// for a broken one).
//
// A survivor that is itself unreachable or corrupt means the group has
// lost two blocks: the rebuild fails with ErrUnrecoverableCorruption
// rather than fabricating contents.
func (s *Store) RebuildDataPage(p page.PageID) (page.Buf, error) {
	g := s.Arr.GroupOf(p)
	twin := 0
	var dirtyTxn page.TxID
	isDirtyPage := false
	if s.Twins != nil {
		twin = s.Twins.Current(g)
		if s.Dirty != nil {
			if e, dirty := s.Dirty.Lookup(g); dirty {
				twin = e.WorkingTwin
				if e.Page == p {
					isDirtyPage = true
					dirtyTxn = e.Txn
				}
			}
		}
	}
	parity, pm, err := s.ReadParityRepair(g, twin)
	if err != nil {
		if disk.IsCorrupt(err) || errors.Is(err, disk.ErrFailed) {
			if s.Arr.HasQ() {
				// The P equation is gone; the index's Q partner solves the
				// same data state (lockstep).
				return s.rebuildDataPageViaSolve(g, p, twin, isDirtyPage, dirtyTxn)
			}
			return nil, fmt.Errorf("core: rebuild page %d: read parity: %v: %w", p, err, ErrUnrecoverableCorruption)
		}
		return nil, fmt.Errorf("core: rebuild page %d: read parity: %w", p, err)
	}
	survivors := [][]byte{parity}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		if s.pageUnavailable(q) {
			if s.Arr.HasQ() {
				// p plus a dead sibling are two erasures: P and Q together.
				return s.rebuildDataPageViaSolve(g, p, twin, isDirtyPage, dirtyTxn)
			}
			return nil, fmt.Errorf("core: rebuild page %d: survivor %d unreachable: %w", p, q, ErrUnrecoverableCorruption)
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			if disk.IsCorrupt(err) || errors.Is(err, disk.ErrFailed) {
				if s.Arr.HasQ() && disk.IsCorrupt(err) {
					// p plus a corrupt sibling: solve both from P and Q.
					return s.rebuildDataPageViaSolve(g, p, twin, isDirtyPage, dirtyTxn)
				}
				return nil, fmt.Errorf("core: rebuild page %d: read survivor %d: %v: %w", p, q, err, ErrUnrecoverableCorruption)
			}
			return nil, fmt.Errorf("core: rebuild page %d: read survivor %d: %w", p, q, err)
		}
		survivors = append(survivors, b)
	}
	meta := disk.Meta{}
	switch {
	case isDirtyPage:
		meta = disk.Meta{Txn: dirtyTxn, Timestamp: pm.Timestamp}
	case pm.PairedSet && pm.DirtyPage == p:
		meta = disk.Meta{Timestamp: pm.Timestamp}
	}
	rebuilt := page.Buf(xorparity.Reconstruct(s.Arr.PageSize(), survivors...))
	if err := s.Arr.WriteData(p, rebuilt, meta); err != nil {
		return nil, fmt.Errorf("core: rebuild page %d: write: %w", p, err)
	}
	return rebuilt, nil
}

// rebuildDataPageViaSolve is RebuildDataPage's fallback on QParity arrays
// when the plain P route runs out of equations: the group is solved
// through the describing index's P and Q equations together (unreachable
// and corrupt members are erasures) and page p's value written back under
// a header restored from the index's surviving redundancy header — P's if
// readable, else its Q mirror.
func (s *Store) rebuildDataPageViaSolve(g page.GroupID, p page.PageID, twin int, isDirtyPage bool, dirtyTxn page.TxID) (page.Buf, error) {
	vals, err := s.SolveGroup(g, twin)
	if err != nil {
		return nil, fmt.Errorf("core: rebuild page %d: %w", p, err)
	}
	var hdr disk.Meta
	haveHdr := false
	if s.paritySlotAlive(g, twin) {
		if m, merr := s.Arr.ReadParityMeta(g, twin); merr == nil {
			hdr, haveHdr = m, true
		}
	}
	if !haveHdr && s.qSlotAlive(g, twin) {
		if m, merr := s.Arr.ReadQMeta(g, twin); merr == nil {
			hdr = m
		}
	}
	meta := disk.Meta{}
	switch {
	case isDirtyPage:
		meta = disk.Meta{Txn: dirtyTxn, Timestamp: hdr.Timestamp}
	case hdr.PairedSet && hdr.DirtyPage == p:
		meta = disk.Meta{Timestamp: hdr.Timestamp}
	}
	rebuilt := vals[s.groupIndexOf(g, p)]
	if err := s.Arr.WriteData(p, rebuilt, meta); err != nil {
		return nil, fmt.Errorf("core: rebuild page %d: write: %w", p, err)
	}
	return rebuilt, nil
}

// ReadPageRepair reads a data page verified end to end, transparently
// repairing any silent corruption (checksum mismatch, misdirected-write
// stamp, lost-write ledger) from the group's redundancy — the inline
// counterpart of the scrub pass, so a single bad block never surfaces as
// an application error, and corrupt bytes are never served.  When the
// redundancy cannot reconstruct the block, ErrUnrecoverableCorruption is
// returned instead.
func (s *Store) ReadPageRepair(p page.PageID) (page.Buf, error) {
	if s.pageUnavailable(p) {
		return s.readDegraded(p)
	}
	b, _, err := s.Arr.ReadData(p)
	if err == nil {
		return b, nil
	}
	if !disk.IsCorrupt(err) {
		return nil, fmt.Errorf("core: read page %d: %w", p, err)
	}
	s.deg.corruptDetected.Add(1)
	rebuilt, rerr := s.RebuildDataPage(p)
	if rerr != nil {
		if errors.Is(rerr, ErrUnrecoverableCorruption) {
			s.deg.unrecoverable.Add(1)
		}
		return nil, fmt.Errorf("core: read repair of page %d failed: %w (original: %v)", p, rerr, err)
	}
	s.deg.readRepairs.Add(1)
	return rebuilt, nil
}

// ReadParityRepair reads parity twin `twin` of group g verified end to
// end, transparently repairing silent corruption by recomputing the
// parity from the group's data pages — but only when this twin is the one
// describing the on-disk data (the current twin of a clean group, or the
// working twin of a dirty one).  The other twin holds *history* — the
// committed pre-transaction parity of a dirty group, or an obsolete
// version — that the data cannot regenerate, so its errors surface to the
// caller.
//
// The repaired twin's header: when only the payload was damaged
// (checksum mismatch — bit rot or a torn write keep the block's own
// header) the persisted header is reused; when the header itself is gone
// (a misdirected write deposited a foreign one, or a lost write left a
// stale old version) it is resynthesized from the store's in-memory
// state — a working header with the dirty entry's tag for a dirty group,
// a fresh committed header for a clean one.
func (s *Store) ReadParityRepair(g page.GroupID, twin int) (page.Buf, disk.Meta, error) {
	b, m, err := s.Arr.ReadParity(g, twin)
	if err == nil || !disk.IsCorrupt(err) {
		return b, m, err
	}
	s.deg.corruptDetected.Add(1)
	if twin != s.describingTwin(g) {
		return nil, disk.Meta{}, fmt.Errorf("core: read twin %d of group %d: %w", twin, g, err)
	}
	var meta disk.Meta
	if errors.Is(err, disk.ErrChecksum) {
		pm, merr := s.Arr.PeekParityMeta(g, twin)
		if merr != nil {
			return nil, disk.Meta{}, fmt.Errorf("core: read twin %d of group %d: %w", twin, g, err)
		}
		meta = pm
	} else {
		meta = s.synthesizeParityMeta(g, twin)
	}
	if rerr := s.Arr.RecomputeParity(g, twin, meta); rerr != nil {
		if disk.IsCorrupt(rerr) || errors.Is(rerr, disk.ErrFailed) {
			s.deg.unrecoverable.Add(1)
			return nil, disk.Meta{}, fmt.Errorf("core: parity repair of group %d twin %d: %v: %w", g, twin, rerr, ErrUnrecoverableCorruption)
		}
		return nil, disk.Meta{}, fmt.Errorf("core: parity repair of group %d twin %d failed: %w (original: %v)", g, twin, rerr, err)
	}
	s.deg.parityRepairs.Add(1)
	return s.Arr.ReadParity(g, twin)
}

// synthesizeParityMeta rebuilds the header of the describing parity twin
// of group g from in-memory state, for repairs where the on-platter
// header cannot be trusted (misdirected or lost writes).  A dirty group's
// working twin gets a working header carrying the dirty entry's
// transaction and covered page; a clean group's current twin gets a fresh
// committed header (the pairing bits are dropped — conservative, the pair
// check simply does not fire).
func (s *Store) synthesizeParityMeta(g page.GroupID, twin int) disk.Meta {
	if s.Dirty != nil {
		if e, dirty := s.Dirty.Lookup(g); dirty && e.WorkingTwin == twin {
			return disk.Meta{
				State: disk.StateWorking, Timestamp: s.TM.NextTimestamp(),
				Txn: e.Txn, DirtyPage: e.Page,
			}
		}
	}
	return disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
}
