// The integrity plane: verified reads with in-place read-repair.
//
// Every payload read the store issues is verified end to end — the drive
// checks the sector CRC, the disk layer checks the self-describing
// location stamp, and the array checks the NVRAM write ledger (see
// internal/disk and internal/diskarray).  A read that fails any of those
// checks (disk.IsCorrupt) never surfaces its bytes; instead the store
// reconstructs the block in place from the group's redundancy, exactly
// like the scrub pass would, and only the rebuilt contents are returned.
// When the group's redundancy is already consumed — a member is dead, or
// a second block of the group is corrupt — the typed
// ErrUnrecoverableCorruption is returned instead of garbage, and the
// explicit-loss machinery upstream decides what to do.
package core

import (
	"errors"
)

// ErrUnrecoverableCorruption reports a corrupt block in a group whose
// redundancy cannot reconstruct it: a second group member is dead or
// corrupt, so single-parity XOR is out of equations.  The block's bytes
// are never returned — callers see this error instead of garbage.
var ErrUnrecoverableCorruption = errors.New("core: corrupt block unrecoverable, group redundancy exhausted")

// IntegrityStats is a snapshot of the integrity plane's counters (see
// IntegrityCounters).
type IntegrityStats struct {
	// CorruptBlocksDetected is the number of reads that failed
	// verification (checksum, location stamp or write ledger) — each one
	// a block of silent corruption that was NOT served to a caller.
	CorruptBlocksDetected uint64
	// ReadRepairs is the number of data blocks reconstructed in place
	// from group redundancy on the read path.
	ReadRepairs uint64
	// UnrecoverableCorruption is the number of corrupt reads whose group
	// redundancy could not reconstruct them (ErrUnrecoverableCorruption
	// returned instead of garbage).
	UnrecoverableCorruption uint64
	// ScrubbedGroups is the number of parity groups fully verified by the
	// online scrub (skipped dirty/degraded groups are not counted).
	ScrubbedGroups uint64
	// ScrubRepairs is the number of blocks (data or parity) the scrub
	// rewrote from redundancy.
	ScrubRepairs uint64
}

// IntegrityCounters returns a snapshot of the cumulative integrity-plane
// counters.
func (s *Store) IntegrityCounters() IntegrityStats {
	return IntegrityStats{
		CorruptBlocksDetected:   s.deg.corruptDetected.Load(),
		ReadRepairs:             s.deg.readRepairs.Load(),
		UnrecoverableCorruption: s.deg.unrecoverable.Load(),
		ScrubbedGroups:          s.deg.scrubbedGroups.Load(),
		ScrubRepairs:            s.deg.scrubRepairs.Load(),
	}
}
