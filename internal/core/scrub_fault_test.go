package core

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/diskarray"
	"repro/internal/fault"
	"repro/internal/page"
)

// TestScrubRepairsInjectedBitFlip drives silent corruption through the
// fault plane rather than Disk.Corrupt: a BitFlip rule flips one payload
// bit of a block write in flight, leaving the stored checksum stale.
// Scrub must detect the latent error and rebuild the block from the
// group's redundancy.
func TestScrubRepairsInjectedBitFlip(t *testing.T) {
	for _, kind := range []diskarray.Kind{diskarray.RAID5Twin, diskarray.ParityStripeTwin} {
		s := newStore(t, kind)
		want := pattern(page.MinSize, 0x5A)

		// Flip bit 77 of the first block write issued after the plane is
		// installed (a page of the WriteCommitted below — data or parity,
		// scrub must cope with either).
		plane := fault.NewPlane(fault.Schedule{fault.BitFlip(0, 77)})
		s.SetInjector(plane)
		if err := s.WriteCommitted(7, want, nil); err != nil {
			t.Fatalf("%v: write: %v", kind, err)
		}
		s.SetInjector(nil)

		// The corruption is latent: parity no longer matches, or the data
		// block itself fails its checksum on read.
		if s.VerifyParityInvariant() == nil {
			if _, err := s.ReadPage(7); !errors.Is(err, disk.ErrChecksum) {
				t.Fatalf("%v: injected flip left no latent error (read err %v)", kind, err)
			}
		}

		rep, err := s.Scrub()
		if err != nil {
			t.Fatalf("%v: scrub: %v", kind, err)
		}
		if rep.LatentErrors != 1 || rep.Repaired != 1 {
			t.Fatalf("%v: report %+v, want 1 latent / 1 repaired", kind, rep)
		}
		got, err := s.ReadPage(7)
		if err != nil {
			t.Fatalf("%v: read after scrub: %v", kind, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%v: page content not restored", kind)
		}
		if err := s.VerifyParityInvariant(); err != nil {
			t.Fatalf("%v: parity after scrub: %v", kind, err)
		}
	}
}
