// Degraded-mode serving: with one disk down, every parity group has lost
// at most one block (the array organizations place at most one block of a
// group per disk), so reads of the lost block reconstruct on the fly from
// parity + survivors and writes maintain parity without the dead member.
//
// The paper-faithful twist is the steal policy: a group whose redundancy
// is consumed by the disk loss cannot also fund transaction recovery, so
// CanStealNoLog refuses degraded groups and the engine falls back to
// UNDO logging until the rebuild restores them (see DESIGN.md).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// DegradedStats is a snapshot of the degraded-serving and latent-repair
// work done by the store (see DegradedCounters).
type DegradedStats struct {
	// DegradedReads is the number of reads served by on-the-fly
	// reconstruction because the target block's disk was down.
	DegradedReads uint64
	// DegradedWrites is the number of writes that maintained parity
	// without a dead group member.
	DegradedWrites uint64
	// ParityRepairs is the number of parity pages recomputed in place
	// after a latent checksum error (ReadParityRepair).
	ParityRepairs uint64
	// RebuiltGroups is the number of groups restored by the online
	// rebuild worker since the last disk loss.
	RebuiltGroups uint64
}

// degCounters is the live form of DegradedStats and IntegrityStats.  The
// hot-path counters are bumped by ordinary page operations running
// concurrently under the engine's shared gate, so they are atomics rather
// than fields behind a lock.
type degCounters struct {
	degradedReads  atomic.Uint64
	degradedWrites atomic.Uint64
	parityRepairs  atomic.Uint64
	rebuiltGroups  atomic.Uint64

	// Integrity plane (see integrity.go).
	corruptDetected atomic.Uint64
	readRepairs     atomic.Uint64
	unrecoverable   atomic.Uint64
	scrubbedGroups  atomic.Uint64
	scrubRepairs    atomic.Uint64
}

// EnterDegraded records that disk d is down: reads and writes touching
// its blocks are served from redundancy until LeaveDegraded.  The engine
// calls it (with its mutex held) when the array health machine leaves
// Healthy, after demoting any dirty groups that touch the disk.
func (s *Store) EnterDegraded(d int) {
	s.degraded = true
	s.downDisk = d
	s.restored = make([]bool, s.Arr.NumGroups())
	s.replacement = false
	s.deg.rebuiltGroups.Store(0)
}

// LeaveDegraded returns the store to normal serving: every block is
// reachable again (the disk was rebuilt online or media recovery ran).
func (s *Store) LeaveDegraded() {
	s.degraded = false
	s.downDisk = -1
	s.restored = nil
	s.replacement = false
}

// SetReplacementPresent records whether the down disk's slot holds a
// fresh replacement drive (array health Rebuilding) rather than the dead
// drive itself.  Crash recovery uses this: a replacement drive is
// physically readable, and a parity twin it holds in any state other
// than StateNone was genuinely written after the swap (rebuild restores
// or post-restore steals), so recovery may trust it even though the
// position counts as down for serving purposes.
func (s *Store) SetReplacementPresent(ok bool) { s.replacement = ok }

// PageUnavailable reports whether data page p must not be read from its
// platter: it lives on the down disk and its group has not been restored.
// During crash recovery this is always position-keyed — even when a
// replacement drive is present the page's content is untrustworthy
// (a rebuilt page is indistinguishable from an unrestored zeroed one).
func (s *Store) PageUnavailable(p page.PageID) bool { return s.pageUnavailable(p) }

// DeadTwin returns the parity twin of group g on the down disk, or -1.
func (s *Store) DeadTwin(g page.GroupID) int { return s.deadTwin(g) }

// TwinReadable reports whether parity twin `twin` of group g holds
// trustworthy bits.  Twins off the down disk always do.  A twin on the
// down disk is gone while the dead drive is still in place; once a
// replacement drive is spinning (SetReplacementPresent), a header state
// other than StateNone proves the slot was written after the swap and
// the twin may be used.  The header probe is a charged read, like every
// recovery decision that touches disk.
func (s *Store) TwinReadable(g page.GroupID, twin int) bool {
	if !s.degraded || s.Arr.ParityLoc(g, twin).Disk != s.downDisk {
		return true
	}
	if s.restored != nil && s.restored[g] {
		return true
	}
	if !s.replacement {
		return false
	}
	m, err := s.Arr.ReadParityMeta(g, twin)
	return err == nil && m.State != disk.StateNone
}

// Degraded reports whether the store is serving in degraded mode.
func (s *Store) Degraded() bool { return s.degraded }

// DownDisk returns the disk being served around, or -1.
func (s *Store) DownDisk() int {
	if !s.degraded {
		return -1
	}
	return s.downDisk
}

// MarkRestored records that group g's block on the down disk has been
// reconstructed by the rebuild worker: the group serves normally again.
func (s *Store) MarkRestored(g page.GroupID) {
	if s.restored != nil && !s.restored[g] {
		s.restored[g] = true
		s.deg.rebuiltGroups.Add(1)
	}
}

// DegradedCounters returns a snapshot of the cumulative degraded-serving
// counters.
func (s *Store) DegradedCounters() DegradedStats {
	return DegradedStats{
		DegradedReads:  s.deg.degradedReads.Load(),
		DegradedWrites: s.deg.degradedWrites.Load(),
		ParityRepairs:  s.deg.parityRepairs.Load(),
		RebuiltGroups:  s.deg.rebuiltGroups.Load(),
	}
}

// GroupDegraded reports whether group g currently has an unreachable
// block: the store is degraded, the group has not been restored by the
// rebuild worker, and one of its blocks lives on the down disk.
func (s *Store) GroupDegraded(g page.GroupID) bool {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return false
	}
	return s.GroupOnDisk(g, s.downDisk)
}

// GroupOnDisk reports whether group g keeps a block (data or parity) on
// disk d.
func (s *Store) GroupOnDisk(g page.GroupID, d int) bool {
	for _, p := range s.Arr.GroupPages(g) {
		if s.Arr.DataLoc(p).Disk == d {
			return true
		}
	}
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		if s.Arr.ParityLoc(g, twin).Disk == d {
			return true
		}
	}
	return false
}

// pageUnavailable reports whether data page p is currently unreachable
// (it lives on the down disk and its group has not been restored).
func (s *Store) pageUnavailable(p page.PageID) bool {
	if !s.degraded {
		return false
	}
	if g := s.Arr.GroupOf(p); s.restored != nil && s.restored[g] {
		return false
	}
	return s.Arr.DataLoc(p).Disk == s.downDisk
}

// deadTwin returns the parity twin of group g on the down disk, or -1.
func (s *Store) deadTwin(g page.GroupID) int {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return -1
	}
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		if s.Arr.ParityLoc(g, twin).Disk == s.downDisk {
			return twin
		}
	}
	return -1
}

// describingTwin returns the twin whose parity describes the group's
// on-disk data: the working twin of a dirty group, the current twin of a
// clean one (and 0 on single-parity arrays).
func (s *Store) describingTwin(g page.GroupID) int {
	if s.Dirty != nil {
		if e, dirty := s.Dirty.Lookup(g); dirty {
			return e.WorkingTwin
		}
	}
	return s.currentTwin(g)
}

// readDegraded serves a read of an unreachable data page by on-the-fly
// reconstruction: D = P ⊕ (other data pages), using the twin that
// describes the on-disk data.  Both twins are reachable here — the
// group's only lost block is p itself — so the describing twin always is.
// Nothing is written back; the rebuild worker restores the block.
func (s *Store) readDegraded(p page.PageID) (page.Buf, error) {
	g := s.Arr.GroupOf(p)
	b, err := s.ReconstructData(g, p, s.describingTwin(g))
	if err != nil {
		if disk.IsCorrupt(err) {
			// A survivor (or the describing parity) of an already-degraded
			// group failed verification: the group has lost two blocks and
			// XOR cannot solve for either.  Surface the typed loss instead
			// of reconstructing garbage.
			s.deg.corruptDetected.Add(1)
			s.deg.unrecoverable.Add(1)
			return nil, fmt.Errorf("core: degraded read of page %d: %v: %w", p, err, ErrUnrecoverableCorruption)
		}
		return nil, fmt.Errorf("core: degraded read of page %d: %w", p, err)
	}
	s.deg.degradedReads.Add(1)
	return b, nil
}

// writeDegradedNeeded reports whether writing page p of degraded group g
// needs the special degraded protocol.  When the group's lost block is a
// *different* data page, the ordinary small-write protocol never touches
// it (it reads p's old contents and the parity, both reachable), so the
// normal paths stay in force.
func (s *Store) writeDegradedNeeded(g page.GroupID, p page.PageID) bool {
	if !s.GroupDegraded(g) {
		return false
	}
	return s.pageUnavailable(p) || s.deadTwin(g) >= 0
}

// writeDegraded writes data page p of a group with an unreachable block.
//
// Degraded groups are always clean — the engine demotes their no-log
// steals when the disk goes down and CanStealNoLog refuses new ones — so
// there is no working twin to preserve and the write may recompute
// parity wholesale, which also launders any partial parity state left by
// the failure moment.  Two cases:
//
//   - p itself is lost: its new contents are folded into parity only
//     (P = D_new ⊕ other data); reads reconstruct them on the fly and
//     the rebuild materializes them.  Both twins are reachable; the new
//     parity goes to the obsolete twin committed with a fresh timestamp
//     and the bitmap flips, as in WriteCommitted.
//   - a parity twin is lost: every data page is reachable, so the
//     surviving twin is fully recomputed from data (committed, fresh
//     timestamp) and promoted, then the data page is written.  On a
//     single-parity array whose parity block is lost there is nothing to
//     maintain: the data write alone suffices and the rebuild recomputes
//     parity.
func (s *Store) writeDegraded(p page.PageID, data page.Buf) error {
	g := s.Arr.GroupOf(p)
	s.deg.degradedWrites.Add(1)
	if s.pageUnavailable(p) {
		parity, err := s.parityWithout(g, p, data)
		if err != nil {
			return err
		}
		if s.Twins == nil {
			pMeta, err := s.Arr.PeekParityMeta(g, 0)
			if err != nil {
				return fmt.Errorf("core: degraded write of page %d: %w", p, err)
			}
			if err := s.Arr.WriteParity(g, 0, parity, pMeta); err != nil {
				return fmt.Errorf("core: degraded write of page %d: %w", p, err)
			}
			return nil
		}
		obsolete := s.Twins.Obsolete(g)
		meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
		if err := s.Arr.WriteParity(g, obsolete, parity, meta); err != nil {
			return fmt.Errorf("core: degraded write of page %d: %w", p, err)
		}
		s.Twins.Promote(g, obsolete)
		return nil
	}
	dead := s.deadTwin(g)
	if s.Twins == nil {
		// Single-parity array with its parity block lost: write the data
		// alone; redundancy for this group returns with the rebuild.
		return s.writeData(p, data, disk.Meta{})
	}
	alive := 1 - dead
	parity, err := s.parityWithout(g, p, data)
	if err != nil {
		return err
	}
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
	if err := s.Arr.WriteParity(g, alive, parity, meta); err != nil {
		return fmt.Errorf("core: degraded write of page %d: %w", p, err)
	}
	s.Twins.Promote(g, alive)
	return s.writeData(p, data, disk.Meta{})
}

// parityWithout computes the group's parity with page p's contents taken
// from `data` instead of disk: XOR of data and every other member page.
// Every other member is reachable in both degraded-write cases.
func (s *Store) parityWithout(g page.GroupID, p page.PageID, data page.Buf) (page.Buf, error) {
	blocks := [][]byte{data}
	for _, q := range s.Arr.GroupPages(g) {
		if q == p {
			continue
		}
		b, _, err := s.Arr.ReadData(q)
		if err != nil {
			return nil, fmt.Errorf("core: degraded parity of group %d: read page %d: %w", g, q, err)
		}
		blocks = append(blocks, b)
	}
	return page.Buf(xorparity.Compute(s.Arr.PageSize(), blocks...)), nil
}
