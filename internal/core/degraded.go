// Degraded-mode serving: with disks down, every parity group has lost
// at most one block per down disk (the array organizations place at most
// one block of a group per disk), so reads of lost blocks reconstruct on
// the fly from the group's redundancy equations and writes maintain the
// reachable redundancy without the dead members.  Single-parity and
// twinned arrays tolerate one down disk; QParity arrays solve the P and
// Q equations together (internal/erasure) and tolerate two.
//
// The paper-faithful twist is the steal policy: a group whose redundancy
// is consumed by a disk loss cannot also fund transaction recovery, so
// CanStealNoLog refuses degraded groups and the engine falls back to
// UNDO logging until the rebuild restores them (see DESIGN.md).
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// DegradedStats is a snapshot of the degraded-serving and latent-repair
// work done by the store (see DegradedCounters).
type DegradedStats struct {
	// DegradedReads is the number of reads served by on-the-fly
	// reconstruction because the target block's disk was down.
	DegradedReads uint64
	// DegradedWrites is the number of writes that maintained parity
	// without a dead group member.
	DegradedWrites uint64
	// ParityRepairs is the number of parity pages recomputed in place
	// after a latent checksum error (ReadParityRepair).
	ParityRepairs uint64
	// RebuiltGroups is the number of groups restored by the online
	// rebuild worker since the last disk loss.
	RebuiltGroups uint64
}

// degCounters is the live form of DegradedStats and IntegrityStats.  The
// hot-path counters are bumped by ordinary page operations running
// concurrently under the engine's shared gate, so they are atomics rather
// than fields behind a lock.
type degCounters struct {
	degradedReads  atomic.Uint64
	degradedWrites atomic.Uint64
	parityRepairs  atomic.Uint64
	rebuiltGroups  atomic.Uint64

	// Integrity plane (see integrity.go).
	corruptDetected atomic.Uint64
	readRepairs     atomic.Uint64
	unrecoverable   atomic.Uint64
	scrubbedGroups  atomic.Uint64
	scrubRepairs    atomic.Uint64
}

// EnterDegraded records that the given disks are down: reads and writes
// touching their blocks are served from redundancy until LeaveDegraded.
// The engine calls it (with its mutex held) when the array health
// machine leaves Healthy, after demoting any dirty groups that touch the
// disks.  A second call with a grown down set (a second death while
// single-degraded) resets the restored map: the restarted rebuild must
// revisit every group.
func (s *Store) EnterDegraded(ds ...int) {
	if len(ds) == 0 {
		s.LeaveDegraded()
		return
	}
	s.degraded = true
	s.down = append([]int(nil), ds...)
	s.restored = make([]bool, s.Arr.NumGroups())
	s.replacement = false
	s.deg.rebuiltGroups.Store(0)
}

// LeaveDegraded returns the store to normal serving: every block is
// reachable again (the disks were rebuilt online or media recovery ran).
func (s *Store) LeaveDegraded() {
	s.degraded = false
	s.down = nil
	s.restored = nil
	s.replacement = false
}

// SetReplacementPresent records whether the down disks' slots hold fresh
// replacement drives (array health Rebuilding) rather than the dead
// drives themselves.  Crash recovery uses this: a replacement drive is
// physically readable, and a parity twin it holds in any state other
// than StateNone was genuinely written after the swap (rebuild restores
// or post-restore steals), so recovery may trust it even though the
// position counts as down for serving purposes.
func (s *Store) SetReplacementPresent(ok bool) { s.replacement = ok }

// PageUnavailable reports whether data page p must not be read from its
// platter: it lives on a down disk and its group has not been restored.
// During crash recovery this is always position-keyed — even when a
// replacement drive is present the page's content is untrustworthy
// (a rebuilt page is indistinguishable from an unrestored zeroed one).
func (s *Store) PageUnavailable(p page.PageID) bool { return s.pageUnavailable(p) }

// DeadTwin returns a parity twin of group g on a down disk, or -1.
func (s *Store) DeadTwin(g page.GroupID) int { return s.deadTwin(g) }

// DeadQTwin returns a Q twin of group g on a down disk, or -1.
func (s *Store) DeadQTwin(g page.GroupID) int { return s.deadQTwin(g) }

// TwinReadable reports whether parity twin `twin` of group g holds
// trustworthy bits.  Twins off the down disks always do.  A twin on a
// down disk is gone while the dead drive is still in place; once a
// replacement drive is spinning (SetReplacementPresent), a header state
// other than StateNone proves the slot was written after the swap and
// the twin may be used.  The header probe is a charged read, like every
// recovery decision that touches disk.
func (s *Store) TwinReadable(g page.GroupID, twin int) bool {
	if !s.degraded || !s.isDown(s.Arr.ParityLoc(g, twin).Disk) {
		return true
	}
	if s.restored != nil && s.restored[g] {
		return true
	}
	if !s.replacement {
		return false
	}
	m, err := s.Arr.ReadParityMeta(g, twin)
	return err == nil && m.State != disk.StateNone
}

// QTwinReadable is TwinReadable for the group's Q twin of the same
// index.  Always false on arrays without Q redundancy.
func (s *Store) QTwinReadable(g page.GroupID, twin int) bool {
	if twin >= s.Arr.QParityPages() {
		return false
	}
	if !s.degraded || !s.isDown(s.Arr.QLoc(g, twin).Disk) {
		return true
	}
	if s.restored != nil && s.restored[g] {
		return true
	}
	if !s.replacement {
		return false
	}
	m, err := s.Arr.ReadQMeta(g, twin)
	return err == nil && m.State != disk.StateNone
}

// InvalidateIndexAlive invalidates redundancy index `twin` of group g on
// its reachable slots only — Q first, like twinpage.Invalidate — so that
// recovery and undo paths can retire a twin even when one of the index's
// slots sits on a down disk.  On a healthy array it is exactly
// twinpage.Invalidate.
func (s *Store) InvalidateIndexAlive(g page.GroupID, twin int) error {
	meta := disk.Meta{State: disk.StateInvalid, Timestamp: 0}
	if s.Arr.HasQ() && s.qSlotAlive(g, twin) {
		if err := s.Arr.WriteQMeta(g, twin, meta); err != nil {
			return fmt.Errorf("core: invalidate Q twin %d of group %d: %w", twin, g, err)
		}
	}
	if s.paritySlotAlive(g, twin) {
		if err := s.Arr.WriteParityMeta(g, twin, meta); err != nil {
			return fmt.Errorf("core: invalidate twin %d of group %d: %w", twin, g, err)
		}
	}
	return nil
}

// Degraded reports whether the store is serving in degraded mode.
func (s *Store) Degraded() bool { return s.degraded }

// DownDisk returns the oldest disk being served around, or -1.  With two
// disks down (QParity arrays) use DownDisks for the full set.
func (s *Store) DownDisk() int {
	if !s.degraded || len(s.down) == 0 {
		return -1
	}
	return s.down[0]
}

// DownDisks returns the disks being served around (nil when healthy).
func (s *Store) DownDisks() []int {
	if !s.degraded {
		return nil
	}
	return append([]int(nil), s.down...)
}

// isDown reports whether disk d is in the down set.
func (s *Store) isDown(d int) bool {
	if !s.degraded {
		return false
	}
	for _, x := range s.down {
		if x == d {
			return true
		}
	}
	return false
}

// MarkRestored records that group g's blocks on the down disks have been
// reconstructed by the rebuild worker: the group serves normally again.
func (s *Store) MarkRestored(g page.GroupID) {
	if s.restored != nil && !s.restored[g] {
		s.restored[g] = true
		s.deg.rebuiltGroups.Add(1)
	}
}

// DegradedCounters returns a snapshot of the cumulative degraded-serving
// counters.
func (s *Store) DegradedCounters() DegradedStats {
	return DegradedStats{
		DegradedReads:  s.deg.degradedReads.Load(),
		DegradedWrites: s.deg.degradedWrites.Load(),
		ParityRepairs:  s.deg.parityRepairs.Load(),
		RebuiltGroups:  s.deg.rebuiltGroups.Load(),
	}
}

// GroupDegraded reports whether group g currently has an unreachable
// block: the store is degraded, the group has not been restored by the
// rebuild worker, and one of its blocks lives on a down disk.
func (s *Store) GroupDegraded(g page.GroupID) bool {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return false
	}
	for _, d := range s.down {
		if s.GroupOnDisk(g, d) {
			return true
		}
	}
	return false
}

// GroupOnDisk reports whether group g keeps a block (data, parity or Q)
// on disk d.
func (s *Store) GroupOnDisk(g page.GroupID, d int) bool {
	for _, p := range s.Arr.GroupPages(g) {
		if s.Arr.DataLoc(p).Disk == d {
			return true
		}
	}
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		if s.Arr.ParityLoc(g, twin).Disk == d {
			return true
		}
	}
	for twin := 0; twin < s.Arr.QParityPages(); twin++ {
		if s.Arr.QLoc(g, twin).Disk == d {
			return true
		}
	}
	return false
}

// pageUnavailable reports whether data page p is currently unreachable
// (it lives on a down disk and its group has not been restored).
func (s *Store) pageUnavailable(p page.PageID) bool {
	if !s.degraded {
		return false
	}
	if g := s.Arr.GroupOf(p); s.restored != nil && s.restored[g] {
		return false
	}
	return s.isDown(s.Arr.DataLoc(p).Disk)
}

// deadTwin returns a parity twin of group g on a down disk, or -1.
func (s *Store) deadTwin(g page.GroupID) int {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return -1
	}
	for twin := 0; twin < s.Arr.ParityPages(); twin++ {
		if s.isDown(s.Arr.ParityLoc(g, twin).Disk) {
			return twin
		}
	}
	return -1
}

// deadQTwin returns a Q twin of group g on a down disk, or -1.
func (s *Store) deadQTwin(g page.GroupID) int {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return -1
	}
	for twin := 0; twin < s.Arr.QParityPages(); twin++ {
		if s.isDown(s.Arr.QLoc(g, twin).Disk) {
			return twin
		}
	}
	return -1
}

// ParitySlotAlive reports whether the P slot of redundancy index `twin`
// of group g can be read and written (its disk is up, or the group has
// been restored by the rebuild worker).  Unlike TwinReadable it says
// nothing about the slot's header — only whether the platter answers.
func (s *Store) ParitySlotAlive(g page.GroupID, twin int) bool {
	return s.paritySlotAlive(g, twin)
}

// QSlotAlive is ParitySlotAlive for the Q slot of the same index; false
// on arrays without Q redundancy.
func (s *Store) QSlotAlive(g page.GroupID, twin int) bool {
	return s.qSlotAlive(g, twin)
}

// paritySlotAlive reports whether the P slot of redundancy index `twin`
// of group g can be read and written (its disk is up, or the group has
// been restored by the rebuild worker).
func (s *Store) paritySlotAlive(g page.GroupID, twin int) bool {
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return true
	}
	return !s.isDown(s.Arr.ParityLoc(g, twin).Disk)
}

// qSlotAlive is paritySlotAlive for the Q slot of the same index; false
// on arrays without Q redundancy.
func (s *Store) qSlotAlive(g page.GroupID, twin int) bool {
	if twin >= s.Arr.QParityPages() {
		return false
	}
	if !s.degraded || (s.restored != nil && s.restored[g]) {
		return true
	}
	return !s.isDown(s.Arr.QLoc(g, twin).Disk)
}

// describingTwin returns the twin whose parity describes the group's
// on-disk data: the working twin of a dirty group, the current twin of a
// clean one (and 0 on single-parity arrays).
func (s *Store) describingTwin(g page.GroupID) int {
	if s.Dirty != nil {
		if e, dirty := s.Dirty.Lookup(g); dirty {
			return e.WorkingTwin
		}
	}
	return s.currentTwin(g)
}

// SolveGroup returns the data values of every member of group g as
// described by redundancy index `twin`, treating unreachable and
// silently corrupt members as erasures and solving them from the P
// and/or Q equations of that index.  The data members are read first and
// the equations lazily — none at zero erasures, P alone at one (Q only
// when the P slot is itself dead or corrupt), both at two — so the
// transfer counts of the classic single-loss paths are unchanged by the
// Q machinery.  Erasures beyond what the reachable equations can solve
// surface as ErrUnrecoverableCorruption.
func (s *Store) SolveGroup(g page.GroupID, twin int) ([]page.Buf, error) {
	pages := s.Arr.GroupPages(g)
	vals := make([]page.Buf, len(pages))
	var missing []int
	for i, p := range pages {
		if s.pageUnavailable(p) {
			missing = append(missing, i)
			continue
		}
		b, _, err := s.Arr.ReadData(p)
		if err != nil {
			if !disk.IsCorrupt(err) {
				return nil, fmt.Errorf("core: solve group %d: read page %d: %w", g, p, err)
			}
			s.deg.corruptDetected.Add(1)
			missing = append(missing, i)
			continue
		}
		vals[i] = b
	}
	if len(missing) == 0 {
		return vals, nil
	}
	raw := make([][]byte, len(vals))
	for i, v := range vals {
		raw[i] = v
	}
	var pBuf []byte
	if s.paritySlotAlive(g, twin) {
		b, _, err := s.Arr.ReadParity(g, twin)
		switch {
		case err == nil:
			pBuf = b
		case disk.IsCorrupt(err):
			s.deg.corruptDetected.Add(1)
		default:
			return nil, fmt.Errorf("core: solve group %d: read parity twin %d: %w", g, twin, err)
		}
	}
	if len(missing) == 1 && pBuf != nil {
		i := missing[0]
		blocks := append([][]byte{pBuf}, raw[:i]...)
		blocks = append(blocks, raw[i+1:]...)
		vals[i] = page.Buf(xorparity.Reconstruct(s.Arr.PageSize(), blocks...))
		return vals, nil
	}
	var qBuf []byte
	if s.qSlotAlive(g, twin) {
		b, _, err := s.Arr.ReadQ(g, twin)
		switch {
		case err == nil:
			qBuf = b
		case disk.IsCorrupt(err):
			s.deg.corruptDetected.Add(1)
		default:
			return nil, fmt.Errorf("core: solve group %d: read Q twin %d: %w", g, twin, err)
		}
	}
	switch {
	case len(missing) == 1 && qBuf != nil:
		i := missing[0]
		vals[i] = page.Buf(erasure.ReconstructOneQ(qBuf, raw, i))
		return vals, nil
	case len(missing) == 2 && pBuf != nil && qBuf != nil:
		i, j := missing[0], missing[1]
		di, dj := erasure.ReconstructTwo(pBuf, qBuf, raw, i, j)
		vals[i], vals[j] = page.Buf(di), page.Buf(dj)
		return vals, nil
	}
	s.deg.unrecoverable.Add(1)
	return nil, fmt.Errorf("core: solve group %d: %d erased members exceed the reachable redundancy of index %d: %w",
		g, len(missing), twin, ErrUnrecoverableCorruption)
}

// readDegraded serves a read of an unreachable data page by on-the-fly
// reconstruction from the describing index's redundancy equations: P
// alone for one lost member, P and Q together for two.  Nothing is
// written back; the rebuild worker restores the block.
func (s *Store) readDegraded(p page.PageID) (page.Buf, error) {
	g := s.Arr.GroupOf(p)
	vals, err := s.SolveGroup(g, s.describingTwin(g))
	if err != nil {
		return nil, fmt.Errorf("core: degraded read of page %d: %w", p, err)
	}
	s.deg.degradedReads.Add(1)
	return vals[s.groupIndexOf(g, p)], nil
}

// groupIndexOf returns page p's index within its group's member list —
// the position that fixes its Q-equation coefficient g^i.
func (s *Store) groupIndexOf(g page.GroupID, p page.PageID) int {
	for i, q := range s.Arr.GroupPages(g) {
		if q == p {
			return i
		}
	}
	panic(fmt.Sprintf("core: page %d not in group %d", p, g))
}

// writeDegradedNeeded reports whether writing page p of degraded group g
// needs the special degraded protocol.  When the group's only lost
// blocks are *different* data pages, the ordinary small-write protocol
// never touches them (it reads p's old contents and the redundancy, all
// reachable), so the normal paths stay in force.
func (s *Store) writeDegradedNeeded(g page.GroupID, p page.PageID) bool {
	if !s.GroupDegraded(g) {
		return false
	}
	return s.pageUnavailable(p) || s.deadTwin(g) >= 0 || s.deadQTwin(g) >= 0
}

// writeDegraded writes data page p of a group with unreachable blocks.
//
// Degraded groups are always clean — the engine demotes their no-log
// steals when a disk goes down and CanStealNoLog refuses new ones — so
// there is no working twin to preserve and the write may recompute the
// redundancy wholesale, which also launders any partial parity state
// left by the failure moment.  The group's new data values (p's new
// contents plus every other member, lost members solved from the
// describing index first) yield fresh P and Q images; they go to the
// obsolete index whenever any of its slots survive — never the current
// one, exactly WriteCommitted's flip discipline, because the current
// index may be the *only* description of a dead sibling page and a crash
// mid-write would destroy it — Q first, then P, both committed under one
// fresh timestamp, and the bitmap flips.  Only when the obsolete index
// lost every slot does the write overwrite the current index in place;
// the group then has no dead data page (two losses are already spent on
// the obsolete index), so a crash-torn overwrite is recoverable wholesale
// from the readable data (establishIndex).  When p is
// reachable the redundancy carries the flip pairing (DirtyPage +
// PairedSet) and the data write echoes the timestamp, exactly like
// flipCommitted: the redundancy is written ahead of the data, so a crash
// between them leaves equations describing a data value that never
// reached the platter — without the echo, recovery would keep that index
// as the Figure 7 winner and any later wholesale recompute would launder
// the discrepancy into the solved value of a dead sibling page.  A lost
// p gets no pairing (there is no data write to echo); it lives on in the
// redundancy alone (parity-as-redo) until the rebuild materializes it,
// which is self-consistent because solving always treats p as missing.
func (s *Store) writeDegraded(p page.PageID, data page.Buf) error {
	g := s.Arr.GroupOf(p)
	s.deg.degradedWrites.Add(1)
	pages := s.Arr.GroupPages(g)
	idx := -1
	othersLost := false
	for i, q := range pages {
		if q == p {
			idx = i
		} else if s.pageUnavailable(q) {
			othersLost = true
		}
	}
	var vals []page.Buf
	if othersLost {
		// A second data member is also gone (double-degraded): its old
		// value is needed for the wholesale recompute, so solve the whole
		// group from the describing index first.
		old, err := s.SolveGroup(g, s.describingTwin(g))
		if err != nil {
			return fmt.Errorf("core: degraded write of page %d: %w", p, err)
		}
		vals = old
	} else {
		vals = make([]page.Buf, len(pages))
		for i, q := range pages {
			if q == p {
				continue
			}
			b, _, err := s.Arr.ReadData(q)
			if err != nil {
				return fmt.Errorf("core: degraded parity of group %d: read page %d: %w", g, q, err)
			}
			vals[i] = b
		}
	}
	vals[idx] = data
	raw := make([][]byte, len(vals))
	for i, v := range vals {
		raw[i] = v
	}
	newP := page.Buf(xorparity.Compute(s.Arr.PageSize(), raw...))

	if s.Twins == nil {
		if s.pageUnavailable(p) {
			pMeta, err := s.Arr.PeekParityMeta(g, 0)
			if err != nil {
				return fmt.Errorf("core: degraded write of page %d: %w", p, err)
			}
			if err := s.Arr.WriteParity(g, 0, newP, pMeta); err != nil {
				return fmt.Errorf("core: degraded write of page %d: %w", p, err)
			}
			return nil
		}
		// Single-parity array with its parity block lost: write the data
		// alone; redundancy for this group returns with the rebuild.
		return s.writeData(p, data, disk.Meta{})
	}

	hasQ := s.Arr.HasQ()
	var newQ page.Buf
	if hasQ {
		newQ = page.Buf(erasure.ComputeQ(s.Arr.PageSize(), raw...))
	}
	score := func(t int) int {
		n := 0
		if s.paritySlotAlive(g, t) {
			n++
		}
		if hasQ && s.qSlotAlive(g, t) {
			n++
		}
		return n
	}
	obsolete := s.Twins.Obsolete(g)
	target := obsolete
	if score(obsolete) == 0 {
		target = 1 - obsolete
	}
	if score(target) == 0 {
		// Both of the index's slots are on down disks (and so are the
		// other index's — scores tie at zero only then).  Only the data
		// write can carry the group; the rebuild recomputes redundancy.
		if s.pageUnavailable(p) {
			s.deg.unrecoverable.Add(1)
			return fmt.Errorf("core: degraded write of page %d: no reachable redundancy: %w", p, ErrUnrecoverableCorruption)
		}
		return s.writeData(p, data, disk.Meta{})
	}
	ts := s.TM.NextTimestamp()
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: ts}
	if !s.pageUnavailable(p) {
		meta.DirtyPage = p
		meta.PairedSet = true
	}
	if hasQ && s.qSlotAlive(g, target) {
		if err := s.Arr.WriteQ(g, target, newQ, meta); err != nil {
			return fmt.Errorf("core: degraded write of page %d: %w", p, err)
		}
	}
	if s.paritySlotAlive(g, target) {
		if err := s.Arr.WriteParity(g, target, newP, meta); err != nil {
			return fmt.Errorf("core: degraded write of page %d: %w", p, err)
		}
	}
	s.Twins.Promote(g, target)
	if s.pageUnavailable(p) {
		return nil
	}
	return s.writeData(p, data, disk.Meta{Timestamp: ts})
}
