package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/workpool"
	"repro/internal/xorparity"
)

// BulkLoad writes a run of consecutive logical pages as committed data
// using full-stripe writes wherever the run covers a whole parity group
// (Section 3.1: the array organizations allow "large (full stripe)
// concurrent accesses" in addition to small ones).
//
// A full-stripe write computes the group's parity from the new data
// alone — N data writes plus one parity write, instead of N small writes
// at 3–4 transfers each — which is why loaders use it.  Groups only
// partially covered by the run fall back to WriteCommitted small writes.
// Full stripes touch disjoint groups, so they fan out across Workers
// (Workers <= 1 writes them inline in group order); the partial-group
// writes run sequentially first, because WriteCommitted's parity
// read-modify-write shares the Dirty_Set bookkeeping.
//
// All touched groups must be clean: bulk loading bypasses transactions
// and must not destroy undo material of in-flight work.  Returns the
// number of full-stripe writes performed.
func (s *Store) BulkLoad(start page.PageID, pages []page.Buf) (int, error) {
	// Index the run for O(1) coverage lookups.
	covered := func(p page.PageID) (page.Buf, bool) {
		if p < start || int(p-start) >= len(pages) {
			return nil, false
		}
		return pages[p-start], true
	}
	for i := range pages {
		if len(pages[i]) != s.Arr.PageSize() {
			return 0, fmt.Errorf("core: bulk page %d: %w", i, page.ErrBadSize)
		}
	}
	// Check cleanliness of every touched group up front.
	seen := make(map[page.GroupID]bool)
	for i := range pages {
		g := s.Arr.GroupOf(start + page.PageID(i))
		if seen[g] {
			continue
		}
		seen[g] = true
		if s.Dirty != nil && s.Dirty.IsDirty(g) {
			return 0, fmt.Errorf("core: bulk load would overwrite dirty group %d", g)
		}
	}

	// Partition the run: groups the run fully covers take a full-stripe
	// write; the rest of the pages take individual small writes.
	var fullGroups []page.GroupID
	var partial []page.PageID
	done := make(map[page.GroupID]bool)
	for i := range pages {
		p := start + page.PageID(i)
		g := s.Arr.GroupOf(p)
		if done[g] {
			continue
		}
		full := true
		for _, q := range s.Arr.GroupPages(g) {
			if _, ok := covered(q); !ok {
				full = false
				break
			}
		}
		if full {
			done[g] = true
			fullGroups = append(fullGroups, g)
			continue
		}
		partial = append(partial, p)
	}
	for _, p := range partial {
		buf, _ := covered(p)
		if err := s.WriteCommitted(p, buf, nil); err != nil {
			return 0, err
		}
	}
	var fullStripes atomic.Int64
	err := workpool.Run(s.Workers, len(fullGroups), func(i int) error {
		if err := s.bulkStripe(fullGroups[i], covered); err != nil {
			return err
		}
		fullStripes.Add(1)
		return nil
	})
	return int(fullStripes.Load()), err
}

// bulkStripe performs one full-stripe write: all of group g's data pages
// plus a freshly computed parity page.
func (s *Store) bulkStripe(g page.GroupID, covered func(page.PageID) (page.Buf, bool)) error {
	members := s.Arr.GroupPages(g)
	raw := make([][]byte, len(members))
	for j, q := range members {
		buf, _ := covered(q)
		raw[j] = buf
		if err := s.Arr.WriteData(q, buf, disk.Meta{}); err != nil {
			return fmt.Errorf("core: bulk write page %d: %w", q, err)
		}
	}
	parity := xorparity.Compute(s.Arr.PageSize(), raw...)
	// On twinned arrays the new parity lands on the obsolete twin and
	// the bitmap flips, the same crash-friendly two-version discipline
	// as WriteCommitted (bulk loading itself is not atomic — loaders
	// re-run after a crash — but the parity flip never tears).
	twin := s.currentTwin(g)
	if s.Twins != nil {
		twin = s.Twins.Obsolete(g)
	}
	meta := disk.Meta{State: disk.StateCommitted, Timestamp: s.TM.NextTimestamp()}
	if s.Arr.HasQ() && twin < s.Arr.QParityPages() {
		// Lockstep invariant: the Q partner holds ComputeQ of the same
		// state, written just before P so P remains the arbiter.
		q := erasure.ComputeQ(s.Arr.PageSize(), raw...)
		if err := s.Arr.WriteQ(g, twin, q, meta); err != nil {
			return fmt.Errorf("core: bulk write Q of group %d: %w", g, err)
		}
	}
	if err := s.Arr.WriteParity(g, twin, parity, meta); err != nil {
		return fmt.Errorf("core: bulk write parity of group %d: %w", g, err)
	}
	if s.Twins != nil {
		s.Twins.Promote(g, twin)
	}
	return nil
}
