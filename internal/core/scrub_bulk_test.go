package core

import (
	"strings"
	"testing"

	"repro/internal/diskarray"
	"repro/internal/page"
)

func TestScrubCleanStore(t *testing.T) {
	for _, kind := range []diskarray.Kind{diskarray.RAID5, diskarray.RAID5Twin} {
		s := newStore(t, kind)
		for i := 0; i < 8; i++ {
			if err := s.WriteCommitted(page.PageID(i*5), pattern(page.MinSize, byte(i)), nil); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := s.Scrub()
		if err != nil {
			t.Fatal(err)
		}
		if rep.GroupsScanned != s.Arr.NumGroups() {
			t.Fatalf("%v: scanned %d of %d groups", kind, rep.GroupsScanned, s.Arr.NumGroups())
		}
		if rep.LatentErrors+rep.Repaired+rep.ParityRewritten != 0 {
			t.Fatalf("%v: clean store reported damage: %+v", kind, rep)
		}
	}
}

func TestScrubRepairsDataAndParity(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	want := pattern(page.MinSize, 0x3C)
	if err := s.WriteCommitted(9, want, nil); err != nil {
		t.Fatal(err)
	}
	// Corrupt the data block.
	loc := s.Arr.DataLoc(9)
	if err := s.Arr.Disk(loc.Disk).Corrupt(loc.Block); err != nil {
		t.Fatal(err)
	}
	// Corrupt a parity block of another group.
	g2 := s.Arr.GroupOf(20)
	ploc := s.Arr.ParityLoc(g2, s.Twins.Current(g2))
	if err := s.Arr.Disk(ploc.Disk).Corrupt(ploc.Block); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatentErrors != 2 || rep.Repaired != 2 {
		t.Fatalf("report %+v, want 2 latent / 2 repaired", rep)
	}
	got, err := s.ReadPage(9)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("data block not repaired")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubRepairsObsoleteTwin(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	if err := s.WriteCommitted(0, pattern(page.MinSize, 1), nil); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(0)
	obsolete := s.Twins.Obsolete(g)
	loc := s.Arr.ParityLoc(g, obsolete)
	if err := s.Arr.Disk(loc.Disk).Corrupt(loc.Block); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 {
		t.Fatalf("report %+v, want the obsolete twin repaired", rep)
	}
	// After repair both twins must be readable.
	if _, _, err := s.Arr.ReadParity(g, obsolete); err != nil {
		t.Fatalf("obsolete twin unreadable after scrub: %v", err)
	}
}

func TestScrubRefusesDirtyStore(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	tx := s.TM.Begin()
	if err := s.StealNoLog(0, pattern(page.MinSize, 7), nil, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scrub(); err == nil || !strings.Contains(err.Error(), "quiesced") {
		t.Fatalf("err = %v, want quiesce error", err)
	}
}

func TestScrubDoubleFaultUnrecoverable(t *testing.T) {
	s := newStore(t, diskarray.RAID5)
	g := s.Arr.GroupOf(0)
	pages := s.Arr.GroupPages(g)
	for _, p := range pages[:2] {
		loc := s.Arr.DataLoc(p)
		if err := s.Arr.Disk(loc.Disk).Corrupt(loc.Block); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Scrub(); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("err = %v, want unrecoverable", err)
	}
}

func TestBulkLoadCore(t *testing.T) {
	for _, kind := range []diskarray.Kind{diskarray.RAID5, diskarray.RAID5Twin} {
		s := newStore(t, kind)
		n := s.Arr.GroupWidth()
		pages := make([]page.Buf, 2*n+1) // two full groups and a loner
		for i := range pages {
			pages[i] = pattern(page.MinSize, byte(i+1))
		}
		stripes, err := s.BulkLoad(0, pages)
		if err != nil {
			t.Fatal(err)
		}
		if stripes != 2 {
			t.Fatalf("%v: %d full stripes, want 2", kind, stripes)
		}
		for i := range pages {
			got, err := s.ReadPage(page.PageID(i))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(pages[i]) {
				t.Fatalf("%v: page %d wrong", kind, i)
			}
		}
		if err := s.VerifyParityInvariant(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestBulkLoadRejectsDirtyGroupAndBadSize(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	tx := s.TM.Begin()
	if err := s.StealNoLog(0, pattern(page.MinSize, 1), nil, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BulkLoad(0, []page.Buf{pattern(page.MinSize, 2)}); err == nil ||
		!strings.Contains(err.Error(), "dirty") {
		t.Fatalf("err = %v, want dirty-group rejection", err)
	}
	if _, err := s.BulkLoad(10, []page.Buf{page.NewBuf(8)}); err == nil ||
		!strings.Contains(err.Error(), "size") {
		t.Fatalf("err = %v, want size rejection", err)
	}
}

func TestReadPageRepairCore(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	want := pattern(page.MinSize, 0x44)
	if err := s.WriteCommitted(3, want, nil); err != nil {
		t.Fatal(err)
	}
	loc := s.Arr.DataLoc(3)
	if err := s.Arr.Disk(loc.Disk).Corrupt(loc.Block); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadPageRepair(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("read repair returned wrong contents")
	}
	// Repair failure path: corrupt a SURVIVOR too — the rebuild must
	// surface an error, not fabricate data.
	if err := s.Arr.Disk(loc.Disk).Corrupt(loc.Block); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(3)
	other := s.Arr.GroupPages(g)[0]
	if other == 3 {
		other = s.Arr.GroupPages(g)[1]
	}
	oloc := s.Arr.DataLoc(other)
	if err := s.Arr.Disk(oloc.Disk).Corrupt(oloc.Block); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadPageRepair(3); err == nil {
		t.Fatalf("double damage must surface an error")
	}
}
