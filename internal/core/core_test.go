package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/diskarray"
	"repro/internal/page"
	"repro/internal/txn"
	"repro/internal/wal"
)

func newStore(t *testing.T, kind diskarray.Kind) *Store {
	t.Helper()
	arr, err := diskarray.New(diskarray.Config{
		Kind: kind, DataDisks: 4, NumPages: 48, PageSize: page.MinSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewStore(arr, wal.New(wal.DefaultConfig()), txn.NewManager())
}

func pattern(size int, seed byte) page.Buf {
	b := page.NewBuf(size)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestWriteCommittedMaintainsParity(t *testing.T) {
	for _, kind := range []diskarray.Kind{diskarray.RAID5, diskarray.RAID5Twin, diskarray.ParityStripe, diskarray.ParityStripeTwin} {
		s := newStore(t, kind)
		for i := 0; i < 10; i++ {
			p := page.PageID(i * 3 % s.Arr.NumPages())
			if err := s.WriteCommitted(p, pattern(page.MinSize, byte(i)), nil); err != nil {
				t.Fatalf("%v: %v", kind, err)
			}
		}
		if err := s.VerifyParityInvariant(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestStealNoLogAndAbortUndo(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	p := page.PageID(7)
	committed := pattern(page.MinSize, 0x10)
	if err := s.WriteCommitted(p, committed, nil); err != nil {
		t.Fatal(err)
	}

	tx := s.TM.Begin()
	uncommitted := pattern(page.MinSize, 0x80)
	if !s.CanStealNoLog(p, tx.ID) {
		t.Fatalf("clean group must allow the no-log steal")
	}
	if err := s.StealNoLog(p, uncommitted, committed, tx); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(p)
	if !s.Dirty.IsDirty(g) {
		t.Fatalf("group must be dirty after StealNoLog")
	}
	// On-disk contents are the uncommitted version.
	got, err := s.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(uncommitted) {
		t.Fatalf("steal did not write the new version")
	}
	// The working twin tracks the on-disk state (the invariant checker
	// consults the Dirty_Set for that).
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}

	// Abort: parity undo must restore the committed version.
	pid, restored, err := s.UndoGroupViaParity(g)
	if err != nil {
		t.Fatal(err)
	}
	if pid != p || !restored.Equal(committed) {
		t.Fatalf("undo restored page %d with wrong contents", pid)
	}
	if s.Dirty.IsDirty(g) {
		t.Fatalf("group must be clean after undo")
	}
	got, err = s.ReadPage(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(committed) {
		t.Fatalf("on-disk contents not restored")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestResteaUndoRestoresOriginal(t *testing.T) {
	// Steal, re-reference, steal again (Figure 3's self loop): undo must
	// restore the version before the FIRST steal.
	s := newStore(t, diskarray.RAID5Twin)
	p := page.PageID(12)
	committed := pattern(page.MinSize, 0x01)
	if err := s.WriteCommitted(p, committed, nil); err != nil {
		t.Fatal(err)
	}
	tx := s.TM.Begin()
	v1 := pattern(page.MinSize, 0x40)
	v2 := pattern(page.MinSize, 0xC0)
	if err := s.StealNoLog(p, v1, committed, tx); err != nil {
		t.Fatal(err)
	}
	if !s.CanStealNoLog(p, tx.ID) {
		t.Fatalf("re-steal of same page/txn must be allowed")
	}
	if err := s.StealNoLog(p, v2, v1, tx); err != nil {
		t.Fatal(err)
	}
	g := s.Arr.GroupOf(p)
	_, restored, err := s.UndoGroupViaParity(g)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Equal(committed) {
		t.Fatalf("undo after re-steal must restore the original committed version")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitGroupsPromotesWorkingTwin(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	p := page.PageID(3)
	g := s.Arr.GroupOf(p)
	tx := s.TM.Begin()
	v := pattern(page.MinSize, 0x22)
	if err := s.StealNoLog(p, v, nil, tx); err != nil {
		t.Fatal(err)
	}
	e, _ := s.Dirty.Lookup(g)
	before := s.Twins.Current(g)
	s.CommitGroups(tx)
	if s.Dirty.IsDirty(g) {
		t.Fatalf("commit must clean the group")
	}
	if s.Twins.Current(g) != e.WorkingTwin || s.Twins.Current(g) == before {
		t.Fatalf("commit must promote the working twin")
	}
	if len(tx.StolenNoLog) != 0 {
		t.Fatalf("chain must be cleared at commit")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLoggedToDirtyGroupUpdatesBothTwins(t *testing.T) {
	s := newStore(t, diskarray.RAID5Twin)
	g := page.GroupID(2)
	pages := s.Arr.GroupPages(g)
	p1, p2 := pages[0], pages[1]
	base1 := pattern(page.MinSize, 0x05)
	base2 := pattern(page.MinSize, 0x06)
	if err := s.WriteCommitted(p1, base1, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCommitted(p2, base2, nil); err != nil {
		t.Fatal(err)
	}

	// Txn A dirties the group via p1 (no logging).
	txA := s.TM.Begin()
	v1 := pattern(page.MinSize, 0x55)
	if err := s.StealNoLog(p1, v1, base1, txA); err != nil {
		t.Fatal(err)
	}
	// Txn B writes p2; the Dirty_Set forbids the fast path.
	txB := s.TM.Begin()
	if s.CanStealNoLog(p2, txB.ID) {
		t.Fatalf("second page of a dirty group must not take the fast path")
	}
	if err := s.StealNoLog(p2, base2, base2, txB); !errors.Is(err, ErrMustLog) {
		t.Fatalf("err = %v, want ErrMustLog", err)
	}
	v2 := pattern(page.MinSize, 0x66)
	if err := s.WriteLogged(p2, v2, base2); err != nil {
		t.Fatal(err)
	}

	// The undo identity for p1 must still hold after p2's logged write.
	gOut, restored, err := s.UndoGroupViaParity(g)
	if err != nil {
		t.Fatal(err)
	}
	if gOut != p1 || !restored.Equal(base1) {
		t.Fatalf("p1 undo corrupted by the logged write of p2")
	}
	// p2 keeps its logged new version.
	got, err := s.ReadPage(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v2) {
		t.Fatalf("p2 lost its logged write")
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestScanWorkingTwinsAndCrashUndo(t *testing.T) {
	s := newStore(t, diskarray.ParityStripeTwin)
	committedData := make(map[page.PageID]page.Buf)
	// Three transactions dirty three different groups, then the system
	// crashes (volatile state lost).
	var txns []*txn.Txn
	groupsUsed := make(map[page.GroupID]bool)
	for i := 0; i < 3; i++ {
		tx := s.TM.Begin()
		txns = append(txns, tx)
		// Pick a page in a group not yet used.
		var p page.PageID
		for q := 0; q < s.Arr.NumPages(); q++ {
			if !groupsUsed[s.Arr.GroupOf(page.PageID(q))] {
				p = page.PageID(q)
				break
			}
		}
		groupsUsed[s.Arr.GroupOf(p)] = true
		base := pattern(page.MinSize, byte(i))
		if err := s.WriteCommitted(p, base, nil); err != nil {
			t.Fatal(err)
		}
		committedData[p] = base
		if err := s.StealNoLog(p, pattern(page.MinSize, byte(0xA0+i)), base, tx); err != nil {
			t.Fatal(err)
		}
	}
	// Txn 0 commits before the crash.
	s.CommitGroups(txns[0])

	s.ResetVolatile() // crash

	found, err := s.ScanWorkingTwins()
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 3 {
		t.Fatalf("scan found %d working twins, want 3 (one lazily committed)", len(found))
	}
	committed := func(id page.TxID) bool { return id == txns[0].ID }
	for _, w := range found {
		if committed(w.Txn) {
			continue // winner: leave it, RebuildAfterCrash resolves it
		}
		if err := s.CrashUndoWorkingTwin(w); err != nil {
			t.Fatal(err)
		}
		// Idempotency: a second application (crash during recovery) must
		// not damage the restored page.
		if err := s.CrashUndoWorkingTwin(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RebuildAfterCrash(committed); err != nil {
		t.Fatal(err)
	}
	// Losers' pages are back to committed contents; winner's page keeps
	// its new contents.
	for p, want := range committedData {
		got, err := s.ReadPage(p)
		if err != nil {
			t.Fatal(err)
		}
		isWinner := false
		for _, f := range found {
			if f.Page == p && committed(f.Txn) {
				isWinner = true
			}
		}
		if isWinner {
			if got.Equal(want) {
				t.Fatalf("winner page %d lost its committed update", p)
			}
		} else if !got.Equal(want) {
			t.Fatalf("loser page %d not restored", p)
		}
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedParityInvariant(t *testing.T) {
	// Randomized soak: interleave no-log steals, logged writes, commits
	// and aborts across many groups; the parity invariant and the undo
	// guarantee must hold throughout.
	s := newStore(t, diskarray.RAID5Twin)
	r := rand.New(rand.NewSource(42))
	n := s.Arr.NumPages()

	// Oracle of committed contents.
	oracle := make([]page.Buf, n)
	for i := range oracle {
		oracle[i] = page.NewBuf(page.MinSize)
	}

	type pending struct {
		tx    *txn.Txn
		pages map[page.PageID]page.Buf // new values written via StealNoLog
	}
	var open []*pending

	for step := 0; step < 300; step++ {
		switch {
		case len(open) > 0 && r.Intn(4) == 0: // resolve a transaction
			i := r.Intn(len(open))
			pd := open[i]
			open = append(open[:i], open[i+1:]...)
			if r.Intn(2) == 0 { // commit
				s.CommitGroups(pd.tx)
				for p, v := range pd.pages {
					oracle[p] = v
				}
			} else { // abort
				for _, g := range s.Dirty.GroupsOf(pd.tx.ID) {
					if _, _, err := s.UndoGroupViaParity(g); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
		default:
			p := page.PageID(r.Intn(n))
			v := page.NewBuf(page.MinSize)
			r.Read(v)
			tx := s.TM.Begin()
			if s.CanStealNoLog(p, tx.ID) {
				if err := s.StealNoLog(p, v, nil, tx); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				open = append(open, &pending{tx: tx, pages: map[page.PageID]page.Buf{p: v}})
			} else {
				// Commit it immediately through the committed path if the
				// group is dirty by someone else's page... only when the
				// page itself is not the dirty one.
				g := s.Arr.GroupOf(p)
				if e, dirty := s.Dirty.Lookup(g); dirty && e.Page == p {
					continue // page locked by the dirtying txn, skip
				}
				if err := s.WriteCommitted(p, v, nil); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				oracle[p] = v
			}
		}
		if err := s.VerifyParityInvariant(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	// Resolve everything by aborting; the array must equal the oracle.
	for _, pd := range open {
		for _, g := range s.Dirty.GroupsOf(pd.tx.ID) {
			if _, _, err := s.UndoGroupViaParity(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range oracle {
		got, err := s.Arr.PeekData(page.PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(oracle[i]) {
			t.Fatalf("page %d diverged from oracle", i)
		}
	}
	if err := s.VerifyParityInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestChainHeadersLinkStolenPages(t *testing.T) {
	// Section 4.3: pages stolen without UNDO logging are threaded through
	// their headers.
	s := newStore(t, diskarray.RAID5Twin)
	tx := s.TM.Begin()
	var stolen []page.PageID
	for g := 0; g < 3; g++ {
		p := s.Arr.GroupPages(page.GroupID(g))[0]
		if err := s.StealNoLog(p, pattern(page.MinSize, byte(g)), nil, tx); err != nil {
			t.Fatal(err)
		}
		stolen = append(stolen, p)
	}
	// Walk the chain from the head.
	cur := tx.ChainHead()
	for i := len(stolen) - 1; i >= 0; i-- {
		if cur != stolen[i] {
			t.Fatalf("chain position %d = page %d, want %d", i, cur, stolen[i])
		}
		loc := s.Arr.DataLoc(cur)
		meta, err := s.Arr.Disk(loc.Disk).PeekMeta(loc.Block)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.ChainSet || meta.Txn != tx.ID {
			t.Fatalf("page %d header lost its chain info: %+v", cur, meta)
		}
		cur = meta.ChainPrev
	}
	if cur != page.InvalidPage {
		t.Fatalf("chain does not terminate: tail points at %d", cur)
	}
}
