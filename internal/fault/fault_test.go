package fault

import (
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
)

func newDisk(t *testing.T) *disk.Disk {
	t.Helper()
	return disk.New(0, 8, 64)
}

func buf(b byte) page.Buf {
	out := make(page.Buf, 64)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestPlaneCountsWrites(t *testing.T) {
	d := newDisk(t)
	p := NewPlane(nil)
	d.SetInjector(p)
	for i := 0; i < 3; i++ {
		if err := d.Write(i, buf(0xAA), disk.Meta{}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := d.WriteMeta(0, disk.Meta{State: disk.StateCommitted}); err != nil {
		t.Fatalf("writemeta: %v", err)
	}
	if _, _, err := d.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if got := p.Writes(); got != 4 {
		t.Fatalf("Writes() = %d, want 4 (meta writes count)", got)
	}
	if got := p.Reads(); got != 1 {
		t.Fatalf("Reads() = %d, want 1", got)
	}
}

func TestCrashAfterNWrites(t *testing.T) {
	d := newDisk(t)
	p := NewPlane(Schedule{CrashAfterNWrites(2)})
	d.SetInjector(p)
	for i := 0; i < 2; i++ {
		if err := d.Write(i, buf(0x11), disk.Meta{}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok {
				t.Fatalf("expected crash sentinel")
			}
			if c.Writes != 2 || c.Torn {
				t.Fatalf("crash = %+v, want clean crash at write 2", c)
			}
		}()
		_ = d.Write(2, buf(0x22), disk.Meta{})
		t.Fatalf("write 2 did not crash")
	}()
	// The crashed write must not have reached the platter.
	got, err := d.PeekData(2)
	if err != nil {
		t.Fatalf("peek: %v", err)
	}
	if got[0] != 0 {
		t.Fatalf("crashed write reached the disk: %v", got[:4])
	}
	if p.Writes() != 2 {
		t.Fatalf("Writes() = %d after crash, want 2", p.Writes())
	}
}

func TestTornWrite(t *testing.T) {
	d := newDisk(t)
	if err := d.Write(1, buf(0x0F), disk.Meta{}); err != nil {
		t.Fatal(err)
	}
	// The pre-fill write above ran before the plane was installed, so the
	// torn write is plane write index 0.
	p := NewPlane(Schedule{TornWrite(0, true)})
	d.SetInjector(p)
	newMeta := disk.Meta{State: disk.StateWorking, Timestamp: 7}
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok || !c.Torn {
				t.Fatalf("expected torn crash, got %v", c)
			}
		}()
		_ = d.Write(1, buf(0xF0), newMeta)
		t.Fatalf("torn write did not crash")
	}()
	// Header persisted, payload half-new half-old, reads fail checksum.
	m, err := d.PeekMeta(1)
	if err != nil {
		t.Fatal(err)
	}
	if m != newMeta {
		t.Fatalf("torn header = %+v, want %+v", m, newMeta)
	}
	data, err := d.PeekData(1)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xF0 || data[63] != 0x0F {
		t.Fatalf("torn payload = head %#x tail %#x, want new head old tail", data[0], data[63])
	}
	if _, _, err := d.Read(1); !errors.Is(err, disk.ErrChecksum) {
		t.Fatalf("read of torn block: %v, want ErrChecksum", err)
	}
}

func TestTransientError(t *testing.T) {
	d := newDisk(t)
	p := NewPlane(Schedule{TransientError(disk.OpRead, 1)})
	d.SetInjector(p)
	if _, _, err := d.Read(0); err != nil {
		t.Fatalf("read 0: %v", err)
	}
	if _, _, err := d.Read(0); !errors.Is(err, ErrTransient) {
		t.Fatalf("read 1: %v, want ErrTransient", err)
	}
	if _, _, err := d.Read(0); err != nil {
		t.Fatalf("read after transient: %v (must succeed)", err)
	}
}

func TestBitFlip(t *testing.T) {
	d := newDisk(t)
	p := NewPlane(Schedule{BitFlip(0, 13)})
	d.SetInjector(p)
	if err := d.Write(3, buf(0x55), disk.Meta{}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := d.Read(3); !errors.Is(err, disk.ErrChecksum) {
		t.Fatalf("read of flipped block: %v, want ErrChecksum", err)
	}
	data, err := d.PeekData(3)
	if err != nil {
		t.Fatal(err)
	}
	if data[1] != 0x55^(1<<5) { // bit 13 = byte 1, bit 5
		t.Fatalf("payload byte 1 = %#x, want bit 5 flipped", data[1])
	}
}

func TestFailDisk(t *testing.T) {
	d := newDisk(t)
	p := NewPlane(Schedule{FailDisk(0, 1)})
	d.SetInjector(p)
	if err := d.Write(0, buf(0x01), disk.Meta{}); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	if err := d.Write(1, buf(0x02), disk.Meta{}); !errors.Is(err, disk.ErrFailed) {
		t.Fatalf("write 1: %v, want ErrFailed", err)
	}
	if !d.Failed() {
		t.Fatalf("disk not failed after FailDisk rule")
	}
}

// TestLostWrite checks the silent-drop semantics: the drive acknowledges
// the write, the old contents survive internally consistent, and the
// disk's own read path cannot tell — detection is the write ledger's job.
func TestLostWrite(t *testing.T) {
	d := newDisk(t)
	if err := d.Write(3, buf(0x11), disk.Meta{}); err != nil {
		t.Fatal(err)
	}
	p := NewPlane(Schedule{LostWrite(0)})
	d.SetInjector(p)
	if err := d.Write(3, buf(0x77), disk.Meta{Timestamp: 9}); err != nil {
		t.Fatalf("lost write surfaced an error: %v", err)
	}
	got, m, err := d.Read(3)
	if err != nil {
		t.Fatalf("read after lost write: %v (the disk itself must not notice)", err)
	}
	if got[0] != 0x11 || m.Timestamp != 0 {
		t.Fatalf("block 3 = %#x ts=%d, want the pre-loss contents", got[0], m.Timestamp)
	}
	if p.Writes() != 1 {
		t.Fatalf("Writes() = %d, want 1 (an acknowledged lost write counts)", p.Writes())
	}
}

// TestMisdirectedWrite checks that the whole sector — payload, header
// and location stamp — lands at the victim block, where the stamp naming
// the intended position betrays it, while the intended block silently
// keeps its stale contents.
func TestMisdirectedWrite(t *testing.T) {
	d := newDisk(t)
	if err := d.Write(2, buf(0x11), disk.Meta{}); err != nil {
		t.Fatal(err)
	}
	p := NewPlane(Schedule{Misdirected(0, 5)})
	d.SetInjector(p)
	if err := d.Write(2, buf(0x9A), disk.Meta{Timestamp: 4}); err != nil {
		t.Fatalf("misdirected write surfaced an error: %v", err)
	}
	if _, _, err := d.Read(5); !errors.Is(err, disk.ErrStamp) {
		t.Fatalf("read of victim block: %v, want ErrStamp", err)
	}
	landed, err := d.PeekData(5)
	if err != nil {
		t.Fatal(err)
	}
	if landed[0] != 0x9A {
		t.Fatalf("victim payload = %#x, want the misdirected payload", landed[0])
	}
	got, m, err := d.Read(2)
	if err != nil {
		t.Fatalf("read of intended block: %v (stale but self-consistent)", err)
	}
	if got[0] != 0x11 || m.Timestamp != 0 {
		t.Fatalf("intended block = %#x ts=%d, want stale contents", got[0], m.Timestamp)
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{CrashAfterNWrites(9), TornWrite(3, false), TransientError(disk.OpWrite, 2), BitFlip(5, 7), FailDisk(2, 11), LostWrite(4), Misdirected(6, 21)}
	want := "crash@w9 torn[tail]@w3 transient[write]@2 bitflip[7]@w5 faildisk[2]@w11 lostwrite@w4 misdirected[21]@w6"
	if got := s.String(); got != want {
		t.Fatalf("Schedule.String() = %q, want %q", got, want)
	}
	back, err := ParseSchedule(want)
	if err != nil {
		t.Fatalf("ParseSchedule(%q): %v", want, err)
	}
	if back.String() != want {
		t.Fatalf("round trip = %q, want %q", back.String(), want)
	}
	for _, bad := range []string{
		"crash@9", "torn@w3", "torn[half]@w3", "bitflip[x]@w1", "frob@w1", "crash@w-1",
		"lostwrite[1]@w3", "lostwrite@3", "misdirected@w4", "misdirected[-1]@w2", "misdirected[z]@w2",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Fatalf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(sched Schedule) (writes int64, crashAt int64) {
		d := newDisk(t)
		p := NewPlane(sched)
		d.SetInjector(p)
		crashAt = -1
		func() {
			defer func() {
				if c, ok := AsCrash(recover()); ok {
					crashAt = c.Writes
				}
			}()
			for i := 0; i < 6; i++ {
				_ = d.Write(i%8, buf(byte(i)), disk.Meta{})
			}
		}()
		return p.Writes(), crashAt
	}
	w1, c1 := run(Schedule{CrashAfterNWrites(4)})
	w2, c2 := run(Schedule{CrashAfterNWrites(4)})
	if w1 != w2 || c1 != c2 || c1 != 4 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", w1, c1, w2, c2)
	}
}
