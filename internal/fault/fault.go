// Package fault is the deterministic fault-injection plane for the
// simulated disk array.
//
// A Plane implements disk.Injector: installed on every drive of an array
// it observes each charged block I/O in issue order and maintains global
// read and write counters.  A Schedule — an ordered list of Rules — tells
// the plane how to subvert specific accesses:
//
//   - CrashAfterNWrites(n): the first n block writes apply in full; the
//     n+1-th (0-based index n) panics with a *Crash sentinel before it
//     reaches the platter.  Sweeping n over [0, total) therefore crashes
//     the system at every write boundary of a workload.
//   - TornWrite(n): like CrashAfterNWrites, except write n itself is torn
//     mid-transfer — the out-of-band header persists, half of the payload
//     does (old/new half selected by the rule), the stored checksum goes
//     stale — and then the sentinel panics.
//   - TransientError(op, n): the n-th access of the given op class fails
//     once with disk.ErrTransient; the block is untouched and later
//     retries succeed.
//   - BitFlip(n, bit): write n applies, then one payload bit flips
//     silently (checksum left stale) — latent corruption for scrub tests.
//   - FailDisk(d, n): once n block writes have been applied, drive d
//     fail-stops at its next access (read or write), modelling a disk
//     dying mid-workload — e.g. a second failure during a rebuild that
//     is only reading the survivors.
//   - LostWrite(n): write n is acknowledged but never persisted — the old
//     block contents survive, internally consistent, detectable only by
//     the array's write ledger.
//   - Misdirected(n, b): write n lands whole at block b of the same drive
//     instead of the addressed block; the location stamp it carries names
//     the intended position, which is what betrays it.
//
// Schedules are pure data: deterministic, comparable, printable via
// String, and replayable — running the same workload under the same
// schedule reproduces the same fault, which is what lets a randomized
// soak failure be replayed from its printed seed.
//
// A tripped crash rule panics with *Crash.  Harnesses recover it with
// AsCrash and then drive the engine's hard-crash entry point; the panic
// unwinds through the disk (deferred unlock) and the buffer pool (no
// internal locking), both of which tolerate it by construction.
package fault

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/disk"
)

// ErrTransient is the error a TransientError rule injects.  It is the
// disk layer's transient-error class, so the array's retry layer treats
// injected faults exactly like native ones.
var ErrTransient = disk.ErrTransient

// Crash is the sentinel panic value of a tripped crash point.
type Crash struct {
	// Writes is the number of block writes fully applied before the
	// crash.
	Writes int64
	// Access is the I/O the crash interrupted.
	Access disk.Access
	// Torn reports whether the interrupted write was torn (partially
	// applied) rather than cleanly dropped.
	Torn bool
}

// String implements fmt.Stringer.
func (c *Crash) String() string {
	kind := "crash"
	if c.Torn {
		kind = "torn crash"
	}
	return fmt.Sprintf("%s at write %d (%s)", kind, c.Writes, c.Access)
}

// AsCrash extracts the crash sentinel from a recovered panic value.
func AsCrash(r any) (*Crash, bool) {
	c, ok := r.(*Crash)
	return c, ok
}

// RuleKind classifies a schedule rule.
type RuleKind uint8

// The schedule rule kinds.
const (
	KindCrash RuleKind = iota
	KindTorn
	KindTransient
	KindBitFlip
	KindFailDisk
	KindLostWrite
	KindMisdirected
)

// Rule is one deterministic fault in a schedule.  Counting rules trigger
// when the plane's global counter for their op class reaches After.
type Rule struct {
	Kind RuleKind
	// After is the 0-based global write index (or access index for
	// TransientError) at which the rule trips.
	After int64
	// Op is the access class TransientError counts (writes for all other
	// kinds).
	Op disk.Op
	// Disk is the FailDisk target drive.
	Disk int
	// Head selects which half of a torn payload persists (true = the new
	// first half).
	Head bool
	// Bit is the payload bit a BitFlip rule flips (byte = Bit/8 within
	// the block, bit = Bit%8).
	Bit int
	// Block is the victim block a Misdirected rule redirects the write to
	// (modulo the drive's size).
	Block int

	fired bool
}

// String renders the rule in the replayable schedule syntax.
func (r Rule) String() string {
	switch r.Kind {
	case KindCrash:
		return fmt.Sprintf("crash@w%d", r.After)
	case KindTorn:
		half := "tail"
		if r.Head {
			half = "head"
		}
		return fmt.Sprintf("torn[%s]@w%d", half, r.After)
	case KindTransient:
		return fmt.Sprintf("transient[%s]@%d", r.Op, r.After)
	case KindBitFlip:
		return fmt.Sprintf("bitflip[%d]@w%d", r.Bit, r.After)
	case KindFailDisk:
		return fmt.Sprintf("faildisk[%d]@w%d", r.Disk, r.After)
	case KindLostWrite:
		return fmt.Sprintf("lostwrite@w%d", r.After)
	case KindMisdirected:
		return fmt.Sprintf("misdirected[%d]@w%d", r.Block, r.After)
	default:
		return fmt.Sprintf("rule(kind=%d)", r.Kind)
	}
}

// CrashAfterNWrites builds a rule that lets n writes apply and crashes
// the n+1-th before it reaches the disk.
func CrashAfterNWrites(n int64) Rule { return Rule{Kind: KindCrash, After: n} }

// TornWrite builds a rule that tears write n (header persists, half the
// payload does) and then crashes.
func TornWrite(n int64, head bool) Rule { return Rule{Kind: KindTorn, After: n, Head: head} }

// TransientError builds a rule that fails the n-th access of class op
// once with ErrTransient.
func TransientError(op disk.Op, n int64) Rule { return Rule{Kind: KindTransient, After: n, Op: op} }

// BitFlip builds a rule that silently flips payload bit `bit` of write n
// after it applies.
func BitFlip(n int64, bit int) Rule { return Rule{Kind: KindBitFlip, After: n, Bit: bit} }

// FailDisk builds a rule that fail-stops drive d at its first access
// once n block writes have been applied.
func FailDisk(d int, n int64) Rule { return Rule{Kind: KindFailDisk, After: n, Disk: d} }

// LostWrite builds a rule that makes the drive acknowledge write n
// without persisting it: the old block contents survive, internally
// consistent, so only the array's write ledger can tell.
func LostWrite(n int64) Rule { return Rule{Kind: KindLostWrite, After: n} }

// Misdirected builds a rule that lands write n — payload, header and
// location stamp — at block `block` (modulo the drive size) of the same
// drive instead of the addressed block.
func Misdirected(n int64, block int) Rule {
	return Rule{Kind: KindMisdirected, After: n, Block: block}
}

// Schedule is an ordered set of rules.
type Schedule []Rule

// String renders the whole schedule in replayable syntax.
func (s Schedule) String() string {
	if len(s) == 0 {
		return "(empty schedule)"
	}
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, " ")
}

// ParseSchedule parses the replayable syntax Schedule.String produces:
// space-separated rules of the forms
//
//	crash@wN  torn[head|tail]@wN  transient[read|write|readmeta|writemeta]@N
//	bitflip[B]@wN  faildisk[D]@wN  lostwrite@wN  misdirected[B]@wN
//
// It is the inverse of String, so a schedule printed by a failing soak
// run can be fed back verbatim to reproduce it.
func ParseSchedule(s string) (Schedule, error) {
	var out Schedule
	for _, tok := range strings.Fields(s) {
		r, err := parseRule(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func parseRule(tok string) (Rule, error) {
	bad := func() (Rule, error) { return Rule{}, fmt.Errorf("fault: bad rule %q", tok) }
	name, rest, ok := strings.Cut(tok, "@")
	if !ok {
		return bad()
	}
	var arg string
	if i := strings.IndexByte(name, '['); i >= 0 {
		if !strings.HasSuffix(name, "]") {
			return bad()
		}
		name, arg = name[:i], name[i+1:len(name)-1]
	}
	parseAfter := func(counted bool) (int64, bool) {
		if counted {
			if !strings.HasPrefix(rest, "w") {
				return 0, false
			}
			rest = rest[1:]
		}
		n, err := strconv.ParseInt(rest, 10, 64)
		return n, err == nil && n >= 0
	}
	switch name {
	case "crash":
		if arg != "" {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return CrashAfterNWrites(n), nil
	case "torn":
		if arg != "head" && arg != "tail" {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return TornWrite(n, arg == "head"), nil
	case "transient":
		var op disk.Op
		switch arg {
		case "read":
			op = disk.OpRead
		case "write":
			op = disk.OpWrite
		case "readmeta":
			op = disk.OpReadMeta
		case "writemeta":
			op = disk.OpWriteMeta
		default:
			return bad()
		}
		n, ok := parseAfter(false)
		if !ok {
			return bad()
		}
		return TransientError(op, n), nil
	case "bitflip":
		bit, err := strconv.Atoi(arg)
		if err != nil || bit < 0 {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return BitFlip(n, bit), nil
	case "faildisk":
		d, err := strconv.Atoi(arg)
		if err != nil || d < 0 {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return FailDisk(d, n), nil
	case "lostwrite":
		if arg != "" {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return LostWrite(n), nil
	case "misdirected":
		block, err := strconv.Atoi(arg)
		if err != nil || block < 0 {
			return bad()
		}
		n, ok := parseAfter(true)
		if !ok {
			return bad()
		}
		return Misdirected(n, block), nil
	default:
		return bad()
	}
}

// Plane is the fault-injection plane: one per array, installed on every
// drive.  It is safe for concurrent use.
type Plane struct {
	mu     sync.Mutex
	rules  []Rule
	writes int64 // block writes observed (and allowed to proceed)
	reads  int64 // block reads observed
	// transientEvery, when positive, fails every n-th access (across all
	// op classes, counting failed attempts too) with ErrTransient — a
	// deterministic background error rate for degraded-mode soaks, O(1)
	// per access where an equivalent rule list would be O(rate·accesses).
	transientEvery int64
	accesses       int64 // all observed accesses, applied or not
	// bitFlipEvery, when positive, silently flips one payload bit of
	// every n-th block write (rotating the flipped bit with the write
	// count) — a deterministic background corruption rate for integrity
	// benchmarks, O(1) per access like transientEvery.
	bitFlipEvery int64
	// seed phase-shifts the background rates (which access in each
	// period fails, which bit offset a flip starts from) without
	// changing the rates themselves, so harness seeds vary the fault
	// placement deterministically.  Zero is a valid seed.
	seed uint64
}

// NewPlane builds a plane executing the given schedule.  An empty
// schedule makes the plane a pure access counter.
func NewPlane(s Schedule) *Plane {
	rules := make([]Rule, len(s))
	copy(rules, s)
	return &Plane{rules: rules}
}

// Writes returns the number of block writes observed so far (writes the
// plane crashed or errored before application are not counted).
func (p *Plane) Writes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.writes
}

// Reads returns the number of block reads observed so far.
func (p *Plane) Reads() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reads
}

// Schedule returns a copy of the plane's schedule (fired state omitted).
func (p *Plane) Schedule() Schedule {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(Schedule, len(p.rules))
	copy(out, p.rules)
	for i := range out {
		out[i].fired = false
	}
	return out
}

// SetTransientEvery makes the plane fail every n-th observed access with
// ErrTransient, independent of the schedule (0 disables).  Because the
// counter includes failed attempts, an isolated hit is always masked by a
// single retry: the retry lands on a non-multiple count.
func (p *Plane) SetTransientEvery(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.transientEvery = n
}

// SetBitFlipEvery makes the plane silently flip one payload bit of every
// n-th block write, independent of the schedule (0 disables).  The
// flipped bit index rotates with the write count so the damage is spread
// across the page.
func (p *Plane) SetBitFlipEvery(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bitFlipEvery = n
}

// SetSeed phase-shifts the plane's background rates: with the same
// rates and workload, different seeds hit different accesses and flip
// different bits, while one seed always reproduces the same faults.
// Scheduled rules are unaffected — they name exact access indices.
func (p *Plane) SetSeed(seed int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seed = uint64(seed)
}

// Observe implements disk.Injector.
func (p *Plane) Observe(a disk.Access) disk.Decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dec disk.Decision
	p.accesses++
	if p.transientEvery > 0 && (p.accesses+int64(p.seed%uint64(p.transientEvery)))%p.transientEvery == 0 {
		dec.Err = ErrTransient
	}
	if p.bitFlipEvery > 0 && a.Op == disk.OpWrite && (p.writes+1)%p.bitFlipEvery == 0 {
		dec.FlipBit = true
		dec.FlipBitOffset = int((p.writes + int64(p.seed%257)) % 257) // rotate through bit offsets
	}
	for i := range p.rules {
		r := &p.rules[i]
		if r.fired {
			continue
		}
		switch r.Kind {
		case KindCrash:
			if a.Op.IsWrite() && p.writes == r.After {
				r.fired = true
				dec.Panic = &Crash{Writes: p.writes, Access: a}
			}
		case KindTorn:
			if a.Op == disk.OpWrite && p.writes == r.After {
				r.fired = true
				dec.Torn = true
				dec.TornHead = r.Head
				dec.Panic = &Crash{Writes: p.writes, Access: a, Torn: true}
			}
		case KindTransient:
			if a.Op == r.Op && p.count(a.Op) == r.After {
				r.fired = true
				dec.Err = ErrTransient
			}
		case KindBitFlip:
			if a.Op == disk.OpWrite && p.writes == r.After {
				r.fired = true
				dec.FlipBit = true
				dec.FlipBitOffset = r.Bit
			}
		case KindFailDisk:
			// Once the write clock reaches After, the target drive dies at
			// its next access of any kind — reads included, so a disk can
			// fail under a rebuild that only reads it.
			if a.Disk == r.Disk && p.writes >= r.After {
				r.fired = true
				dec.FailDisk = true
			}
		case KindLostWrite:
			if a.Op == disk.OpWrite && p.writes == r.After {
				r.fired = true
				dec.LostWrite = true
			}
		case KindMisdirected:
			if a.Op == disk.OpWrite && p.writes == r.After {
				r.fired = true
				dec.Redirect = true
				dec.RedirectBlock = r.Block
			}
		}
	}
	// A transient error or a clean crash means the access does not happen;
	// count only what proceeds (torn writes do reach the platter).
	if dec.Err == nil && (dec.Panic == nil || dec.Torn) {
		if a.Op.IsWrite() {
			p.writes++
		} else {
			p.reads++
		}
	}
	return dec
}

// count returns the plane's counter for the op class.  Must be called
// with p.mu held.
func (p *Plane) count(op disk.Op) int64 {
	if op.IsWrite() {
		return p.writes
	}
	return p.reads
}
