// Package page defines the fundamental identifiers and fixed-size page
// buffers shared by every storage layer in the repository.
//
// The paper ("Database Recovery Using Redundant Disk Arrays", Mourad,
// Fuchs & Saab, ICDE 1992) assumes communication between main memory and
// the I/O subsystem is performed in fixed size pages.  A logical database
// page is addressed by a PageID; N consecutive logical pages form a parity
// group addressed by a GroupID; transactions are identified by a TxID and
// ordered by a monotonically increasing Timestamp (the paper stores such a
// timestamp in the header of each twin parity page, Section 4.2).
package page

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// PageID identifies a logical database page.  Logical pages are numbered
// densely from 0 to S-1 where S is the total number of data pages in the
// database (the paper's parameter S).
type PageID uint32

// InvalidPage is a sentinel PageID used to terminate log chains and to
// mark empty table slots.
const InvalidPage PageID = ^PageID(0)

// GroupID identifies a parity group: the set of N data pages that share a
// parity page (Section 4.1: "we will use the term parity group to denote a
// page parity group").
type GroupID uint32

// InvalidGroup is a sentinel GroupID.
const InvalidGroup GroupID = ^GroupID(0)

// TxID identifies a transaction.  TxIDs are allocated monotonically by the
// transaction manager and are never reused within the lifetime of a
// database, which lets them double as the paper's parity page timestamps.
type TxID uint64

// InvalidTx is a sentinel TxID meaning "no transaction".
const InvalidTx TxID = 0

// Timestamp orders parity page versions.  The paper's Current_Parity
// algorithm (Figure 7) selects the twin with the larger timestamp; we use
// a global monotonic counter drawn by the engine so that later parity
// writes always carry strictly larger timestamps.
type Timestamp uint64

// RecordID addresses a record within a page when record-granularity
// logging and locking are in use (Section 5.3).
type RecordID struct {
	Page PageID
	Slot int
}

// String implements fmt.Stringer.
func (r RecordID) String() string { return fmt.Sprintf("%d.%d", r.Page, r.Slot) }

// DefaultSize is the default page size in bytes.  The paper's record
// logging analysis uses l_p = 2020 bytes; we round to a power of two for
// the default and let callers configure the exact value.
const DefaultSize = 2048

// MinSize is the smallest page size the storage layers accept.  It leaves
// room for the slotted-record directory used by record logging.
const MinSize = 64

// ErrBadSize reports a page buffer whose length does not match the
// configured page size.
var ErrBadSize = errors.New("page: buffer size does not match page size")

// Buf is a fixed-size page image.  All storage layers copy Buf contents on
// the way in and out, so callers may reuse their buffers freely.
type Buf []byte

// NewBuf allocates a zeroed page image of the given size.
func NewBuf(size int) Buf { return make(Buf, size) }

// Clone returns an independent copy of b.
func (b Buf) Clone() Buf {
	c := make(Buf, len(b))
	copy(c, b)
	return c
}

// Equal reports whether two page images have identical contents.
func (b Buf) Equal(o Buf) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Zero clears the page image in place.
func (b Buf) Zero() {
	for i := range b {
		b[i] = 0
	}
}

// IsZero reports whether every byte of the page image is zero.
func (b Buf) IsZero() bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Checksum returns a CRC-32C checksum of the page image.  The simulated
// disks store checksums out of band and verify them on read, modelling the
// sector CRCs real drives maintain.
func (b Buf) Checksum() uint32 {
	return crc32.Checksum(b, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stamp is a self-describing block location stamp: the array position a
// block was written for, echoed in its out-of-band header.  A drive that
// lands a sector at the wrong LBA (a misdirected write) produces a block
// whose payload checksum is valid but whose stamp names a different
// location — the stamp check turns that silent corruption into a typed
// error, the same way the sector CRC turns bit rot into one.
//
// The high bit marks a stamp as set, so the zero Stamp (a block that was
// never stamped) never matches any location.
type Stamp uint64

const stampValid Stamp = 1 << 63

// MakeStamp returns the stamp for block `block` of disk `disk`.
func MakeStamp(disk, block int) Stamp {
	return stampValid | Stamp(uint64(uint32(disk))<<32) | Stamp(uint32(block))
}

// Matches reports whether the stamp names the given array position.
func (s Stamp) Matches(disk, block int) bool { return s == MakeStamp(disk, block) }

// Disk returns the drive the stamp names.
func (s Stamp) Disk() int { return int(uint32(s >> 32 & 0x7FFFFFFF)) }

// Block returns the block number the stamp names.
func (s Stamp) Block() int { return int(uint32(s)) }

// String implements fmt.Stringer.
func (s Stamp) String() string {
	if s&stampValid == 0 {
		return "stamp(unset)"
	}
	return fmt.Sprintf("stamp(disk %d block %d)", s.Disk(), s.Block())
}

// GroupOf returns the parity group that holds page p when groups are N
// pages wide.  Both array organizations in the paper (data striping,
// Figure 4, and parity striping, Figure 5) group N consecutive logical
// pages; only the physical placement differs.
func GroupOf(p PageID, n int) GroupID {
	return GroupID(uint32(p) / uint32(n))
}

// IndexInGroup returns the position (0..N-1) of page p within its parity
// group.
func IndexInGroup(p PageID, n int) int {
	return int(uint32(p) % uint32(n))
}

// FirstInGroup returns the first logical page of group g when groups are N
// pages wide.
func FirstInGroup(g GroupID, n int) PageID {
	return PageID(uint32(g) * uint32(n))
}
