package page

import (
	"testing"
	"testing/quick"
)

func TestGroupMapping(t *testing.T) {
	tests := []struct {
		p     PageID
		n     int
		group GroupID
		index int
	}{
		{0, 10, 0, 0},
		{9, 10, 0, 9},
		{10, 10, 1, 0},
		{25, 10, 2, 5},
		{0, 1, 0, 0},
		{7, 1, 7, 0},
		{4999, 10, 499, 9},
	}
	for _, tt := range tests {
		if g := GroupOf(tt.p, tt.n); g != tt.group {
			t.Errorf("GroupOf(%d,%d) = %d, want %d", tt.p, tt.n, g, tt.group)
		}
		if i := IndexInGroup(tt.p, tt.n); i != tt.index {
			t.Errorf("IndexInGroup(%d,%d) = %d, want %d", tt.p, tt.n, i, tt.index)
		}
	}
}

func TestFirstInGroupRoundTrip(t *testing.T) {
	f := func(p uint32, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		pid := PageID(p % (1 << 20))
		g := GroupOf(pid, n)
		first := FirstInGroup(g, n)
		// The page must lie inside [first, first+n).
		return pid >= first && int(pid-first) < n &&
			int(pid-first) == IndexInGroup(pid, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufCloneIndependence(t *testing.T) {
	b := NewBuf(64)
	b[0] = 0xAA
	c := b.Clone()
	c[0] = 0x55
	if b[0] != 0xAA {
		t.Fatalf("Clone aliases the original buffer")
	}
	if b.Equal(c) {
		t.Fatalf("buffers should differ after mutation")
	}
	c[0] = 0xAA
	if !b.Equal(c) {
		t.Fatalf("buffers should be equal again")
	}
}

func TestBufZero(t *testing.T) {
	b := NewBuf(32)
	if !b.IsZero() {
		t.Fatalf("fresh buffer must be zero")
	}
	b[31] = 1
	if b.IsZero() {
		t.Fatalf("buffer with a set byte is not zero")
	}
	b.Zero()
	if !b.IsZero() {
		t.Fatalf("Zero must clear the buffer")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	b := NewBuf(128)
	for i := range b {
		b[i] = byte(i * 7)
	}
	sum := b.Checksum()
	b[100] ^= 0x01
	if b.Checksum() == sum {
		t.Fatalf("single-bit flip not detected by checksum")
	}
}

func TestChecksumStable(t *testing.T) {
	b := NewBuf(16)
	if b.Checksum() != b.Clone().Checksum() {
		t.Fatalf("checksum must be a pure function of contents")
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if NewBuf(8).Equal(NewBuf(9)) {
		t.Fatalf("buffers of different length must not compare equal")
	}
}
