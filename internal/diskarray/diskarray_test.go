package diskarray

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/page"
)

var allKinds = []Kind{RAID5, RAID5Twin, ParityStripe, ParityStripeTwin}

func mustNew(t *testing.T, kind Kind, n, pages, pageSize int) *Array {
	t.Helper()
	a, err := New(Config{Kind: kind, DataDisks: n, NumPages: pages, PageSize: pageSize})
	if err != nil {
		t.Fatalf("New(%v): %v", kind, err)
	}
	return a
}

// TestTilingBijective checks that the address map is a perfect tiling for
// every organization: every physical block is claimed by exactly one
// logical data page or parity page.
func TestTilingBijective(t *testing.T) {
	for _, kind := range allKinds {
		for _, n := range []int{2, 3, 5, 10} {
			a := mustNew(t, kind, n, 7*n, page.MinSize)
			claimed := make(map[Loc]string)
			for p := 0; p < a.NumPages(); p++ {
				loc := a.DataLoc(page.PageID(p))
				if prev, dup := claimed[loc]; dup {
					t.Fatalf("%v n=%d: page %d collides with %s at %+v", kind, n, p, prev, loc)
				}
				claimed[loc] = "data"
			}
			for g := 0; g < a.NumGroups(); g++ {
				for twin := 0; twin < a.ParityPages(); twin++ {
					loc := a.ParityLoc(page.GroupID(g), twin)
					if prev, dup := claimed[loc]; dup {
						t.Fatalf("%v n=%d: parity (%d,%d) collides with %s at %+v", kind, n, g, twin, prev, loc)
					}
					claimed[loc] = "parity"
				}
			}
			total := a.NumDisks() * a.Disk(0).NumBlocks()
			if len(claimed) != total {
				t.Fatalf("%v n=%d: claimed %d of %d blocks", kind, n, len(claimed), total)
			}
		}
	}
}

// TestGroupStructure checks the fundamental parity-group invariants: N
// members, each on a distinct disk, none sharing a disk with the group's
// parity page(s), and GroupOf consistent with GroupPages.
func TestGroupStructure(t *testing.T) {
	for _, kind := range allKinds {
		a := mustNew(t, kind, 4, 64, page.MinSize)
		for g := 0; g < a.NumGroups(); g++ {
			gid := page.GroupID(g)
			pages := a.GroupPages(gid)
			if len(pages) != a.GroupWidth() {
				t.Fatalf("%v: group %d has %d members, want %d", kind, g, len(pages), a.GroupWidth())
			}
			disks := make(map[int]bool)
			for twin := 0; twin < a.ParityPages(); twin++ {
				d := a.ParityLoc(gid, twin).Disk
				if disks[d] {
					t.Fatalf("%v: group %d twin parity pages share disk %d", kind, g, d)
				}
				disks[d] = true
			}
			for _, p := range pages {
				if got := a.GroupOf(p); got != gid {
					t.Fatalf("%v: GroupOf(%d) = %d, want %d", kind, p, got, g)
				}
				d := a.DataLoc(p).Disk
				if disks[d] {
					t.Fatalf("%v: group %d has two members on disk %d", kind, g, d)
				}
				disks[d] = true
			}
		}
	}
}

// TestParityStripingSequential checks Gray's defining property: logical
// pages on the same disk occupy monotonically increasing block numbers,
// so a sequential scan of one disk's pages never seeks backwards.
func TestParityStripingSequential(t *testing.T) {
	for _, kind := range []Kind{ParityStripe, ParityStripeTwin} {
		a := mustNew(t, kind, 4, 96, page.MinSize)
		lastBlock := make(map[int]int) // disk -> last block seen
		for p := 0; p < a.NumPages(); p++ {
			loc := a.DataLoc(page.PageID(p))
			if last, ok := lastBlock[loc.Disk]; ok && loc.Block <= last {
				t.Fatalf("%v: page %d breaks per-disk sequentiality (disk %d block %d after %d)",
					kind, p, loc.Disk, loc.Block, last)
			}
			lastBlock[loc.Disk] = loc.Block
		}
		// Data fills disks in order: page 0 on disk 0 and the last page on
		// the last disk.
		if d := a.DataLoc(0).Disk; d != 0 {
			t.Fatalf("%v: first page on disk %d, want 0", kind, d)
		}
		if d := a.DataLoc(page.PageID(a.NumPages() - 1)).Disk; d != a.NumDisks()-1 {
			t.Fatalf("%v: last page on disk %d, want %d", kind, d, a.NumDisks()-1)
		}
	}
}

// TestRotatedParityLayoutFigure1 pins the RAID5 rotated-parity placement
// of Figure 1: with N=3 (four disks) the parity page of stripe g lives on
// disk g mod 4, so no single disk serves all parity traffic.
func TestRotatedParityLayoutFigure1(t *testing.T) {
	a := mustNew(t, RAID5, 3, 24, page.MinSize)
	seen := make(map[int]int)
	for g := 0; g < a.NumGroups(); g++ {
		loc := a.ParityLoc(page.GroupID(g), 0)
		if loc.Disk != g%4 {
			t.Fatalf("stripe %d parity on disk %d, want %d", g, loc.Disk, g%4)
		}
		if loc.Block != g {
			t.Fatalf("stripe %d parity at block %d, want %d", g, loc.Block, g)
		}
		seen[loc.Disk]++
	}
	if len(seen) != 4 {
		t.Fatalf("parity rotated over %d disks, want 4", len(seen))
	}
}

// TestParityStripingLayoutFigure2 pins the parity striping placement of
// Figure 2: disk x reserves its area x for parity and data areas are
// contiguous runs.
func TestParityStripingLayoutFigure2(t *testing.T) {
	a := mustNew(t, ParityStripe, 3, 48, page.MinSize)
	if a.NumDisks() != 4 {
		t.Fatalf("disks = %d, want 4", a.NumDisks())
	}
	for g := 0; g < a.NumGroups(); g++ {
		area := g / a.areaSize
		loc := a.ParityLoc(page.GroupID(g), 0)
		if loc.Disk != area {
			t.Fatalf("group %d (area %d) parity on disk %d, want %d", g, area, loc.Disk, area)
		}
		// The parity block sits inside disk `area`'s own area `area`.
		if loc.Block/a.areaSize != area {
			t.Fatalf("group %d parity block %d outside area %d", g, loc.Block, area)
		}
	}
}

// TestTwinDataStripingFigure4 and TestTwinParityStripingFigure5 pin the
// twin placements: the two parity pages of a group always occupy adjacent
// distinct disks (P_x on disk x, P_x' on disk (x+1) mod numDisks).
func TestTwinDataStripingFigure4(t *testing.T) {
	a := mustNew(t, RAID5Twin, 3, 30, page.MinSize)
	if a.NumDisks() != 5 {
		t.Fatalf("disks = %d, want 5 (N+2)", a.NumDisks())
	}
	for g := 0; g < a.NumGroups(); g++ {
		p0 := a.ParityLoc(page.GroupID(g), 0)
		p1 := a.ParityLoc(page.GroupID(g), 1)
		if p0.Disk != g%5 || p1.Disk != (g+1)%5 {
			t.Fatalf("stripe %d twins on disks (%d,%d), want (%d,%d)",
				g, p0.Disk, p1.Disk, g%5, (g+1)%5)
		}
	}
}

func TestTwinParityStripingFigure5(t *testing.T) {
	a := mustNew(t, ParityStripeTwin, 3, 60, page.MinSize)
	if a.NumDisks() != 5 {
		t.Fatalf("disks = %d, want 5 (N+2)", a.NumDisks())
	}
	for g := 0; g < a.NumGroups(); g++ {
		area := g / a.areaSize
		p0 := a.ParityLoc(page.GroupID(g), 0)
		p1 := a.ParityLoc(page.GroupID(g), 1)
		if p0.Disk != area || p1.Disk != (area+1)%5 {
			t.Fatalf("group %d twins on disks (%d,%d), want (%d,%d)",
				g, p0.Disk, p1.Disk, area, (area+1)%5)
		}
	}
}

func TestStorageOverhead(t *testing.T) {
	// Section 6: "The extra storage used is about (100/N)% of the size of
	// the database" per parity copy.  We verify the exact raw-capacity
	// fractions: 1/(N+1) single, 2/(N+2) twin.
	for _, n := range []int{5, 10, 20} {
		single := mustNew(t, RAID5, n, 10*n, page.MinSize)
		twin := mustNew(t, RAID5Twin, n, 10*n, page.MinSize)
		if got, want := single.StorageOverhead(), 1.0/float64(n+1); got != want {
			t.Errorf("N=%d single overhead %v, want %v", n, got, want)
		}
		if got, want := twin.StorageOverhead(), 2.0/float64(n+2); got != want {
			t.Errorf("N=%d twin overhead %v, want %v", n, got, want)
		}
	}
}

func fillRandom(t *testing.T, a *Array, seed int64) map[page.PageID]page.Buf {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	contents := make(map[page.PageID]page.Buf)
	for p := 0; p < a.NumPages(); p++ {
		buf := page.NewBuf(a.PageSize())
		r.Read(buf)
		pid := page.PageID(p)
		if err := a.WriteData(pid, buf, disk.Meta{}); err != nil {
			t.Fatal(err)
		}
		contents[pid] = buf
	}
	for g := 0; g < a.NumGroups(); g++ {
		for twin := 0; twin < a.ParityPages(); twin++ {
			meta := disk.Meta{State: disk.StateCommitted, Timestamp: 1}
			if twin == 1 {
				meta.State = disk.StateObsolete
			}
			if err := a.RecomputeParity(page.GroupID(g), twin, meta); err != nil {
				t.Fatal(err)
			}
		}
	}
	return contents
}

func TestMediaRecoveryAllKindsAllDisks(t *testing.T) {
	for _, kind := range allKinds {
		a := mustNew(t, kind, 3, 24, page.MinSize)
		contents := fillRandom(t, a, int64(kind)+10)
		for d := 0; d < a.NumDisks(); d++ {
			if err := a.FailDisk(d); err != nil {
				t.Fatal(err)
			}
			if !a.DiskFailed(d) {
				t.Fatalf("%v: disk %d should be failed", kind, d)
			}
			if err := a.RepairDisk(d); err != nil {
				t.Fatal(err)
			}
			if err := a.ReconstructDisk(d, nil, nil); err != nil {
				t.Fatalf("%v: reconstruct disk %d: %v", kind, d, err)
			}
			for p, want := range contents {
				got, err := a.PeekData(p)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v: after rebuilding disk %d, page %d corrupted", kind, d, p)
				}
			}
			for g := 0; g < a.NumGroups(); g++ {
				ok, err := a.VerifyGroup(page.GroupID(g), 0)
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("%v: after rebuilding disk %d, group %d parity invalid", kind, d, g)
				}
			}
		}
	}
}

func TestFailedDiskIO(t *testing.T) {
	a := mustNew(t, RAID5, 3, 12, page.MinSize)
	d := a.DataLoc(0).Disk
	if err := a.FailDisk(d); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadData(0); !errors.Is(err, disk.ErrFailed) {
		t.Fatalf("read from failed disk: err = %v, want ErrFailed", err)
	}
	if err := a.ReconstructDisk(d, nil, nil); err == nil {
		t.Fatalf("ReconstructDisk must refuse to run on a still-failed disk")
	}
}

func TestTransferAccountingThroughArray(t *testing.T) {
	a := mustNew(t, RAID5Twin, 3, 12, page.MinSize)
	buf := page.NewBuf(page.MinSize)
	if err := a.WriteData(0, buf, disk.Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadData(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.ReadParity(0, 1); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Transfers(); got != 3 {
		t.Fatalf("transfers = %d, want 3", got)
	}
	a.ResetStats()
	if a.Stats().Transfers() != 0 {
		t.Fatalf("ResetStats failed")
	}
}

func TestFormatMarksTwinZeroCommitted(t *testing.T) {
	a := mustNew(t, ParityStripeTwin, 3, 30, page.MinSize)
	for g := 0; g < a.NumGroups(); g++ {
		m0, err := a.PeekParityMeta(page.GroupID(g), 0)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := a.PeekParityMeta(page.GroupID(g), 1)
		if err != nil {
			t.Fatal(err)
		}
		if m0.State != disk.StateCommitted || m1.State != disk.StateObsolete {
			t.Fatalf("group %d formatted as (%v,%v), want (committed,obsolete)", g, m0.State, m1.State)
		}
	}
	if a.Stats().Transfers() != 0 {
		t.Fatalf("formatting must not charge transfers")
	}
}

func TestBadConfig(t *testing.T) {
	cases := []Config{
		{Kind: RAID5, DataDisks: 0, NumPages: 10, PageSize: page.MinSize},
		{Kind: RAID5, DataDisks: 4, NumPages: 0, PageSize: page.MinSize},
		{Kind: RAID5, DataDisks: 4, NumPages: 10, PageSize: 1},
		{Kind: Kind(99), DataDisks: 4, NumPages: 10, PageSize: page.MinSize},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestCapacityRounding(t *testing.T) {
	// Requesting a capacity that does not fill whole groups/areas rounds
	// up and all of the extra pages must still be addressable.
	for _, kind := range allKinds {
		a := mustNew(t, kind, 3, 10, page.MinSize)
		if a.NumPages() < 10 {
			t.Fatalf("%v: capacity %d below request", kind, a.NumPages())
		}
		last := page.PageID(a.NumPages() - 1)
		if _, _, err := a.ReadData(last); err != nil {
			t.Fatalf("%v: last page unreadable: %v", kind, err)
		}
	}
}

// TestQuickTilingAnyGeometry quick-checks the address-map bijection over
// arbitrary small geometries and all four organizations.
func TestQuickTilingAnyGeometry(t *testing.T) {
	f := func(kindRaw, nRaw, pagesRaw uint8) bool {
		kind := allKinds[int(kindRaw)%len(allKinds)]
		n := int(nRaw)%8 + 1
		pages := int(pagesRaw)%96 + 1
		a, err := New(Config{Kind: kind, DataDisks: n, NumPages: pages, PageSize: page.MinSize})
		if err != nil {
			return false
		}
		claimed := make(map[Loc]bool)
		for p := 0; p < a.NumPages(); p++ {
			pid := page.PageID(p)
			loc := a.DataLoc(pid)
			if claimed[loc] {
				return false
			}
			claimed[loc] = true
			// Group navigation must be self-consistent.
			g := a.GroupOf(pid)
			found := false
			for _, q := range a.GroupPages(g) {
				if q == pid {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		for g := 0; g < a.NumGroups(); g++ {
			for twin := 0; twin < a.ParityPages(); twin++ {
				loc := a.ParityLoc(page.GroupID(g), twin)
				if claimed[loc] {
					return false
				}
				claimed[loc] = true
			}
		}
		return len(claimed) == a.NumDisks()*a.Disk(0).NumBlocks()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
