// Package diskarray implements the redundant disk array organizations the
// paper builds on (Section 3):
//
//   - RAID5: block-interleaved data striping with rotated parity
//     (Patterson et al. [3], paper Figure 1).
//   - ParityStripe: Gray's parity striping (Gray, Horst & Walker [2],
//     paper Figure 2) — data written sequentially per disk, with parity
//     gathered into a reserved parity area on each disk.
//   - RAID5Twin and ParityStripeTwin: the same organizations with the
//     paper's twin parity pages (Figures 4 and 5): every parity group has
//     two parity pages placed on two different disks, which is what makes
//     RDA transaction recovery possible (Section 4).
//
// The array maps logical page and parity addresses to (disk, block)
// locations and performs raw block I/O.  Parity *maintenance* — the
// read-modify-write small-write protocol, the twin-page state machine and
// the dirty-group bookkeeping — deliberately lives above this package (in
// internal/core and the engine), because that policy is exactly what the
// paper varies between its recovery schemes.
package diskarray

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/disk"
	"repro/internal/erasure"
	"repro/internal/page"
	"repro/internal/xorparity"
)

// Kind selects the array organization.
type Kind int

// The four organizations of Figures 1, 2, 4 and 5.
const (
	// RAID5 is data striping with a single rotated parity page per group
	// (Figure 1).
	RAID5 Kind = iota
	// RAID5Twin is data striping with twin rotated parity pages
	// (Figure 4).
	RAID5Twin
	// ParityStripe is Gray's parity striping with a single parity page
	// per group (Figure 2).
	ParityStripe
	// ParityStripeTwin is parity striping with twin parity pages
	// (Figure 5).
	ParityStripeTwin
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case RAID5:
		return "raid5"
	case RAID5Twin:
		return "raid5twin"
	case ParityStripe:
		return "paritystripe"
	case ParityStripeTwin:
		return "paritystripetwin"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Twinned reports whether the organization keeps twin parity pages.
func (k Kind) Twinned() bool { return k == RAID5Twin || k == ParityStripeTwin }

// Striped reports whether the organization interleaves data across disks
// (data striping) as opposed to parity striping's sequential placement.
func (k Kind) Striped() bool { return k == RAID5 || k == RAID5Twin }

// Config describes an array to build.
type Config struct {
	Kind Kind
	// DataDisks is N: the number of data pages per parity group.  The
	// array uses N+1 disks (single parity) or N+2 disks (twin parity);
	// QParity adds one more disk per parity page for the Q redundancy.
	DataDisks int
	// QParity adds a second redundancy equation per group: alongside each
	// P parity page the group keeps a Q page computed over GF(2^8)
	// (internal/erasure), RAID-6 style, so any TWO missing members of a
	// group are recoverable.  Twinned kinds twin Q exactly like P (same
	// twin indexes, promoted in lockstep), so the no-log steal/flip
	// protocols keep their crash-cut detection.  Off by default; existing
	// geometries are untouched unless set.
	QParity bool
	// NumPages is S: the number of logical data pages requested.  The
	// array may round capacity up to fill whole groups/areas.
	NumPages int
	// PageSize is the size of each page/block in bytes.
	PageSize int
	// RetryAttempts bounds how many times one block I/O is issued before
	// a transient error is surfaced (default 4).
	RetryAttempts int
	// FailStopAfter is K: after K consecutive errored attempts on one
	// disk the array fail-stops it automatically (default 3).  Keeping
	// K < RetryAttempts means a persistently erroring disk is declared
	// dead *within* a single retried operation, so callers see a
	// degraded-servable ErrFailed rather than a transient error.
	FailStopAfter int
}

// Errors returned by the array.
var (
	ErrBadConfig = errors.New("diskarray: invalid configuration")
	ErrNoTwin    = errors.New("diskarray: organization has no twin parity page")
	ErrBadTwin   = errors.New("diskarray: twin index out of range")
)

// Loc is a physical block address.
type Loc struct {
	Disk  int
	Block int
}

// Array is a redundant disk array.  It is safe for concurrent use (each
// underlying disk serializes its own I/O; the address maps are immutable
// after construction).
type Array struct {
	cfg       Config
	disks     []*disk.Disk
	numGroups int
	parities  int // P parity pages per group: 1 or 2
	qparities int // Q redundancy pages per group: 0, or == parities with QParity

	// Parity striping geometry (unused for RAID5 kinds).
	areas    int // areas per disk = disks
	areaSize int // blocks per area

	// Self-healing state (health.go).
	hmu     sync.Mutex
	health  Health
	downd   []int // failed/rebuilding disks, oldest loss first
	consec  []int // consecutive errored attempts per disk
	healing HealingStats

	// NVRAM write ledger: ledger[d][blk] is the CRC-32C of the payload of
	// the last write disk d acknowledged for block blk.  It models the
	// battery-backed controller NVRAM real arrays keep write intent in, so
	// it SURVIVES crashes (the crash harness resets only volatile state)
	// and is cleared per disk only when a fresh zeroed drive is swapped in
	// (RepairDisk, BeginRebuild).  A verified read compares the stored
	// payload against the ledger entry; a mismatch means the drive
	// acknowledged a write it never applied here — a lost write, or the
	// stale intended block of a misdirected one — and surfaces
	// disk.ErrLostWrite.  Header-only I/O leaves the ledger untouched.
	ledmu  sync.Mutex
	ledger [][]uint32
}

// New builds and formats an array.  Formatting establishes the all-zero
// consistent state (zero data, zero parity) and, for twinned kinds, marks
// twin 0 of every group as the committed parity; formatting I/O is not
// charged to the statistics.
//
// DataDisks may be 1: a single-parity
// group of width 1 is a mirrored pair (the parity of one page is the
// page itself), and a twinned group of width 1 is the twin-page storage
// scheme of Wu & Fuchs [12] that the paper builds on.
func New(cfg Config) (*Array, error) {
	if cfg.DataDisks < 1 {
		return nil, fmt.Errorf("%w: need at least 1 data disk, got %d", ErrBadConfig, cfg.DataDisks)
	}
	if cfg.NumPages < 1 {
		return nil, fmt.Errorf("%w: need at least 1 page", ErrBadConfig)
	}
	if cfg.PageSize < page.MinSize {
		return nil, fmt.Errorf("%w: page size %d below minimum %d", ErrBadConfig, cfg.PageSize, page.MinSize)
	}
	a := &Array{cfg: cfg}
	if a.cfg.RetryAttempts <= 0 {
		a.cfg.RetryAttempts = 4
	}
	if a.cfg.FailStopAfter <= 0 {
		a.cfg.FailStopAfter = 3
	}
	n := cfg.DataDisks
	switch cfg.Kind {
	case RAID5, ParityStripe:
		a.parities = 1
	case RAID5Twin, ParityStripeTwin:
		a.parities = 2
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrBadConfig, int(cfg.Kind))
	}
	if cfg.QParity {
		// Q mirrors P's twinning: one Q page per P page, each on its own
		// disk, so any two member losses stay inside the redundancy.
		a.qparities = a.parities
	}
	numDisks := n + a.parities + a.qparities
	groups := (cfg.NumPages + n - 1) / n

	var blocksPerDisk int
	switch cfg.Kind {
	case RAID5, RAID5Twin:
		// One block per disk per stripe.
		blocksPerDisk = groups
	case ParityStripe, ParityStripeTwin:
		// Each disk is divided into `numDisks` areas; `parities` of them
		// hold parity, the rest data (Section 3.2).  Round the group
		// count up so that areas tile exactly.
		a.areas = numDisks
		a.areaSize = (groups + a.areas - 1) / a.areas
		if a.areaSize == 0 {
			a.areaSize = 1
		}
		groups = a.areas * a.areaSize
		blocksPerDisk = a.areas * a.areaSize
	}
	a.numGroups = groups
	a.disks = make([]*disk.Disk, numDisks)
	a.consec = make([]int, numDisks)
	a.ledger = make([][]uint32, numDisks)
	for d := range a.disks {
		a.disks[d] = disk.New(d, blocksPerDisk, cfg.PageSize)
		a.ledger[d] = freshLedger(blocksPerDisk, cfg.PageSize)
	}
	a.format()
	return a, nil
}

// freshLedger returns the write-ledger column of a fresh zeroed drive:
// every block's last acknowledged payload is all zeroes.
func freshLedger(blocks, pageSize int) []uint32 {
	zeroSum := page.NewBuf(pageSize).Checksum()
	out := make([]uint32, blocks)
	for i := range out {
		out[i] = zeroSum
	}
	return out
}

// noteWrite records an acknowledged payload write in the NVRAM ledger.
// Called only after the drive returned success — a crash panic unwinds
// before it, so a write the platter never acked is never ledgered.
func (a *Array) noteWrite(loc Loc, b page.Buf) {
	a.ledmu.Lock()
	a.ledger[loc.Disk][loc.Block] = b.Checksum()
	a.ledmu.Unlock()
}

// checkLedger verifies a successfully read payload against the NVRAM
// ledger, converting a silent lost or misdirected write into a typed
// error in the disk.IsCorrupt class.
func (a *Array) checkLedger(loc Loc, b page.Buf) error {
	a.ledmu.Lock()
	want := a.ledger[loc.Disk][loc.Block]
	a.ledmu.Unlock()
	if b.Checksum() != want {
		return fmt.Errorf("disk %d block %d: stored payload differs from last acknowledged write: %w",
			loc.Disk, loc.Block, disk.ErrLostWrite)
	}
	return nil
}

// resetLedger re-initializes disk d's ledger column for a fresh zeroed
// replacement drive.
func (a *Array) resetLedger(d int) {
	a.ledmu.Lock()
	a.ledger[d] = freshLedger(a.disks[d].NumBlocks(), a.cfg.PageSize)
	a.ledmu.Unlock()
}

// format marks twin 0 of every group committed (for both the P and, when
// configured, the Q redundancy page).  A fresh array is all-zero, so zero
// parity — P and Q alike — is already correct for every group; only the
// twin metadata needs initializing.  Statistics are reset afterwards so
// formatting is free, like factory formatting.
func (a *Array) format() {
	write := func(loc Loc, meta disk.Meta) {
		if err := a.disks[loc.Disk].WriteMeta(loc.Block, meta); err != nil {
			panic(fmt.Sprintf("diskarray: format: %v", err))
		}
	}
	committed := disk.Meta{State: disk.StateCommitted, Timestamp: 0}
	obsolete := disk.Meta{State: disk.StateObsolete, Timestamp: 0}
	for g := 0; g < a.numGroups; g++ {
		gid := page.GroupID(g)
		write(a.ParityLoc(gid, 0), committed)
		if a.parities == 2 {
			write(a.ParityLoc(gid, 1), obsolete)
		}
		if a.qparities > 0 {
			write(a.QLoc(gid, 0), committed)
			if a.qparities == 2 {
				write(a.QLoc(gid, 1), obsolete)
			}
		}
	}
	a.ResetStats()
}

// Kind returns the array organization.
func (a *Array) Kind() Kind { return a.cfg.Kind }

// PageSize returns the block size in bytes.
func (a *Array) PageSize() int { return a.cfg.PageSize }

// NumDisks returns the number of physical disks.
func (a *Array) NumDisks() int { return len(a.disks) }

// NumGroups returns the number of parity groups (after capacity
// rounding).
func (a *Array) NumGroups() int { return a.numGroups }

// GroupWidth returns N, the number of data pages per parity group.
func (a *Array) GroupWidth() int { return a.cfg.DataDisks }

// NumPages returns the addressable logical page count (numGroups × N,
// which is at least the requested capacity).
func (a *Array) NumPages() int { return a.numGroups * a.cfg.DataDisks }

// ParityPages returns the number of P parity pages per group (1 or 2).
func (a *Array) ParityPages() int { return a.parities }

// QParityPages returns the number of Q redundancy pages per group (0
// without QParity, else equal to ParityPages).
func (a *Array) QParityPages() int { return a.qparities }

// HasQ reports whether the array keeps Q redundancy pages.
func (a *Array) HasQ() bool { return a.qparities > 0 }

// Twinned reports whether the array keeps twin parity pages.
func (a *Array) Twinned() bool { return a.parities == 2 }

// StorageOverhead returns the fraction of raw capacity spent on
// redundancy: 1/(N+1) for single parity, 2/(N+2) for twin parity, with
// the Q pages added on top when QParity is set.  The paper quotes the
// overhead relative to the database size as about (100/N)% per parity
// copy (Section 6).
func (a *Array) StorageOverhead() float64 {
	r := a.parities + a.qparities
	return float64(r) / float64(a.cfg.DataDisks+r)
}

// --- Address mapping -----------------------------------------------------
//
// Data striping (RAID5/RAID5Twin, Figures 1 and 4): parity group g is the
// stripe of N consecutive logical pages [g·N, g·N+N); every disk
// contributes one block per stripe at block offset g; the parity page of
// stripe g lives on disk g mod numDisks (rotated parity), its twin on the
// next disk, and the data pages occupy the remaining disks in increasing
// order.
//
// Parity striping (ParityStripe/ParityStripeTwin, Figures 2 and 5): each
// disk is divided into numDisks equal areas.  Disk d reserves area d for
// parity (and, in the twin organization, also area (d-1) mod numDisks for
// the twin copies); its other N areas hold data written *sequentially*,
// which is the whole point of Gray's organization.  Logical pages fill
// disk 0's data areas first, then disk 1's, and so on.  The parity group
// is the set of N data blocks found at the same (area, offset) coordinate
// across the N disks for which that area is a data area; its parity lives
// at the same coordinate on disk a (and the twin on disk (a+1) mod
// numDisks), mirroring the paper's P_x / P_x' placement.  Group members
// are therefore *not* consecutive logical pages — they are pages at the
// same relative position of different disks — so all group navigation
// must go through GroupOf/GroupPages rather than arithmetic on page ids.

// redundancies returns the number of redundancy pages per group: the P
// twins plus, with QParity, the Q twins.
func (a *Array) redundancies() int { return a.parities + a.qparities }

// redundancyDisk returns the disk holding the group's j-th redundancy
// page, j in [0, redundancies): P twins first (j < parities), then Q
// twins.  Rotated placement puts consecutive redundancy pages of a group
// on consecutive disks, generalizing the paper's P/P′ twin placement.
func (a *Array) redundancyDisk(g, j int) int {
	nd := len(a.disks)
	switch a.cfg.Kind {
	case RAID5, RAID5Twin:
		return (g + j) % nd
	case ParityStripe, ParityStripeTwin:
		area := g / a.areaSize
		return (area + j) % nd
	}
	panic("diskarray: unknown kind")
}

// parityDisks returns the disks holding the group's P parity page(s).
func (a *Array) parityDisks(g int) [2]int {
	return [2]int{a.redundancyDisk(g, 0), a.redundancyDisk(g, 1)}
}

// isParityArea reports whether area `area` of disk d is reserved for
// redundancy (a P or Q page): disk d holds redundancy page j of the
// groups in area (d-j) mod numDisks, for each j in [0, redundancies).
func (a *Array) isParityArea(d, area int) bool {
	nd := len(a.disks)
	for j := 0; j < a.redundancies(); j++ {
		if area == (d-j+nd)%nd {
			return true
		}
	}
	return false
}

// nthDataArea returns disk d's i-th data area (0-based, in increasing
// area order, skipping the disk's parity area(s)).
func (a *Array) nthDataArea(d, i int) int {
	count := 0
	for area := 0; area < a.areas; area++ {
		if a.isParityArea(d, area) {
			continue
		}
		if count == i {
			return area
		}
		count++
	}
	panic("diskarray: data area index out of range")
}

// dataAreaRank returns the 0-based rank of data area `area` among disk
// d's data areas.
func (a *Array) dataAreaRank(d, area int) int {
	rank := 0
	for x := 0; x < area; x++ {
		if !a.isParityArea(d, x) {
			rank++
		}
	}
	return rank
}

// stripeDataDisk returns the disk holding the i-th data page of stripe g
// in the data striping organizations: the i-th disk, in increasing order,
// that does not hold one of the stripe's redundancy pages.
func (a *Array) stripeDataDisk(g, i int) int {
	var skip [4]int
	r := a.redundancies()
	for j := 0; j < r; j++ {
		skip[j] = a.redundancyDisk(g, j)
	}
	count := 0
	for d := 0; d < len(a.disks); d++ {
		isRed := false
		for j := 0; j < r; j++ {
			if d == skip[j] {
				isRed = true
				break
			}
		}
		if isRed {
			continue
		}
		if count == i {
			return d
		}
		count++
	}
	panic("diskarray: data disk index out of range")
}

// DataLoc returns the physical location of logical data page p.
func (a *Array) DataLoc(p page.PageID) Loc {
	n := a.cfg.DataDisks
	switch a.cfg.Kind {
	case RAID5, RAID5Twin:
		g := int(p) / n
		i := int(p) % n
		return Loc{Disk: a.stripeDataDisk(g, i), Block: g}
	case ParityStripe, ParityStripeTwin:
		perDisk := n * a.areaSize
		d := int(p) / perDisk
		r := int(p) % perDisk
		area := a.nthDataArea(d, r/a.areaSize)
		return Loc{Disk: d, Block: area*a.areaSize + r%a.areaSize}
	}
	panic("diskarray: unknown kind")
}

// GroupOf returns the parity group of logical page p.
func (a *Array) GroupOf(p page.PageID) page.GroupID {
	switch a.cfg.Kind {
	case RAID5, RAID5Twin:
		return page.GroupOf(p, a.cfg.DataDisks)
	case ParityStripe, ParityStripeTwin:
		loc := a.DataLoc(p)
		area := loc.Block / a.areaSize
		offset := loc.Block % a.areaSize
		return page.GroupID(area*a.areaSize + offset)
	}
	panic("diskarray: unknown kind")
}

// GroupPages returns the logical pages of group g in data-index order.
func (a *Array) GroupPages(g page.GroupID) []page.PageID {
	n := a.cfg.DataDisks
	out := make([]page.PageID, 0, n)
	switch a.cfg.Kind {
	case RAID5, RAID5Twin:
		first := page.FirstInGroup(g, n)
		for i := 0; i < n; i++ {
			out = append(out, first+page.PageID(i))
		}
	case ParityStripe, ParityStripeTwin:
		area := int(g) / a.areaSize
		offset := int(g) % a.areaSize
		perDisk := n * a.areaSize
		for d := 0; d < len(a.disks); d++ {
			if a.isParityArea(d, area) {
				continue
			}
			p := d*perDisk + a.dataAreaRank(d, area)*a.areaSize + offset
			out = append(out, page.PageID(p))
		}
	default:
		panic("diskarray: unknown kind")
	}
	return out
}

// ParityLoc returns the physical location of the group's parity page.
// twin must be 0 for single-parity kinds and 0 or 1 for twinned kinds.
func (a *Array) ParityLoc(g page.GroupID, twin int) Loc {
	if twin < 0 || twin >= a.parities {
		panic(fmt.Sprintf("diskarray: twin %d out of range for %s", twin, a.cfg.Kind))
	}
	// A group's redundancy pages live at the group's own block number on
	// their rotated disks; for parity striping the coordinate
	// (area, offset) addresses the same block number on every
	// participating disk: block = area·areaSize + offset = g.
	return Loc{Disk: a.redundancyDisk(int(g), twin), Block: int(g)}
}

// QLoc returns the physical location of the group's Q redundancy page.
// twin must be in [0, QParityPages); Q twin t lives alongside P twin t
// and is promoted/invalidated in lockstep with it.
func (a *Array) QLoc(g page.GroupID, twin int) Loc {
	if twin < 0 || twin >= a.qparities {
		panic(fmt.Sprintf("diskarray: Q twin %d out of range for %s", twin, a.cfg.Kind))
	}
	return Loc{Disk: a.redundancyDisk(int(g), a.parities+twin), Block: int(g)}
}

// --- Raw I/O ---------------------------------------------------------------
//
// Every charged block operation goes through the self-healing retry
// wrapper (do, in health.go): transient errors are retried with bounded
// deterministic backoff, per-disk error accounting trips automatic
// fail-stops, and hard failures advance the array health machine.

// ReadData reads logical data page p, charging one transfer.  The read is
// verified: a payload that differs from the last write the drive
// acknowledged for the block (NVRAM ledger) fails with disk.ErrLostWrite.
func (a *Array) ReadData(p page.PageID) (page.Buf, disk.Meta, error) {
	loc := a.DataLoc(p)
	var b page.Buf
	var m disk.Meta
	err := a.do(loc.Disk, func() error {
		var err error
		b, m, err = a.disks[loc.Disk].Read(loc.Block)
		return err
	})
	if err == nil {
		err = a.checkLedger(loc, b)
	}
	return b, m, err
}

// WriteData writes logical data page p, charging one transfer.
func (a *Array) WriteData(p page.PageID, b page.Buf, meta disk.Meta) error {
	loc := a.DataLoc(p)
	err := a.do(loc.Disk, func() error {
		return a.disks[loc.Disk].Write(loc.Block, b, meta)
	})
	if err == nil {
		a.noteWrite(loc, b)
	}
	return err
}

// ReadParity reads the group's parity page, charging one transfer.
// Verified against the NVRAM write ledger like ReadData.
func (a *Array) ReadParity(g page.GroupID, twin int) (page.Buf, disk.Meta, error) {
	loc := a.ParityLoc(g, twin)
	var b page.Buf
	var m disk.Meta
	err := a.do(loc.Disk, func() error {
		var err error
		b, m, err = a.disks[loc.Disk].Read(loc.Block)
		return err
	})
	if err == nil {
		err = a.checkLedger(loc, b)
	}
	return b, m, err
}

// WriteParity writes the group's parity page, charging one transfer.
func (a *Array) WriteParity(g page.GroupID, twin int, b page.Buf, meta disk.Meta) error {
	loc := a.ParityLoc(g, twin)
	err := a.do(loc.Disk, func() error {
		return a.disks[loc.Disk].Write(loc.Block, b, meta)
	})
	if err == nil {
		a.noteWrite(loc, b)
	}
	return err
}

// WriteParityMeta rewrites only the parity page's header (state,
// timestamp), charging one transfer.
func (a *Array) WriteParityMeta(g page.GroupID, twin int, meta disk.Meta) error {
	loc := a.ParityLoc(g, twin)
	return a.do(loc.Disk, func() error {
		return a.disks[loc.Disk].WriteMeta(loc.Block, meta)
	})
}

// ReadParityMeta reads only the parity page's header (state, timestamp),
// charging one transfer.  The bitmap-rebuild scan after a crash uses it.
func (a *Array) ReadParityMeta(g page.GroupID, twin int) (disk.Meta, error) {
	loc := a.ParityLoc(g, twin)
	var m disk.Meta
	err := a.do(loc.Disk, func() error {
		var err error
		m, err = a.disks[loc.Disk].ReadMeta(loc.Block)
		return err
	})
	return m, err
}

// PeekParityMeta returns parity metadata without charging a transfer
// (verification aid).
func (a *Array) PeekParityMeta(g page.GroupID, twin int) (disk.Meta, error) {
	loc := a.ParityLoc(g, twin)
	return a.disks[loc.Disk].PeekMeta(loc.Block)
}

// PeekData returns a copy of a data page without charging a transfer
// (verification aid).
func (a *Array) PeekData(p page.PageID) (page.Buf, error) {
	loc := a.DataLoc(p)
	return a.disks[loc.Disk].PeekData(loc.Block)
}

// PeekParity returns a copy of a parity page without charging a transfer
// (verification aid).
func (a *Array) PeekParity(g page.GroupID, twin int) (page.Buf, error) {
	loc := a.ParityLoc(g, twin)
	return a.disks[loc.Disk].PeekData(loc.Block)
}

// ReadQ reads the group's Q redundancy page, charging one transfer.
// Verified against the NVRAM write ledger like ReadData.
func (a *Array) ReadQ(g page.GroupID, twin int) (page.Buf, disk.Meta, error) {
	loc := a.QLoc(g, twin)
	var b page.Buf
	var m disk.Meta
	err := a.do(loc.Disk, func() error {
		var err error
		b, m, err = a.disks[loc.Disk].Read(loc.Block)
		return err
	})
	if err == nil {
		err = a.checkLedger(loc, b)
	}
	return b, m, err
}

// WriteQ writes the group's Q redundancy page, charging one transfer.
func (a *Array) WriteQ(g page.GroupID, twin int, b page.Buf, meta disk.Meta) error {
	loc := a.QLoc(g, twin)
	err := a.do(loc.Disk, func() error {
		return a.disks[loc.Disk].Write(loc.Block, b, meta)
	})
	if err == nil {
		a.noteWrite(loc, b)
	}
	return err
}

// WriteQMeta rewrites only the Q page's header, charging one transfer.
func (a *Array) WriteQMeta(g page.GroupID, twin int, meta disk.Meta) error {
	loc := a.QLoc(g, twin)
	return a.do(loc.Disk, func() error {
		return a.disks[loc.Disk].WriteMeta(loc.Block, meta)
	})
}

// ReadQMeta reads only the Q page's header, charging one transfer.
func (a *Array) ReadQMeta(g page.GroupID, twin int) (disk.Meta, error) {
	loc := a.QLoc(g, twin)
	var m disk.Meta
	err := a.do(loc.Disk, func() error {
		var err error
		m, err = a.disks[loc.Disk].ReadMeta(loc.Block)
		return err
	})
	return m, err
}

// PeekQ returns a copy of a Q page without charging a transfer
// (verification aid).
func (a *Array) PeekQ(g page.GroupID, twin int) (page.Buf, error) {
	loc := a.QLoc(g, twin)
	return a.disks[loc.Disk].PeekData(loc.Block)
}

// PeekQMeta returns Q-page metadata without charging a transfer
// (verification aid).
func (a *Array) PeekQMeta(g page.GroupID, twin int) (disk.Meta, error) {
	loc := a.QLoc(g, twin)
	return a.disks[loc.Disk].PeekMeta(loc.Block)
}

// --- Failure handling ------------------------------------------------------

// FailDisk injects a fail-stop failure on disk d and advances the health
// machine exactly as an organically detected failure would.  The
// injection itself always succeeds — a loss beyond the redundancy budget
// fails the array, and subsequent operations surface the typed
// ErrArrayFailed.
func (a *Array) FailDisk(d int) error {
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("diskarray: no disk %d", d)
	}
	a.disks[d].Fail()
	a.noteFailed(d, disk.ErrFailed)
	return nil
}

// DiskFailed reports whether disk d has failed.
func (a *Array) DiskFailed(d int) bool { return a.disks[d].Failed() }

// RepairDisk swaps in a fresh zeroed drive for disk d without
// reconstructing its contents (media recovery does that), then re-derives
// the array health from the remaining fail-stop flags.
func (a *Array) RepairDisk(d int) error {
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("diskarray: no disk %d", d)
	}
	a.disks[d].Repair()
	a.resetLedger(d)
	a.recomputeHealth()
	return nil
}

// Disk exposes the underlying drive (for tests and the layout dumper).
func (a *Array) Disk(d int) *disk.Disk { return a.disks[d] }

// SetInjector installs (or, with nil, removes) a fault injector on every
// drive of the array.
func (a *Array) SetInjector(inj disk.Injector) {
	for _, d := range a.disks {
		d.SetInjector(inj)
	}
}

// SetLatency sets the simulated per-transfer service time of every drive
// (see disk.Disk.SetLatency).  Rebuild replacements inherit it: a rebuild
// reuses the repaired drive object.
func (a *Array) SetLatency(lat time.Duration) {
	for _, d := range a.disks {
		d.SetLatency(lat)
	}
}

// Stats returns the aggregate I/O counters across all disks.
func (a *Array) Stats() disk.Stats {
	var s disk.Stats
	for _, d := range a.disks {
		s.Add(d.Stats())
	}
	return s
}

// DiskStats returns per-disk I/O counters, indexed by disk number.
func (a *Array) DiskStats() []disk.Stats {
	out := make([]disk.Stats, len(a.disks))
	for i, d := range a.disks {
		out[i] = d.Stats()
	}
	return out
}

// ResetStats zeroes all disks' I/O counters.
func (a *Array) ResetStats() {
	for _, d := range a.disks {
		d.ResetStats()
	}
}

// --- Whole-group operations -------------------------------------------------

// ReadGroup reads all N data pages of group g.
func (a *Array) ReadGroup(g page.GroupID) ([]page.Buf, error) {
	pages := a.GroupPages(g)
	out := make([]page.Buf, len(pages))
	for i, p := range pages {
		b, _, err := a.ReadData(p)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

// RecomputeParity reads the whole group and rewrites the given twin with
// the freshly computed parity and the supplied metadata.  It is the
// full-stripe fallback used by scrubbing, formatting of non-zero state
// and media recovery of parity blocks.
func (a *Array) RecomputeParity(g page.GroupID, twin int, meta disk.Meta) error {
	blocks, err := a.ReadGroup(g)
	if err != nil {
		return err
	}
	raw := make([][]byte, len(blocks))
	for i, b := range blocks {
		raw[i] = b
	}
	parity := xorparity.Compute(a.cfg.PageSize, raw...)
	return a.WriteParity(g, twin, parity, meta)
}

// RecomputeQ reads the whole group and rewrites the given Q twin with the
// freshly computed GF(2^8) redundancy and the supplied metadata — the Q
// counterpart of RecomputeParity.
func (a *Array) RecomputeQ(g page.GroupID, twin int, meta disk.Meta) error {
	blocks, err := a.ReadGroup(g)
	if err != nil {
		return err
	}
	raw := make([][]byte, len(blocks))
	for i, b := range blocks {
		raw[i] = b
	}
	q := erasure.ComputeQ(a.cfg.PageSize, raw...)
	return a.WriteQ(g, twin, q, meta)
}

// VerifyGroup reports whether the given twin's parity equals the XOR of
// the group's data pages.  Uses Peek I/O so it is free; verification aid.
func (a *Array) VerifyGroup(g page.GroupID, twin int) (bool, error) {
	pages := a.GroupPages(g)
	raw := make([][]byte, len(pages))
	for i, p := range pages {
		b, err := a.PeekData(p)
		if err != nil {
			return false, err
		}
		raw[i] = b
	}
	parity, err := a.PeekParity(g, twin)
	if err != nil {
		return false, err
	}
	return xorparity.Verify(parity, raw...), nil
}

// VerifyGroupQ reports whether the given twin's Q page equals the
// GF(2^8) redundancy of the group's data pages — the Q counterpart of
// VerifyGroup.  Uses Peek I/O so it is free; verification aid.
func (a *Array) VerifyGroupQ(g page.GroupID, twin int) (bool, error) {
	pages := a.GroupPages(g)
	raw := make([][]byte, len(pages))
	for i, p := range pages {
		b, err := a.PeekData(p)
		if err != nil {
			return false, err
		}
		raw[i] = b
	}
	q, err := a.PeekQ(g, twin)
	if err != nil {
		return false, err
	}
	return erasure.VerifyQ(q, raw...), nil
}

// ReconstructDisk rebuilds every block of a failed-and-replaced disk from
// the surviving members of each affected parity group, using validTwin to
// pick the authoritative parity page per group (pass nil to always use
// twin 0, which is correct for single-parity arrays and for twinned
// arrays in a fully committed state where the caller has ensured twin 0
// is current).
//
// Data blocks are reconstructed as XOR(valid parity, other data pages).
// Parity blocks are recomputed as XOR(all data pages); the metadata for a
// rebuilt parity block is taken from metaFor (or a committed header with
// timestamp 0 if metaFor is nil).
func (a *Array) ReconstructDisk(d int, validTwin func(page.GroupID) int, metaFor func(page.GroupID, int) disk.Meta) error {
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("diskarray: no disk %d", d)
	}
	if a.disks[d].Failed() {
		return fmt.Errorf("diskarray: disk %d must be repaired (replaced) before reconstruction", d)
	}
	for g := 0; g < a.numGroups; g++ {
		gid := page.GroupID(g)
		// Rebuild parity blocks that lived on d.
		for twin := 0; twin < a.parities; twin++ {
			loc := a.ParityLoc(gid, twin)
			if loc.Disk != d {
				continue
			}
			meta := disk.Meta{State: disk.StateCommitted, Timestamp: 0}
			if metaFor != nil {
				meta = metaFor(gid, twin)
			}
			if err := a.RecomputeParity(gid, twin, meta); err != nil {
				return fmt.Errorf("diskarray: rebuild parity of group %d: %w", g, err)
			}
		}
		// Rebuild Q blocks that lived on d.
		for twin := 0; twin < a.qparities; twin++ {
			loc := a.QLoc(gid, twin)
			if loc.Disk != d {
				continue
			}
			meta := disk.Meta{State: disk.StateCommitted, Timestamp: 0}
			if metaFor != nil {
				meta = metaFor(gid, twin)
			}
			if err := a.RecomputeQ(gid, twin, meta); err != nil {
				return fmt.Errorf("diskarray: rebuild Q of group %d: %w", g, err)
			}
		}
		// Rebuild the data block of g that lived on d, if any.
		for _, p := range a.GroupPages(gid) {
			loc := a.DataLoc(p)
			if loc.Disk != d {
				continue
			}
			twin := 0
			if validTwin != nil {
				twin = validTwin(gid)
			}
			parity, _, err := a.ReadParity(gid, twin)
			if err != nil {
				return fmt.Errorf("diskarray: read parity of group %d: %w", g, err)
			}
			survivors := [][]byte{parity}
			for _, q := range a.GroupPages(gid) {
				if q == p {
					continue
				}
				b, _, err := a.ReadData(q)
				if err != nil {
					return fmt.Errorf("diskarray: read survivor %d: %w", q, err)
				}
				survivors = append(survivors, b)
			}
			rebuilt := xorparity.Reconstruct(a.cfg.PageSize, survivors...)
			if err := a.WriteData(p, rebuilt, disk.Meta{}); err != nil {
				return fmt.Errorf("diskarray: write rebuilt page %d: %w", p, err)
			}
		}
	}
	return nil
}
