package diskarray

// Pipelined-mode plumbing: queue lifecycle fan-out across the member
// drives, and a small fork/join helper for overlapping the independent
// transfers of one logical operation (the small-write RMW's two reads,
// the per-group flush's data writes) across drives.

// StartQueues enables the per-drive request queue on every member disk
// (see disk.Disk.StartQueue).  depth is the per-drive queue depth,
// window the elevator's starvation bound.  Rebuild replacements inherit
// the queue: a rebuild reuses the repaired drive object.
func (a *Array) StartQueues(depth, window int) {
	for _, d := range a.disks {
		d.StartQueue(depth, window)
	}
}

// StopQueues drains and disables every per-drive queue.
func (a *Array) StopQueues() {
	for _, d := range a.disks {
		d.StopQueue()
	}
}

// ResetQueues clears crash poisoning on every per-drive queue after the
// engine has wiped volatile state (see disk.Disk.ResetQueue).
func (a *Array) ResetQueues() {
	for _, d := range a.disks {
		d.ResetQueue()
	}
}

// Batch runs the given operations concurrently and joins them all.  It
// exists for the transfers of ONE logical array operation whose members
// are independent — never for writes whose order the recovery protocol
// relies on (parity before data stays sequential).  The first non-nil
// error in argument order is returned; if any operation panicked, the
// earliest panic in argument order is re-raised on the caller's
// goroutine after every branch has finished, so a crash injected into
// one branch still produces a deterministic, fully-joined failure.
func Batch(ops ...func() error) error {
	if len(ops) == 1 {
		return ops[0]()
	}
	errs := make([]error, len(ops))
	panics := make([]any, len(ops))
	done := make(chan int, len(ops))
	for i, op := range ops {
		go func(i int, op func() error) {
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
				done <- i
			}()
			errs[i] = op()
		}(i, op)
	}
	for range ops {
		<-done
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
