package diskarray

import (
	"errors"
	"fmt"

	"repro/internal/disk"
)

// Health is the array's availability state.  The machine moves
//
//	Healthy → Degraded → Rebuilding → Healthy
//
// as disks fail-stop and are rebuilt online.  Without QParity a second
// overlapping loss drops the array to Failed — some parity groups have
// lost two blocks and XOR redundancy cannot recover them without a
// media-recovery pass (RepairDisks).  With QParity the second loss is
// still inside the redundancy (DoubleDegraded); only a THIRD overlapping
// loss fails the array.
type Health int

const (
	// Healthy: all disks serving.
	Healthy Health = iota
	// Degraded: exactly one disk is down; reads of its blocks must be
	// reconstructed from parity + survivors.
	Degraded
	// Rebuilding: the down disk(s) have been replaced by fresh drives and
	// a rebuild worker is reconstructing their blocks; unrestored blocks
	// must still be served degraded.
	Rebuilding
	// Failed: overlapping disk losses exceed the array's redundancy
	// (two for single parity, three with QParity).  I/O errors are
	// wrapped in ErrArrayFailed.
	Failed
	// DoubleDegraded: exactly two disks are down on a QParity array;
	// reads of their blocks must be reconstructed from the P and Q
	// equations together (internal/erasure).
	DoubleDegraded
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case DoubleDegraded:
		return "double-degraded"
	case Rebuilding:
		return "rebuilding"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// ErrArrayFailed reports that overlapping disk losses exceed the array's
// redundancy: a second loss on a single-parity array, a third on a
// QParity array.  Affected groups cannot be served; media recovery
// (RepairDisks) is the only way out.
var ErrArrayFailed = errors.New("diskarray: array failed, overlapping disk losses exceed redundancy")

// HealingStats counts the work done by the self-healing retry layer.
type HealingStats struct {
	// Retries is the number of transient I/O errors absorbed by the
	// retry loop (each one is a re-issued block operation).
	Retries uint64
	// BackoffUnits is the total deterministic backoff charged before
	// retries, in abstract units (1, 2, 4, ... per successive attempt).
	// The simulator does not sleep; the counter stands in for wall time.
	BackoffUnits uint64
	// AutoFailStops is the number of disks fail-stopped automatically
	// after FailStopAfter consecutive errored attempts.
	AutoFailStops uint64
}

// Health returns the array's current availability state.
func (a *Array) Health() Health {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.health
}

// DownDisk returns the disk currently down (Degraded) or being rebuilt
// (Rebuilding), or -1 when the array is Healthy.  When several disks are
// down (DoubleDegraded, Failed) it returns the oldest loss; use DownDisks
// for the full set.
func (a *Array) DownDisk() int {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	if len(a.downd) == 0 {
		return -1
	}
	return a.downd[0]
}

// DownDisks returns the disks currently down or being rebuilt, oldest
// loss first (empty when Healthy).
func (a *Array) DownDisks() []int {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	out := make([]int, len(a.downd))
	copy(out, a.downd)
	return out
}

// lossBudget is the number of overlapping disk losses the redundancy can
// absorb: one per redundancy equation.
func (a *Array) lossBudget() int {
	if a.qparities > 0 {
		return 2
	}
	return 1
}

// healthFor returns the non-failed health state for n down disks.
func healthFor(n int) Health {
	switch n {
	case 0:
		return Healthy
	case 1:
		return Degraded
	default:
		return DoubleDegraded
	}
}

// Healing returns the cumulative self-healing counters.
func (a *Array) Healing() HealingStats {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.healing
}

// do runs one block I/O against disk d through the retry layer.
//
// Transient errors (disk.ErrTransient) are retried up to RetryAttempts
// times with deterministic exponential backoff (recorded in abstract
// units, never slept).  Each errored attempt bumps the disk's
// consecutive-error count; any success resets it.  When the count reaches
// FailStopAfter the disk is fail-stopped automatically — a drive that
// keeps erroring is treated as dead rather than allowed to stall the
// engine — and the error converts to the ErrFailed class so the layers
// above serve the request degraded instead of surfacing a spurious
// failure.  Hard errors (ErrFailed) feed the health machine; data errors
// (ErrChecksum, ErrStamp, ErrOutOfRange) pass through untouched, as they
// indicate bad blocks rather than a bad drive — retrying would re-read
// the same bad bytes, and the verified-read layer above repairs them
// from group redundancy instead.
func (a *Array) do(d int, op func() error) error {
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			a.hmu.Lock()
			a.consec[d] = 0
			a.hmu.Unlock()
			return nil
		}
		if disk.IsTransient(err) {
			a.hmu.Lock()
			a.healing.Retries++
			a.consec[d]++
			trip := a.consec[d] >= a.cfg.FailStopAfter
			if trip {
				a.healing.AutoFailStops++
			} else if attempt < a.cfg.RetryAttempts {
				a.healing.BackoffUnits += 1 << (attempt - 1)
			}
			a.hmu.Unlock()
			if trip {
				a.disks[d].Fail()
				return a.noteFailed(d, fmt.Errorf("%w: disk %d fail-stopped after %d consecutive transient errors", disk.ErrFailed, d, a.cfg.FailStopAfter))
			}
			if attempt < a.cfg.RetryAttempts {
				continue
			}
			return err
		}
		if errors.Is(err, disk.ErrFailed) {
			return a.noteFailed(d, err)
		}
		return err
	}
}

// noteFailed records that disk d returned a hard failure and advances the
// health machine.  Losses inside the redundancy budget degrade the array
// (Degraded, then DoubleDegraded on QParity arrays); a loss beyond the
// budget fails it, and from then on every hard error is wrapped in
// ErrArrayFailed so callers get a typed signal instead of a raw disk
// error.
func (a *Array) noteFailed(d int, err error) error {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	known := false
	for _, x := range a.downd {
		if x == d {
			known = true
			break
		}
	}
	switch {
	case a.health == Failed:
		// Already failed; keep wrapping below.
	case known:
		// A down disk (or its mid-rebuild replacement) erred again; fall
		// back from Rebuilding to the degraded state for the same losses.
		if a.health == Rebuilding {
			a.health = healthFor(len(a.downd))
		}
	case len(a.downd) < a.lossBudget():
		a.downd = append(a.downd, d)
		a.health = healthFor(len(a.downd))
	default:
		a.downd = append(a.downd, d)
		a.health = Failed
	}
	if a.health == Failed && !errors.Is(err, ErrArrayFailed) {
		err = fmt.Errorf("%w: %v", ErrArrayFailed, err)
	}
	return err
}

// recomputeHealth re-derives the health state from the disks' actual
// fail-stop flags.  Called after a repair; a Rebuilding state is
// preserved (its down disks are already replaced, hence not Failed()).
func (a *Array) recomputeHealth() {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	failed := make([]int, 0, len(a.disks))
	for i, dd := range a.disks {
		if dd.Failed() {
			failed = append(failed, i)
		}
	}
	for i := range a.consec {
		a.consec[i] = 0
	}
	switch {
	case len(failed) == 0:
		if a.health != Rebuilding {
			a.health = Healthy
			a.downd = nil
		}
	case len(failed) <= a.lossBudget():
		a.health = healthFor(len(failed))
		a.downd = failed
	default:
		a.health = Failed
		a.downd = failed
	}
}

// ProbeDisks touches every drive once — one charged header read of block
// 0 each, the restart-time spin-up check — so that any disk that died at
// (or since) the crash is discovered by the health machine *before*
// recovery plans its passes, instead of surfacing as a surprise error in
// the middle of one.  Probe errors are not returned: the point is the
// health-machine side effect, and a dead drive's groups are handled by
// the degraded recovery path.
func (a *Array) ProbeDisks() {
	for d := range a.disks {
		dd := a.disks[d]
		_ = a.do(d, func() error {
			_, err := dd.ReadMeta(0)
			return err
		})
	}
}

// BeginRebuild swaps fresh zeroed drives in for the given down disks and
// marks the array Rebuilding.  The caller owns reconstructing the drives'
// blocks (stripe by stripe, online) and must call FinishRebuild when
// done; until then reads of unrestored blocks return zeroes and must be
// served degraded by the layers above.  A QParity array rebuilds up to
// two drives in one pass — the two-drive rebuild.
func (a *Array) BeginRebuild(ds ...int) error {
	for _, d := range ds {
		if d < 0 || d >= len(a.disks) {
			return fmt.Errorf("diskarray: no disk %d", d)
		}
	}
	for _, d := range ds {
		a.disks[d].Repair()
		a.resetLedger(d)
	}
	a.hmu.Lock()
	defer a.hmu.Unlock()
	a.health = Rebuilding
	a.downd = append([]int(nil), ds...)
	for i := range a.consec {
		a.consec[i] = 0
	}
	return nil
}

// FinishRebuild marks an online rebuild complete, returning the array to
// Healthy.
func (a *Array) FinishRebuild() {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	if a.health == Rebuilding {
		a.health = Healthy
		a.downd = nil
	}
}
