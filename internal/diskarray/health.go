package diskarray

import (
	"errors"
	"fmt"

	"repro/internal/disk"
)

// Health is the array's availability state.  The machine moves
//
//	Healthy → Degraded → Rebuilding → Healthy
//
// as disks fail-stop and are rebuilt online, and drops to Failed when a
// second disk is lost while the first is still down — at that point some
// parity groups have lost two blocks and XOR redundancy cannot recover
// them without a media-recovery pass (RepairDisks).
type Health int

const (
	// Healthy: all disks serving.
	Healthy Health = iota
	// Degraded: exactly one disk is down; reads of its blocks must be
	// reconstructed from parity + survivors.
	Degraded
	// Rebuilding: the down disk has been replaced by a fresh drive and a
	// rebuild worker is reconstructing its blocks; unrestored blocks must
	// still be served degraded.
	Rebuilding
	// Failed: two or more disks lost while redundancy was already
	// consumed.  I/O errors are wrapped in ErrArrayFailed.
	Failed
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Rebuilding:
		return "rebuilding"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Health(%d)", int(h))
	}
}

// ErrArrayFailed reports that a second disk failed while the array was
// already degraded: single-parity redundancy is exhausted and affected
// groups cannot be served.  Media recovery (RepairDisks) is the only way
// out.
var ErrArrayFailed = errors.New("diskarray: array failed, overlapping disk losses exceed parity redundancy")

// HealingStats counts the work done by the self-healing retry layer.
type HealingStats struct {
	// Retries is the number of transient I/O errors absorbed by the
	// retry loop (each one is a re-issued block operation).
	Retries uint64
	// BackoffUnits is the total deterministic backoff charged before
	// retries, in abstract units (1, 2, 4, ... per successive attempt).
	// The simulator does not sleep; the counter stands in for wall time.
	BackoffUnits uint64
	// AutoFailStops is the number of disks fail-stopped automatically
	// after FailStopAfter consecutive errored attempts.
	AutoFailStops uint64
}

// Health returns the array's current availability state.
func (a *Array) Health() Health {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.health
}

// DownDisk returns the disk currently down (Degraded) or being rebuilt
// (Rebuilding), or -1 when the array is Healthy.  When Failed it returns
// the first lost disk.
func (a *Array) DownDisk() int {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.down
}

// Healing returns the cumulative self-healing counters.
func (a *Array) Healing() HealingStats {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	return a.healing
}

// do runs one block I/O against disk d through the retry layer.
//
// Transient errors (disk.ErrTransient) are retried up to RetryAttempts
// times with deterministic exponential backoff (recorded in abstract
// units, never slept).  Each errored attempt bumps the disk's
// consecutive-error count; any success resets it.  When the count reaches
// FailStopAfter the disk is fail-stopped automatically — a drive that
// keeps erroring is treated as dead rather than allowed to stall the
// engine — and the error converts to the ErrFailed class so the layers
// above serve the request degraded instead of surfacing a spurious
// failure.  Hard errors (ErrFailed) feed the health machine; data errors
// (ErrChecksum, ErrStamp, ErrOutOfRange) pass through untouched, as they
// indicate bad blocks rather than a bad drive — retrying would re-read
// the same bad bytes, and the verified-read layer above repairs them
// from group redundancy instead.
func (a *Array) do(d int, op func() error) error {
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil {
			a.hmu.Lock()
			a.consec[d] = 0
			a.hmu.Unlock()
			return nil
		}
		if disk.IsTransient(err) {
			a.hmu.Lock()
			a.healing.Retries++
			a.consec[d]++
			trip := a.consec[d] >= a.cfg.FailStopAfter
			if trip {
				a.healing.AutoFailStops++
			} else if attempt < a.cfg.RetryAttempts {
				a.healing.BackoffUnits += 1 << (attempt - 1)
			}
			a.hmu.Unlock()
			if trip {
				a.disks[d].Fail()
				return a.noteFailed(d, fmt.Errorf("%w: disk %d fail-stopped after %d consecutive transient errors", disk.ErrFailed, d, a.cfg.FailStopAfter))
			}
			if attempt < a.cfg.RetryAttempts {
				continue
			}
			return err
		}
		if errors.Is(err, disk.ErrFailed) {
			return a.noteFailed(d, err)
		}
		return err
	}
}

// noteFailed records that disk d returned a hard failure and advances the
// health machine.  The first loss degrades the array; a loss of a second,
// different disk while the first is still down fails it, and from then on
// every hard error is wrapped in ErrArrayFailed so callers get a typed
// double-failure signal instead of a raw disk error.
func (a *Array) noteFailed(d int, err error) error {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	switch {
	case a.health == Failed:
		// Already failed; keep wrapping below.
	case a.down == -1:
		a.down = d
		a.health = Degraded
	case a.down == d:
		// The down disk (or its mid-rebuild replacement) erred again;
		// fall back from Rebuilding to Degraded, still one disk down.
		if a.health == Rebuilding {
			a.health = Degraded
		}
	default:
		a.health = Failed
	}
	if a.health == Failed && !errors.Is(err, ErrArrayFailed) {
		err = fmt.Errorf("%w: %v", ErrArrayFailed, err)
	}
	return err
}

// recomputeHealth re-derives the health state from the disks' actual
// fail-stop flags.  Called after a repair; a Rebuilding state is
// preserved (its down disk is already replaced, hence not Failed()).
func (a *Array) recomputeHealth() {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	failed := make([]int, 0, len(a.disks))
	for i, dd := range a.disks {
		if dd.Failed() {
			failed = append(failed, i)
		}
	}
	for i := range a.consec {
		a.consec[i] = 0
	}
	switch len(failed) {
	case 0:
		if a.health != Rebuilding {
			a.health = Healthy
			a.down = -1
		}
	case 1:
		a.health = Degraded
		a.down = failed[0]
	default:
		a.health = Failed
		a.down = failed[0]
	}
}

// ProbeDisks touches every drive once — one charged header read of block
// 0 each, the restart-time spin-up check — so that any disk that died at
// (or since) the crash is discovered by the health machine *before*
// recovery plans its passes, instead of surfacing as a surprise error in
// the middle of one.  Probe errors are not returned: the point is the
// health-machine side effect, and a dead drive's groups are handled by
// the degraded recovery path.
func (a *Array) ProbeDisks() {
	for d := range a.disks {
		dd := a.disks[d]
		_ = a.do(d, func() error {
			_, err := dd.ReadMeta(0)
			return err
		})
	}
}

// BeginRebuild swaps a fresh zeroed drive in for down disk d and marks
// the array Rebuilding.  The caller owns reconstructing the drive's
// blocks (stripe by stripe, online) and must call FinishRebuild when
// done; until then reads of unrestored blocks return zeroes and must be
// served degraded by the layers above.
func (a *Array) BeginRebuild(d int) error {
	if d < 0 || d >= len(a.disks) {
		return fmt.Errorf("diskarray: no disk %d", d)
	}
	a.disks[d].Repair()
	a.resetLedger(d)
	a.hmu.Lock()
	defer a.hmu.Unlock()
	a.health = Rebuilding
	a.down = d
	for i := range a.consec {
		a.consec[i] = 0
	}
	return nil
}

// FinishRebuild marks an online rebuild complete, returning the array to
// Healthy.
func (a *Array) FinishRebuild() {
	a.hmu.Lock()
	defer a.hmu.Unlock()
	if a.health == Rebuilding {
		a.health = Healthy
		a.down = -1
	}
}
