// Package workload generates replayable transactional workloads as
// rda/trace traces: composable generators — uniform, YCSB-style zipfian
// hot-page skew, TPC-B-style banking transfers, sequential scan — with
// read/write-mix knobs, all driven by one seeded RNG so a (spec, seed)
// pair names a workload exactly.
//
// Generation mimics the engine's concurrency model the way the paper's
// own performance model does: up to 255 transaction streams interleave
// op by op (a random stream advances each step), so pages of
// still-active transactions face buffer-pool steals during replay
// exactly as they would under real concurrent load.  Because the trace
// is replayed single-threaded in trace order, the generator — not the
// lock manager — resolves conflicts: a planned transaction never
// touches a page another stream's open transaction holds, which keeps
// replays free of lock waits and deadlock aborts and therefore
// deterministic.  Contended picks are re-drawn, mirroring the model's
// assumption of independent working sets.
//
// The paper's communality parameter C (the probability a page request
// hits the buffer) is realized generator-side: with probability Hot a
// pick re-references a page from a recency window sized like the buffer
// pool, so the trace itself carries the locality and replays of one
// trace see the same hit rate on every geometry.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/record"
	"repro/rda/trace"
)

// Profile fixes the shape of a generated workload: the database it
// addresses, its concurrency, and the model-equivalent mix parameters.
type Profile struct {
	// Mode selects page or record granularity ops.
	Mode trace.Mode
	// Streams is P, the number of interleaved transaction streams.
	Streams int
	// Transactions is the number of transactions to generate.
	Transactions int
	// PagesPerTx is s: page requests per transaction.
	PagesPerTx int
	// UpdateFraction is f_u: the fraction of update transactions.
	UpdateFraction float64
	// UpdateProb is p_u: the probability an accessed page is modified
	// (update transactions only).
	UpdateProb float64
	// AbortProb is p_b: the probability an update transaction ends in a
	// scripted abort.
	AbortProb float64
	// Hot approximates the communality C: the probability a pick
	// re-references a page from the recency window.
	Hot float64
	// Window is the recency window size in pages (≈ buffer frames).
	Window int
	// NumPages, PageSize and RecordSize describe the database the trace
	// addresses (RecordSize only in record mode).
	NumPages   int
	PageSize   int
	RecordSize int
	// Seed drives every random choice the generator makes.
	Seed int64
}

// validate applies defaults and sanity-checks the profile.
func (p Profile) validate() (Profile, error) {
	if p.Streams <= 0 {
		p.Streams = 1
	}
	if p.Streams > 255 {
		return p, fmt.Errorf("workload: at most 255 streams, got %d", p.Streams)
	}
	if p.Window <= 0 {
		p.Window = 64
	}
	if p.NumPages <= 0 || p.PageSize <= 0 {
		return p, fmt.Errorf("workload: profile needs NumPages and PageSize")
	}
	if p.Mode == trace.ModeRecord && p.RecordSize <= 0 {
		return p, fmt.Errorf("workload: record mode needs RecordSize")
	}
	if p.PagesPerTx <= 0 {
		p.PagesPerTx = 8
	}
	if p.Transactions <= 0 {
		return p, fmt.Errorf("workload: profile needs Transactions")
	}
	return p, nil
}

// recordsPerPage returns the slot capacity in record mode (0 in page
// mode).
func (p Profile) recordsPerPage() int {
	if p.Mode != trace.ModeRecord {
		return 0
	}
	return record.Capacity(p.PageSize, p.RecordSize)
}

// TxPlan is one planned transaction: its body ops (Begin and the EOT op
// are added by Generate), the distinct pages it touches (held against
// other streams until EOT) and whether it ends in a scripted abort.
type TxPlan struct {
	Body  []trace.Op
	Pages []uint32
	Abort bool
}

// Planner plans whole transactions for Generate.  PlanTx may fail
// (return ok=false) when every candidate page is held by another
// stream; Generate then advances other streams and retries later.
// Planners with semantic state (the banking book) apply a plan's
// effects at plan time for committing plans only — trace order
// guarantees replay applies them compatibly, because concurrent plans
// touch disjoint pages.
type Planner interface {
	// Name is the workload's spec name.
	Name() string
	// PlanTx plans one transaction.  busy reports pages held by other
	// streams' open transactions.
	PlanTx(r *rand.Rand, busy func(uint32) bool) (TxPlan, bool)
}

// Prologuer is implemented by planners that need setup transactions
// (the banking generator's account funding) emitted, serially on stream
// 0, before the workload body.
type Prologuer interface {
	Prologue() []TxPlan
}

// Generate interleaves the planner's transactions over the profile's
// streams and returns the finished trace.  The op sequence is a pure
// function of (profile, planner state, seed).
func Generate(prof Profile, pl Planner) (*trace.Trace, error) {
	prof, err := prof.validate()
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(prof.Seed))
	t := &trace.Trace{Header: trace.Header{
		Version:    trace.Version,
		Mode:       prof.Mode,
		Streams:    uint8(prof.Streams),
		NumPages:   uint32(prof.NumPages),
		PageSize:   uint32(prof.PageSize),
		RecordSize: uint32(prof.RecordSize),
		Seed:       prof.Seed,
		Spec:       pl.Name(),
	}}

	emitTx := func(stream uint8, plan TxPlan) {
		t.Ops = append(t.Ops, trace.Op{Kind: trace.OpBegin, Stream: stream})
		for _, op := range plan.Body {
			op.Stream = stream
			t.Ops = append(t.Ops, op)
		}
		eot := trace.OpCommit
		if plan.Abort {
			eot = trace.OpAbort
		}
		t.Ops = append(t.Ops, trace.Op{Kind: eot, Stream: stream})
	}

	if pro, ok := pl.(Prologuer); ok {
		for _, plan := range pro.Prologue() {
			emitTx(0, plan)
		}
	}

	// Per-stream state: the pending ops of the open transaction (EOT op
	// last) and the pages it holds.
	type stream struct {
		pending []trace.Op
		pages   []uint32
	}
	streams := make([]stream, prof.Streams)
	busy := make(map[uint32]int)
	holds := func(p uint32) bool { return busy[p] > 0 }

	planned, active, stalls := 0, 0, 0
	for planned < prof.Transactions || active > 0 {
		s := r.Intn(prof.Streams)
		st := &streams[s]
		if len(st.pending) == 0 {
			if planned >= prof.Transactions {
				continue // this stream is done; others still drain
			}
			plan, ok := pl.PlanTx(r, holds)
			if !ok {
				stalls++
				if stalls > 64*prof.Streams && active == 0 {
					return nil, fmt.Errorf("workload: %s cannot plan a transaction (database too small for the conflict-free interleave?)", pl.Name())
				}
				continue
			}
			stalls = 0
			planned++
			active++
			t.Ops = append(t.Ops, trace.Op{Kind: trace.OpBegin, Stream: uint8(s)})
			st.pending = append(st.pending[:0], plan.Body...)
			eot := trace.OpCommit
			if plan.Abort {
				eot = trace.OpAbort
			}
			st.pending = append(st.pending, trace.Op{Kind: eot})
			st.pages = plan.Pages
			for _, p := range plan.Pages {
				busy[p]++
			}
			continue
		}
		op := st.pending[0]
		st.pending = st.pending[1:]
		op.Stream = uint8(s)
		t.Ops = append(t.Ops, op)
		if op.Kind.IsEOT() {
			for _, p := range st.pages {
				busy[p]--
				if busy[p] == 0 {
					delete(busy, p)
				}
			}
			st.pages = nil
			active--
		}
	}
	return t, nil
}
