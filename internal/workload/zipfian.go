package workload

import (
	"math"
	"math/rand"
)

// zipfian draws ranks 0..n-1 with the Zipf distribution of exponent
// theta in (0,1): P(rank k) ∝ 1/(k+1)^theta.  This is Gray et al.'s
// rejection-free quantile method as popularized by YCSB — Go's
// rand.Zipf requires exponent > 1, so the YCSB range (theta 0.99)
// needs its own generator.  Rank 0 is the hottest item.
type zipfian struct {
	n     int
	theta float64
	alpha float64
	zetan float64
	eta   float64
	// scramble spreads the hot ranks across the key space with an
	// FNV-style hash, so "hot" does not mean "clustered in the first
	// parity group"; the frequency *distribution* is unchanged.
	scramble bool
}

// zeta computes the generalized harmonic number sum_{i=1..n} 1/i^theta.
func zeta(n int, theta float64) float64 {
	var z float64
	for i := 1; i <= n; i++ {
		z += 1 / math.Pow(float64(i), theta)
	}
	return z
}

func newZipfian(n int, theta float64, scramble bool) *zipfian {
	z := &zipfian{n: n, theta: theta, scramble: scramble}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	zeta2 := zeta(2, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// rank draws an unscrambled rank (0 = hottest).
func (z *zipfian) rank(r *rand.Rand) int {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// pick implements picker: the drawn rank, scrambled over the key space
// when enabled.
func (z *zipfian) pick(r *rand.Rand) uint32 {
	k := z.rank(r)
	if k >= z.n {
		k = z.n - 1
	}
	if !z.scramble {
		return uint32(k)
	}
	// FNV-1a over the rank's bytes; modulo keeps it in range.  Distinct
	// ranks may collide, which only sharpens the skew slightly — the
	// standard YCSB trade-off.
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(k >> (8 * i)))
		h *= 1099511628211
	}
	return uint32(h % uint64(z.n))
}

// probability returns the theoretical probability of the unscrambled
// rank k (0-based) — the reference for the distribution property test.
func (z *zipfian) probability(k int) float64 {
	return 1 / (math.Pow(float64(k+1), z.theta) * z.zetan)
}
