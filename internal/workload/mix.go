package workload

import (
	"math/rand"

	"repro/rda/trace"
)

// picker draws one page id for a transaction body.
type picker interface {
	pick(r *rand.Rand) uint32
}

// uniformPicker draws pages uniformly — the mix every earlier benchmark
// in this repo used.
type uniformPicker struct{ n int }

func (u uniformPicker) pick(r *rand.Rand) uint32 { return uint32(r.Intn(u.n)) }

// scanPicker walks the page space sequentially, shared across streams,
// wrapping at the end — the sequential-scan access pattern.  The cursor
// is generator state, so the trace is the scan.
type scanPicker struct {
	n      int
	cursor int
}

func (s *scanPicker) pick(_ *rand.Rand) uint32 {
	p := uint32(s.cursor % s.n)
	s.cursor++
	return p
}

// mixPlanner plans transactions of the model's shape — s page requests,
// update fraction f_u, per-page update probability p_u, abort
// probability p_b — over any page picker, with a recency window
// realizing the communality knob.  Uniform, zipfian and scan workloads
// are all mixPlanners; only the picker differs.
type mixPlanner struct {
	name    string
	prof    Profile
	pick    picker
	perPage int // record slots per page (record mode)
	// window is the recency ring approximating buffer residence; wpos
	// is the next overwrite position.
	window []uint32
	wpos   int
}

func newMixPlanner(name string, prof Profile, pk picker) *mixPlanner {
	return &mixPlanner{name: name, prof: prof, pick: pk, perPage: prof.recordsPerPage()}
}

// Name implements Planner.
func (m *mixPlanner) Name() string { return m.name }

// touch records a planned page in the recency window.
func (m *mixPlanner) touch(p uint32) {
	if len(m.window) < m.prof.Window {
		m.window = append(m.window, p)
		return
	}
	m.window[m.wpos] = p
	m.wpos = (m.wpos + 1) % len(m.window)
}

// pickOne draws one conflict-free page: from the recency window with
// probability Hot, from the picker otherwise, re-drawing up to 32 times
// when the candidate is held by another stream.  Pages already in this
// plan are always admissible (re-references hit the same transaction's
// own locks).
func (m *mixPlanner) pickOne(r *rand.Rand, busy func(uint32) bool, mine map[uint32]bool) (uint32, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		var p uint32
		if len(m.window) > 0 && r.Float64() < m.prof.Hot {
			p = m.window[r.Intn(len(m.window))]
		} else {
			p = m.pick.pick(r)
		}
		if mine[p] || !busy(p) {
			return p, true
		}
	}
	return 0, false
}

// PlanTx implements Planner.
func (m *mixPlanner) PlanTx(r *rand.Rand, busy func(uint32) bool) (TxPlan, bool) {
	isUpdate := r.Float64() < m.prof.UpdateFraction
	var plan TxPlan
	plan.Abort = isUpdate && r.Float64() < m.prof.AbortProb
	mine := make(map[uint32]bool, m.prof.PagesPerTx)
	for i := 0; i < m.prof.PagesPerTx; i++ {
		p, ok := m.pickOne(r, busy, mine)
		if !ok {
			break // contended; a shorter transaction is still a transaction
		}
		if !mine[p] {
			mine[p] = true
			plan.Pages = append(plan.Pages, p)
		}
		m.touch(p)
		write := isUpdate && r.Float64() < m.prof.UpdateProb
		var op trace.Op
		if m.prof.Mode == trace.ModeRecord {
			op = trace.Op{Page: p, Slot: uint16(r.Intn(m.perPage))}
			if write {
				op.Kind, op.Arg = trace.OpWriteRecord, r.Uint64()
			} else {
				op.Kind = trace.OpReadRecord
			}
		} else {
			op = trace.Op{Page: p}
			if write {
				op.Kind, op.Arg = trace.OpWritePage, r.Uint64()
			} else {
				op.Kind = trace.OpReadPage
			}
		}
		plan.Body = append(plan.Body, op)
	}
	if len(plan.Body) == 0 {
		return TxPlan{}, false
	}
	return plan, true
}
