package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/rda"
	"repro/rda/trace"
)

// TestZipfianDistribution checks the generator's frequencies against the
// theoretical Zipf probabilities: over a large sample, each of the top
// ranks must land within a small relative tolerance of P(k) =
// 1/((k+1)^θ·ζ_n).
func TestZipfianDistribution(t *testing.T) {
	const (
		n       = 1000
		theta   = 0.99
		samples = 400000
	)
	z := newZipfian(n, theta, false)
	r := rand.New(rand.NewSource(1))
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.pick(r)]++
	}
	// Ranks 0 and 1 are mapped exactly by the quantile method; later
	// ranks carry its known discretization bias, so they get a looser
	// tolerance, with the aggregate head mass held tight.
	var gotHead, wantHead float64
	for k := 0; k < 10; k++ {
		got := float64(counts[k]) / samples
		want := z.probability(k)
		gotHead, wantHead = gotHead+got, wantHead+want
		tol := 0.10
		if k >= 2 {
			tol = 0.25
		}
		if rel := (got - want) / want; rel < -tol || rel > tol {
			t.Errorf("rank %d: frequency %.5f vs theoretical %.5f (%.1f%% off)",
				k, got, want, 100*rel)
		}
	}
	if rel := (gotHead - wantHead) / wantHead; rel < -0.10 || rel > 0.10 {
		t.Errorf("top-10 mass %.4f vs theoretical %.4f (%.1f%% off)", gotHead, wantHead, 100*rel)
	}
	// The tail must still be covered: at least half the ranks drawn once.
	drawn := 0
	for _, c := range counts {
		if c > 0 {
			drawn++
		}
	}
	if drawn < n/2 {
		t.Errorf("only %d of %d ranks ever drawn", drawn, n)
	}
}

func TestZipfianScrambleStaysInRange(t *testing.T) {
	z := newZipfian(37, 0.99, true)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		if p := z.pick(r); p >= 37 {
			t.Fatalf("scrambled pick %d out of range", p)
		}
	}
}

func pageProfile(txns int, seed int64) Profile {
	return Profile{
		Mode:           trace.ModePage,
		Streams:        4,
		Transactions:   txns,
		PagesPerTx:     6,
		UpdateFraction: 0.8,
		UpdateProb:     0.9,
		AbortProb:      0.02,
		Hot:            0.5,
		Window:         32,
		NumPages:       128,
		PageSize:       128,
		Seed:           seed,
	}
}

// TestGenerateDeterministic: the same (spec, profile) must produce
// byte-identical traces — generation is a pure function of its inputs.
func TestGenerateDeterministic(t *testing.T) {
	for _, spec := range []string{"uniform", "zipfian:theta=0.9", "scan", "banking:accounts=50"} {
		gen := func() []byte {
			prof, pl, err := FromSpec(spec, pageProfile(200, 11))
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			tr, err := Generate(prof, pl)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			return tr.Encode()
		}
		if !bytes.Equal(gen(), gen()) {
			t.Errorf("%s: two generations differ", spec)
		}
	}
}

// TestGenerateConflictFree: at no point in a generated trace do two
// streams hold the same page — the invariant that makes single-threaded
// replay equivalent to the planned concurrent interleaving.
func TestGenerateConflictFree(t *testing.T) {
	prof, pl, err := FromSpec("zipfian:theta=0.99,streams=6", pageProfile(400, 3))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(prof, pl)
	if err != nil {
		t.Fatal(err)
	}
	holder := map[uint32]uint8{} // page -> stream holding it
	open := map[uint8]map[uint32]bool{}
	for i, op := range tr.Ops {
		switch {
		case op.Kind == trace.OpBegin:
			open[op.Stream] = map[uint32]bool{}
		case op.Kind.IsEOT():
			for p := range open[op.Stream] {
				delete(holder, p)
			}
			delete(open, op.Stream)
		default:
			if s, held := holder[op.Page]; held && s != op.Stream {
				t.Fatalf("op %d: stream %d touches page %d held by stream %d",
					i, op.Stream, op.Page, s)
			}
			holder[op.Page] = op.Stream
			open[op.Stream][op.Page] = true
		}
	}
}

// TestBankingConservation replays a generated banking workload and
// checks the invariant the generator promises: the total balance is
// conserved and every account matches the generator's book.
func TestBankingConservation(t *testing.T) {
	prof := pageProfile(300, 21)
	prof.Mode = trace.ModeRecord
	prof.RecordSize = 16
	bank, err := NewBanking(prof, 80, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(prof, bank)
	if err != nil {
		t.Fatal(err)
	}

	cfg := rda.DefaultConfig()
	cfg.DataDisks = 4
	cfg.BufferFrames = 24
	cfg.EOT = rda.NoForce
	db, err := rda.Open(tr.Config(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(db, tr, trace.Options{}); err != nil {
		t.Fatal(err)
	}

	total, err := bank.TotalIn(db)
	if err != nil {
		t.Fatal(err)
	}
	if want := bank.ExpectedTotal(); total != want {
		t.Fatalf("total balance %d, want %d", total, want)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Abort() //nolint:errcheck
	for a, want := range bank.Balances() {
		got, err := bank.BalanceIn(tx, a)
		if err != nil {
			t.Fatalf("account %d: %v", a, err)
		}
		if got != want {
			t.Fatalf("account %d: balance %d, book says %d", a, got, want)
		}
	}
}

// TestBankingConservationSurvivesCrash: crash-at-end recovery rolls the
// open transfers back, so the sum is still conserved (individual
// balances may lag the book by the rolled-back losers).
func TestBankingConservationSurvivesCrash(t *testing.T) {
	prof := pageProfile(200, 5)
	prof.Mode = trace.ModeRecord
	prof.RecordSize = 16
	bank, err := NewBanking(prof, 60, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(prof, bank)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rda.DefaultConfig()
	cfg.DataDisks = 4
	cfg.BufferFrames = 24
	db, err := rda.Open(tr.Config(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(db, tr, trace.Options{CrashAtEnd: true}); err != nil {
		t.Fatal(err)
	}
	total, err := bank.TotalIn(db)
	if err != nil {
		t.Fatal(err)
	}
	if want := bank.ExpectedTotal(); total != want {
		t.Fatalf("total balance after crash %d, want %d", total, want)
	}
}

func TestFromSpecErrors(t *testing.T) {
	base := pageProfile(10, 1)
	for _, spec := range []string{
		"", "nosuch", "zipfian:theta=2", "zipfian:nope=1",
		"uniform:s=x", "banking:accounts=1",
	} {
		if _, _, err := FromSpec(spec, base); err == nil {
			t.Errorf("FromSpec(%q): expected error", spec)
		}
	}
}

func TestFromSpecOverrides(t *testing.T) {
	prof, pl, err := FromSpec("uniform:s=3,fu=0.5,streams=2,txns=42", pageProfile(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if prof.PagesPerTx != 3 || prof.UpdateFraction != 0.5 || prof.Streams != 2 || prof.Transactions != 42 {
		t.Fatalf("overrides not applied: %+v", prof)
	}
	if pl.Name() != "uniform:s=3,fu=0.5,streams=2,txns=42" {
		t.Fatalf("planner name %q", pl.Name())
	}
}

// TestSourceStreams: named substreams of one source are stable and
// distinct.
func TestSourceStreams(t *testing.T) {
	s1, s2 := NewSource(42), NewSource(42)
	if s1.Stream("workload") != s2.Stream("workload") {
		t.Error("same seed, same name: streams differ")
	}
	if s1.Stream("workload") == s1.Stream("fault") {
		t.Error("different names collide")
	}
	if NewSource(1).Stream("workload") == NewSource(2).Stream("workload") {
		t.Error("different seeds collide")
	}
}
