package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/rda/trace"
)

// A spec names a workload compactly: "name" or "name:key=val,key=val".
// Names: uniform, zipfian, banking, scan.  Shared keys override the
// base profile: s (pages per tx), fu, pu, pb, hot, txns, streams.
// Workload keys: theta (zipfian, default 0.99), accounts / initial /
// maxtransfer (banking).  Examples:
//
//	uniform:hot=0.6
//	zipfian:theta=0.99,s=8
//	banking:accounts=400,pb=0.02
//	scan:fu=0.1
//
// The spec plus the profile seed fully determine the generated trace.
type parsedSpec struct {
	name string
	kv   map[string]string
	raw  string
}

func parseSpec(s string) (parsedSpec, error) {
	sp := parsedSpec{raw: s, kv: map[string]string{}}
	name, rest, _ := strings.Cut(strings.TrimSpace(s), ":")
	sp.name = strings.ToLower(strings.TrimSpace(name))
	if sp.name == "" {
		return sp, fmt.Errorf("workload: empty spec")
	}
	if rest == "" {
		return sp, nil
	}
	for _, tok := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || strings.TrimSpace(k) == "" {
			return sp, fmt.Errorf("workload: bad spec parameter %q in %q", tok, s)
		}
		sp.kv[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return sp, nil
}

func (sp parsedSpec) float(key string, def float64) (float64, error) {
	v, ok := sp.kv[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("workload: spec %q: bad %s=%q", sp.raw, key, v)
	}
	return f, nil
}

func (sp parsedSpec) int(key string, def int) (int, error) {
	v, ok := sp.kv[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("workload: spec %q: bad %s=%q", sp.raw, key, v)
	}
	return n, nil
}

// known keys per workload, for typo detection.
var specKeys = map[string]map[string]bool{
	"uniform": {},
	"zipfian": {"theta": true},
	"scan":    {},
	"banking": {"accounts": true, "initial": true, "maxtransfer": true},
}

var sharedKeys = map[string]bool{
	"s": true, "fu": true, "pu": true, "pb": true, "hot": true,
	"txns": true, "streams": true,
}

// FromSpec resolves a workload spec against a base profile: shared keys
// override profile fields, workload keys configure the planner.  The
// returned profile is what Generate must be called with.
func FromSpec(spec string, base Profile) (Profile, Planner, error) {
	sp, err := parseSpec(spec)
	if err != nil {
		return base, nil, err
	}
	own, ok := specKeys[sp.name]
	if !ok {
		return base, nil, fmt.Errorf("workload: unknown workload %q (want uniform, zipfian, banking or scan)", sp.name)
	}
	for k := range sp.kv {
		if !own[k] && !sharedKeys[k] {
			return base, nil, fmt.Errorf("workload: spec %q: unknown key %q", sp.raw, k)
		}
	}
	prof := base
	if prof.PagesPerTx, err = sp.int("s", prof.PagesPerTx); err != nil {
		return base, nil, err
	}
	if prof.UpdateFraction, err = sp.float("fu", prof.UpdateFraction); err != nil {
		return base, nil, err
	}
	if prof.UpdateProb, err = sp.float("pu", prof.UpdateProb); err != nil {
		return base, nil, err
	}
	if prof.AbortProb, err = sp.float("pb", prof.AbortProb); err != nil {
		return base, nil, err
	}
	if prof.Hot, err = sp.float("hot", prof.Hot); err != nil {
		return base, nil, err
	}
	if prof.Transactions, err = sp.int("txns", prof.Transactions); err != nil {
		return base, nil, err
	}
	if prof.Streams, err = sp.int("streams", prof.Streams); err != nil {
		return base, nil, err
	}

	switch sp.name {
	case "uniform":
		if prof, err = prof.validate(); err != nil {
			return base, nil, err
		}
		return prof, newMixPlanner(sp.raw, prof, uniformPicker{n: prof.NumPages}), nil
	case "zipfian":
		theta, err := sp.float("theta", 0.99)
		if err != nil {
			return base, nil, err
		}
		if theta <= 0 || theta >= 1 {
			return base, nil, fmt.Errorf("workload: zipfian theta must be in (0,1), got %g", theta)
		}
		if prof, err = prof.validate(); err != nil {
			return base, nil, err
		}
		return prof, newMixPlanner(sp.raw, prof, newZipfian(prof.NumPages, theta, true)), nil
	case "scan":
		// Scans are retrieval-heavy by default; explicit fu/pu still win.
		if _, ok := sp.kv["fu"]; !ok {
			prof.UpdateFraction = 0.1
		}
		if _, ok := sp.kv["pu"]; !ok {
			prof.UpdateProb = 0.3
		}
		if prof, err = prof.validate(); err != nil {
			return base, nil, err
		}
		return prof, newMixPlanner(sp.raw, prof, &scanPicker{n: prof.NumPages}), nil
	case "banking":
		accounts, err := sp.int("accounts", 0)
		if err != nil {
			return base, nil, err
		}
		initial, err := sp.int("initial", 1000)
		if err != nil {
			return base, nil, err
		}
		maxTransfer, err := sp.int("maxtransfer", 100)
		if err != nil {
			return base, nil, err
		}
		// Every transfer is an update of both its accounts: the
		// model-equivalent shape is s=2, f_u=1, p_u=1.
		prof.PagesPerTx = 2
		prof.UpdateFraction = 1
		prof.UpdateProb = 1
		if prof, err = prof.validate(); err != nil {
			return base, nil, err
		}
		if accounts == 0 {
			capacity := prof.NumPages
			if prof.Mode == trace.ModeRecord {
				capacity *= prof.recordsPerPage()
			}
			accounts = capacity / 2
			if accounts > 1000 {
				accounts = 1000
			}
		}
		pl, err := NewBanking(prof, accounts, int64(initial), int64(maxTransfer))
		if err != nil {
			return base, nil, err
		}
		return prof, pl, nil
	}
	panic("unreachable")
}
