package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/rda"
	"repro/rda/trace"
)

// Banking is the TPC-B-style transfer workload: money moves between
// accounts in atomic read-read-write-write transactions, and the sum of
// all balances is invariant — the oracle every banking run is checked
// against.  It is the library form of what examples/banking used to
// hand-roll, so the example, the property tests and the bench sweeps
// all exercise identical transaction logic.
//
// The generator keeps the book: it tracks every account balance at plan
// time and emits the *resulting* balances as literal write arguments
// (the first 8 bytes of a write payload are the argument, little
// endian — see trace.Payload).  Scripted aborts leave the book
// untouched, exactly as the engine's rollback will.  After a replay,
// the on-disk balances must equal the book and their sum must equal
// Accounts × InitialBalance.
//
// In record mode account i lives at (page, slot) = (i / perPage,
// i % perPage); in page mode each account owns page i with the balance
// in the page's first 8 bytes.
type Banking struct {
	// Accounts is the number of accounts; InitialBalance funds each.
	Accounts       int
	InitialBalance int64
	// MaxTransfer bounds a single transfer amount.
	MaxTransfer int64
	// AbortProb is the probability a transfer is scripted to abort.
	AbortProb float64

	mode     trace.Mode
	perPage  int
	balances []int64
}

// NewBanking builds the banking planner for a profile.  The profile's
// mix knobs (UpdateFraction, UpdateProb) are ignored — every transfer
// updates both its accounts — but AbortProb is honoured.
func NewBanking(prof Profile, accounts int, initial, maxTransfer int64) (*Banking, error) {
	b := &Banking{
		Accounts:       accounts,
		InitialBalance: initial,
		MaxTransfer:    maxTransfer,
		AbortProb:      prof.AbortProb,
		mode:           prof.Mode,
		perPage:        prof.recordsPerPage(),
	}
	if accounts < 2 {
		return nil, fmt.Errorf("workload: banking needs at least 2 accounts")
	}
	if maxTransfer < 1 {
		b.MaxTransfer = 100
	}
	capacity := prof.NumPages
	if prof.Mode == trace.ModeRecord {
		if prof.RecordSize < 8 {
			return nil, fmt.Errorf("workload: banking needs records of at least 8 bytes for the balance")
		}
		capacity = prof.NumPages * b.perPage
	}
	if accounts > capacity {
		return nil, fmt.Errorf("workload: %d accounts exceed database capacity %d", accounts, capacity)
	}
	b.balances = make([]int64, accounts)
	for i := range b.balances {
		b.balances[i] = initial
	}
	return b, nil
}

// Name implements Planner.
func (b *Banking) Name() string { return fmt.Sprintf("banking:accounts=%d", b.Accounts) }

// loc maps an account to its storage location.
func (b *Banking) loc(acct int) (page uint32, slot uint16) {
	if b.mode == trace.ModeRecord {
		return uint32(acct / b.perPage), uint16(acct % b.perPage)
	}
	return uint32(acct), 0
}

// readOp and writeOp build the account access ops for the mode.
func (b *Banking) readOp(acct int) trace.Op {
	p, s := b.loc(acct)
	if b.mode == trace.ModeRecord {
		return trace.Op{Kind: trace.OpReadRecord, Page: p, Slot: s}
	}
	return trace.Op{Kind: trace.OpReadPage, Page: p}
}

func (b *Banking) writeOp(acct int, balance int64) trace.Op {
	p, s := b.loc(acct)
	if b.mode == trace.ModeRecord {
		return trace.Op{Kind: trace.OpWriteRecord, Page: p, Slot: s, Arg: uint64(balance)}
	}
	return trace.Op{Kind: trace.OpWritePage, Page: p, Arg: uint64(balance)}
}

// Prologue implements Prologuer: one funding transaction writing every
// account's initial balance.
func (b *Banking) Prologue() []TxPlan {
	var plan TxPlan
	seen := make(map[uint32]bool)
	for a := 0; a < b.Accounts; a++ {
		plan.Body = append(plan.Body, b.writeOp(a, b.InitialBalance))
		p, _ := b.loc(a)
		if !seen[p] {
			seen[p] = true
			plan.Pages = append(plan.Pages, p)
		}
	}
	return []TxPlan{plan}
}

// PlanTx implements Planner: one transfer between two distinct
// accounts on pages no other stream holds.
func (b *Banking) PlanTx(r *rand.Rand, busy func(uint32) bool) (TxPlan, bool) {
	for attempt := 0; attempt < 32; attempt++ {
		from, to := r.Intn(b.Accounts), r.Intn(b.Accounts)
		if from == to {
			continue
		}
		pf, _ := b.loc(from)
		pt, _ := b.loc(to)
		if busy(pf) || busy(pt) {
			continue
		}
		amount := 1 + r.Int63n(b.MaxTransfer)
		if b.balances[from] < amount {
			amount = b.balances[from]
		}
		if amount == 0 {
			continue // broke account; pick again
		}
		plan := TxPlan{
			Body: []trace.Op{
				b.readOp(from),
				b.readOp(to),
				b.writeOp(from, b.balances[from]-amount),
				b.writeOp(to, b.balances[to]+amount),
			},
			Pages: []uint32{pf},
			Abort: r.Float64() < b.AbortProb,
		}
		if pt != pf {
			plan.Pages = append(plan.Pages, pt)
		}
		if !plan.Abort {
			b.balances[from] -= amount
			b.balances[to] += amount
		}
		return plan, true
	}
	return TxPlan{}, false
}

// ExpectedTotal is the invariant: the sum every replayed database must
// show.
func (b *Banking) ExpectedTotal() int64 {
	return int64(b.Accounts) * b.InitialBalance
}

// Balances returns the book — the balance of every account after the
// generated transactions, which a full replay must reproduce exactly.
func (b *Banking) Balances() []int64 {
	out := make([]int64, len(b.balances))
	copy(out, b.balances)
	return out
}

// TotalIn reads every account balance from a replayed database through
// one retrieval transaction and returns the sum.
func (b *Banking) TotalIn(db *rda.DB) (int64, error) {
	tx, err := db.Begin()
	if err != nil {
		return 0, err
	}
	defer tx.Abort() //nolint:errcheck // retrieval-only; abort releases locks
	var total int64
	for a := 0; a < b.Accounts; a++ {
		bal, err := b.BalanceIn(tx, a)
		if err != nil {
			return 0, err
		}
		total += bal
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return total, nil
}

// BalanceIn reads one account's balance within an open transaction.
func (b *Banking) BalanceIn(tx *rda.Tx, acct int) (int64, error) {
	p, s := b.loc(acct)
	var raw []byte
	var err error
	if b.mode == trace.ModeRecord {
		raw, err = tx.ReadRecord(rda.PageID(p), int(s))
	} else {
		raw, err = tx.ReadPage(rda.PageID(p))
	}
	if err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(raw[:8])), nil
}
