package workload

import "hash/fnv"

// Source derives independent, reproducibly named random streams from a
// single master seed.  It exists so a harness can thread *one* -seed
// flag through every random choice it makes — workload generation,
// trace payloads, fault-injection jitter — without the streams
// aliasing: each named stream mixes the master seed with an FNV-1a hash
// of its name through splitmix64, so adding a consumer never perturbs
// the values an existing consumer draws.  Two runs with the same master
// seed and the same stream names are bit-reproducible.
type Source struct {
	seed uint64
}

// NewSource builds a source from a master seed.
func NewSource(seed int64) *Source {
	return &Source{seed: uint64(seed)}
}

// Stream returns the seed of the named stream, suitable for
// rand.NewSource or any other deterministic consumer.
func (s *Source) Stream(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	state := s.seed ^ h.Sum64()
	return int64(Splitmix64(&state))
}

// Splitmix64 advances state and returns the next value of the
// splitmix64 sequence — the same expansion rule trace payloads use.
func Splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
