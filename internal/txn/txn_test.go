package txn

import (
	"sync"
	"testing"

	"repro/internal/page"
)

func TestBeginAssignsMonotonicIDs(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	if a.ID == page.InvalidTx || b.ID <= a.ID {
		t.Fatalf("ids = %d, %d", a.ID, b.ID)
	}
	if a.Status != Active {
		t.Fatalf("fresh txn status = %v", a.Status)
	}
}

func TestFinishAndCounts(t *testing.T) {
	m := NewManager()
	a := m.Begin()
	b := m.Begin()
	c := m.Begin()
	m.Finish(a.ID, Committed)
	m.Finish(b.ID, Aborted)
	if m.Get(a.ID) != nil || m.Get(b.ID) != nil {
		t.Fatalf("finished txns must leave the active table")
	}
	if m.Get(c.ID) == nil {
		t.Fatalf("txn c should still be active")
	}
	started, committed, aborted := m.Counts()
	if started != 3 || committed != 1 || aborted != 1 {
		t.Fatalf("counts = %d/%d/%d", started, committed, aborted)
	}
	if a.Status != Committed || b.Status != Aborted {
		t.Fatalf("statuses = %v, %v", a.Status, b.Status)
	}
	// Finishing a non-active txn is a no-op.
	m.Finish(a.ID, Aborted)
	if a.Status != Committed {
		t.Fatalf("double finish must not change the outcome")
	}
}

func TestActiveSorted(t *testing.T) {
	m := NewManager()
	var ids []page.TxID
	for i := 0; i < 5; i++ {
		ids = append(ids, m.Begin().ID)
	}
	m.Finish(ids[2], Committed)
	act := m.Active()
	if len(act) != 4 {
		t.Fatalf("active = %v", act)
	}
	for i := 1; i < len(act); i++ {
		if act[i] <= act[i-1] {
			t.Fatalf("active not sorted: %v", act)
		}
	}
	if m.ActiveCount() != 4 {
		t.Fatalf("ActiveCount = %d", m.ActiveCount())
	}
}

func TestChainBookkeeping(t *testing.T) {
	m := NewManager()
	tx := m.Begin()
	if tx.ChainHead() != page.InvalidPage {
		t.Fatalf("empty chain must report InvalidPage")
	}
	tx.StolenNoLog = append(tx.StolenNoLog, 5)
	tx.StolenNoLog = append(tx.StolenNoLog, 9)
	if !tx.InChain(5) || !tx.InChain(9) || tx.InChain(6) {
		t.Fatalf("InChain wrong")
	}
	if tx.ChainHead() != 9 {
		t.Fatalf("chain head = %d, want 9", tx.ChainHead())
	}
}

func TestTimestampsMonotonicAndSurviveReset(t *testing.T) {
	m := NewManager()
	t1 := m.NextTimestamp()
	t2 := m.NextTimestamp()
	if t2 <= t1 {
		t.Fatalf("timestamps not monotonic: %d then %d", t1, t2)
	}
	a := m.Begin()
	m.Reset()
	if m.Get(a.ID) != nil {
		t.Fatalf("Reset must drop active transactions")
	}
	if ts := m.NextTimestamp(); ts <= t2 {
		t.Fatalf("timestamps must keep increasing across a crash: %d after %d", ts, t2)
	}
	if b := m.Begin(); b.ID <= a.ID {
		t.Fatalf("ids must keep increasing across a crash: %d after %d", b.ID, a.ID)
	}
}

func TestConcurrentBegin(t *testing.T) {
	m := NewManager()
	var wg sync.WaitGroup
	idCh := make(chan page.TxID, 16*20)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				idCh <- m.Begin().ID
			}
		}()
	}
	wg.Wait()
	close(idCh)
	seen := make(map[page.TxID]bool)
	for id := range idCh {
		if seen[id] {
			t.Fatalf("duplicate txn id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 16*20 {
		t.Fatalf("got %d unique ids", len(seen))
	}
}
